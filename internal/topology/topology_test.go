package topology

import (
	"math/rand"
	"strings"
	"testing"

	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/ensemble"
	"xpro/internal/stats"
	"xpro/internal/wireless"
)

// trainedGraph builds a real graph from a small trained ensemble; cached
// across tests in this package.
var cachedGraph *Graph
var cachedEns *ensemble.Ensemble

func buildGraph(t testing.TB) (*Graph, *ensemble.Ensemble) {
	t.Helper()
	if cachedGraph != nil {
		return cachedGraph, cachedEns
	}
	spec, err := biosig.CaseBySymbol("E1")
	if err != nil {
		t.Fatal(err)
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(5))
	train, _ := d.Split(0.75, rng)
	cfg := ensemble.DefaultConfig(5)
	cfg.Candidates = 10
	cfg.Folds = 3
	cfg.TopFrac = 0.3
	ens, err := ensemble.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(ens, d.SegLen)
	if err != nil {
		t.Fatal(err)
	}
	cachedGraph, cachedEns = g, ens
	return g, ens
}

func TestBuildValidates(t *testing.T) {
	g, _ := buildGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("built graph invalid: %v", err)
	}
}

func TestBuildStructure(t *testing.T) {
	g, ens := buildGraph(t)
	counts := g.NumByRole()
	if counts[RoleSVM] != len(ens.Bases) {
		t.Errorf("SVM cells = %d, want %d", counts[RoleSVM], len(ens.Bases))
	}
	if counts[RoleFusion] != 1 {
		t.Errorf("fusion cells = %d, want 1", counts[RoleFusion])
	}
	if counts[RoleFeature]+counts[RoleStdStage] != len(ens.UsedFeatures()) {
		t.Errorf("feature cells = %d, want %d (one per used feature, §2.2)",
			counts[RoleFeature]+counts[RoleStdStage], len(ens.UsedFeatures()))
	}
	// DWT chain must be contiguous 1..maxLevel.
	levels := make(map[int]bool)
	for _, c := range g.Cells {
		if c.Role == RoleDWT {
			levels[c.Level] = true
		}
	}
	for l := 1; l <= len(levels); l++ {
		if !levels[l] {
			t.Errorf("DWT chain has a gap at level %d", l)
		}
	}
}

func TestSourceReadersGrouped(t *testing.T) {
	g, ens := buildGraph(t)
	readers := g.SourceReaders()
	if len(readers) == 0 {
		t.Fatal("no source readers")
	}
	// Every time-domain feature and DWT1 must read the source.
	wantReaders := 0
	for _, fs := range ens.UsedFeatures() {
		if fs.Domain == ensemble.TimeDomain && fs.Feat != stats.Std {
			wantReaders++
		}
	}
	// Std on time domain reads source only if Var isn't shared.
	hasDWT := false
	for _, id := range readers {
		if g.Cells[id].Role == RoleDWT {
			hasDWT = true
			if g.Cells[id].Level != 1 {
				t.Error("only DWT level 1 may read the source")
			}
		}
	}
	needsDWT := false
	for _, d := range ens.UsedDomains() {
		if d != ensemble.TimeDomain {
			needsDWT = true
		}
	}
	if needsDWT && !hasDWT {
		t.Error("DWT chain must start at the source")
	}
	if len(readers) < wantReaders {
		t.Errorf("source readers = %d, want ≥ %d time-domain features", len(readers), wantReaders)
	}
}

func TestStdReusesVarCell(t *testing.T) {
	// Construct a synthetic check: when both Var and Std are used on a
	// domain, Std must appear as a StdStage fed by the Var cell.
	g, ens := buildGraph(t)
	usedSet := make(map[ensemble.FeatureSpec]bool)
	for _, fs := range ens.UsedFeatures() {
		usedSet[fs] = true
	}
	for _, c := range g.Cells {
		if c.Role != RoleStdStage {
			continue
		}
		varSpec := ensemble.FeatureSpec{Domain: c.Feature.Domain, Feat: stats.Var}
		if !usedSet[varSpec] {
			t.Errorf("StdStage %s exists but Var is not used on that domain", c.Name)
		}
		ins := g.InEdges(c.ID)
		if len(ins) != 1 {
			t.Fatalf("StdStage must have exactly one input, got %d", len(ins))
		}
		src := g.Cells[ins[0].From]
		if src.Feature != varSpec {
			t.Errorf("StdStage fed by %s, want the Var cell of its domain", src.Name)
		}
		if c.Spec.Kind != celllib.KindStdStage {
			t.Error("StdStage cell must characterize as KindStdStage")
		}
	}
	// And when Std is used without Var, it must be a standalone cell.
	for _, fs := range ens.UsedFeatures() {
		if fs.Feat != stats.Std {
			continue
		}
		varSpec := ensemble.FeatureSpec{Domain: fs.Domain, Feat: stats.Var}
		if usedSet[varSpec] {
			continue
		}
		found := false
		for _, c := range g.Cells {
			if c.Feature == fs && c.Role == RoleFeature && c.Spec.Feat == stats.Std {
				found = true
			}
		}
		if !found {
			t.Errorf("standalone Std cell missing for %s", fs)
		}
	}
}

func TestEdgeVolumes(t *testing.T) {
	g, _ := buildGraph(t)
	for _, e := range g.Edges {
		if e.From == SourceID {
			if e.Values != g.SegLen {
				t.Errorf("source edge carries %d values, want segment length %d", e.Values, g.SegLen)
			}
			if e.Bits != int64(g.SegLen)*wireless.SampleBits {
				t.Errorf("source edge bits = %d", e.Bits)
			}
			continue
		}
		from := g.Cells[e.From]
		wantBits := int64(e.Values) * wireless.ValueBits
		if from.Role == RoleFeature || from.Role == RoleStdStage {
			// Features are [0,1]-normalized and cross as Q0.8 bytes.
			wantBits = int64(e.Values) * wireless.FeatureBits
		}
		if e.Bits != wantBits {
			t.Errorf("edge %d→%d: bits %d, want %d", e.From, e.To, e.Bits, wantBits)
		}
		if from.Role == RoleDWT && g.Cells[e.To].Role == RoleDWT {
			// Chain edge carries the approximation: half the input.
			if e.Values != from.Spec.N/2 {
				t.Errorf("DWT chain edge carries %d values, want %d", e.Values, from.Spec.N/2)
			}
		}
		if from.Role == RoleSVM && e.Values != 1 {
			t.Error("SVM output must be a single score")
		}
	}
}

func TestSVMFanIn(t *testing.T) {
	g, ens := buildGraph(t)
	for _, c := range g.Cells {
		if c.Role != RoleSVM {
			continue
		}
		ins := g.InEdges(c.ID)
		if len(ins) != len(ens.Bases[c.Base].Subset) {
			t.Errorf("%s fan-in = %d, want subspace size %d", c.Name, len(ins), len(ens.Bases[c.Base].Subset))
		}
		if c.Spec.SVs != ens.Bases[c.Base].Model.NumSV() {
			t.Errorf("%s spec SVs = %d, want %d", c.Name, c.Spec.SVs, ens.Bases[c.Base].Model.NumSV())
		}
	}
	fusionIns := g.InEdges(g.Output)
	if len(fusionIns) != len(ens.Bases) {
		t.Errorf("fusion fan-in = %d, want %d", len(fusionIns), len(ens.Bases))
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g, _ := buildGraph(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[CellID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges {
		if e.From == SourceID {
			continue
		}
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d→%d violates topological order", e.From, e.To)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	_, ens := buildGraph(t)
	if _, err := Build(ens, 0); err == nil {
		t.Error("zero segment length should error")
	}
	if _, err := Build(&ensemble.Ensemble{}, 128); err == nil {
		t.Error("empty ensemble should error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, ens := buildGraph(t)
	// Break a copy: dangling edge.
	bad := *g
	bad.Edges = append(append([]Edge(nil), g.Edges...), Edge{From: 0, To: CellID(len(g.Cells) + 5), Values: 1, Bits: 32})
	if err := bad.Validate(); err == nil {
		t.Error("dangling edge should fail validation")
	}
	// Output not fusion.
	bad2 := *g
	bad2.Output = 0
	if err := bad2.Validate(); err == nil {
		t.Error("non-fusion output should fail validation")
	}
	_ = ens
}

func TestRoleString(t *testing.T) {
	want := map[Role]string{RoleDWT: "dwt", RoleFeature: "feature", RoleStdStage: "std-stage", RoleSVM: "svm", RoleFusion: "fusion"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("role %d = %q, want %q", r, r.String(), s)
		}
	}
	if Role(9).String() != "Role(9)" {
		t.Error("unknown role formatting wrong")
	}
}

func BenchmarkBuild(b *testing.B) {
	_, ens := buildGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ens, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDOT(t *testing.T) {
	g, _ := buildGraph(t)
	plain := g.DOT(nil)
	if !strings.Contains(plain, "digraph xpro") || !strings.Contains(plain, "raw segment") {
		t.Error("plain DOT malformed")
	}
	if strings.Count(plain, " [label=") < len(g.Cells) {
		t.Errorf("plain DOT misses cells")
	}
	// With a placement: clusters appear and crossing edges are marked.
	half := func(id CellID) bool { return int(id)%2 == 0 }
	placed := g.DOT(half)
	for _, want := range []string{"cluster_sensor", "cluster_aggregator", "color=red"} {
		if !strings.Contains(placed, want) {
			t.Errorf("placed DOT missing %q", want)
		}
	}
	// Balanced braces.
	if strings.Count(placed, "{") != strings.Count(placed, "}") {
		t.Error("unbalanced braces")
	}
}

// TestRelabel: a reversal permutation must keep the graph valid,
// preserve structure under the inverse map, and reject bad perms.
func TestRelabel(t *testing.T) {
	g, _ := buildGraph(t)
	n := len(g.Cells)
	perm := make([]CellID, n)
	for i := range perm {
		perm[i] = CellID(n - 1 - i)
	}
	rg, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.Validate(); err != nil {
		t.Fatalf("relabeled graph invalid: %v", err)
	}
	if rg.Output != perm[g.Output] {
		t.Fatalf("output %d, want %d", rg.Output, perm[g.Output])
	}
	for old := 0; old < n; old++ {
		nc := rg.Cells[perm[old]]
		oc := g.Cells[old]
		if nc.ID != perm[old] || nc.Name != oc.Name || nc.Role != oc.Role {
			t.Fatalf("cell %d mismapped: %+v vs %+v", old, nc, oc)
		}
	}
	if len(rg.Edges) != len(g.Edges) {
		t.Fatalf("edge count changed: %d vs %d", len(rg.Edges), len(g.Edges))
	}
	for i, e := range g.Edges {
		re := rg.Edges[i]
		wantFrom := e.From
		if wantFrom != SourceID {
			wantFrom = perm[wantFrom]
		}
		if re.From != wantFrom || re.To != perm[e.To] || re.Class != e.Class || re.Bits != e.Bits {
			t.Fatalf("edge %d mismapped: %+v vs %+v", i, re, e)
		}
	}

	// Identity relabel reproduces the graph.
	id := make([]CellID, n)
	for i := range id {
		id[i] = CellID(i)
	}
	ig, err := g.Relabel(id)
	if err != nil {
		t.Fatal(err)
	}
	if ig.Output != g.Output || len(ig.Cells) != n {
		t.Fatal("identity relabel changed the graph")
	}

	// Bad perms.
	if _, err := g.Relabel(perm[:n-1]); err == nil {
		t.Fatal("short perm accepted")
	}
	dup := make([]CellID, n)
	if _, err := g.Relabel(dup); err == nil && n > 1 {
		t.Fatal("duplicate perm accepted")
	}
	bad := append([]CellID(nil), id...)
	bad[0] = CellID(n + 5)
	if _, err := g.Relabel(bad); err == nil {
		t.Fatal("out-of-range perm accepted")
	}
}
