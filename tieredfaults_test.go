package xpro

import (
	"errors"
	"fmt"
	"testing"

	"xpro/internal/biosig"
	"xpro/internal/faults"
	"xpro/internal/partition"
)

// armedTieredPlan solves a 3-tier plan for eng and arms it with cfg.
// When the solver parks every cell on the sensor tier the plan is
// first moved to the all-cloud extreme, so the chain actually crosses
// its hops and per-hop faults have traffic to hit.
func armedTieredPlan(t *testing.T, eng *Engine, cfg *TierResilience) *TierPlan {
	t.Helper()
	p, err := eng.PlanTiers(3)
	if err != nil {
		t.Fatal(err)
	}
	maxTier := 0
	for _, tier := range p.Assignment() {
		if tier > maxTier {
			maxTier = tier
		}
	}
	if maxTier == 0 {
		if err := p.PinAll(2); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Arm(cfg); err != nil {
		t.Fatal(err)
	}
	return p
}

// A clean armed chain serves every event full-fidelity from the top
// rung, and the walk agrees with itself across runs.
func TestTierPlanArmedCleanServesFull(t *testing.T) {
	eng := tieredTestEngine(t)
	p := armedTieredPlan(t, eng, &TierResilience{Seed: 5})
	test := eng.TestSet()
	for i := 0; i < 20; i++ {
		res, err := p.ClassifyResult(test[i].Samples)
		if err != nil {
			t.Fatalf("clean event %d: %v", i, err)
		}
		if res.Mode != ModeFull || res.Degraded || res.Tier != 2 || res.Probing {
			t.Fatalf("clean event %d not full-chain: %+v", i, res)
		}
	}
	if !p.Armed() {
		t.Fatal("plan not armed")
	}
}

// An unarmed plan rejects ClassifyResult.
func TestTierPlanClassifyRequiresArm(t *testing.T) {
	eng := tieredTestEngine(t)
	p, err := eng.PlanTiers(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ClassifyResult(eng.TestSet()[0].Samples); err == nil {
		t.Fatal("unarmed ClassifyResult accepted")
	}
}

// stormPlan schedules one hub-storm window over [0, end) seconds as a
// public FaultPlan (also exercising the "hub-storm" FaultWindow kind).
func stormPlan(end float64) *FaultPlan {
	return &FaultPlan{Windows: []FaultWindow{{Kind: "hub-storm", StartSeconds: 0, EndSeconds: end}}}
}

// A sustained hub storm walks the full ladder: typed degradation
// errors while the hop fights, a collapse onto the sensor+hub rung
// (served with nil error), probes when the storm clears, and a climb
// back to the full chain — all visible in the decision log.
func TestTierPlanHubStormCollapseAndRecover(t *testing.T) {
	eng := tieredTestEngine(t)
	p, err := eng.PlanTiers(3)
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	if err := p.install(partition.AllAt(p.ts.Tiered.Graph, 2)); err != nil {
		p.mu.Unlock()
		t.Fatal(err)
	}
	p.mu.Unlock()
	period := 1.0
	if ev := eng.sys().EventsPerSecond(); ev > 0 {
		period = 1 / ev
	}
	// The hop breaker's cooldown must be on the same scale as the
	// probe cadence, or an open breaker starves every revival probe
	// for most of the run.
	pol := DefaultResilience()
	pol.BreakerCooldownSeconds = 3 * period
	cfg := &TierResilience{
		Seed:     9,
		Policy:   pol,
		HopPlans: []*FaultPlan{nil, stormPlan(4.5 * period)},
		Collapse: &TierCollapse{
			FailThreshold: 2, ProbeAfterSeconds: 2 * period,
			ProbeBackoffFactor: 2, MaxProbeSeconds: 20 * period,
			RecoverySuccesses: 1, ProbationEvents: 2,
		},
	}
	if err := p.Arm(cfg); err != nil {
		t.Fatal(err)
	}
	test := eng.TestSet()
	var sawDegradedErr, sawCollapsed, sawProbe, sawRecovered bool
	for i := 0; i < 60; i++ {
		res, err := p.ClassifyResult(test[i%len(test)].Samples)
		var tde *TierDegradedError
		switch {
		case errors.As(err, &tde):
			sawDegradedErr = true
			if res.Label != 0 && res.Label != 1 {
				t.Fatalf("event %d: degraded answer has no label: %+v", i, res)
			}
			if !res.Degraded {
				t.Fatalf("event %d: TierDegradedError without Degraded result", i)
			}
			if res.Probing { // a revival probe that hit a still-dark hop
				sawProbe = true
			}
		case err != nil:
			t.Fatalf("event %d: %v", i, err)
		case res.Probing:
			sawProbe = true
		case res.Tier == 1 && res.Mode == ModeSensorLocal && res.Degraded:
			sawCollapsed = true
		case sawCollapsed && res.Mode == ModeFull && res.Tier == 2:
			sawRecovered = true
		}
	}
	if !sawDegradedErr || !sawCollapsed || !sawProbe || !sawRecovered {
		t.Fatalf("ladder phases missed: degradedErr=%v collapsed=%v probe=%v recovered=%v",
			sawDegradedErr, sawCollapsed, sawProbe, sawRecovered)
	}
	var sawDegradeOp, sawResolveOp bool
	for _, d := range p.Log() {
		if d.Op == "degrade" && d.Hop == 1 {
			sawDegradeOp = true
		}
		if d.Op == "resolve" && d.Hop == 2 {
			sawResolveOp = true
		}
	}
	if !sawDegradeOp || !sawResolveOp {
		t.Fatalf("decision log missing ladder ops: %+v", p.Log())
	}
	// The SLO report carries the per-hop picture.
	rep := eng.SLOReport()
	if len(rep.Hops) != 2 {
		t.Fatalf("SLO hops = %d, want 2", len(rep.Hops))
	}
	if rep.Hops[1].OutageEvents == 0 {
		t.Fatal("hop 1 outages not accounted in SLO")
	}
}

// Satellite: errors.As reaches the typed ladder errors and their
// fields — hop index, rung tier, retry budget consumed — and the chain
// unwraps to the link-down cause underneath.
func TestTierErrorsAsFields(t *testing.T) {
	eng := tieredTestEngine(t)
	p := armedTieredPlan(t, eng, &TierResilience{
		Seed:     3,
		HopPlans: []*FaultPlan{stormPlan(1e6), stormPlan(1e6)}, // whole chain dark
	})
	_, err := p.ClassifyResult(eng.TestSet()[0].Samples)
	var tde *TierDegradedError
	if !errors.As(err, &tde) {
		t.Fatalf("got %v, want TierDegradedError", err)
	}
	if tde.Hop != 0 {
		t.Fatalf("failed hop = %d, want 0 (first dead crossing)", tde.Hop)
	}
	if tde.Tier != 0 {
		t.Fatalf("serving rung = %d, want 0 (everything dark below the storm)", tde.Tier)
	}
	var hoe *HopOutageError
	if !errors.As(err, &hoe) {
		t.Fatalf("chain has no HopOutageError: %v", err)
	}
	if hoe.Hop != 0 {
		t.Fatalf("outage hop = %d, want 0", hoe.Hop)
	}
	if hoe.UntilSeconds != 1e6 {
		t.Fatalf("outage until = %v, want 1e6", hoe.UntilSeconds)
	}
	if hoe.RetriesConsumed != DefaultResilience().MaxRetries {
		t.Fatalf("retry budget consumed = %d, want %d", hoe.RetriesConsumed, DefaultResilience().MaxRetries)
	}
	if !faults.IsLinkDown(err) {
		t.Fatal("error chain does not reach the link-down cause")
	}
	// The degraded answer itself is still served, from the sensor rung.
	res, _ := p.ClassifyResult(eng.TestSet()[1].Samples)
	if res.Label != 0 && res.Label != 1 {
		t.Fatalf("no label under full storm: %+v", res)
	}
}

// Satellite: a moving install — re-cut, degrade, ladder rung — bumps
// the engine's serving epoch so memoized views (Network.Report, SLO)
// rebuild; Arm itself bumps it too.
func TestTierPlanInstallBumpsEpoch(t *testing.T) {
	eng := tieredTestEngine(t)
	p, err := eng.PlanTiers(3)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.generation()
	moved, err := p.DegradeTiers(0)
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Skip("solved plan already all-sensor; nothing to clamp")
	}
	if eng.generation() == before {
		t.Fatal("moving DegradeTiers did not bump the serving epoch")
	}
	before = eng.generation()
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if eng.generation() == before {
		t.Fatal("moving Resolve did not bump the serving epoch")
	}
	before = eng.generation()
	if err := p.Arm(&TierResilience{}); err != nil {
		t.Fatal(err)
	}
	if eng.generation() == before {
		t.Fatal("Arm did not bump the serving epoch")
	}
}

// Satellite property: the collapse ladder's rungs — the CapAt
// placements with re-homed result delivery — strictly reduce the live
// hop set rung by rung, and on a clean channel no rung introduces
// deadline violations: every rung serves every event completely.
func TestTierRungLadderMonotoneCleanChannel(t *testing.T) {
	eng := tieredTestEngine(t)
	p := armedTieredPlan(t, eng, &TierResilience{Seed: 21})
	test := eng.TestSet()
	k := 3
	prevLive := k // one past the top rung's hop count
	for cap := k - 1; cap >= 0; cap-- {
		p.mu.Lock()
		rung, err := p.rungLocked(partition.Tier(cap))
		p.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		// Live hops of the rung: hops its placement and result delivery
		// may cross. Strictly fewer on every rung down.
		if cap >= prevLive {
			t.Fatalf("rung %d does not reduce live hops (prev %d)", cap, prevLive)
		}
		prevLive = cap
		for i := 0; i < 15; i++ {
			out, err := rung.ClassifyOver(biosig.Segment{Samples: test[i].Samples}, nil)
			if err != nil {
				t.Fatalf("rung %d event %d: %v", cap, i, err)
			}
			if !out.Complete || out.DeadlineExceeded {
				t.Fatalf("rung %d event %d violated the clean-channel contract: %+v", cap, i, out.Outcome)
			}
			for h := cap; h < k-1; h++ {
				if out.HopTransfersOK[h] != 0 || out.HopLost[h] != 0 {
					t.Fatalf("rung %d pushed traffic over dead hop %d: %+v", cap, h, out)
				}
			}
		}
	}
}

// A seeded storm run replays bit-identically: same seed, same events,
// same labels, rungs, errors and decision log.
func TestTierPlanReplayDeterminism(t *testing.T) {
	eng := tieredTestEngine(t)
	run := func() []string {
		p, err := eng.PlanTiers(3)
		if err != nil {
			t.Fatal(err)
		}
		p.mu.Lock()
		if err := p.install(partition.AllAt(p.ts.Tiered.Graph, 2)); err != nil {
			p.mu.Unlock()
			t.Fatal(err)
		}
		p.mu.Unlock()
		if err := p.Arm(&TierResilience{
			Seed: 41, HubStorms: 2, HorizonSeconds: 30,
			HopPlans: []*FaultPlan{nil, {Windows: []FaultWindow{
				{Kind: "loss-burst", StartSeconds: 0, EndSeconds: 30, Loss: 0.3}}}},
			Framed: true,
		}); err != nil {
			t.Fatal(err)
		}
		test := eng.TestSet()
		var log []string
		for i := 0; i < 50; i++ {
			res, err := p.ClassifyResult(test[i%len(test)].Samples)
			log = append(log, fmt.Sprintf("i=%d err=%v res=%+v", i, err, res))
		}
		for _, d := range p.Log() {
			log = append(log, d.String())
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at line %d:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// Arm validation: too many hop plans, bad hub tier.
func TestTierResilienceValidation(t *testing.T) {
	eng := tieredTestEngine(t)
	p, err := eng.PlanTiers(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Arm(&TierResilience{HopPlans: make([]*FaultPlan, 3)}); err == nil {
		t.Error("3 hop plans on a 2-hop chain accepted")
	}
	if err := p.Arm(&TierResilience{HubStorms: 1, HubTier: 5}); err == nil {
		t.Error("hub tier 5 on a 3-tier chain accepted")
	}
}
