package dwt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xpro/internal/fixed"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

func TestHaarStepKnown(t *testing.T) {
	// Haar of [1 1 2 2]: approx = [√2, 2√2], detail = [0, 0].
	a, d, err := Step(Haar, []float64{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	r2 := math.Sqrt2
	if !almostEqual(a[0], r2, 1e-12) || !almostEqual(a[1], 2*r2, 1e-12) {
		t.Errorf("approx = %v, want [√2 2√2]", a)
	}
	if !almostEqual(d[0], 0, 1e-12) || !almostEqual(d[1], 0, 1e-12) {
		t.Errorf("detail = %v, want [0 0]", d)
	}
}

func TestStepErrors(t *testing.T) {
	if _, _, err := Step(Haar, []float64{1, 2, 3}); err == nil {
		t.Error("odd length should error")
	}
	if _, _, err := Step(DB4, []float64{1, 2}); err == nil {
		t.Error("signal shorter than db4 filter should error")
	}
	if _, err := Decompose(Haar, randSignal(rand.New(rand.NewSource(1)), 128), 0); err == nil {
		t.Error("levels=0 should error")
	}
	if _, err := Decompose(Haar, randSignal(rand.New(rand.NewSource(1)), 100), 3); err == nil {
		t.Error("length not divisible by 2^levels should error")
	}
}

func TestDecomposeLevelLengths(t *testing.T) {
	// §4.4: 128-sample input, 5 levels → details 64/32/16/8/4 and a
	// 4-sample approximation.
	x := randSignal(rand.New(rand.NewSource(7)), 128)
	dec, err := Decompose(Haar, x, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantLens := []int{64, 32, 16, 8, 4}
	if dec.Levels() != 5 {
		t.Fatalf("Levels = %d, want 5", dec.Levels())
	}
	for i, w := range wantLens {
		if len(dec.Details[i]) != w {
			t.Errorf("detail level %d length = %d, want %d", i+1, len(dec.Details[i]), w)
		}
	}
	if len(dec.Approx) != 4 {
		t.Errorf("approx length = %d, want 4", len(dec.Approx))
	}
	if dec.NumBands() != 6 {
		t.Errorf("NumBands = %d, want 6", dec.NumBands())
	}
	if &dec.Band(5)[0] != &dec.Approx[0] {
		t.Error("Band(levels) should be the approximation")
	}
}

func TestPerfectReconstructionHaar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{8, 32, 128} {
		x := randSignal(rng, n)
		dec, err := Decompose(Haar, x, MaxLevels(Haar, n))
		if err != nil {
			t.Fatal(err)
		}
		back, err := Reconstruct(dec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almostEqual(back[i], x[i], 1e-10) {
				t.Fatalf("haar n=%d: back[%d]=%v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestPerfectReconstructionDB4(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := randSignal(rng, 128)
	dec, err := Decompose(DB4, x, 4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Reconstruct(dec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEqual(back[i], x[i], 1e-10) {
			t.Fatalf("db4: back[%d]=%v, want %v", i, back[i], x[i])
		}
	}
}

// Property: orthonormality — the transform preserves signal energy
// (Parseval). Checked for both wavelets at one level.
func TestQuickEnergyPreservation(t *testing.T) {
	for _, w := range []Wavelet{Haar, DB4} {
		w := w
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			x := randSignal(rng, 64)
			a, d, err := Step(w, x)
			if err != nil {
				return false
			}
			var ein, eout float64
			for _, v := range x {
				ein += v * v
			}
			for i := range a {
				eout += a[i]*a[i] + d[i]*d[i]
			}
			return almostEqual(ein, eout, 1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%v: %v", w, err)
		}
	}
}

// Property: linearity — DWT(αx + y) = α·DWT(x) + DWT(y).
func TestQuickLinearity(t *testing.T) {
	f := func(seed int64, alphaRaw uint8) bool {
		alpha := float64(alphaRaw)/32 - 4
		rng := rand.New(rand.NewSource(seed))
		x := randSignal(rng, 32)
		y := randSignal(rng, 32)
		z := make([]float64, 32)
		for i := range z {
			z[i] = alpha*x[i] + y[i]
		}
		ax, dx, _ := Step(Haar, x)
		ay, dy, _ := Step(Haar, y)
		az, dz, _ := Step(Haar, z)
		for i := range az {
			if !almostEqual(az[i], alpha*ax[i]+ay[i], 1e-9) {
				return false
			}
			if !almostEqual(dz[i], alpha*dx[i]+dy[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxLevels(t *testing.T) {
	if got := MaxLevels(Haar, 128); got != 6 {
		t.Errorf("MaxLevels(haar,128) = %d, want 6", got)
	}
	if got := MaxLevels(DB4, 128); got != 5 {
		t.Errorf("MaxLevels(db4,128) = %d, want 5", got)
	}
	if got := MaxLevels(Haar, 7); got != 0 {
		t.Errorf("MaxLevels(haar,7) = %d, want 0", got)
	}
}

func TestFixedMatchesFloatHaar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randSignal(rng, 128)
	fx := fixed.FromSlice(x)
	det, app, err := DecomposeFixed(fx, 5)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(Haar, x, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-point error grows with depth; allow a generous but bounded
	// tolerance (5 levels × rounding per level).
	const tol = 1e-3
	for l := range det {
		for i := range det[l] {
			if !almostEqual(det[l][i].Float(), dec.Details[l][i], tol) {
				t.Fatalf("level %d detail[%d]: fixed %v vs float %v", l+1, i, det[l][i].Float(), dec.Details[l][i])
			}
		}
	}
	for i := range app {
		if !almostEqual(app[i].Float(), dec.Approx[i], tol) {
			t.Fatalf("approx[%d]: fixed %v vs float %v", i, app[i].Float(), dec.Approx[i])
		}
	}
}

func TestFixedStepErrors(t *testing.T) {
	if _, _, err := StepFixed([]fixed.Num{1, 2, 3}); err == nil {
		t.Error("odd length should error")
	}
	if _, _, err := DecomposeFixed(fixed.FromSlice([]float64{1, 2, 3, 4}), 0); err == nil {
		t.Error("levels=0 should error")
	}
	if _, _, err := DecomposeFixed(fixed.FromSlice([]float64{1, 2, 3, 4, 5, 6}), 2); err == nil {
		t.Error("length not divisible should error")
	}
}

func TestWaveletString(t *testing.T) {
	if Haar.String() != "haar" || DB4.String() != "db4" {
		t.Error("wavelet names wrong")
	}
	if Wavelet(9).String() != "Wavelet(9)" {
		t.Error("unknown wavelet formatting wrong")
	}
}

func BenchmarkDecomposeHaar128x5(b *testing.B) {
	x := randSignal(rand.New(rand.NewSource(3)), 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(Haar, x, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeFixed128x5(b *testing.B) {
	x := fixed.FromSlice(randSignal(rand.New(rand.NewSource(3)), 128))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecomposeFixed(x, 5); err != nil {
			b.Fatal(err)
		}
	}
}
