package ensemble

import (
	"math/rand"
	"testing"

	"xpro/internal/biosig"
)

func importanceFixture(t *testing.T, sym string) (*Ensemble, *biosig.Dataset) {
	t.Helper()
	spec, err := biosig.CaseBySymbol(sym)
	if err != nil {
		t.Fatal(err)
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(spec.Seed))
	train, test := d.Split(0.75, rng)
	cfg := smallConfig(spec.Seed)
	ens, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eval := &biosig.Dataset{SegLen: test.SegLen, Segs: test.Segs[:150]}
	return ens, eval
}

func TestPermutationImportance(t *testing.T) {
	// E1 is the hard case: individual features carry real signal, so
	// shuffling the most important one must visibly hurt. (On the
	// perfectly separable ECG cases, single-feature shuffles often flip
	// no hard vote at all.)
	ens, eval := importanceFixture(t, "E1")
	imps, err := ens.PermutationImportance(eval, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != len(ens.UsedFeatures()) {
		t.Fatalf("importances = %d, want one per used feature (%d)", len(imps), len(ens.UsedFeatures()))
	}
	// Sorted decreasing.
	for i := 1; i < len(imps); i++ {
		if imps[i].Drop > imps[i-1].Drop {
			t.Fatal("importances not sorted")
		}
	}
	// Something must matter: the top feature's shuffle hurts accuracy.
	if imps[0].Drop <= 0 {
		t.Errorf("top importance %v, expected a positive accuracy drop", imps[0].Drop)
	}
}

func TestDomainImportanceShares(t *testing.T) {
	ens, eval := importanceFixture(t, "M1")
	shares, err := ens.DomainImportance(eval, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for d, s := range shares {
		if s < 0 || s > 1 {
			t.Errorf("domain %d share %v outside [0,1]", d, s)
		}
		total += s
	}
	if total > 1e-9 && (total < 0.999 || total > 1.001) {
		t.Errorf("shares sum to %v, want 1", total)
	}
}

func TestImportanceErrors(t *testing.T) {
	ens, _ := importanceFixture(t, "C1")
	if _, err := ens.PermutationImportance(&biosig.Dataset{}, 1, 1); err == nil {
		t.Error("empty evaluation set should error")
	}
	if _, err := ens.DomainImportance(&biosig.Dataset{}, 1, 1); err == nil {
		t.Error("empty evaluation set should error")
	}
}
