module xpro

go 1.22
