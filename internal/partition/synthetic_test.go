package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xpro/internal/celllib"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

func syntheticProblem(seed int64) (*Problem, error) {
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.Synthetic(rng, 8+rng.Intn(250))
	if err != nil {
		return nil, err
	}
	procs := []celllib.Process{celllib.P130, celllib.P90, celllib.P45}
	links := wireless.Models()
	return &Problem{
		Graph:         g,
		HW:            sensornode.Characterize(g, procs[rng.Intn(len(procs))]),
		Link:          links[rng.Intn(len(links))],
		SensingEnergy: rng.Float64() * 1e-7,
	}, nil
}

// Property: on random topologies under random process/link models, the
// min cut never loses to the single-end engines, the trivial cut, or
// random grouped placements, and it respects the grouped constraint.
func TestQuickSyntheticMinCutOptimal(t *testing.T) {
	f := func(seed int64) bool {
		pr, err := syntheticProblem(seed)
		if err != nil {
			return false
		}
		p, e := pr.MinCut()
		if !pr.GroupedOK(p) {
			return false
		}
		if math.Abs(pr.SensorEnergy(p)-e) > 1e-12+1e-9*e {
			return false
		}
		for _, base := range []Placement{InSensor(pr.Graph), InAggregator(pr.Graph), Trivial(pr.Graph)} {
			if e > pr.SensorEnergy(base)+1e-12 {
				return false
			}
		}
		// A handful of random grouped placements.
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		readers := make(map[topology.CellID]bool)
		for _, id := range pr.Graph.SourceReaders() {
			readers[id] = true
		}
		for trial := 0; trial < 20; trial++ {
			q := make(Placement, len(pr.Graph.Cells))
			groupEnd := End(rng.Intn(2))
			for i := range q {
				if readers[topology.CellID(i)] {
					q[i] = groupEnd
				} else {
					q[i] = End(rng.Intn(2))
				}
			}
			if e > pr.SensorEnergy(q)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: exhaustive ground truth on small synthetic instances — the
// strongest check of the s-t graph construction, across the whole
// synthetic shape space.
func TestQuickSyntheticMinCutExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	checked := 0
	for seed := int64(0); seed < 400 && checked < 25; seed++ {
		pr, err := syntheticProblem(seed)
		if err != nil {
			continue
		}
		g := pr.Graph
		readers := make(map[topology.CellID]bool)
		for _, id := range g.SourceReaders() {
			readers[id] = true
		}
		var free []topology.CellID
		for i := range g.Cells {
			if !readers[topology.CellID(i)] {
				free = append(free, topology.CellID(i))
			}
		}
		if len(free) > 16 {
			continue // too large to enumerate
		}
		checked++
		_, minE := pr.MinCut()
		best := math.Inf(1)
		for groupEnd := 0; groupEnd < 2; groupEnd++ {
			for mask := 0; mask < 1<<len(free); mask++ {
				p := make(Placement, len(g.Cells))
				for id := range readers {
					p[id] = End(groupEnd)
				}
				for b, id := range free {
					if mask&(1<<b) != 0 {
						p[id] = Aggregator
					}
				}
				if e := pr.SensorEnergy(p); e < best {
					best = e
				}
			}
		}
		if math.Abs(minE-best) > 1e-12+1e-9*best {
			t.Fatalf("seed %d: min-cut %v J, exhaustive %v J", seed, minE, best)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d instances were small enough to enumerate", checked)
	}
	t.Logf("verified %d instances against exhaustive enumeration", checked)
}

// Property: Frontier points are feasible targets for Generate on random
// topologies.
func TestQuickSyntheticFrontier(t *testing.T) {
	f := func(seed int64) bool {
		pr, err := syntheticProblem(seed)
		if err != nil {
			return false
		}
		delayOf := func(p Placement) float64 {
			_, na := p.Counts()
			return 1e-5 * float64(na+1)
		}
		front, err := pr.Frontier(delayOf)
		if err != nil || len(front) == 0 {
			return false
		}
		for i := 1; i < len(front); i++ {
			if front[i].Energy <= front[i-1].Energy || front[i].Delay >= front[i-1].Delay {
				return false
			}
		}
		res, err := pr.Generate(delayOf, front[len(front)-1].Delay)
		if err != nil {
			return false
		}
		return res.Energy <= front[len(front)-1].Energy+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
