package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: xpro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSLOReport        	  138126	       412.4 ns/op	     256 B/op	       2 allocs/op
BenchmarkFleetSequential-1	   10000	    108270 ns/op	   45000 B/op	     571 allocs/op
BenchmarkFleetSequential-4	   30000	     31000 ns/op	   45100 B/op	     572 allocs/op
BenchmarkFleetSequential-8	   50000	     16000 ns/op	   45200 B/op	     573 allocs/op
BenchmarkFleetThroughput  	    5000	    200000 ns/op	      9511 events/s
garbage line that is not a benchmark
PASS
ok  	xpro	4.846s
`

func TestParseBench(t *testing.T) {
	p, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if p.Goos != "linux" || p.Goarch != "amd64" || !strings.Contains(p.CPU, "Xeon") {
		t.Errorf("headers not parsed: %+v", p)
	}
	if len(p.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5: %v", len(p.Benchmarks), p.Benchmarks)
	}
	slo := p.Benchmarks["SLOReport"]
	if slo["ns_per_op"] != 412.4 || slo["bytes_per_op"] != 256 || slo["allocs_per_op"] != 2 {
		t.Errorf("SLOReport units wrong: %v", slo)
	}
	if got := p.Benchmarks["FleetThroughput"]["events_per_s"]; got != 9511 {
		t.Errorf("custom unit events/s = %v, want 9511", got)
	}
	if _, ok := p.Benchmarks["FleetSequential-4"]; !ok {
		t.Error("-N cpu suffix must be kept on the name")
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok xpro 1s\n")); err == nil {
		t.Error("no benchmark lines should error")
	}
}

func TestDeriveSpeedups(t *testing.T) {
	p, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	d := deriveSpeedups(p)
	if got, want := d["FleetSequential_speedup_4x"], 108270.0/31000.0; math.Abs(got-want) > 0.001 {
		t.Errorf("4x speedup = %v, want %v", got, want)
	}
	if got, want := d["FleetSequential_speedup_8x"], 108270.0/16000.0; math.Abs(got-want) > 0.001 {
		t.Errorf("8x speedup = %v, want %v", got, want)
	}
	if _, ok := d["SLOReport_speedup_4x"]; ok {
		t.Error("benchmark without -N runs must derive no speedup")
	}
}

// recordBench appends schema-versioned points and preserves fields it
// does not understand — the BENCH_*.json trajectory survives recorder
// upgrades.
func TestRecordBenchAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_serve.json")
	seed := `{
  "suite": "fleet-serving",
  "note": "hand-written provenance",
  "points": [
    {"date": "2026-08-06", "gomaxprocs": 1, "benchmarks": {"Old": {"ns_per_op": 1}}}
  ]
}`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := recordBench(path, strings.NewReader(sampleBench), "8-core CI run", &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["suite"] != "fleet-serving" || doc["note"] != "hand-written provenance" {
		t.Errorf("existing top-level fields lost: %v", doc)
	}
	if v, _ := doc["schema_version"].(float64); int(v) != benchSchemaVersion {
		t.Errorf("schema_version = %v, want %d", doc["schema_version"], benchSchemaVersion)
	}
	points, _ := doc["points"].([]any)
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	old, _ := points[0].(map[string]any)
	if _, ok := old["gomaxprocs"]; !ok {
		t.Error("unknown field of an existing point was dropped")
	}
	pt, _ := points[1].(map[string]any)
	if pt["note"] != "8-core CI run" || pt["goos"] != "linux" || pt["date"] == "" {
		t.Errorf("new point incomplete: %v", pt)
	}
	benches, _ := pt["benchmarks"].(map[string]any)
	if len(benches) != 5 {
		t.Errorf("new point has %d benchmarks, want 5", len(benches))
	}
	derived, _ := pt["derived"].(map[string]any)
	if _, ok := derived["FleetSequential_speedup_8x"]; !ok {
		t.Errorf("derived speedups missing: %v", derived)
	}
	if !strings.Contains(out.String(), "recorded 5 benchmarks") {
		t.Errorf("summary line missing: %q", out.String())
	}

	// A second append keeps growing the trajectory.
	if err := recordBench(path, strings.NewReader(sampleBench), "", &out); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	doc = map[string]any{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if points, _ := doc["points"].([]any); len(points) != 3 {
		t.Errorf("points after second append = %d, want 3", len(points))
	}
}

// The -record flag drives the recorder end to end, creating the file
// when it does not exist yet.
func TestRunRecordFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_new.json")
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-record", path, "-record-in", in}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if points, _ := doc["points"].([]any); len(points) != 1 {
		t.Errorf("fresh file points = %d, want 1", len(points))
	}

	// Unreadable input and unparseable targets fail loudly.
	if code := run([]string{"-record", path, "-record-in", filepath.Join(dir, "missing.txt")}, &out, &errOut); code == 0 {
		t.Error("missing -record-in should fail")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if code := run([]string{"-record", bad, "-record-in", in}, &out, &errOut); code == 0 {
		t.Error("corrupt target file should fail, not be overwritten")
	}
}
