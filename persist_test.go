package xpro

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := New(Config{Case: "M2"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty snapshot")
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Reports must be identical: same classifier, same placement, same
	// models.
	a, b := orig.Report(), restored.Report()
	if a != b {
		t.Errorf("reports differ:\n  orig     %+v\n  restored %+v", a, b)
	}

	// Classifications must match on the (regenerated) test set.
	testSet := orig.TestSet()
	restoredSet := restored.TestSet()
	if len(testSet) != len(restoredSet) {
		t.Fatalf("test sets differ in size: %d vs %d", len(testSet), len(restoredSet))
	}
	for i := 0; i < 50; i++ {
		if testSet[i].Label != restoredSet[i].Label {
			t.Fatal("test set regeneration diverged")
		}
		x, err := orig.Classify(testSet[i].Samples)
		if err != nil {
			t.Fatal(err)
		}
		y, err := restored.Classify(restoredSet[i].Samples)
		if err != nil {
			t.Fatal(err)
		}
		if x != y {
			t.Fatalf("segment %d: original %d != restored %d", i, x, y)
		}
	}

	// Placements identical cell by cell.
	pa, pb := orig.Placement(), restored.Placement()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("cell %d placement differs: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

func TestLoadDetectsCorruptSnapshot(t *testing.T) {
	eng, err := New(Config{Case: "M2"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), snapshotMagic) {
		t.Fatal("Save must write the checksummed envelope")
	}
	// Flip one payload byte: Load must return the typed integrity error,
	// not a gob decode failure or a silently wrong engine.
	for _, pos := range []int{len(snapshotMagic) + 40, buf.Len() / 2, buf.Len() - 5} {
		dirty := append([]byte(nil), buf.Bytes()...)
		dirty[pos] ^= 0x20
		_, err := Load(bytes.NewReader(dirty))
		var integ *SnapshotIntegrityError
		if !errors.As(err, &integ) {
			t.Fatalf("flip at byte %d: err = %v, want *SnapshotIntegrityError", pos, err)
		}
		if integ.Want == integ.Got {
			t.Fatalf("flip at byte %d: error reports matching checksums %#08x", pos, integ.Want)
		}
	}
	// Truncation inside the envelope fails cleanly too.
	if _, err := Load(bytes.NewReader(buf.Bytes()[:len(snapshotMagic)+2])); err == nil {
		t.Fatal("truncated envelope must fail")
	}
}

func TestLoadAcceptsLegacySnapshot(t *testing.T) {
	// Snapshots written before the checksummed envelope are bare gob;
	// they must still restore.
	eng, err := New(Config{Case: "M2"})
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(enginePersist{
		Version:   persistVersion,
		Config:    eng.cfg,
		Ens:       eng.ens,
		Gen:       eng.gen,
		Placement: eng.sys().Placement,
		Accuracy:  eng.acc,
	}); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&legacy)
	if err != nil {
		t.Fatalf("legacy bare-gob snapshot failed to load: %v", err)
	}
	if a, b := eng.Report(), restored.Report(); a != b {
		t.Errorf("legacy restore diverged:\n  orig     %+v\n  restored %+v", a, b)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage should fail to decode")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	eng, err := New(Config{Case: "C1", Kind: InSensor})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding with a bumped constant is not
	// possible from here; instead verify the happy path asserts the
	// version field by checking a truncated stream fails cleanly.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot should fail")
	}
}

func TestLoadRejectsNewerVersion(t *testing.T) {
	// A snapshot written by a future xpro must be refused with an error
	// that names both versions, not misread as the current format.
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(enginePersist{
		Version: persistVersion + 1,
		Config:  Config{Case: "C1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(&buf)
	if err == nil {
		t.Fatal("newer snapshot version must be rejected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "newer than this build supports") {
		t.Errorf("error should say the snapshot is too new: %q", msg)
	}
	if !strings.Contains(msg, fmt.Sprint(persistVersion+1)) || !strings.Contains(msg, fmt.Sprintf("max %d", persistVersion)) {
		t.Errorf("error should name both versions: %q", msg)
	}
}
