package xsystem

import (
	"fmt"

	"xpro/internal/partition"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

// TieredSystem extends a 2-end System with an N-tier placement: the
// same trained topology spread over sensor → hub → cloud instead of
// sensor → aggregator. The functional runtime stays two-natured (the
// sensing tier runs fixed-point cell hardware, everything above runs
// the float software models), so a tier placement executes by
// collapsing at the first hop: tier-0 cells on the sensor engine, all
// upper tiers on the software path. Energy and traffic, however, are
// priced per tier and per hop through the k-way cost model.
type TieredSystem struct {
	*System
	// Tiered is the k-way pricing problem derived from the system.
	Tiered *partition.TieredProblem
	// TierPlacement is the current k-way placement; System.Placement is
	// always its Collapse(0).
	TierPlacement partition.TierPlacement
}

// NewTiered lifts a 2-end system onto the given tier chain and solves
// for the optimal k-way placement. Upper tiers price cell compute
// through the aggregator CPU model scaled by their ComputeScale, so
// the hub and cloud inherit calibrated software costs rather than the
// sensor's hardware ones.
func NewTiered(s *System, tiers []partition.TierSpec, hops []partition.Hop) (*TieredSystem, error) {
	if s == nil {
		return nil, fmt.Errorf("xsystem: nil system")
	}
	tp, err := partition.NewTieredProblem(s.Graph, s.HW, tiers, hops, s.Problem().SensingEnergy)
	if err != nil {
		return nil, err
	}
	tp.Metrics = s.Metrics
	cpu := s.CPU
	graph := s.Graph
	tp.CellEnergy = func(t partition.Tier, id topology.CellID) float64 {
		if t == 0 {
			return s.HW.Energy(id) * tiers[0].ComputeScale
		}
		return cpu.CellCost(graph.Cells[id].Spec).Energy * tiers[t].ComputeScale
	}
	res, err := tp.Solve()
	if err != nil {
		return nil, err
	}
	return newTieredWith(s, tp, res.Placement)
}

// newTieredWith installs placement p, collapsing it onto the 2-end
// runtime.
func newTieredWith(s *System, tp *partition.TieredProblem, p partition.TierPlacement) (*TieredSystem, error) {
	if err := tp.CheckPlacement(p); err != nil {
		return nil, err
	}
	runtime, err := s.WithPlacement(p.Collapse(0))
	if err != nil {
		return nil, err
	}
	return &TieredSystem{System: runtime, Tiered: tp, TierPlacement: p.Clone()}, nil
}

// WithTierPlacement returns a sibling system running placement p — the
// k-way hot-swap primitive mirroring System.WithPlacement.
func (ts *TieredSystem) WithTierPlacement(p partition.TierPlacement) (*TieredSystem, error) {
	return newTieredWith(ts.System, ts.Tiered, p)
}

// WithResultDelivery returns a sibling running placement p whose final
// result only has to reach tier result instead of the problem's
// configured ResultTier — the collapse-rung primitive: a capped rung
// both clamps the placement and re-homes delivery, so the event walk
// stops marching results across hops that are known dead. The pricing
// problem is shallow-copied; the parent's is not modified.
func (ts *TieredSystem) WithResultDelivery(p partition.TierPlacement, result partition.Tier) (*TieredSystem, error) {
	if result < 0 || int(result) >= ts.Tiered.K() {
		return nil, fmt.Errorf("xsystem: result tier %d outside [0,%d)", result, ts.Tiered.K())
	}
	tp := *ts.Tiered
	tp.ResultTier = result
	return newTieredWith(ts.System, &tp, p)
}

// RecutHop re-optimizes one hop's boundary (see
// partition.TieredProblem.RecutHop) and returns the re-cut sibling; the
// bool reports whether the placement actually moved.
func (ts *TieredSystem) RecutHop(hop int) (*TieredSystem, bool, error) {
	q, _, err := ts.Tiered.RecutHop(ts.TierPlacement, hop)
	if err != nil {
		return nil, false, err
	}
	if q.Equal(ts.TierPlacement) {
		return ts, false, nil
	}
	next, err := ts.WithTierPlacement(q)
	if err != nil {
		return nil, false, err
	}
	return next, true, nil
}

// Degrade clamps the placement to tiers ≤ max — the k-way degradation
// rung when the hops above max are unusable — and returns the clamped
// sibling.
func (ts *TieredSystem) Degrade(max partition.Tier) (*TieredSystem, error) {
	return ts.WithTierPlacement(ts.TierPlacement.CapAt(max))
}

// TierEnergy is the per-tier energy report of one event.
type TierEnergy struct {
	// Name is the tier's label from its TierSpec.
	Name string
	// Cells is how many cells run on the tier.
	Cells int
	// Compute, Tx, Rx are the tier's unweighted energies (J/event).
	Compute float64
	Tx      float64
	Rx      float64
	// Weight is the tier's objective weight.
	Weight float64
}

// TierReport prices the current placement per tier and per hop.
type TierReport struct {
	Tiers []TierEnergy
	// HopDataBits / HopAirSeconds are per-hop traffic and serialized
	// air time per event.
	HopDataBits   []int64
	HopAirSeconds []float64
	// WeightedCost is the k-way objective of the placement.
	WeightedCost float64
}

// TierReport breaks the current placement's cost down per tier.
func (ts *TieredSystem) TierReport() TierReport {
	bd := ts.Tiered.Breakdown(ts.TierPlacement)
	counts := ts.TierPlacement.Counts(ts.Tiered.K())
	rep := TierReport{
		HopDataBits:   bd.HopDataBits,
		HopAirSeconds: bd.HopAirSeconds,
		WeightedCost:  bd.WeightedCost,
	}
	for t, spec := range ts.Tiered.Tiers {
		te := TierEnergy{
			Name:    spec.Name,
			Cells:   counts[t],
			Compute: bd.Compute[t],
			Tx:      bd.Tx[t],
			Rx:      bd.Rx[t],
			Weight:  spec.EnergyWeight,
		}
		if t == 0 {
			te.Compute += bd.Sensing
		}
		rep.Tiers = append(rep.Tiers, te)
	}
	return rep
}

// ThreeTier builds the canonical sensor → hub → cloud chain for a
// system: the system's own link as the body hop and uplink above it.
func ThreeTier(s *System, uplink wireless.Model) (*TieredSystem, error) {
	tiers, hops := partition.DefaultThreeTier(s.Link, uplink)
	return NewTiered(s, tiers, hops)
}
