package xpro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"xpro/internal/biosig"
	"xpro/internal/serve"
	"xpro/internal/telemetry"
)

// This file is the public face of the concurrent fleet-serving runtime
// (internal/serve). The paper evaluates one wearable against one
// aggregator; a production backend serves millions of subjects, and
// XPro's cut-based engines are embarrassingly parallel across subjects
// and across segments. Network.Serve shards a body sensor network's
// engines over a bounded worker pool with per-subject FIFO ordering;
// Engine.ClassifyBatchParallel and Engine.StreamParallel fan one
// engine's segments across workers with results provably identical to
// the sequential path.
//
// Ordering and determinism contract: one subject's events always
// execute in submission order on one worker, because the resilient
// classify path is a serial modeled timeline (clock, breaker, link
// RNG) — so a seeded run replays bit-identically regardless of the
// worker count. Engines without a Resilience policy are pure functions
// of the segment and the installed cut, so their segments parallelize
// freely and the hot-swapped cut is always read through one atomic
// load per event: no event ever observes a half-swapped cut.

// ErrOverloaded rejects a fleet submission whose worker queue is full
// — the bounded-queue backpressure signal. The caller should shed or
// retry; nothing was enqueued.
var ErrOverloaded = serve.ErrOverloaded

// ErrFleetClosed rejects submissions made after Fleet.Close began.
var ErrFleetClosed = serve.ErrClosed

// ErrWorkerPanic marks a fleet event whose classification panicked.
// The panic is contained: the worker is replaced, the subject's queue
// keeps draining in order, and the caller gets this typed error
// instead of a crashed process. Match with errors.Is; errors.As gives
// the *WorkerPanicError carrying the recovered value.
var ErrWorkerPanic = errors.New("xpro: fleet worker panicked")

// WorkerPanicError reports a contained per-event panic.
type WorkerPanicError struct {
	// Subject is the engine whose event blew up; Value the recovered
	// panic value.
	Subject string
	Value   any
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("xpro: classification for subject %q panicked: %v", e.Subject, e.Value)
}

// Is makes errors.Is(err, ErrWorkerPanic) match.
func (e *WorkerPanicError) Is(target error) bool { return target == ErrWorkerPanic }

// ErrCanceled marks a classification abandoned because its context was
// canceled or its deadline expired before the event entered the
// pipeline. The wrapped chain also matches the context error
// (context.Canceled or context.DeadlineExceeded). A canceled event
// never touches the modeled timeline: the clock does not advance and
// the circuit breaker records nothing.
var ErrCanceled = errors.New("xpro: classification canceled")

// canceledError wraps a context error as ErrCanceled and counts it.
// Cancellations are not classification errors: they do not increment
// xpro_classify_errors_total and never trip the breaker.
func (e *Engine) canceledError(cause error) error {
	e.obs.reg.Counter("xpro_classify_canceled_total",
		"Classifications abandoned by context cancellation before execution.").Inc()
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// ClassifyResultContext is ClassifyResult honoring a context: a
// canceled or expired ctx returns an error matching both ErrCanceled
// and the context error, without running the event or touching the
// resilience state. An event already executing is never interrupted
// mid-pipeline (the modeled hardware has no preemption); cancellation
// is checked immediately before the event starts.
func (e *Engine) ClassifyResultContext(ctx context.Context, samples []float64) (Result, error) {
	if e.res != nil {
		return e.res.classifyCtx(ctx, e, biosig.Segment{Samples: samples})
	}
	if err := ctx.Err(); err != nil {
		return Result{}, e.canceledError(err)
	}
	label, err := e.sys().Classify(biosig.Segment{Samples: samples})
	if err != nil {
		return Result{}, err
	}
	return Result{Label: label, Mode: ModeFull}, nil
}

// ClassifyBatchParallel classifies segments across up to workers
// goroutines (workers <= 0 means GOMAXPROCS) and returns labels in
// input order. Results are bit-identical to ClassifyBatch: each event
// reads the installed cut through one atomic load and computes a pure
// function of (segment, cut), so fan-out cannot change any label. On
// an engine with a Resilience policy the modeled timeline is serial by
// design, and the call degenerates to ordered sequential execution —
// still honoring ctx between events — so seeded fault runs replay
// identically no matter the requested parallelism.
func (e *Engine) ClassifyBatchParallel(ctx context.Context, segments [][]float64, workers int) ([]int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	labels, err := e.classifyBatchParallel(ctx, segments, workers)
	m := e.obs.reg
	if err != nil {
		m.Counter("xpro_classify_batch_errors_total",
			"ClassifyBatch calls that returned an error.").Inc()
		return nil, err
	}
	m.Counter("xpro_classify_batch_parallel_total",
		"Completed ClassifyBatchParallel calls.").Inc()
	m.Counter("xpro_classify_batch_segments_total",
		"Segments classified by ClassifyBatch calls.").Add(float64(len(segments)))
	m.Histogram("xpro_classify_batch_seconds",
		"Wall time of one ClassifyBatch call.", telemetry.DurationBuckets).
		Observe(time.Since(start).Seconds())
	m.Quantile("xpro_classify_batch_wall_seconds",
		"Wall time of one batch classify call (windowed quantile sketch on host uptime).",
		0).ObserveWall(time.Since(start).Seconds())
	return labels, nil
}

func (e *Engine) classifyBatchParallel(ctx context.Context, segments [][]float64, workers int) ([]int, error) {
	labels := make([]int, len(segments))
	if e.res != nil {
		for i, s := range segments {
			res, err := e.res.classifyCtx(ctx, e, biosig.Segment{Samples: s})
			if err != nil {
				return nil, fmt.Errorf("xpro: segment %d: %w", i, err)
			}
			labels[i] = res.Label
		}
		return labels, nil
	}
	err := serve.ParallelEach(len(segments), workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return e.canceledError(err)
		}
		label, err := e.sys().Classify(biosig.Segment{Samples: segments[i]})
		if err != nil {
			return fmt.Errorf("xpro: segment %d: %w", i, err)
		}
		labels[i] = label
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.observePlainEvents(len(labels))
	return labels, nil
}

// StreamParallel classifies segments arriving on in across up to
// workers goroutines with ordered delivery: results appear on the
// returned channel in input order regardless of which worker finishes
// first, with a bounded in-flight window exerting backpressure on the
// producer. The channel closes after the last result. On ctx
// cancellation the stream stops consuming in and closes after
// in-flight events drain; events claimed but not yet run are reported
// with an ErrCanceled error. On an engine with a Resilience policy
// events run sequentially through the ladder (the modeled timeline is
// serial), preserving the Stream ordering and degradation semantics.
// The caller must drain the returned channel.
func (e *Engine) StreamParallel(ctx context.Context, in <-chan []float64, workers int) <-chan StreamResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if e.res != nil || workers == 1 {
		out := make(chan StreamResult)
		go func() {
			defer close(out)
			i := 0
			for {
				select {
				case s, ok := <-in:
					if !ok {
						return
					}
					res, err := e.ClassifyResultContext(ctx, s)
					out <- StreamResult{Index: i, Result: res, Err: err}
					i++
					if err != nil && errors.Is(err, ErrCanceled) {
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}()
		return out
	}

	jobs := make(chan func() StreamResult)
	go func() {
		defer close(jobs)
		i := 0
		for {
			select {
			case s, ok := <-in:
				if !ok {
					return
				}
				idx, seg := i, s
				i++
				jobs <- func() StreamResult {
					if err := ctx.Err(); err != nil {
						return StreamResult{Index: idx, Err: e.canceledError(err)}
					}
					label, err := e.sys().Classify(biosig.Segment{Samples: seg})
					if err != nil {
						return StreamResult{Index: idx, Err: err}
					}
					return StreamResult{Index: idx, Result: Result{Label: label, Mode: ModeFull}}
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return serve.Ordered(jobs, workers, 4*workers)
}

// ServeOptions configures a Fleet. Zero values take defaults.
type ServeOptions struct {
	// Workers is the worker-goroutine count (default GOMAXPROCS).
	// Subjects are sharded across workers; one subject always runs on
	// one worker, so per-subject FIFO ordering holds for any count.
	Workers int
	// QueueDepth bounds each worker's pending-event queue (default
	// serve.DefaultQueueDepth). Submissions beyond it are rejected with
	// ErrOverloaded instead of blocking.
	QueueDepth int
}

// Fleet serves a network's engines concurrently: a sharded worker pool
// with per-subject FIFO ordering, bounded queues with typed
// backpressure, and context-based cancellation threaded through the
// resilient classify path. All methods are safe for concurrent use.
type Fleet struct {
	pool    *serve.Pool
	engines map[string]*Engine
	shards  map[string]uint64
	names   []string
	obs     *Observer
}

// Serve starts a fleet over the network's engines. Subjects are
// assigned to workers round-robin in sorted-name order, so the
// engine→worker mapping is deterministic for a given (subject set,
// worker count). Close the fleet to drain and stop it; the network
// itself remains usable afterwards.
func (n *Network) Serve(opt ServeOptions) (*Fleet, error) {
	if opt.Workers < 0 || opt.QueueDepth < 0 {
		return nil, fmt.Errorf("xpro: negative ServeOptions (workers %d, queue depth %d)", opt.Workers, opt.QueueDepth)
	}
	pool := serve.NewPool(serve.Options{
		Workers: opt.Workers, QueueDepth: opt.QueueDepth,
		// Belt and braces under the fleet's own per-job recover (see
		// Fleet.run): any panic that still reaches a worker — a job
		// from a future code path, a panic inside the guard itself —
		// is counted and the worker replaced instead of crashing the
		// fleet.
		OnPanic: func(worker int, recovered any) {
			n.obs.reg.Counter("xpro_panics_total",
				"Panics contained by the serving runtime (worker replaced).").Inc()
		},
	})
	shards := make(map[string]uint64, len(n.names))
	for i, name := range n.names {
		shards[name] = uint64(i)
	}
	f := &Fleet{
		pool:    pool,
		engines: n.engines,
		shards:  shards,
		names:   n.names,
		obs:     n.obs,
	}
	n.obs.reg.Gauge("xpro_fleet_workers",
		"Worker goroutines of the serving fleet.").Set(float64(pool.Workers()))
	return f, nil
}

// Subjects lists the fleet's subject names, sorted.
func (f *Fleet) Subjects() []string { return f.names }

// Workers returns the fleet's worker count.
func (f *Fleet) Workers() int { return f.pool.Workers() }

// FleetResult is one served classification.
type FleetResult struct {
	// Subject names the engine that served the event.
	Subject string
	Result  Result
	Err     error
}

// Submit enqueues one segment for a subject and returns a channel that
// delivers the single result when the subject's worker reaches it.
// Submission never blocks: a full worker queue returns ErrOverloaded
// (nothing enqueued), a closed fleet ErrFleetClosed. Events of one
// subject are served in submission order.
func (f *Fleet) Submit(ctx context.Context, subject string, samples []float64) (<-chan FleetResult, error) {
	e, ok := f.engines[subject]
	if !ok {
		return nil, fmt.Errorf("xpro: fleet has no subject %q", subject)
	}
	ch := make(chan FleetResult, 1)
	job := func() { ch <- f.run(ctx, e, subject, samples) }
	if err := f.pool.Submit(f.shards[subject], job); err != nil {
		f.obs.reg.Counter("xpro_fleet_rejected_total",
			"Fleet submissions rejected by backpressure or shutdown.").Inc()
		return nil, err
	}
	f.obs.reg.Counter("xpro_fleet_submitted_total",
		"Fleet events accepted for serving.").Inc()
	return ch, nil
}

// run executes one subject's classification inside the fleet's panic
// bulkhead: a panicking engine yields a typed *WorkerPanicError result
// (matching ErrWorkerPanic) instead of propagating — the worker
// survives, the subject's queue keeps draining in order, and the
// outcome counters stay truthful either way.
func (f *Fleet) run(ctx context.Context, e *Engine, subject string, samples []float64) (out FleetResult) {
	defer func() {
		if rec := recover(); rec != nil {
			f.obs.reg.Counter("xpro_panics_total",
				"Panics contained by the serving runtime (worker replaced).").Inc()
			f.obs.reg.Counter("xpro_fleet_errors_total",
				"Fleet events that completed with an error (including cancellations).").Inc()
			out = FleetResult{Subject: subject, Err: &WorkerPanicError{Subject: subject, Value: rec}}
		}
	}()
	res, err := e.ClassifyResultContext(ctx, samples)
	switch {
	case err == nil:
		f.obs.reg.Counter("xpro_fleet_served_total",
			"Fleet events served to completion.").Inc()
	case errors.Is(err, ErrSuspectData):
		// Quarantined, not failed: the subject's signal-quality gate
		// rejected the segment or flagged an imputation-heavy result
		// (see Config.Integrity). The worker served the event; the
		// caller decides whether a quarantined label is usable.
		f.obs.reg.Counter("xpro_fleet_suspect_total",
			"Fleet events quarantined by a subject's signal-quality gate.").Inc()
	case errors.Is(err, ErrNodeDown):
		// The subject's node is inside a crash/reboot window: the event
		// failed fast without touching the engine's pipeline. It still
		// counts as an errored event below the dedicated series.
		f.obs.reg.Counter("xpro_fleet_node_down_total",
			"Fleet events rejected because the subject's node was crashed or rebooting.").Inc()
		f.obs.reg.Counter("xpro_fleet_errors_total",
			"Fleet events that completed with an error (including cancellations).").Inc()
	default:
		f.obs.reg.Counter("xpro_fleet_errors_total",
			"Fleet events that completed with an error (including cancellations).").Inc()
	}
	return FleetResult{Subject: subject, Result: res, Err: err}
}

// Classify submits one segment and waits for its result. If ctx ends
// while the event is still queued, Classify returns an ErrCanceled
// error immediately; the queued event then resolves as canceled when
// its worker reaches it, without touching the engine's modeled state.
func (f *Fleet) Classify(ctx context.Context, subject string, samples []float64) (Result, error) {
	ch, err := f.Submit(ctx, subject, samples)
	if err != nil {
		return Result{}, err
	}
	select {
	case r := <-ch:
		return r.Result, r.Err
	case <-ctx.Done():
		return Result{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
}

// FleetRequest is one entry of a batched submission.
type FleetRequest struct {
	Subject string
	Samples []float64
}

// ClassifyBatch submits every request and waits for all accepted ones,
// returning one FleetResult per request in input order. Rejections
// (unknown subject, ErrOverloaded backpressure, closed fleet) are
// reported per-result, not by failing the batch: under overload the
// accepted prefix of each subject's events still serves in order.
func (f *Fleet) ClassifyBatch(ctx context.Context, reqs []FleetRequest) []FleetResult {
	out := make([]FleetResult, len(reqs))
	chans := make([]<-chan FleetResult, len(reqs))
	for i, rq := range reqs {
		ch, err := f.Submit(ctx, rq.Subject, rq.Samples)
		if err != nil {
			out[i] = FleetResult{Subject: rq.Subject, Err: err}
			continue
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		if ch == nil {
			continue
		}
		select {
		case r := <-ch:
			out[i] = r
		case <-ctx.Done():
			out[i] = FleetResult{Subject: reqs[i].Subject,
				Err: fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())}
		}
	}
	return out
}

// Close stops accepting new submissions and blocks until every queued
// event has been served — in-flight work drains, it is never dropped.
// Closing any number of times, from any number of goroutines, or mixed
// with CloseWithin, is safe: every call observes the one shutdown the
// pool runs under its own sync.Once pair.
func (f *Fleet) Close() { f.pool.Close() }

// CloseWithin is Close bounded by a wall-clock drain budget: intake
// stops immediately, and if the queued events do not finish within d
// the call returns the pool's *serve.DrainTimeoutError (reporting the
// jobs still pending) while the drain continues in the background. A
// later Close waits for that same drain to finish.
func (f *Fleet) CloseWithin(d time.Duration) error { return f.pool.CloseWithin(d) }
