package faults

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"xpro/internal/wireless"
)

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v", c.Now())
	}
	c.Advance(1.5)
	c.Advance(-3) // ignored: modeled time never runs backwards
	c.Advance(0.5)
	if c.Now() != 2 {
		t.Errorf("clock at %v, want 2", c.Now())
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Windows: []Window{{Kind: LinkOutage, Start: 2, End: 1}}},
		{Windows: []Window{{Kind: LinkOutage, Start: -1, End: 1}}},
		{Windows: []Window{{Kind: LinkOutage, Start: math.NaN(), End: 1}}},
		{Windows: []Window{{Kind: LinkOutage, Start: 0, End: math.Inf(1)}}},
		{Windows: []Window{{Kind: LossBurst, Start: 0, End: 1, Loss: math.NaN()}}},
		{Windows: []Window{{Kind: LossBurst, Start: 0, End: 1, Loss: 1.5}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d should be invalid: %+v", i, p.Windows)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	ok := Plan{Windows: []Window{{Kind: LossBurst, Start: 0, End: 1, Loss: 0.5}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestPlanAtUntil(t *testing.T) {
	p := &Plan{Windows: []Window{
		{Kind: LinkOutage, Start: 1, End: 3},
		{Kind: LinkOutage, Start: 2, End: 5},
		{Kind: LossBurst, Start: 0, End: 2, Loss: 0.3},
		{Kind: LossBurst, Start: 1, End: 2, Loss: 0.7},
		{Kind: Brownout, Start: 10, End: 11},
		{Kind: AggStall, Start: 10, End: 12},
	}}
	st := p.At(1.5)
	if !st.LinkDown || st.Loss != 0.7 || st.Brownout || st.AggStall {
		t.Errorf("state at 1.5: %+v", st)
	}
	if st := p.At(10.5); !st.Brownout || !st.AggStall || st.LinkDown {
		t.Errorf("state at 10.5: %+v", st)
	}
	// Half-open intervals: the window end is outside.
	if st := p.At(5); st.LinkDown {
		t.Error("window end should be outside the window")
	}
	// Until spans overlapping windows of the kind.
	if got := p.Until(2.5, LinkOutage); got != 5 {
		t.Errorf("Until(2.5, outage) = %v, want 5", got)
	}
	if got := p.Until(7, LinkOutage); got != 7 {
		t.Errorf("Until outside any window = %v, want 7", got)
	}
	if h := p.Horizon(); h != 12 {
		t.Errorf("horizon = %v, want 12", h)
	}
	var nilPlan *Plan
	if st := nilPlan.At(1); st != (State{}) {
		t.Errorf("nil plan state: %+v", st)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	cfg := PlanConfig{Horizon: 60, Outages: 2, Bursts: 3, Brownouts: 1, Stalls: 1}
	a := RandomPlan(42, cfg)
	b := RandomPlan(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must produce the identical plan")
	}
	c := RandomPlan(43, cfg)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should produce different plans")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("random plan invalid: %v", err)
	}
	if len(a.Windows) != 7 {
		t.Errorf("windows = %d, want 7", len(a.Windows))
	}
}

func TestScenarios(t *testing.T) {
	for _, name := range ScenarioNames() {
		p, err := Scenario(name, 1, 30)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Windows) == 0 {
			t.Errorf("%s: empty plan", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
	}
	if _, err := Scenario("nope", 1, 30); err == nil {
		t.Error("unknown scenario should error")
	}
	if _, err := Scenario("outage", 1, 0); err == nil {
		t.Error("non-positive horizon should error")
	}
	if _, err := Scenario("outage", 1, math.NaN()); err == nil {
		t.Error("NaN horizon should error")
	}
}

func TestBackoff(t *testing.T) {
	b := Backoff{Base: 1e-3, Max: 8e-3, Factor: 2}
	want := []float64{1e-3, 2e-3, 4e-3, 8e-3, 8e-3}
	for n, w := range want {
		if got := b.Delay(n); math.Abs(got-w) > 1e-12 {
			t.Errorf("delay(%d) = %v, want %v", n, got, w)
		}
	}
	if (Backoff{}).Delay(3) != 0 {
		t.Error("zero backoff should wait nothing")
	}
	if err := (Backoff{Base: math.NaN()}).Validate(); err == nil {
		t.Error("NaN base should be invalid")
	}
	if err := (Backoff{Base: 1, Max: -1}).Validate(); err == nil {
		t.Error("negative max should be invalid")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := &Clock{}
	var transitions []BreakerState
	b, err := NewBreaker(3, 5, clock)
	if err != nil {
		t.Fatal(err)
	}
	b.OnTransition = func(from, to BreakerState) { transitions = append(transitions, to) }

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker should be closed")
	}
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != BreakerClosed {
		t.Fatal("under threshold should stay closed")
	}
	b.RecordSuccess() // resets the streak
	b.RecordFailure()
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("threshold consecutive failures should trip the breaker")
	}

	clock.Advance(4.9)
	if b.Allow() {
		t.Fatal("open before cooldown elapses")
	}
	clock.Advance(0.2)
	if b.State() != BreakerHalfOpen || !b.Allow() {
		t.Fatal("cooldown elapsed should half-open")
	}
	b.RecordFailure() // failed probe reopens
	if b.State() != BreakerOpen {
		t.Fatal("failed probe should reopen")
	}
	clock.Advance(6)
	if b.State() != BreakerHalfOpen {
		t.Fatal("second cooldown should half-open again")
	}
	b.RecordSuccess()
	if b.State() != BreakerClosed || b.Failures() != 0 {
		t.Fatal("successful probe should close and reset")
	}

	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if !reflect.DeepEqual(transitions, want) {
		t.Errorf("transitions %v, want %v", transitions, want)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, err := NewBreaker(0, 1, &Clock{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		b.RecordFailure()
	}
	if !b.Allow() {
		t.Error("threshold 0 should never trip")
	}
}

func TestBreakerValidation(t *testing.T) {
	if _, err := NewBreaker(3, 1, nil); err == nil {
		t.Error("nil clock should error")
	}
	if _, err := NewBreaker(3, math.NaN(), &Clock{}); err == nil {
		t.Error("NaN cooldown should error")
	}
	if _, err := NewBreaker(3, -1, &Clock{}); err == nil {
		t.Error("negative cooldown should error")
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []Policy{
		{Deadline: math.NaN()},
		{Deadline: math.Inf(1)},
		{Deadline: -1},
		{MaxRetries: -1},
		{Backoff: Backoff{Base: math.NaN()}},
		{BreakerThreshold: -1},
		{BreakerCooldown: math.NaN()},
		{MinVotes: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d should be invalid: %+v", i, p)
		}
	}
}

func TestLinkValidation(t *testing.T) {
	m := wireless.Model2()
	if _, err := NewLink(m, nil, nil, 0, 0, 1); err == nil {
		t.Error("nil clock should error")
	}
	if _, err := NewLink(m, nil, &Clock{}, math.NaN(), 0, 1); err == nil {
		t.Error("NaN base loss should error")
	}
	if _, err := NewLink(m, nil, &Clock{}, 1, 0, 1); err == nil {
		t.Error("loss 1 should error")
	}
	if _, err := NewLink(m, nil, &Clock{}, 0, -1, 1); err == nil {
		t.Error("negative retries should error")
	}
	badPlan := &Plan{Windows: []Window{{Kind: LinkOutage, Start: 2, End: 1}}}
	if _, err := NewLink(m, badPlan, &Clock{}, 0, 0, 1); err == nil {
		t.Error("invalid plan should error")
	}
}

func TestLinkOutageAndBursts(t *testing.T) {
	plan := &Plan{Windows: []Window{
		{Kind: LinkOutage, Start: 10, End: 20},
		{Kind: LossBurst, Start: 30, End: 40, Loss: 1}, // certain loss
	}}
	clock := &Clock{}
	l, err := NewLink(wireless.Model2(), plan, clock, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Clean period: every send succeeds with the clean-channel cost.
	tr, err := l.Send(256)
	if err != nil {
		t.Fatalf("clean send: %v", err)
	}
	if want := wireless.Model2().Cost(256); tr != want {
		t.Errorf("clean transfer %+v, want %+v", tr, want)
	}

	// Outage: immediate *ErrLinkDown with zero cost, reporting the window.
	clock.Advance(15)
	tr, err = l.Send(256)
	var down *ErrLinkDown
	if !errors.As(err, &down) {
		t.Fatalf("outage send err = %v, want *ErrLinkDown", err)
	}
	if down.At != 15 || down.Until != 20 {
		t.Errorf("outage err %+v, want at 15 until 20", down)
	}
	if tr.WireBits != 0 {
		t.Errorf("outage should not put bits on the air, got %d", tr.WireBits)
	}
	if !IsLinkDown(err) {
		t.Error("IsLinkDown should see through")
	}

	// Certain-loss burst: retries exhaust, *wireless.ErrDropped with the
	// partial (all-attempts) cost accounted.
	clock.Advance(20) // t=35
	tr, err = l.Send(100)
	var dropped *wireless.ErrDropped
	if !errors.As(err, &dropped) {
		t.Fatalf("burst send err = %v, want *wireless.ErrDropped", err)
	}
	attempts := int64(3) // 1 + MaxRetries
	if want := attempts * (100 + wireless.HeaderBits); tr.WireBits != want {
		t.Errorf("burst wire bits %d, want %d", tr.WireBits, want)
	}
}

func TestLinkDeterministic(t *testing.T) {
	plan := &Plan{Windows: []Window{{Kind: LossBurst, Start: 0, End: 100, Loss: 0.5}}}
	run := func() []error {
		clock := &Clock{}
		l, err := NewLink(wireless.Model2(), plan, clock, 0, 1, 99)
		if err != nil {
			t.Fatal(err)
		}
		var out []error
		for i := 0; i < 50; i++ {
			_, err := l.Send(512)
			out = append(out, err)
			clock.Advance(1)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("send %d diverged between identical seeded runs", i)
		}
	}
}
