package svm

import (
	"fmt"
	"math"
	"sort"
)

// Prune returns a copy of the model keeping only the ceil(keepFrac·n)
// support vectors with the largest |coefficient|. Small-coefficient SVs
// contribute least to the decision function, so pruning trades a little
// accuracy for a proportional cut in the in-sensor SVM cell's energy and
// latency (which scale with the SV count, §5.5). Linear models are
// returned unchanged — their cell already collapses to one dot product.
func (m *Model) Prune(keepFrac float64) (*Model, error) {
	if keepFrac <= 0 || keepFrac > 1 {
		return nil, fmt.Errorf("svm: keep fraction %v outside (0,1]", keepFrac)
	}
	if m.Kernel == Linear || len(m.Vectors) == 0 {
		return m, nil
	}
	n := len(m.Vectors)
	keep := int(math.Ceil(keepFrac * float64(n)))
	if keep >= n {
		return m, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return math.Abs(m.Coeffs[idx[a]]) > math.Abs(m.Coeffs[idx[b]])
	})
	out := &Model{Kernel: m.Kernel, Gamma: m.Gamma, Bias: m.Bias}
	// Rescale the kept coefficients so the summed positive and negative
	// masses match the original model's — first-order compensation for
	// the dropped mass, keeping the decision boundary near its place.
	var posAll, negAll, posKeep, negKeep float64
	for _, c := range m.Coeffs {
		if c > 0 {
			posAll += c
		} else {
			negAll -= c
		}
	}
	for _, i := range idx[:keep] {
		if c := m.Coeffs[i]; c > 0 {
			posKeep += c
		} else {
			negKeep -= c
		}
	}
	posScale, negScale := 1.0, 1.0
	if posKeep > 0 {
		posScale = posAll / posKeep
	}
	if negKeep > 0 {
		negScale = negAll / negKeep
	}
	for _, i := range idx[:keep] {
		out.Vectors = append(out.Vectors, m.Vectors[i])
		c := m.Coeffs[i]
		if c > 0 {
			c *= posScale
		} else {
			c *= negScale
		}
		out.Coeffs = append(out.Coeffs, c)
	}
	return out, nil
}
