package hdl

import (
	"math"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/ensemble"
	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"

	"xpro/internal/aggregator"
)

type fixture struct {
	graph *topology.Graph
	hw    *sensornode.Hardware
	cross partition.Placement
}

var cached *fixture

func getFixture(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	spec, err := biosig.CaseBySymbol("E1")
	if err != nil {
		t.Fatal(err)
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(21))
	train, _ := d.Split(0.75, rng)
	cfg := ensemble.DefaultConfig(21)
	cfg.Candidates = 8
	cfg.Folds = 2
	cfg.TopFrac = 0.4
	ens, err := ensemble.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Build(ens, d.SegLen)
	if err != nil {
		t.Fatal(err)
	}
	hw := sensornode.Characterize(g, celllib.P90)
	a, err := xsystem.New(g, ens, celllib.P90, wireless.Model2(), aggregator.CortexA8(), partition.InAggregator(g), sensornode.DefaultSampleRateHz)
	if err != nil {
		t.Fatal(err)
	}
	s, err := xsystem.New(g, ens, celllib.P90, wireless.Model2(), aggregator.CortexA8(), partition.InSensor(g), sensornode.DefaultSampleRateHz)
	if err != nil {
		t.Fatal(err)
	}
	limit := math.Min(a.DelayPerEvent().Total(), s.DelayPerEvent().Total())
	res, err := a.Problem().Generate(func(p partition.Placement) float64 { return a.DelayOf(p).Total() }, limit)
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{graph: g, hw: hw, cross: res.Placement}
	return cached
}

func TestIdent(t *testing.T) {
	cases := map[string]string{
		"dwt3/Kurt":        "dwt3_kurt",
		"time/Max":         "time_max",
		"SVM1":             "svm1",
		"time/Std(reuse)":  "time_std_reuse",
		"":                 "u_",
		"3weird":           "u_3weird",
		"__already_clean_": "already_clean",
	}
	for in, want := range cases {
		if got := Ident(in); got != want {
			t.Errorf("Ident(%q) = %q, want %q", in, got, want)
		}
	}
}

var identRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

func TestGenerateVerilogStructure(t *testing.T) {
	f := getFixture(t)
	for _, p := range []partition.Placement{partition.InSensor(f.graph), partition.Trivial(f.graph), f.cross} {
		v, err := GenerateVerilog(f.graph, p, f.hw)
		if err != nil {
			t.Fatal(err)
		}
		// Balanced modules: one per sensor cell + the top.
		sensorCells, _ := p.Counts()
		wantModules := sensorCells + 1
		if got := strings.Count(v, "\nmodule ") + boolToInt(strings.HasPrefix(v, "module ")); got != wantModules {
			t.Errorf("modules = %d, want %d", got, wantModules)
		}
		if strings.Count(v, "endmodule") != wantModules {
			t.Errorf("endmodule count = %d, want %d", strings.Count(v, "endmodule"), wantModules)
		}
		// Every sensor cell instantiated exactly once in the top.
		for _, id := range p.SensorCells() {
			inst := "u_" + Ident(f.graph.Cells[id].Name)
			if strings.Count(v, " "+inst+" (") != 1 {
				t.Errorf("cell %s instantiated %d times", inst, strings.Count(v, " "+inst+" ("))
			}
		}
		// All emitted module names are valid identifiers.
		for _, line := range strings.Split(v, "\n") {
			if rest, ok := strings.CutPrefix(line, "module "); ok {
				name := rest[:strings.IndexAny(rest, " #(")]
				if !identRe.MatchString(name) {
					t.Errorf("invalid module identifier %q", name)
				}
			}
		}
		if !strings.Contains(v, "xpro_top") || !strings.Contains(v, "result_valid") {
			t.Error("top module malformed")
		}
	}
}

func TestGenerateVerilogBoundary(t *testing.T) {
	f := getFixture(t)
	// Trivial cut: features on sensor, SVMs on aggregator → the top must
	// expose tx ports for the crossing feature values and no rx ports.
	v, err := GenerateVerilog(f.graph, partition.Trivial(f.graph), f.hw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "output wire tx_") {
		t.Error("trivial cut must transmit feature payloads")
	}
	if strings.Contains(v, "input  wire rx_") && strings.Contains(v, "rx__valid") {
		t.Error("malformed rx port")
	}
	// In-sensor engine: only the result crosses.
	v, err = GenerateVerilog(f.graph, partition.InSensor(f.graph), f.hw)
	if err != nil {
		t.Fatal(err)
	}
	txValid := regexp.MustCompile(`tx_([a-z0-9_]+)_valid,`)
	names := map[string]bool{}
	for _, m := range txValid.FindAllStringSubmatch(v, -1) {
		names[m[1]] = true
	}
	if len(names) != 1 || !names["result"] {
		t.Errorf("in-sensor engine should expose only the result tx port, got %v", names)
	}
	if !strings.Contains(v, "assign result_valid = v_fusion") {
		t.Error("in-sensor engine must drive result_valid from the fusion cell")
	}
}

func TestGenerateVerilogErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := GenerateVerilog(f.graph, partition.Placement{partition.Sensor}, f.hw); err == nil {
		t.Error("short placement should error")
	}
	if _, err := GenerateVerilog(f.graph, partition.InAggregator(f.graph), f.hw); err == nil {
		t.Error("no sensor cells should error")
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func section(v, marker string) string {
	i := strings.Index(v, marker)
	if i < 0 {
		return ""
	}
	end := i + 800
	if end > len(v) {
		end = len(v)
	}
	return v[i:end]
}
