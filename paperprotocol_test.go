package xpro

import (
	"os"
	"testing"
)

// TestPaperProtocol runs the full §4.4 training protocol (100 candidate
// base classifiers, 10-fold cross-validation) on one case end to end.
// It takes several minutes, so it is gated behind an environment flag:
//
//	XPRO_PAPER_PROTOCOL=1 go test -run TestPaperProtocol -timeout 30m .
func TestPaperProtocol(t *testing.T) {
	if os.Getenv("XPRO_PAPER_PROTOCOL") == "" {
		t.Skip("set XPRO_PAPER_PROTOCOL=1 to run the full training protocol")
	}
	eng, err := New(Config{Case: "C1", Protocol: ProtocolPaper})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	if rep.SoftwareAccuracy < 0.9 {
		t.Errorf("paper-protocol accuracy = %v, want ≥ 0.9", rep.SoftwareAccuracy)
	}
	// The paper keeps the top 10% of 100 candidates: 10 base
	// classifiers, hence 10 SVM cells.
	svmCells := 0
	for _, cp := range eng.Placement() {
		if cp.Role == "svm" {
			svmCells++
		}
	}
	if svmCells != 10 {
		t.Errorf("paper protocol should yield 10 SVM cells, got %d", svmCells)
	}
	if rep.DelayPerEventSeconds >= 4e-3 {
		t.Errorf("delay %v ≥ 4 ms", rep.DelayPerEventSeconds)
	}
}
