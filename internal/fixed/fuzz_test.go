package fixed

import (
	"math"
	"testing"
)

// FuzzArithmetic checks that every operation is total (no panics) and
// respects saturation bounds for arbitrary operands.
func FuzzArithmetic(f *testing.F) {
	f.Add(int32(0), int32(0))
	f.Add(int32(math.MaxInt32), int32(math.MinInt32))
	f.Add(int32(1<<16), int32(-1<<16))
	f.Add(int32(12345), int32(-99999))
	f.Fuzz(func(t *testing.T, a, b int32) {
		x, y := Num(a), Num(b)
		for _, v := range []Num{
			Add(x, y), Sub(x, y), Mul(x, y), Div(x, y),
			Neg(x), Abs(x), Sqrt(x), Exp(x), Recip(x),
		} {
			_ = v // all results are valid Nums by construction
		}
		if Abs(x) < 0 {
			t.Errorf("Abs(%d) = %d is negative", x, Abs(x))
		}
		if s := Sqrt(x); s < 0 {
			t.Errorf("Sqrt(%d) = %d is negative", x, s)
		}
		if e := Exp(x); e < 0 {
			t.Errorf("Exp(%d) = %d is negative", x, e)
		}
		// Division must agree with float math when well inside range.
		if y != 0 {
			got := Div(x, y).Float()
			want := x.Float() / y.Float()
			if math.Abs(want) < 30000 && math.Abs(y.Float()) > 1e-3 {
				if math.Abs(got-want) > 2e-3*math.Max(1, math.Abs(want)) {
					t.Errorf("Div(%v,%v) = %v, want ≈ %v", x.Float(), y.Float(), got, want)
				}
			}
		}
	})
}

// FuzzFromFloat checks the float conversion round-trips within the
// representable range and saturates cleanly outside it.
func FuzzFromFloat(f *testing.F) {
	f.Add(0.0)
	f.Add(1.5)
	f.Add(-32768.0)
	f.Add(1e300)
	f.Add(math.Inf(-1))
	f.Fuzz(func(t *testing.T, v float64) {
		n := FromFloat(v)
		back := n.Float()
		switch {
		case math.IsNaN(v):
			if n != 0 {
				t.Errorf("FromFloat(NaN) = %v", n)
			}
		case v >= Max.Float():
			if n != Max {
				t.Errorf("FromFloat(%v) = %v, want Max", v, n)
			}
		case v <= Min.Float():
			if n != Min {
				t.Errorf("FromFloat(%v) = %v, want Min", v, n)
			}
		default:
			if math.Abs(back-v) > 1.0/(1<<17)+1e-12*math.Abs(v) {
				t.Errorf("round trip %v → %v drifts", v, back)
			}
		}
	})
}
