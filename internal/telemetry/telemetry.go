// Package telemetry is the observability substrate of the xpro
// reproduction: a dependency-free, concurrency-safe metrics registry
// (counters, gauges and fixed-bucket histograms), a bounded span tracer
// recording per-cell execution, and an opt-in introspection HTTP server
// (server.go) exposing Prometheus-style text exposition, the span ring
// and pprof.
//
// The paper argues at the granularity of functional cells (§3); this
// package makes that granularity observable at runtime: where time,
// energy and failures go while the partitioned engine classifies, the
// generator solves cuts, and the event simulator schedules transfers.
//
// Two properties keep instrumentation call sites clean:
//
//   - Every handle is nil-tolerant: a nil *Registry hands out nil
//     *Counter/*Gauge/*Histogram handles, and every method on a nil
//     handle (including a nil *Tracer) is a no-op. Instrumented code
//     therefore never needs nil guards.
//
//   - Registration is get-or-create and idempotent: asking twice for
//     the same name returns the same metric, so hot paths can resolve
//     handles on every call without bookkeeping.
//
// A process-wide Default registry catches instrumentation from
// components not explicitly wired to an engine-local registry (e.g. the
// experiment harness), so CLI tools can expose the whole process with
// one server.
package telemetry

import (
	"expvar"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind discriminates the registry's metric types.
type MetricKind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter MetricKind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
	// KindQuantile is a windowed quantile sketch, exposed in the
	// Prometheus summary shape: windowed quantiles plus cumulative
	// _sum and _count.
	KindQuantile
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindQuantile:
		return "summary"
	default:
		return "untyped"
	}
}

// DurationBuckets is the default histogram layout for wall-time
// observations: decades from 1 µs to 10 s.
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Counter is a monotonically increasing float64. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v. Negative and NaN deltas are ignored
// (counters are monotonic).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an arbitrary float64 value. The zero value is ready to use;
// a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increases (or, for negative v, decreases) the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative in
// exposition (Prometheus semantics): bucket le=u counts observations
// v ≤ u, with an implicit +Inf bucket. A nil *Histogram is a no-op.
type Histogram struct {
	uppers  []float64
	buckets []atomic.Uint64 // len(uppers)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(uppers []float64) *Histogram {
	us := append([]float64(nil), uppers...)
	sort.Float64s(us)
	// Drop duplicates and non-finite bounds (+Inf is implicit).
	dst := us[:0]
	for _, u := range us {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			continue
		}
		if len(dst) == 0 || dst[len(dst)-1] != u {
			dst = append(dst, u)
		}
	}
	us = dst
	return &Histogram{uppers: us, buckets: make([]atomic.Uint64, len(us)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first upper bound ≥ v
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry. A nil *Registry hands out nil
// metric handles, so instrumentation through an unset registry is free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	quants   map[string]*Quantile
	help     map[string]string     // keyed by family name
	kinds    map[string]MetricKind // keyed by family name
	order    []string              // full names in registration order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		quants:   make(map[string]*Quantile),
		help:     make(map[string]string),
		kinds:    make(map[string]MetricKind),
	}
}

var std = NewRegistry()

// Default returns the process-wide registry: the sink for components
// that were not wired to an explicit registry.
func Default() *Registry { return std }

// defaultTracer is the process-wide span sink, nil unless installed.
var defaultTracer atomic.Pointer[Tracer]

// DefaultTracer returns the process-wide tracer, or nil when none has
// been installed — tracing is opt-in.
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// SetDefaultTracer installs (or, with nil, removes) the process-wide
// tracer used by components without an explicit one.
func SetDefaultTracer(t *Tracer) { defaultTracer.Store(t) }

// familyOf strips the {label} suffix, if any, from a full metric name.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// sanitizeName maps name to the exposition character set
// [a-zA-Z0-9_:]; the {label="value"} suffix, if present, is kept as is.
func sanitizeName(name string) string {
	fam := familyOf(name)
	clean := []byte(fam)
	for i := 0; i < len(clean); i++ {
		c := clean[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			clean[i] = '_'
		}
	}
	return string(clean) + name[len(fam):]
}

// claim reserves a family for kind and records its help text. It
// reports whether the family is usable for that kind.
func (r *Registry) claim(name string, kind MetricKind, help string) bool {
	fam := familyOf(name)
	if k, ok := r.kinds[fam]; ok && k != kind {
		return false
	}
	r.kinds[fam] = kind
	if _, ok := r.help[fam]; !ok && help != "" {
		r.help[fam] = help
	}
	return true
}

// Counter returns the counter registered under name, creating it on
// first use. name may carry a {label="value"} suffix built with
// WithLabels; all series of one family share kind and help. Asking for
// a name already registered as a different kind returns a detached,
// unexported counter so the call site still works.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if !r.claim(name, KindCounter, help) {
		return new(Counter)
	}
	c := new(Counter)
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. See Counter for naming and clash semantics.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if !r.claim(name, KindGauge, help) {
		return new(Gauge)
	}
	g := new(Gauge)
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls reuse
// the first layout). See Counter for naming and clash semantics.
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if !r.claim(name, KindHistogram, help) {
		return newHistogram(uppers)
	}
	h := newHistogram(uppers)
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// Quantile returns the windowed quantile series registered under
// name, creating it with the given rolling window on first use (later
// calls reuse the first window; non-positive windows take
// DefaultSLOWindowSeconds). See Counter for naming and clash
// semantics.
func (r *Registry) Quantile(name, help string, windowSeconds float64) *Quantile {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if q, ok := r.quants[name]; ok {
		return q
	}
	if !r.claim(name, KindQuantile, help) {
		return newQuantile(windowSeconds)
	}
	q := newQuantile(windowSeconds)
	r.quants[name] = q
	r.order = append(r.order, name)
	return q
}

// WithLabels renders name{k="v",...} with keys sorted and values
// escaped, the exposition-format series name for a labeled metric.
func WithLabels(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// PublishExpvar publishes the registry's live snapshot under the given
// expvar name (visible on /debug/vars). Publishing the same name twice
// is a no-op, so multiple components may race to publish safely.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || name == "" {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := make(map[string]any)
		for _, m := range r.Snapshot() {
			switch m.Kind {
			case KindHistogram:
				out[m.Name] = map[string]any{"count": m.Count, "sum": m.Sum}
			default:
				out[m.Name] = m.Value
			}
		}
		return out
	}))
}

var publishMu sync.Mutex
