package ensemble

import (
	"errors"
	"fmt"

	"xpro/internal/biosig"
)

// This file implements the paper's §5.7 multi-classification extension:
// "If multi-classification is needed, we can simply add more base
// classifiers that extend only the topology of generic classification.
// The rest of the proposed methodology can be applied directly."
//
// We realize that as one-vs-rest: one binary random-subspace ensemble
// per class, each contributing its base classifiers to the shared
// functional-cell topology; the fused per-class scores are combined by
// argmax.

// MultiEnsemble is a one-vs-rest multi-class classifier.
type MultiEnsemble struct {
	Classes int
	// Heads[c] is the binary ensemble separating class c from the rest.
	Heads []*Ensemble
}

// ErrBadClassCount reports an unusable class count.
var ErrBadClassCount = errors.New("ensemble: multi-class training needs ≥ 3 classes (use Train for binary)")

// TrainMulticlass fits a one-vs-rest ensemble on a dataset whose labels
// range over 0..classes-1. Each head is trained with the same protocol
// cfg (its seed offset by the class index to decorrelate subspaces).
func TrainMulticlass(train *biosig.Dataset, classes int, cfg Config) (*MultiEnsemble, error) {
	if classes < 3 {
		return nil, ErrBadClassCount
	}
	seen := make(map[int]bool)
	for _, s := range train.Segs {
		if s.Label < 0 || s.Label >= classes {
			return nil, fmt.Errorf("ensemble: label %d outside 0..%d", s.Label, classes-1)
		}
		seen[s.Label] = true
	}
	if len(seen) != classes {
		return nil, fmt.Errorf("ensemble: training set covers %d of %d classes", len(seen), classes)
	}
	me := &MultiEnsemble{Classes: classes}
	for c := 0; c < classes; c++ {
		rebin := &biosig.Dataset{Name: train.Name, Symbol: train.Symbol, SegLen: train.SegLen}
		for _, s := range train.Segs {
			label := 0
			if s.Label == c {
				label = 1
			}
			rebin.Segs = append(rebin.Segs, biosig.Segment{Samples: s.Samples, Label: label})
		}
		hcfg := cfg
		hcfg.Seed = cfg.Seed + int64(c)*7919
		hcfg.SVM.Seed = hcfg.Seed
		head, err := Train(rebin, hcfg)
		if err != nil {
			return nil, fmt.Errorf("ensemble: training head %d: %w", c, err)
		}
		me.Heads = append(me.Heads, head)
	}
	return me, nil
}

// Scores returns the fused one-vs-rest score of every class for a
// segment.
func (m *MultiEnsemble) Scores(seg biosig.Segment) ([]float64, error) {
	full, err := ExtractVector(seg)
	if err != nil {
		return nil, err
	}
	out := make([]float64, m.Classes)
	for c, head := range m.Heads {
		out[c] = head.ScoreSoft(full)
	}
	return out, nil
}

// Predict classifies a segment by argmax over the per-class scores.
func (m *MultiEnsemble) Predict(seg biosig.Segment) (int, error) {
	scores, err := m.Scores(seg)
	if err != nil {
		return 0, err
	}
	best := 0
	for c := 1; c < len(scores); c++ {
		if scores[c] > scores[best] {
			best = c
		}
	}
	return best, nil
}

// Accuracy evaluates the multi-class classifier on a dataset.
func (m *MultiEnsemble) Accuracy(d *biosig.Dataset) (float64, error) {
	if len(d.Segs) == 0 {
		return 0, errors.New("ensemble: empty evaluation set")
	}
	correct := 0
	for _, seg := range d.Segs {
		p, err := m.Predict(seg)
		if err != nil {
			return 0, err
		}
		if p == seg.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(d.Segs)), nil
}

// TotalBases counts base classifiers across all heads — the SVM cells a
// multi-class topology instantiates (§5.7: "add more base classifiers").
func (m *MultiEnsemble) TotalBases() int {
	n := 0
	for _, h := range m.Heads {
		n += len(h.Bases)
	}
	return n
}

// UsedFeatures returns the union of every head's used features, in
// canonical order.
func (m *MultiEnsemble) UsedFeatures() []FeatureSpec {
	seen := make(map[FeatureSpec]bool)
	for _, h := range m.Heads {
		for _, fs := range h.UsedFeatures() {
			seen[fs] = true
		}
	}
	var out []FeatureSpec
	for _, fs := range AllFeatureSpecs() {
		if seen[fs] {
			out = append(out, fs)
		}
	}
	return out
}

// UsedDomains returns the union of every head's used domains.
func (m *MultiEnsemble) UsedDomains() []int {
	seen := make(map[int]bool)
	for _, fs := range m.UsedFeatures() {
		seen[fs.Domain] = true
	}
	var out []int
	for d := 0; d < NumDomains; d++ {
		if seen[d] {
			out = append(out, d)
		}
	}
	return out
}
