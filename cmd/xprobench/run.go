package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"xpro/internal/ensemble"
	"xpro/internal/experiments"
	"xpro/internal/telemetry"
)

// run executes the tool against args, writing results to stdout and
// diagnostics to stderr. It returns the process exit code, which main
// passes to os.Exit — keeping the whole tool testable in-process.
//
// Experiment harnesses build their systems internally, so their runtime
// counters land on the process-global telemetry registry
// (telemetry.Default()); -metrics-addr serves that registry, and
// -trace-out installs the process-global span tracer before anything
// runs.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xprobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id (all, table1, fig4, fig8..fig13, headline, ext-lossy, ext-frontier, ext-faults, ext-adaptive, ...)")
	faultsOnly := fs.Bool("faults", false, "shorthand for -exp ext-faults: the graceful-degradation table under injected fault scenarios")
	adaptiveOnly := fs.Bool("adaptive", false, "shorthand for -exp ext-adaptive: the chaos-soak table comparing static, ladder and adaptive re-cut variants under channel drift")
	corruptionOnly := fs.Bool("corruption", false, "shorthand for -exp ext-corruption: the framed-transport vs bare-wire table under a seeded bit-flip storm")
	overloadOnly := fs.Bool("overload", false, "shorthand for -exp ext-overload: the flash-crowd table proving deadline-aware admission holds p99 under a 10x surge with strict-priority shedding")
	tierFaultsOnly := fs.Bool("tier-faults", false, "shorthand for -exp ext-tiered-faults: the hub-storm table comparing the static k-way walk, the 2-rung ladder and the tier-collapse ladder under identical seeded storms")
	parallel := fs.Int("parallel", 0, "worker-pool width for the ext-parallel experiment; with no -exp it is shorthand for -exp ext-parallel (0 = GOMAXPROCS, sequential comparison always included)")
	tiers := fs.Int("tiers", 0, "tier-chain depth for the ext-multiway experiment; with no -exp it is shorthand for -exp ext-multiway (0 = the canonical 3: sensor - hub - cloud)")
	cases := fs.String("cases", "", "comma-separated case symbols (default: all six)")
	protocol := fs.String("protocol", "fast", "training protocol: fast or paper")
	rate := fs.Float64("rate", 2048, "biosignal sampling rate in Hz")
	format := fs.String("format", "text", "output format: text, md or csv")
	metricsAddr := fs.String("metrics-addr", "", "serve the process-global /metrics, /trace and pprof on this address during the run (e.g. :9090)")
	traceOut := fs.String("trace-out", "", "record per-cell spans process-wide and write them as JSON to this file")
	record := fs.String("record", "", "append one benchmark trajectory point to this BENCH_*.json file (parses `go test -bench` output from -record-in) and exit")
	recordIn := fs.String("record-in", "-", "benchmark output to parse in -record mode (- = stdin)")
	recordNote := fs.String("record-note", "", "free-form note stored on the recorded trajectory point")
	logJSON := fs.String("log-json", "", "stream every engine's structured event log (one JSON record per classify / re-cut / breaker transition / quarantine) to this file during the run")
	sloFlag := fs.Bool("slo", false, "print the run's final SLO table: every windowed quantile series on the process-global registry")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *record != "" {
		in := io.Reader(os.Stdin)
		if *recordIn != "-" {
			f, err := os.Open(*recordIn)
			if err != nil {
				fmt.Fprintf(stderr, "xprobench: %v\n", err)
				return 1
			}
			defer f.Close()
			in = f
		}
		if err := recordBench(*record, in, *recordNote, stdout); err != nil {
			fmt.Fprintf(stderr, "xprobench: %v\n", err)
			return 1
		}
		return 0
	}

	of, err := experiments.ParseFormat(*format)
	if err != nil {
		fmt.Fprintf(stderr, "xprobench: %v\n", err)
		return 2
	}

	if *logJSON != "" {
		f, err := os.Create(*logJSON)
		if err != nil {
			fmt.Fprintf(stderr, "xprobench: %v\n", err)
			return 1
		}
		defer f.Close()
		// Every engine's event log mirrors its records to the
		// process-default sink, so one file collects the whole run.
		telemetry.SetDefaultEventSink(f)
		defer telemetry.SetDefaultEventSink(nil)
	}

	var tracer *telemetry.Tracer
	if *traceOut != "" {
		// Install before any experiment runs so every Classify records.
		tracer = telemetry.NewTracer(2 * telemetry.DefaultTraceCapacity)
		telemetry.SetDefaultTracer(tracer)
		defer telemetry.SetDefaultTracer(nil)
	}
	if *metricsAddr != "" {
		srv := telemetry.NewServer(telemetry.Default(), tracer)
		addr, err := srv.Start(*metricsAddr)
		if err != nil {
			fmt.Fprintf(stderr, "xprobench: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "introspection: http://%s/ (/metrics /trace /debug/pprof)\n", addr)
	}

	lab := experiments.NewLab()
	lab.SampleRateHz = *rate
	switch *protocol {
	case "fast":
		lab.Config = ensemble.DefaultConfig
	case "paper":
		lab.Config = ensemble.PaperConfig
	default:
		fmt.Fprintf(stderr, "xprobench: unknown protocol %q\n", *protocol)
		return 2
	}
	if *cases != "" {
		lab.Cases = strings.Split(*cases, ",")
	}

	if *faultsOnly {
		*exp = "ext-faults"
	}
	if *adaptiveOnly {
		*exp = "ext-adaptive"
	}
	if *corruptionOnly {
		*exp = "ext-corruption"
	}
	if *overloadOnly {
		*exp = "ext-overload"
	}
	if *tierFaultsOnly {
		*exp = "ext-tiered-faults"
	}
	if *parallel != 0 {
		if *parallel < 0 {
			fmt.Fprintf(stderr, "xprobench: -parallel must be >= 0, got %d\n", *parallel)
			return 2
		}
		lab.ParallelWorkers = *parallel
		if *exp == "all" {
			*exp = "ext-parallel"
		}
	}
	if *tiers != 0 {
		if *tiers < 2 {
			fmt.Fprintf(stderr, "xprobench: -tiers must be >= 2, got %d\n", *tiers)
			return 2
		}
		lab.TierCount = *tiers
		if *exp == "all" {
			*exp = "ext-multiway"
		}
	}
	if *exp == "all" {
		err = experiments.AllFormat(lab, stdout, of)
	} else {
		err = experiments.RunFormat(lab, *exp, stdout, of)
	}
	if err != nil {
		fmt.Fprintf(stderr, "xprobench: %v\n", err)
		return 1
	}

	if *traceOut != "" {
		if err := writeTrace(tracer, *traceOut); err != nil {
			fmt.Fprintf(stderr, "xprobench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace: %d spans written to %s (%d recorded, %d dropped)\n",
			tracer.Len(), *traceOut, tracer.Recorded(), tracer.Dropped())
	}
	if *sloFlag {
		printSLOTable(stdout)
	}
	return 0
}

// printSLOTable renders every windowed quantile series that landed on
// the process-global registry during the run — the wall-time SLO view
// of the experiments just executed.
func printSLOTable(stdout io.Writer) {
	fmt.Fprintf(stdout, "\nSLO quantiles (process-global registry):\n")
	printed := 0
	for _, m := range telemetry.Default().Snapshot() {
		if m.Kind != telemetry.KindQuantile || m.Count == 0 {
			continue
		}
		fmt.Fprintf(stdout, "  %-40s n=%d", m.Name, m.Count)
		for _, q := range m.Quantiles {
			fmt.Fprintf(stdout, "  p%g=%.6g", q.Quantile*100, q.Value)
		}
		fmt.Fprintln(stdout)
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(stdout, "  (no quantile series observed)\n")
	}
}

func writeTrace(tr *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
