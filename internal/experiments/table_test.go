package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{ID: "fig0", Title: "sample", Header: []string{"Case", "Value"}}
	t.AddRow("C1", "1.25")
	t.AddRow("E1", "with, comma")
	t.AddNote("a note %d", 7)
	return t
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if _, err := sampleTable().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"### fig0: sample",
		"| Case | Value |",
		"| --- | --- |",
		"| C1 | 1.25 |",
		"> a note 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Case,Value\n",
		"C1,1.25\n",
		`"with, comma"`, // RFC-4180 quoting
		"# a note 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{"": FormatText, "text": FormatText, "md": FormatMarkdown, "markdown": FormatMarkdown, "csv": FormatCSV}
	for s, want := range cases {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestWriteDispatch(t *testing.T) {
	tab := sampleTable()
	for _, f := range []Format{FormatText, FormatMarkdown, FormatCSV} {
		var buf bytes.Buffer
		if err := tab.Write(&buf, f); err != nil {
			t.Fatalf("format %v: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %v produced nothing", f)
		}
	}
}

func TestRunFormatMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFormat(fastLab(), "fig4", &buf, FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "### fig4:") {
		t.Error("markdown experiment output malformed")
	}
}
