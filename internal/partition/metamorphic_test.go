package partition

import (
	"math/rand"
	"testing"

	"xpro/internal/topology"
	"xpro/internal/wireless"
)

// Metamorphic battery: transformations of the problem with a known
// relationship to the original must transform the chosen placement the
// known way — independent of any reference cost value.

// TestBandwidthScaleInvariance: scaling every link's bandwidth by a
// positive constant changes delays, not energies, so the chosen
// placement must not move.
func TestBandwidthScaleInvariance(t *testing.T) {
	for _, seed := range []int64{5, 16, 44} {
		rng := rand.New(rand.NewSource(seed))
		g := tinyDAG(rng, 5+rng.Intn(8))
		tp, err := tinyTiered(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		base, err := tp.Solve()
		if err != nil {
			t.Fatal(err)
		}
		for _, scale := range []float64{0.5, 2, 10} {
			scaled := *tp
			scaled.Hops = append([]Hop(nil), tp.Hops...)
			for h := range scaled.Hops {
				scaled.Hops[h].BandwidthScale = tp.Hops[h].BandwidthScale * scale
			}
			res, err := scaled.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Placement.Equal(base.Placement) {
				t.Errorf("seed %d scale %v: placement moved: %v vs %v", seed, scale, res.Placement, base.Placement)
			}
			if res.Cost != base.Cost {
				t.Errorf("seed %d scale %v: cost moved: %v vs %v", seed, scale, res.Cost, base.Cost)
			}
			// Delays DO scale: air seconds divide by the factor.
			bd, sbd := tp.Breakdown(base.Placement), scaled.Breakdown(res.Placement)
			for h := range bd.HopAirSeconds {
				if bd.HopAirSeconds[h] == 0 {
					continue
				}
				if got, want := sbd.HopAirSeconds[h]*scale, bd.HopAirSeconds[h]; got < want*0.999 || got > want*1.001 {
					t.Errorf("seed %d scale %v hop %d: air %v, want %v", seed, scale, h, sbd.HopAirSeconds[h], want/scale)
				}
			}
		}
	}
}

// TestRelabelInvariance: permuting cell IDs must permute the chosen
// placement the same way, and nothing else.
func TestRelabelInvariance(t *testing.T) {
	for _, seed := range []int64{8, 23, 31} {
		rng := rand.New(rand.NewSource(seed))
		g := tinyDAG(rng, 5+rng.Intn(7))
		tp, err := tinyTiered(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		base, err := tp.Solve()
		if err != nil {
			t.Fatal(err)
		}
		n := len(g.Cells)
		perm := make([]topology.CellID, n)
		for i, v := range rng.Perm(n) {
			perm[i] = topology.CellID(v)
		}
		rg, err := g.Relabel(perm)
		if err != nil {
			t.Fatal(err)
		}
		rtp, err := tinyTiered(rg, 3)
		if err != nil {
			t.Fatal(err)
		}
		rtp.SensingEnergy = tp.SensingEnergy
		res, err := rtp.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost < base.Cost-costTol(base.Cost) || res.Cost > base.Cost+costTol(base.Cost) {
			t.Errorf("seed %d: relabeled optimum %v, original %v", seed, res.Cost, base.Cost)
		}
		// The relabeled placement, pulled back through the permutation,
		// must be exactly the original (both are the deterministic
		// enumeration optimum of isomorphic problems — but enumeration
		// order differs under relabeling, so compare via cost-equality
		// of the pulled-back placement instead of tier-by-tier).
		pulled := make(TierPlacement, n)
		for old := 0; old < n; old++ {
			pulled[old] = res.Placement[perm[old]]
		}
		if err := tp.CheckPlacement(pulled); err != nil {
			t.Fatalf("seed %d: pulled-back placement infeasible: %v", seed, err)
		}
		if c := tp.Cost(pulled); c < base.Cost-costTol(base.Cost) || c > base.Cost+costTol(base.Cost) {
			t.Errorf("seed %d: pulled-back placement costs %v, optimum %v", seed, c, base.Cost)
		}
	}
}

// TestDeadHopShedsTraffic: degrading a hop to zero bandwidth must push
// all traffic off it — only the final classification result may still
// cross (it has nowhere else to go when the result tier lies above the
// dead hop).
func TestDeadHopShedsTraffic(t *testing.T) {
	for _, seed := range []int64{12, 25, 39} {
		rng := rand.New(rand.NewSource(seed))
		g := tinyDAG(rng, 5+rng.Intn(8))
		for dead := 0; dead < 2; dead++ {
			tp, err := tinyTiered(g, 3)
			if err != nil {
				t.Fatal(err)
			}
			tp.Hops[dead].BandwidthScale = 0
			res, err := tp.Solve()
			if err != nil {
				t.Fatal(err)
			}
			bd := tp.Breakdown(res.Placement)
			if bd.HopDataBits[dead] > wireless.ValueBits {
				t.Errorf("seed %d dead hop %d: %d bits still crossing (placement %v)",
					seed, dead, bd.HopDataBits[dead], res.Placement)
			}
		}
	}
}

// TestDeadHopBelowResultTier: when the result does not need to climb
// past the dead hop, the optimizer must push even the result off it —
// zero bits crossing.
func TestDeadHopBelowResultTier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := tinyDAG(rng, 8)
	tp, err := tinyTiered(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	tp.ResultTier = 0 // deliver on the sensing tier
	tp.Hops[1].BandwidthScale = 0
	res, err := tp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	bd := tp.Breakdown(res.Placement)
	if bd.HopDataBits[1] != 0 {
		t.Errorf("dead hop above the result tier still carries %d bits (placement %v)",
			bd.HopDataBits[1], res.Placement)
	}
}
