// Command xprobench regenerates the paper's evaluation: Table 1 and
// Figures 4 and 8–13, the headline summary (battery life 1.6–2.4X,
// delay −15.6–60.8%), and the repository's extension experiments.
//
// Usage:
//
//	xprobench [-exp all|table1|fig4|fig8..fig13|headline|ext-lossy|ext-frontier]
//	          [-cases C1,C2,...] [-protocol fast|paper] [-rate 2048]
//	          [-format text|md|csv]
//
// The fast protocol is the paper's §4.4 training protocol with a scaled
// candidate pool (runs in about a minute for all six cases); the paper
// protocol uses the full 100-candidate, 10-fold configuration.
//
// In -record mode the command appends one point to a committed
// benchmark trajectory file instead of running experiments:
// BENCH_serve.json tracks the fleet-serving path, BENCH_frame.json the
// framed transport, and BENCH_recover.json the crash-recovery path
// (checkpoint encode, per-event journal tax, recover latency).
package main

import "os"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
