// Package aggregator models the back-end of the XPro system: the
// in-aggregator analytic part running as software on a smartphone-class
// CPU.
//
// The paper simulates an ARM Cortex-A8 with gem5 and collects its power
// with McPAT, running the back-end functional cells as a C++ library
// (§5.6). Those simulators are out of scope here; this package
// substitutes a per-operation execution model in the Cortex-A8 class:
// an effective throughput (instructions retire slower than peak because
// the cells walk buffers and the OS intervenes between events) and a
// per-operation energy from McPAT-class numbers. Figure 13 depends only
// on the *ratio* of aggregator energies between engine types, which a
// per-op model preserves exactly.
//
// Unlike the sensor's asynchronous cell array — every cell is its own
// hardware — the aggregator executes cells sequentially on one core, so
// back-end latency is the sum of cell latencies, not a critical path.
package aggregator

import (
	"fmt"

	"xpro/internal/celllib"
	"xpro/internal/topology"
)

// CPU is the aggregator execution model.
type CPU struct {
	// OpsPerSecond is the effective software throughput for the cells'
	// operation mix.
	OpsPerSecond float64
	// EnergyPerOp is the average core+memory energy per operation.
	EnergyPerOp float64
	// IdlePower is drawn while the analytic engine has no work; the
	// cross-end engine "allows the aggregator to enter into low-power
	// states when the data are being processed in the sensor node"
	// (§5.6).
	IdlePower float64
}

// CortexA8 returns the evaluation CPU model (§5.6): an ARM Cortex-A8
// running the back-end cells from a C++ library.
func CortexA8() CPU {
	return CPU{
		OpsPerSecond: 100e6,   // effective, with buffer walks + OS overhead
		EnergyPerOp:  0.45e-9, // McPAT-class core+L1 energy per op
		IdlePower:    8e-3,    // analytic-engine share of platform idle
	}
}

// Cost is the software execution cost of a set of cells for one event.
type Cost struct {
	Ops    int64
	Energy float64
	Delay  float64
}

// CellCost returns the cost of executing one cell in software.
func (c CPU) CellCost(spec celllib.Spec) Cost {
	ops := spec.SoftwareOps()
	return Cost{
		Ops:    ops,
		Energy: float64(ops) * c.EnergyPerOp,
		Delay:  float64(ops) / c.OpsPerSecond,
	}
}

// PartCost sums the execution cost of the given cells of g (the
// in-aggregator analytic part). Execution is sequential on the single
// core, so delays add.
func (c CPU) PartCost(g *topology.Graph, inPart func(topology.CellID) bool) Cost {
	var total Cost
	for _, cell := range g.Cells {
		if !inPart(cell.ID) {
			continue
		}
		cc := c.CellCost(cell.Spec)
		total.Ops += cc.Ops
		total.Energy += cc.Energy
		total.Delay += cc.Delay
	}
	return total
}

// Validate rejects non-physical CPU models.
func (c CPU) Validate() error {
	if c.OpsPerSecond <= 0 || c.EnergyPerOp <= 0 || c.IdlePower < 0 {
		return fmt.Errorf("aggregator: invalid CPU model %+v", c)
	}
	return nil
}
