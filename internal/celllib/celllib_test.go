package celllib

import (
	"math"
	"testing"
	"testing/quick"

	"xpro/internal/stats"
)

func featSpec(f stats.Feature, n int) Spec { return Spec{Kind: KindFeature, Feat: f, N: n} }

// Figure 4 of the paper: serial is the energy-optimal ALU mode for most
// cells; Std and DWT are pipeline-optimal.
func TestFig4OptimalModes(t *testing.T) {
	serialBest := []Spec{
		featSpec(stats.Max, 128),
		featSpec(stats.Min, 128),
		featSpec(stats.Mean, 128),
		featSpec(stats.Var, 128),
		featSpec(stats.CZero, 128),
		featSpec(stats.Skew, 128),
		featSpec(stats.Kurt, 128),
		{Kind: KindSVM, SVs: 120, Dim: 12},
		{Kind: KindSVM, SVs: 12, Dim: 12, Linear: true},
		{Kind: KindFusion, Bases: 10},
	}
	for _, s := range serialBest {
		if m, _ := BestMode(s, P90); m != Serial {
			t.Errorf("%s: best mode = %v, want serial (Fig. 4)", s.Name(), m)
		}
	}
	pipelineBest := []Spec{
		featSpec(stats.Std, 128),
		{Kind: KindDWT, N: 128},
	}
	for _, s := range pipelineBest {
		if m, _ := BestMode(s, P90); m != Pipeline {
			t.Errorf("%s: best mode = %v, want pipeline (Fig. 4)", s.Name(), m)
		}
	}
}

// Figure 4: parallel DWT has "tremendous energy overhead, about two
// orders of magnitude larger than the serial mode".
func TestFig4ParallelDWTPenalty(t *testing.T) {
	s := Spec{Kind: KindDWT, N: 128}
	serial := Characterize(s, Serial, P90).Energy()
	parallel := Characterize(s, Parallel, P90).Energy()
	ratio := parallel / serial
	if ratio < 20 || ratio > 500 {
		t.Errorf("parallel/serial DWT energy ratio = %.1f, want ~two orders of magnitude", ratio)
	}
}

// The StdStage (reuse rule: Var cell + sqrt stage) must be far cheaper
// than a standalone Std cell — that is the point of Fig. 5.
func TestReuseSavesEnergy(t *testing.T) {
	_, full := BestMode(featSpec(stats.Std, 128), P90)
	_, varCell := BestMode(featSpec(stats.Var, 128), P90)
	_, stage := BestMode(Spec{Kind: KindStdStage}, P90)
	if varCell.Energy()+stage.Energy() >= full.Energy() {
		t.Errorf("reused Var(%v)+StdStage(%v) should beat standalone Std(%v)",
			varCell.Energy(), stage.Energy(), full.Energy())
	}
}

// Energy must scale monotonically with process node (130 > 90 > 45 nm)
// for every kind and mode.
func TestProcessScalingMonotonic(t *testing.T) {
	specs := []Spec{
		featSpec(stats.Kurt, 128),
		{Kind: KindDWT, N: 64},
		{Kind: KindSVM, SVs: 50, Dim: 12},
	}
	for _, s := range specs {
		for _, m := range Modes {
			e130 := Characterize(s, m, P130).Energy()
			e90 := Characterize(s, m, P90).Energy()
			e45 := Characterize(s, m, P45).Energy()
			if !(e130 > e90 && e90 > e45) {
				t.Errorf("%s/%v: energies %v > %v > %v violated", s.Name(), m, e130, e90, e45)
			}
		}
	}
}

// Delay is process-independent in this study: the cell clock is fixed at
// 16 MHz (§4.3), so only energy changes across nodes.
func TestDelayIndependentOfProcess(t *testing.T) {
	s := featSpec(stats.Var, 128)
	for _, m := range Modes {
		d130 := Characterize(s, m, P130).Delay()
		d45 := Characterize(s, m, P45).Delay()
		if d130 != d45 {
			t.Errorf("%v: delay differs across processes (%v vs %v)", m, d130, d45)
		}
	}
}

// Parallel mode must always be the fastest; serial the slowest (or tied)
// for compute-heavy cells.
func TestModeDelayOrdering(t *testing.T) {
	for _, s := range []Spec{featSpec(stats.Kurt, 128), {Kind: KindDWT, N: 128}, {Kind: KindSVM, SVs: 100, Dim: 12}} {
		ser := Characterize(s, Serial, P90).Delay()
		par := Characterize(s, Parallel, P90).Delay()
		pip := Characterize(s, Pipeline, P90).Delay()
		if !(par < pip && pip < ser) {
			t.Errorf("%s: delay ordering parallel(%v) < pipeline(%v) < serial(%v) violated", s.Name(), par, pip, ser)
		}
	}
}

func TestOpsScaleWithInput(t *testing.T) {
	small := featSpec(stats.Var, 32).Ops().Total()
	big := featSpec(stats.Var, 128).Ops().Total()
	if big <= small {
		t.Error("ops must grow with input length")
	}
	d32 := Spec{Kind: KindDWT, N: 32}.Ops().Mac
	d64 := Spec{Kind: KindDWT, N: 64}.Ops().Mac
	if d64 != 2*d32 || d32 != 32*DWTTaps {
		t.Errorf("DWT banded matrix multiply: want n×%d MACs (got %d and %d)", DWTTaps, d32, d64)
	}
}

func TestSVMOpsScaleWithSVs(t *testing.T) {
	few := Spec{Kind: KindSVM, SVs: 10, Dim: 12}.Ops().Total()
	many := Spec{Kind: KindSVM, SVs: 100, Dim: 12}.Ops().Total()
	if many <= few {
		t.Error("SVM ops must grow with support-vector count (§5.5)")
	}
	lin := Spec{Kind: KindSVM, SVs: 100, Dim: 12, Linear: true}.Ops().Total()
	if lin >= few {
		t.Error("linear SVM collapses to one dot product and must be far cheaper")
	}
}

func TestEnergyPositive(t *testing.T) {
	for _, s := range []Spec{
		featSpec(stats.Max, 4), {Kind: KindStdStage}, {Kind: KindDWT, N: 8},
		{Kind: KindSVM, SVs: 1, Dim: 1}, {Kind: KindFusion, Bases: 1},
	} {
		for _, m := range Modes {
			for _, p := range Processes {
				pr := Characterize(s, m, p)
				if pr.Energy() <= 0 || pr.Delay() <= 0 || pr.Power() <= 0 {
					t.Errorf("%s/%v/%v: non-positive profile %+v", s.Name(), m, p, pr)
				}
			}
		}
	}
}

func TestProfileAccessors(t *testing.T) {
	p := Profile{DynEnergy: 2e-9, StaticEnergy: 1e-9, Cycles: 16}
	if math.Abs(p.Energy()-3e-9) > 1e-18 {
		t.Error("Energy sum wrong")
	}
	if p.Delay() != 1e-6 {
		t.Errorf("Delay = %v, want 1µs at 16 MHz", p.Delay())
	}
	if math.Abs(p.Power()-3e-3) > 1e-12 {
		t.Errorf("Power = %v, want 3 mW", p.Power())
	}
	if (Profile{}).Power() != 0 {
		t.Error("zero-cycle profile power should be 0")
	}
}

func TestStringers(t *testing.T) {
	if Serial.String() != "serial" || Parallel.String() != "parallel" || Pipeline.String() != "pipeline" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode formatting wrong")
	}
	if P130.String() != "130nm" || P90.String() != "90nm" || P45.String() != "45nm" {
		t.Error("process names wrong")
	}
	if Process(9).String() != "Process(9)" {
		t.Error("unknown process formatting wrong")
	}
	names := map[Kind]string{KindFeature: "feature", KindStdStage: "std-stage", KindDWT: "dwt", KindSVM: "svm", KindFusion: "fusion"}
	for k, w := range names {
		if k.String() != w {
			t.Errorf("kind %d name = %q, want %q", k, k.String(), w)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind formatting wrong")
	}
	if (Spec{Kind: Kind(9)}).Name() != "Kind(9)" {
		t.Error("unknown spec name wrong")
	}
}

func TestSoftwareOps(t *testing.T) {
	s := featSpec(stats.Std, 128)
	if s.SoftwareOps() <= s.Ops().Total() {
		t.Error("software ops must expand sqrt/div into iterative sequences")
	}
}

// Property: energy and cycles never decrease as SVM support-vector count
// grows, in any mode.
func TestQuickSVMEnergyMonotonic(t *testing.T) {
	f := func(raw uint8, mraw uint8) bool {
		v := int(raw%100) + 1
		m := Modes[int(mraw)%len(Modes)]
		small := Characterize(Spec{Kind: KindSVM, SVs: v, Dim: 12}, m, P90)
		large := Characterize(Spec{Kind: KindSVM, SVs: v + 10, Dim: 12}, m, P90)
		return large.Energy() > small.Energy() && large.Cycles > small.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: BestMode never exceeds any individual mode's energy.
func TestQuickBestModeIsMin(t *testing.T) {
	f := func(nRaw uint8, fRaw uint8) bool {
		n := int(nRaw%128) + 4
		feat := stats.AllFeatures[int(fRaw)%len(stats.AllFeatures)]
		s := featSpec(feat, n)
		_, best := BestMode(s, P90)
		for _, m := range Modes {
			if Characterize(s, m, P90).Energy() < best.Energy() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCharacterize(b *testing.B) {
	s := Spec{Kind: KindSVM, SVs: 120, Dim: 12}
	for i := 0; i < b.N; i++ {
		_ = Characterize(s, Serial, P90)
	}
}
