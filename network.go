package xpro

import (
	"errors"
	"fmt"
	"sort"

	"xpro/internal/aggregator"
	"xpro/internal/bsn"
	"xpro/internal/telemetry"
)

// Network is a body sensor network: multiple wearable engines sharing
// one data aggregator (§5.7). Each node runs its own partitioned engine;
// links are conflict-free (the paper's MIMO assumption), while the
// aggregator CPU and battery are shared.
type Network struct {
	engines map[string]*Engine
	names   []string
	obs     *Observer
}

// NewNetwork assembles a network from named engines. The engines should
// be built with the same Process/Wireless configuration; names must be
// unique. Nodes are ordered by name, so network results — including
// bottleneck tie-breaks — are deterministic regardless of map iteration
// order.
func NewNetwork(engines map[string]*Engine) (*Network, error) {
	if len(engines) == 0 {
		return nil, errors.New("xpro: network needs at least one engine")
	}
	names := make([]string, 0, len(engines))
	for name := range engines {
		names = append(names, name)
	}
	sort.Strings(names)
	obs := newObserver(telemetry.DefaultTraceCapacity)
	n := &Network{engines: engines, names: names, obs: obs}
	if _, err := n.net(); err != nil { // validate the node set eagerly
		return nil, err
	}
	obs.setStatus("nodes", func() any { return names })
	obs.setStatus("report", func() any {
		rep, err := n.Report()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return rep
	})
	return n, nil
}

// net assembles the shared-resource view of the network from each
// engine's currently effective system: the adaptive controller's
// active cut, or the in-sensor fallback while an engine's breaker
// holds its link open. Rebuilding per query keeps Report and
// RealTimeOK describing the network as it is now — degraded engines
// included — not as it was built.
func (n *Network) net() (*bsn.Network, error) {
	nodes := make([]bsn.Node, 0, len(n.names))
	for _, name := range n.names {
		e := n.engines[name]
		if e == nil {
			return nil, fmt.Errorf("xpro: nil engine %q", name)
		}
		nodes = append(nodes, bsn.Node{Name: name, Sys: e.effectiveSystem()})
	}
	nw, err := bsn.New(aggregator.CortexA8(), nodes...)
	if err != nil {
		return nil, err
	}
	nw.Metrics = n.obs.reg
	return nw, nil
}

// NetworkReport summarizes the shared-resource behaviour of the network.
type NetworkReport struct {
	// NodeLifetimeHours is each node's battery life (unaffected by the
	// other nodes).
	NodeLifetimeHours map[string]float64
	// BottleneckNode has the shortest battery life.
	BottleneckNode  string
	BottleneckHours float64
	// AggregatorLifetimeHours is the shared smartphone battery under
	// the combined event load.
	AggregatorLifetimeHours float64
	// AggregatorUtilization is the fraction of CPU time the combined
	// back-end work consumes (≥ 1 means it cannot keep up).
	AggregatorUtilization float64
	// WorstCaseDelaySeconds is each node's end-to-end delay when every
	// node fires simultaneously (back-end work serializes).
	WorstCaseDelaySeconds map[string]float64
}

// Report computes the network summary over each engine's currently
// effective system, so degraded-mode engines (open breaker, adaptive
// re-cut) are accounted as they run.
func (n *Network) Report() (NetworkReport, error) {
	nw, err := n.net()
	if err != nil {
		return NetworkReport{}, err
	}
	lifetimes, err := nw.NodeLifetimes()
	if err != nil {
		return NetworkReport{}, err
	}
	name, hours, err := nw.BottleneckNode()
	if err != nil {
		return NetworkReport{}, err
	}
	aggLife, err := nw.AggregatorLifetimeHours()
	if err != nil {
		return NetworkReport{}, err
	}
	return NetworkReport{
		NodeLifetimeHours:       lifetimes,
		BottleneckNode:          name,
		BottleneckHours:         hours,
		AggregatorLifetimeHours: aggLife,
		AggregatorUtilization:   nw.AggregatorUtilization(),
		WorstCaseDelaySeconds:   nw.WorstCaseDelay(),
	}, nil
}

// RealTimeOK reports whether every node meets the delay limit even under
// simultaneous firing and the aggregator sustains the combined rate —
// evaluated against each engine's currently effective system (a node
// degraded onto its in-sensor fallback is judged on the fallback's
// delay, not the cut it was built with).
func (n *Network) RealTimeOK(limitSeconds float64) bool {
	nw, err := n.net()
	if err != nil {
		return false
	}
	return nw.RealTimeOK(limitSeconds)
}
