package stats

import "xpro/internal/fixed"

// ComputeFixed evaluates feature f over segment x in Q16.16 fixed point,
// exactly as the in-sensor functional cell computes it. Empty segments
// yield 0.
func ComputeFixed(f Feature, x []fixed.Num) fixed.Num {
	if len(x) == 0 {
		return 0
	}
	switch f {
	case Max:
		return MaxFixed(x)
	case Min:
		return MinFixed(x)
	case Mean:
		return MeanFixed(x)
	case Var:
		return VarFixed(x)
	case Std:
		return StdFixed(x)
	case CZero:
		return fixed.FromInt(ZeroCrossingsFixed(x))
	case Skew:
		return SkewFixed(x)
	case Kurt:
		return KurtFixed(x)
	default:
		return 0
	}
}

// ComputeAllFixed evaluates every feature over x, indexed by Feature.
// Var and Std share the variance datapath (cell-level reuse).
func ComputeAllFixed(x []fixed.Num) []fixed.Num {
	out := make([]fixed.Num, NumFeatures)
	for _, f := range AllFeatures {
		if f == Std {
			// Reuse the Var cell output (design rule 3).
			out[Std] = fixed.Sqrt(out[Var])
			continue
		}
		out[f] = ComputeFixed(f, x)
	}
	return out
}

// MaxFixed returns the maximum sample.
func MaxFixed(x []fixed.Num) fixed.Num {
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinFixed returns the minimum sample.
func MinFixed(x []fixed.Num) fixed.Num {
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// MeanFixed returns the arithmetic mean. The sum is kept in 64-bit, as
// the hardware accumulator is wider than the 32-bit datapath.
func MeanFixed(x []fixed.Num) fixed.Num {
	var s int64
	for _, v := range x {
		s += int64(v)
	}
	return fixed.Num(s / int64(len(x)))
}

// VarFixed returns the population variance.
func VarFixed(x []fixed.Num) fixed.Num {
	mu := MeanFixed(x)
	var s int64
	for _, v := range x {
		d := int64(v) - int64(mu)
		// d is at most 2^32 in magnitude; d*d>>16 fits 64-bit comfortably.
		s += (d * d) >> fixed.Shift
	}
	return fixed.Num(s / int64(len(x)))
}

// StdFixed returns the population standard deviation: the Var cell plus
// a square-root stage (design rule 3, Fig. 5).
func StdFixed(x []fixed.Num) fixed.Num { return fixed.Sqrt(VarFixed(x)) }

// ZeroCrossingsFixed counts sign changes of the deviation from the mean.
func ZeroCrossingsFixed(x []fixed.Num) int {
	mu := MeanFixed(x)
	count := 0
	prev := 0
	for _, v := range x {
		s := 0
		switch {
		case v > mu:
			s = 1
		case v < mu:
			s = -1
		}
		if s != 0 {
			if prev != 0 && s != prev {
				count++
			}
			prev = s
		}
	}
	return count
}

// SkewFixed returns the standardized third central moment.
func SkewFixed(x []fixed.Num) fixed.Num {
	mu := MeanFixed(x)
	n := int64(len(x))
	var m2, m3 int64 // Q16.16 accumulators
	for _, v := range x {
		d := int64(v) - int64(mu)
		d2 := (d * d) >> fixed.Shift
		m2 += d2
		m3 += (d2 * d) >> fixed.Shift
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	sd := fixed.Sqrt(fixed.Num(clamp32(m2)))
	den := fixed.Mul(fixed.Mul(sd, sd), sd)
	return fixed.Div(fixed.Num(clamp32(m3)), den)
}

// KurtFixed returns the standardized fourth central moment.
func KurtFixed(x []fixed.Num) fixed.Num {
	mu := MeanFixed(x)
	n := int64(len(x))
	var m2, m4 int64
	for _, v := range x {
		d := int64(v) - int64(mu)
		d2 := (d * d) >> fixed.Shift
		m2 += d2
		m4 += (d2 * d2) >> fixed.Shift
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	den := (m2 * m2) >> fixed.Shift
	if den == 0 {
		return 0
	}
	return fixed.Div(fixed.Num(clamp32(m4)), fixed.Num(clamp32(den)))
}

func clamp32(v int64) int32 {
	if v > int64(fixed.Max) {
		return int32(fixed.Max)
	}
	if v < int64(fixed.Min) {
		return int32(fixed.Min)
	}
	return int32(v)
}
