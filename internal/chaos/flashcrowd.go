// Flash-crowd soak: the overload battery. Where the drift soaks in
// this package stress one engine's channel, the flash crowd stresses
// the fleet's serving capacity: a population of subjects whose
// arrival rate bursts 10× inside seeded demand-surge windows while
// the shared channel degrades underneath them.
//
// The harness is a deterministic multi-server queue simulation on the
// modeled clock. Subjects are sharded to workers exactly like
// serve.Pool shards them (subject mod workers), each worker serves
// its FIFO serially, and every admitted event's service time is a
// real ClassifyOver run against the worker's faulty link — so
// overload and channel faults compound the way they do in the live
// fleet. Subjects sharing a worker share one channel: they see the
// same fault windows at the same instants (correlated storms), with
// per-channel packet randomness.
//
// Admission runs the same internal/admit controller the fleet wires
// in front of its pool, driven by the modeled clock, and the run is
// self-calibrating: a baseline pass serves the identical arrival
// stream with no queueing (an infinite-server reference) to measure
// the unloaded latency profile, and the overload pass derives its
// deadline budgets and CoDel target from that baseline. The
// acceptance properties (LatencyBounded, StrictPriority) are
// therefore stated relative to the fixture's own unloaded behaviour,
// not absolute constants.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"xpro/internal/admit"
	"xpro/internal/biosig"
	"xpro/internal/faults"
	"xpro/internal/partition"
	"xpro/internal/telemetry"
	"xpro/internal/xsystem"
)

// FlashCrowdConfig shapes one flash-crowd run. The zero value of
// every field selects a sensible default.
type FlashCrowdConfig struct {
	// Seed drives the fault plan, every arrival process and every
	// lossy link; the same seed replays the identical run.
	Seed int64
	// Subjects is the fleet population (default 24). Subjects cycle
	// through the priority classes 3 batch : 2 interactive : 1 alert.
	Subjects int
	// Workers is the worker/channel count (default 4). A subject is
	// pinned to worker subject mod Workers, so per-subject ordering
	// is structural, and all subjects on a worker share its channel
	// and fault plan.
	Workers int
	// QueueDepth is the per-worker queue bound (default 64); an
	// arrival that finds the queue at depth is refused outright
	// regardless of class, exactly like serve.Pool.
	QueueDepth int
	// Arrivals is the target baseline (1×) arrival count across the
	// whole run (default 600); the horizon is derived from it.
	Arrivals int
	// Utilization is the baseline offered load as a fraction of
	// fleet service capacity (default 0.08). The default is sized so
	// the alert slice alone — one subject in six, never shed — keeps
	// a comfortable queueing margin even at the full surge factor
	// with loss-inflated service times: 0.08 × 10 × 1/6 ≈ 0.13 of
	// clean capacity, ≈ 0.25 when a loss burst doubles the service
	// time. (Queue waits explode as utilisation approaches 1, and
	// the service-time distribution under a loss burst is heavy-
	// tailed; the p99 bound needs the one unsheddable class to stay
	// well away from that wall.)
	Utilization float64
	// LinkRetries is the link-layer retransmission budget (default
	// 6; negative means none), as in Config.
	LinkRetries int
	// Admission overrides the overload pass's admission parameters.
	// Nil calibrates them from the baseline pass (see FlashCrowd).
	Admission *admit.Config
	// Brownout overrides the overload pass's brownout parameters.
	// Nil calibrates them from the baseline pass.
	Brownout *admit.BrownoutConfig
}

func (c *FlashCrowdConfig) fill() {
	if c.Subjects <= 0 {
		c.Subjects = 24
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Arrivals <= 0 {
		c.Arrivals = 600
	}
	if c.Utilization <= 0 {
		c.Utilization = 0.08
	}
	if c.LinkRetries == 0 {
		c.LinkRetries = 6
	}
	if c.LinkRetries < 0 {
		c.LinkRetries = 0
	}
}

// ShedRecord is one refused arrival: the determinism artifact for
// the shed side of the run (two same-seed runs must produce
// identical slices) and the evidence for the strict-priority check.
type ShedRecord struct {
	TimeSeconds float64
	Subject     int
	Class       admit.Class
	// Reason is the admission reason ("occupancy", "deadline",
	// "codel") or "pool-full" when the queue itself was at depth.
	Reason string
}

// LoadStats aggregates one pass (baseline or overload).
type LoadStats struct {
	// Offered / Admitted / Served / Failed count arrivals, admitted
	// arrivals, classified events and events with no label even
	// after the fallback rung.
	Offered, Admitted, Served, Failed int
	// PoolFull counts class-blind refusals: the queue was at depth.
	PoolFull int
	// ShedByClass counts admission sheds per priority class.
	ShedByClass [admit.NumClasses]int
	// BrownedServed counts events served on the in-sensor fallback
	// rung because the brownout controller was active.
	BrownedServed int
	// LatencyP50S / LatencyP99S are quantiles of total latency
	// (queue wait + service) over admitted events.
	LatencyP50S, LatencyP99S float64
	// ClassP99S breaks the p99 down per priority class.
	ClassP99S [admit.NumClasses]float64
	// MaxQueueLen is the deepest any worker queue got.
	MaxQueueLen int
	// OrderViolations counts per-subject service-order inversions
	// (structurally impossible with pinned FIFO workers; asserted
	// anyway).
	OrderViolations int
	// SensorEnergyJ is the total modeled sensor energy spent.
	SensorEnergyJ float64
}

// FlashCrowdResult is one flash-crowd run: the baseline pass, the
// overload pass, and the shed/brownout logs for determinism and
// priority checks.
type FlashCrowdResult struct {
	Seed           int64
	HorizonSeconds float64
	// ServiceMeanSeconds is the probed clean per-event service time
	// the arrival rate was derived from; FallbackMeanSeconds is the
	// same probe on the in-sensor fallback rung (when it is not
	// faster, calibration disarms the brownout).
	ServiceMeanSeconds  float64
	FallbackMeanSeconds float64
	// SurgeFactor is the largest demand-surge multiplier in the plan.
	SurgeFactor float64
	// Plan is the seeded fault plan both passes replay over the
	// identical surge-weighted arrival stream.
	Plan *faults.Plan
	// Admission / Brownout are the parameters the overload pass ran
	// with (calibrated or caller-supplied).
	Admission admit.Config
	Brownout  admit.BrownoutConfig

	Baseline LoadStats
	Overload LoadStats

	// Sheds is the overload pass's refusal log in decision order.
	Sheds []ShedRecord
	// Brownouts is the overload pass's brownout transition log.
	Brownouts []admit.BrownoutEvent
	// BrownoutEnters / Exits / Rollbacks are the cumulative
	// transition counts.
	BrownoutEnters, BrownoutExits, BrownoutRollbacks uint64
}

// LatencyBounded reports the headline acceptance property: the
// overload pass kept admitted p99 latency within factor × the
// unloaded baseline p99.
func (r *FlashCrowdResult) LatencyBounded(factor float64) bool {
	return r.Overload.LatencyP99S <= factor*r.Baseline.LatencyP99S
}

// StrictPriority checks the shedding order: alert traffic is never
// refused at all (neither by admission nor by a full queue), and in
// every demand-surge window where interactive traffic was shed,
// batch traffic was shed too — lower classes always hit the wall
// first. It returns nil when the property holds.
func (r *FlashCrowdResult) StrictPriority() error {
	if n := r.Overload.ShedByClass[admit.Alert]; n > 0 {
		return fmt.Errorf("chaos: %d alert events were shed by admission", n)
	}
	for _, s := range r.Sheds {
		if s.Reason == "pool-full" && s.Class == admit.Alert {
			return fmt.Errorf("chaos: alert event refused by a full queue at t=%.3fs", s.TimeSeconds)
		}
	}
	for _, w := range r.Plan.Windows {
		if w.Kind != faults.DemandSurge {
			continue
		}
		var batch, inter int
		for _, s := range r.Sheds {
			if s.TimeSeconds < w.Start || s.TimeSeconds > w.End {
				continue
			}
			switch s.Class {
			case admit.Batch:
				batch++
			case admit.Interactive:
				inter++
			}
		}
		if inter > 0 && batch == 0 {
			return fmt.Errorf("chaos: surge window [%.2f, %.2f] shed %d interactive events but no batch",
				w.Start, w.End, inter)
		}
	}
	return nil
}

// subjectClass stripes the population 3 batch : 2 interactive : 1
// alert by rank within each worker, so every worker serves exactly
// the same class mix. (Striping by raw subject index interferes with
// the subject→worker sharding: when gcd(6, workers) > 1 the alert
// subjects pile onto a subset of the workers, doubling the one load
// that can never be shed.)
func subjectClass(s, workers int) admit.Class {
	switch (s / workers) % 6 {
	case 3, 4:
		return admit.Interactive
	case 5:
		return admit.Alert
	default:
		return admit.Batch
	}
}

// fcArrival is one offered event.
type fcArrival struct {
	t       float64
	subject int
	seq     int
	class   admit.Class
}

// fcPending is one admitted event waiting in a worker's FIFO.
type fcPending struct {
	arrival float64
	subject int
	class   admit.Class
	segIdx  int
}

// fcWorker is one serving channel: its own modeled clock and faulty
// link (shared fault windows, per-channel packet randomness), the
// FIFO of admitted events, and the in-service completion time.
type fcWorker struct {
	clock     *faults.Clock
	link      *faults.Link
	queue     []fcPending
	head      int
	inService bool
	busyUntil float64
}

// FlashCrowd replays one seeded flash crowd against the generated
// system. It runs two passes over the identical surge-weighted
// arrival stream and fault plan: a baseline pass with no queueing
// (every event starts on arrival — the unloaded, infinite-server
// reference for exactly this traffic), then the overload pass with
// the real bounded queues and the admission + brownout controllers
// in front of them. The acceptance bound compares the two, so it
// isolates what contention adds: same events, same channel faults,
// only the queues differ. When cfg leaves Admission or Brownout nil
// they are calibrated from the baseline pass:
//
//   - deadline budgets: batch waits at most ~35% of the unloaded
//     p99, interactive ~60%, alert has no deadline gate — so
//     admitted p99 stays inside 2× the unloaded p99 with margin;
//   - CoDel target at half the unloaded p99, interval a few service
//     times — a standing queue above target drains by shedding batch;
//   - the brownout is armed only when the fallback rung is probed
//     faster than the cross cut (otherwise browning out would shrink
//     capacity exactly when the queue needs it), with exit far below
//     enter so the cheap rung holds through a whole surge window.
func FlashCrowd(sys *xsystem.System, segs []biosig.Segment, cfg FlashCrowdConfig) (*FlashCrowdResult, error) {
	if sys == nil {
		return nil, fmt.Errorf("chaos: nil system")
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("chaos: no segments")
	}
	if !finitePos(cfg.Utilization) && cfg.Utilization != 0 {
		return nil, fmt.Errorf("chaos: utilization %v must be finite and positive", cfg.Utilization)
	}
	cfg.fill()

	// The same delay constraint and fallback cut the drift soaks use.
	inSensor := partition.InSensor(sys.Graph)
	limit := sys.DelayOf(inSensor).Total()
	if d := sys.DelayOf(partition.InAggregator(sys.Graph)).Total(); d < limit {
		limit = d
	}
	fallback, err := sys.WithPlacement(inSensor)
	if err != nil {
		return nil, err
	}
	pol := policy(2 * limit)

	// Probe the clean per-event service time to size the offered
	// load, and the fallback rung's service time to decide whether a
	// brownout can add capacity at all.
	svcMean, err := probeService(sys, segs, cfg, pol)
	if err != nil {
		return nil, err
	}
	fbMean, err := probeService(fallback, segs, cfg, pol)
	if err != nil {
		return nil, err
	}
	baseRate := cfg.Utilization * float64(cfg.Workers) / (float64(cfg.Subjects) * svcMean)
	horizon := float64(cfg.Arrivals) * svcMean / (cfg.Utilization * float64(cfg.Workers))

	plan, err := Profile("flash-crowd", cfg.Seed, horizon)
	if err != nil {
		return nil, err
	}
	res := &FlashCrowdResult{
		Seed: cfg.Seed, HorizonSeconds: horizon,
		ServiceMeanSeconds: svcMean, FallbackMeanSeconds: fbMean, Plan: plan,
	}
	for _, w := range plan.Windows {
		if w.Kind == faults.DemandSurge && w.Rate > res.SurgeFactor {
			res.SurgeFactor = w.Rate
		}
	}

	// Baseline pass: the identical surge-weighted arrival stream and
	// fault plan, served with no queueing (every event starts the
	// instant it arrives — an infinite-server reference). This is the
	// unloaded latency of exactly the traffic the overload pass must
	// serve: same composition, same channel faults, zero contention.
	// The acceptance bound then isolates what overload adds.
	res.Baseline, _, err = runCrowd(sys, fallback, segs, plan, pol, cfg, baseRate, horizon, false, nil, nil)
	if err != nil {
		return nil, err
	}
	p99 := res.Baseline.LatencyP99S

	ac := admit.DefaultConfig()
	if cfg.Admission != nil {
		ac = *cfg.Admission
	} else {
		ac.TargetDelaySeconds = 0.5 * p99
		ac.IntervalSeconds = 4 * svcMean
		ac.Alpha = 0.3
		ac.BatchShare, ac.InteractiveShare = 0.4, 0.75
		ac.BatchBudgetSeconds = 0.2 * p99
		ac.InteractiveBudgetSeconds = 0.35 * p99
	}
	bc := admit.DefaultBrownoutConfig()
	if cfg.Brownout != nil {
		bc = *cfg.Brownout
	} else if fbMean < svcMean {
		// The cheap rung is genuinely faster, so browning out raises
		// capacity: enter at the CoDel target (the delay is already a
		// standing queue there) and dwell long enough to hold the
		// rung through a whole surge window. Exit is deliberately far
		// below enter: leaving brownout while a surge is still
		// running puts the degraded link back on the serving path and
		// the queue rebuilds at fault-inflated service times.
		bc.EnterDelaySeconds = 0.5 * p99
		bc.ExitDelaySeconds = 0.05 * p99
		bc.MinDwellSeconds = 100 * svcMean
		bc.ProbationSeconds = 50 * svcMean
	} else {
		// The fallback rung is no faster than the cross cut (the
		// generated cut already front-loads the cheap compute), so a
		// brownout would shrink capacity exactly when the queue needs
		// it — probation would enter, measure the delay getting
		// worse, and roll back, paying the slow rung for the whole
		// probation window. Calibration disarms it; admission alone
		// holds the line.
		bc.EnterDelaySeconds = 1e6 * p99
		bc.ExitDelaySeconds = p99
	}
	ctrl, err := admit.NewController(ac)
	if err != nil {
		return nil, err
	}
	brown, err := admit.NewBrownout(bc)
	if err != nil {
		return nil, err
	}
	res.Admission, res.Brownout = ac, bc

	var sheds []ShedRecord
	res.Overload, sheds, err = runCrowd(sys, fallback, segs, plan, pol, cfg, baseRate, horizon, true, ctrl, brown)
	if err != nil {
		return nil, err
	}
	res.Sheds = sheds
	res.Brownouts, _ = brown.Events()
	res.BrownoutEnters, res.BrownoutExits, res.BrownoutRollbacks = brown.Counts()
	return res, nil
}

func finitePos(v float64) bool { return v > 0 && !math.IsInf(v, 0) }

// probeService measures the clean-channel per-event service time:
// the mean ClassifyOver SpentSeconds over a prefix of the stream on
// a fault-free link.
func probeService(sys *xsystem.System, segs []biosig.Segment, cfg FlashCrowdConfig, pol faults.Policy) (float64, error) {
	n := len(segs)
	if n > 32 {
		n = 32
	}
	clock := &faults.Clock{}
	clean := &faults.Plan{}
	link, err := faults.NewLink(sys.Link, clean, clock, 0, cfg.LinkRetries, cfg.Seed)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i := 0; i < n; i++ {
		out, err := sys.ClassifyOver(segs[i], &xsystem.ResilientOptions{
			Transport: link, Plan: clean, Clock: clock, Policy: pol,
		})
		if err != nil {
			return 0, fmt.Errorf("chaos: service probe failed on a clean link: %w", err)
		}
		total += out.SpentSeconds
		clock.Advance(out.SpentSeconds)
	}
	mean := total / float64(n)
	if !finitePos(mean) {
		return 0, fmt.Errorf("chaos: probed service time %v is not positive", mean)
	}
	return mean, nil
}

// genArrivals draws every subject's seeded arrival process over the
// horizon. Inter-arrival times are exponential at the subject's base
// rate scaled by the plan's surge multiplier at the current instant,
// then merged into one global time-ordered stream with deterministic
// tie-breaks. Both passes replay the identical stream.
func genArrivals(plan *faults.Plan, cfg FlashCrowdConfig, baseRate, horizon float64) []fcArrival {
	var all []fcArrival
	for s := 0; s < cfg.Subjects; s++ {
		rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(s)*7919 + 1))
		cl := subjectClass(s, cfg.Workers)
		t, seq := 0.0, 0
		for {
			rate := baseRate
			if sg := plan.At(t).Surge; sg > 1 {
				rate *= sg
			}
			t += rng.ExpFloat64() / rate
			if t >= horizon {
				break
			}
			all = append(all, fcArrival{t: t, subject: s, seq: seq, class: cl})
			seq++
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.subject != b.subject {
			return a.subject < b.subject
		}
		return a.seq < b.seq
	})
	return all
}

// runCrowd replays one pass over the seeded arrival stream. With
// queueing true it is an event-driven loop over arrivals and service
// completions in global time order — so an event admitted before a
// brownout transition but served after it runs on the rung that is
// active when the worker actually dequeues it, exactly like the live
// pool. With queueing false every event starts the instant it
// arrives (the infinite-server unloaded reference). ctrl and brown
// may be nil (no admission). It returns the pass stats and, when
// ctrl is set, the refusal log.
func runCrowd(sys, fallback *xsystem.System, segs []biosig.Segment, plan *faults.Plan,
	pol faults.Policy, cfg FlashCrowdConfig, baseRate, horizon float64, queueing bool,
	ctrl *admit.Controller, brown *admit.Brownout) (LoadStats, []ShedRecord, error) {

	var st LoadStats
	var sheds []ShedRecord
	workers := make([]*fcWorker, cfg.Workers)
	for w := range workers {
		clock := &faults.Clock{}
		link, err := faults.NewLink(sys.Link, plan, clock, 0, cfg.LinkRetries,
			cfg.Seed*101+int64(w)+17)
		if err != nil {
			return st, nil, err
		}
		workers[w] = &fcWorker{clock: clock, link: link}
	}

	arrivals := genArrivals(plan, cfg, baseRate, horizon)
	lat := telemetry.NewSketch(0)
	var classLat [admit.NumClasses]*telemetry.Sketch
	for i := range classLat {
		classLat[i] = telemetry.NewSketch(0)
	}
	lastStart := make([]float64, cfg.Subjects)
	for i := range lastStart {
		lastStart[i] = -1
	}
	finish := func() {
		st.LatencyP50S = lat.Quantile(0.5)
		st.LatencyP99S = lat.Quantile(0.99)
		for i := range classLat {
			st.ClassP99S[i] = classLat[i].Quantile(0.99)
		}
	}

	if !queueing {
		// Infinite-server reference: every event starts on arrival, so
		// latency is pure service time under the same channel faults.
		for i, a := range arrivals {
			st.Offered++
			st.Admitted++
			w := workers[a.subject%cfg.Workers]
			w.clock.Advance(a.t - w.clock.Now())
			opts := &xsystem.ResilientOptions{
				Transport: w.link, Plan: plan, Clock: w.clock, Policy: pol,
			}
			seg := segs[i%len(segs)]
			out, cerr := sys.ClassifyOver(seg, opts)
			spent := out.SpentSeconds
			st.SensorEnergyJ += out.SensorEnergy
			if cerr != nil {
				fout, ferr := fallback.ClassifyOver(seg, opts)
				spent += fout.SpentSeconds
				st.SensorEnergyJ += fout.SensorEnergy - sensingEnergy(sys)
				cerr = ferr
			}
			if cerr != nil {
				st.Failed++
			} else {
				st.Served++
			}
			lat.Add(spent)
			classLat[a.class].Add(spent)
			if a.t < lastStart[a.subject] {
				st.OrderViolations++
			}
			lastStart[a.subject] = a.t
		}
		finish()
		return st, nil, nil
	}

	// startService dequeues the front of w's FIFO at time now and runs
	// it to completion on the rung active right now.
	startService := func(w *fcWorker, now float64) error {
		p := w.queue[w.head]
		w.head++
		if w.head == len(w.queue) {
			w.queue, w.head = w.queue[:0], 0
		}
		sojourn := now - p.arrival
		if ctrl != nil {
			ctrl.ObserveSojourn(now, sojourn)
		}
		browned := brown != nil && brown.Active()
		active := sys
		if browned {
			active = fallback
			st.BrownedServed++
		}
		w.clock.Advance(now - w.clock.Now())
		opts := &xsystem.ResilientOptions{
			Transport: w.link, Plan: plan, Clock: w.clock, Policy: pol,
		}
		seg := segs[p.segIdx%len(segs)]
		out, cerr := active.ClassifyOver(seg, opts)
		spent := out.SpentSeconds
		st.SensorEnergyJ += out.SensorEnergy
		if cerr != nil && !browned {
			// Degradation ladder: recompute on the in-sensor fallback
			// cut; sensing is not charged twice.
			fout, ferr := fallback.ClassifyOver(seg, opts)
			spent += fout.SpentSeconds
			st.SensorEnergyJ += fout.SensorEnergy - sensingEnergy(sys)
			cerr = ferr
		}
		if cerr != nil {
			st.Failed++
		} else {
			st.Served++
		}
		w.inService, w.busyUntil = true, now+spent
		if ctrl != nil {
			ctrl.ObserveService(spent)
		}
		lat.Add(sojourn + spent)
		classLat[p.class].Add(sojourn + spent)
		if brown != nil && ctrl != nil {
			brown.Observe(now, ctrl.QueueDelay())
		}
		if now < lastStart[p.subject] {
			st.OrderViolations++
		}
		lastStart[p.subject] = now
		return nil
	}

	ai := 0
	for {
		// Next completion across workers (lowest index breaks ties).
		wmin := -1
		for idx, w := range workers {
			if w.inService && (wmin < 0 || w.busyUntil < workers[wmin].busyUntil) {
				wmin = idx
			}
		}
		if wmin < 0 && ai >= len(arrivals) {
			break
		}
		if wmin >= 0 && (ai >= len(arrivals) || workers[wmin].busyUntil <= arrivals[ai].t) {
			w := workers[wmin]
			now := w.busyUntil
			w.inService = false
			if w.head < len(w.queue) {
				if err := startService(w, now); err != nil {
					return st, nil, err
				}
			}
			continue
		}

		a := arrivals[ai]
		ai++
		st.Offered++
		w := workers[a.subject%cfg.Workers]
		qlen := len(w.queue) - w.head
		if qlen > st.MaxQueueLen {
			st.MaxQueueLen = qlen
		}
		if qlen >= cfg.QueueDepth {
			st.PoolFull++
			sheds = append(sheds, ShedRecord{TimeSeconds: a.t, Subject: a.subject, Class: a.class, Reason: "pool-full"})
			continue
		}
		if ctrl != nil {
			if se := ctrl.Decide(a.t, a.class, qlen, cfg.QueueDepth, 0); se != nil {
				st.ShedByClass[se.Class]++
				sheds = append(sheds, ShedRecord{TimeSeconds: a.t, Subject: a.subject, Class: se.Class, Reason: se.Reason})
				continue
			}
		}
		st.Admitted++
		w.queue = append(w.queue, fcPending{arrival: a.t, subject: a.subject, class: a.class, segIdx: ai - 1})
		if !w.inService {
			if err := startService(w, a.t); err != nil {
				return st, nil, err
			}
		}
	}
	finish()
	return st, sheds, nil
}
