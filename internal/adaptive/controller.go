package adaptive

import (
	"errors"
	"fmt"
	"time"

	"xpro/internal/partition"
	"xpro/internal/telemetry"
	"xpro/internal/xsystem"
)

// Decision is one entry of the controller's re-cut log: a hot swap to
// a better cut, or a probation rollback to the previous one. The log
// is fully determined by the fault-plan seed, so two runs over the
// same plan produce identical decision sequences — the determinism
// contract the chaos harness asserts.
type Decision struct {
	// At is the modeled time of the decision.
	At float64
	// Kind is "swap" or "rollback".
	Kind string
	// Loss / Outage are the channel estimate at decision time.
	Loss, Outage float64
	// From / To are the placements before and after.
	From, To partition.Placement
	// FromEnergy / ToEnergy are the per-event sensor energies of the
	// two cuts priced under the effective (estimated) channel.
	FromEnergy, ToEnergy float64
}

func (d Decision) String() string {
	fs, _ := d.From.Counts()
	ts, _ := d.To.Counts()
	return fmt.Sprintf("%s@%.2fs loss=%.2f outage=%.2f sensor-cells %d→%d energy %.3g→%.3g",
		d.Kind, d.At, d.Loss, d.Outage, fs, ts, d.FromEnergy, d.ToEnergy)
}

// Change is what the controller wants the runtime to install: a copy
// of the reference system running under the new placement. The caller
// stores System atomically and the swap is live for the next event.
type Change struct {
	// Kind is "swap" or "rollback".
	Kind string
	// Placement is the newly active cut.
	Placement partition.Placement
	// System executes the same trained pipeline under Placement.
	System *xsystem.System
}

// Controller is the hot-swap re-cut loop. It owns the channel
// estimator, re-runs the delay-constrained generator against the
// estimated channel, and applies hysteresis so the cut moves only when
// the channel has genuinely shifted: a minimum dwell time between
// changes, a minimum relative energy improvement, and a probation
// window on every fresh cut with automatic rollback on a delay
// violation.
//
// The controller is not safe for concurrent use; the engine serializes
// events through it, like the Breaker.
type Controller struct {
	cfg Config
	est *Estimator
	// sys is the pristine reference system: its placement is the
	// static cut, its link the datasheet channel. All candidate cuts
	// are validated against its clean delay model.
	sys   *xsystem.System
	limit float64
	m     *telemetry.Registry

	active     partition.Placement
	prev       partition.Placement // non-nil while on probation
	prevSys    *xsystem.System
	lastChange float64
	probation  int
	// violRate is the EWMA deadline-violation rate of recent events;
	// probation compares the fresh cut against it rather than against
	// zero, so ambient chaos the old cut was already suffering does
	// not shoot down a swap that improves on it.
	violRate  float64
	probViol  int
	probLimit int
	decisions []Decision

	evals, swaps, rollbacks *telemetry.Counter
	gaugeLoss, gaugeOutage  *telemetry.Gauge
	gaugeCells              *telemetry.Gauge
	evalWall                *telemetry.Quantile
}

// NewController builds a controller around a reference system. limit
// is the delay constraint T_XPro every candidate cut must meet under
// the clean delay model (the same limit the static generator used).
// metrics may be nil to use the process-default registry.
func NewController(cfg Config, sys *xsystem.System, limit float64, metrics *telemetry.Registry) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sys == nil {
		return nil, errors.New("adaptive: nil reference system")
	}
	if !(limit > 0) { // rejects NaN too
		return nil, fmt.Errorf("adaptive: non-positive delay limit %v", limit)
	}
	est, err := NewEstimator(cfg.Alpha)
	if err != nil {
		return nil, err
	}
	if metrics == nil {
		metrics = telemetry.Default()
	}
	c := &Controller{
		cfg:    cfg,
		est:    est,
		sys:    sys,
		limit:  limit,
		m:      metrics,
		active: append(partition.Placement(nil), sys.Placement...),

		evals: metrics.Counter("xpro_recut_evals_total",
			"Re-cut evaluations performed by the adaptive controller."),
		swaps: metrics.Counter("xpro_recut_swaps_total",
			"Hot swaps of the active cut performed by the adaptive controller."),
		rollbacks: metrics.Counter("xpro_recut_rollbacks_total",
			"Probation rollbacks to the previous cut."),
		gaugeLoss: metrics.Gauge("xpro_adaptive_est_loss",
			"EWMA per-attempt packet-loss estimate of the channel."),
		gaugeOutage: metrics.Gauge("xpro_adaptive_est_outage",
			"EWMA hard-outage estimate of the channel."),
		gaugeCells: metrics.Gauge("xpro_active_cut_sensor_cells",
			"Sensor-side cell count of the currently active cut."),
		evalWall: metrics.Quantile("xpro_recut_eval_wall_seconds",
			"Wall time of one re-cut evaluation (windowed quantile sketch on host uptime).", 0),
	}
	ns, _ := c.active.Counts()
	c.gaugeCells.Set(float64(ns))
	return c, nil
}

// Estimator exposes the controller's channel estimator so the runtime
// can feed it observations (outcomes, fault state, breaker
// transitions, send statistics).
func (c *Controller) Estimator() *Estimator { return c.est }

// Active returns the currently active placement. The returned slice is
// the controller's own copy; treat it as read-only.
func (c *Controller) Active() partition.Placement { return c.active }

// OnProbation reports whether the active cut is still on probation.
func (c *Controller) OnProbation() bool { return c.prev != nil }

// Decisions returns a copy of the re-cut decision log.
func (c *Controller) Decisions() []Decision {
	return append([]Decision(nil), c.decisions...)
}

// publishEstimate refreshes the estimator gauges.
func (c *Controller) publishEstimate(est Estimate) {
	c.gaugeLoss.Set(est.Loss)
	c.gaugeOutage.Set(est.Outage)
}

// Evaluate re-prices the partition problem under the estimated channel
// and returns a Change when a sufficiently better cut exists, nil when
// the active cut stands. Hysteresis applies: no change within the
// dwell window, while a fresh cut is on probation, or for an
// improvement below the threshold.
func (c *Controller) Evaluate(now float64) (*Change, error) {
	c.evals.Inc()
	est := c.est.Estimate()
	c.publishEstimate(est)
	if c.prev != nil || now-c.lastChange < c.cfg.MinDwellSeconds {
		return nil, nil
	}
	// Only full re-pricings land on the wall-time sketch; the dwell and
	// probation early-outs above are nanosecond no-ops that would drown
	// the signal.
	start := time.Now()
	defer func() { c.evalWall.ObserveWall(time.Since(start).Seconds()) }()

	// Re-price every cut under the estimated channel: same graph, same
	// hardware, derated link. Delay is re-priced too — a cut whose
	// crossing payloads need too many retransmissions to meet T_XPro on
	// the channel as it is now is not a candidate, however cheap its
	// energy looks.
	prob := *c.sys.Problem()
	prob.Link = est.EffectiveModel(c.sys.Link, c.cfg.MaxInflation)
	esys := *c.sys
	esys.Link = prob.Link
	delayOf := func(p partition.Placement) float64 { return esys.DelayOf(p).Total() }
	var cand partition.Placement
	if res, err := prob.Generate(delayOf, c.limit); err == nil {
		cand = res.Placement
	}
	inSensor := partition.InSensor(c.sys.Graph)
	if cand == nil {
		// No cut meets T_XPro on this channel — the derated link is too
		// slow even for the single-end engines' residual traffic. The
		// in-sensor cut puts the least on the air and loses the least;
		// hold position there until the channel recovers.
		cand = inSensor
	} else if delayOf(inSensor) <= c.limit && prob.SensorEnergy(inSensor) < prob.SensorEnergy(cand) {
		// The sweep's λ ladder is finite; make sure the in-sensor engine
		// is always in the running when it is delay-feasible.
		cand = inSensor
	}
	if cand.Equal(c.active) {
		return nil, nil
	}
	activeE := prob.SensorEnergy(c.active)
	candE := prob.SensorEnergy(cand)
	if candE >= activeE*(1-c.cfg.ImprovementThreshold) {
		return nil, nil
	}

	ns, err := c.sys.WithPlacement(cand)
	if err != nil {
		return nil, err
	}
	c.decisions = append(c.decisions, Decision{
		At: now, Kind: "swap", Loss: est.Loss, Outage: est.Outage,
		From: c.active, To: append(partition.Placement(nil), cand...),
		FromEnergy: activeE, ToEnergy: candE,
	})
	c.prev = c.active
	prevSys, err := c.sys.WithPlacement(c.active)
	if err != nil {
		return nil, err
	}
	c.prevSys = prevSys
	c.active = append(partition.Placement(nil), cand...)
	c.lastChange = now
	c.probation = c.cfg.ProbationEvents
	// The fresh cut may violate as often as the old one already did
	// (rounded up, plus one for luck) before it is rolled back.
	c.probViol = 0
	c.probLimit = int(c.violRate*float64(c.cfg.ProbationEvents)) + 1
	c.swaps.Inc()
	sc, _ := c.active.Counts()
	c.gaugeCells.Set(float64(sc))
	return &Change{Kind: "swap", Placement: c.active, System: ns}, nil
}

// ObserveEvent feeds one classified event back into the loop: the
// outcome updates the channel estimate and the running violation rate,
// and — while the active cut is on probation — violating the deadline
// more often than the previous cut already did triggers a rollback to
// that cut, returned as a Change to install.
func (c *Controller) ObserveEvent(now float64, out xsystem.Outcome, violated bool) *Change {
	c.est.ObserveOutcome(out)
	c.publishEstimate(c.est.Estimate())
	sample := 0.0
	if violated {
		sample = 1
	}
	onProbation := c.prev != nil
	if !onProbation {
		// The rate the next probation is judged against describes the
		// committed cut; probation events judge themselves.
		c.violRate += c.cfg.Alpha * (sample - c.violRate)
		return nil
	}
	if violated {
		c.probViol++
	}
	if c.probViol > c.probLimit {
		est := c.est.Estimate()
		c.decisions = append(c.decisions, Decision{
			At: now, Kind: "rollback", Loss: est.Loss, Outage: est.Outage,
			From: c.active, To: c.prev,
		})
		ch := &Change{Kind: "rollback", Placement: c.prev, System: c.prevSys}
		c.active = c.prev
		c.prev, c.prevSys = nil, nil
		c.lastChange = now
		c.probation = 0
		c.rollbacks.Inc()
		sc, _ := c.active.Counts()
		c.gaugeCells.Set(float64(sc))
		return ch
	}
	c.probation--
	if c.probation <= 0 {
		// Probation survived: commit the cut.
		c.prev, c.prevSys = nil, nil
	}
	return nil
}
