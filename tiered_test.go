package xpro

import (
	"bytes"
	"testing"
)

// tieredTestEngine builds one adaptive-armed C1 engine per call, all
// from the same deterministic training seed.
func tieredTestEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := New(Config{Case: "C1", Adaptive: DefaultAdaptive()})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// planStorm drives a fixed decision script through a fresh plan and
// returns the rendered log — the determinism witness.
func planStorm(t *testing.T, eng *Engine, k int) []string {
	t.Helper()
	plan, err := eng.PlanTiers(k)
	if err != nil {
		t.Fatal(err)
	}
	script := []struct {
		hop          int
		loss, outage float64
	}{
		{0, 0.4, 0}, {1, 0.9, 0}, {0, 0, 1}, {1, 0.2, 0.5}, {0, 0.05, 0},
	}
	for _, s := range script {
		if _, err := plan.RecutHop(s.hop, s.loss, s.outage); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := plan.DegradeTiers(0); err != nil {
		t.Fatal(err)
	}
	if err := plan.Resolve(); err != nil {
		t.Fatal(err)
	}
	log := plan.Log()
	out := make([]string, len(log))
	for i, d := range log {
		out[i] = d.String()
	}
	return out
}

// TestPlanTiersDeterministic: two engines trained from the same seed
// produce bit-identical tier plans and replay the same decision script
// to bit-identical logs. Run under -cpu 1,4,8 in CI, this is the
// seeded-determinism regression for the k-way layer.
func TestPlanTiersDeterministic(t *testing.T) {
	a := tieredTestEngine(t)
	b := tieredTestEngine(t)
	pa, err := a.PlanTiers(0)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.PlanTiers(3)
	if err != nil {
		t.Fatal(err)
	}
	aa, ab := pa.Assignment(), pb.Assignment()
	if len(aa) == 0 || len(aa) != len(ab) {
		t.Fatalf("assignment lengths: %d vs %d", len(aa), len(ab))
	}
	for i := range aa {
		if aa[i] != ab[i] {
			t.Fatalf("cell %d assigned tier %d vs %d across identical engines", i, aa[i], ab[i])
		}
	}
	la, lb := planStorm(t, a, 3), planStorm(t, b, 3)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("decision %d diverged:\n  %s\n  %s", i, la[i], lb[i])
		}
	}
}

// TestPlanTiersSurvivesRecovery: a checkpoint/recover cycle must not
// perturb the k-way layer — the recovered engine plans the same tiers
// and replays the same decision log as the engine that never died.
func TestPlanTiersSurvivesRecovery(t *testing.T) {
	eng := tieredTestEngine(t)
	ref := planStorm(t, eng, 3)

	var ckpt bytes.Buffer
	if err := eng.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	revived := tieredTestEngine(t)
	if _, err := revived.Recover(bytes.NewReader(ckpt.Bytes()), nil); err != nil {
		t.Fatal(err)
	}
	got := planStorm(t, revived, 3)
	if len(got) != len(ref) {
		t.Fatalf("log lengths: %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("decision %d diverged after recovery:\n  %s\n  %s", i, ref[i], got[i])
		}
	}
}

// TestPlanTiersReport: the report's books balance — per-tier cells
// cover the topology, the weighted cost never beats the bi-partition
// bound the wrong way, and tier count follows the request.
func TestPlanTiersReport(t *testing.T) {
	eng := tieredTestEngine(t)
	for _, k := range []int{2, 3, 4} {
		plan, err := eng.PlanTiers(k)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := plan.Report()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Tiers) != k || len(rep.HopDataBits) != k-1 {
			t.Fatalf("k=%d: report has %d tiers, %d hops", k, len(rep.Tiers), len(rep.HopDataBits))
		}
		total := 0
		for _, tl := range rep.Tiers {
			total += tl.Cells
		}
		if total != len(plan.Assignment()) {
			t.Fatalf("k=%d: report covers %d of %d cells", k, total, len(plan.Assignment()))
		}
		if rep.WeightedCostJ > rep.BiPartitionCostJ+1e-12+1e-9*rep.BiPartitionCostJ {
			t.Fatalf("k=%d: k-way %v worse than bi-partition %v", k, rep.WeightedCostJ, rep.BiPartitionCostJ)
		}
		if rep.Tiers[0].Weight != 1 || rep.Tiers[k-1].Weight != 0 {
			t.Fatalf("k=%d: tier weights %v, want sensor 1 and cloud 0", k, rep.Tiers)
		}
	}
}

// TestPlanTiersDegradeAndResolve: the ladder clamps, the re-solve
// climbs back, and both land on the log.
func TestPlanTiersDegradeAndResolve(t *testing.T) {
	eng := tieredTestEngine(t)
	plan, err := eng.PlanTiers(3)
	if err != nil {
		t.Fatal(err)
	}
	opt := plan.Assignment()
	if _, err := plan.DegradeTiers(0); err != nil {
		t.Fatal(err)
	}
	for i, tier := range plan.Assignment() {
		if tier != 0 {
			t.Fatalf("cell %d still on tier %d after DegradeTiers(0)", i, tier)
		}
	}
	if err := plan.Resolve(); err != nil {
		t.Fatal(err)
	}
	back := plan.Assignment()
	for i := range opt {
		if back[i] != opt[i] {
			t.Fatalf("cell %d: resolve landed on tier %d, optimum was %d", i, back[i], opt[i])
		}
	}
	log := plan.Log()
	if len(log) < 2 || log[len(log)-2].Op != "degrade" || log[len(log)-1].Op != "resolve" {
		t.Fatalf("unexpected log tail: %v", log)
	}
}

// TestPlanTiersValidation covers the error paths.
func TestPlanTiersValidation(t *testing.T) {
	eng := tieredTestEngine(t)
	if _, err := eng.PlanTiers(1); err == nil {
		t.Error("1-tier plan accepted")
	}
	plan, err := eng.PlanTiers(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.RecutHop(0, -0.1, 0); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := plan.RecutHop(5, 0, 0); err == nil {
		t.Error("out-of-range hop accepted")
	}
	if _, err := plan.DegradeTiers(3); err == nil {
		t.Error("out-of-range degrade tier accepted")
	}
	// Estimator-driven re-cut works with and without an adaptive loop.
	if _, err := plan.RecutHopFromEstimate(eng, 0); err != nil {
		t.Error(err)
	}
	plain, err := New(Config{Case: "C1"})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := plain.PlanTiers(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.RecutHopFromEstimate(plain, 1); err != nil {
		t.Error(err)
	}
}
