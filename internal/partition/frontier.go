package partition

import (
	"fmt"
	"sort"
)

// FrontierPoint is one Pareto-optimal placement in the energy/delay
// plane.
type FrontierPoint struct {
	Placement Placement
	Energy    float64 // modeled sensor energy per event (J)
	Delay     float64 // simulated end-to-end delay per event (s)
	Lambda    float64 // the Lagrangian weight that produced the cut
}

// Frontier sweeps the Lagrangian ladder (the same sweep Generate uses)
// and returns the non-dominated (energy, delay) placements, sorted by
// increasing energy / decreasing delay. The two single-end engines are
// always included in the sweep's candidate pool, so the frontier spans
// the full design space of §2.2 ("the two existing approaches" are the
// extreme cases).
//
// The frontier is what a designer trades over when picking a delay
// budget: Generate(limit) returns exactly the cheapest frontier point
// with Delay ≤ limit.
func (pr *Problem) Frontier(delayOf func(Placement) float64) ([]FrontierPoint, error) {
	if delayOf == nil {
		return nil, fmt.Errorf("partition: nil delay model")
	}
	var cands []FrontierPoint
	add := func(p Placement, lambda float64) {
		for _, c := range cands {
			if c.Placement.Equal(p) {
				return
			}
		}
		cands = append(cands, FrontierPoint{
			Placement: p,
			Energy:    pr.SensorEnergy(p),
			Delay:     delayOf(p),
			Lambda:    lambda,
		})
	}
	for _, l := range lambdaLadder {
		fg := pr.stGraph(l)
		_, side, _ := fg.MinCut(0, 1)
		add(pr.placementFromSide(side), l)
	}
	add(InSensor(pr.Graph), -1)
	add(InAggregator(pr.Graph), -1)

	// Keep the non-dominated points.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Energy != cands[j].Energy {
			return cands[i].Energy < cands[j].Energy
		}
		return cands[i].Delay < cands[j].Delay
	})
	var front []FrontierPoint
	bestDelay := 0.0
	for _, c := range cands {
		if len(front) == 0 || c.Delay < bestDelay {
			front = append(front, c)
			bestDelay = c.Delay
		}
	}
	return front, nil
}
