package faults

import (
	"reflect"
	"testing"

	"xpro/internal/wireless"
)

func TestNodeDownWindows(t *testing.T) {
	p := &Plan{Windows: []Window{
		{Kind: NodeCrash, Start: 1, End: 2},
		{Kind: Reboot, Start: 3, End: 5},
		{Kind: NodeCrash, Start: 4, End: 4.5}, // overlaps the reboot
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t              float64
		down, graceful bool
	}{
		{0.5, false, false},
		{1.0, true, false}, // hard crash
		{1.99, true, false},
		{2.0, false, false}, // half-open interval
		{3.5, true, true},   // ordered reboot alone
		{4.2, true, false},  // crash overlapping a reboot: harsher wins
		{4.7, true, true},   // crash over, reboot window continues
		{5.0, false, false},
	}
	for _, c := range cases {
		st := p.At(c.t)
		if st.NodeDown != c.down || st.Graceful != c.graceful {
			t.Errorf("At(%v): NodeDown=%v Graceful=%v, want %v/%v",
				c.t, st.NodeDown, st.Graceful, c.down, c.graceful)
		}
	}
	if got := p.DownUntil(1.5); got != 2 {
		t.Errorf("DownUntil(1.5) = %v, want 2", got)
	}
	// Inside the crash+reboot overlap the down interval extends to the
	// longer (reboot) window's end.
	if got := p.DownUntil(4.2); got != 5 {
		t.Errorf("DownUntil(4.2) = %v, want 5", got)
	}
	if got := p.DownUntil(0.5); got != 0.5 {
		t.Errorf("DownUntil outside any window = %v, want the query time", got)
	}
}

func TestNodeDownKindStrings(t *testing.T) {
	if NodeCrash.String() != "node-crash" || Reboot.String() != "reboot" {
		t.Errorf("kind strings: %q, %q", NodeCrash.String(), Reboot.String())
	}
}

func TestClockRestore(t *testing.T) {
	c := &Clock{}
	c.Advance(3)
	c.Restore(1.5)
	if c.Now() != 1.5 {
		t.Errorf("Restore(1.5): Now() = %v", c.Now())
	}
	for _, bad := range []float64{-1, nan(), inf()} {
		c.Restore(bad)
		if c.Now() != 1.5 {
			t.Errorf("Restore(%v) should be ignored; Now() = %v", bad, c.Now())
		}
	}
}

func nan() float64  { return zero() / zero() }
func inf() float64  { return 1 / zero() }
func zero() float64 { return 0 }

func TestBreakerSnapshotRestore(t *testing.T) {
	clock := &Clock{}
	b, err := NewBreaker(2, 5, clock)
	if err != nil {
		t.Fatal(err)
	}
	b.RecordFailure()
	b.RecordFailure() // trips open at t=0
	snap := b.Snapshot()
	if snap.State != BreakerOpen || snap.Failures != 2 || snap.OpenedAt != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Restore into a fresh breaker at a later clock: the transition hook
	// fires, and the lazy open→half-open transition happens exactly when
	// the uninterrupted breaker's cooldown would have elapsed.
	clock2 := &Clock{}
	clock2.Advance(3)
	b2, err := NewBreaker(2, 5, clock2)
	if err != nil {
		t.Fatal(err)
	}
	var transitions []BreakerState
	b2.OnTransition = func(_, to BreakerState) { transitions = append(transitions, to) }
	if err := b2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(transitions) != 1 || transitions[0] != BreakerOpen {
		t.Errorf("restore transitions = %v, want [open]", transitions)
	}
	if b2.State() != BreakerOpen {
		t.Errorf("state after restore = %v, want open (cooldown not elapsed)", b2.State())
	}
	clock2.Advance(2.5) // t = 5.5 >= openedAt(0) + cooldown(5)
	if b2.State() != BreakerHalfOpen {
		t.Errorf("state after cooldown = %v, want half-open", b2.State())
	}

	// Invalid snapshots are rejected untouched.
	before := b2.Snapshot()
	for _, bad := range []BreakerSnapshot{
		{State: BreakerState(9)},
		{State: BreakerClosed, Failures: -1},
		{State: BreakerOpen, OpenedAt: -2},
		{State: BreakerOpen, OpenedAt: nan()},
	} {
		if err := b2.Restore(bad); err == nil {
			t.Errorf("Restore(%+v) accepted", bad)
		}
	}
	if b2.Snapshot() != before {
		t.Error("rejected restores mutated the breaker")
	}
}

// The RNG cursor must reproduce the stream position exactly, including
// through Intn-style rejection sampling: restoring Draws() n and
// replaying must yield bit-identical sends.
func TestLinkDrawsRestore(t *testing.T) {
	model := wireless.Model{TxJPerBit: 1e-9, RxJPerBit: 1e-9, RateBps: 250e3}
	mk := func() *Link {
		l, err := NewLink(model, nil, &Clock{}, 0.4, 6, 77)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	a := mk()
	for i := 0; i < 25; i++ {
		a.Send(4096)
	}
	cursor := a.Draws()
	if cursor == 0 {
		t.Fatal("lossy sends drew nothing from the RNG")
	}

	b := mk()
	if err := b.RestoreDraws(cursor); err != nil {
		t.Fatal(err)
	}
	if b.Draws() != cursor {
		t.Fatalf("Draws after restore = %d, want %d", b.Draws(), cursor)
	}
	for i := 0; i < 25; i++ {
		ta, ea := a.Send(4096)
		tb, eb := b.Send(4096)
		if !reflect.DeepEqual(ta, tb) || (ea == nil) != (eb == nil) {
			t.Fatalf("send %d diverged after cursor restore:\n  %+v (%v)\n  %+v (%v)", i, ta, ea, tb, eb)
		}
	}
	if a.Draws() != b.Draws() {
		t.Errorf("cursors diverged: %d vs %d", a.Draws(), b.Draws())
	}

	if err := b.RestoreDraws(MaxRNGDraws + 1); err == nil {
		t.Error("RestoreDraws accepted a cursor beyond MaxRNGDraws")
	}
}

// Adding crash/reboot windows to a PlanConfig must not perturb the
// seeded schedule of the pre-existing kinds: a config that requests
// none replays the exact legacy plans, and one that requests some only
// appends.
func TestRandomPlanCrashPrefixStable(t *testing.T) {
	base := PlanConfig{Horizon: 100, Outages: 2, Bursts: 3, MeanDuration: 4, BurstLoss: 0.6}
	withCrashes := base
	withCrashes.Crashes, withCrashes.Reboots = 2, 1

	a := RandomPlan(42, base)
	b := RandomPlan(42, withCrashes)
	if len(b.Windows) != len(a.Windows)+3 {
		t.Fatalf("window counts: %d vs %d (+3 expected)", len(a.Windows), len(b.Windows))
	}
	// RandomPlan sorts windows by start time, so the crash windows
	// interleave positionally — but the node-down draws come last from
	// the seeded stream, so the set of pre-existing windows must be
	// exactly unchanged.
	var rest []Window
	crashes, reboots := 0, 0
	for _, w := range b.Windows {
		switch w.Kind {
		case NodeCrash:
			crashes++
		case Reboot:
			reboots++
		default:
			rest = append(rest, w)
		}
	}
	if crashes != 2 || reboots != 1 {
		t.Errorf("node-down windows = %d crashes, %d reboots; want 2, 1", crashes, reboots)
	}
	if !reflect.DeepEqual(a.Windows, rest) {
		t.Errorf("crash windows perturbed the pre-existing seeded schedule:\n  %+v\n  %+v", a.Windows, rest)
	}
}

func TestRebootStormScenario(t *testing.T) {
	p, err := Scenario("reboot-storm", 7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]int{}
	for _, w := range p.Windows {
		kinds[w.Kind]++
	}
	if kinds[NodeCrash] != 3 || kinds[Reboot] != 2 {
		t.Errorf("reboot-storm kinds = %v, want 3 crashes and 2 reboots", kinds)
	}
	q, err := Scenario("reboot-storm", 7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Error("reboot-storm scenario is not deterministic for a fixed seed")
	}
	found := false
	for _, n := range ScenarioNames() {
		if n == "reboot-storm" {
			found = true
		}
	}
	if !found {
		t.Error("ScenarioNames misses reboot-storm")
	}
}
