package xsystem

import (
	"math"
	"math/rand"
	"testing"

	"xpro/internal/aggregator"
	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/ensemble"
	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

type fixture struct {
	ds    *biosig.Dataset
	test  *biosig.Dataset
	ens   *ensemble.Ensemble
	graph *topology.Graph
}

var cached *fixture

func getFixture(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	spec, err := biosig.CaseBySymbol("E2")
	if err != nil {
		t.Fatal(err)
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(11))
	train, test := d.Split(0.75, rng)
	cfg := ensemble.DefaultConfig(11)
	cfg.Candidates = 10
	cfg.Folds = 3
	cfg.TopFrac = 0.3
	ens, err := ensemble.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Build(ens, d.SegLen)
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{ds: d, test: test, ens: ens, graph: g}
	return cached
}

func newSystem(t testing.TB, f *fixture, p partition.Placement) *System {
	t.Helper()
	s, err := New(f.graph, f.ens, celllib.P90, wireless.Model2(), aggregator.CortexA8(), p, sensornode.DefaultSampleRateHz)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	f := getFixture(t)
	if _, err := New(f.graph, f.ens, celllib.P90, wireless.Model2(), aggregator.CortexA8(), partition.Placement{partition.Sensor}, sensornode.DefaultSampleRateHz); err == nil {
		t.Error("short placement should error")
	}
	if _, err := New(f.graph, f.ens, celllib.P90, wireless.Model2(), aggregator.CPU{}, partition.InSensor(f.graph), sensornode.DefaultSampleRateHz); err == nil {
		t.Error("invalid CPU should error")
	}
	if _, err := New(f.graph, f.ens, celllib.P90, wireless.Model2(), aggregator.CortexA8(), partition.InSensor(f.graph), 0); err == nil {
		t.Error("zero sample rate should error")
	}
}

// The three engines must agree functionally with the pure-software
// ensemble: per-segment agreement stays high (fixed-point arithmetic and
// wire quantization may flip borderline scores) and, crucially,
// classification accuracy is preserved — quantization noise must not
// cost correctness.
func TestEnginesAgreeWithEnsemble(t *testing.T) {
	f := getFixture(t)
	placements := map[string]partition.Placement{
		"sensor":     partition.InSensor(f.graph),
		"aggregator": partition.InAggregator(f.graph),
		"trivial":    partition.Trivial(f.graph),
	}
	n := 150
	for name, p := range placements {
		s := newSystem(t, f, p)
		agree, engCorrect, ensCorrect := 0, 0, 0
		for i := 0; i < n; i++ {
			seg := f.test.Segs[i]
			got, err := s.Classify(seg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want, err := f.ens.Predict(seg)
			if err != nil {
				t.Fatal(err)
			}
			if got == want {
				agree++
			}
			if got == seg.Label {
				engCorrect++
			}
			if want == seg.Label {
				ensCorrect++
			}
		}
		if frac := float64(agree) / float64(n); frac < 0.85 {
			t.Errorf("%s engine agrees with ensemble on %.1f%%, want ≥ 85%%", name, frac*100)
		}
		accDrop := float64(ensCorrect-engCorrect) / float64(n)
		if accDrop > 0.05 {
			t.Errorf("%s engine loses %.1f%% accuracy to quantization, want ≤ 5%%", name, accDrop*100)
		}
	}
}

// The aggregator engine runs everything in float64, so it must agree
// with the ensemble exactly.
func TestAggregatorEngineExact(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.InAggregator(f.graph))
	for i := 0; i < 100; i++ {
		seg := f.test.Segs[i]
		got, err := s.Classify(seg)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := f.ens.Predict(seg)
		if got != want {
			t.Fatalf("segment %d: aggregator engine %d != ensemble %d", i, got, want)
		}
	}
}

func TestCrossEndAccuracy(t *testing.T) {
	f := getFixture(t)
	prob := newSystem(t, f, partition.InSensor(f.graph)).Problem()
	p, _ := prob.MinCut()
	s := newSystem(t, f, p)
	acc, err := s.Accuracy(&biosig.Dataset{SegLen: f.test.SegLen, Segs: f.test.Segs[:200]})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("cross-end accuracy = %v, want ≥ 0.85", acc)
	}
}

func TestClassifyRejectsWrongLength(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.InSensor(f.graph))
	if _, err := s.Classify(biosig.Segment{Samples: []float64{1, 2, 3}}); err == nil {
		t.Error("wrong segment length should error")
	}
}

// Energy accounting must match the generator's pricing model exactly —
// the s-t graph and the simulator describe the same machine.
func TestEnergyMatchesProblem(t *testing.T) {
	f := getFixture(t)
	for _, p := range []partition.Placement{
		partition.InSensor(f.graph),
		partition.InAggregator(f.graph),
		partition.Trivial(f.graph),
	} {
		s := newSystem(t, f, p)
		got := s.EnergyPerEvent().SensorTotal()
		want := s.Problem().SensorEnergy(p)
		if math.Abs(got-want) > 1e-15+1e-9*want {
			t.Errorf("sensor energy %v != problem pricing %v", got, want)
		}
	}
}

func TestEnergyBreakdownShape(t *testing.T) {
	f := getFixture(t)
	// Aggregator engine: sensor energy is almost all transmission.
	ea := newSystem(t, f, partition.InAggregator(f.graph)).EnergyPerEvent()
	if ea.SensorCompute != 0 {
		t.Error("aggregator engine must have no sensor compute")
	}
	if ea.SensorTx <= 0 || ea.AggRx <= 0 || ea.AggCompute <= 0 {
		t.Error("aggregator engine must pay raw tx, rx and software compute")
	}
	// Sensor engine: wireless is only the classification result (§5.4:
	// "hardly visible").
	es := newSystem(t, f, partition.InSensor(f.graph)).EnergyPerEvent()
	if es.SensorCompute <= 0 {
		t.Error("sensor engine must pay compute")
	}
	if es.SensorWireless() > 0.05*es.SensorTotal() {
		t.Errorf("sensor engine wireless share %v should be tiny", es.SensorWireless()/es.SensorTotal())
	}
	if es.AggCompute != 0 {
		t.Error("sensor engine must have no aggregator compute")
	}
}

func TestDelayBreakdownShape(t *testing.T) {
	f := getFixture(t)
	da := newSystem(t, f, partition.InAggregator(f.graph)).DelayPerEvent()
	ds := newSystem(t, f, partition.InSensor(f.graph)).DelayPerEvent()
	if da.FrontEnd != 0 {
		t.Error("aggregator engine has no front-end compute delay")
	}
	if da.Wireless <= 0 || da.BackEnd <= 0 {
		t.Error("aggregator engine needs wireless + back-end delay")
	}
	if ds.BackEnd != 0 {
		t.Error("sensor engine has no back-end delay")
	}
	if ds.FrontEnd <= 0 {
		t.Error("sensor engine needs front-end delay")
	}
	// §5.3: all engines process an event within real-time bounds (< 4 ms).
	for name, d := range map[string]Delay{"aggregator": da, "sensor": ds} {
		if d.Total() >= 4e-3 {
			t.Errorf("%s engine delay %v ≥ 4 ms", name, d.Total())
		}
	}
	if got := (Delay{FrontEnd: 1, Wireless: 2, BackEnd: 3}).Total(); got != 6 {
		t.Errorf("Delay.Total = %v", got)
	}
}

// The front-end critical path must not exceed the sum of sensor cell
// delays (parallel hardware can only help), and must be at least the
// slowest single cell.
func TestFrontEndCriticalPathBounds(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.InSensor(f.graph))
	d := s.DelayPerEvent()
	var sum, maxCell float64
	for i := range f.graph.Cells {
		cd := s.HW.Delay(topology.CellID(i))
		sum += cd
		if cd > maxCell {
			maxCell = cd
		}
	}
	if d.FrontEnd > sum {
		t.Errorf("critical path %v exceeds serial sum %v", d.FrontEnd, sum)
	}
	if d.FrontEnd < maxCell {
		t.Errorf("critical path %v shorter than slowest cell %v", d.FrontEnd, maxCell)
	}
}

func TestMinCutBeatsOrMatchesBaselines(t *testing.T) {
	f := getFixture(t)
	prob := newSystem(t, f, partition.InSensor(f.graph)).Problem()
	p, e := prob.MinCut()
	for _, base := range []partition.Placement{partition.InSensor(f.graph), partition.InAggregator(f.graph)} {
		if e > prob.SensorEnergy(base)+1e-12 {
			t.Error("cross-end cut worse than a single-end engine")
		}
	}
	_ = p
}

func TestLifetimes(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.InSensor(f.graph))
	h, err := s.SensorLifetimeHours()
	if err != nil || h <= 0 {
		t.Fatalf("sensor lifetime = %v, %v", h, err)
	}
	ah, err := s.AggregatorLifetimeHours()
	if err != nil || ah <= 0 {
		t.Fatalf("aggregator lifetime = %v, %v", ah, err)
	}
	// §5.6: the aggregator battery sustains XPro for > 52 hours.
	if ah < 52 {
		t.Errorf("aggregator lifetime %v h, paper expects > 52 h", ah)
	}
	if s.EventsPerSecond() <= 0 {
		t.Error("event rate must be positive")
	}
}

func BenchmarkClassifyCrossEnd(b *testing.B) {
	f := getFixture(b)
	prob := newSystem(b, f, partition.InSensor(f.graph)).Problem()
	p, _ := prob.MinCut()
	s := newSystem(b, f, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Classify(f.test.Segs[i%len(f.test.Segs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnergyPerEvent(b *testing.B) {
	f := getFixture(b)
	s := newSystem(b, f, partition.Trivial(f.graph))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EnergyPerEvent()
	}
}

func TestMaxSustainableEventRate(t *testing.T) {
	f := getFixture(t)
	for name, p := range map[string]partition.Placement{
		"sensor":     partition.InSensor(f.graph),
		"aggregator": partition.InAggregator(f.graph),
		"trivial":    partition.Trivial(f.graph),
	} {
		s := newSystem(t, f, p)
		rate := s.MaxSustainableEventRate()
		if rate <= 0 || math.IsInf(rate, 1) {
			t.Fatalf("%s: rate %v", name, rate)
		}
		// Throughput must be at least 1/(end-to-end latency): pipelining
		// can only help.
		if min := 1 / s.DelayPerEvent().Total(); rate < min-1e-9 {
			t.Errorf("%s: rate %v below latency bound %v", name, rate, min)
		}
		// And the configured event rate must be sustainable, or the
		// whole evaluation would be nonsense.
		if rate < s.EventsPerSecond() {
			t.Errorf("%s: configured rate %v exceeds sustainable %v", name, s.EventsPerSecond(), rate)
		}
	}
}

func TestMaxSampleRateForLifetime(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.InSensor(f.graph))
	// The configured setup's own lifetime must be achievable at ≈ the
	// configured rate.
	life, err := s.SensorLifetimeHours()
	if err != nil {
		t.Fatal(err)
	}
	rate, err := s.MaxSampleRateForLifetime(life)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-s.SampleRateHz) > 0.05*s.SampleRateHz {
		t.Errorf("rate for own lifetime = %v Hz, want ≈ %v", rate, s.SampleRateHz)
	}
	// Halving the lifetime target roughly doubles the allowed rate
	// (sensing floor is small), up to the pipelining cap.
	rate2, err := s.MaxSampleRateForLifetime(life / 2)
	if err != nil {
		t.Fatal(err)
	}
	if rate2 <= rate {
		t.Errorf("smaller target must allow a higher rate (%v vs %v)", rate2, rate)
	}
	if _, err := s.MaxSampleRateForLifetime(0); err == nil {
		t.Error("non-positive target should error")
	}
	if _, err := s.MaxSampleRateForLifetime(1e12); err == nil {
		t.Error("unreachable target should error")
	}
}
