// Package xpro is a Go reproduction of "XPro: A Cross-End Processing
// Architecture for Data Analytics in Wearables" (ISCA 2017).
//
// XPro embeds a generic biosignal classification pipeline — statistical
// features on the time and DWT domains feeding a random-subspace SVM
// ensemble — into a body-sensor-network system made of a
// battery-constrained wearable sensor node and a smartphone-class data
// aggregator. The pipeline is decomposed into fine-grained functional
// cells, and an Automatic XPro Generator places each cell on one of the
// two ends by solving a min-cut problem whose cut capacity equals the
// sensor node's per-event energy, under an end-to-end delay constraint.
//
// The package exposes four engine kinds: the two classical single-end
// baselines (everything on the sensor, or raw data streamed to the
// aggregator), the intuitive trivial cut at the feature/classifier
// boundary, and the generated cross-end engine, which provably never
// loses to the baselines on sensor energy.
//
// Quickstart:
//
//	eng, err := xpro.New(xpro.Config{Case: "C1"})
//	...
//	label, err := eng.Classify(eng.TestSet()[0].Samples)
//	rep := eng.Report()
//	fmt.Printf("battery life %.0f h, delay %.2f ms\n",
//		rep.SensorLifetimeHours, rep.DelayPerEventSeconds*1e3)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison of every table and figure.
package xpro

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"xpro/internal/aggregator"
	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/cellsim"
	"xpro/internal/ensemble"
	"xpro/internal/eventsim"
	"xpro/internal/experiments"
	"xpro/internal/faults"
	"xpro/internal/hdl"
	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/telemetry"
	"xpro/internal/topology"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

// Process selects the sensor node's fabrication technology (§4.3).
type Process int

const (
	// Process90nm is the paper's default evaluation node.
	Process90nm Process = iota
	Process130nm
	Process45nm
)

func (p Process) String() string { return p.internal().String() }

func (p Process) internal() celllib.Process {
	switch p {
	case Process130nm:
		return celllib.P130
	case Process45nm:
		return celllib.P45
	default:
		return celllib.P90
	}
}

// Wireless selects the transceiver energy model (§4.2).
type Wireless int

const (
	// WirelessModel2 (1.53/1.71 nJ/bit) is the paper's default.
	WirelessModel2 Wireless = iota
	// WirelessModel1 is the high-energy design (2.9/3.3 nJ/bit).
	WirelessModel1
	// WirelessModel3 is the ultra-low-power design (0.42/0.295 nJ/bit).
	WirelessModel3
)

func (w Wireless) String() string { return w.internal().String() }

func (w Wireless) internal() wireless.Model {
	switch w {
	case WirelessModel1:
		return wireless.Model1()
	case WirelessModel3:
		return wireless.Model3()
	default:
		return wireless.Model2()
	}
}

// EngineKind selects how the analytic engine is distributed.
type EngineKind int

const (
	// CrossEnd is the XPro engine: the delay-constrained minimum-energy
	// placement found by the Automatic XPro Generator (§3.2).
	CrossEnd EngineKind = iota
	// InSensor runs every functional cell on the wearable node.
	InSensor
	// InAggregator streams raw data and runs everything in software.
	InAggregator
	// TrivialCut places feature extraction on the sensor and
	// classification on the aggregator (§5.5, Fig. 12).
	TrivialCut
)

func (k EngineKind) String() string {
	switch k {
	case CrossEnd:
		return "cross-end"
	case InSensor:
		return "in-sensor"
	case InAggregator:
		return "in-aggregator"
	case TrivialCut:
		return "trivial-cut"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Protocol selects the ensemble training protocol.
type Protocol int

const (
	// ProtocolFast is §4.4 with a scaled candidate pool (seconds per
	// case).
	ProtocolFast Protocol = iota
	// ProtocolPaper is the full §4.4 protocol: 100 candidate base
	// classifiers on random 12-feature subsets, top 10% kept, 10-fold
	// cross-validation (minutes per case).
	ProtocolPaper
)

// Segment is one labeled biosignal segment, samples normalized to [0,1].
type Segment struct {
	Samples []float64
	Label   int
}

// CaseInfo describes one of the six evaluation test cases (Table 1).
type CaseInfo struct {
	Symbol        string
	Name          string
	Family        string
	SegmentLength int
	SegmentCount  int
}

// Cases lists the six test cases of Table 1.
func Cases() []CaseInfo {
	var out []CaseInfo
	for _, c := range biosig.TestCases() {
		out = append(out, CaseInfo{
			Symbol:        c.Symbol,
			Name:          c.Name,
			Family:        c.Family.String(),
			SegmentLength: c.SegLen,
			SegmentCount:  c.Count,
		})
	}
	return out
}

// Dataset generates the full labeled dataset of a test case.
func Dataset(caseSym string) ([]Segment, error) {
	spec, err := biosig.CaseBySymbol(caseSym)
	if err != nil {
		return nil, err
	}
	d := biosig.Generate(spec)
	return toPublic(d.Segs), nil
}

func toPublic(segs []biosig.Segment) []Segment {
	out := make([]Segment, len(segs))
	for i, s := range segs {
		out[i] = Segment{Samples: s.Samples, Label: s.Label}
	}
	return out
}

// Config configures engine construction. The zero value builds the
// paper's default setup for a case that must be set explicitly.
type Config struct {
	// Case is a Table 1 symbol: C1, C2, E1, E2, M1, M2.
	Case string
	// Kind selects the engine distribution (default CrossEnd).
	Kind EngineKind
	// Process selects the sensor technology (default 90 nm).
	Process Process
	// Wireless selects the link model (default Model 2).
	Wireless Wireless
	// Protocol selects the training protocol (default fast).
	Protocol Protocol
	// SampleRateHz sets the biosignal sampling rate (default 2048).
	SampleRateHz float64
	// Seed overrides the case's deterministic training seed.
	Seed int64
	// PruneKeep, when in (0,1), prunes every base SVM to that fraction
	// of its largest-coefficient support vectors before the topology is
	// built — shrinking the in-sensor SVM cells at some accuracy cost
	// (see the BenchmarkAblationSVPruning numbers). 0 disables pruning.
	PruneKeep float64
	// Resilience, when set, arms the fault-tolerance layer: deadline
	// budgets, retry/backoff, circuit breaking and graceful degradation
	// through the in-sensor fallback cut (see DefaultResilience).
	Resilience *Resilience
	// FaultPlan, when set, injects a deterministic fault schedule into
	// the engine's modeled timeline (implies DefaultResilience when
	// Resilience is nil).
	FaultPlan *FaultPlan
	// Adaptive, when set, arms closed-loop adaptive repartitioning: an
	// online channel estimator fed by the resilience layer's transfer
	// evidence, and a re-cut controller that re-runs the Automatic XPro
	// Generator against the estimated channel and hot-swaps the active
	// cut between events (implies DefaultResilience when Resilience is
	// nil; see DefaultAdaptive).
	Adaptive *Adaptive
	// Integrity, when set, arms the data-plane integrity layer: framed
	// wire transport (per-frame sequencing + CRC with imputation of
	// residual loss) and a signal-quality admission gate that returns
	// ErrSuspectData instead of labeling garbage (implies
	// DefaultResilience when Resilience is nil; see DefaultIntegrity).
	Integrity *Integrity
	// SLOWindowSeconds sets the rolling window the engine's SLO
	// quantile series cover (SLOReport's p50/p95/p99 horizon): modeled
	// seconds on an engine with a Resilience policy, host seconds
	// otherwise. 0 takes the 60 s default.
	SLOWindowSeconds float64
}

// trained caches classifiers per (case, seed, protocol): training is by
// far the most expensive step of New, and Process/Wireless/Kind/pruning
// choices never affect it, so design-space sweeps (Compare, Recommend)
// reuse one trained ensemble. Cached ensembles and test sets are
// read-only after construction and safe to share across engines.
var trained = struct {
	sync.Mutex
	m map[string]*trainedEntry
}{m: make(map[string]*trainedEntry)}

type trainedEntry struct {
	ens  *ensemble.Ensemble
	test *biosig.Dataset
}

func trainedEnsemble(caseSym string, seed int64, protocol Protocol) (*ensemble.Ensemble, *biosig.Dataset, error) {
	key := fmt.Sprintf("%s/%d/%d", caseSym, seed, protocol)
	trained.Lock()
	defer trained.Unlock()
	if e, ok := trained.m[key]; ok {
		return e.ens, e.test, nil
	}
	spec, err := biosig.CaseBySymbol(caseSym)
	if err != nil {
		return nil, nil, err
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	train, test := d.Split(0.75, rng)
	var tcfg ensemble.Config
	if protocol == ProtocolPaper {
		tcfg = ensemble.PaperConfig(seed)
	} else {
		tcfg = ensemble.DefaultConfig(seed)
	}
	ens, err := ensemble.Train(train, tcfg)
	if err != nil {
		return nil, nil, fmt.Errorf("xpro: training %s: %w", caseSym, err)
	}
	trained.m[key] = &trainedEntry{ens: ens, test: test}
	return ens, test, nil
}

// Engine is a fully built XPro instance: a trained classifier
// partitioned across a simulated sensor node and aggregator.
type Engine struct {
	cfg Config
	// static is the cut New built for cfg.Kind; active is the cut events
	// currently run through. Without an adaptive controller they are the
	// same system forever; with one, the controller hot-swaps active
	// between events and static stays the pristine reference.
	static *xsystem.System
	active atomic.Pointer[xsystem.System]
	ens    *ensemble.Ensemble
	graph  *topology.Graph
	test   *biosig.Dataset
	gen    partition.Result
	acc    float64
	obs    *Observer
	res    *resilient  // nil without a Resilience policy
	slo    *sloHandles // pre-resolved SLO series + memoized report
	// epoch counts the observable state changes of the engine's serving
	// configuration: adaptive hot swaps/rollbacks, circuit-breaker
	// transitions, and fault-window edges — everything that can change
	// which system effectiveSystem returns or how it is priced. Network
	// memoizes its rebuilt per-engine view against this counter.
	epoch atomic.Uint64
	// tier is the armed N-tier plan (TierPlan.Arm), if any: the SLO and
	// health reports read per-hop liveness from it, and the recovery
	// layer carries its breaker/ladder state in SubjectState.
	tier atomic.Pointer[TierPlan]
}

// generation returns the engine's serving-configuration epoch. Two
// equal generations bracket a window in which Report/RealTimeOK inputs
// cannot have changed.
func (e *Engine) generation() uint64 { return e.epoch.Load() }

// sys returns the engine's currently active system. Reads are atomic:
// the adaptive controller may swap the pointer between events while
// report/inspection methods run concurrently.
func (e *Engine) sys() *xsystem.System { return e.active.Load() }

// attachObserver points a system's telemetry hooks (and its pricing
// problem's) at the engine observer, so Classify, Stream and the
// Automatic XPro Generator all record into the same registry.
func attachObserver(sys *xsystem.System, obs *Observer) {
	sys.Metrics = obs.reg
	sys.Tracer = obs.tracer
	sys.Problem().Metrics = obs.reg
}

// newEngine finishes engine construction: it publishes the placement's
// headline figures as gauges and registers the /enginez status sections.
func newEngine(cfg Config, sys *xsystem.System, ens *ensemble.Ensemble,
	g *topology.Graph, test *biosig.Dataset, gen partition.Result,
	acc float64, obs *Observer) (*Engine, error) {
	res, err := buildResilient(cfg, sys, g, ens, obs)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, static: sys, ens: ens, graph: g, test: test,
		gen: gen, acc: acc, obs: obs, res: res,
		slo: newSLOHandles(obs.reg, cfg.SLOWindowSeconds)}
	e.active.Store(sys)
	if res != nil && res.breaker != nil {
		// Breaker transitions change which system effectiveSystem
		// returns; bump the serving epoch so memoized network views
		// rebuild, and land on the span trace and the structured event
		// log (sharing one trace ID). Chained after the metrics/estimator
		// hook installed by buildResilient.
		prev := res.breaker.OnTransition
		res.breaker.OnTransition = func(from, to faults.BreakerState) {
			if prev != nil {
				prev(from, to)
			}
			e.epoch.Add(1)
			var ev uint64
			if tr := obs.tracer; tr != nil {
				ev = tr.NextEvent()
				tr.Add(telemetry.Span{Event: ev, Name: "breaker", End: "event",
					Start: time.Now(), DelaySeconds: res.clock.Now()})
			}
			obs.events.Append(telemetry.Event{
				Trace: ev, TimeSeconds: res.clock.Now(), Kind: "breaker",
				Detail: from.String() + "->" + to.String(),
			})
		}
	}
	e.publishReportGauges()
	obs.setStatus("config", func() any { return e.cfg })
	obs.setStatus("placement", func() any { return e.Placement() })
	obs.setStatus("report", func() any { return e.Report() })
	obs.setStatus("slo", func() any { return e.SLOReport() })
	obs.setEndpoint("/slo", func() (int, any) { return 200, e.SLOReport() })
	obs.setEndpoint("/healthz", func() (int, any) {
		h := e.Health()
		if h.Status != "ok" {
			return 503, h
		}
		return 200, h
	})
	if res != nil && res.ctrl != nil {
		obs.setStatus("adaptive", func() any { return e.AdaptiveStatus() })
	}
	return e, nil
}

// publishReportGauges refreshes the engine's headline gauges from the
// active cut. It runs once at construction and again after every
// adaptive hot swap, so scraped dashboards follow the installed cut.
func (e *Engine) publishReportGauges() {
	rep := e.Report()
	m := e.obs.reg
	m.Gauge("xpro_engine_cells", "Functional cells in the engine topology.").
		Set(float64(rep.Cells))
	m.Gauge(telemetry.WithLabels("xpro_engine_cells_placed", map[string]string{"end": "sensor"}),
		"Functional cells placed per end.").Set(float64(rep.SensorCells))
	m.Gauge(telemetry.WithLabels("xpro_engine_cells_placed", map[string]string{"end": "aggregator"}),
		"Functional cells placed per end.").Set(float64(rep.AggregatorCells))
	m.Gauge("xpro_engine_sensor_energy_joules_per_event",
		"Modeled sensor-node energy per classification event.").Set(rep.SensorEnergyPerEvent)
	m.Gauge("xpro_engine_delay_seconds_per_event",
		"Modeled end-to-end delay per classification event.").Set(rep.DelayPerEventSeconds)
	m.Gauge("xpro_engine_sensor_lifetime_hours",
		"Modeled sensor battery lifetime.").Set(rep.SensorLifetimeHours)
}

// New trains the generic classification for cfg.Case, builds its
// functional-cell topology, characterizes the cells, and places them
// according to cfg.Kind. For CrossEnd, the Automatic XPro Generator
// solves the delay-constrained min-cut with T_XPro = min(T_F, T_B).
func New(cfg Config) (*Engine, error) {
	if cfg.Case == "" {
		return nil, errors.New("xpro: Config.Case must name a test case (C1, C2, E1, E2, M1, M2)")
	}
	spec, err := biosig.CaseBySymbol(cfg.Case)
	if err != nil {
		return nil, err
	}
	if cfg.SampleRateHz == 0 {
		cfg.SampleRateHz = sensornode.DefaultSampleRateHz
	}
	// The negated form also rejects NaN, which fails every comparison.
	if !(cfg.SampleRateHz > 0) || math.IsInf(cfg.SampleRateHz, 0) {
		return nil, fmt.Errorf("xpro: SampleRateHz %v must be positive and finite", cfg.SampleRateHz)
	}
	seed := spec.Seed
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}

	ens, test, err := trainedEnsemble(cfg.Case, seed, cfg.Protocol)
	if err != nil {
		return nil, err
	}
	if cfg.PruneKeep != 0 {
		// The negated form also rejects NaN, which fails every comparison.
		if !(cfg.PruneKeep > 0 && cfg.PruneKeep < 1) {
			return nil, fmt.Errorf("xpro: PruneKeep %v outside (0,1)", cfg.PruneKeep)
		}
		ens, err = ens.Pruned(cfg.PruneKeep)
		if err != nil {
			return nil, err
		}
	}
	acc, err := ens.Accuracy(test)
	if err != nil {
		return nil, err
	}
	g, err := topology.Build(ens, spec.SegLen)
	if err != nil {
		return nil, err
	}

	proc := cfg.Process.internal()
	link := cfg.Wireless.internal()
	cpu := aggregator.CortexA8()
	obs := newObserver(telemetry.DefaultTraceCapacity)
	mk := func(p partition.Placement) (*xsystem.System, error) {
		sys, err := xsystem.New(g, ens, proc, link, cpu, p, cfg.SampleRateHz)
		if err != nil {
			return nil, err
		}
		attachObserver(sys, obs)
		return sys, nil
	}

	var placement partition.Placement
	var gen partition.Result
	switch cfg.Kind {
	case InSensor:
		placement = partition.InSensor(g)
	case InAggregator:
		placement = partition.InAggregator(g)
	case TrivialCut:
		placement = partition.Trivial(g)
	case CrossEnd:
		a, err := mk(partition.InAggregator(g))
		if err != nil {
			return nil, err
		}
		s, err := mk(partition.InSensor(g))
		if err != nil {
			return nil, err
		}
		limit := a.DelayPerEvent().Total()
		if ds := s.DelayPerEvent().Total(); ds < limit {
			limit = ds
		}
		gen, err = a.Problem().Generate(func(p partition.Placement) float64 {
			return a.DelayOf(p).Total()
		}, limit)
		if err != nil {
			return nil, fmt.Errorf("xpro: generating cross-end placement: %w", err)
		}
		placement = gen.Placement
	default:
		return nil, fmt.Errorf("xpro: unknown engine kind %d", cfg.Kind)
	}

	sys, err := mk(placement)
	if err != nil {
		return nil, err
	}
	return newEngine(cfg, sys, ens, g, test, gen, acc, obs)
}

// Classify runs one segment through the partitioned pipeline and returns
// the predicted label (0 or 1). Sensor-side cells compute in Q16.16
// fixed point, aggregator-side cells in float64. On an engine with a
// Resilience policy the event runs through the fault-tolerance ladder
// and faults degrade the answer instead of erroring — ClassifyResult
// exposes the provenance.
func (e *Engine) Classify(samples []float64) (int, error) {
	if e.res != nil {
		res, err := e.res.classify(e, biosig.Segment{Samples: samples})
		return res.Label, err
	}
	label, err := e.sys().Classify(biosig.Segment{Samples: samples})
	if err == nil {
		e.observePlainEvents(1)
	}
	return label, err
}

// observePlainEvents records n full-path events on the SLO quantile
// series of an engine without a Resilience policy: the active cut's
// modeled per-event delay and sensor energy, stamped on host uptime
// (no modeled clock exists on this path). The resilient path instead
// observes each event's actual modeled figures in classifyCtx.
func (e *Engine) observePlainEvents(n int) {
	if n <= 0 {
		return
	}
	lat := e.sys().DelayPerEvent().Total()
	en := e.sys().EnergyPerEvent().SensorTotal()
	now := telemetry.Uptime()
	for i := 0; i < n; i++ {
		e.slo.observe(now, lat, en, 0)
	}
}

// TestSet returns the engine's held-out test segments (25% of the case
// dataset, §4.4).
func (e *Engine) TestSet() []Segment { return toPublic(e.test.Segs) }

// SoftwareAccuracy is the pure-software ensemble accuracy on the held-out
// test set.
func (e *Engine) SoftwareAccuracy() float64 { return e.acc }

// Accuracy classifies the whole held-out test set through the
// partitioned pipeline.
func (e *Engine) Accuracy() (float64, error) { return e.sys().Accuracy(e.test) }

// CellPlacement describes where one functional cell landed.
type CellPlacement struct {
	Name string
	Role string
	End  string // "sensor" or "aggregator"
}

// Placement lists every functional cell and its end.
func (e *Engine) Placement() []CellPlacement {
	out := make([]CellPlacement, len(e.graph.Cells))
	for i, c := range e.graph.Cells {
		end := "aggregator"
		if e.sys().Placement.OnSensor(c.ID) {
			end = "sensor"
		}
		out[i] = CellPlacement{Name: c.Name, Role: c.Role.String(), End: end}
	}
	return out
}

// Report summarizes the engine's modeled energy, delay and lifetime.
type Report struct {
	Case string
	Kind string

	Cells           int
	SensorCells     int
	AggregatorCells int
	// UsedFallback is true when the generator fell back to a single-end
	// engine to meet the delay constraint (§3.2.3).
	UsedFallback bool

	// Sensor node per-event energy (J) and its breakdown.
	SensorEnergyPerEvent  float64
	SensorComputeEnergy   float64
	SensorWirelessEnergy  float64
	SensorSensingEnergy   float64
	SensorAvgPowerWatts   float64
	SensorLifetimeHours   float64
	AggregatorEnergyEvent float64
	AggregatorLifetimeH   float64

	// Per-event delay (s) and its Fig. 10 breakdown.
	DelayPerEventSeconds float64
	FrontEndDelay        float64
	WirelessDelay        float64
	BackEndDelay         float64

	EventsPerSecond float64
	// MaxEventRate is the highest steady-state rate the placement can
	// pipeline (slowest resource bound).
	MaxEventRate     float64
	SoftwareAccuracy float64
}

// Report computes the engine's summary.
func (e *Engine) Report() Report {
	en := e.sys().EnergyPerEvent()
	d := e.sys().DelayPerEvent()
	life, _ := e.sys().SensorLifetimeHours()
	aggLife, _ := e.sys().AggregatorLifetimeHours()
	ns, na := e.sys().Placement.Counts()
	return Report{
		Case:                  e.cfg.Case,
		Kind:                  e.cfg.Kind.String(),
		Cells:                 len(e.graph.Cells),
		SensorCells:           ns,
		AggregatorCells:       na,
		UsedFallback:          e.gen.Fallback,
		SensorEnergyPerEvent:  en.SensorTotal(),
		SensorComputeEnergy:   en.SensorCompute,
		SensorWirelessEnergy:  en.SensorWireless(),
		SensorSensingEnergy:   en.Sensing,
		SensorAvgPowerWatts:   e.sys().SensorAvgPower(),
		SensorLifetimeHours:   life,
		AggregatorEnergyEvent: en.AggregatorTotal(),
		AggregatorLifetimeH:   aggLife,
		DelayPerEventSeconds:  d.Total(),
		FrontEndDelay:         d.FrontEnd,
		WirelessDelay:         d.Wireless,
		BackEndDelay:          d.BackEnd,
		EventsPerSecond:       e.sys().EventsPerSecond(),
		MaxEventRate:          e.sys().MaxSustainableEventRate(),
		SoftwareAccuracy:      e.acc,
	}
}

// SimulatedDelay runs one event through the discrete-event scheduler
// (internal/eventsim), which models link and CPU contention explicitly
// and lets pipeline phases overlap. It is a lower, more faithful
// estimate than Report's additive Fig. 10 decomposition and never
// exceeds it.
func (e *Engine) SimulatedDelay() (float64, error) {
	tr, err := e.simulate()
	if err != nil {
		return 0, err
	}
	return tr.Finish, nil
}

// Timeline renders the discrete-event schedule of one classification
// event: every cell activation and wireless transfer with its start and
// end time.
func (e *Engine) Timeline() (string, error) {
	tr, err := e.simulate()
	if err != nil {
		return "", err
	}
	return tr.Render(), nil
}

func (e *Engine) simulate() (*eventsim.Trace, error) {
	return eventsim.Simulate(e.simInput())
}

// simInput assembles the discrete-event simulator's view of the engine.
// Simulator counters (events, transfers, battery drain) land on the
// engine observer.
func (e *Engine) simInput() eventsim.Input {
	return eventsim.Input{
		Graph:       e.graph,
		Placement:   e.sys().Placement,
		SensorDelay: e.sys().HW.Delay,
		AggDelay: func(id topology.CellID) float64 {
			return e.sys().CPU.CellCost(e.graph.Cells[id].Spec).Delay
		},
		Link:                 e.sys().Link,
		SensorEnergyPerEvent: e.sys().EnergyPerEvent().SensorTotal(),
		Metrics:              e.obs.reg,
	}
}

// Verilog emits a synthesizable Verilog skeleton of the engine's
// in-sensor analytic part: one module per sensor-placed functional cell
// with the asynchronous handshake interface of Fig. 3, plus a top-level
// module wiring the topology, with tx/rx ports at the cross-end
// boundary. Engines whose placement keeps no cell on the sensor (the
// in-aggregator engine) return an error.
func (e *Engine) Verilog() (string, error) {
	return hdl.GenerateVerilog(e.graph, e.sys().Placement, e.sys().HW)
}

// DomainImportance measures, by permutation on the held-out test set,
// which signal domains the trained classifier leans on: the share of
// total margin-importance mass per domain, keyed "time", "dwt1".."dwt5",
// "dwtA". It makes the paper's §2.1 heterogeneity claim measurable (EEG
// prefers the DWT domain, EMG the time domain).
func (e *Engine) DomainImportance() (map[string]float64, error) {
	n := len(e.test.Segs)
	if n > 200 {
		n = 200
	}
	eval := &biosig.Dataset{SegLen: e.test.SegLen, Segs: e.test.Segs[:n]}
	shares, err := e.ens.DomainImportance(eval, 2, 99)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(shares))
	for d, s := range shares {
		out[ensemble.DomainName(d)] = s
	}
	return out, nil
}

// PeakPowerWatts returns the sensor node's peak instantaneous compute
// power during one event, from the cycle-stepped cell-array simulation:
// the regulator-sizing figure the average-energy model hides.
func (e *Engine) PeakPowerWatts() (float64, error) {
	res, err := cellsim.Simulate(e.graph, e.sys().Placement, e.sys().HW)
	if err != nil {
		return 0, err
	}
	return cellsim.PeakPower(res, e.sys().HW), nil
}

// DOT renders the engine's placed functional-cell graph in Graphviz
// format: sensor and aggregator clusters with crossing payloads
// highlighted.
func (e *Engine) DOT() string {
	return e.graph.DOT(e.sys().Placement.OnSensor)
}

// Compare builds all four engine kinds for one configuration and returns
// their reports in order: in-aggregator, trivial, in-sensor, cross-end.
// It retrains once per kind with identical seeds, so the underlying
// classifier is the same.
func Compare(cfg Config) ([]Report, error) {
	kinds := []EngineKind{InAggregator, TrivialCut, InSensor, CrossEnd}
	out := make([]Report, 0, len(kinds))
	for _, k := range kinds {
		c := cfg
		c.Kind = k
		eng, err := New(c)
		if err != nil {
			return nil, err
		}
		out = append(out, eng.Report())
	}
	return out, nil
}

// RunExperiments regenerates the requested paper experiment ("all",
// "table1", "fig4", "fig8".."fig13", "headline") and writes its
// formatted table to w.
func RunExperiments(w io.Writer, id string, protocol Protocol, cases ...string) error {
	lab := experiments.NewLab()
	if protocol == ProtocolPaper {
		lab.Config = ensemble.PaperConfig
	}
	lab.Cases = cases
	if id == "all" || id == "" {
		return experiments.All(lab, w)
	}
	return experiments.Run(lab, id, w)
}
