package xpro

import "testing"

func TestNetwork(t *testing.T) {
	engines := map[string]*Engine{}
	for _, sym := range []string{"C1", "E1"} {
		e, err := New(Config{Case: sym})
		if err != nil {
			t.Fatal(err)
		}
		engines[sym] = e
	}
	nw, err := NewNetwork(engines)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := nw.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NodeLifetimeHours) != 2 || len(rep.WorstCaseDelaySeconds) != 2 {
		t.Fatalf("report incomplete: %+v", rep)
	}
	// Per-node lifetimes match the standalone engines.
	for sym, e := range engines {
		if got, want := rep.NodeLifetimeHours[sym], e.Report().SensorLifetimeHours; got != want {
			t.Errorf("%s: network lifetime %v != standalone %v", sym, got, want)
		}
		// Shared CPU can only make the worst case slower.
		if rep.WorstCaseDelaySeconds[sym] < e.Report().DelayPerEventSeconds-1e-12 {
			t.Errorf("%s: worst case %v below solo delay", sym, rep.WorstCaseDelaySeconds[sym])
		}
	}
	if rep.BottleneckHours > rep.NodeLifetimeHours["C1"] || rep.BottleneckHours > rep.NodeLifetimeHours["E1"] {
		t.Error("bottleneck not minimal")
	}
	if rep.AggregatorUtilization <= 0 || rep.AggregatorUtilization >= 1 {
		t.Errorf("utilization %v not sustainable", rep.AggregatorUtilization)
	}
	if rep.AggregatorLifetimeHours < 52 {
		t.Errorf("aggregator lifetime %v h below the §5.6 bar", rep.AggregatorLifetimeHours)
	}
	if !nw.RealTimeOK(10e-3) {
		t.Error("network should meet 10 ms")
	}
	if nw.RealTimeOK(1e-9) {
		t.Error("network cannot meet 1 ns")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty network should error")
	}
	if _, err := NewNetwork(map[string]*Engine{"x": nil}); err == nil {
		t.Error("nil engine should error")
	}
}
