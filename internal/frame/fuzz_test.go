package frame

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame drives the codec's two safety contracts:
//
//  1. decode(encode(x)) round-trips for every payload;
//  2. every single-bit flip over the encoded frame (header, payload and
//     trailer alike) is detected — Decode returns a typed error, never
//     panics, and never yields a silently wrong-length payload slice.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(uint8(0), []byte(nil))
	f.Add(uint8(7), []byte{0x00})
	f.Add(uint8(255), []byte("framed wire payload"))
	f.Add(uint8(128), bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, seq uint8, payload []byte) {
		// Arbitrary bytes fed straight to Decode must never panic, and a
		// successful decode must honor its own length field.
		if fr, err := Decode(payload); err == nil {
			if len(payload) >= 2 && len(fr.Payload) != int(payload[1]) {
				t.Fatalf("Decode returned a %d-byte payload for length field %d", len(fr.Payload), payload[1])
			}
		}

		if len(payload) > MaxPayloadBytes {
			payload = payload[:MaxPayloadBytes]
		}
		buf, err := Encode(seq, payload)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		fr, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(Encode(...)): %v", err)
		}
		if fr.Seq != seq || !bytes.Equal(fr.Payload, payload) {
			t.Fatalf("round trip mismatch: seq %d/%d, payload %x/%x", fr.Seq, seq, fr.Payload, payload)
		}

		for bit := 0; bit < len(buf)*8; bit++ {
			flipped := append([]byte(nil), buf...)
			flipped[bit/8] ^= 1 << uint(bit%8)
			got, err := Decode(flipped)
			if err == nil {
				t.Fatalf("single-bit flip at bit %d decoded cleanly (seq %d, %d-byte payload)", bit, got.Seq, len(got.Payload))
			}
			if !errors.Is(err, ErrCRC) && !errors.Is(err, ErrLength) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("flip at bit %d returned an untyped error: %v", bit, err)
			}
		}
	})
}
