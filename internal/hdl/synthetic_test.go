package hdl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xpro/internal/celllib"
	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
)

// Property: the generator emits balanced, well-formed skeletons for any
// synthetic topology and any grouped placement keeping ≥1 sensor cell.
func TestQuickSyntheticVerilogWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Synthetic(rng, 8+rng.Intn(200))
		if err != nil {
			return false
		}
		hw := sensornode.Characterize(g, celllib.P90)
		// Random grouped placement with the source group on the sensor
		// (guaranteeing at least one sensor cell when a reader exists).
		p := make(partition.Placement, len(g.Cells))
		readers := make(map[topology.CellID]bool)
		for _, id := range g.SourceReaders() {
			readers[id] = true
		}
		for i := range p {
			if readers[topology.CellID(i)] {
				p[i] = partition.Sensor
			} else {
				p[i] = partition.End(rng.Intn(2))
			}
		}
		v, err := GenerateVerilog(g, p, hw)
		if err != nil {
			return false
		}
		sensorCells, _ := p.Counts()
		wantModules := sensorCells + 1
		if strings.Count(v, "endmodule") != wantModules {
			return false
		}
		if strings.Count(v, "module ") < wantModules {
			return false
		}
		// Every wire referenced in an instantiation port must be
		// declared (coarse check: w_/v_ identifiers).
		for _, id := range p.SensorCells() {
			name := Ident(g.Cells[id].Name)
			if !strings.Contains(v, "wire v_"+name+";") {
				return false
			}
		}
		return strings.Contains(v, "xpro_top")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
