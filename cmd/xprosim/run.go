package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"xpro"
)

// run executes the tool against args; main passes the returned exit code
// to os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xprosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	caseSym := fs.String("case", "C1", "test case symbol")
	kind := fs.String("kind", "cross", "engine kind: cross, sensor, aggregator, trivial")
	n := fs.Int("n", 200, "number of segments to stream")
	trace := fs.Bool("trace", false, "print the discrete-event timeline of one event")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /trace, /enginez and pprof on this address during the run (e.g. :9090; :0 picks a free port)")
	traceOut := fs.String("trace-out", "", "write the recorded per-cell span trace as JSON to this file after the run")
	faultsFlag := fs.String("faults", "", "inject a fault scenario and classify through the resilience ladder: "+strings.Join(xpro.FaultScenarios(), ", "))
	faultSeed := fs.Int64("fault-seed", 7, "seed of the injected fault plan (same seed replays the identical run)")
	adaptiveFlag := fs.Bool("adaptive", false, "arm closed-loop adaptive repartitioning: estimate the channel online and hot-swap the cut when the estimate says a different one is cheaper")
	corruption := fs.Bool("corruption", false, "arm the data-plane integrity layer: framed transport (CRC + sequence numbers, imputation) and the signal-quality admission gate; defaults -faults to \"corrupt\" when no scenario is chosen")
	parallel := fs.Int("parallel", 1, "stream through the ordered worker pool with this many workers (1 = sequential; labels and ordering are identical either way)")
	logJSON := fs.String("log-json", "", "stream the structured event log (one JSON record per classify / re-cut / breaker transition / quarantine) to this file during the run")
	sloFlag := fs.Bool("slo", false, "print the engine's final SLO table: windowed latency/energy quantiles, degradation-ladder breakdown, health")
	overloadFlag := fs.Bool("overload", false, "flood the engine through an overload-protected fleet (deadline-aware admission, strict-priority shedding, brownout): all n segments are offered at once with rotating batch/interactive/alert priorities")
	tierFaults := fs.Bool("tier-faults", false, "lift the engine onto a 3-tier chain (sensor-hub-cloud), arm seeded hub storms on its hops (seed from -fault-seed), and classify through the tier-collapse ladder; prints the collapse log and per-hop liveness")
	tierStorms := fs.Int("tier-storms", 3, "hub-storm count for -tier-faults (each storm darkens both hops touching the hub)")
	checkpointOut := fs.String("checkpoint", "", "write the engine's durable subject-state checkpoint (one CRC-enveloped record) to this file after the run")
	recoverIn := fs.String("recover", "", "recover the durable subject state from a checkpoint file before streaming: the run resumes the crashed run's modeled timeline")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := xpro.Config{Case: *caseSym}
	if *corruption {
		if *faultsFlag == "" {
			*faultsFlag = "corrupt"
		}
		cfg.Integrity = xpro.DefaultIntegrity()
	}
	if *faultsFlag != "" {
		// The plan's horizon covers the whole streamed run: n events at
		// the engine's event period (segment length / sample rate).
		horizon := 60.0
		for _, ci := range xpro.Cases() {
			if ci.Symbol == *caseSym {
				horizon = float64(*n) * float64(ci.SegmentLength) / 2048.0
			}
		}
		plan, err := xpro.FaultScenario(*faultsFlag, *faultSeed, horizon)
		if err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 2
		}
		cfg.FaultPlan = plan
		cfg.Resilience = xpro.DefaultResilience()
	}
	if *adaptiveFlag {
		cfg.Adaptive = xpro.DefaultAdaptive()
	}
	if (*checkpointOut != "" || *recoverIn != "") && cfg.Resilience == nil {
		// Durable subject state lives in the fault-tolerance layer.
		cfg.Resilience = xpro.DefaultResilience()
	}
	switch *kind {
	case "cross":
		cfg.Kind = xpro.CrossEnd
	case "sensor":
		cfg.Kind = xpro.InSensor
	case "aggregator":
		cfg.Kind = xpro.InAggregator
	case "trivial":
		cfg.Kind = xpro.TrivialCut
	default:
		fmt.Fprintf(stderr, "xprosim: unknown kind %q\n", *kind)
		return 2
	}

	eng, err := xpro.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "xprosim: %v\n", err)
		return 1
	}
	obs := eng.Observer()
	if *logJSON != "" {
		f, err := os.Create(*logJSON)
		if err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		defer f.Close()
		obs.SetEventSink(f)
		defer obs.SetEventSink(nil)
	}
	if *metricsAddr != "" {
		addr, err := obs.StartIntrospection(*metricsAddr)
		if err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		defer obs.StopIntrospection()
		fmt.Fprintf(stdout, "introspection: http://%s/ (/metrics /trace /enginez /debug/pprof)\n", addr)
	}
	if *recoverIn != "" {
		f, err := os.Open(*recoverIn)
		if err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		rrep, err := eng.Recover(f, nil)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "xprosim: recovering from %s: %v\n", *recoverIn, err)
			return 1
		}
		fmt.Fprintf(stdout, "recovered from %s: resuming after event %d\n", *recoverIn, rrep.Seq)
	}
	rep := eng.Report()
	fmt.Fprintf(stdout, "streaming %s through the %s engine (%d sensor / %d aggregator cells)\n",
		*caseSym, rep.Kind, rep.SensorCells, rep.AggregatorCells)

	if *trace {
		tl, err := eng.Timeline()
		if err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		sim, _ := eng.SimulatedDelay()
		fmt.Fprintf(stdout, "\nevent timeline (overlapped schedule %.3f ms vs additive %.3f ms):\n%s\n",
			sim*1e3, rep.DelayPerEventSeconds*1e3, tl)
	}

	test := eng.TestSet()
	if *n > len(test) {
		*n = len(test)
	}
	if *parallel < 1 {
		fmt.Fprintf(stderr, "xprosim: -parallel must be >= 1, got %d\n", *parallel)
		return 2
	}
	if *tierFaults {
		if code := runTierFaults(stdout, stderr, eng, test, *n, *faultSeed, *tierStorms); code != 0 {
			return code
		}
		if *sloFlag {
			printSLO(stdout, eng)
		}
		return 0
	}
	correct := 0
	degraded := 0
	suspect := 0
	modes := make(map[string]int)
	var energy, seconds float64
	// The gate turns corrupt-beyond-repair or implausible segments into
	// typed rejections; under -corruption those are part of the story the
	// run tells, not a reason to abort it.
	quarantine := func(err error) bool {
		if !errors.Is(err, xpro.ErrSuspectData) {
			return false
		}
		suspect++
		degraded++
		modes[xpro.ModeSuspectData.String()]++
		return true
	}
	// Under a crash scenario (reboot-storm, or any plan with
	// node-crash/reboot windows) events that arrive while the node is
	// down fail fast; the run rides through and reports them.
	crashRejected := 0
	nodeDown := func(err error) bool {
		if !errors.Is(err, xpro.ErrNodeDown) {
			return false
		}
		crashRejected++
		return true
	}
	account := func(i int, res xpro.Result) {
		if res.Label == test[i].Label {
			correct++
		}
		if res.Degraded {
			degraded++
			modes[res.Mode.String()]++
		}
		energy += rep.SensorEnergyPerEvent
		seconds += rep.DelayPerEventSeconds
		if (i+1)%50 == 0 {
			fmt.Fprintf(stdout, "  %4d events: accuracy %.3f, sensor energy %.1f µJ, busy time %.1f ms\n",
				i+1, float64(correct)/float64(i+1), energy*1e6, seconds*1e3)
		}
	}
	if *overloadFlag {
		if code := runOverload(stdout, stderr, eng, test, *n, *parallel); code != 0 {
			return code
		}
	} else if *parallel > 1 {
		// Ordered parallel stream: results arrive in submission order, so
		// the running accuracy printout reads the same as the serial path.
		in := make(chan []float64)
		go func() {
			defer close(in)
			for i := 0; i < *n; i++ {
				in <- test[i].Samples
			}
		}()
		start := time.Now()
		for r := range eng.StreamParallel(context.Background(), in, *parallel) {
			if r.Err != nil {
				if quarantine(r.Err) || nodeDown(r.Err) {
					continue
				}
				fmt.Fprintf(stderr, "xprosim: segment %d: %v\n", r.Index, r.Err)
				return 1
			}
			account(r.Index, r.Result)
		}
		if elapsed := time.Since(start).Seconds(); elapsed > 0 && *n > 0 {
			fmt.Fprintf(stdout, "parallel: %d workers served %d events in %.2fs (%.0f events/s wall-clock)\n",
				*parallel, *n, elapsed, float64(*n)/elapsed)
		}
	} else {
		for i := 0; i < *n; i++ {
			res, err := eng.ClassifyResult(test[i].Samples)
			if err != nil {
				if quarantine(err) || nodeDown(err) {
					continue
				}
				fmt.Fprintf(stderr, "xprosim: segment %d: %v\n", i, err)
				return 1
			}
			account(i, res)
		}
	}
	if *n > 0 && !*overloadFlag {
		fmt.Fprintf(stdout, "\ndone: %d events, accuracy %.3f\n", *n, float64(correct)/float64(*n))
	}
	if *faultsFlag != "" {
		fmt.Fprintf(stdout, "faults (%s, seed %d): %d/%d events degraded", *faultsFlag, *faultSeed, degraded, *n)
		for _, m := range []string{"partial", "suspect-data", "sensor-local", "fallback-sensor", "fallback-software"} {
			if modes[m] > 0 {
				fmt.Fprintf(stdout, ", %s %d", m, modes[m])
			}
		}
		fmt.Fprintf(stdout, "\nbreaker transitions %.0f, transfer retries %.0f, drops %.0f, deadline overruns %.0f\n",
			obs.MetricValue("xpro_breaker_transitions_total"),
			obs.MetricValue("xpro_transfer_retries_total"),
			obs.MetricValue("xpro_transfer_drops_total"),
			obs.MetricValue("xpro_deadline_exceeded_total"))
		if crashRejected > 0 {
			fmt.Fprintf(stdout, "node down: %d events rejected; %.0f crashes, %.0f recoveries\n",
				crashRejected,
				obs.MetricValue("xpro_node_crashes_total"),
				obs.MetricValue("xpro_node_recoveries_total"))
		}
		sim := *n
		if sim > 200 {
			sim = 200
		}
		if delays, err := eng.SimulatedFaultyDelays(cfg.FaultPlan, sim); err == nil {
			violations := 0
			for _, d := range delays {
				if d > rep.DelayPerEventSeconds {
					violations++
				}
			}
			fmt.Fprintf(stdout, "event schedule under faults: %d/%d events exceed the clean per-event delay\n",
				violations, sim)
		}
	}
	if *corruption {
		fmt.Fprintf(stdout, "integrity: %d suspect events; corrupt frames %.0f, imputed values %.0f, quality rejections %.0f\n",
			suspect,
			obs.MetricValue("xpro_frames_corrupt_total"),
			obs.MetricValue("xpro_samples_imputed_total"),
			obs.MetricValue("xpro_quality_rejected_total"))
	}
	if *adaptiveFlag {
		st := eng.AdaptiveStatus()
		fmt.Fprintf(stdout, "adaptive: estimated loss %.3f, outage %.3f (%d samples); active cut %d sensor / %d aggregator cells; %d swaps, %d rollbacks\n",
			st.EstimatedLoss, st.EstimatedOutage, st.Samples,
			st.SensorCells, st.AggregatorCells, st.Swaps, st.Rollbacks)
		for _, d := range eng.RecutLog() {
			fmt.Fprintf(stdout, "  %-8s t=%6.2fs loss=%.3f outage=%.3f cells %d->%d\n",
				d.Kind, d.AtSeconds, d.EstimatedLoss, d.EstimatedOutage,
				d.SensorCellsBefore, d.SensorCellsAfter)
		}
		rep = eng.Report() // re-read: hot swaps move the active cut
	}
	fmt.Fprintf(stdout, "per event: %.3f µJ sensor energy, %.3f ms delay\n",
		rep.SensorEnergyPerEvent*1e6, rep.DelayPerEventSeconds*1e3)
	fmt.Fprintf(stdout, "projected battery life at %.1f events/s: %.0f hours\n",
		rep.EventsPerSecond, rep.SensorLifetimeHours)

	if *sloFlag {
		printSLO(stdout, eng)
	}
	if *logJSON != "" {
		_, recorded, _ := obs.EventLogStats()
		fmt.Fprintf(stdout, "event log: %d records written to %s\n", recorded, *logJSON)
	}

	if *metricsAddr != "" {
		if code := scrapeMetrics(obs.IntrospectionAddr(), stdout, stderr); code != 0 {
			return code
		}
	}
	if *checkpointOut != "" {
		f, err := os.Create(*checkpointOut)
		if err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		// Count what actually lands on disk: a tiered engine's record
		// carries the per-hop extension beyond xpro.CheckpointBytes.
		cw := &countingWriter{w: f}
		if err := eng.Checkpoint(cw); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		st, err := eng.SubjectState()
		if err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "checkpoint: %d bytes written to %s (through event %d)\n",
			cw.n, *checkpointOut, st.Seq)
	}
	if *traceOut != "" {
		if err := writeTrace(eng, *traceOut); err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		retained, recorded, dropped := obs.TraceStats()
		fmt.Fprintf(stdout, "trace: %d spans written to %s (%d recorded, %d dropped)\n",
			retained, *traceOut, recorded, dropped)
	}
	return 0
}

// runOverload floods a single-subject overload-protected fleet with
// every test segment at once, priorities rotating batch / interactive /
// alert, and reports what the admission controller did about it. The
// flood outruns the worker by construction, so the bounded queue
// fills, the occupancy and deadline gates shed the lower classes, and
// the printout shows the strict-priority contract on real traffic.
func runOverload(stdout, stderr io.Writer, eng *xpro.Engine, test []xpro.Segment, n, workers int) int {
	net, err := xpro.NewNetwork(map[string]*xpro.Engine{"subject": eng})
	if err != nil {
		fmt.Fprintf(stderr, "xprosim: %v\n", err)
		return 1
	}
	fleet, err := net.Serve(xpro.ServeOptions{
		Workers: workers, QueueDepth: 16, Overload: xpro.DefaultOverload(),
	})
	if err != nil {
		fmt.Fprintf(stderr, "xprosim: %v\n", err)
		return 1
	}
	defer fleet.Close()

	prios := []xpro.Priority{xpro.PriorityBatch, xpro.PriorityInteractive, xpro.PriorityAlert}
	type pending struct {
		idx int
		ch  <-chan xpro.FleetResult
	}
	var accepted []pending
	shed, poolFull := 0, 0
	for i := 0; i < n; i++ {
		ch, err := fleet.SubmitRequest(context.Background(), xpro.FleetRequest{
			Subject: "subject", Samples: test[i].Samples, Priority: prios[i%3],
		})
		switch {
		case err == nil:
			accepted = append(accepted, pending{i, ch})
		case errors.Is(err, xpro.ErrShed):
			shed++
		case errors.Is(err, xpro.ErrOverloaded):
			poolFull++
		default:
			fmt.Fprintf(stderr, "xprosim: segment %d: %v\n", i, err)
			return 1
		}
	}
	correct, served := 0, 0
	for _, p := range accepted {
		r := <-p.ch
		if r.Err != nil {
			fmt.Fprintf(stderr, "xprosim: segment %d: %v\n", p.idx, r.Err)
			return 1
		}
		served++
		if r.Result.Label == test[p.idx].Label {
			correct++
		}
	}
	st := fleet.OverloadStatus()
	fmt.Fprintf(stdout, "\noverload: offered %d, served %d, shed %d (batch %d, interactive %d, alert %d), pool-full %d\n",
		n, served, shed, st.Sheds["batch"], st.Sheds["interactive"], st.Sheds["alert"], poolFull)
	if served > 0 {
		fmt.Fprintf(stdout, "overload: served accuracy %.3f, queue delay EWMA %.3f ms, service EWMA %.3f ms\n",
			float64(correct)/float64(served), st.QueueDelaySeconds*1e3, st.ServiceSeconds*1e3)
	}
	fmt.Fprintf(stdout, "brownout: enters %d, exits %d, rollbacks %d\n",
		st.BrownoutEnters, st.BrownoutExits, st.BrownoutRollbacks)
	for _, ev := range fleet.BrownoutLog() {
		fmt.Fprintf(stdout, "  %-8s t=%.3fs delay=%.3fms\n", ev.Kind, ev.AtSeconds, ev.QueueDelaySeconds*1e3)
	}
	return 0
}

// runTierFaults lifts the engine onto the canonical 3-tier chain, arms
// seeded hub storms against its hops and streams the test set through
// the tier-collapse ladder. Every timing knob is scaled to the
// engine's event period: a wall-clock breaker cooldown of seconds
// would span hundreds of events and starve every revival probe.
func runTierFaults(stdout, stderr io.Writer, eng *xpro.Engine, test []xpro.Segment, n int, seed int64, storms int) int {
	if storms < 1 {
		fmt.Fprintf(stderr, "xprosim: -tier-storms must be >= 1, got %d\n", storms)
		return 2
	}
	p, err := eng.PlanTiers(3)
	if err != nil {
		fmt.Fprintf(stderr, "xprosim: %v\n", err)
		return 1
	}
	maxTier := 0
	for _, tier := range p.Assignment() {
		if tier > maxTier {
			maxTier = tier
		}
	}
	if maxTier == 0 {
		// The optimizer parked every cell in-sensor; pin the placement to
		// the cloud extreme so the chain genuinely crosses both hops and
		// the storms have traffic to kill.
		if err := p.PinAll(2); err != nil {
			fmt.Fprintf(stderr, "xprosim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "tier plan: all-sensor optimum pinned to the cloud extreme for the drill\n")
	}
	rep := eng.Report()
	period := 1.0 / rep.EventsPerSecond
	pol := xpro.DefaultResilience()
	pol.BreakerCooldownSeconds = 25 * period
	err = p.Arm(&xpro.TierResilience{
		Policy:         pol,
		HubStorms:      storms,
		HorizonSeconds: float64(n) * period,
		Seed:           seed,
		Collapse: &xpro.TierCollapse{
			FailThreshold:      2,
			ProbeAfterSeconds:  10 * period,
			ProbeBackoffFactor: 2,
			MaxProbeSeconds:    120 * period,
			RecoverySuccesses:  1,
			ProbationEvents:    3,
		},
		Framed: true,
	})
	if err != nil {
		fmt.Fprintf(stderr, "xprosim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "tier faults: %d hub storms (seed %d) against the armed 3-tier chain, %d events\n",
		storms, seed, n)

	correct, degraded, probes := 0, 0, 0
	tiersServed := make(map[int]int)
	for i := 0; i < n; i++ {
		res, err := p.ClassifyResult(test[i].Samples)
		if err != nil {
			var tde *xpro.TierDegradedError
			if !errors.As(err, &tde) {
				fmt.Fprintf(stderr, "xprosim: segment %d: %v\n", i, err)
				return 1
			}
			// A degraded event still carries a served result — a lower
			// rung answered after the full chain failed.
			degraded++
		}
		tiersServed[res.Tier]++
		if res.Probing {
			probes++
		}
		if res.Label == test[i].Label {
			correct++
		}
	}
	if n > 0 {
		fmt.Fprintf(stdout, "\ndone: %d events, accuracy %.3f, degraded %d, revival probes %d\n",
			n, float64(correct)/float64(n), degraded, probes)
	}
	for tier := 0; tier < 3; tier++ {
		if tiersServed[tier] > 0 {
			fmt.Fprintf(stdout, "  served from tier %d: %d events\n", tier, tiersServed[tier])
		}
	}
	obs := eng.Observer()
	fmt.Fprintf(stdout, "tier collapses %.0f (counter xpro_tier_collapse_total)\n",
		obs.MetricValue("xpro_tier_collapse_total"))
	if log := p.Log(); len(log) > 0 {
		fmt.Fprintf(stdout, "ladder decision log:\n")
		for _, d := range log {
			fmt.Fprintf(stdout, "  %s\n", d)
		}
	}
	for _, h := range eng.SLOReport().Hops {
		live := "live"
		if !h.Live {
			live = "DEAD"
		}
		fmt.Fprintf(stdout, "hop %d: %s, breaker %s, %d outage events, probation %d\n",
			h.Hop, live, h.Breaker, h.OutageEvents, h.Probation)
	}
	return 0
}

// scrapeMetrics fetches the tool's own /metrics endpoint — proving the
// server is live — and echoes the classification counters.
func scrapeMetrics(addr string, stdout, stderr io.Writer) int {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		fmt.Fprintf(stderr, "xprosim: scraping own metrics: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(stderr, "xprosim: scraping own metrics: %v\n", err)
		return 1
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "xpro_classify_total") ||
			strings.HasPrefix(line, "xpro_cells_executed_total") {
			fmt.Fprintf(stdout, "metrics: %s\n", line)
		}
	}
	return 0
}

// printSLO renders the engine's final SLO table: the same numbers the
// /slo endpoint serves, formatted for the terminal.
func printSLO(stdout io.Writer, eng *xpro.Engine) {
	rep := eng.SLOReport()
	h := eng.Health()
	fmt.Fprintf(stdout, "\nSLO (%.0fs window, %d events in window / %d total, health %s",
		rep.WindowSeconds, rep.WindowEvents, rep.TotalEvents, h.Status)
	if rep.Breaker != "" {
		fmt.Fprintf(stdout, ", breaker %s", rep.Breaker)
	}
	fmt.Fprintf(stdout, "):\n")
	fmt.Fprintf(stdout, "  latency p50/p95/p99: %.3f / %.3f / %.3f ms\n",
		rep.LatencyP50Seconds*1e3, rep.LatencyP95Seconds*1e3, rep.LatencyP99Seconds*1e3)
	fmt.Fprintf(stdout, "  sensor energy: %.3f µJ/event mean, %.3f µJ p99\n",
		rep.EnergyPerEventJoules*1e6, rep.EnergyP99Joules*1e6)
	fmt.Fprintf(stdout, "  degraded ratio %.3f, suspect rate %.3f\n",
		rep.DegradedRatio, rep.SuspectRate)
	for _, mode := range []string{"full", "partial", "suspect-data", "sensor-local", "fallback-sensor", "fallback-software"} {
		if n := rep.Modes[mode]; n > 0 {
			fmt.Fprintf(stdout, "  mode %-17s %d\n", mode+":", n)
		}
	}
	for _, hop := range rep.Hops {
		live := "live"
		if !hop.Live {
			live = "DEAD"
		}
		fmt.Fprintf(stdout, "  hop %d: %s, breaker %s, %d outage events\n",
			hop.Hop, live, hop.Breaker, hop.OutageEvents)
	}
}

// countingWriter counts the bytes it forwards.
type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

func writeTrace(eng *xpro.Engine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.Observer().WriteTraceJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
