package chaos

import (
	"fmt"
	"math/rand"
	"testing"

	"xpro/internal/adaptive"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

// tieredSystem lifts the chaos fixture onto the canonical three-tier
// chain (body link = the system's own radio, uplink = Model3).
func tieredSystem(t testing.TB, f *fixture) *xsystem.TieredSystem {
	t.Helper()
	ts, err := xsystem.ThreeTier(crossSystem(t, f, wireless.Model2()), wireless.Model3())
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// hopStorm replays a seeded per-hop channel-drift storm against a
// tiered system, re-cutting every hop each step through the adaptive
// controller, and returns the decision log: one line per step with the
// drawn estimates, the hops that moved, the placement and its cost.
// The log is the battery's determinism witness — same seed, same log,
// bit for bit.
func hopStorm(t testing.TB, ts *xsystem.TieredSystem, seed int64, steps int) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cur := ts.TierPlacement.Clone()
	log := make([]string, 0, steps)
	for step := 0; step < steps; step++ {
		ests := make([]adaptive.Estimate, len(ts.Tiered.Hops))
		for h := range ests {
			switch rng.Intn(4) {
			case 0: // clear air
			case 1:
				ests[h] = adaptive.Estimate{Loss: 0.3 + 0.6*rng.Float64(), Samples: 32}
			case 2:
				ests[h] = adaptive.Estimate{Loss: 0.5, Outage: rng.Float64(), Samples: 32}
			case 3: // hard outage
				ests[h] = adaptive.Estimate{Outage: 1, Samples: 32}
			}
		}
		next, moved, err := adaptive.HopController(ts.Tiered, cur, ests, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := ts.Tiered.CheckPlacement(next); err != nil {
			t.Fatalf("step %d: storm re-cut infeasible: %v", step, err)
		}
		log = append(log, fmt.Sprintf("step=%d ests=%+v moved=%v placement=%v cost=%.17g",
			step, ests, moved, next, ts.Tiered.Cost(next)))
		cur = next
	}
	return log
}

// TestHopStormReplayDeterminism: the k-way storm's full decision and
// placement log replays bit-identically under the same seed — the
// multiway analogue of TestReplayDeterminism.
func TestHopStormReplayDeterminism(t *testing.T) {
	f := getFixture(t)
	ts := tieredSystem(t, f)
	a := hopStorm(t, ts, 99, 40)
	b := hopStorm(t, ts, 99, 40)
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d diverged:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	// Different seeds must be allowed to differ (the storm is real).
	c := hopStorm(t, ts, 100, 40)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("seeds 99 and 100 produced identical storms (possible but suspicious)")
	}
}

// TestHopStormKeepsClassifying: after every storm step the collapsed
// runtime still classifies — re-cuts never wedge the engine.
func TestHopStormKeepsClassifying(t *testing.T) {
	f := getFixture(t)
	ts := tieredSystem(t, f)
	rng := rand.New(rand.NewSource(5))
	cur := ts
	for step := 0; step < 12; step++ {
		ests := make([]adaptive.Estimate, len(cur.Tiered.Hops))
		ests[rng.Intn(len(ests))] = adaptive.Estimate{Loss: rng.Float64(), Outage: rng.Float64(), Samples: 16}
		next, _, err := adaptive.HopController(cur.Tiered, cur.TierPlacement, ests, 64)
		if err != nil {
			t.Fatal(err)
		}
		cur, err = cur.WithTierPlacement(next)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Classify(f.test.Segs[step%len(f.test.Segs)]); err != nil {
			t.Fatalf("step %d: classify failed after re-cut: %v", step, err)
		}
	}
}

// TestHopStormDegradeLadder: a storm that kills the uplink must leave
// the system able to degrade to the hub and then the sensor, and to
// climb back when the air clears — the k-way degradation ladder.
func TestHopStormDegradeLadder(t *testing.T) {
	f := getFixture(t)
	ts := tieredSystem(t, f)
	// Uplink dies: cap at the hub.
	hub, err := ts.Degrade(1)
	if err != nil {
		t.Fatal(err)
	}
	if hub.TierPlacement.MaxTier() > 1 {
		t.Fatalf("degrade(1) left tier %d", hub.TierPlacement.MaxTier())
	}
	// Body hop dies too: everything onto the sensor.
	solo, err := hub.Degrade(0)
	if err != nil {
		t.Fatal(err)
	}
	if solo.TierPlacement.MaxTier() != 0 {
		t.Fatalf("degrade(0) left tier %d", solo.TierPlacement.MaxTier())
	}
	if _, err := solo.Classify(f.test.Segs[0]); err != nil {
		t.Fatal(err)
	}
	// Air clears: a full re-solve recovers the original optimum.
	back, err := solo.WithTierPlacement(ts.TierPlacement)
	if err != nil {
		t.Fatal(err)
	}
	if !back.TierPlacement.Equal(ts.TierPlacement) {
		t.Fatal("recovery lost the original placement")
	}
	base := ts.Tiered.Cost(ts.TierPlacement)
	for _, deg := range []*xsystem.TieredSystem{hub, solo} {
		if c := deg.Tiered.Cost(deg.TierPlacement); c < base-1e-12-1e-9*base {
			t.Fatalf("degraded placement %v cheaper than the optimum %v", c, base)
		}
	}
}
