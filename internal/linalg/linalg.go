// Package linalg provides the small dense linear-algebra kernels the
// XPro training pipeline needs: dot products, symmetric positive-definite
// solves (Cholesky) and least squares via the normal equations. The
// random-subspace classifier's weighted-voting fusion is "trained by the
// least square method" (§4.4); that solve happens here.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system is (numerically) singular.
var ErrSingular = errors.New("linalg: singular matrix")

// Dot returns the inner product of a and b. The slices must be the same
// length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len = Rows*Cols
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·n as a new matrix.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %d vs %d", m.Cols, n.Rows))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*out.Cols+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// CholeskySolve solves A·x = b for symmetric positive-definite A,
// overwriting nothing. It returns ErrSingular when A is not (numerically)
// positive definite.
func CholeskySolve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: CholeskySolve needs square A and matching b (A %dx%d, b %d)", a.Rows, a.Cols, len(b))
	}
	// Factor A = L·Lᵀ.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 1e-14 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min‖A·x − b‖₂ via the regularized normal equations
// (AᵀA + λI)x = Aᵀb. The ridge term λ makes the fusion-weight solve
// robust when base-classifier scores are collinear (common when several
// base SVMs share most of their feature subset).
func LeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: LeastSquares b length %d, want %d", len(b), a.Rows)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge %v", lambda)
	}
	at := a.Transpose()
	ata := at.Mul(a)
	for i := 0; i < ata.Rows; i++ {
		ata.Data[i*ata.Cols+i] += lambda
	}
	atb := at.MulVec(b)
	x, err := CholeskySolve(ata, atb)
	if err != nil {
		// Retry with a stronger ridge before giving up; keeps training
		// deterministic rather than failing on a degenerate fold.
		for boost := math.Max(lambda, 1e-8) * 10; boost < 1; boost *= 10 {
			for i := 0; i < ata.Rows; i++ {
				ata.Data[i*ata.Cols+i] += boost
			}
			if x, err = CholeskySolve(ata, atb); err == nil {
				return x, nil
			}
		}
		return nil, err
	}
	return x, nil
}
