// Package oracle exhaustively enumerates cell-to-tier assignments for
// small placement problems. It is the ground-truth side of the multiway
// partitioning battery: on DAGs small enough to brute-force, the
// optimizer in internal/partition must match the optimum this package
// finds by visiting every feasible assignment.
//
// The package is deliberately free of partition/topology imports so the
// optimizer itself can call into it for its exact small-instance path:
// problems are posed abstractly as n cells, k tiers, precedence edges
// (tier(u) ≤ tier(v), the "data flows downstream" monotonicity of an
// N-tier chain), and groups of cells pinned to one common tier (the
// grouped source readers of §3.2.2). Passing no edges enumerates the
// full, unconstrained assignment space — the legacy two-end exhaustive
// battery uses that mode, since the paper's s-t cut admits non-monotone
// placements.
package oracle

import (
	"fmt"
	"math"
)

// MaxAssignments bounds the enumeration space Enumerate will walk.
// k^units beyond this returns ErrTooLarge instead of spinning forever.
const MaxAssignments = 100_000_000

// ErrTooLarge reports an enumeration space beyond MaxAssignments.
var ErrTooLarge = fmt.Errorf("oracle: assignment space exceeds %d", MaxAssignments)

// Problem poses one enumeration: Cells cells assigned to Tiers tiers,
// subject to tier(u) ≤ tier(v) for every edge [u, v] and to every
// group's cells sharing one tier.
type Problem struct {
	Cells int
	Tiers int
	// Edges are monotone order constraints [from, to]. Nil enumerates
	// the unconstrained space.
	Edges [][2]int
	// Groups are sets of cells pinned to a common tier.
	Groups [][]int
}

// Validate checks the problem's structural sanity.
func (p *Problem) Validate() error {
	if p.Cells < 1 {
		return fmt.Errorf("oracle: %d cells", p.Cells)
	}
	if p.Tiers < 2 {
		return fmt.Errorf("oracle: %d tiers (need ≥ 2)", p.Tiers)
	}
	for _, e := range p.Edges {
		if e[0] < 0 || e[0] >= p.Cells || e[1] < 0 || e[1] >= p.Cells {
			return fmt.Errorf("oracle: edge %v outside %d cells", e, p.Cells)
		}
	}
	for _, g := range p.Groups {
		for _, c := range g {
			if c < 0 || c >= p.Cells {
				return fmt.Errorf("oracle: group cell %d outside %d cells", c, p.Cells)
			}
		}
	}
	return nil
}

// Space returns the raw assignment-space size k^units (before monotone
// pruning), as a float to survive overflow.
func (p *Problem) Space() float64 {
	return math.Pow(float64(p.Tiers), float64(p.countUnits()))
}

// countUnits returns the number of independently assignable units after
// group merging.
func (p *Problem) countUnits() int {
	uf := newUnionFind(p.Cells)
	for _, g := range p.Groups {
		for i := 1; i < len(g); i++ {
			uf.union(g[0], g[i])
		}
	}
	units := 0
	for i := 0; i < p.Cells; i++ {
		if uf.find(i) == i {
			units++
		}
	}
	return units
}

// Enumerate visits every feasible assignment in a fixed deterministic
// order (lexicographic over units in topological order, lowest tier
// first) and returns the number visited. visit receives a slice that is
// reused between calls — copy it to keep it — and may return false to
// stop early. A cyclic precedence graph or an oversized space errors.
func (p *Problem) Enumerate(visit func(assign []int) bool) (int64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.Space() > MaxAssignments {
		return 0, ErrTooLarge
	}

	// Merge groups into units.
	uf := newUnionFind(p.Cells)
	for _, g := range p.Groups {
		for i := 1; i < len(g); i++ {
			uf.union(g[0], g[i])
		}
	}
	unitOf := make([]int, p.Cells) // cell → dense unit index
	var unitCells [][]int          // unit → member cells
	rootUnit := make(map[int]int)
	for i := 0; i < p.Cells; i++ {
		r := uf.find(i)
		u, ok := rootUnit[r]
		if !ok {
			u = len(unitCells)
			rootUnit[r] = u
			unitCells = append(unitCells, nil)
		}
		unitOf[i] = u
		unitCells[u] = append(unitCells[u], i)
	}
	n := len(unitCells)

	// Unit-level precedence DAG (self-loops from intra-group edges are
	// vacuously satisfiable and dropped).
	succ := make([][]int, n)
	indeg := make([]int, n)
	seen := make(map[[2]int]bool)
	for _, e := range p.Edges {
		a, b := unitOf[e[0]], unitOf[e[1]]
		if a == b || seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		succ[a] = append(succ[a], b)
		indeg[b]++
	}
	order, err := topoOrder(n, succ, indeg)
	if err != nil {
		return 0, err
	}
	// pred lists in unit order, for the lower-bound prune: a unit's
	// tier must be at least the max tier of its (already assigned)
	// predecessors.
	pred := make([][]int, n)
	for a, ss := range succ {
		for _, b := range ss {
			pred[b] = append(pred[b], a)
		}
	}

	tier := make([]int, n) // per unit
	assign := make([]int, p.Cells)
	var visited int64
	stopped := false

	var rec func(pos int)
	rec = func(pos int) {
		if stopped {
			return
		}
		if pos == n {
			for u, t := range tier {
				for _, c := range unitCells[u] {
					assign[c] = t
				}
			}
			visited++
			if !visit(assign) {
				stopped = true
			}
			return
		}
		u := order[pos]
		lo := 0
		for _, q := range pred[u] {
			if tier[q] > lo {
				lo = tier[q]
			}
		}
		for t := lo; t < p.Tiers; t++ {
			tier[u] = t
			rec(pos + 1)
			if stopped {
				return
			}
		}
	}
	rec(0)
	return visited, nil
}

// Result is the optimum found by Optimal.
type Result struct {
	// Assign maps each cell to its tier.
	Assign []int
	// Cost is cost(Assign).
	Cost float64
	// Visited counts the feasible assignments enumerated.
	Visited int64
}

// Optimal enumerates every feasible assignment and returns the first
// (in enumeration order) whose cost is strictly minimal — deterministic
// under cost ties. cost must be a pure function of the assignment.
func (p *Problem) Optimal(cost func(assign []int) float64) (Result, error) {
	best := Result{Cost: math.Inf(1)}
	visited, err := p.Enumerate(func(assign []int) bool {
		if c := cost(assign); c < best.Cost {
			best.Cost = c
			best.Assign = append(best.Assign[:0], assign...)
		}
		return true
	})
	if err != nil {
		return Result{}, err
	}
	if best.Assign == nil {
		return Result{}, fmt.Errorf("oracle: no feasible assignment (%d visited)", visited)
	}
	best.Visited = visited
	return best, nil
}

// topoOrder Kahn-sorts the unit DAG, erroring on cycles (which would
// make the precedence constraints unsatisfiable for any k).
func topoOrder(n int, succ [][]int, indeg []int) ([]int, error) {
	deg := append([]int(nil), indeg...)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range succ[u] {
			deg[v]--
			if deg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("oracle: cyclic precedence constraints (%d of %d units ordered)", len(order), n)
	}
	return order, nil
}

type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
