package telemetry

import (
	"math"
	"sync"
	"time"
)

// DefaultSLOWindowSeconds is the rolling window width a Quantile uses
// when the caller does not choose one: the "last minute" every SLO
// question starts from.
const DefaultSLOWindowSeconds = 60

// quantileSlots is the number of ring slots a window is divided into.
// Rotation granularity is window/quantileSlots; a query merges the
// slots overlapping [now-window, now], so the effective horizon is
// between window and window+slotWidth.
const quantileSlots = 6

// ExpoQuantiles are the quantile marks exported on /metrics for every
// Quantile series (Prometheus summary exposition).
var ExpoQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// Quantile is a windowed quantile metric: a cumulative quantile sketch
// plus a ring of per-slot sketches rotated by the observation clock,
// so callers can ask both "p99 since start" and "p99 over the last
// window". The clock is whatever time base the call site passes to
// Observe — the modeled clock for modeled latencies, host uptime (see
// ObserveWall) for wall durations — one base per series.
//
// All methods are safe for concurrent use; a nil *Quantile is a no-op.
type Quantile struct {
	mu     sync.Mutex
	window float64
	slotW  float64
	cum    *Sketch
	slots  []*Sketch
	starts []float64 // slot start times; NaN marks an empty slot
	cur    int
	now    float64 // latest observation time
	gen    uint64  // bumped per Observe; memoization key
}

func newQuantile(windowSeconds float64) *Quantile {
	if !(windowSeconds > 0) || math.IsInf(windowSeconds, 0) {
		windowSeconds = DefaultSLOWindowSeconds
	}
	q := &Quantile{
		window: windowSeconds,
		slotW:  windowSeconds / quantileSlots,
		cum:    NewSketch(0),
		slots:  make([]*Sketch, quantileSlots),
		starts: make([]float64, quantileSlots),
	}
	for i := range q.slots {
		q.slots[i] = NewSketch(0)
		q.starts[i] = math.NaN()
	}
	return q
}

// Observe records v at time now (seconds on the series' clock). Out of
// order observations land in the current slot; a clock jump past a
// full window clears the stale ring.
func (q *Quantile) Observe(now, v float64) {
	if q == nil || math.IsNaN(v) || math.IsNaN(now) {
		return
	}
	q.mu.Lock()
	q.rotateLocked(now)
	q.slots[q.cur].Add(v)
	q.cum.Add(v)
	q.gen++
	q.mu.Unlock()
}

// processStart anchors ObserveWall's uptime clock.
var processStart = time.Now()

// Uptime returns seconds since process start on the host monotonic
// clock — the shared time base for wall-duration quantile series.
func Uptime() float64 { return time.Since(processStart).Seconds() }

// ObserveWall is Observe at the current host uptime, for wall-time
// call sites that have no modeled clock.
func (q *Quantile) ObserveWall(v float64) { q.Observe(Uptime(), v) }

// rotateLocked advances the ring so the current slot covers now.
func (q *Quantile) rotateLocked(now float64) {
	if now > q.now {
		q.now = now
	}
	cs := q.starts[q.cur]
	if math.IsNaN(cs) {
		// First observation: align the slot grid to the clock.
		q.starts[q.cur] = math.Floor(now/q.slotW) * q.slotW
		return
	}
	if now < cs+q.slotW {
		return
	}
	steps := int(math.Floor((now - cs) / q.slotW))
	if steps >= len(q.slots) {
		// The clock jumped past the whole window: everything is stale.
		for i := range q.slots {
			q.slots[i].Reset()
			q.starts[i] = math.NaN()
		}
		q.cur = 0
		q.starts[0] = math.Floor(now/q.slotW) * q.slotW
		return
	}
	for i := 0; i < steps; i++ {
		cs += q.slotW
		q.cur = (q.cur + 1) % len(q.slots)
		q.slots[q.cur].Reset()
		q.starts[q.cur] = cs
	}
}

// Gen returns a counter that changes whenever the series has absorbed
// a new observation — the cheap staleness key SLO memoization uses.
func (q *Quantile) Gen() uint64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.gen
}

// Count and Sum report the cumulative series (Prometheus summary
// semantics: _count and _sum are since start, quantiles are windowed).
func (q *Quantile) Count() uint64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cum.Count()
}

func (q *Quantile) Sum() float64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cum.Sum()
}

// WindowSeconds returns the configured rolling window width.
func (q *Quantile) WindowSeconds() float64 {
	if q == nil {
		return 0
	}
	return q.window
}

// windowSketchLocked merges the live slots into dst.
func (q *Quantile) windowSketchLocked(dst *Sketch) {
	horizon := q.now - q.window
	for i, sl := range q.slots {
		if math.IsNaN(q.starts[i]) || q.starts[i]+q.slotW <= horizon {
			continue
		}
		dst.Merge(sl)
	}
}

// WindowSketch returns a merged copy of the sketches covering the
// rolling window — the fleet aggregation primitive: merge every
// engine's window sketch, then query.
func (q *Quantile) WindowSketch() *Sketch {
	dst := NewSketch(0)
	if q == nil {
		return dst
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.windowSketchLocked(dst)
	return dst
}

// MergeWindowTo merges the sketches covering the rolling window into
// dst — the allocation-lean variant of WindowSketch for pollers that
// keep a scratch sketch.
func (q *Quantile) MergeWindowTo(dst *Sketch) {
	if q == nil || dst == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.windowSketchLocked(dst)
}

// CumulativeSketch returns a copy of the since-start sketch.
func (q *Quantile) CumulativeSketch() *Sketch {
	if q == nil {
		return NewSketch(0)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cum.Clone()
}

// WindowCount returns the number of observations inside the rolling
// window (approximate at slot granularity, exact per slot).
func (q *Quantile) WindowCount() uint64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	horizon := q.now - q.window
	var n uint64
	for i, sl := range q.slots {
		if math.IsNaN(q.starts[i]) || q.starts[i]+q.slotW <= horizon {
			continue
		}
		n += sl.Count()
	}
	return n
}

// Query returns the estimated qq-quantile over the rolling window.
// With no windowed observations it falls back to the cumulative
// sketch, so a freshly idle series still answers.
func (q *Quantile) Query(qq float64) float64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	dst := NewSketch(0)
	q.windowSketchLocked(dst)
	if dst.Count() == 0 {
		return q.cum.Quantile(qq)
	}
	return dst.Quantile(qq)
}

// CumulativeQuery returns the estimated qq-quantile since start.
func (q *Quantile) CumulativeQuery(qq float64) float64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cum.Quantile(qq)
}
