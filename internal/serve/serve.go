// Package serve is the concurrent fleet-serving runtime: a sharded
// worker pool that serves many engines (one per BSN subject) and many
// segments per engine at once.
//
// The paper evaluates one wearable against one aggregator; a deployed
// XPro backend serves a fleet. Two properties make the classify path
// embarrassingly parallel and this pool correct:
//
//   - Across subjects, engines share nothing mutable — each engine owns
//     its cut, breaker, modeled clock and RNG streams — so subjects can
//     be served on independent workers.
//
//   - Within one subject, the resilient classify path is a serial
//     modeled timeline (clock, breaker, link RNG), so events of one
//     subject must execute in submission order for a seeded run to
//     replay bit-identically.
//
// The pool encodes exactly that: every shard key maps to one fixed
// worker, whose bounded queue is drained in FIFO order. Events of one
// subject never reorder, regardless of the worker count; events of
// different subjects interleave freely. A full queue rejects with
// ErrOverloaded instead of blocking — backpressure the caller can act
// on — and Close drains every queued job before returning.
package serve

import (
	"errors"
	"hash/fnv"
	"runtime"
	"sync"
)

// ErrOverloaded rejects a submission whose shard queue is full: the
// bounded-queue backpressure signal. Retry later or shed load.
var ErrOverloaded = errors.New("serve: worker queue full")

// ErrClosed rejects submissions after Close began.
var ErrClosed = errors.New("serve: pool closed")

// DefaultQueueDepth is the per-worker pending-job capacity when
// Options.QueueDepth is zero.
const DefaultQueueDepth = 64

// Options configures a Pool. Zero values take defaults.
type Options struct {
	// Workers is the number of worker goroutines (default GOMAXPROCS).
	Workers int
	// QueueDepth is each worker's bounded queue capacity (default
	// DefaultQueueDepth). Submissions beyond it return ErrOverloaded.
	QueueDepth int
}

// Pool is a sharded worker pool with per-shard FIFO ordering: jobs
// submitted under the same shard key run on the same worker in
// submission order. All methods are safe for concurrent use.
type Pool struct {
	queues []chan func()
	wg     sync.WaitGroup

	// mu guards closed against Submit racing Close: Submit holds the
	// read side while sending, so Close cannot close a queue mid-send.
	mu     sync.RWMutex
	closed bool
}

// NewPool starts the workers.
func NewPool(opt Options) *Pool {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = DefaultQueueDepth
	}
	p := &Pool{queues: make([]chan func(), opt.Workers)}
	for i := range p.queues {
		q := make(chan func(), opt.QueueDepth)
		p.queues[i] = q
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range q {
				job()
			}
		}()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.queues) }

// Shard maps a subject name to a stable shard key (FNV-1a).
func Shard(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Submit enqueues job on the worker owning shard. It never blocks:
// a full queue returns ErrOverloaded, a closed pool ErrClosed.
func (p *Pool) Submit(shard uint64, job func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.queues[shard%uint64(len(p.queues))] <- job:
		return nil
	default:
		return ErrOverloaded
	}
}

// QueueLen returns the number of jobs pending on shard's worker.
func (p *Pool) QueueLen(shard uint64) int {
	return len(p.queues[shard%uint64(len(p.queues))])
}

// Close stops accepting new jobs, drains every queued job, and returns
// after the last worker exits. Closing twice is safe.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for _, q := range p.queues {
			close(q)
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}
