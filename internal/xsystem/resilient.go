package xsystem

import (
	"errors"
	"fmt"

	"xpro/internal/biosig"
	"xpro/internal/faults"
	"xpro/internal/fixed"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

// This file implements the fault-tolerant execution mode. The plain
// Classify treats the link as infallible: values cross instantly and
// nothing fails. ClassifyOver instead moves every crossing payload
// through a Transport that may drop it (a lossy wireless.Channel, a
// fault-injected faults.Link), retries with capped exponential backoff
// under a per-event modeled deadline budget, and keeps computing with
// whatever arrived: a cell with a lost input is itself lost, except the
// fusion cell, which fuses the base-classifier scores that did arrive.

// Transport moves one payload across the link, possibly failing.
// *wireless.Channel and *faults.Link implement it; a nil Transport is
// the paper's infallible link.
type Transport interface {
	Send(dataBits int64) (wireless.Transfer, error)
}

// ResilientOptions configures one ClassifyOver run.
type ResilientOptions struct {
	// Transport carries crossing payloads; nil never fails.
	Transport Transport
	// Plan supplies the brownout / aggregator-stall state; the link
	// faults are the Transport's business. May be nil.
	Plan *faults.Plan
	// Clock is the modeled time source (shared with Transport and
	// Breaker). May be nil when neither Plan nor Breaker is used.
	Clock *faults.Clock
	// Policy sets deadline, retry and fusion-quorum knobs.
	Policy faults.Policy
	// Breaker, when set, records per-transfer outcomes (the caller
	// decides whether to attempt the event at all while it is open).
	Breaker *faults.Breaker
}

func (o *ResilientOptions) now() float64 {
	if o.Clock == nil {
		return 0
	}
	return o.Clock.Now()
}

// Outcome reports how one resilient classification went.
type Outcome struct {
	// Label is the predicted class (0 or 1).
	Label int
	// Score is the fused decision value the label was cut from.
	Score float64
	// Delivered is true when the result is available at the
	// aggregator; false when it was computed on-sensor but the result
	// payload could not cross (sensor-local result).
	Delivered bool
	// Complete is true when every cell computed and every crossing
	// payload arrived — a full-fidelity classification.
	Complete bool
	// PartialFusion is true when the fusion cell used a strict subset
	// of the base-classifier scores.
	PartialFusion bool
	// VotesUsed / VotesTotal count the base scores fused vs trained.
	VotesUsed, VotesTotal int
	// LostTransfers counts payloads that exhausted their retry budget;
	// SkippedTransfers counts payloads abandoned without an attempt
	// after the deadline budget ran out; Retries counts re-sends.
	LostTransfers, SkippedTransfers, Retries int
	// TransfersOK counts crossing payloads that arrived (first try or
	// after retries) — together with Retries and LostTransfers it
	// reconstructs the per-attempt delivery rate the channel showed.
	TransfersOK int
	// HardOutage is true when at least one attempt failed because the
	// link was down (faults.ErrLinkDown), as opposed to packet loss.
	HardOutage bool
	// SensorEnergy is the modeled energy (J) the sensor node actually
	// spent on this event: sensing, the compute of every sensor cell
	// that ran, and the radio cost of every attempt — including retries
	// and partially-charged failures — on the sensor side of the link.
	SensorEnergy float64
	// SpentSeconds is the modeled time the event consumed: compute,
	// air time of every attempt, backoff waits and stall waits.
	SpentSeconds float64
	// DeadlineExceeded is true when the budget ran out mid-event.
	DeadlineExceeded bool
}

// NoResultError reports a resilient classification that could not
// produce any label — too many payloads lost, or the whole pipeline
// unavailable. Cause (when set) is the last transfer failure, so
// errors.As reaches *wireless.ErrDropped / *faults.ErrLinkDown.
type NoResultError struct {
	Cause   error
	Outcome Outcome
}

func (e *NoResultError) Error() string {
	msg := "xsystem: resilient pipeline produced no classification"
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

func (e *NoResultError) Unwrap() error { return e.Cause }

// run is the per-event budget and transfer bookkeeping.
type run struct {
	opt     *ResilientOptions
	out     *Outcome
	clean   func(int64) wireless.Transfer // datasheet cost for the nil transport
	lastErr error
	exhaust bool
}

func (r *run) deadline() float64 { return r.opt.Policy.Deadline }

func (r *run) overBudget(extra float64) bool {
	return r.deadline() > 0 && r.out.SpentSeconds+extra > r.deadline()
}

// send moves bits through the transport with retry + backoff under the
// remaining budget; it reports whether the payload arrived. fromSensor
// says which side of the link the sensor node is on for this payload:
// true charges the sensor the transmit energy of every attempt, false
// the receive energy.
func (r *run) send(bits int64, fromSensor bool) bool {
	if r.opt.Transport == nil {
		// The infallible link never drops, but the payload still goes on
		// the air: charge the datasheet cost so Outcome.SensorEnergy
		// agrees with the analytic per-event model.
		tr := r.clean(bits)
		r.out.SpentSeconds += tr.Delay
		if fromSensor {
			r.out.SensorEnergy += tr.TxEnergy
		} else {
			r.out.SensorEnergy += tr.RxEnergy
		}
		r.out.TransfersOK++
		return true
	}
	if r.exhaust {
		r.out.SkippedTransfers++
		return false
	}
	for attempt := 0; ; attempt++ {
		tr, err := r.opt.Transport.Send(bits)
		r.out.SpentSeconds += tr.Delay
		if fromSensor {
			r.out.SensorEnergy += tr.TxEnergy
		} else {
			r.out.SensorEnergy += tr.RxEnergy
		}
		if err == nil {
			r.out.TransfersOK++
			if r.opt.Breaker != nil {
				r.opt.Breaker.RecordSuccess()
			}
			return true
		}
		r.lastErr = err
		if faults.IsLinkDown(err) {
			r.out.HardOutage = true
		}
		if attempt >= r.opt.Policy.MaxRetries {
			break
		}
		wait := r.opt.Policy.Backoff.Delay(attempt)
		if r.overBudget(wait) {
			r.exhaust = true
			r.out.DeadlineExceeded = true
			break
		}
		r.out.SpentSeconds += wait
		r.out.Retries++
	}
	if r.opt.Breaker != nil {
		r.opt.Breaker.RecordFailure()
	}
	r.out.LostTransfers++
	return false
}

// xfer memoizes one crossing payload: it is sent at most once per
// event, however many consumers read it.
type xfer struct {
	bits       int64
	fromSensor bool
	attempted  bool
	ok         bool
}

func (r *run) ensure(x *xfer) bool {
	if x == nil {
		return false
	}
	if !x.attempted {
		x.attempted = true
		x.ok = r.send(x.bits, x.fromSensor)
	}
	return x.ok
}

// ClassifyOver executes the partitioned pipeline on one segment with
// every crossing payload subject to opt's transport, faults and
// policy. It returns the best label the surviving data supports; when
// nothing survives, the error is a *NoResultError wrapping the last
// transfer failure.
func (s *System) ClassifyOver(seg biosig.Segment, opt *ResilientOptions) (Outcome, error) {
	if opt == nil {
		opt = &ResilientOptions{}
	}
	var out Outcome
	if s.Ens == nil {
		return out, errors.New("xsystem: cost-analysis-only system has no classifier (built with nil ensemble)")
	}
	if len(seg.Samples) != s.Graph.SegLen {
		return out, fmt.Errorf("xsystem: segment length %d, engine built for %d", len(seg.Samples), s.Graph.SegLen)
	}

	g := s.Graph
	p := s.Placement
	state := opt.Plan.At(opt.now())

	r := &run{opt: opt, out: &out, clean: s.Link.Cost}
	// The compute schedule is fixed hardware / fixed software: charge it
	// up front, then add what the faulty link actually costs.
	d := s.DelayPerEvent()
	out.SpentSeconds = d.FrontEnd + d.BackEnd
	// Sensing runs regardless of how the event goes; compute and radio
	// energy accrue below as cells execute and attempts go on the air.
	out.SensorEnergy = s.problem.SensingEnergy

	// An aggregator stall blocks every back-end cell until the window
	// ends; the wait comes out of the deadline budget.
	if state.AggStall {
		if _, na := p.Counts(); na > 0 || !p.OnSensor(g.Output) {
			wait := opt.Plan.Until(opt.now(), faults.AggStall) - opt.now()
			if r.overBudget(wait) {
				out.DeadlineExceeded = true
				return out, &NoResultError{Outcome: out}
			}
			out.SpentSeconds += wait
		}
	}

	// Crossing payloads, memoized per event: the raw segment (when a
	// source reader sits on the aggregator), one per crossing transfer
	// group, and the final result (when the output sits on the sensor).
	var rawX *xfer
	for _, id := range g.SourceReaders() {
		if !p.OnSensor(id) {
			rawX = &xfer{bits: g.SourceBits, fromSensor: true}
			break
		}
	}
	groups := g.TransferGroups()
	groupX := make([]*xfer, len(groups))
	// byPair[consumer][producer] lists the crossing groups feeding that
	// consumer from that producer.
	byPair := make(map[topology.CellID]map[topology.CellID][]int)
	for gi, tg := range groups {
		fromS := p.OnSensor(tg.From)
		for _, c := range tg.Consumers {
			if p.OnSensor(c) == fromS {
				continue
			}
			if groupX[gi] == nil {
				groupX[gi] = &xfer{bits: tg.Bits, fromSensor: fromS}
			}
			if byPair[c] == nil {
				byPair[c] = make(map[topology.CellID][]int)
			}
			byPair[c][tg.From] = append(byPair[c][tg.From], gi)
		}
	}
	crossed := func(consumer, producer topology.CellID) bool {
		ok := true
		for _, gi := range byPair[consumer][producer] {
			if !r.ensure(groupX[gi]) {
				ok = false
			}
		}
		return ok
	}

	ev := newEvent(g, seg)
	lost := make([]bool, len(g.Cells))
	outputs := make([]value, len(g.Cells))
	complete := true
	for _, id := range s.order {
		c := g.Cells[id]
		if state.Brownout && p.OnSensor(id) {
			// The cell array is below its operating threshold; sensing
			// itself survives, so raw data can still stream out.
			lost[id] = true
			complete = false
			continue
		}
		ins := g.InEdges(id)
		avail := make([]bool, len(ins))
		for i, e := range ins {
			switch {
			case e.From == topology.SourceID:
				avail[i] = p.OnSensor(id) || r.ensure(rawX)
			case lost[e.From]:
				avail[i] = false
			case p.OnSensor(e.From) != p.OnSensor(id):
				avail[i] = crossed(id, e.From)
			default:
				avail[i] = true
			}
		}
		if c.Role == topology.RoleFusion {
			if p.OnSensor(id) {
				out.SensorEnergy += s.HW.Energy(id)
			}
			v, used := s.fusePartial(c, ins, avail, outputs)
			out.VotesTotal = len(ins)
			out.VotesUsed = used
			minVotes := opt.Policy.MinVotes
			if minVotes < 1 {
				minVotes = 1
			}
			if used < minVotes {
				lost[id] = true
				complete = false
				continue
			}
			if used < len(ins) {
				out.PartialFusion = true
				complete = false
			}
			outputs[id] = v
			continue
		}
		allIn := true
		for _, a := range avail {
			if !a {
				allIn = false
				break
			}
		}
		if !allIn {
			lost[id] = true
			complete = false
			continue
		}
		if p.OnSensor(id) {
			out.SensorEnergy += s.HW.Energy(id)
		}
		v, err := s.evalCell(c, ins, func(i int) value { return outputs[ins[i].From] }, ev)
		if err != nil {
			return out, fmt.Errorf("xsystem: cell %s: %w", c.Name, err)
		}
		outputs[id] = v
	}

	if lost[g.Output] {
		return out, &NoResultError{Cause: r.lastErr, Outcome: out}
	}
	final := outputs[g.Output]
	switch {
	case final.fl != nil && len(final.fl) > 0:
		out.Score = final.fl[0]
	case final.fx != nil && len(final.fx) > 0:
		out.Score = final.fx[0].Float()
	default:
		return out, &NoResultError{Cause: r.lastErr, Outcome: out}
	}
	if out.Score >= 0 {
		out.Label = 1
	}

	// Deliver the result to the aggregator when it was produced on the
	// sensor; failure leaves a valid sensor-local label.
	out.Delivered = true
	if p.OnSensor(g.Output) {
		out.Delivered = r.send(wireless.ValueBits, true)
	}
	out.Complete = complete && out.Delivered
	return out, nil
}

// fusePartial fuses the available base-classifier scores: the trained
// bias plus each available vote, exactly the fusion cell's computation
// restricted to the votes that arrived. It returns the fused value in
// the representation of the fusion cell's end and the vote count used.
func (s *System) fusePartial(c topology.Cell, ins []topology.Edge, avail []bool, outputs []value) (value, int) {
	used := 0
	if s.Placement.OnSensor(c.ID) {
		score := fixed.FromFloat(s.Ens.Weights[len(s.Ens.Bases)])
		for i, e := range ins {
			if !avail[i] {
				continue
			}
			v := outputs[e.From]
			var sv fixed.Num
			if s.Placement.OnSensor(e.From) == s.Placement.OnSensor(c.ID) {
				sv = v.asFixed()[0]
			} else {
				sv = crossFixed(v, e)[0]
			}
			vote := fixed.FromInt(-1)
			if sv >= 0 {
				vote = fixed.One
			}
			score = fixed.Add(score, fixed.Mul(fixed.FromFloat(s.Ens.Weights[i]), vote))
			used++
		}
		return value{fx: []fixed.Num{score}}, used
	}
	score := s.Ens.Weights[len(s.Ens.Bases)]
	for i, e := range ins {
		if !avail[i] {
			continue
		}
		v := outputs[e.From]
		var sv float64
		if s.Placement.OnSensor(e.From) == s.Placement.OnSensor(c.ID) {
			sv = v.asFloat()[0]
		} else {
			sv = crossFloat(v, e)[0]
		}
		vote := -1.0
		if sv >= 0 {
			vote = 1.0
		}
		score += s.Ens.Weights[i] * vote
		used++
	}
	return value{fl: []float64{score}}, used
}
