package faults

import (
	"errors"
	"testing"

	"xpro/internal/frame"
	"xpro/internal/wireless"
)

// TestPlanAtOverlappingWindows pins the documented merge semantics:
// overlapping same-kind windows MERGE — the effective state takes the
// max Loss and max Rate over every covering window, and boolean kinds
// OR together. Validate accepts overlap; it is not an error.
func TestPlanAtOverlappingWindows(t *testing.T) {
	p := &Plan{Windows: []Window{
		{Kind: LossBurst, Start: 0, End: 10, Loss: 0.3},
		{Kind: LossBurst, Start: 5, End: 15, Loss: 0.7},
		{Kind: BitFlip, Start: 0, End: 10, Rate: 1e-3},
		{Kind: BitFlip, Start: 5, End: 15, Rate: 2e-3},
		{Kind: LinkOutage, Start: 8, End: 9},
		{Kind: LinkOutage, Start: 8.5, End: 9.5},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("overlapping same-kind windows must validate cleanly: %v", err)
	}
	cases := []struct {
		at       float64
		loss     float64
		ber      float64
		linkDown bool
	}{
		{2, 0.3, 1e-3, false},  // first windows only
		{7, 0.7, 2e-3, false},  // overlap: max of each
		{8.7, 0.7, 2e-3, true}, // outage overlap ORs
		{12, 0.7, 2e-3, false}, // second windows only
		{20, 0, 0, false},      // outside everything
	}
	for _, tc := range cases {
		st := p.At(tc.at)
		if st.Loss != tc.loss || st.BitErrorRate != tc.ber || st.LinkDown != tc.linkDown {
			t.Errorf("At(%v) = {loss %v ber %v down %v}, want {%v %v %v}",
				tc.at, st.Loss, st.BitErrorRate, st.LinkDown, tc.loss, tc.ber, tc.linkDown)
		}
	}
	if !p.At(7).Corrupting() {
		t.Error("a bit-flip window must report Corrupting")
	}
	if p.At(20).Corrupting() {
		t.Error("a clean instant must not report Corrupting")
	}
}

func TestWindowRateValidation(t *testing.T) {
	for _, w := range []Window{
		{Kind: BitFlip, Start: 0, End: 1, Rate: -0.1},
		{Kind: Duplicate, Start: 0, End: 1, Rate: 1.5},
	} {
		p := &Plan{Windows: []Window{w}}
		if err := p.Validate(); err == nil {
			t.Errorf("rate %v for %v should fail validation", w.Rate, w.Kind)
		}
	}
}

// TestSendValuesLegacyParity: with no corruption windows and fr == nil,
// SendValues must consume the link RNG identically to Send, so seeded
// replays of pre-existing plans stay bit-identical.
func TestSendValuesLegacyParity(t *testing.T) {
	plan := &Plan{Windows: []Window{{Kind: LossBurst, Start: 0, End: 100, Loss: 0.5}}}
	run := func(useValues bool) ([]wireless.Transfer, []error) {
		clock := &Clock{}
		l, err := NewLink(wireless.Model2(), plan, clock, 0, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		var trs []wireless.Transfer
		var errs []error
		for i := 0; i < 60; i++ {
			var tr wireless.Transfer
			var e error
			if useValues {
				tr, _, e = l.SendValues(512, 32, nil)
			} else {
				tr, e = l.Send(512)
			}
			trs = append(trs, tr)
			errs = append(errs, e)
			clock.Advance(1)
		}
		return trs, errs
	}
	trA, errA := run(false)
	trB, errB := run(true)
	for i := range trA {
		if trA[i] != trB[i] || (errA[i] == nil) != (errB[i] == nil) {
			t.Fatalf("send %d: SendValues(fr=nil) diverged from Send on a corruption-free plan", i)
		}
	}
}

// TestFramedSentinelNoUndetectedCorruption is the acceptance sentinel:
// under a bit-flip window, no corrupt frame may reach the consumer
// undetected when framing is armed — every hit is CRC-rejected and
// retried — while the bare wire format delivers the damage.
func TestFramedSentinelNoUndetectedCorruption(t *testing.T) {
	plan := &Plan{Windows: []Window{{Kind: BitFlip, Start: 0, End: 1e6, Rate: 1e-3}}}
	clock := &Clock{}
	l, err := NewLink(wireless.Model2(), plan, clock, 0, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for i := 0; i < 400; i++ {
		_, rx, err := l.SendValues(1024, 64, &Framing{})
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if rx.CorruptDelivered != 0 || len(rx.CorruptValues) != 0 {
			t.Fatalf("send %d: framed transport delivered undetected corruption: %+v", i, rx)
		}
		detected += rx.CorruptDetected
		clock.Advance(1)
	}
	if detected == 0 {
		t.Fatal("a 1e-3 bit-flip window over 400 sends should reject at least one frame")
	}

	// The same channel without framing delivers the corruption instead.
	clock2 := &Clock{}
	l2, err := NewLink(wireless.Model2(), plan, clock2, 0, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	deliveredDirty := 0
	for i := 0; i < 400; i++ {
		_, rx, err := l2.SendValues(1024, 64, nil)
		if err != nil {
			t.Fatalf("unframed send %d: %v", i, err)
		}
		deliveredDirty += rx.CorruptDelivered
		if rx.CorruptDetected != 0 {
			t.Fatalf("bare wire has no CRC; it cannot detect (got %d)", rx.CorruptDetected)
		}
		clock2.Advance(1)
	}
	if deliveredDirty == 0 {
		t.Fatal("the bare wire should have delivered corrupt values under the same window")
	}
}

// TestFramedCorruptionCostsEnergy: a CRC-rejected frame consumes wire
// bits, energy and retry budget exactly like a radio loss.
func TestFramedCorruptionCostsEnergy(t *testing.T) {
	plan := &Plan{Windows: []Window{{Kind: BitFlip, Start: 0, End: 1e6, Rate: 2e-3}}}
	clock := &Clock{}
	l, err := NewLink(wireless.Model2(), plan, clock, 0, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	frameBits := int64(256 + wireless.HeaderBits + frame.IntegrityBits)
	sawRejection := false
	for i := 0; i < 100; i++ {
		tr, rx, err := l.SendValues(256, 16, &Framing{})
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		attempts := int64(1+rx.CorruptDetected) + int64(rx.Duplicates)
		if tr.WireBits != attempts*frameBits {
			t.Fatalf("send %d: wire bits %d, want %d attempts x %d frame bits (rx %+v)", i, tr.WireBits, attempts, frameBits, rx)
		}
		if rx.CorruptDetected > 0 {
			sawRejection = true
		}
		clock.Advance(1)
	}
	if !sawRejection {
		t.Fatal("2e-3 over 296-bit frames rejects ~45% of first attempts; 100 sends saw none")
	}
}

// TestFramedLossImputesOrDrops: residual frame loss surfaces as Missing
// value indices up to MaxLossFraction, beyond which the transfer fails
// with the transport's usual *wireless.ErrDropped.
func TestFramedLossImputesOrDrops(t *testing.T) {
	plan := &Plan{Windows: []Window{{Kind: LossBurst, Start: 0, End: 100, Loss: 1}}}
	clock := &Clock{}
	l, err := NewLink(wireless.Model2(), plan, clock, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Certain loss: every frame dies, which exceeds any loss fraction.
	_, rx, err := l.SendValues(1024, 64, &Framing{})
	var dropped *wireless.ErrDropped
	if !errors.As(err, &dropped) {
		t.Fatalf("total loss err = %v, want *wireless.ErrDropped", err)
	}
	if rx.LostFrames != int(wireless.Packets(1024)) {
		t.Fatalf("lost %d frames, want all %d", rx.LostFrames, wireless.Packets(1024))
	}

	// Partial loss within tolerance: Missing lists the value indices.
	plan2 := &Plan{Windows: []Window{{Kind: LossBurst, Start: 0, End: 100, Loss: 0.45}}}
	clock2 := &Clock{}
	l2, err := NewLink(wireless.Model2(), plan2, clock2, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	sawMissing := false
	for i := 0; i < 50; i++ {
		_, rx, err := l2.SendValues(1024, 64, &Framing{MaxLossFraction: 0.9})
		if err != nil {
			continue
		}
		if rx.LostFrames > 0 {
			if len(rx.Missing) == 0 {
				t.Fatalf("send %d: %d lost frames but no missing value indices", i, rx.LostFrames)
			}
			for _, v := range rx.Missing {
				if v < 0 || v >= 64 {
					t.Fatalf("missing index %d outside the 64-value payload", v)
				}
			}
			sawMissing = true
		}
		clock2.Advance(1)
	}
	if !sawMissing {
		t.Fatal("45% loss over 50 sends should lose at least one frame within tolerance")
	}
}

// TestUnframedSmears: duplication and reordering on the bare wire smear
// value blocks in place, reported via Moved.
func TestUnframedSmears(t *testing.T) {
	plan := &Plan{Windows: []Window{
		{Kind: Duplicate, Start: 0, End: 100, Rate: 1},
		{Kind: Reorder, Start: 0, End: 100, Rate: 1},
	}}
	clock := &Clock{}
	l, err := NewLink(wireless.Model2(), plan, clock, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, rx, err := l.SendValues(1024, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rx.Duplicates == 0 || rx.Reordered == 0 {
		t.Fatalf("certain dup+reorder produced none: %+v", rx)
	}
	if len(rx.Moved) == 0 {
		t.Fatal("smears must be pinned in Moved")
	}
	for dst, src := range rx.Moved {
		if dst < 0 || dst >= 64 || src < 0 || src >= 64 {
			t.Fatalf("Moved[%d]=%d outside the 64-value payload", dst, src)
		}
	}
	if !rx.Dirty() {
		t.Fatal("smeared payload must be dirty")
	}
}

// TestSendValuesDeterministic: identical seeds and clocks replay the
// identical corrupted stream, reports included.
func TestSendValuesDeterministic(t *testing.T) {
	plan, err := Scenario("garbled", 42, 100)
	if err != nil {
		t.Fatal(err)
	}
	run := func(fr *Framing) []frame.RxReport {
		clock := &Clock{}
		l, err := NewLink(wireless.Model2(), plan, clock, 0.05, 2, 21)
		if err != nil {
			t.Fatal(err)
		}
		var out []frame.RxReport
		for i := 0; i < 80; i++ {
			_, rx, _ := l.SendValues(768, 48, fr)
			if rx != nil {
				out = append(out, *rx)
			}
			clock.Advance(1)
		}
		return out
	}
	for _, fr := range []*Framing{nil, {Impute: frame.Linear}} {
		a, b := run(fr), run(fr)
		if len(a) != len(b) {
			t.Fatalf("framing %v: run lengths diverged (%d vs %d)", fr, len(a), len(b))
		}
		for i := range a {
			if a[i].Frames != b[i].Frames || a[i].CorruptDetected != b[i].CorruptDetected ||
				a[i].CorruptDelivered != b[i].CorruptDelivered || a[i].LostFrames != b[i].LostFrames ||
				a[i].Duplicates != b[i].Duplicates || a[i].Reordered != b[i].Reordered {
				t.Fatalf("framing %v, send %d: reports diverged between identical seeded runs\n%+v\n%+v", fr, i, a[i], b[i])
			}
		}
	}
}
