package xsystem

import (
	"math"

	"xpro/internal/ensemble"
	"xpro/internal/fixed"
	"xpro/internal/topology"
)

// This file implements wire quantization: the energy model prices
// payloads at their wire widths (raw samples 16 bit, feature values Q0.8,
// other values Q8.8 — see internal/wireless), so the functional
// simulation must round values to those widths whenever they cross the
// link. Without this, the simulated classification would be more
// accurate than the machine being priced.

// quantizeWire rounds v to the wire format of an edge with the given
// per-value bit width. Widths up to 8 bits are the unsigned [0,1]
// fraction format of normalized features (Q0.b); wider payloads are
// signed with the bits split evenly (Q(b/2).(b/2), e.g. Q8.8 at 16
// bits, which also covers features on a widened wire).
func quantizeWire(v float64, bits int64) float64 {
	if bits < 1 || bits > 24 {
		return v
	}
	if bits <= 8 {
		levels := float64(int64(1)<<uint(bits)) - 1
		return math.Round(clamp(v, 0, 1)*levels) / levels
	}
	frac := uint(bits / 2)
	scale := float64(int64(1) << frac)
	limit := float64(int64(1) << uint(bits-1-int64(frac)))
	return math.Round(clamp(v, -limit, limit-1/scale)*scale) / scale
}

// wireEncode maps v to its wire code word at the given width — the
// integer the transceiver actually puts on the air. It is the integer
// half of quantizeWire: wireDecode(wireEncode(v, b), b) ==
// quantizeWire(v, b) for every in-range width.
func wireEncode(v float64, bits int64) uint64 {
	if bits < 1 || bits > 24 {
		return 0
	}
	if bits <= 8 {
		levels := float64(int64(1)<<uint(bits)) - 1
		return uint64(math.Round(clamp(v, 0, 1) * levels))
	}
	frac := uint(bits / 2)
	scale := float64(int64(1) << frac)
	limit := float64(int64(1) << uint(bits-1-int64(frac)))
	q := int64(math.Round(clamp(v, -limit, limit-1/scale) * scale))
	return uint64(q) & (1<<uint(bits) - 1) // two's complement within bits
}

// wireDecode maps a code word back to the value the receiver consumes.
func wireDecode(code uint64, bits int64) float64 {
	if bits < 1 || bits > 24 {
		return 0
	}
	if bits <= 8 {
		levels := float64(int64(1)<<uint(bits)) - 1
		return float64(code) / levels
	}
	frac := uint(bits / 2)
	if code&(1<<uint(bits-1)) != 0 {
		code |= ^uint64(0) << uint(bits) // sign-extend
	}
	return float64(int64(code)) / float64(int64(1)<<frac)
}

// corruptWire models undetected bit errors on the air: v's code word is
// XORed with mask and decoded as the receiver would. Every corrupted
// word is itself a valid code word, so downstream re-quantization is a
// no-op and the damage survives intact to the consuming cell.
func corruptWire(v float64, bits int64, mask uint64) float64 {
	if bits < 1 || bits > 24 {
		return v
	}
	return wireDecode(wireEncode(v, bits)^(mask&(1<<uint(bits)-1)), bits)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// perValueBits returns the wire width of ONE value on edge e (Edge.Bits
// is the whole payload).
func perValueBits(e topology.Edge) int64 {
	if e.Values == 0 {
		return 0
	}
	return e.Bits / int64(e.Values)
}

// crossFloat converts a producer value for consumption on the other end
// in float64, applying wire quantization.
func crossFloat(v value, e topology.Edge) []float64 {
	fs := v.asFloat()
	bits := perValueBits(e)
	out := make([]float64, len(fs))
	for i, f := range fs {
		out[i] = quantizeWire(f, bits)
	}
	return out
}

// crossFixed converts a producer value for consumption on the other end
// in Q16.16, applying wire quantization.
func crossFixed(v value, e topology.Edge) []fixed.Num {
	fs := crossFloat(v, e)
	return fixed.FromSlice(fs)
}

// normFixed applies a feature normalization range in Q16.16: the
// hardware cell's final (v − min)·scale stage with [0,1] clamping.
func normFixed(v fixed.Num, r ensemble.Range) fixed.Num {
	if r.Scale == 0 {
		return 0
	}
	n := fixed.Mul(fixed.Sub(v, fixed.FromFloat(r.Min)), fixed.FromFloat(r.Scale))
	if n < 0 {
		return 0
	}
	if n > fixed.One {
		return fixed.One
	}
	return n
}
