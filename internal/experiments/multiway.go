package experiments

import (
	"fmt"
	"strings"

	"xpro/internal/partition"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

// ExtMultiway lifts every case's trained topology onto an N-tier chain
// (sensor → hub(s) → cloud, Lab.TierCount tiers) and compares the
// k-way placement the multiway optimizer finds against the best
// single-hop bi-partition of the same chain — the strongest placement
// the paper's 2-end cut could express. The gain column is the k-way
// objective's improvement; by construction it can never be negative
// (per-hop bi-partitions seed the solver).
func ExtMultiway(l *Lab) (*Table, error) {
	k := l.TierCount
	if k == 0 {
		k = 3
	}
	if k < 2 {
		return nil, fmt.Errorf("experiments: tier count %d (need ≥ 2)", k)
	}
	t := &Table{
		ID: "ext-multiway",
		Title: fmt.Sprintf("EXTENSION: multiway placement over a %d-tier chain "+
			"(Model 2 body hop, Model 3 uplinks, weighted objective)", k),
		Header: []string{"Case", "Cells", "BiPart(uJ)", "KWay(uJ)", "Gain", "Exact", "PerTier", "HopBits"},
	}
	worstGain, bestGain := 1.0, 1.0
	for _, sym := range l.Symbols() {
		es, err := l.Engines(sym, evalProc, evalLink)
		if err != nil {
			return nil, err
		}
		tiers, hops := partition.DefaultChain(k, evalLink, wireless.Model3())
		ts, err := xsystem.NewTiered(es.CrossEnd, tiers, hops)
		if err != nil {
			return nil, err
		}
		kway := ts.Tiered.Cost(ts.TierPlacement)
		_, biC, _, err := ts.Tiered.BestBiPartition()
		if err != nil {
			return nil, err
		}
		res, err := ts.Tiered.Solve()
		if err != nil {
			return nil, err
		}
		gain := 1.0
		if biC > 0 {
			gain = kway / biC
		}
		worstGain = max2(worstGain, gain)
		bestGain = min2(bestGain, gain)
		rep := ts.TierReport()
		counts := make([]string, len(rep.Tiers))
		for i, te := range rep.Tiers {
			counts[i] = fmt.Sprintf("%d", te.Cells)
		}
		bits := make([]string, len(rep.HopDataBits))
		for i, b := range rep.HopDataBits {
			bits[i] = fmt.Sprintf("%d", b)
		}
		exact := "heur"
		if res.Exact {
			exact = "exact"
		}
		t.AddRow(sym, fmt.Sprintf("%d", len(ts.Graph.Cells)), f3(biC*1e6), f3(kway*1e6),
			pct(1-gain), exact, strings.Join(counts, "/"), strings.Join(bits, "/"))
	}
	t.AddNote("k-way cost is %s–%s of the best single-hop bi-partition — the multiway "+
		"optimizer never loses to the paper's 2-end cut and wins where a middle tier pays",
		pct(bestGain), pct(worstGain))
	return t, nil
}

// max2 mirrors min2 for the note accumulators.
func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
