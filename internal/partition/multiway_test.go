package partition

import (
	"math"
	"math/rand"
	"testing"

	"xpro/internal/partition/oracle"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

// costTol is the float tolerance of the batteries, matching the 2-end
// exhaustive check.
func costTol(ref float64) float64 { return 1e-12 + 1e-9*math.Abs(ref) }

// TestSolveMatchesOracle: on every enumerable tiny DAG, across tier
// counts, Solve must return exactly the oracle optimum — cost equal and
// placement identical (both sides share the deterministic tie-break).
func TestSolveMatchesOracle(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for _, seed := range []int64{1, 2, 3, 5, 8, 13} {
			rng := rand.New(rand.NewSource(seed))
			g := tinyDAG(rng, 4+rng.Intn(9)) // 4..12 cells
			tp, err := tinyTiered(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if !tp.exactEligible() {
				// The acceptance bound demands exactness up to 12 cells
				// on 3 tiers; wider chains may exceed the space cap.
				if k <= 3 {
					t.Fatalf("k=%d seed=%d: %d-cell tiny DAG must be exact-eligible", k, seed, len(g.Cells))
				}
				continue
			}
			res, err := tp.Solve()
			if err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if !res.Exact {
				t.Fatalf("k=%d seed=%d: exact path not taken", k, seed)
			}
			buf := make(TierPlacement, len(g.Cells))
			opt, err := tp.oracleProblem().Optimal(func(a []int) float64 {
				for i, tier := range a {
					buf[i] = Tier(tier)
				}
				return tp.Cost(buf)
			})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Cost-opt.Cost) > costTol(opt.Cost) {
				t.Errorf("k=%d seed=%d: solve cost %v, oracle optimum %v", k, seed, res.Cost, opt.Cost)
			}
			for i, tier := range opt.Assign {
				if res.Placement[i] != Tier(tier) {
					t.Errorf("k=%d seed=%d: placement diverges from oracle at cell %d", k, seed, i)
					break
				}
			}
		}
	}
}

// TestHeuristicBracketsOracle forces the heuristic path on enumerable
// instances: its cost must lie between the oracle optimum (it cannot
// beat brute force) and the best single-hop bi-partition (its own
// seeds), inclusive.
func TestHeuristicBracketsOracle(t *testing.T) {
	for _, k := range []int{2, 3} {
		for _, seed := range []int64{4, 9, 21, 33} {
			rng := rand.New(rand.NewSource(seed))
			g := tinyDAG(rng, 5+rng.Intn(7))
			tp, err := tinyTiered(g, k)
			if err != nil {
				t.Fatal(err)
			}
			tp.ExactCells = -1 // force the heuristic
			res, err := tp.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if res.Exact {
				t.Fatalf("k=%d seed=%d: exact path ran with ExactCells=-1", k, seed)
			}
			if err := tp.CheckPlacement(res.Placement); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			tp.ExactCells = 0 // restore default for the oracle reference
			buf := make(TierPlacement, len(g.Cells))
			opt, err := tp.oracleProblem().Optimal(func(a []int) float64 {
				for i, tier := range a {
					buf[i] = Tier(tier)
				}
				return tp.Cost(buf)
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost < opt.Cost-costTol(opt.Cost) {
				t.Errorf("k=%d seed=%d: heuristic %v beat the oracle %v — cost model drift", k, seed, res.Cost, opt.Cost)
			}
			_, biC, _, err := tp.BestBiPartition()
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost > biC+costTol(biC) {
				t.Errorf("k=%d seed=%d: heuristic %v worse than best bi-partition %v", k, seed, res.Cost, biC)
			}
		}
	}
}

// TestPlacementInvariants is the property battery: every placement the
// solver emits covers all cells exactly once with in-range tiers, is
// acyclic w.r.t. tier order (monotone along every edge), keeps readers
// grouped, and its reported cost matches both a Cost re-pricing and the
// independent Breakdown accounting — no drift between optimizer-internal
// and reported cost.
func TestPlacementInvariants(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for _, seed := range []int64{11, 17, 29} {
			rng := rand.New(rand.NewSource(seed))
			g := tinyDAG(rng, 4+rng.Intn(9))
			tp, err := tinyTiered(g, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, forceHeuristic := range []bool{false, true} {
				if forceHeuristic {
					tp.ExactCells = -1
				} else {
					tp.ExactCells = 0
				}
				res, err := tp.Solve()
				if err != nil {
					t.Fatal(err)
				}
				p := res.Placement
				if len(p) != len(g.Cells) {
					t.Fatalf("k=%d seed=%d: placement covers %d of %d cells", k, seed, len(p), len(g.Cells))
				}
				if err := tp.CheckPlacement(p); err != nil {
					t.Fatalf("k=%d seed=%d heuristic=%v: %v", k, seed, forceHeuristic, err)
				}
				reprice := tp.Cost(p)
				if math.Abs(res.Cost-reprice) > costTol(reprice) {
					t.Errorf("k=%d seed=%d: reported cost %v, re-priced %v", k, seed, res.Cost, reprice)
				}
				bd := tp.Breakdown(p)
				if math.Abs(bd.WeightedCost-reprice) > costTol(reprice) {
					t.Errorf("k=%d seed=%d: breakdown %v, cost %v", k, seed, bd.WeightedCost, reprice)
				}
				counts := p.Counts(k)
				total := 0
				for _, c := range counts {
					total += c
				}
				if total != len(g.Cells) {
					t.Errorf("k=%d seed=%d: tier counts %v sum to %d, want %d", k, seed, counts, total, len(g.Cells))
				}
			}
		}
	}
}

// TestTwoTierCostMatchesSensorEnergy: with tier weights {1, 0} the
// k-way objective must equal the paper's Problem.SensorEnergy on EVERY
// placement of the 2^n space — the generalized model contains the
// original as its k=2 slice.
func TestTwoTierCostMatchesSensorEnergy(t *testing.T) {
	for _, seed := range []int64{3, 14, 15} {
		rng := rand.New(rand.NewSource(seed))
		g := tinyDAG(rng, 4+rng.Intn(6)) // ≤ 9 cells → ≤ 512 placements
		link := wireless.Model2()
		tp, err := tinyTiered(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		tp.Tiers = []TierSpec{
			{Name: "sensor", ComputeScale: 1, EnergyWeight: 1},
			{Name: "aggregator", ComputeScale: 0.3, EnergyWeight: 0},
		}
		tp.Hops = []Hop{{Link: link, BandwidthScale: 1}}
		tp.SensingEnergy = 2.5e-7
		legacy := &Problem{Graph: g, HW: tp.HW, Link: link, SensingEnergy: tp.SensingEnergy}

		n := len(g.Cells)
		for mask := 0; mask < 1<<n; mask++ {
			tier := make(TierPlacement, n)
			binary := make(Placement, n)
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					tier[i] = 1
					binary[i] = Aggregator
				}
			}
			kway := tp.Cost(tier)
			two := legacy.SensorEnergy(binary)
			if math.Abs(kway-two) > costTol(two) {
				t.Fatalf("seed %d mask %b: k-way cost %v, SensorEnergy %v", seed, mask, kway, two)
			}
		}
	}
}

// TestKWayDominatesBiPartition: on larger synthetic DAGs (beyond the
// exact budget) the k-way solution must beat or tie the best single-hop
// bi-partition — the acceptance bound of the tentpole.
func TestKWayDominatesBiPartition(t *testing.T) {
	kept := 0
	for seed := int64(1); seed <= 12 && kept < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Synthetic(rng, 256)
		if err != nil || len(g.Cells) <= DefaultExactCells {
			continue // want genuinely heuristic-sized instances
		}
		kept++
		tp, err := tinyTiered(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tp.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Exact {
			t.Fatalf("seed %d: %d cells unexpectedly brute-forced", seed, len(g.Cells))
		}
		if err := tp.CheckPlacement(res.Placement); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		biP, biC, biH, err := tp.BestBiPartition()
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.CheckPlacement(biP); err != nil {
			t.Fatalf("seed %d: bi-partition infeasible: %v", seed, err)
		}
		if res.Cost > biC+costTol(biC) {
			t.Errorf("seed %d (%d cells): k-way %v worse than hop-%d bi-partition %v",
				seed, len(g.Cells), res.Cost, biH, biC)
		}
	}
	if kept == 0 {
		t.Skip("no synthetic instance above the exact budget")
	}
}

// TestSolveDeterministic: identical problems solve to bit-identical
// placements and costs, on both paths.
func TestSolveDeterministic(t *testing.T) {
	for _, cells := range []int{8, 20} {
		rng := rand.New(rand.NewSource(42))
		g := tinyDAG(rng, cells)
		tp, err := tinyTiered(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		first, err := tp.Solve()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			rng2 := rand.New(rand.NewSource(42))
			g2 := tinyDAG(rng2, cells)
			tp2, err := tinyTiered(g2, 3)
			if err != nil {
				t.Fatal(err)
			}
			again, err := tp2.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if !first.Placement.Equal(again.Placement) {
				t.Fatalf("cells=%d: run %d placement diverged: %v vs %v", cells, i, first.Placement, again.Placement)
			}
			if first.Cost != again.Cost {
				t.Fatalf("cells=%d: run %d cost diverged: %v vs %v", cells, i, first.Cost, again.Cost)
			}
		}
	}
}

// TestRecutHopNeverRegresses: re-cutting any hop of any solver placement
// must keep cost equal or better, only move cells between the hop's two
// tiers, and preserve feasibility.
func TestRecutHopNeverRegresses(t *testing.T) {
	for _, seed := range []int64{6, 18, 27} {
		rng := rand.New(rand.NewSource(seed))
		g := tinyDAG(rng, 5+rng.Intn(8))
		tp, err := tinyTiered(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		starts := []TierPlacement{
			AllAt(g, 0), AllAt(g, 1), AllAt(g, 2),
		}
		if res, err := tp.Solve(); err == nil {
			starts = append(starts, res.Placement)
		}
		for _, p := range starts {
			before := tp.Cost(p)
			for h := 0; h < len(tp.Hops); h++ {
				q, c, err := tp.RecutHop(p, h)
				if err != nil {
					t.Fatalf("seed %d hop %d: %v", seed, h, err)
				}
				if c > before+costTol(before) {
					t.Errorf("seed %d hop %d: re-cut cost %v > original %v", seed, h, c, before)
				}
				if err := tp.CheckPlacement(q); err != nil {
					t.Errorf("seed %d hop %d: %v", seed, h, err)
				}
				for i := range p {
					if p[i] != q[i] && (p[i] != Tier(h) && p[i] != Tier(h+1)) {
						t.Errorf("seed %d hop %d: cell %d moved from tier %d, outside the hop", seed, h, i, p[i])
					}
					if q[i] != p[i] && q[i] != Tier(h) && q[i] != Tier(h+1) {
						t.Errorf("seed %d hop %d: cell %d landed on tier %d, outside the hop", seed, h, i, q[i])
					}
				}
			}
		}
	}
}

// TestCollapseAndLift: Collapse/FromBinary round-trip the 2-end
// runtime's view of a tier placement, and CapAt degrades feasibly.
func TestCollapseAndLift(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := tinyDAG(rng, 9)
	tp, err := tinyTiered(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Placement
	for boundary := Tier(0); boundary < 2; boundary++ {
		bin := p.Collapse(boundary)
		for i, tier := range p {
			wantSensor := tier <= boundary
			if bin.OnSensor(topology.CellID(i)) != wantSensor {
				t.Fatalf("boundary %d: cell %d collapsed wrong", boundary, i)
			}
		}
	}
	lifted := FromBinary(p.Collapse(1), 3)
	for i := range lifted {
		if lifted[i] != 0 && lifted[i] != 2 {
			t.Fatalf("lift must use extreme tiers, got %d", lifted[i])
		}
	}
	for max := Tier(0); max < 3; max++ {
		capped := p.CapAt(max)
		if err := tp.CheckPlacement(capped); err != nil {
			t.Fatalf("CapAt(%d): %v", max, err)
		}
		if capped.MaxTier() > max {
			t.Fatalf("CapAt(%d) left tier %d", max, capped.MaxTier())
		}
	}
}

// TestNewTieredProblemValidation covers the constructor's error paths
// and defaults.
func TestNewTieredProblemValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := tinyDAG(rng, 5)
	tp, err := tinyTiered(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tp.ResultTier != 2 || tp.ExactCells != DefaultExactCells {
		t.Fatalf("defaults: ResultTier=%d ExactCells=%d", tp.ResultTier, tp.ExactCells)
	}
	tiers, hops := tinyChain(3)
	if _, err := NewTieredProblem(nil, tp.HW, tiers, hops, 0); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewTieredProblem(g, tp.HW, tiers[:1], hops[:0], 0); err == nil {
		t.Error("single tier accepted")
	}
	if _, err := NewTieredProblem(g, tp.HW, tiers, hops[:1], 0); err == nil {
		t.Error("hop/tier mismatch accepted")
	}
	bad := append([]TierSpec(nil), tiers...)
	bad[1].EnergyWeight = -1
	if _, err := NewTieredProblem(g, tp.HW, bad, hops, 0); err == nil {
		t.Error("negative weight accepted")
	}
	// CheckPlacement violations.
	if err := tp.CheckPlacement(make(TierPlacement, 2)); err == nil {
		t.Error("short placement accepted")
	}
	p := AllAt(g, 0)
	p[g.Output] = -1
	if err := tp.CheckPlacement(p); err == nil {
		t.Error("negative tier accepted")
	}
	// Non-monotone: output below its producers.
	q := AllAt(g, 2)
	q[g.Output] = 0
	if err := tp.CheckPlacement(q); err == nil {
		t.Error("tier-descending edge accepted")
	}
}

// TestDefaultThreeTierShape pins the canonical chain's structure.
func TestDefaultThreeTierShape(t *testing.T) {
	tiers, hops := DefaultThreeTier(wireless.Model2(), wireless.Model3())
	if len(tiers) != 3 || len(hops) != 2 {
		t.Fatalf("got %d tiers, %d hops", len(tiers), len(hops))
	}
	if tiers[0].EnergyWeight != 1 || tiers[2].EnergyWeight != 0 {
		t.Fatalf("weights: %v", tiers)
	}
	if hops[0].Link.Name != wireless.Model2().Name || hops[1].Link.Name != wireless.Model3().Name {
		t.Fatalf("hops wired wrong: %v", hops)
	}
}

// TestOracleProblemShape: the oracle translation carries every data
// edge and the reader group.
func TestOracleProblemShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := tinyDAG(rng, 8)
	tp, err := tinyTiered(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	op := tp.oracleProblem()
	if op.Cells != len(g.Cells) || op.Tiers != 3 {
		t.Fatalf("shape: %d cells %d tiers", op.Cells, op.Tiers)
	}
	dataEdges := 0
	for _, e := range g.Edges {
		if e.From != topology.SourceID {
			dataEdges++
		}
	}
	if len(op.Edges) != dataEdges {
		t.Fatalf("%d oracle edges, want %d", len(op.Edges), dataEdges)
	}
	if readers := g.SourceReaders(); len(readers) > 1 {
		if len(op.Groups) != 1 || len(op.Groups[0]) != len(readers) {
			t.Fatalf("reader group not carried: %v", op.Groups)
		}
	}
	if _, err := (&oracle.Problem{Cells: op.Cells, Tiers: op.Tiers, Edges: op.Edges, Groups: op.Groups}).Enumerate(func([]int) bool { return true }); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMultiwaySolve(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g, err := topology.Synthetic(rng, 256)
	if err != nil {
		b.Fatal(err)
	}
	tp, err := tinyTiered(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tp.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecutHop(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g, err := topology.Synthetic(rng, 256)
	if err != nil {
		b.Fatal(err)
	}
	tp, err := tinyTiered(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	res, err := tp.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tp.RecutHop(res.Placement, i%2); err != nil {
			b.Fatal(err)
		}
	}
}
