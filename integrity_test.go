package xpro

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// horizonFor sizes a fault-plan horizon to cover n events of one case's
// modeled event stream (segment length / sample rate per event).
func horizonFor(t *testing.T, caseSym string, n int) float64 {
	t.Helper()
	for _, ci := range Cases() {
		if ci.Symbol == caseSym {
			return float64(n) * float64(ci.SegmentLength) / 2048.0
		}
	}
	t.Fatalf("unknown case %q", caseSym)
	return 0
}

// corruptStorm is the acceptance scenario: the seeded 10⁻³ bit-flip
// burst over the middle third of an n-event run.
func corruptStorm(t *testing.T, n int) *FaultPlan {
	t.Helper()
	plan, err := FaultScenario("corrupt", 7, horizonFor(t, "C1", n))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// integrityEvent is one battery event: the full Result plus the error
// text, so reflect.DeepEqual over a run is a bit-identity check.
type integrityEvent struct {
	Res Result
	Err string
}

// runStorm replays n events of the corrupt storm through a fresh C1
// engine of the given kind under the given integrity config. Graceful
// degradation is asserted inline: the only error the storm may surface
// is the typed ErrSuspectData quarantine — never an abort.
func runStorm(t *testing.T, kind EngineKind, integ *Integrity, n int) []integrityEvent {
	t.Helper()
	eng, err := New(Config{Case: "C1", Kind: kind, FaultPlan: corruptStorm(t, n), Integrity: integ})
	if err != nil {
		t.Fatal(err)
	}
	test := eng.TestSet()
	out := make([]integrityEvent, 0, n)
	for i := 0; i < n; i++ {
		res, err := eng.ClassifyResult(test[i%len(test)].Samples)
		ev := integrityEvent{Res: res}
		if err != nil {
			if !errors.Is(err, ErrSuspectData) {
				t.Fatalf("event %d: %v (corruption must degrade or quarantine, not abort)", i, err)
			}
			ev.Err = err.Error()
		}
		if res.Label != 0 && res.Label != 1 {
			t.Fatalf("event %d: label %d outside {0,1}", i, res.Label)
		}
		if math.IsNaN(res.SpentSeconds) || res.SpentSeconds < 0 {
			t.Fatalf("event %d: invalid spent time %v", i, res.SpentSeconds)
		}
		out = append(out, ev)
	}
	return out
}

// The acceptance battery, framed half, on both crossing shapes: the
// cross-end cut (whose only wire payload is the final score word) and
// the in-aggregator engine (which streams the raw segment as a
// multi-frame burst). Under the seeded bit-flip storm each replays
// bit-identically per seed, degrades gracefully, and never lets a
// corrupt frame reach a cell undetected — the CRC sentinel is
// CorruptDelivered == 0 on every single event while the storm
// demonstrably bites (CorruptFrames > 0 overall).
func TestIntegrityFramedStormBattery(t *testing.T) {
	const n = 30
	kinds := []struct {
		name string
		kind EngineKind
		// The raw-stream engine crosses six frames per event, so CRC
		// rejections there leave partial bursts: residual loss must be
		// repaired by imputation and heavy repair must quarantine.
		wantImputed bool
	}{
		{"cross-end", CrossEnd, false},
		{"in-aggregator", InAggregator, true},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			a := runStorm(t, k.kind, DefaultIntegrity(), n)
			b := runStorm(t, k.kind, DefaultIntegrity(), n)
			if !reflect.DeepEqual(a, b) {
				for i := range a {
					if !reflect.DeepEqual(a[i], b[i]) {
						t.Fatalf("event %d diverged between identical seeded runs:\n  %+v\n  %+v", i, a[i], b[i])
					}
				}
				t.Fatal("runs diverged")
			}
			corrupt, imputed, suspect := 0, 0, 0
			for i, ev := range a {
				if ev.Res.CorruptDelivered != 0 {
					t.Errorf("event %d: %d corrupt values delivered through the framed transport (CRC sentinel breached)",
						i, ev.Res.CorruptDelivered)
				}
				corrupt += ev.Res.CorruptFrames
				imputed += ev.Res.ImputedValues
				if ev.Err != "" {
					suspect++
					if ev.Res.Mode != ModeSuspectData {
						t.Errorf("event %d: quarantined with mode %v, want suspect-data", i, ev.Res.Mode)
					}
				}
			}
			if corrupt == 0 {
				t.Fatal("the storm rejected no frames at the CRC; the sentinel check is vacuous")
			}
			if k.wantImputed {
				if imputed == 0 {
					t.Error("no values were imputed after CRC rejections exhausted the frame retry budget")
				}
				if suspect == 0 {
					t.Error("no event crossed the imputation quarantine threshold under the storm")
				}
			}
			t.Logf("battery: %d CRC rejections, %d imputed values, %d quarantined events over %d", corrupt, imputed, suspect, n)
		})
	}
}

// The bare-wire half: the same storm without framing delivers corrupted
// code words straight into the pipeline — CorruptDelivered > 0 and
// nothing is ever detected (CorruptFrames == 0), which is exactly the
// exposure the framed battery above closes.
func TestIntegrityBareWireDeliversCorruption(t *testing.T) {
	const n = 30
	evs := runStorm(t, InAggregator, &Integrity{}, n)
	delivered, detected := 0, 0
	for _, ev := range evs {
		delivered += ev.Res.CorruptDelivered
		detected += ev.Res.CorruptFrames
	}
	if delivered == 0 {
		t.Fatal("the storm delivered no corruption on the bare wire; the exposure check is vacuous")
	}
	if detected != 0 {
		t.Errorf("bare wire detected %d corrupt frames; it has no checksum to detect with", detected)
	}
}

// With the gate disabled and no framing, a hot enough storm silently
// flips labels: same segments, same engine configuration, different
// answers, no error anywhere — the failure mode the integrity layer
// exists to prevent.
func TestIntegrityGateOffSilentLabelFlips(t *testing.T) {
	const n = 150
	clean, err := New(Config{Case: "C1"})
	if err != nil {
		t.Fatal(err)
	}
	test := clean.TestSet()
	want := make([]int, n)
	for i := range want {
		if want[i], err = clean.Classify(test[i%len(test)].Samples); err != nil {
			t.Fatal(err)
		}
	}

	// Hot enough that nearly every score word crossing the bare wire
	// carries a flipped bit; a flip landing in the sign or integer bits
	// inverts the diagnosis with no surviving evidence.
	storm := &FaultPlan{
		Windows: []FaultWindow{{Kind: "bit-flip", StartSeconds: 0, EndSeconds: 36000, Rate: 0.05}},
		Seed:    7,
	}
	dirty, err := New(Config{Case: "C1", FaultPlan: storm, Integrity: &Integrity{}})
	if err != nil {
		t.Fatal(err)
	}
	flips, delivered := 0, 0
	for i := 0; i < n; i++ {
		res, err := dirty.ClassifyResult(test[i%len(test)].Samples)
		if err != nil {
			t.Fatalf("event %d: %v (no gate, no framing: corruption must pass silently)", i, err)
		}
		delivered += res.CorruptDelivered
		if res.Label != want[i] {
			flips++
		}
	}
	if delivered == 0 {
		t.Fatal("the storm delivered no corruption on the bare ungated wire; the threat model is vacuous")
	}
	if flips == 0 {
		t.Fatal("the bit-flip storm flipped no labels on the bare ungated wire; the threat model is vacuous")
	}
	t.Logf("gate off: %d corrupt words consumed, %d/%d labels silently flipped", delivered, flips, n)
}

// The admission gate rejects implausible segments before they touch the
// modeled timeline: flatlines, rail saturation and non-finite samples
// come back as typed ErrSuspectData on the suspect-data rung, with the
// rejection counted and the event span marked Suspect.
func TestIntegrityGateRejectsBadSignals(t *testing.T) {
	eng, err := New(Config{Case: "C1", Integrity: DefaultIntegrity()})
	if err != nil {
		t.Fatal(err)
	}
	segLen := len(eng.TestSet()[0].Samples)
	flat := make([]float64, segLen)
	for i := range flat {
		flat[i] = 0.5
	}
	railed := make([]float64, segLen)
	for i := range railed {
		railed[i] = 1
	}
	poisoned := append([]float64(nil), eng.TestSet()[0].Samples...)
	poisoned[segLen/2] = math.NaN()

	cases := []struct {
		name    string
		samples []float64
		reason  string
	}{
		{"flatline", flat, "flatline"},
		{"rail-saturation", railed, "rail-saturation"},
		{"non-finite", poisoned, "non-finite"},
	}
	for _, tc := range cases {
		res, err := eng.ClassifyResult(tc.samples)
		if !errors.Is(err, ErrSuspectData) {
			t.Fatalf("%s: err = %v, want ErrSuspectData", tc.name, err)
		}
		var sde *SuspectDataError
		if !errors.As(err, &sde) {
			t.Fatalf("%s: err = %v, want *SuspectDataError", tc.name, err)
		}
		if !strings.Contains(strings.Join(sde.Reasons, ","), tc.reason) {
			t.Errorf("%s: reasons %v missing %q", tc.name, sde.Reasons, tc.reason)
		}
		if res.Mode != ModeSuspectData || !res.Degraded {
			t.Errorf("%s: result %+v, want degraded suspect-data", tc.name, res)
		}
	}

	obs := eng.Observer()
	if got := obs.MetricValue("xpro_quality_rejected_total"); got != float64(len(cases)) {
		t.Errorf("quality_rejected_total = %v, want %d", got, len(cases))
	}
	suspectSpans := 0
	for _, s := range obs.Spans() {
		if s.End == "event" && s.Suspect {
			suspectSpans++
		}
	}
	if suspectSpans != len(cases) {
		t.Errorf("suspect event spans = %d, want %d", suspectSpans, len(cases))
	}

	// An admissible segment still classifies normally through the gate.
	if res, err := eng.ClassifyResult(eng.TestSet()[0].Samples); err != nil || res.Mode != ModeFull {
		t.Errorf("admissible segment: res %+v, err %v", res, err)
	}
}

// Gate rejections happen before the modeled timeline: a stream with
// rejected segments interleaved replays the admissible events exactly
// as a stream without them — the clock, breaker and link RNG never see
// the garbage.
func TestIntegrityGateRejectionsInvisibleToReplay(t *testing.T) {
	const n = 12
	run := func(interleave bool) []integrityEvent {
		eng, err := New(Config{Case: "C1", FaultPlan: corruptStorm(t, n), Integrity: DefaultIntegrity()})
		if err != nil {
			t.Fatal(err)
		}
		test := eng.TestSet()
		flat := make([]float64, len(test[0].Samples))
		out := make([]integrityEvent, 0, n)
		for i := 0; i < n; i++ {
			if interleave {
				if _, err := eng.ClassifyResult(flat); !errors.Is(err, ErrSuspectData) {
					t.Fatalf("flat segment: err = %v, want ErrSuspectData", err)
				}
			}
			res, err := eng.ClassifyResult(test[i].Samples)
			ev := integrityEvent{Res: res}
			if err != nil {
				ev.Err = err.Error()
			}
			out = append(out, ev)
		}
		return out
	}
	plain, interleaved := run(false), run(true)
	if !reflect.DeepEqual(plain, interleaved) {
		t.Fatal("interleaved gate rejections changed the admissible events' replay")
	}
}

// The exit half of the gate: a lossy channel that forces more than
// MaxImputedFraction of an event's crossed values through imputation
// quarantines the event — the label rides along for inspection, the
// caller gets ErrSuspectData with the excess-imputation reason. The
// raw-streaming engine is the multi-frame crossing where partial loss
// (and so imputation) actually happens.
func TestIntegrityExcessImputationQuarantine(t *testing.T) {
	const n = 10
	lossy := &FaultPlan{
		Windows: []FaultWindow{{Kind: "loss-burst", StartSeconds: 0, EndSeconds: 36000, Loss: 0.45}},
		Seed:    7,
	}
	eng, err := New(Config{Case: "C1", Kind: InAggregator, FaultPlan: lossy, Integrity: DefaultIntegrity()})
	if err != nil {
		t.Fatal(err)
	}
	test := eng.TestSet()
	quarantined := 0
	for i := 0; i < n; i++ {
		res, err := eng.ClassifyResult(test[i].Samples)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrSuspectData) {
			t.Fatalf("event %d: %v, want quarantine or success", i, err)
		}
		var sde *SuspectDataError
		if !errors.As(err, &sde) || !strings.Contains(strings.Join(sde.Reasons, ","), "excess-imputation") {
			t.Fatalf("event %d: %v, want excess-imputation reason", i, err)
		}
		if res.Mode != ModeSuspectData || res.ImputedValues == 0 {
			t.Errorf("event %d: quarantined result %+v lacks suspect mode or imputed values", i, res)
		}
		if res.Label != 0 && res.Label != 1 {
			t.Errorf("event %d: quarantined label %d outside {0,1} (the label must ride along)", i, res.Label)
		}
		quarantined++
	}
	if quarantined == 0 {
		t.Fatal("45% loss quarantined no events; the exit gate is vacuous")
	}
}

// The fleet counts quarantined events on their own counter: a suspect
// segment is served (not an error, not a success) and the subject's
// worker keeps its modeled timeline intact.
func TestFleetQuarantineCounter(t *testing.T) {
	eng, err := New(Config{Case: "C1", Integrity: DefaultIntegrity()})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(map[string]*Engine{"chest": eng})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := net.Serve(ServeOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	flat := make([]float64, len(eng.TestSet()[0].Samples))
	if _, err := fleet.Classify(context.Background(), "chest", flat); !errors.Is(err, ErrSuspectData) {
		t.Fatalf("fleet flatline: err = %v, want ErrSuspectData", err)
	}
	if _, err := fleet.Classify(context.Background(), "chest", eng.TestSet()[0].Samples); err != nil {
		t.Fatalf("fleet admissible segment: %v", err)
	}

	obs := net.Observer()
	if got := obs.MetricValue("xpro_fleet_suspect_total"); got != 1 {
		t.Errorf("fleet_suspect_total = %v, want 1", got)
	}
	if got := obs.MetricValue("xpro_fleet_errors_total"); got != 0 {
		t.Errorf("fleet_errors_total = %v, want 0 (quarantine is not an error)", got)
	}
	if got := obs.MetricValue("xpro_fleet_served_total"); got != 1 {
		t.Errorf("fleet_served_total = %v, want 1", got)
	}
}
