package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"-kind", "quantum"},
		{"-case", "ZZ"},
	} {
		out.Reset()
		errOut.Reset()
		if code := run(args, &out, &errOut); code == 0 {
			t.Errorf("args %v: exit 0, want failure", args)
		}
	}
}

func TestRunStreamAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an engine")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-case", "C1", "-kind", "sensor", "-n", "60", "-trace"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{
		"streaming C1 through the in-sensor engine",
		"event timeline",
		"done: 60 events",
		"projected battery life",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
