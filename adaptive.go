package xpro

import (
	"xpro/internal/adaptive"
)

// This file is the public face of closed-loop adaptive repartitioning
// (internal/adaptive). The paper's Automatic XPro Generator prices the
// cross-end cut once, against the datasheet channel; a deployed
// wearable's channel drifts — interference raises the packet-loss
// rate, the wearer walks out of range — and the once-optimal cut can
// quietly become the most expensive one as every crossing payload pays
// retransmissions. An engine built with Config.Adaptive closes the
// loop: an online channel estimator folds the evidence the resilience
// layer already produces (per-send statistics, fault-window state,
// breaker transitions), a controller re-runs the same min-cut
// generator against the estimated channel, and a sufficiently better
// cut is hot-swapped in between events — with hysteresis and a
// probation window that rolls a misbehaving fresh cut back.

// Adaptive configures the adaptive repartitioning controller.
// Construct it with DefaultAdaptive and override fields; every field
// must be set (the controller rejects zero and non-finite knobs).
type Adaptive struct {
	// Alpha is the EWMA weight of the channel estimator, in (0, 1]:
	// larger tracks drift faster, smaller smooths noise harder.
	Alpha float64
	// MinDwellSeconds is the minimum modeled time between cut changes —
	// the hysteresis that stops a flapping channel from thrashing the
	// placement.
	MinDwellSeconds float64
	// ImprovementThreshold is the minimum relative sensor-energy
	// improvement (under the estimated channel) a candidate cut needs
	// before it replaces the active one, in (0, 1).
	ImprovementThreshold float64
	// ProbationEvents is how many events a freshly installed cut is
	// watched: violating the deadline more often than the previous cut
	// already did rolls the swap back.
	ProbationEvents int
	// MaxInflation caps the estimated retransmission factor the
	// re-pricing applies (≥ 1); a hard outage pins the effective channel
	// to this cap.
	MaxInflation float64
}

// DefaultAdaptive returns the default controller tuning.
func DefaultAdaptive() *Adaptive {
	c := adaptive.DefaultConfig()
	return &Adaptive{
		Alpha:                c.Alpha,
		MinDwellSeconds:      c.MinDwellSeconds,
		ImprovementThreshold: c.ImprovementThreshold,
		ProbationEvents:      c.ProbationEvents,
		MaxInflation:         c.MaxInflation,
	}
}

func (a *Adaptive) internal() adaptive.Config {
	return adaptive.Config{
		Alpha:                a.Alpha,
		MinDwellSeconds:      a.MinDwellSeconds,
		ImprovementThreshold: a.ImprovementThreshold,
		ProbationEvents:      a.ProbationEvents,
		MaxInflation:         a.MaxInflation,
	}
}

// RecutDecision is one entry of the adaptive controller's decision
// log: a hot swap to a better cut, or a probation rollback to the
// previous one. The log is fully determined by the engine's fault-plan
// seed, so a seeded run replays an identical sequence.
type RecutDecision struct {
	// AtSeconds is the modeled time of the decision.
	AtSeconds float64
	// Kind is "swap" or "rollback".
	Kind string
	// EstimatedLoss / EstimatedOutage are the channel estimate that
	// motivated the decision.
	EstimatedLoss, EstimatedOutage float64
	// SensorCellsBefore / SensorCellsAfter count the sensor-side cells
	// of the outgoing and incoming cuts.
	SensorCellsBefore, SensorCellsAfter int
	// FromEnergyJ / ToEnergyJ are the per-event sensor energies of the
	// two cuts priced under the estimated channel (zero on rollbacks).
	FromEnergyJ, ToEnergyJ float64
}

// RecutLog returns the adaptive controller's decision log, oldest
// first. Engines without Config.Adaptive return nil.
func (e *Engine) RecutLog() []RecutDecision {
	if e.res == nil || e.res.ctrl == nil {
		return nil
	}
	e.res.mu.Lock()
	ds := e.res.ctrl.Decisions()
	e.res.mu.Unlock()
	out := make([]RecutDecision, len(ds))
	for i, d := range ds {
		fs, _ := d.From.Counts()
		ts, _ := d.To.Counts()
		out[i] = RecutDecision{
			AtSeconds:         d.At,
			Kind:              d.Kind,
			EstimatedLoss:     d.Loss,
			EstimatedOutage:   d.Outage,
			SensorCellsBefore: fs,
			SensorCellsAfter:  ts,
			FromEnergyJ:       d.FromEnergy,
			ToEnergyJ:         d.ToEnergy,
		}
	}
	return out
}

// AdaptiveStatus is a point-in-time snapshot of the adaptive
// repartitioning loop.
type AdaptiveStatus struct {
	// Enabled is true when the engine was built with Config.Adaptive.
	Enabled bool
	// EstimatedLoss / EstimatedOutage are the channel estimator's
	// current EWMA view; Samples counts the observations folded in.
	EstimatedLoss, EstimatedOutage float64
	Samples                        int
	// SensorCells / AggregatorCells describe the currently active cut.
	SensorCells, AggregatorCells int
	// OnProbation is true while a freshly swapped cut is still being
	// watched for rollback.
	OnProbation bool
	// Swaps / Rollbacks count the decisions taken so far.
	Swaps, Rollbacks int
}

// AdaptiveStatus reports the adaptive loop's current state. On an
// engine without Config.Adaptive only the active-cut cell counts are
// populated.
func (e *Engine) AdaptiveStatus() AdaptiveStatus {
	var st AdaptiveStatus
	st.SensorCells, st.AggregatorCells = e.sys().Placement.Counts()
	if e.res == nil || e.res.ctrl == nil {
		return st
	}
	e.res.mu.Lock()
	defer e.res.mu.Unlock()
	est := e.res.ctrl.Estimator().Estimate()
	st.Enabled = true
	st.EstimatedLoss = est.Loss
	st.EstimatedOutage = est.Outage
	st.Samples = est.Samples
	st.OnProbation = e.res.ctrl.OnProbation()
	for _, d := range e.res.ctrl.Decisions() {
		switch d.Kind {
		case "swap":
			st.Swaps++
		case "rollback":
			st.Rollbacks++
		}
	}
	return st
}
