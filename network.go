package xpro

import (
	"errors"
	"fmt"
	"sort"

	"xpro/internal/aggregator"
	"xpro/internal/bsn"
	"xpro/internal/telemetry"
)

// Network is a body sensor network: multiple wearable engines sharing
// one data aggregator (§5.7). Each node runs its own partitioned engine;
// links are conflict-free (the paper's MIMO assumption), while the
// aggregator CPU and battery are shared.
type Network struct {
	nw      *bsn.Network
	engines map[string]*Engine
	obs     *Observer
}

// NewNetwork assembles a network from named engines. The engines should
// be built with the same Process/Wireless configuration; names must be
// unique. Nodes are ordered by name, so network results — including
// bottleneck tie-breaks — are deterministic regardless of map iteration
// order.
func NewNetwork(engines map[string]*Engine) (*Network, error) {
	if len(engines) == 0 {
		return nil, errors.New("xpro: network needs at least one engine")
	}
	names := make([]string, 0, len(engines))
	for name := range engines {
		names = append(names, name)
	}
	sort.Strings(names)
	nodes := make([]bsn.Node, 0, len(names))
	for _, name := range names {
		e := engines[name]
		if e == nil {
			return nil, fmt.Errorf("xpro: nil engine %q", name)
		}
		nodes = append(nodes, bsn.Node{Name: name, Sys: e.system})
	}
	nw, err := bsn.New(aggregator.CortexA8(), nodes...)
	if err != nil {
		return nil, err
	}
	obs := newObserver(telemetry.DefaultTraceCapacity)
	nw.Metrics = obs.reg
	n := &Network{nw: nw, engines: engines, obs: obs}
	obs.setStatus("nodes", func() any { return names })
	obs.setStatus("report", func() any {
		rep, err := n.Report()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return rep
	})
	return n, nil
}

// NetworkReport summarizes the shared-resource behaviour of the network.
type NetworkReport struct {
	// NodeLifetimeHours is each node's battery life (unaffected by the
	// other nodes).
	NodeLifetimeHours map[string]float64
	// BottleneckNode has the shortest battery life.
	BottleneckNode  string
	BottleneckHours float64
	// AggregatorLifetimeHours is the shared smartphone battery under
	// the combined event load.
	AggregatorLifetimeHours float64
	// AggregatorUtilization is the fraction of CPU time the combined
	// back-end work consumes (≥ 1 means it cannot keep up).
	AggregatorUtilization float64
	// WorstCaseDelaySeconds is each node's end-to-end delay when every
	// node fires simultaneously (back-end work serializes).
	WorstCaseDelaySeconds map[string]float64
}

// Report computes the network summary.
func (n *Network) Report() (NetworkReport, error) {
	lifetimes, err := n.nw.NodeLifetimes()
	if err != nil {
		return NetworkReport{}, err
	}
	name, hours, err := n.nw.BottleneckNode()
	if err != nil {
		return NetworkReport{}, err
	}
	aggLife, err := n.nw.AggregatorLifetimeHours()
	if err != nil {
		return NetworkReport{}, err
	}
	return NetworkReport{
		NodeLifetimeHours:       lifetimes,
		BottleneckNode:          name,
		BottleneckHours:         hours,
		AggregatorLifetimeHours: aggLife,
		AggregatorUtilization:   n.nw.AggregatorUtilization(),
		WorstCaseDelaySeconds:   n.nw.WorstCaseDelay(),
	}, nil
}

// RealTimeOK reports whether every node meets the delay limit even under
// simultaneous firing and the aggregator sustains the combined rate.
func (n *Network) RealTimeOK(limitSeconds float64) bool {
	return n.nw.RealTimeOK(limitSeconds)
}
