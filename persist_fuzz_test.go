package xpro

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds Load corrupt, truncated and hostile snapshot bytes: it
// must return an error — never panic, never hand back a broken engine.
// The corpus seeds a valid snapshot plus systematic corruptions of it.
func FuzzLoad(f *testing.F) {
	eng, err := New(Config{Case: "C1"})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	corrupt := append([]byte(nil), valid...)
	for i := 10; i < len(corrupt); i += 97 {
		corrupt[i] ^= 0xff
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		eng, err := Load(bytes.NewReader(data))
		if err != nil {
			if eng != nil {
				t.Error("Load returned both an engine and an error")
			}
			return
		}
		if eng == nil {
			t.Fatal("Load returned nil engine without error")
		}
		// A snapshot that decodes must restore a usable engine.
		test := eng.TestSet()
		if len(test) == 0 {
			t.Fatal("loaded engine has no test set")
		}
		if _, err := eng.Classify(test[0].Samples); err != nil {
			t.Errorf("loaded engine cannot classify: %v", err)
		}
	})
}
