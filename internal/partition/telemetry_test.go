package partition

import (
	"math"
	"testing"

	"xpro/internal/telemetry"
)

// snapshotValue returns one series' counter value (0 when absent).
func snapshotValue(reg *telemetry.Registry, name string) float64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

func TestGenerateMetrics(t *testing.T) {
	pr := testProblem(t)
	reg := telemetry.NewRegistry()
	pr.Metrics = reg
	defer func() { pr.Metrics = nil }()

	delayOf := func(p Placement) float64 {
		// A coarse additive stand-in: back-end work dominates.
		d := 0.0
		for _, id := range p.AggregatorCells() {
			d += 1e-6 * float64(1+int(id))
		}
		return d
	}
	res, err := pr.Generate(delayOf, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement == nil {
		t.Fatal("no placement generated")
	}
	if got := snapshotValue(reg, "xpro_generate_total"); got != 1 {
		t.Errorf("generate_total = %v, want 1", got)
	}
	if got := snapshotValue(reg, "xpro_generate_mincut_runs_total"); got < float64(len(lambdaLadder)) {
		t.Errorf("mincut_runs_total = %v, want ≥ %d", got, len(lambdaLadder))
	}
	if got := snapshotValue(reg, "xpro_generate_candidates_total"); got < 1 {
		t.Errorf("candidates_total = %v, want ≥ 1", got)
	}
	if res.Fallback {
		t.Fatal("infinite delay limit must not fall back")
	}
	if got := snapshotValue(reg, "xpro_generate_fallback_total"); got != 0 {
		t.Errorf("fallback_total = %v, want 0", got)
	}
	// The duration histogram records exactly one generator run.
	for _, m := range reg.Snapshot() {
		if m.Name == "xpro_generate_seconds" {
			if m.Count != 1 {
				t.Errorf("generate_seconds count = %d, want 1", m.Count)
			}
			return
		}
	}
	t.Error("xpro_generate_seconds histogram not registered")
}
