package xpro

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"

	"xpro/internal/aggregator"
	"xpro/internal/biosig"
	"xpro/internal/ensemble"
	"xpro/internal/partition"
	"xpro/internal/telemetry"
	"xpro/internal/topology"
	"xpro/internal/xsystem"
)

// persistVersion guards the on-disk format.
const persistVersion = 1

// snapshotMagic opens the checksummed snapshot envelope: magic, then
// the gob payload, then a big-endian CRC-32 (IEEE) of the payload.
// Load still accepts bare legacy snapshots (no magic, no checksum).
var snapshotMagic = []byte("xprosnap\x01")

// SnapshotIntegrityError reports a snapshot whose payload does not
// match its stored checksum — a truncated or bit-rotted file.
type SnapshotIntegrityError struct {
	// Want is the checksum stored in the envelope; Got is the checksum
	// of the payload as read.
	Want, Got uint32
}

func (e *SnapshotIntegrityError) Error() string {
	return fmt.Sprintf("xpro: snapshot checksum mismatch (stored %#08x, computed %#08x): file is corrupt or truncated", e.Want, e.Got)
}

// enginePersist is the serialized form of an Engine: the trained
// classifier and the generated placement. Datasets are regenerated
// deterministically from the configuration on load, so snapshots stay
// small (support vectors dominate).
type enginePersist struct {
	Version   int
	Config    Config
	Ens       *ensemble.Ensemble
	Gen       partition.Result
	Placement partition.Placement
	Accuracy  float64
}

// Save writes the engine (trained classifier + placement) to w in a
// self-contained binary format readable by Load: a magic header, the
// gob payload, and a trailing CRC-32 so at-rest corruption is detected
// at load time instead of surfacing as a garbled classifier. Training
// is the expensive part of New; a saved engine restores in
// milliseconds.
//
// Save persists the shared immutable artifact only. The per-subject
// mutable core — clock, breaker, RNG cursor, estimator, ledgers —
// lives in the much smaller SubjectState record under the same
// CRC-envelope discipline: see Engine.Checkpoint / Engine.Recover
// (recovery.go) for crash–restart durability.
func (e *Engine) Save(w io.Writer) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(enginePersist{
		Version:   persistVersion,
		Config:    e.cfg,
		Ens:       e.ens,
		Gen:       e.gen,
		Placement: e.sys().Placement,
		Accuracy:  e.acc,
	}); err != nil {
		return err
	}
	if _, err := w.Write(snapshotMagic); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload.Bytes()))
	_, err := w.Write(sum[:])
	return err
}

// Load restores an engine saved with Save: the envelope checksum is
// verified (mismatches return *SnapshotIntegrityError), then the
// topology and simulated hardware are rebuilt from the snapshot's
// classifier and placement, and the held-out test set is regenerated
// deterministically from the saved configuration. Snapshots written
// before the checksummed envelope (bare gob) still load.
func Load(r io.Reader) (*Engine, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xpro: reading snapshot: %w", err)
	}
	if bytes.HasPrefix(buf, snapshotMagic) {
		body := buf[len(snapshotMagic):]
		if len(body) < 4 {
			return nil, fmt.Errorf("xpro: snapshot truncated inside the envelope (%d bytes)", len(buf))
		}
		payload, sum := body[:len(body)-4], body[len(body)-4:]
		want := binary.BigEndian.Uint32(sum)
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, &SnapshotIntegrityError{Want: want, Got: got}
		}
		buf = payload
	}
	var ep enginePersist
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&ep); err != nil {
		return nil, fmt.Errorf("xpro: decoding engine: %w", err)
	}
	if ep.Version > persistVersion {
		return nil, fmt.Errorf("xpro: snapshot version %d is newer than this build supports (max %d); update xpro or re-save the engine with this version", ep.Version, persistVersion)
	}
	if ep.Version != persistVersion {
		return nil, fmt.Errorf("xpro: snapshot version %d, this build reads %d", ep.Version, persistVersion)
	}
	if ep.Ens == nil || len(ep.Ens.Bases) == 0 {
		return nil, fmt.Errorf("xpro: snapshot has no classifier")
	}
	cfg := ep.Config
	spec, err := biosig.CaseBySymbol(cfg.Case)
	if err != nil {
		return nil, err
	}
	seed := spec.Seed
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	_, test := d.Split(0.75, rng)

	g, err := topology.Build(ep.Ens, d.SegLen)
	if err != nil {
		return nil, err
	}
	if len(ep.Placement) != len(g.Cells) {
		return nil, fmt.Errorf("xpro: snapshot placement covers %d cells, rebuilt topology has %d", len(ep.Placement), len(g.Cells))
	}
	sys, err := xsystem.New(g, ep.Ens, cfg.Process.internal(), cfg.Wireless.internal(),
		aggregator.CortexA8(), ep.Placement, cfg.SampleRateHz)
	if err != nil {
		return nil, err
	}
	obs := newObserver(telemetry.DefaultTraceCapacity)
	attachObserver(sys, obs)
	return newEngine(cfg, sys, ep.Ens, g, test, ep.Gen, ep.Accuracy, obs)
}
