// Feature lab: inspect what a trained XPro classifier actually relies
// on. The paper motivates its generic framework with biosignal
// heterogeneity — "ECG has salient features in the time-domain, EEG is
// with a good data representation under discrete wavelet transform"
// (§2.1) — and claims random-subspace training finds each signal's
// preference. This example measures that per case via permutation
// importance, and shows how the preference shapes the generated cut.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"xpro"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "case\ttime share\tdwt share\tsensor cells\toffloaded\tpeak power")
	for _, sym := range []string{"C1", "E1", "M1"} {
		eng, err := xpro.New(xpro.Config{Case: sym})
		if err != nil {
			log.Fatal(err)
		}
		shares, err := eng.DomainImportance()
		if err != nil {
			log.Fatal(err)
		}
		timeShare := shares["time"]
		dwtShare := 0.0
		for name, s := range shares {
			if name != "time" {
				dwtShare += s
			}
		}
		rep := eng.Report()
		peak, err := eng.PeakPowerWatts()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.0f%%\t%.0f%%\t%d\t%d\t%.2f mW\n",
			sym, timeShare*100, dwtShare*100, rep.SensorCells, rep.AggregatorCells, peak*1e3)
	}
	tw.Flush()
	fmt.Println("\nEEG leans on the DWT domain and EMG on the time domain, as §2.1 predicts;")
	fmt.Println("the Automatic XPro Generator shapes each cut around those preferences.")
}
