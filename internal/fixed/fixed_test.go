package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.25, -3.25, 100.125, -100.125, 32767, -32768}
	for _, f := range cases {
		got := FromFloat(f).Float()
		if got != f {
			t.Errorf("FromFloat(%v).Float() = %v", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(1e9) != Max {
		t.Errorf("FromFloat(1e9) = %v, want Max", FromFloat(1e9))
	}
	if FromFloat(-1e9) != Min {
		t.Errorf("FromFloat(-1e9) = %v, want Min", FromFloat(-1e9))
	}
	if FromFloat(math.NaN()) != 0 {
		t.Errorf("FromFloat(NaN) = %v, want 0", FromFloat(math.NaN()))
	}
}

func TestFromFloatRounding(t *testing.T) {
	// 2^-17 is below the resolution; it must round to nearest, not truncate.
	tiny := 1.0 / (1 << 17)
	if got := FromFloat(1 + 3*tiny); got != One+Num(2) {
		t.Errorf("FromFloat(1+3·2^-17) = %d, want %d", got, One+Num(2))
	}
}

func TestFromInt(t *testing.T) {
	for _, i := range []int{0, 1, -1, 42, -42, 32767, -32768} {
		if got := FromInt(i).Int(); got != i {
			t.Errorf("FromInt(%d).Int() = %d", i, got)
		}
	}
	if FromInt(1<<20) != Max {
		t.Error("FromInt(2^20) should saturate to Max")
	}
	if FromInt(-(1 << 20)) != Min {
		t.Error("FromInt(-2^20) should saturate to Min")
	}
}

func TestIntTruncatesTowardZero(t *testing.T) {
	if got := FromFloat(-1.5).Int(); got != -1 {
		t.Errorf("(-1.5).Int() = %d, want -1", got)
	}
	if got := FromFloat(1.5).Int(); got != 1 {
		t.Errorf("(1.5).Int() = %d, want 1", got)
	}
}

func TestAddSubSaturate(t *testing.T) {
	if Add(Max, One) != Max {
		t.Error("Max+1 should saturate")
	}
	if Sub(Min, One) != Min {
		t.Error("Min-1 should saturate")
	}
	if Add(FromInt(2), FromInt(3)) != FromInt(5) {
		t.Error("2+3 != 5")
	}
}

func TestNegAbs(t *testing.T) {
	if Neg(Min) != Max {
		t.Error("Neg(Min) should saturate to Max")
	}
	if Abs(Min) != Max {
		t.Error("Abs(Min) should saturate to Max")
	}
	if Abs(FromInt(-7)) != FromInt(7) {
		t.Error("Abs(-7) != 7")
	}
}

func TestMul(t *testing.T) {
	cases := []struct{ x, y, want float64 }{
		{2, 3, 6},
		{-2, 3, -6},
		{0.5, 0.5, 0.25},
		{-0.5, -0.5, 0.25},
		{100, 100, 10000},
	}
	for _, c := range cases {
		got := Mul(FromFloat(c.x), FromFloat(c.y)).Float()
		if got != c.want {
			t.Errorf("Mul(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
	if Mul(FromInt(30000), FromInt(30000)) != Max {
		t.Error("30000*30000 should saturate")
	}
}

func TestDiv(t *testing.T) {
	cases := []struct{ x, y, want float64 }{
		{6, 3, 2},
		{-6, 3, -2},
		{1, 4, 0.25},
		{1, -4, -0.25},
		{10, 0.5, 20},
	}
	for _, c := range cases {
		got := Div(FromFloat(c.x), FromFloat(c.y)).Float()
		if got != c.want {
			t.Errorf("Div(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestDivByZero(t *testing.T) {
	if Div(One, 0) != Max {
		t.Error("1/0 should saturate to Max")
	}
	if Div(-One, 0) != Min {
		t.Error("-1/0 should saturate to Min")
	}
	if Div(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
}

func TestSqrtExact(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 1}, {4, 2}, {9, 3}, {0.25, 0.5}, {2.25, 1.5}, {10000, 100},
	}
	for _, c := range cases {
		got := Sqrt(FromFloat(c.x)).Float()
		if got != c.want {
			t.Errorf("Sqrt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if Sqrt(FromInt(-4)) != 0 {
		t.Error("Sqrt of negative should clamp to 0")
	}
}

func TestSqrtAccuracy(t *testing.T) {
	for f := 0.01; f < 30000; f *= 1.7 {
		got := Sqrt(FromFloat(f)).Float()
		want := math.Sqrt(f)
		if math.Abs(got-want) > 2.0/(1<<16)+want*1e-4 {
			t.Errorf("Sqrt(%v) = %v, want %v", f, got, want)
		}
	}
}

func TestExpAccuracy(t *testing.T) {
	for f := -10.0; f <= 10.0; f += 0.37 {
		got := Exp(FromFloat(f)).Float()
		want := math.Exp(f)
		// Relative error budget: polynomial truncation + fixed-point
		// quantization of intermediate terms.
		tol := want*2e-3 + 3.0/(1<<16)
		if math.Abs(got-want) > tol {
			t.Errorf("Exp(%v) = %v, want %v (err %v > tol %v)", f, got, want, got-want, tol)
		}
	}
}

func TestExpSaturation(t *testing.T) {
	if Exp(FromInt(20)) != Max {
		t.Error("Exp(20) should saturate to Max")
	}
	if Exp(FromInt(-20)) != 0 {
		t.Error("Exp(-20) should underflow to 0")
	}
	if Exp(0) != One {
		t.Errorf("Exp(0) = %v, want 1", Exp(0))
	}
}

func TestRecip(t *testing.T) {
	if Recip(FromInt(4)).Float() != 0.25 {
		t.Error("Recip(4) != 0.25")
	}
}

func TestSliceConversions(t *testing.T) {
	fs := []float64{0, 1.5, -2.25}
	back := ToSlice(FromSlice(fs))
	for i := range fs {
		if back[i] != fs[i] {
			t.Errorf("round trip [%d]: %v != %v", i, back[i], fs[i])
		}
	}
}

// Property: Add is commutative and monotone, and never panics.
func TestQuickAddCommutative(t *testing.T) {
	f := func(a, b int32) bool {
		return Add(Num(a), Num(b)) == Add(Num(b), Num(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul is commutative.
func TestQuickMulCommutative(t *testing.T) {
	f := func(a, b int32) bool {
		return Mul(Num(a), Num(b)) == Mul(Num(b), Num(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul matches float multiplication within quantization error
// whenever the product is in range.
func TestQuickMulAccuracy(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Num(a)<<4, Num(b)<<4 // keep products well in range
		want := x.Float() * y.Float()
		got := Mul(x, y).Float()
		return math.Abs(got-want) <= 1.0/(1<<16)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Div inverts Mul: (a*b)/b ≈ a when b ≠ 0 and a*b in range.
func TestQuickDivInvertsMul(t *testing.T) {
	f := func(a, b int16) bool {
		if b == 0 {
			return true
		}
		x, y := Num(a)<<2, Num(b)<<2
		p := Mul(x, y)
		back := Div(p, y)
		// Quantization of the product then quotient: error ≤ ~(1+|1/y|)·LSB.
		tol := 1.0 + math.Abs(1.0/y.Float())
		return math.Abs(float64(back-x)) <= tol+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sqrt(x)² ≤ x+eps and (Sqrt(x)+1)² ≥ x for non-negative x —
// the defining property of a correctly rounded integer square root.
func TestQuickSqrtBounds(t *testing.T) {
	f := func(a int32) bool {
		x := Num(a)
		if x < 0 {
			x = -x
		}
		if x < 0 { // Min edge
			return true
		}
		s := Sqrt(x)
		lo := float64(s-1) / float64(One)
		hi := float64(s+1) / float64(One)
		v := x.Float()
		return lo*lo <= v && hi*hi >= v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: saturation ordering — Add never produces a result on the
// wrong side of either operand when the other is non-negative/non-positive.
func TestQuickAddMonotone(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Num(a), Num(b)
		s := Add(x, y)
		if y >= 0 && s < x && s != Max {
			return false
		}
		if y <= 0 && s > x && s != Min {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := FromFloat(3.14159), FromFloat(2.71828)
	for i := 0; i < b.N; i++ {
		_ = Mul(x, y)
	}
}

func BenchmarkSqrt(b *testing.B) {
	x := FromFloat(1234.5678)
	for i := 0; i < b.N; i++ {
		_ = Sqrt(x)
	}
}

func BenchmarkExp(b *testing.B) {
	x := FromFloat(-1.5)
	for i := 0; i < b.N; i++ {
		_ = Exp(x)
	}
}
