package bsn

import (
	"math"
	"math/rand"
	"testing"

	"xpro/internal/aggregator"
	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/ensemble"
	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

var cachedNet *Network

// threeNodeNetwork builds an ECG + EEG + EMG network, each node with its
// generated cross-end cut.
func threeNodeNetwork(t testing.TB) *Network {
	t.Helper()
	if cachedNet != nil {
		return cachedNet
	}
	cpu := aggregator.CortexA8()
	var nodes []Node
	for _, sym := range []string{"C1", "E1", "M1"} {
		spec, err := biosig.CaseBySymbol(sym)
		if err != nil {
			t.Fatal(err)
		}
		d := biosig.Generate(spec)
		rng := rand.New(rand.NewSource(spec.Seed))
		train, _ := d.Split(0.75, rng)
		cfg := ensemble.DefaultConfig(spec.Seed)
		cfg.Candidates = 8
		cfg.Folds = 2
		cfg.TopFrac = 0.4
		ens, err := ensemble.Train(train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := topology.Build(ens, d.SegLen)
		if err != nil {
			t.Fatal(err)
		}
		mk := func(p partition.Placement) *xsystem.System {
			s, err := xsystem.New(g, ens, celllib.P90, wireless.Model2(), cpu, p, sensornode.DefaultSampleRateHz)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		a := mk(partition.InAggregator(g))
		s := mk(partition.InSensor(g))
		limit := math.Min(a.DelayPerEvent().Total(), s.DelayPerEvent().Total())
		res, err := a.Problem().Generate(func(p partition.Placement) float64 {
			return a.DelayOf(p).Total()
		}, limit)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, Node{Name: sym, Sys: mk(res.Placement)})
	}
	nw, err := New(cpu, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	cachedNet = nw
	return nw
}

func TestNewValidation(t *testing.T) {
	cpu := aggregator.CortexA8()
	if _, err := New(cpu); err == nil {
		t.Error("empty network should error")
	}
	if _, err := New(aggregator.CPU{}, Node{Name: "x", Sys: &xsystem.System{}}); err == nil {
		t.Error("invalid CPU should error")
	}
	if _, err := New(cpu, Node{Name: "", Sys: &xsystem.System{}}); err == nil {
		t.Error("unnamed node should error")
	}
	if _, err := New(cpu, Node{Name: "a", Sys: nil}); err == nil {
		t.Error("nil system should error")
	}
	nw := threeNodeNetwork(t)
	if _, err := New(cpu, nw.Nodes[0], nw.Nodes[0]); err == nil {
		t.Error("duplicate node should error")
	}
}

func TestNodeLifetimes(t *testing.T) {
	nw := threeNodeNetwork(t)
	lifetimes, err := nw.NodeLifetimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(lifetimes) != 3 {
		t.Fatalf("lifetimes = %d, want 3", len(lifetimes))
	}
	for name, h := range lifetimes {
		if h <= 0 {
			t.Errorf("node %s: lifetime %v", name, h)
		}
		// Per-node lifetime must match the standalone system (sensor
		// side is unaffected by other nodes).
		for _, n := range nw.Nodes {
			if n.Name == name {
				want, _ := n.Sys.SensorLifetimeHours()
				if h != want {
					t.Errorf("node %s: network lifetime %v != standalone %v", name, h, want)
				}
			}
		}
	}
	name, h, err := nw.BottleneckNode()
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range lifetimes {
		if h > other {
			t.Errorf("bottleneck %s (%v h) is not minimal", name, h)
		}
	}
}

func TestAggregatorLoadScalesWithNodes(t *testing.T) {
	nw := threeNodeNetwork(t)
	one, err := New(nw.CPU, nw.Nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	if nw.AggregatorPower() < one.AggregatorPower() {
		t.Error("more nodes cannot draw less aggregator power")
	}
	h3, err := nw.AggregatorLifetimeHours()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := one.AggregatorLifetimeHours()
	if err != nil {
		t.Fatal(err)
	}
	if h3 > h1 {
		t.Errorf("3-node aggregator lifetime %v > 1-node %v", h3, h1)
	}
	// §5.6's viability claim must hold for the whole network too.
	if h3 < 52 {
		t.Errorf("network aggregator lifetime %v h, want > 52 h", h3)
	}
}

func TestUtilizationAndRealTime(t *testing.T) {
	nw := threeNodeNetwork(t)
	u := nw.AggregatorUtilization()
	if u <= 0 || u >= 1 {
		t.Errorf("utilization = %v, want sustainable (0,1)", u)
	}
	delays := nw.WorstCaseDelay()
	if len(delays) != 3 {
		t.Fatal("worst-case delays incomplete")
	}
	for name, d := range delays {
		solo := 0.0
		for _, n := range nw.Nodes {
			if n.Name == name {
				solo = n.Sys.DelayPerEvent().Total()
			}
		}
		if d < solo {
			t.Errorf("node %s: worst-case %v < solo %v", name, d, solo)
		}
	}
	if !nw.RealTimeOK(10e-3) {
		t.Error("network should meet a 10 ms bound")
	}
	if nw.RealTimeOK(1e-6) {
		t.Error("network cannot meet a 1 µs bound")
	}
}
