package xpro

import (
	"errors"
	"fmt"

	"xpro/internal/adaptive"
	"xpro/internal/biosig"
	"xpro/internal/faults"
	"xpro/internal/partition"
	"xpro/internal/telemetry"
	"xpro/internal/xsystem"
)

// This file is the resilient N-tier runtime: TierPlan.Arm gives every
// hop of a solved tier chain its own fallible link (independent seeded
// fault plan, capped backoff, circuit breaker, optional framed
// transport), and TierPlan.ClassifyResult walks events across the
// armed chain, charging every hop crossing against the same
// deadline/energy budget the 2-end resilient path uses. Sustained hop
// failure degrades by TIER COLLAPSE: a hop the collapse ladder
// declares dead caps the serving placement below it, re-homing the
// dead tier's cells onto the tiers that still work —
//
//	full k-tier → collapsed (k−1)-tier → … → sensor-local
//
// — and capped-exponential probes climb the ladder back up when the
// hop heals, with a probation window so one lucky probe cannot flap
// the placement. All randomness is seeded per hop, so a run replays
// bit-identically, across goroutine counts and crash–recover cycles.

// TierCollapse shapes the tier-collapse ladder of an armed plan: how
// many consecutive hard-down events kill a hop, how the revival probes
// back off, and how long a revived hop stays on probation. The zero
// value of each field takes the default.
type TierCollapse struct {
	// FailThreshold is how many consecutive outage events on a hop
	// collapse the tiers above it (default 3; hysteresis — one bad
	// event never collapses a tier).
	FailThreshold int
	// ProbeAfterSeconds is the first revival-probe delay after a
	// collapse (default 2); each failed probe multiplies the interval
	// by ProbeBackoffFactor (default 2) up to MaxProbeSeconds
	// (default 30).
	ProbeAfterSeconds  float64
	ProbeBackoffFactor float64
	MaxProbeSeconds    float64
	// RecoverySuccesses is how many consecutive clean probes revive a
	// dead hop (default 2); ProbationEvents is the post-revival window
	// during which a single failure rolls straight back down
	// (default 5).
	RecoverySuccesses int
	ProbationEvents   int
}

// DefaultTierCollapse returns the ladder defaults.
func DefaultTierCollapse() *TierCollapse {
	d := adaptive.DefaultCollapseConfig()
	return &TierCollapse{
		FailThreshold:      d.FailThreshold,
		ProbeAfterSeconds:  d.ProbeAfterSeconds,
		ProbeBackoffFactor: d.ProbeBackoffFactor,
		MaxProbeSeconds:    d.MaxProbeSeconds,
		RecoverySuccesses:  d.RecoverySuccesses,
		ProbationEvents:    d.ProbationEvents,
	}
}

func (c *TierCollapse) internal() adaptive.CollapseConfig {
	if c == nil {
		return adaptive.DefaultCollapseConfig()
	}
	return adaptive.CollapseConfig{
		FailThreshold:      c.FailThreshold,
		ProbeAfterSeconds:  c.ProbeAfterSeconds,
		ProbeBackoffFactor: c.ProbeBackoffFactor,
		MaxProbeSeconds:    c.MaxProbeSeconds,
		RecoverySuccesses:  c.RecoverySuccesses,
		ProbationEvents:    c.ProbationEvents,
	}
}

// TierResilience arms a TierPlan with per-hop fault tolerance. Every
// hop gets an independent fallible channel derived from Seed (distinct
// hops draw from decorrelated streams), HubStorms optionally merges a
// correlated hub-dark schedule into both hops adjacent to HubTier, and
// Collapse shapes the tier-collapse degradation ladder.
type TierResilience struct {
	// Policy is the per-hop retry/deadline/breaker policy; nil takes
	// DefaultResilience(). The breaker threshold and cooldown apply
	// per hop — each hop gets its own breaker.
	Policy *Resilience
	// HopPlans[h] is hop h's fault schedule (nil entries are clean
	// hops). More plans than the chain has hops is an error.
	HopPlans []*FaultPlan
	// HubStorms merges that many correlated storm windows into every
	// hop adjacent to HubTier (default tier 1): the hub itself goes
	// dark, so both its downlink and uplink fail at the identical
	// instants. The schedule is drawn from Seed alone, so every
	// subject behind the same hub sees the same storms. 0 disables.
	HubStorms int
	// HubTier is the tier whose storms HubStorms schedules
	// (default 1, the first hub).
	HubTier int
	// HorizonSeconds is the hub-storm schedule's timeline length
	// (default 60 modeled seconds).
	HorizonSeconds float64
	// Seed drives every per-hop random stream; one seed replays one
	// identical run.
	Seed int64
	// Collapse shapes the tier-collapse ladder; nil takes
	// DefaultTierCollapse().
	Collapse *TierCollapse
	// Framed arms the framed-integrity transport (CRC + sequence
	// numbers, imputation) on every hop.
	Framed bool
}

// tierRuntime is the armed per-hop fault-tolerance state of a plan.
// Everything here is guarded by the owning TierPlan's mu.
type tierRuntime struct {
	policy  faults.Policy
	clock   *faults.Clock
	hops    []xsystem.HopTransport
	ladder  *adaptive.CollapseLadder
	framing *faults.Framing
	period  float64
	seed    int64
	// uncapped is the home placement collapse rungs are cut from;
	// resultTier is where results must be delivered at full cap.
	uncapped   partition.TierPlacement
	resultTier partition.Tier
	// steady is the cap the currently installed serving system was cut
	// for (invariant: p.ts serves rung(steady) between transitions).
	steady partition.Tier
	// outages counts hard-down events per hop since Arm.
	outages []uint64
	// gauges[h] mirrors hop h's breaker state; collapses counts
	// downward rung transitions.
	gauges    []*telemetry.Gauge
	collapses *telemetry.Counter
}

func (rt *tierRuntime) fullCap() partition.Tier { return partition.Tier(len(rt.hops)) }

// Arm builds the plan's per-hop fault-tolerance runtime: one fallible
// link and circuit breaker per hop, the tier-collapse ladder, and the
// xpro_hop_breaker_state / xpro_tier_collapse_total metrics. Arming
// replaces any previous runtime (rebuilding all transports and
// resetting the ladder) and registers the plan on its engine, so SLO
// and health reports carry per-hop liveness from then on.
func (p *TierPlan) Arm(cfg *TierResilience) error {
	if cfg == nil {
		cfg = &TierResilience{}
	}
	rc := cfg.Policy
	if rc == nil {
		rc = DefaultResilience()
	}
	pol := rc.policy()
	if err := pol.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	nh := len(p.ts.Tiered.Hops)
	if len(cfg.HopPlans) > nh {
		return fmt.Errorf("xpro: %d hop plans for a %d-hop chain", len(cfg.HopPlans), nh)
	}
	hubTier := cfg.HubTier
	if hubTier == 0 {
		hubTier = 1
	}
	if cfg.HubStorms > 0 && (hubTier < 1 || hubTier > nh-1) {
		return fmt.Errorf("xpro: hub tier %d outside [1,%d]", hubTier, nh-1)
	}
	horizon := cfg.HorizonSeconds
	if horizon <= 0 {
		horizon = 60
	}
	var storm *faults.Plan
	if cfg.HubStorms > 0 {
		storm = faults.HubStormPlan(cfg.Seed, faults.PlanConfig{
			Horizon: horizon, MeanDuration: horizon / 20, HubStorms: cfg.HubStorms,
		})
	}
	clock := &faults.Clock{}
	rt := &tierRuntime{
		policy: pol, clock: clock, seed: cfg.Seed,
		uncapped:   p.ts.TierPlacement.Clone(),
		resultTier: p.ts.Tiered.ResultTier,
		steady:     partition.Tier(nh),
		outages:    make([]uint64, nh),
	}
	if cfg.Framed {
		rt.framing = &faults.Framing{}
	}
	if p.eng != nil {
		if ev := p.eng.sys().EventsPerSecond(); ev > 0 {
			rt.period = 1 / ev
		}
		reg := p.eng.obs.reg
		rt.collapses = reg.Counter("xpro_tier_collapse_total",
			"Downward rung transitions of the tier-collapse ladder (tiers re-homed off a dead hop).")
	}
	ladder, err := adaptive.NewCollapseLadder(nh, cfg.Collapse.internal())
	if err != nil {
		return err
	}
	rt.ladder = ladder
	for h := 0; h < nh; h++ {
		var plan *faults.Plan
		if h < len(cfg.HopPlans) && cfg.HopPlans[h] != nil {
			plan, err = cfg.HopPlans[h].internal()
			if err != nil {
				return err
			}
		}
		// The hub's dark periods down both hops touching it: its
		// downlink (hop hubTier-1) and its uplink (hop hubTier).
		if storm != nil && (h == hubTier-1 || h == hubTier) {
			plan = faults.MergePlans(plan, storm)
			if err := plan.Validate(); err != nil {
				return err
			}
		}
		link, err := faults.NewLink(p.ts.Tiered.Hops[h].Link, plan, clock,
			rc.BaseLoss, 0, faults.HopSeed(cfg.Seed, h))
		if err != nil {
			return err
		}
		breaker, err := faults.NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown, clock)
		if err != nil {
			return err
		}
		if p.eng != nil {
			g := p.eng.obs.reg.Gauge(telemetry.WithLabels("xpro_hop_breaker_state",
				map[string]string{"hop": fmt.Sprintf("%d", h)}),
				"Per-hop circuit breaker state: 0 closed, 1 half-open, 2 open.")
			g.Set(float64(faults.BreakerClosed))
			rt.gauges = append(rt.gauges, g)
			eng, hop := p.eng, h
			breaker.OnTransition = func(from, to faults.BreakerState) {
				rt.gauges[hop].Set(float64(to))
				eng.epoch.Add(1)
			}
		}
		rt.hops = append(rt.hops, xsystem.HopTransport{Link: link, Breaker: breaker})
	}
	p.rt = rt
	if p.eng != nil {
		p.eng.tier.Store(p)
		p.eng.epoch.Add(1)
	}
	return nil
}

// Armed reports whether the plan carries a per-hop fault runtime.
func (p *TierPlan) Armed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rt != nil
}

// HopOutageError reports one hop of an armed tier chain hard-down: an
// outage or hub-storm window covered the crossing (or the hop's
// breaker rejected it without burning air time). It unwraps to the
// transport cause, so errors.Is(err, ...) reaches the link-layer
// condition underneath.
type HopOutageError struct {
	// Hop is the dead hop's index (hop h connects tier h to h+1).
	Hop int
	// AtSeconds is the modeled time of the failed crossing;
	// UntilSeconds is when the covering fault window ends (0 when the
	// rejection came from the breaker, which has no window).
	AtSeconds    float64
	UntilSeconds float64
	// RetriesConsumed is how much of the per-transfer retry budget the
	// crossing burned before giving up.
	RetriesConsumed int
	// BreakerOpen is true when the hop's breaker rejected the crossing
	// without an attempt.
	BreakerOpen bool
	// Cause is the underlying transport error.
	Cause error
}

func (e *HopOutageError) Error() string {
	if e.BreakerOpen {
		return fmt.Sprintf("xpro: hop %d breaker open at t=%.3fs", e.Hop, e.AtSeconds)
	}
	return fmt.Sprintf("xpro: hop %d down at t=%.3fs (until t=%.3fs, %d retries consumed)",
		e.Hop, e.AtSeconds, e.UntilSeconds, e.RetriesConsumed)
}

func (e *HopOutageError) Unwrap() error { return e.Cause }

// TierDegradedError reports that an event's cross-tier attempt failed
// and the answer was re-served from a collapsed rung. The paired
// TierResult still carries a valid label — the error is provenance,
// like ErrSuspectData: it tells the caller which rung answered and
// why. It unwraps to the *HopOutageError (and through it to the
// transport cause) that forced the rung.
type TierDegradedError struct {
	// Tier is the rung that served the event (the highest tier used).
	Tier int
	// Hop is the hop whose failure forced the rung.
	Hop int
	// RetriesConsumed is the retry budget the failed attempt burned.
	RetriesConsumed int
	// Cause is the failed attempt's error, typically *HopOutageError.
	Cause error
}

func (e *TierDegradedError) Error() string {
	return fmt.Sprintf("xpro: served from tier-%d rung after hop %d failed (%d retries consumed): %v",
		e.Tier, e.Hop, e.RetriesConsumed, e.Cause)
}

func (e *TierDegradedError) Unwrap() error { return e.Cause }

// TierResult is one classification served through an armed tier chain:
// the 2-end Result provenance plus which rung of the collapse ladder
// answered.
type TierResult struct {
	Result
	// Tier is the highest tier the serving placement used (k-1 for the
	// full chain, 0 for sensor-local).
	Tier int
	// Probing is true when the event was let through a collapsed hop
	// to test whether it healed.
	Probing bool
}

// publicHopError translates the walk's internal hop-outage cause into
// the exported type, preserving the chain underneath.
func publicHopError(err error) *HopOutageError {
	var ih *xsystem.HopOutageError
	if !errors.As(err, &ih) {
		return nil
	}
	return &HopOutageError{
		Hop: ih.Hop, AtSeconds: ih.At, UntilSeconds: ih.Until,
		RetriesConsumed: ih.Retries, BreakerOpen: ih.BreakerOpen, Cause: ih,
	}
}

// rungLocked builds the serving sibling for cap: the home placement
// clamped to tiers ≤ cap, with result delivery re-homed onto the cap
// so the walk never marches results across hops known dead. Callers
// hold p.mu.
func (p *TierPlan) rungLocked(cap partition.Tier) (*xsystem.TieredSystem, error) {
	res := p.rt.resultTier
	if cap < res {
		res = cap
	}
	return p.ts.WithResultDelivery(p.rt.uncapped.CapAt(cap), res)
}

// installRungLocked makes cap the steady serving rung: the sibling is
// installed (bumping the engine epoch) and the transition is logged —
// a collapse as op "degrade", a climb as op "resolve". Callers hold
// p.mu.
func (p *TierPlan) installRungLocked(cap partition.Tier) error {
	ts, err := p.rungLocked(cap)
	if err != nil {
		return err
	}
	down := cap < p.rt.steady
	p.swap(ts)
	p.rt.steady = cap
	op := "resolve"
	if down {
		op = "degrade"
		if p.rt.collapses != nil {
			p.rt.collapses.Inc()
		}
	}
	p.logDecision(TierDecision{Op: op, Hop: int(cap), Moved: true})
	return nil
}

// ClassifyResult runs one event through the armed tier chain. The
// walk crosses every live hop under the per-hop retry/breaker policy;
// its outcome feeds the collapse ladder, which caps the placement when
// a hop keeps hard-failing and probes it back later. Events served
// while collapsed return a valid (degraded) result and a nil error —
// the rung IS the serving configuration; an event whose own cross-tier
// attempt fails is re-served from the rung below the dead hop within
// the same event and returns its label alongside a *TierDegradedError.
func (p *TierPlan) ClassifyResult(samples []float64) (TierResult, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rt := p.rt
	if rt == nil {
		return TierResult{}, fmt.Errorf("xpro: plan is not armed (call Arm first)")
	}
	seg := biosig.Segment{Samples: samples}
	now := rt.clock.Now()
	capT, probing := rt.ladder.EventCap(now)
	serve := p.ts
	if probing || capT != rt.steady {
		// Probe events (and caps the steady install has not caught up
		// with) serve from a transient rung sibling; the steady system
		// is not disturbed until the ladder settles.
		var err error
		serve, err = p.rungLocked(capT)
		if err != nil {
			return TierResult{}, err
		}
	}
	opt := &xsystem.TieredOptions{
		Hops: rt.hops, Clock: rt.clock, Policy: rt.policy, Integrity: rt.framing,
	}
	out, werr := serve.ClassifyOver(seg, opt)
	if werr != nil && len(out.HopOutage) == 0 {
		// Rejected before the walk started (bad segment): nothing was
		// attempted, nothing to observe or degrade.
		return TierResult{}, werr
	}
	rt.clock.Advance(rt.period)

	// Feed the ladder: only hops the event actually attempted are
	// evidence — absence of traffic says nothing about health.
	for h := range rt.hops {
		attempted := out.HopTransfersOK[h] > 0 || out.HopLost[h] > 0 ||
			out.HopSkipped[h] > 0 || out.HopOutage[h]
		if !attempted {
			continue
		}
		if out.HopOutage[h] {
			rt.outages[h]++
		}
		rt.ladder.Observe(h, out.HopOutage[h], now)
	}

	res := TierResult{Tier: int(capT), Probing: probing}
	var cerr error
	if werr == nil {
		res.Result = resultOf(out.Outcome)
		full := capT == rt.fullCap()
		switch {
		case full && out.Complete:
			res.Mode = ModeFull
		case full && out.PartialFusion:
			res.Mode, res.Degraded = ModePartial, true
		case capT == 0:
			res.Mode, res.Degraded = ModeFallbackSensor, true
		default:
			res.Mode, res.Degraded = ModeSensorLocal, true
		}
	} else {
		// The attempt died crossing a dead hop: re-home the event on
		// the rung below it, marching further down if that rung's own
		// crossings fail too. Rung 0 crosses no hop and cannot fail.
		attempt := out.Outcome
		pub := publicHopError(werr)
		failedHop := 0
		fbCap := partition.Tier(0)
		if pub != nil {
			failedHop = pub.Hop
			fbCap = partition.Tier(pub.Hop)
		}
		var ferr error = werr
		var fout xsystem.TieredOutcome
		for {
			rung, rerr := p.rungLocked(fbCap)
			if rerr != nil {
				return TierResult{}, rerr
			}
			fout, ferr = rung.ClassifyOver(seg, opt)
			if ferr == nil {
				break
			}
			if fbCap == 0 {
				return TierResult{}, ferr
			}
			var ih *xsystem.HopOutageError
			if errors.As(ferr, &ih) && partition.Tier(ih.Hop) < fbCap {
				fbCap = partition.Tier(ih.Hop)
			} else {
				fbCap = 0
			}
		}
		res.Result = resultOf(fout.Outcome)
		res.Tier = int(fbCap)
		res.Degraded = true
		res.Mode = ModeSensorLocal
		if fbCap == 0 {
			res.Mode = ModeFallbackSensor
		}
		// The failed attempt's struggle rides on top of the rung's
		// serve; when the attempt sensed the segment once, the rung
		// does not sense it again.
		res.Retries += attempt.Retries
		res.LostTransfers += attempt.LostTransfers
		res.SpentSeconds += attempt.SpentSeconds
		res.DeadlineExceeded = res.DeadlineExceeded || attempt.DeadlineExceeded
		fe := attempt.SensorEnergy
		if fout.SensorEnergy > 0 && attempt.SensorEnergy > 0 {
			fe -= p.ts.Tiered.SensingEnergy
		}
		if fe > 0 {
			res.SensorEnergyJoules += fe
		}
		var cause error = werr
		if pub != nil {
			cause = pub
		}
		cerr = &TierDegradedError{
			Tier: int(fbCap), Hop: failedHop,
			RetriesConsumed: attempt.Retries, Cause: cause,
		}
	}

	// Settle the steady rung: the ladder may have collapsed (or
	// revived) hops on this event's evidence.
	if c := rt.ladder.Cap(); c != rt.steady {
		if ierr := p.installRungLocked(c); ierr != nil {
			return res, ierr
		}
	}
	return res, cerr
}

// resultOf maps a walk outcome onto the public Result provenance.
func resultOf(out xsystem.Outcome) Result {
	return Result{
		Label:     out.Label,
		VotesUsed: out.VotesUsed, VotesTotal: out.VotesTotal,
		Retries: out.Retries, LostTransfers: out.LostTransfers,
		DeadlineExceeded: out.DeadlineExceeded,
		SpentSeconds:     out.SpentSeconds,
		CorruptFrames:    out.CorruptFrames, CorruptDelivered: out.CorruptDelivered,
		ImputedValues:      out.ImputedValues,
		SensorEnergyJoules: out.SensorEnergy,
	}
}

// HopSLO is one hop's liveness slice of an engine SLO report (armed
// tier plans only).
type HopSLO struct {
	// Hop is the hop's index (hop h connects tier h to h+1).
	Hop int
	// Live is false while the collapse ladder holds the hop dead.
	Live bool
	// Breaker is the hop's circuit breaker state.
	Breaker string
	// Failures counts the hop's consecutive outage events; Probation
	// the remaining post-revival grace events.
	Failures  int
	Probation int
	// NextProbeAtSeconds is when a dead hop is probed next (modeled
	// clock; 0 for live hops).
	NextProbeAtSeconds float64
	// OutageEvents counts hard-down events on the hop since Arm.
	OutageEvents uint64
}

// hopSLO snapshots per-hop liveness for the SLO/health reports.
func (p *TierPlan) hopSLO() []HopSLO {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rt == nil {
		return nil
	}
	out := make([]HopSLO, len(p.rt.hops))
	for h := range p.rt.hops {
		hh := p.rt.ladder.Health(h)
		out[h] = HopSLO{
			Hop:      h,
			Live:     !hh.Dead,
			Breaker:  p.rt.hops[h].Breaker.State().String(),
			Failures: hh.Failures, Probation: hh.Probation,
			OutageEvents: p.rt.outages[h],
		}
		if hh.Dead {
			out[h].NextProbeAtSeconds = hh.NextProbeAt
		}
	}
	return out
}

// TierHopState is one hop's durable runtime state inside
// TieredSubjectState.
type TierHopState struct {
	// Breaker is the hop breaker's state ("closed", "half-open",
	// "open"), with its consecutive-failure count and the modeled time
	// it last opened.
	Breaker                string
	BreakerFailures        int
	BreakerOpenedAtSeconds float64
	// RNGDraws is the hop link's random-stream position.
	RNGDraws uint64
	// Failures / Successes / Dead / NextProbeAtSeconds /
	// ProbeIntervalSeconds / ProbationEvents mirror the collapse
	// ladder's per-hop health.
	Failures             int
	Successes            int
	Dead                 bool
	NextProbeAtSeconds   float64
	ProbeIntervalSeconds float64
	ProbationEvents      int
	// OutageEvents counts hard-down events seen on the hop.
	OutageEvents uint64
}

// TieredSubjectState is the armed tier runtime's durable state: the
// modeled clock, the steady rung, and every hop's breaker, RNG and
// ladder position. Restoring it onto a freshly armed plan (same chain,
// same TierResilience) resumes the run bit-identically.
type TieredSubjectState struct {
	// ClockSeconds is the runtime's modeled time.
	ClockSeconds float64
	// SteadyCap is the rung the plan was serving from (k-1 = full).
	SteadyCap int
	// Hops has one entry per hop of the chain.
	Hops []TierHopState
	// Collapses / Recoveries / Rollbacks are the ladder's counters.
	Collapses  int
	Recoveries int
	Rollbacks  int
}

// TieredState snapshots the armed runtime's durable state.
func (p *TierPlan) TieredState() (TieredSubjectState, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tieredStateLocked()
}

func (p *TierPlan) tieredStateLocked() (TieredSubjectState, error) {
	rt := p.rt
	if rt == nil {
		return TieredSubjectState{}, fmt.Errorf("xpro: plan is not armed")
	}
	ls := rt.ladder.Snapshot()
	st := TieredSubjectState{
		ClockSeconds: rt.clock.Now(),
		SteadyCap:    int(rt.steady),
		Collapses:    ls.Collapses, Recoveries: ls.Recoveries, Rollbacks: ls.Rollbacks,
	}
	for h := range rt.hops {
		bs := rt.hops[h].Breaker.Snapshot()
		hh := ls.Hops[h]
		st.Hops = append(st.Hops, TierHopState{
			Breaker:                bs.State.String(),
			BreakerFailures:        bs.Failures,
			BreakerOpenedAtSeconds: bs.OpenedAt,
			RNGDraws:               rt.hops[h].Link.Draws(),
			Failures:               hh.Failures,
			Successes:              hh.Successes,
			Dead:                   hh.Dead,
			NextProbeAtSeconds:     hh.NextProbeAt,
			ProbeIntervalSeconds:   hh.ProbeInterval,
			ProbationEvents:        hh.Probation,
			OutageEvents:           rt.outages[h],
		})
	}
	return st, nil
}

// RestoreTieredState rewinds an armed plan onto a snapshot: every hop
// link's RNG is fast-forwarded to its recorded draw count, breakers
// and the collapse ladder resume their exact state, the modeled clock
// jumps to the snapshot time, and the steady rung is reinstalled. The
// plan must be armed for the same chain the snapshot covers.
func (p *TierPlan) RestoreTieredState(st TieredSubjectState) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restoreTieredLocked(st)
}

func (p *TierPlan) restoreTieredLocked(st TieredSubjectState) error {
	rt := p.rt
	if rt == nil {
		return fmt.Errorf("xpro: plan is not armed")
	}
	if len(st.Hops) != len(rt.hops) {
		return fmt.Errorf("xpro: snapshot covers %d hops, chain has %d", len(st.Hops), len(rt.hops))
	}
	if st.SteadyCap < 0 || st.SteadyCap > len(rt.hops) {
		return fmt.Errorf("xpro: snapshot steady cap %d outside [0,%d]", st.SteadyCap, len(rt.hops))
	}
	ls := adaptive.LadderState{
		Hops:      make([]adaptive.HopHealth, len(st.Hops)),
		Collapses: st.Collapses, Recoveries: st.Recoveries, Rollbacks: st.Rollbacks,
	}
	for h, hs := range st.Hops {
		var bst faults.BreakerState
		switch hs.Breaker {
		case "closed":
			bst = faults.BreakerClosed
		case "half-open":
			bst = faults.BreakerHalfOpen
		case "open":
			bst = faults.BreakerOpen
		default:
			return fmt.Errorf("xpro: hop %d has unknown breaker state %q", h, hs.Breaker)
		}
		if err := rt.hops[h].Breaker.Restore(faults.BreakerSnapshot{
			State: bst, Failures: hs.BreakerFailures, OpenedAt: hs.BreakerOpenedAtSeconds,
		}); err != nil {
			return err
		}
		if err := rt.hops[h].Link.RestoreDraws(hs.RNGDraws); err != nil {
			return fmt.Errorf("xpro: hop %d: %w", h, err)
		}
		ls.Hops[h] = adaptive.HopHealth{
			Failures: hs.Failures, Successes: hs.Successes, Dead: hs.Dead,
			NextProbeAt: hs.NextProbeAtSeconds, ProbeInterval: hs.ProbeIntervalSeconds,
			Probation: hs.ProbationEvents,
		}
		rt.outages[h] = hs.OutageEvents
	}
	if err := rt.ladder.Restore(ls); err != nil {
		return err
	}
	rt.clock.Restore(st.ClockSeconds)
	if cap := partition.Tier(st.SteadyCap); cap != rt.steady {
		ts, err := p.rungLocked(cap)
		if err != nil {
			return err
		}
		p.swap(ts)
		rt.steady = cap
	}
	return nil
}
