// Package partition implements the Automatic XPro Generator (§3.2): the
// optimizer that distributes functional cells between the wearable
// sensor node and the data aggregator so that sensor-node energy is
// minimal, optionally under an end-to-end delay constraint.
//
// The generator builds the s-t graph of Fig. 7: a source node F (the
// sensor), a sink node B (the aggregator), a dummy node D for the raw
// data segment, and one node per functional cell. Edge capacities are
// energies:
//
//   - F→D: transmitting the whole raw segment to the aggregator;
//   - D→cell (∞): for cells reading raw data, enforcing the "grouped"
//     property of §3.2.2;
//   - cell→B: the cell's in-sensor compute energy (Eq. 2);
//   - u→v / v→u per data dependency: wireless transmit / receive energy
//     of that edge's payload (Eq. 3).
//
// Any F/B cut's capacity equals the sensor's per-event energy under the
// induced placement, so the minimum cut is the energy-optimal placement,
// and the in-sensor and in-aggregator engines — the two extreme cuts —
// can never beat it. The delay-constrained variant (§3.2.3) sweeps a
// Lagrangian relaxation (capacity = energy + λ·delay) and keeps the
// cheapest placement whose simulated delay meets the constraint,
// falling back to the better single-end engine, whose feasibility the
// constraint T_XPro = min(T_F, T_B) guarantees.
package partition

import (
	"fmt"
	"sort"
	"time"

	"xpro/internal/maxflow"
	"xpro/internal/sensornode"
	"xpro/internal/telemetry"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

// End is one side of the wearable computing system.
type End int

const (
	// Sensor is the front end (the wearable node).
	Sensor End = iota
	// Aggregator is the back end (the smartphone).
	Aggregator
)

func (e End) String() string {
	if e == Sensor {
		return "sensor"
	}
	return "aggregator"
}

// Placement assigns every cell (indexed by topology.CellID) to an end.
type Placement []End

// OnSensor reports whether cell id is placed on the sensor node.
func (p Placement) OnSensor(id topology.CellID) bool { return p[id] == Sensor }

// SensorCells returns the IDs of the in-sensor analytic part.
func (p Placement) SensorCells() []topology.CellID {
	var out []topology.CellID
	for i, e := range p {
		if e == Sensor {
			out = append(out, topology.CellID(i))
		}
	}
	return out
}

// AggregatorCells returns the IDs of the in-aggregator analytic part.
func (p Placement) AggregatorCells() []topology.CellID {
	var out []topology.CellID
	for i, e := range p {
		if e == Aggregator {
			out = append(out, topology.CellID(i))
		}
	}
	return out
}

// Counts returns (#sensor, #aggregator) cells.
func (p Placement) Counts() (sensor, aggregator int) {
	for _, e := range p {
		if e == Sensor {
			sensor++
		} else {
			aggregator++
		}
	}
	return sensor, aggregator
}

// Equal reports whether two placements are identical.
func (p Placement) Equal(q Placement) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// InSensor returns the all-cells-on-sensor placement (the sensor node
// engine baseline).
func InSensor(g *topology.Graph) Placement {
	return make(Placement, len(g.Cells)) // zero value is Sensor
}

// InAggregator returns the all-cells-on-aggregator placement (the
// aggregator engine baseline).
func InAggregator(g *topology.Graph) Placement {
	p := make(Placement, len(g.Cells))
	for i := range p {
		p[i] = Aggregator
	}
	return p
}

// Trivial returns the intuitive cut of §5.5 (Fig. 12): feature
// extraction (DWT chain + feature cells) on the sensor, classification
// (SVMs + fusion) on the aggregator — "the features are usually a
// compact representation of the data".
func Trivial(g *topology.Graph) Placement {
	p := make(Placement, len(g.Cells))
	for i, c := range g.Cells {
		switch c.Role {
		case topology.RoleSVM, topology.RoleFusion:
			p[i] = Aggregator
		default:
			p[i] = Sensor
		}
	}
	return p
}

// Problem carries everything the generator needs to price a placement.
type Problem struct {
	Graph *topology.Graph
	HW    *sensornode.Hardware
	Link  wireless.Model
	// SensingEnergy is Es of Eq. 1 (per event).
	SensingEnergy float64
	// AggDelay optionally returns a cell's software latency on the
	// aggregator. The delay-constrained sweep uses it to penalize
	// back-end-heavy cuts (an offloaded cell costs λ·AggDelay on the
	// F→cell edge), widening the candidate pool toward placements that
	// meet tight delay limits. nil disables the term; energy pricing is
	// unaffected either way.
	AggDelay func(topology.CellID) float64
	// Metrics receives the generator's runtime counters; nil falls back
	// to telemetry.Default().
	Metrics *telemetry.Registry
}

func (pr *Problem) metrics() *telemetry.Registry {
	if pr.Metrics != nil {
		return pr.Metrics
	}
	return telemetry.Default()
}

// SensorEnergy returns the per-event energy of the sensor node under
// placement p, computed directly from the energy model (Eqs. 1–3):
// in-sensor compute + wireless tx/rx crossing the cut + sensing + the
// final result transmission when fusion sits on the sensor.
func (pr *Problem) SensorEnergy(p Placement) float64 {
	g := pr.Graph
	e := pr.SensingEnergy
	for _, id := range p.SensorCells() {
		e += pr.HW.Energy(id)
	}
	// Raw segment is transmitted when any source reader is in the
	// aggregator.
	rawSent := false
	for _, id := range g.SourceReaders() {
		if !p.OnSensor(id) {
			rawSent = true
			break
		}
	}
	if rawSent {
		e += pr.Link.Cost(g.SourceBits).TxEnergy
	}
	// Each distinct payload crosses the link at most once per direction
	// (broadcast to all consumers on the other end).
	for _, tg := range g.TransferGroups() {
		fromS := p.OnSensor(tg.From)
		anyOther := false
		for _, c := range tg.Consumers {
			if p.OnSensor(c) != fromS {
				anyOther = true
				break
			}
		}
		if !anyOther {
			continue
		}
		if fromS {
			e += pr.Link.Cost(tg.Bits).TxEnergy
		} else {
			e += pr.Link.Cost(tg.Bits).RxEnergy
		}
	}
	if p.OnSensor(g.Output) {
		e += pr.Link.Cost(wireless.ValueBits).TxEnergy
	}
	return e
}

// GroupedOK reports whether p keeps all source readers on the same end
// (§3.2.2). Placements violating it are legal but provably suboptimal.
func (pr *Problem) GroupedOK(p Placement) bool {
	readers := pr.Graph.SourceReaders()
	if len(readers) == 0 {
		return true
	}
	first := p.OnSensor(readers[0])
	for _, id := range readers[1:] {
		if p.OnSensor(id) != first {
			return false
		}
	}
	return true
}

// stGraph builds the s-t graph with capacities energy + lambda·delay.
// Node layout: 0 = F (sensor), 1 = B (aggregator), 2 = D (raw data),
// 3+i = cell i, then two auxiliary nodes per multi-consumer transfer
// group (broadcast tx and rx pricing).
func (pr *Problem) stGraph(lambda float64) *maxflow.Graph {
	g := pr.Graph
	const (
		nodeF = 0
		nodeB = 1
		nodeD = 2
	)
	cellNode := func(id topology.CellID) int { return 3 + int(id) }
	groups := g.TransferGroups()
	multi := 0
	for _, tg := range groups {
		if len(tg.Consumers) > 1 {
			multi++
		}
	}
	fg := maxflow.New(3 + len(g.Cells) + 2*multi)
	nextAux := 3 + len(g.Cells)

	// F→D: cost of shipping the raw segment.
	raw := pr.Link.Cost(g.SourceBits)
	fg.AddEdge(nodeF, nodeD, raw.TxEnergy+lambda*raw.Delay)
	// D→reader (∞): the grouped constraint.
	for _, id := range g.SourceReaders() {
		fg.AddEdge(nodeD, cellNode(id), maxflow.Inf)
	}
	// cell→B: in-sensor compute energy (+ result transmission for the
	// output cell, paid whenever it stays on the sensor).
	//
	// The Lagrangian delay terms cover exactly the ADDITIVE components
	// of the end-to-end model: wireless air time (on transfer edges and
	// F→D) and, when an AggDelay model is present, the serialized
	// back-end latency of offloaded cells (on F→cell edges). Sensor-side
	// cell latencies are deliberately NOT penalized — in-sensor cells
	// are parallel hardware whose critical path is bounded by T_F, so a
	// sum-of-delays penalty would push the sweep away from exactly the
	// placements that meet tight limits. As λ grows the sweep therefore
	// walks from the energy-optimal cut toward the in-sensor engine,
	// tracing delay-feasible intermediates; each candidate's true delay
	// is still checked by the caller's delay model.
	for i := range g.Cells {
		id := topology.CellID(i)
		w := pr.HW.Energy(id)
		if id == g.Output {
			res := pr.Link.Cost(wireless.ValueBits)
			w += res.TxEnergy + lambda*res.Delay
		}
		fg.AddEdge(cellNode(id), nodeB, w)
		if lambda > 0 && pr.AggDelay != nil {
			if d := pr.AggDelay(id); d > 0 {
				fg.AddEdge(nodeF, cellNode(id), lambda*d)
			}
		}
	}
	// Data dependencies, one transfer group at a time. Single-consumer
	// groups use the paper's direct construction (u→v transmit, v→u
	// receive). Multi-consumer groups price the broadcast once per
	// direction via two auxiliary nodes:
	//
	//   u→T (tx), T→v (∞ each): T settles on the aggregator side, so
	//   u→T is cut exactly when u is on the sensor and some consumer is
	//   not;
	//   v→R (∞ each), R→u (rx): R is dragged to the sensor side by any
	//   sensor-side consumer, so R→u is cut exactly when u is on the
	//   aggregator and some consumer is not.
	for _, tg := range groups {
		tr := pr.Link.Cost(tg.Bits)
		u := cellNode(tg.From)
		if len(tg.Consumers) == 1 {
			v := cellNode(tg.Consumers[0])
			fg.AddEdge(u, v, tr.TxEnergy+lambda*tr.Delay)
			fg.AddEdge(v, u, tr.RxEnergy+lambda*tr.Delay)
			continue
		}
		txAux, rxAux := nextAux, nextAux+1
		nextAux += 2
		fg.AddEdge(u, txAux, tr.TxEnergy+lambda*tr.Delay)
		fg.AddEdge(rxAux, u, tr.RxEnergy+lambda*tr.Delay)
		for _, c := range tg.Consumers {
			fg.AddEdge(txAux, cellNode(c), maxflow.Inf)
			fg.AddEdge(cellNode(c), rxAux, maxflow.Inf)
		}
	}
	return fg
}

// placementFromSide converts a min-cut source side into a Placement.
func (pr *Problem) placementFromSide(side []bool) Placement {
	p := make(Placement, len(pr.Graph.Cells))
	for i := range pr.Graph.Cells {
		if side[3+i] {
			p[i] = Sensor
		} else {
			p[i] = Aggregator
		}
	}
	return p
}

// MinCut solves the unconstrained problem (§3.2.2) and returns the
// energy-optimal placement and its modeled sensor energy.
func (pr *Problem) MinCut() (Placement, float64) {
	fg := pr.stGraph(0)
	_, side, _ := fg.MinCut(0, 1)
	p := pr.placementFromSide(side)
	return p, pr.SensorEnergy(p)
}

// Result reports what the delay-constrained generator produced.
type Result struct {
	Placement Placement
	// Energy is the modeled per-event sensor energy.
	Energy float64
	// Delay is the simulated end-to-end delay returned by the caller's
	// delay model.
	Delay float64
	// Lambda is the Lagrangian weight of the winning cut (0 when the
	// unconstrained cut was already feasible).
	Lambda float64
	// Fallback is true when no swept cut met the constraint and the
	// better single-end engine was returned (§3.2.3: "we can always
	// guarantee the existence of a solution").
	Fallback bool
}

// lambdaLadder is the geometric sweep of Lagrangian weights. The scale
// spans energy(J)/delay(s) ratios from far below to far above the
// µJ-per-ms regime of the evaluated systems.
var lambdaLadder = func() []float64 {
	ls := []float64{0}
	for l := 1e-7; l <= 1e2; l *= 3 {
		ls = append(ls, l)
	}
	return ls
}()

// Generate solves the delay-constrained problem (§3.2.3). delayOf must
// return the simulated end-to-end per-event delay of a placement; limit
// is T_XPro. Generate returns the minimum-energy swept placement with
// delayOf(p) ≤ limit, or the better single-end engine if none qualifies.
func (pr *Problem) Generate(delayOf func(Placement) float64, limit float64) (Result, error) {
	if delayOf == nil {
		return Result{}, fmt.Errorf("partition: nil delay model")
	}
	if limit <= 0 {
		return Result{}, fmt.Errorf("partition: non-positive delay limit %v", limit)
	}
	m := pr.metrics()
	start := time.Now()
	mincutRuns := m.Counter("xpro_generate_mincut_runs_total",
		"Min-cut solves performed by the Automatic XPro Generator.")
	type cand struct {
		p      Placement
		lambda float64
	}
	var cands []cand
	seen := func(p Placement) bool {
		for _, c := range cands {
			if c.p.Equal(p) {
				return true
			}
		}
		return false
	}
	for _, l := range lambdaLadder {
		fg := pr.stGraph(l)
		_, side, _ := fg.MinCut(0, 1)
		mincutRuns.Inc()
		p := pr.placementFromSide(side)
		if !seen(p) {
			cands = append(cands, cand{p: p, lambda: l})
		}
	}
	// The Lagrangian sweep can jump over the feasibility boundary when
	// many cells share one energy/delay ratio (they all flip at the same
	// λ). Greedy repair fills that gap: walk each infeasible sweep cut
	// toward the limit by pulling back, one at a time, the offloaded
	// cell with the best delay reduction per unit of added energy.
	repairSteps := m.Counter("xpro_generate_repair_steps_total",
		"Greedy-repair placements explored to bridge Lagrangian feasibility gaps.")
	for _, c := range append([]cand(nil), cands...) {
		if delayOf(c.p) <= limit {
			continue
		}
		repaired := pr.greedyRepair(c.p, delayOf, limit)
		repairSteps.Add(float64(len(repaired)))
		for _, q := range repaired {
			if !seen(q) {
				cands = append(cands, cand{p: q, lambda: c.lambda})
			}
		}
	}
	m.Counter("xpro_generate_candidates_total",
		"Distinct candidate placements considered by the generator.").
		Add(float64(len(cands)))
	done := func(res Result) Result {
		m.Counter("xpro_generate_total",
			"Delay-constrained generator runs completed.").Inc()
		if res.Fallback {
			m.Counter("xpro_generate_fallback_total",
				"Generator runs that fell back to a single-end engine (§3.2.3).").Inc()
		}
		m.Histogram("xpro_generate_seconds",
			"Wall time of one generator run.", telemetry.DurationBuckets).
			Observe(time.Since(start).Seconds())
		m.Quantile("xpro_generate_wall_seconds",
			"Wall time of one generator run (windowed quantile sketch on host uptime).",
			0).ObserveWall(time.Since(start).Seconds())
		return res
	}

	best := Result{Energy: -1}
	for _, c := range cands {
		d := delayOf(c.p)
		if d > limit {
			continue
		}
		e := pr.SensorEnergy(c.p)
		if best.Energy < 0 || e < best.Energy {
			best = Result{Placement: c.p, Energy: e, Delay: d, Lambda: c.lambda}
		}
	}
	if best.Energy >= 0 {
		return done(best), nil
	}

	// Fallback: the better single-end engine. With limit = min(T_F, T_B)
	// at least one of the two is feasible by construction.
	var fallback Result
	fallback.Fallback = true
	for _, p := range []Placement{InSensor(pr.Graph), InAggregator(pr.Graph)} {
		d := delayOf(p)
		if d > limit*(1+1e-9) {
			continue
		}
		e := pr.SensorEnergy(p)
		if fallback.Placement == nil || e < fallback.Energy {
			fallback = Result{Placement: p, Energy: e, Delay: d, Fallback: true}
		}
	}
	if fallback.Placement == nil {
		return Result{}, fmt.Errorf("partition: delay limit %v infeasible even for single-end engines", limit)
	}
	return done(fallback), nil
}

// greedyRepair returns the trajectory of placements produced by moving
// cells from the aggregator back to the sensor, each step choosing the
// move with the best delay reduction per unit of added sensor energy,
// until the delay limit is met or no move reduces delay. The grouped
// source readers move as one unit.
func (pr *Problem) greedyRepair(start Placement, delayOf func(Placement) float64, limit float64) []Placement {
	g := pr.Graph
	readerSet := make(map[topology.CellID]bool)
	for _, id := range g.SourceReaders() {
		readerSet[id] = true
	}
	cur := append(Placement(nil), start...)
	curDelay := delayOf(cur)
	curEnergy := pr.SensorEnergy(cur)
	var out []Placement
	for step := 0; step < len(g.Cells) && curDelay > limit; step++ {
		type move struct {
			p      Placement
			delay  float64
			energy float64
		}
		var best *move
		tried := make(map[topology.CellID]bool)
		for _, id := range cur.AggregatorCells() {
			if tried[id] {
				continue
			}
			q := append(Placement(nil), cur...)
			if readerSet[id] {
				// Move the whole grouped set together.
				for _, r := range g.SourceReaders() {
					q[r] = Sensor
					tried[r] = true
				}
			} else {
				q[id] = Sensor
				tried[id] = true
			}
			d := delayOf(q)
			if d >= curDelay {
				continue
			}
			e := pr.SensorEnergy(q)
			if best == nil ||
				(e-curEnergy)/(curDelay-d) < (best.energy-curEnergy)/(curDelay-best.delay) {
				best = &move{p: q, delay: d, energy: e}
			}
		}
		if best == nil {
			break
		}
		cur, curDelay, curEnergy = best.p, best.delay, best.energy
		out = append(out, append(Placement(nil), cur...))
	}
	return out
}

// Sensitivity is the marginal cost of moving one cell to the other end.
type Sensitivity struct {
	Cell topology.CellID
	// DeltaEnergy is the sensor-energy change if only this cell flips
	// ends (grouped source readers flip as a unit and report the same
	// delta). Positive means the current side is the right one.
	DeltaEnergy float64
}

// Explain returns, for every cell, the energy cost of flipping it to the
// other end — the sensitivity analysis behind a generated cut. For a
// minimum cut every delta is ≥ 0 (up to float noise); large deltas mark
// load-bearing placement decisions, near-zero deltas mark ties.
func (pr *Problem) Explain(p Placement) []Sensitivity {
	g := pr.Graph
	base := pr.SensorEnergy(p)
	readerSet := make(map[topology.CellID]bool)
	for _, id := range g.SourceReaders() {
		readerSet[id] = true
	}
	out := make([]Sensitivity, len(g.Cells))
	var groupDelta float64
	groupDone := false
	for i := range g.Cells {
		id := topology.CellID(i)
		q := append(Placement(nil), p...)
		if readerSet[id] {
			if !groupDone {
				for _, r := range g.SourceReaders() {
					q[r] = flip(q[r])
				}
				groupDelta = pr.SensorEnergy(q) - base
				groupDone = true
			}
			out[i] = Sensitivity{Cell: id, DeltaEnergy: groupDelta}
			continue
		}
		q[id] = flip(q[id])
		out[i] = Sensitivity{Cell: id, DeltaEnergy: pr.SensorEnergy(q) - base}
	}
	return out
}

func flip(e End) End {
	if e == Sensor {
		return Aggregator
	}
	return Sensor
}

// CutEnergies prices the named cuts of Fig. 12 plus the unconstrained
// optimum, sorted by energy (cheapest first).
type NamedCut struct {
	Name      string
	Placement Placement
	Energy    float64
}

// NamedCuts evaluates the four cuts compared in §5.5.
func (pr *Problem) NamedCuts() []NamedCut {
	minP, minE := pr.MinCut()
	cuts := []NamedCut{
		{Name: "aggregator", Placement: InAggregator(pr.Graph)},
		{Name: "trivial", Placement: Trivial(pr.Graph)},
		{Name: "sensor", Placement: InSensor(pr.Graph)},
		{Name: "cross", Placement: minP, Energy: minE},
	}
	for i := range cuts[:3] {
		cuts[i].Energy = pr.SensorEnergy(cuts[i].Placement)
	}
	sort.SliceStable(cuts, func(i, j int) bool { return cuts[i].Energy < cuts[j].Energy })
	return cuts
}
