package admit

import (
	"fmt"
	"sync"
)

// BrownoutConfig parameterises the Brownout controller. Hysteresis
// comes from the Enter/Exit gap plus a minimum dwell in each state;
// probation mirrors the adaptive re-cut controller: shortly after
// entering, the queue delay must have actually improved or the
// brownout is rolled back (the cheap rung wasn't the bottleneck).
type BrownoutConfig struct {
	// EnterDelaySeconds: queue-delay EWMA above this makes the
	// fleet a candidate to brown out.
	EnterDelaySeconds float64
	// ExitDelaySeconds: EWMA below this makes a browned-out fleet
	// a candidate to recover. Must be < EnterDelaySeconds.
	ExitDelaySeconds float64
	// MinDwellSeconds: minimum time in either state before the
	// next transition, so the fleet can't flap.
	MinDwellSeconds float64
	// ProbationSeconds: how long after entering brownout to wait
	// before judging whether it helped.
	ProbationSeconds float64
	// ImprovementFactor: at the probation check the delay must be
	// below entryDelay × ImprovementFactor or the brownout rolls
	// back. In (0, 1].
	ImprovementFactor float64
	// LogCap bounds the in-memory event log (0 = DefaultLogCap).
	LogCap int
}

// DefaultLogCap is the event-log bound when BrownoutConfig.LogCap
// is zero.
const DefaultLogCap = 256

// DefaultBrownoutConfig returns the brownout parameters used by the
// fleet when overload protection is enabled without further tuning.
func DefaultBrownoutConfig() BrownoutConfig {
	return BrownoutConfig{
		EnterDelaySeconds: 0.050,
		ExitDelaySeconds:  0.010,
		MinDwellSeconds:   1.0,
		ProbationSeconds:  2.0,
		ImprovementFactor: 0.9,
	}
}

// Validate checks the configuration.
func (c BrownoutConfig) Validate() error {
	switch {
	case !(c.EnterDelaySeconds > 0) || !finite(c.EnterDelaySeconds):
		return fmt.Errorf("admit: EnterDelaySeconds must be finite and > 0, got %v", c.EnterDelaySeconds)
	case !(c.ExitDelaySeconds > 0) || !(c.ExitDelaySeconds < c.EnterDelaySeconds):
		return fmt.Errorf("admit: ExitDelaySeconds must be in (0, EnterDelaySeconds), got %v", c.ExitDelaySeconds)
	case c.MinDwellSeconds < 0 || !finite(c.MinDwellSeconds):
		return fmt.Errorf("admit: MinDwellSeconds must be finite and >= 0, got %v", c.MinDwellSeconds)
	case c.ProbationSeconds < 0 || !finite(c.ProbationSeconds):
		return fmt.Errorf("admit: ProbationSeconds must be finite and >= 0, got %v", c.ProbationSeconds)
	case !(c.ImprovementFactor > 0 && c.ImprovementFactor <= 1):
		return fmt.Errorf("admit: ImprovementFactor must be in (0, 1], got %v", c.ImprovementFactor)
	case c.LogCap < 0:
		return fmt.Errorf("admit: LogCap must be >= 0, got %d", c.LogCap)
	}
	return nil
}

// BrownoutEvent is one state transition in the brownout log. The
// log is the determinism artifact: two replays of the same seed
// must produce identical slices.
type BrownoutEvent struct {
	// TimeSeconds is the transition time on the caller's clock.
	TimeSeconds float64 `json:"t"`
	// Kind is "enter", "exit" or "rollback".
	Kind string `json:"kind"`
	// DelaySeconds is the queue-delay EWMA at transition time.
	DelaySeconds float64 `json:"delay_s"`
}

// Brownout couples sustained overload to the degradation ladder:
// while active, every engine in the fleet is forced onto its cheap
// in-sensor rung so service time (and therefore capacity) improves
// instead of the queue growing. It is a pure state machine over
// (time, queue-delay) observations — callers apply the decision.
type Brownout struct {
	mu  sync.Mutex
	cfg BrownoutConfig

	active     bool
	lastChange float64
	started    bool // lastChange valid
	entryDelay float64
	probation  bool // probation pending
	probDue    float64

	log     []BrownoutEvent
	dropped int
	enters  uint64
	exits   uint64
	backs   uint64
}

// NewBrownout builds a Brownout from cfg. cfg must Validate.
func NewBrownout(cfg BrownoutConfig) (*Brownout, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LogCap == 0 {
		cfg.LogCap = DefaultLogCap
	}
	return &Brownout{cfg: cfg}, nil
}

// Config returns the controller's configuration.
func (b *Brownout) Config() BrownoutConfig { return b.cfg }

// Active reports whether the fleet is currently browned out.
func (b *Brownout) Active() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// Observe advances the state machine with the queue-delay EWMA at
// time now. It returns (changed, active): changed is true when this
// observation transitioned the state, and active is the state after
// the observation. Callers apply side effects (forcing/releasing
// the cheap rung, bumping epochs, metrics) only when changed.
func (b *Brownout) Observe(now, delay float64) (changed, active bool) {
	if !finite(now) || !finite(delay) || delay < 0 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return false, b.active
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	dwellOK := !b.started || now-b.lastChange >= b.cfg.MinDwellSeconds
	if !b.active {
		if delay > b.cfg.EnterDelaySeconds && dwellOK {
			b.active = true
			b.started = true
			b.lastChange = now
			b.entryDelay = delay
			b.probation = b.cfg.ProbationSeconds > 0
			b.probDue = now + b.cfg.ProbationSeconds
			b.enters++
			b.append(BrownoutEvent{TimeSeconds: now, Kind: "enter", DelaySeconds: delay})
			return true, true
		}
		return false, false
	}
	// Probation: did browning out actually reduce the delay? If
	// not, the queue isn't service-time bound and the quality cost
	// buys nothing — roll back (and the dwell stops re-entry churn).
	if b.probation && now >= b.probDue {
		b.probation = false
		if delay > b.entryDelay*b.cfg.ImprovementFactor {
			b.active = false
			b.lastChange = now
			b.backs++
			b.append(BrownoutEvent{TimeSeconds: now, Kind: "rollback", DelaySeconds: delay})
			return true, false
		}
	}
	if delay < b.cfg.ExitDelaySeconds && dwellOK {
		b.active = false
		b.lastChange = now
		b.exits++
		b.append(BrownoutEvent{TimeSeconds: now, Kind: "exit", DelaySeconds: delay})
		return true, false
	}
	return false, true
}

func (b *Brownout) append(e BrownoutEvent) {
	if len(b.log) >= b.cfg.LogCap {
		b.log = b.log[1:]
		b.dropped++
	}
	b.log = append(b.log, e)
}

// Last returns the most recent transition, if any.
func (b *Brownout) Last() (BrownoutEvent, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.log) == 0 {
		return BrownoutEvent{}, false
	}
	return b.log[len(b.log)-1], true
}

// Events returns a copy of the bounded transition log and the
// number of events dropped to stay within the cap.
func (b *Brownout) Events() ([]BrownoutEvent, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BrownoutEvent, len(b.log))
	copy(out, b.log)
	return out, b.dropped
}

// Counts returns cumulative (enters, exits, rollbacks).
func (b *Brownout) Counts() (enters, exits, rollbacks uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.enters, b.exits, b.backs
}
