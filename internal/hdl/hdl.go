// Package hdl emits a synthesizable Verilog skeleton of an XPro
// instance's in-sensor analytic part.
//
// The paper implements functional cells "in Verilog with Verilog Compile
// Simulator" and synthesizes them with Design Compiler (§4.3). This
// generator produces the matching structural netlist for a generated
// placement: one module per in-sensor cell with the asynchronous
// micro-unit interface of Fig. 3 (data-ready handshake, enable-gated
// private clock, acknowledge), and a top-level module wiring the cells
// along the topology's data edges, with transmit/receive ports where
// payloads cross to the aggregator.
//
// The emitted cell bodies are behavioral stubs annotated with the
// characterized ALU mode, latency and energy — the starting point a
// hardware engineer fills in; the interfaces and wiring are complete.
package hdl

import (
	"fmt"
	"sort"
	"strings"

	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

// Width is the cell datapath width: Q16.16 (§4.4).
const Width = 32

// Ident sanitizes a cell name into a Verilog identifier
// ("dwt3/Kurt" → "dwt3_kurt").
func Ident(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	s := strings.Trim(b.String(), "_")
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		s = "u_" + s
	}
	return s
}

// GenerateVerilog renders the in-sensor analytic part of (g, p) as a
// Verilog skeleton. hw supplies the per-cell characterization embedded
// in the module comments.
func GenerateVerilog(g *topology.Graph, p partition.Placement, hw *sensornode.Hardware) (string, error) {
	if len(p) != len(g.Cells) {
		return "", fmt.Errorf("hdl: placement covers %d cells, graph has %d", len(p), len(g.Cells))
	}
	if err := g.Validate(); err != nil {
		return "", fmt.Errorf("hdl: %w", err)
	}
	sensorCells := p.SensorCells()
	if len(sensorCells) == 0 {
		return "", fmt.Errorf("hdl: placement has no in-sensor cells (nothing to synthesize)")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "// XPro in-sensor analytic part — generated netlist skeleton.\n")
	fmt.Fprintf(&b, "// %d functional cells on the sensor node, %d offloaded to the aggregator.\n", len(sensorCells), len(g.Cells)-len(sensorCells))
	fmt.Fprintf(&b, "// Datapath: Q16.16 (%d-bit); cell clock %s.\n\n", Width, "16 MHz")

	// One module per in-sensor cell (design rule 1, Fig. 3).
	for _, id := range sensorCells {
		c := g.Cells[id]
		mod := "xpro_" + Ident(c.Name)
		prof := hw.Profiles[id]
		fmt.Fprintf(&b, "// %s: role=%s mode=%s latency=%d cycles energy=%.1f pJ/event\n",
			c.Name, c.Role, hw.Modes[id], prof.Cycles, prof.Energy()*1e12)
		fmt.Fprintf(&b, "module %s #(parameter WIDTH = %d) (\n", mod, Width)
		fmt.Fprintf(&b, "    input  wire clk,\n")
		fmt.Fprintf(&b, "    input  wire enable,\n")
		ins := g.InEdges(id)
		for k, e := range ins {
			fmt.Fprintf(&b, "    input  wire data_ready_%d,\n", k)
			fmt.Fprintf(&b, "    input  wire [WIDTH*%d-1:0] in_%d,\n", e.Values, k)
		}
		fmt.Fprintf(&b, "    output reg  out_valid,\n")
		fmt.Fprintf(&b, "    output reg  [WIDTH*%d-1:0] out,\n", outWidthValues(c))
		fmt.Fprintf(&b, "    output wire ack\n")
		fmt.Fprintf(&b, ");\n")
		fmt.Fprintf(&b, "    // Asynchronous micro-unit (Fig. 3): idle until every\n")
		fmt.Fprintf(&b, "    // data_ready_* asserts, then wake the private clock and S-ALU.\n")
		fmt.Fprintf(&b, "    wire fire = enable")
		for k := range ins {
			fmt.Fprintf(&b, " & data_ready_%d", k)
		}
		fmt.Fprintf(&b, ";\n")
		fmt.Fprintf(&b, "    assign ack = out_valid;\n")
		fmt.Fprintf(&b, "    // TODO: %s datapath (%s mode).\n", c.Name, hw.Modes[id])
		fmt.Fprintf(&b, "    always @(posedge clk) begin\n")
		fmt.Fprintf(&b, "        if (fire) out_valid <= 1'b1;\n")
		fmt.Fprintf(&b, "    end\n")
		fmt.Fprintf(&b, "endmodule\n\n")
	}

	// Top-level wiring.
	fmt.Fprintf(&b, "module xpro_top #(parameter WIDTH = %d) (\n", Width)
	fmt.Fprintf(&b, "    input  wire clk,\n")
	fmt.Fprintf(&b, "    input  wire [WIDTH*%d-1:0] adc_segment,\n", g.SegLen)
	fmt.Fprintf(&b, "    input  wire adc_ready,\n")
	// Cross-end boundary ports.
	txPorts, rxPorts := boundary(g, p)
	for _, tp := range txPorts {
		fmt.Fprintf(&b, "    output wire [%d-1:0] tx_%s,\n", tp.bits, tp.name)
		fmt.Fprintf(&b, "    output wire tx_%s_valid,\n", tp.name)
	}
	for _, rp := range rxPorts {
		// Receive ports are already dequantized to the Q16.16 datapath
		// by the radio interface.
		fmt.Fprintf(&b, "    input  wire [WIDTH*%d-1:0] rx_%s,\n", rp.values, rp.name)
		fmt.Fprintf(&b, "    input  wire rx_%s_valid,\n", rp.name)
	}
	fmt.Fprintf(&b, "    output wire result_valid\n")
	fmt.Fprintf(&b, ");\n")

	// Wires per in-sensor producer.
	for _, id := range sensorCells {
		c := g.Cells[id]
		fmt.Fprintf(&b, "    wire [WIDTH*%d-1:0] w_%s;\n", outWidthValues(c), Ident(c.Name))
		fmt.Fprintf(&b, "    wire v_%s;\n", Ident(c.Name))
	}
	// Instantiations.
	for _, id := range sensorCells {
		c := g.Cells[id]
		mod := "xpro_" + Ident(c.Name)
		inst := "u_" + Ident(c.Name)
		fmt.Fprintf(&b, "    %s #(.WIDTH(WIDTH)) %s (\n        .clk(clk), .enable(1'b1),\n", mod, inst)
		for k, e := range g.InEdges(id) {
			var src, valid string
			switch {
			case e.From == topology.SourceID:
				src, valid = "adc_segment", "adc_ready"
			case p.OnSensor(e.From):
				src = "w_" + Ident(g.Cells[e.From].Name)
				valid = "v_" + Ident(g.Cells[e.From].Name)
				// DWT producers drive detail‖approx: slice the half this
				// consumer reads.
				if from := g.Cells[e.From]; from.Role == topology.RoleDWT {
					half := from.OutValues
					if e.Class == topology.PayloadApprox {
						src = fmt.Sprintf("%s[WIDTH*%d-1:WIDTH*%d]", src, 2*half, half)
					} else {
						src = fmt.Sprintf("%s[WIDTH*%d-1:0]", src, half)
					}
				}
			default:
				rxName := Ident(g.Cells[e.From].Name + "_" + e.Class.String())
				src = "rx_" + rxName
				valid = "rx_" + rxName + "_valid"
			}
			fmt.Fprintf(&b, "        .data_ready_%d(%s), .in_%d(%s),\n", k, valid, k, src)
		}
		fmt.Fprintf(&b, "        .out_valid(v_%s), .out(w_%s), .ack()\n    );\n", Ident(c.Name), Ident(c.Name))
	}
	// Transmit boundary assignments (the [bits-1:0] slice stands in for
	// the wire-format quantizer of the radio interface).
	for _, tp := range txPorts {
		fmt.Fprintf(&b, "    assign tx_%s = w_%s[%d-1:0];\n", tp.name, tp.producer, tp.bits)
		fmt.Fprintf(&b, "    assign tx_%s_valid = v_%s;\n", tp.name, tp.producer)
	}
	if p.OnSensor(g.Output) {
		fmt.Fprintf(&b, "    assign result_valid = v_%s;\n", Ident(g.Cells[g.Output].Name))
	} else {
		fmt.Fprintf(&b, "    assign result_valid = 1'b0; // classification completes on the aggregator\n")
	}
	fmt.Fprintf(&b, "endmodule\n")
	return b.String(), nil
}

type port struct {
	name     string
	producer string
	bits     int64
	values   int
}

// boundary lists the cross-end payload ports: tx for sensor→aggregator
// groups (plus the raw segment when the source group is offloaded and
// the classification result when fusion stays local), rx for
// aggregator→sensor groups.
func boundary(g *topology.Graph, p partition.Placement) (tx, rx []port) {
	for _, tg := range g.TransferGroups() {
		fromS := p.OnSensor(tg.From)
		crosses := false
		for _, c := range tg.Consumers {
			if p.OnSensor(c) != fromS {
				crosses = true
				break
			}
		}
		if !crosses {
			continue
		}
		name := Ident(g.Cells[tg.From].Name + "_" + tg.Class.String())
		pt := port{name: name, producer: Ident(g.Cells[tg.From].Name), bits: tg.Bits, values: tg.Values}
		if fromS {
			tx = append(tx, pt)
		} else {
			rx = append(rx, pt)
		}
	}
	if p.OnSensor(g.Output) {
		tx = append(tx, port{name: "result", producer: Ident(g.Cells[g.Output].Name), bits: wireless.ValueBits})
	}
	sort.Slice(tx, func(i, j int) bool { return tx[i].name < tx[j].name })
	sort.Slice(rx, func(i, j int) bool { return rx[i].name < rx[j].name })
	return tx, rx
}

// outWidthValues returns the number of WIDTH-wide values a cell drives.
func outWidthValues(c topology.Cell) int {
	if c.Role == topology.RoleDWT {
		return 2 * c.OutValues // detail ‖ approx
	}
	return c.OutValues
}
