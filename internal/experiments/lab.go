// Package experiments regenerates every table and figure of the paper's
// evaluation (§4–§5): Table 1 and Figures 4 and 8–13, plus the headline
// battery-life/delay summary. Each experiment is a function from a Lab —
// a cache of trained XPro instances for the six biosignal test cases —
// to a formatted Table whose rows mirror what the paper reports.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"xpro/internal/aggregator"
	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/ensemble"
	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

// Instance is one trained test case: dataset, ensemble, topology.
type Instance struct {
	Spec     biosig.CaseSpec
	Train    *biosig.Dataset
	Test     *biosig.Dataset
	Ens      *ensemble.Ensemble
	Graph    *topology.Graph
	Accuracy float64 // software-ensemble accuracy on the held-out 25%
}

// EngineSet holds the compared engines of one (case, process, link)
// configuration: the two single-end baselines, the trivial cut, and the
// delay-constrained cross-end engine produced by the Automatic XPro
// Generator.
type EngineSet struct {
	Inst *Instance
	Proc celllib.Process
	Link wireless.Model

	InAggregator *xsystem.System // "A"
	InSensor     *xsystem.System // "S"
	Trivial      *xsystem.System // the intuitive cut of Fig. 12
	CrossEnd     *xsystem.System // "C" (XPro)
	Gen          partition.Result
}

// Lab trains and caches instances and engine sets. Safe for concurrent
// use.
type Lab struct {
	// Config builds the ensemble-training configuration per seed.
	Config func(seed int64) ensemble.Config
	// SampleRateHz sets the event rate of every simulated system.
	SampleRateHz float64
	// Cases restricts the lab to a subset of Table 1 symbols (nil =
	// all six).
	Cases []string
	// ParallelWorkers sets the worker-pool width of the ext-parallel
	// experiment (0 = GOMAXPROCS).
	ParallelWorkers int
	// TierCount sets the tier-chain depth of the ext-multiway
	// experiment (0 = the canonical 3: sensor → hub → cloud).
	TierCount int

	mu        sync.Mutex
	instances map[string]*Instance
	engines   map[string]*EngineSet
}

// NewLab returns a lab running the scaled §4.4 protocol
// (ensemble.DefaultConfig) at the default sampling rate.
func NewLab() *Lab {
	return &Lab{Config: ensemble.DefaultConfig, SampleRateHz: sensornode.DefaultSampleRateHz}
}

// Symbols returns the case symbols this lab evaluates.
func (l *Lab) Symbols() []string {
	if len(l.Cases) > 0 {
		return l.Cases
	}
	syms := make([]string, 0, 6)
	for _, c := range biosig.TestCases() {
		syms = append(syms, c.Symbol)
	}
	return syms
}

// Instance trains (or returns the cached) instance for a case symbol.
func (l *Lab) Instance(sym string) (*Instance, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if inst, ok := l.instances[sym]; ok {
		return inst, nil
	}
	spec, err := biosig.CaseBySymbol(sym)
	if err != nil {
		return nil, err
	}
	d := biosig.Generate(spec)
	// §4.4: 75% train / 25% test.
	rng := rand.New(rand.NewSource(spec.Seed))
	train, test := d.Split(0.75, rng)
	ens, err := ensemble.Train(train, l.Config(spec.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: training %s: %w", sym, err)
	}
	acc, err := ens.Accuracy(test)
	if err != nil {
		return nil, err
	}
	g, err := topology.Build(ens, d.SegLen)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Spec: spec, Train: train, Test: test, Ens: ens, Graph: g, Accuracy: acc}
	if l.instances == nil {
		l.instances = make(map[string]*Instance)
	}
	l.instances[sym] = inst
	return inst, nil
}

// Instances returns all cases of the lab, training on demand.
func (l *Lab) Instances() ([]*Instance, error) {
	var out []*Instance
	for _, sym := range l.Symbols() {
		inst, err := l.Instance(sym)
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
	}
	return out, nil
}

// Engines builds (or returns the cached) engine set for one
// configuration. The cross-end engine is generated under the paper's
// delay constraint T_XPro = min(T_F, T_B) (§3.2.3).
func (l *Lab) Engines(sym string, proc celllib.Process, link wireless.Model) (*EngineSet, error) {
	key := fmt.Sprintf("%s/%v/%d", sym, proc, link.Index)
	l.mu.Lock()
	if es, ok := l.engines[key]; ok {
		l.mu.Unlock()
		return es, nil
	}
	l.mu.Unlock()

	inst, err := l.Instance(sym)
	if err != nil {
		return nil, err
	}
	cpu := aggregator.CortexA8()
	mk := func(p partition.Placement) (*xsystem.System, error) {
		return xsystem.New(inst.Graph, inst.Ens, proc, link, cpu, p, l.SampleRateHz)
	}
	a, err := mk(partition.InAggregator(inst.Graph))
	if err != nil {
		return nil, err
	}
	s, err := mk(partition.InSensor(inst.Graph))
	if err != nil {
		return nil, err
	}
	tr, err := mk(partition.Trivial(inst.Graph))
	if err != nil {
		return nil, err
	}
	limit := a.DelayPerEvent().Total()
	if d := s.DelayPerEvent().Total(); d < limit {
		limit = d
	}
	res, err := a.Problem().Generate(func(p partition.Placement) float64 {
		return a.DelayOf(p).Total()
	}, limit)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", key, err)
	}
	c, err := mk(res.Placement)
	if err != nil {
		return nil, err
	}
	es := &EngineSet{Inst: inst, Proc: proc, Link: link, InAggregator: a, InSensor: s, Trivial: tr, CrossEnd: c, Gen: res}
	l.mu.Lock()
	if l.engines == nil {
		l.engines = make(map[string]*EngineSet)
	}
	l.engines[key] = es
	l.mu.Unlock()
	return es, nil
}

// Clone returns a lab sharing l's trained instances but with an empty
// engine cache: repeated experiment runs through the clone re-execute
// the Automatic XPro Generator instead of returning cached engines.
// Benchmarks use this to measure regeneration cost without retraining.
func (l *Lab) Clone() *Lab {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := &Lab{Config: l.Config, SampleRateHz: l.SampleRateHz, Cases: l.Cases}
	c.instances = make(map[string]*Instance, len(l.instances))
	for k, v := range l.instances {
		c.instances[k] = v
	}
	return c
}

// lifetime returns sensor battery hours, panicking only on modeling
// bugs (power is always positive in these systems).
func lifetime(s *xsystem.System) float64 {
	h, err := s.SensorLifetimeHours()
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return h
}
