// Package svm implements the binary support vector machine used as the
// base classifier of XPro's random-subspace ensemble (§2.1, §4.4).
//
// The paper uses SVMs with a radial-basis-function (RBF) kernel as the
// base classifiers ("We choose a binary SVM classifier with radial basis
// function (RBF) as its kernel", §4.4) and cites the linear kernel as the
// limit of what a pure in-sensor engine can traditionally afford. Both
// kernels are provided. Training uses sequential minimal optimization
// (SMO) with a full kernel cache — training happens offline on the
// aggregator/workstation; only the resulting support vectors are
// compiled into functional cells.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"xpro/internal/fixed"
	"xpro/internal/linalg"
)

// KernelKind selects the kernel function.
type KernelKind int

const (
	// Linear is K(a,b) = a·b.
	Linear KernelKind = iota
	// RBF is K(a,b) = exp(−γ‖a−b‖²).
	RBF
)

func (k KernelKind) String() string {
	switch k {
	case Linear:
		return "linear"
	case RBF:
		return "rbf"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// Algorithm selects the dual optimizer.
type Algorithm int

const (
	// AlgSMO is Platt-style SMO with a randomized second choice — the
	// default, whose randomized behaviour is part of the calibrated
	// evaluation protocol.
	AlgSMO Algorithm = iota
	// AlgMVP is maximal-violating-pair working-set selection
	// (LIBSVM-style): deterministic and typically much faster on
	// overlapping training sets.
	AlgMVP
)

// Params configures SMO training.
type Params struct {
	Kernel KernelKind
	// Algorithm selects the optimizer (default AlgSMO).
	Algorithm Algorithm
	// C is the soft-margin penalty. Defaults to 1.
	C float64
	// Gamma is the RBF width. Defaults to 1/dim.
	Gamma float64
	// Tol is the KKT violation tolerance. Defaults to 1e-3.
	Tol float64
	// MaxPasses bounds full no-progress sweeps. Defaults to 5.
	MaxPasses int
	// Seed drives SMO's randomized second-choice heuristic.
	Seed int64
}

func (p Params) withDefaults(dim int) Params {
	if p.C == 0 {
		p.C = 1
	}
	if p.Gamma == 0 && dim > 0 {
		p.Gamma = 1 / float64(dim)
	}
	if p.Tol == 0 {
		p.Tol = 1e-3
	}
	if p.MaxPasses == 0 {
		p.MaxPasses = 5
	}
	return p
}

// Model is a trained binary SVM. Labels are −1/+1.
type Model struct {
	Kernel  KernelKind
	Gamma   float64
	Vectors [][]float64 // support vectors
	Coeffs  []float64   // αᵢ·yᵢ per support vector
	Bias    float64
	// W is the explicit weight vector, available for linear kernels
	// (collapsing the SVs to one dot product, as an in-sensor linear
	// SVM cell would).
	W []float64
}

// ErrBadTrainingSet reports an unusable training set.
var ErrBadTrainingSet = errors.New("svm: training set must contain both classes and equal-length rows")

func kernel(kind KernelKind, gamma float64, a, b []float64) float64 {
	switch kind {
	case RBF:
		var d2 float64
		for i := range a {
			d := a[i] - b[i]
			d2 += d * d
		}
		return math.Exp(-gamma * d2)
	default:
		return linalg.Dot(a, b)
	}
}

// Train fits an SVM to rows x with labels y ∈ {−1, +1} using the
// configured algorithm.
func Train(x [][]float64, y []int, p Params) (*Model, error) {
	if p.Algorithm == AlgMVP {
		return TrainMVP(x, y, p)
	}
	return trainSMO(x, y, p)
}

func trainSMO(x [][]float64, y []int, p Params) (*Model, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, ErrBadTrainingSet
	}
	dim := len(x[0])
	pos, neg := 0, 0
	for i, row := range x {
		if len(row) != dim {
			return nil, ErrBadTrainingSet
		}
		switch y[i] {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, fmt.Errorf("svm: label %d at row %d, want -1 or +1", y[i], i)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrBadTrainingSet
	}
	p = p.withDefaults(dim)
	rng := rand.New(rand.NewSource(p.Seed))

	// Full kernel matrix; the training sets here are ≤ ~1k rows.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := kernel(p.Kernel, p.Gamma, x[i], x[j])
			k[i][j], k[j][i] = v, v
		}
	}

	alpha := make([]float64, n)
	var b float64
	f := func(i int) float64 {
		s := -b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * float64(y[j]) * k[i][j]
			}
		}
		return s
	}

	passes := 0
	for passes < p.MaxPasses {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - float64(y[i])
			if (float64(y[i])*ei < -p.Tol && alpha[i] < p.C) || (float64(y[i])*ei > p.Tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := f(j) - float64(y[j])
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(p.C, p.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-p.C)
					hi = math.Min(p.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*k[i][j] - k[i][i] - k[j][j]
				if eta >= 0 {
					continue
				}
				alpha[j] = aj - float64(y[j])*(ei-ej)/eta
				if alpha[j] > hi {
					alpha[j] = hi
				} else if alpha[j] < lo {
					alpha[j] = lo
				}
				if math.Abs(alpha[j]-aj) < 1e-7 {
					alpha[j] = aj
					continue
				}
				alpha[i] = ai + float64(y[i]*y[j])*(aj-alpha[j])
				b1 := b + ei + float64(y[i])*(alpha[i]-ai)*k[i][i] + float64(y[j])*(alpha[j]-aj)*k[i][j]
				b2 := b + ej + float64(y[i])*(alpha[i]-ai)*k[i][j] + float64(y[j])*(alpha[j]-aj)*k[j][j]
				switch {
				case alpha[i] > 0 && alpha[i] < p.C:
					b = b1
				case alpha[j] > 0 && alpha[j] < p.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	m := &Model{Kernel: p.Kernel, Gamma: p.Gamma, Bias: -b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			m.Vectors = append(m.Vectors, append([]float64(nil), x[i]...))
			m.Coeffs = append(m.Coeffs, alpha[i]*float64(y[i]))
		}
	}
	if p.Kernel == Linear {
		m.W = make([]float64, dim)
		for s, v := range m.Vectors {
			for d := range v {
				m.W[d] += m.Coeffs[s] * v[d]
			}
		}
	}
	return m, nil
}

// Decision returns the real-valued decision function at x
// (positive → class +1).
func (m *Model) Decision(x []float64) float64 {
	if m.Kernel == Linear && m.W != nil {
		return linalg.Dot(m.W, x) + m.Bias
	}
	s := m.Bias
	for i, v := range m.Vectors {
		s += m.Coeffs[i] * kernel(m.Kernel, m.Gamma, v, x)
	}
	return s
}

// Predict returns the predicted label (−1 or +1) at x.
func (m *Model) Predict(x []float64) int {
	if m.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// Accuracy returns the fraction of rows classified correctly.
func (m *Model) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i, row := range x {
		if m.Predict(row) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// NumSV returns the support-vector count, which sizes the in-sensor SVM
// functional cell ("some basic SVM classifiers have fewer supporting
// vectors due to the good data separability of the dataset", §5.5).
func (m *Model) NumSV() int { return len(m.Vectors) }

// Dim returns the input dimensionality.
func (m *Model) Dim() int {
	if len(m.Vectors) > 0 {
		return len(m.Vectors[0])
	}
	return len(m.W)
}

// DecisionFixed evaluates the decision function in Q16.16 fixed point,
// exactly as the in-sensor SVM functional cell computes it: the S-ALU's
// multiply/accumulate plus the super-computation exp primitive for the
// RBF kernel (§3.1.1).
func (m *Model) DecisionFixed(x []fixed.Num) fixed.Num {
	if m.Kernel == Linear && m.W != nil {
		acc := fixed.FromFloat(m.Bias)
		for d, w := range m.W {
			acc = fixed.Add(acc, fixed.Mul(fixed.FromFloat(w), x[d]))
		}
		return acc
	}
	gamma := fixed.FromFloat(m.Gamma)
	acc := fixed.FromFloat(m.Bias)
	for i, v := range m.Vectors {
		var d2 fixed.Num
		for d := range v {
			diff := fixed.Sub(fixed.FromFloat(v[d]), x[d])
			d2 = fixed.Add(d2, fixed.Mul(diff, diff))
		}
		kv := fixed.Exp(fixed.Neg(fixed.Mul(gamma, d2)))
		acc = fixed.Add(acc, fixed.Mul(fixed.FromFloat(m.Coeffs[i]), kv))
	}
	return acc
}

// PredictFixed returns the fixed-point predicted label (−1 or +1).
func (m *Model) PredictFixed(x []fixed.Num) int {
	if m.DecisionFixed(x) >= 0 {
		return 1
	}
	return -1
}
