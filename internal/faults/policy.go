package faults

import (
	"fmt"
	"math"
)

// Backoff is a capped exponential retry schedule in modeled seconds:
// attempt n (0-based retry index) waits Base·Factor^n, clamped to Max.
// Waits are deterministic (no jitter): the runtime replays seeded runs
// bit-identically, and the modeled clock has no thundering herd to
// spread.
type Backoff struct {
	Base   float64
	Max    float64
	Factor float64
}

// Delay returns the wait before retry attempt n (0-based).
func (b Backoff) Delay(n int) float64 {
	if b.Base <= 0 {
		return 0
	}
	f := b.Factor
	if f < 1 {
		f = 2
	}
	d := b.Base * math.Pow(f, float64(n))
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	return d
}

// Validate rejects NaN or negative backoff parameters.
func (b Backoff) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{{"base", b.Base}, {"max", b.Max}, {"factor", b.Factor}} {
		if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
			return fmt.Errorf("faults: backoff %s %v must be finite and non-negative", v.name, v.val)
		}
	}
	return nil
}

// BreakerState is the circuit breaker's tri-state.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits one probe send after the cooldown.
	BreakerHalfOpen
	// BreakerOpen fails fast: no cross-end traffic is attempted.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is a circuit breaker over cross-end transfers, clocked by
// modeled time. It trips open after Threshold consecutive final
// failures (a transfer that exhausted its retries), fails fast while
// open, and half-opens after Cooldown modeled seconds to admit one
// probe; a successful probe closes it, a failed probe reopens it.
//
// Breaker is not safe for concurrent use; the engine serializes events
// through it (the modeled clock is single-threaded anyway).
type Breaker struct {
	Threshold int
	Cooldown  float64
	// OnTransition, when set, observes every state change.
	OnTransition func(from, to BreakerState)

	clock    *Clock
	state    BreakerState
	failures int
	openedAt float64
}

// NewBreaker builds a closed breaker. threshold < 1 disables tripping.
func NewBreaker(threshold int, cooldown float64, clock *Clock) (*Breaker, error) {
	if clock == nil {
		return nil, fmt.Errorf("faults: NewBreaker needs a clock")
	}
	if math.IsNaN(cooldown) || cooldown < 0 {
		return nil, fmt.Errorf("faults: breaker cooldown %v must be non-negative", cooldown)
	}
	return &Breaker{Threshold: threshold, Cooldown: cooldown, clock: clock}, nil
}

func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}

// State returns the breaker's effective state at the clock's current
// time, performing the open → half-open transition when the cooldown
// has elapsed.
func (b *Breaker) State() BreakerState {
	if b.state == BreakerOpen && b.clock.Now() >= b.openedAt+b.Cooldown {
		b.transition(BreakerHalfOpen)
	}
	return b.state
}

// Allow reports whether cross-end traffic may be attempted now: true
// when closed or half-open (the half-open attempt is the probe).
func (b *Breaker) Allow() bool { return b.State() != BreakerOpen }

// RecordSuccess notes a successful cross-end transfer: it resets the
// failure streak and closes a half-open breaker.
func (b *Breaker) RecordSuccess() {
	b.failures = 0
	if b.State() == BreakerHalfOpen {
		b.transition(BreakerClosed)
	}
}

// RecordFailure notes a final transfer failure (retries exhausted). A
// half-open probe failure reopens immediately; a closed breaker trips
// once the streak reaches Threshold.
func (b *Breaker) RecordFailure() {
	b.failures++
	switch b.State() {
	case BreakerHalfOpen:
		b.openedAt = b.clock.Now()
		b.transition(BreakerOpen)
	case BreakerClosed:
		if b.Threshold > 0 && b.failures >= b.Threshold {
			b.openedAt = b.clock.Now()
			b.transition(BreakerOpen)
		}
	}
}

// Failures returns the current consecutive-failure streak.
func (b *Breaker) Failures() int { return b.failures }

// BreakerSnapshot is the serializable state of a Breaker: everything a
// crash would wipe. OpenedAt is meaningful only while State is
// BreakerOpen.
type BreakerSnapshot struct {
	State    BreakerState
	Failures int
	OpenedAt float64
}

// Snapshot captures the breaker's durable state. The open → half-open
// transition is NOT forced first: the snapshot records the raw state,
// and a restore at a later clock time performs the lazy transition
// exactly as the uninterrupted breaker would have.
func (b *Breaker) Snapshot() BreakerSnapshot {
	return BreakerSnapshot{State: b.state, Failures: b.failures, OpenedAt: b.openedAt}
}

// Restore rewinds the breaker to a snapshot. The state change (if any)
// fires OnTransition, so gauges and estimators tracking the breaker
// stay truthful through a recovery. Invalid snapshots are rejected.
func (b *Breaker) Restore(s BreakerSnapshot) error {
	switch s.State {
	case BreakerClosed, BreakerHalfOpen, BreakerOpen:
	default:
		return fmt.Errorf("faults: breaker snapshot has invalid state %d", int(s.State))
	}
	if s.Failures < 0 {
		return fmt.Errorf("faults: breaker snapshot has negative failure streak %d", s.Failures)
	}
	if math.IsNaN(s.OpenedAt) || math.IsInf(s.OpenedAt, 0) || s.OpenedAt < 0 {
		return fmt.Errorf("faults: breaker snapshot opened-at %v must be finite and non-negative", s.OpenedAt)
	}
	b.failures = s.Failures
	b.openedAt = s.OpenedAt
	b.transition(s.State)
	return nil
}

// Policy bundles the engine's resilience knobs: how long one event may
// take (modeled), how transfers retry, and when the breaker trips.
type Policy struct {
	// Deadline is the per-event modeled time budget in seconds. When
	// the budget is exhausted mid-event, remaining cross-end transfers
	// are abandoned and the event degrades.
	Deadline float64
	// MaxRetries caps the resilience layer's re-sends per transfer
	// (each re-send is itself a full link-layer attempt sequence).
	MaxRetries int
	// Backoff spaces the re-sends.
	Backoff Backoff
	// BreakerThreshold trips the circuit breaker after that many
	// consecutive final transfer failures; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay in modeled seconds.
	BreakerCooldown float64
	// MinVotes is the minimum number of base-classifier scores required
	// to fuse a partial result (default 1).
	MinVotes int
}

// DefaultPolicy returns the engine's default resilience policy: a
// 50 ms modeled deadline, two retries with 1 ms → 8 ms backoff, and a
// breaker tripping after 3 consecutive drops with a 5 s cooldown.
func DefaultPolicy() Policy {
	return Policy{
		Deadline:         50e-3,
		MaxRetries:       2,
		Backoff:          Backoff{Base: 1e-3, Max: 8e-3, Factor: 2},
		BreakerThreshold: 3,
		BreakerCooldown:  5,
		MinVotes:         1,
	}
}

// Validate rejects NaN, infinite or negative policy parameters.
func (p Policy) Validate() error {
	if math.IsNaN(p.Deadline) || math.IsInf(p.Deadline, 0) || p.Deadline < 0 {
		return fmt.Errorf("faults: policy deadline %v must be finite and non-negative", p.Deadline)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("faults: policy retry limit %d must be non-negative", p.MaxRetries)
	}
	if err := p.Backoff.Validate(); err != nil {
		return err
	}
	if p.BreakerThreshold < 0 {
		return fmt.Errorf("faults: breaker threshold %d must be non-negative", p.BreakerThreshold)
	}
	if math.IsNaN(p.BreakerCooldown) || math.IsInf(p.BreakerCooldown, 0) || p.BreakerCooldown < 0 {
		return fmt.Errorf("faults: breaker cooldown %v must be finite and non-negative", p.BreakerCooldown)
	}
	if p.MinVotes < 0 {
		return fmt.Errorf("faults: minimum vote count %d must be non-negative", p.MinVotes)
	}
	return nil
}
