// Package sensornode models the front-end of the XPro system: the
// wearable sensor's specialized hardware executing the in-sensor
// analytic part.
//
// Each functional cell placed on the sensor is an independent
// asynchronous micro-unit (design rule 1, Fig. 3) characterized by
// internal/celllib; this package selects the per-cell hardware profile
// (the energy-minimal monotonic ALU mode, design rule 2) for a topology
// graph, and models the sensing front end, whose energy "can be reduced
// to an extremely small level compared to the other two components"
// (§3.2.1, Eq. 1).
package sensornode

import (
	"fmt"

	"xpro/internal/celllib"
	"xpro/internal/topology"
)

// SensingPower is the biosignal acquisition front end (amplifier + SAR
// ADC class, §3.2.1): small enough that Eq. 1 reduces to compute +
// wireless, but still accounted.
const SensingPower = 2e-6 // W

// DefaultSampleRateHz is the biosignal sampling rate. §3.1.2: wearable
// systems "monitor and analyze the sparse biosignal events at low
// sampling rates with typical values of several thousand of hertz".
const DefaultSampleRateHz = 2048.0

// EventsPerSecond returns the segment-analysis event rate for a given
// segment length at the given sampling rate.
func EventsPerSecond(segLen int, sampleRateHz float64) (float64, error) {
	if segLen < 1 || sampleRateHz <= 0 {
		return 0, fmt.Errorf("sensornode: invalid segment length %d or rate %v", segLen, sampleRateHz)
	}
	return sampleRateHz / float64(segLen), nil
}

// SensingEnergyPerEvent returns Es of Eq. 1: the acquisition energy of
// one segment.
func SensingEnergyPerEvent(segLen int, sampleRateHz float64) (float64, error) {
	ev, err := EventsPerSecond(segLen, sampleRateHz)
	if err != nil {
		return 0, err
	}
	return SensingPower / ev, nil
}

// Hardware is the characterized in-sensor implementation of a topology:
// one profile per cell, at a fixed process node.
type Hardware struct {
	Process  celllib.Process
	Profiles []celllib.Profile // indexed by CellID
	Modes    []celllib.Mode    // chosen ALU mode per cell
}

// Characterize selects the energy-optimal ALU mode for every cell of g
// (design rule 2) at the given process node and returns the resulting
// hardware model.
func Characterize(g *topology.Graph, proc celllib.Process) *Hardware {
	hw := &Hardware{
		Process:  proc,
		Profiles: make([]celllib.Profile, len(g.Cells)),
		Modes:    make([]celllib.Mode, len(g.Cells)),
	}
	for i, c := range g.Cells {
		m, p := celllib.BestMode(c.Spec, proc)
		hw.Modes[i], hw.Profiles[i] = m, p
	}
	return hw
}

// CharacterizeWithMode forces a single ALU mode on every cell — the
// ablation of design rule 2 (which picks the per-component energy
// optimum). Comparing its totals against Characterize quantifies what
// mode selection buys.
func CharacterizeWithMode(g *topology.Graph, proc celllib.Process, mode celllib.Mode) *Hardware {
	hw := &Hardware{
		Process:  proc,
		Profiles: make([]celllib.Profile, len(g.Cells)),
		Modes:    make([]celllib.Mode, len(g.Cells)),
	}
	for i, c := range g.Cells {
		hw.Modes[i] = mode
		hw.Profiles[i] = celllib.Characterize(c.Spec, mode, proc)
	}
	return hw
}

// Energy returns the per-event compute energy of cell id on the sensor.
func (h *Hardware) Energy(id topology.CellID) float64 { return h.Profiles[id].Energy() }

// Delay returns the activation latency of cell id on the sensor.
func (h *Hardware) Delay(id topology.CellID) float64 { return h.Profiles[id].Delay() }

// TotalComputeEnergy sums the energy of the given subset of cells — the
// Ep term of Eq. 2 for an in-sensor analytic part.
func (h *Hardware) TotalComputeEnergy(ids []topology.CellID) float64 {
	var e float64
	for _, id := range ids {
		e += h.Energy(id)
	}
	return e
}
