package eventsim

import (
	"math"
	"testing"

	"xpro/internal/faults"
)

// An outage window covering the whole schedule horizon defers every
// link transfer to the window's end: the trace shows stall activities,
// the finish time grows past the clean schedule, and the event violates
// a deadline the clean schedule meets.
func TestSimulateLinkOutageDelaysEvent(t *testing.T) {
	in, _, err := syntheticInput(3)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if clean.StallTime() != 0 {
		t.Fatalf("clean schedule has stall time %v", clean.StallTime())
	}
	crossing := false
	for _, a := range clean.Activities {
		if a.Kind == KindTransfer {
			crossing = true
		}
	}
	if !crossing {
		t.Skip("synthetic placement has no crossing transfer")
	}

	const outageEnd = 1.0 // far beyond the clean sub-millisecond schedule
	in.Faults = &faults.Plan{Windows: []faults.Window{
		{Kind: faults.LinkOutage, Start: 0, End: outageEnd},
	}}
	faulty, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Finish <= clean.Finish {
		t.Errorf("outage finish %v not after clean %v", faulty.Finish, clean.Finish)
	}
	if faulty.Finish < outageEnd {
		t.Errorf("transfers ran during the outage: finish %v < %v", faulty.Finish, outageEnd)
	}
	if faulty.StallTime() == 0 {
		t.Error("outage left no stall time in the trace")
	}
	limit := clean.Finish * 2
	if clean.ViolatesDeadline(limit) {
		t.Error("clean schedule should meet twice its own finish")
	}
	if !faulty.ViolatesDeadline(limit) {
		t.Error("outage schedule should violate the clean deadline")
	}
	// Stalls are bookkeeping, not work: busy time excludes them.
	for res, busy := range faulty.BusyTime() {
		if busy > faulty.Finish {
			t.Errorf("resource %s busy %v exceeds finish %v", res, busy, faulty.Finish)
		}
	}
}

// The Start offset shifts the event on the plan's absolute timeline: an
// event scheduled after the outage window sees a clean run.
func TestSimulateStartOffsetEscapesWindow(t *testing.T) {
	in, _, err := syntheticInput(3)
	if err != nil {
		t.Fatal(err)
	}
	in.Faults = &faults.Plan{Windows: []faults.Window{
		{Kind: faults.LinkOutage, Start: 0, End: 1},
	}}
	in.Start = 2 // the whole event runs after the outage
	shifted, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.StallTime() != 0 {
		t.Errorf("event after the window stalled %v", shifted.StallTime())
	}
}

// Loss bursts inflate transfer durations via retransmissions, sampled
// deterministically from FaultSeed.
func TestSimulateBurstDeterministic(t *testing.T) {
	in, _, err := syntheticInput(3)
	if err != nil {
		t.Fatal(err)
	}
	in.Faults = &faults.Plan{Windows: []faults.Window{
		{Kind: faults.LossBurst, Start: 0, End: 10, Loss: 0.8},
	}}
	in.FaultSeed = 5
	a, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Finish-b.Finish) > 1e-15 {
		t.Errorf("same seed diverged: %v vs %v", a.Finish, b.Finish)
	}
	clean := in
	clean.Faults = nil
	c, err := Simulate(clean)
	if err != nil {
		t.Fatal(err)
	}
	if a.Finish < c.Finish {
		t.Errorf("burst schedule %v finished before clean %v", a.Finish, c.Finish)
	}
}

// Brownout windows defer sensor cells; stall windows defer aggregator
// cells.
func TestSimulateBrownoutAndStall(t *testing.T) {
	in, _, err := syntheticInput(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []faults.Kind{faults.Brownout, faults.AggStall} {
		fin := in
		fin.Faults = &faults.Plan{Windows: []faults.Window{{Kind: kind, Start: 0, End: 0.5}}}
		tr, err := Simulate(fin)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if tr.StallTime() == 0 {
			t.Errorf("%v window produced no stalls", kind)
		}
		if tr.Finish < 0.5 {
			t.Errorf("%v: finish %v inside the window", kind, tr.Finish)
		}
	}
}
