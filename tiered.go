package xpro

import (
	"fmt"
	"sync"

	"xpro/internal/adaptive"
	"xpro/internal/partition"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

// This file is the public N-tier placement surface. The paper's
// generator cuts the functional topology across TWO ends (sensor and
// aggregator); PlanTiers generalizes that cut to a chain of tiers —
// sensor → hub(s) → cloud — solved by the multiway optimizer of
// internal/partition. The plan is a planning/pricing object: the
// functional runtime keeps executing the engine's 2-end cut (the
// plan's tier-0 boundary collapses onto it), while energy, traffic and
// re-cut decisions are modeled per tier and per hop.

// TierLevel is one tier of a plan's report.
type TierLevel struct {
	// Name labels the tier (sensor, hub, hub2, ..., cloud).
	Name string
	// Cells is how many functional cells the plan runs on this tier.
	Cells int
	// ComputeJ, TxJ, RxJ are the tier's unweighted energies per event.
	ComputeJ float64
	TxJ      float64
	RxJ      float64
	// Weight is the tier's share of the weighted objective (1 for the
	// battery-bound sensor, 0 for the wall-powered cloud).
	Weight float64
}

// TierPlanReport prices a plan's current assignment.
type TierPlanReport struct {
	// Tiers has one entry per tier, bottom (sensor) first.
	Tiers []TierLevel
	// HopDataBits / HopAirSeconds are per-hop traffic and serialized
	// air time per event, hop h connecting tier h to h+1.
	HopDataBits   []int64
	HopAirSeconds []float64
	// WeightedCostJ is the k-way objective of the assignment.
	WeightedCostJ float64
	// BiPartitionCostJ is the best placement expressible with a single
	// cut of the same chain — what the paper's 2-end generator could
	// do. WeightedCostJ never exceeds it.
	BiPartitionCostJ float64
	// Exact reports whether the assignment is the enumerated optimum
	// (small topologies) or the refined heuristic (large ones).
	Exact bool
}

// TierDecision is one entry of a plan's decision log: a re-cut, a
// degradation or a full re-solve, with the assignment it installed.
// The log is deterministic — a seeded run replays it bit-identically,
// across process restarts and checkpoint/recover cycles.
type TierDecision struct {
	// Op is "recut", "degrade", "resolve" or "pin". The tier-collapse
	// ladder of an armed plan logs its rung changes here too: a
	// collapse is a "degrade", a climb back up a "resolve".
	Op string
	// Hop is the re-cut hop (recut), the cap tier (degrade, and ladder
	// climbs logged as resolve) or -1 (full re-solve).
	Hop int
	// Loss and Outage are the channel estimate the decision priced
	// (recut only).
	Loss, Outage float64
	// Moved reports whether the assignment changed.
	Moved bool
	// Assignment is the per-cell tier after the decision.
	Assignment []int
	// CostJ is the weighted objective after the decision.
	CostJ float64
}

// String renders the decision in the canonical replay-log form used by
// determinism batteries.
func (d TierDecision) String() string {
	return fmt.Sprintf("op=%s hop=%d loss=%.17g outage=%.17g moved=%v assign=%v cost=%.17g",
		d.Op, d.Hop, d.Loss, d.Outage, d.Moved, d.Assignment, d.CostJ)
}

// TierPlan is a solved N-tier placement of an engine's topology plus
// its decision log. Methods are safe for concurrent use; every
// mutation appends to the log.
type TierPlan struct {
	mu  sync.Mutex
	ts  *xsystem.TieredSystem
	opt partition.TierPlacement // the solved optimum, for Resolve
	ex  bool
	log []TierDecision
	// eng is the engine the plan was solved for: installs bump its
	// serving epoch so memoized views (Network.Report, SLO) rebuild.
	eng *Engine
	// rt is the per-hop fault-tolerance runtime (nil until Arm).
	rt *tierRuntime
}

// PlanTiers solves the engine's topology over a k-tier chain: the
// engine's own radio as the body hop, Wireless Model 3 uplinks above
// it, and the default tier weights of partition.DefaultChain. k = 0
// takes the canonical 3 (sensor → hub → cloud); k must otherwise be at
// least 2. The engine itself is not modified.
func (e *Engine) PlanTiers(k int) (*TierPlan, error) {
	if k == 0 {
		k = 3
	}
	if k < 2 {
		return nil, fmt.Errorf("xpro: %d tiers (need >= 2)", k)
	}
	sys := e.sys()
	tiers, hops := partition.DefaultChain(k, sys.Link, wireless.Model3())
	ts, err := xsystem.NewTiered(sys, tiers, hops)
	if err != nil {
		return nil, err
	}
	res, err := ts.Tiered.Solve()
	if err != nil {
		return nil, err
	}
	return &TierPlan{ts: ts, opt: ts.TierPlacement.Clone(), ex: res.Exact, eng: e}, nil
}

// Assignment returns the per-cell tier of the plan's current
// placement, indexed by cell ID.
func (p *TierPlan) Assignment() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return assignmentOf(p.ts.TierPlacement)
}

func assignmentOf(tp partition.TierPlacement) []int {
	out := make([]int, len(tp))
	for i, t := range tp {
		out[i] = int(t)
	}
	return out
}

// Report prices the plan's current assignment per tier and per hop.
func (p *TierPlan) Report() (TierPlanReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := p.ts.TierReport()
	_, biC, _, err := p.ts.Tiered.BestBiPartition()
	if err != nil {
		return TierPlanReport{}, err
	}
	out := TierPlanReport{
		HopDataBits:      append([]int64(nil), rep.HopDataBits...),
		HopAirSeconds:    append([]float64(nil), rep.HopAirSeconds...),
		WeightedCostJ:    rep.WeightedCost,
		BiPartitionCostJ: biC,
		Exact:            p.ex,
	}
	for _, te := range rep.Tiers {
		out.Tiers = append(out.Tiers, TierLevel{
			Name: te.Name, Cells: te.Cells,
			ComputeJ: te.Compute, TxJ: te.Tx, RxJ: te.Rx, Weight: te.Weight,
		})
	}
	return out, nil
}

// RecutHop re-optimizes the boundary of one hop under an observed
// channel (loss and outage in [0, 1]): the hop's link is derated by
// the expected retransmission factor and the exact single-hop re-cut
// of internal/partition decides which hop-adjacent cells to move. The
// decision is appended to the log; the returned flag reports whether
// the assignment changed.
func (p *TierPlan) RecutHop(hop int, loss, outage float64) (bool, error) {
	if !(loss >= 0 && loss <= 1) || !(outage >= 0 && outage <= 1) {
		return false, fmt.Errorf("xpro: loss %v / outage %v outside [0,1]", loss, outage)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	est := adaptive.Estimate{Loss: loss, Outage: outage, Samples: 1}
	next, _, err := adaptive.HopRecut(p.ts.Tiered, p.ts.TierPlacement, hop, est, 64)
	if err != nil {
		return false, err
	}
	moved := !next.Equal(p.ts.TierPlacement)
	if moved {
		if err := p.install(next); err != nil {
			return false, err
		}
	}
	p.logDecision(TierDecision{Op: "recut", Hop: hop, Loss: loss, Outage: outage, Moved: moved})
	return moved, nil
}

// Resolve re-runs the full multiway solve and installs its optimum —
// the recovery step after degradations when the air clears.
func (p *TierPlan) Resolve() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	moved := !p.opt.Equal(p.ts.TierPlacement)
	if moved {
		if err := p.install(p.opt); err != nil {
			return err
		}
	}
	p.logDecision(TierDecision{Op: "resolve", Hop: -1, Moved: moved})
	return nil
}

// PinAll is the operator override: it homes every cell on one tier,
// discarding the solved optimum until the next Resolve. Demos and
// fault drills use it to force traffic across every hop (pin to the
// top tier) regardless of where the optimizer parked the cells. The
// pin is rejected while an armed ladder is collapsed below full
// height — it would silently bypass the evidence-driven cap.
func (p *TierPlan) PinAll(tier int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if k := p.ts.Tiered.K(); tier < 0 || tier >= k {
		return fmt.Errorf("xpro: pin tier %d outside chain of %d tiers", tier, k)
	}
	if p.rt != nil && p.rt.steady != p.rt.fullCap() {
		return fmt.Errorf("xpro: cannot pin while the tier ladder is collapsed to rung %d", p.rt.steady)
	}
	next := partition.AllAt(p.ts.Graph, partition.Tier(tier))
	moved := !next.Equal(p.ts.TierPlacement)
	if moved {
		if err := p.install(next); err != nil {
			return err
		}
	}
	p.logDecision(TierDecision{Op: "pin", Hop: tier, Moved: moved})
	return nil
}

// install swaps the plan onto placement next. Callers hold p.mu.
func (p *TierPlan) install(next partition.TierPlacement) error {
	ts, err := p.ts.WithTierPlacement(next)
	if err != nil {
		return err
	}
	p.swap(ts)
	// A manual move while the ladder serves the full chain re-homes the
	// ladder too: the new placement is what collapses cap from now on.
	if p.rt != nil && p.rt.steady == p.rt.fullCap() {
		p.rt.uncapped = next.Clone()
	}
	return nil
}

// swap points the plan at a rebuilt sibling and bumps the engine's
// serving epoch: a re-cut (or collapse rung) changes the per-tier
// pricing that memoized views — Network.Report, the SLO caches — were
// built from, so they must rebuild. Callers hold p.mu.
func (p *TierPlan) swap(ts *xsystem.TieredSystem) {
	p.ts = ts
	if p.eng != nil {
		p.eng.epoch.Add(1)
	}
}

// logDecision stamps the current assignment and cost onto d and
// appends it. Callers hold p.mu.
func (p *TierPlan) logDecision(d TierDecision) {
	d.Assignment = assignmentOf(p.ts.TierPlacement)
	d.CostJ = p.ts.Tiered.Cost(p.ts.TierPlacement)
	p.log = append(p.log, d)
}

// Log returns a copy of the plan's decision log.
func (p *TierPlan) Log() []TierDecision {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TierDecision, len(p.log))
	for i, d := range p.log {
		d.Assignment = append([]int(nil), d.Assignment...)
		out[i] = d
	}
	return out
}

// PlanTiers plans every node of a body-sensor network onto the same
// k-tier chain: each subject's sensor keeps its own body hop, and the
// hub/cloud tiers are where the fleet's shared infrastructure lives.
// Plans are keyed by node name; iteration over the sorted names gives
// a deterministic fleet view.
func (n *Network) PlanTiers(k int) (map[string]*TierPlan, error) {
	out := make(map[string]*TierPlan, len(n.names))
	for _, name := range n.names {
		plan, err := n.engines[name].PlanTiers(k)
		if err != nil {
			return nil, fmt.Errorf("xpro: planning tiers for %s: %w", name, err)
		}
		out[name] = plan
	}
	return out, nil
}
