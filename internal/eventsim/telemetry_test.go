package eventsim

import (
	"testing"

	"xpro/internal/telemetry"
	"xpro/internal/wireless"
)

// counterValue extracts one counter's value from a registry snapshot.
func counterValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

func TestSimulateMetrics(t *testing.T) {
	in, _, err := syntheticInput(7)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	in.Metrics = reg
	in.SensorEnergyPerEvent = 3e-6
	tr, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, reg, "xpro_eventsim_events_total"); got != 1 {
		t.Errorf("events_total = %v, want 1", got)
	}
	if got := counterValue(t, reg, "xpro_eventsim_activities_total"); got != float64(len(tr.Activities)) {
		t.Errorf("activities_total = %v, want %d", got, len(tr.Activities))
	}
	if got := counterValue(t, reg, "xpro_eventsim_sensor_energy_joules_total"); got != 3e-6 {
		t.Errorf("sensor_energy_joules_total = %v, want 3e-6", got)
	}
	// A second event accumulates.
	if _, err := Simulate(in); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, reg, "xpro_eventsim_events_total"); got != 2 {
		t.Errorf("events_total after 2 runs = %v, want 2", got)
	}
	if got := counterValue(t, reg, "xpro_eventsim_sensor_energy_joules_total"); got != 6e-6 {
		t.Errorf("battery drain after 2 runs = %v, want 6e-6", got)
	}
}

func TestSimulateLossyChannel(t *testing.T) {
	in, _, err := syntheticInput(3)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := wireless.NewChannel(in.Link, 0.5, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	in.Metrics = reg
	in.Channel = ch
	lossy, err := Simulate(in)
	if err != nil {
		t.Fatal(err)
	}
	if counterValue(t, reg, "xpro_eventsim_transfers_total") > 0 {
		// With 50% loss some packet almost surely retransmits.
		if got := counterValue(t, reg, "xpro_eventsim_retransmissions_total"); got == 0 {
			t.Error("retransmissions_total = 0 on a 50% lossy channel with transfers")
		}
		if lossy.Finish < clean.Finish-1e-12 {
			t.Errorf("lossy finish %v earlier than clean %v", lossy.Finish, clean.Finish)
		}
	}
}
