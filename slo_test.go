package xpro

import (
	"bufio"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sort"
	"testing"
)

// sloSoak replays a seeded loss storm through an adaptive engine with
// the integrity gate armed, salting the stream with flatline segments
// so every degradation rung — full, partial, fallbacks, quarantine —
// appears. It returns the engine plus the exact per-event oracle the
// SLO report is checked against.
type sloSoak struct {
	eng *Engine
	// latencies / energies are every observed event's modeled costs, in
	// arrival order (answered and quarantined alike).
	latencies, energies []float64
	answered            int
	quarantined         int
	degradedAnswers     int
}

func runSLOSoak(t *testing.T, events int) *sloSoak {
	t.Helper()
	eng, err := New(Config{
		Case: "E2", Wireless: WirelessModel3,
		FaultPlan: lossStormPlan(7), Adaptive: DefaultAdaptive(),
		Integrity: DefaultIntegrity(),
		// One window covering the whole soak, so the windowed quantiles
		// can be checked against the full-run oracle.
		SLOWindowSeconds: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	test := eng.TestSet()
	flat := make([]float64, len(test[0].Samples))
	s := &sloSoak{eng: eng}
	for i := 0; i < events; i++ {
		samples := test[i%len(test)].Samples
		if i%10 == 9 {
			samples = flat // a detached electrode: the admission gate quarantines it
		}
		res, err := eng.ClassifyResult(samples)
		if err != nil {
			if !errors.Is(err, ErrSuspectData) {
				t.Fatalf("event %d: %v (faults must degrade, not error)", i, err)
			}
			s.quarantined++
		} else {
			s.answered++
			if res.Degraded {
				s.degradedAnswers++
			}
		}
		s.latencies = append(s.latencies, res.SpentSeconds)
		s.energies = append(s.energies, res.SensorEnergyJoules)
	}
	if s.quarantined == 0 {
		t.Fatal("soak produced no quarantines; the stream salt is broken")
	}
	if s.degradedAnswers == 0 {
		t.Fatal("soak produced no degraded answers; the loss storm is broken")
	}
	return s
}

// rankError is the estimate's normalized rank distance from the exact
// q-quantile of the sorted oracle (ties span an interval, distance 0
// inside it).
func rankError(sorted []float64, v, q float64) float64 {
	n := float64(len(sorted))
	lo := float64(sort.SearchFloat64s(sorted, v))
	hi := float64(sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1))))
	target := q * n
	switch {
	case target < lo:
		return (lo - target) / n
	case target > hi:
		return (target - hi) / n
	}
	return 0
}

// The tentpole acceptance: on a seeded chaos soak, the windowed SLO
// quantiles match an exact-sort oracle within 1% rank error, the
// ladder accounting is exact, and every quarantine / re-cut / breaker
// transition appears exactly once in the structured event log with a
// trace ID that resolves in the span tracer.
func TestSLOSoakAcceptance(t *testing.T) {
	const events = 400
	s := runSLOSoak(t, events)
	eng, obs := s.eng, s.eng.Observer()
	rep := eng.SLOReport()

	t.Run("oracle", func(t *testing.T) {
		if got := int(rep.TotalEvents); got != events {
			t.Fatalf("TotalEvents = %d, want %d", got, events)
		}
		if rep.WindowEvents != rep.TotalEvents {
			t.Fatalf("WindowEvents = %d != TotalEvents %d under an all-covering window",
				rep.WindowEvents, rep.TotalEvents)
		}
		lat := append([]float64(nil), s.latencies...)
		sort.Float64s(lat)
		for _, q := range []struct {
			p float64
			v float64
		}{{0.5, rep.LatencyP50Seconds}, {0.95, rep.LatencyP95Seconds}, {0.99, rep.LatencyP99Seconds}} {
			if re := rankError(lat, q.v, q.p); re > 0.01 {
				t.Errorf("latency p%.0f = %v: rank error %.4f > 1%%", q.p*100, q.v, re)
			}
		}
		en := append([]float64(nil), s.energies...)
		sort.Float64s(en)
		if re := rankError(en, rep.EnergyP99Joules, 0.99); re > 0.01 {
			t.Errorf("energy p99 = %v: rank error %.4f > 1%%", rep.EnergyP99Joules, re)
		}
		var sum float64
		for _, e := range s.energies {
			sum += e
		}
		mean := sum / float64(len(s.energies))
		if math.Abs(rep.EnergyPerEventJoules-mean) > 1e-12+1e-9*mean {
			t.Errorf("EnergyPerEventJoules = %v, oracle mean %v", rep.EnergyPerEventJoules, mean)
		}
		if mean <= 0 {
			t.Error("oracle mean energy is zero: energy accounting lost the events")
		}

		wantSuspect := float64(s.quarantined) / float64(events)
		if math.Abs(rep.SuspectRate-wantSuspect) > 1e-12 {
			t.Errorf("SuspectRate = %v, want %v", rep.SuspectRate, wantSuspect)
		}
		wantDegraded := float64(s.degradedAnswers) / float64(s.answered)
		if math.Abs(rep.DegradedRatio-wantDegraded) > 1e-12 {
			t.Errorf("DegradedRatio = %v, want %v", rep.DegradedRatio, wantDegraded)
		}
		if got := int(rep.Modes[ModeSuspectData.String()]); got != s.quarantined {
			t.Errorf("Modes[suspect-data] = %d, want %d", got, s.quarantined)
		}
		var modeSum uint64
		for _, v := range rep.Modes {
			modeSum += v
		}
		if int(modeSum) != events {
			t.Errorf("Σ Modes = %d, want %d (every event on exactly one rung)", modeSum, events)
		}
		if rep.Breaker == "" {
			t.Error("Breaker state missing on a resilient engine")
		}
	})

	t.Run("event-log", func(t *testing.T) {
		evs := obs.Events()
		spans := make(map[uint64]Span)
		for _, sp := range obs.Spans() {
			spans[sp.Event] = sp
		}
		counts := map[string]int{}
		seenTrace := map[uint64]string{}
		var lastSeq uint64
		for _, ev := range evs {
			counts[ev.Kind]++
			if ev.Seq <= lastSeq {
				t.Fatalf("event log out of order: seq %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if ev.Trace == 0 {
				t.Fatalf("event %+v has no trace ID", ev)
			}
			if prev, dup := seenTrace[ev.Trace]; dup {
				t.Fatalf("trace %d appears twice (%s then %s): not exactly-once", ev.Trace, prev, ev.Kind)
			}
			seenTrace[ev.Trace] = ev.Kind
			sp, ok := spans[ev.Trace]
			if !ok {
				t.Fatalf("event %s trace %d has no span", ev.Kind, ev.Trace)
			}
			if ev.Kind == "quarantine" && !(sp.Suspect && sp.Degraded) {
				t.Errorf("quarantine trace %d: span not marked suspect+degraded: %+v", ev.Trace, sp)
			}
		}
		if counts["classify"] != s.answered {
			t.Errorf("classify events = %d, want %d", counts["classify"], s.answered)
		}
		if counts["quarantine"] != s.quarantined {
			t.Errorf("quarantine events = %d, want %d", counts["quarantine"], s.quarantined)
		}
		recuts := counts["recut-swap"] + counts["recut-rollback"]
		if want := len(eng.RecutLog()); recuts != want {
			t.Errorf("recut events = %d, want %d (decision log)", recuts, want)
		}
		if counts["recut-swap"] == 0 {
			t.Error("no recut-swap event under the loss storm")
		}
		if got, want := counts["breaker"], int(obs.MetricValue("xpro_breaker_transitions_total")); got != want {
			t.Errorf("breaker events = %d, want %d (transitions counter)", got, want)
		}
		retained, recorded, dropped := obs.EventLogStats()
		if dropped != 0 || int(recorded) != len(evs) || retained != len(evs) {
			t.Errorf("event log stats retained=%d recorded=%d dropped=%d for %d events",
				retained, recorded, dropped, len(evs))
		}
	})

	t.Run("replay", func(t *testing.T) {
		// The SLO report is a pure function of the seeded run.
		s2 := runSLOSoak(t, events)
		rep2 := s2.eng.SLOReport()
		if rep.LatencyP50Seconds != rep2.LatencyP50Seconds ||
			rep.LatencyP99Seconds != rep2.LatencyP99Seconds ||
			rep.EnergyPerEventJoules != rep2.EnergyPerEventJoules ||
			rep.SuspectRate != rep2.SuspectRate {
			t.Errorf("seeded replay diverged:\n  %+v\n  %+v", rep, rep2)
		}
	})
}

// A plain engine (no Resilience) lands its constant modeled costs on
// the SLO series too, observed on host uptime.
func TestSLOReportPlainEngine(t *testing.T) {
	eng, err := New(Config{Case: "C1"})
	if err != nil {
		t.Fatal(err)
	}
	test := eng.TestSet()
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := eng.Classify(test[i].Samples); err != nil {
			t.Fatal(err)
		}
	}
	rep := eng.SLOReport()
	if rep.TotalEvents != n {
		t.Fatalf("TotalEvents = %d, want %d", rep.TotalEvents, n)
	}
	want := eng.Report().DelayPerEventSeconds
	if rep.LatencyP50Seconds != want || rep.LatencyP99Seconds != want {
		t.Errorf("plain-engine quantiles (%v, %v) != modeled delay %v",
			rep.LatencyP50Seconds, rep.LatencyP99Seconds, want)
	}
	if got := eng.Report().SensorEnergyPerEvent; math.Abs(rep.EnergyPerEventJoules-got) > 1e-15 {
		t.Errorf("plain-engine energy %v != modeled per-event energy %v", rep.EnergyPerEventJoules, got)
	}
	if rep.Breaker != "" {
		t.Errorf("plain engine reports breaker %q", rep.Breaker)
	}
	if rep.DegradedRatio != 0 || rep.SuspectRate != 0 {
		t.Errorf("clean run reports degraded=%v suspect=%v", rep.DegradedRatio, rep.SuspectRate)
	}
	if h := eng.Health(); h.Status != "ok" {
		t.Errorf("healthy engine reports %+v", h)
	}
}

// Polling the memoized reports when no event has landed must stay
// within a small allocation budget — the endpoints are poll-cheap.
func TestSLOReportPollAllocBudget(t *testing.T) {
	eng, err := New(Config{Case: "C1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Classify(eng.TestSet()[0].Samples); err != nil {
		t.Fatal(err)
	}
	eng.SLOReport() // warm the memo
	if allocs := testing.AllocsPerRun(200, func() { eng.SLOReport() }); allocs > 8 {
		t.Errorf("memoized SLOReport allocates %.1f/op, budget 8", allocs)
	}
	if h := eng.Health(); h.Status != "ok" {
		t.Fatalf("unexpected health %+v", h)
	}
	if allocs := testing.AllocsPerRun(200, func() { eng.Health() }); allocs > 8 {
		t.Errorf("memoized Health allocates %.1f/op, budget 8", allocs)
	}
}

func TestNetworkReportPollAllocBudget(t *testing.T) {
	nw := testFleet(t)
	if _, err := nw.Report(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { nw.Report() }); allocs > 8 {
		t.Errorf("memoized Network.Report allocates %.1f/op, budget 8", allocs)
	}
	if _, err := nw.SLOReport(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() { nw.SLOReport() }); allocs > 40 {
		t.Errorf("memoized Network.SLOReport allocates %.1f/op, budget 40", allocs)
	}
}

func testFleet(t *testing.T) *Network {
	t.Helper()
	engines := map[string]*Engine{}
	for _, sym := range []string{"C1", "E1"} {
		e, err := New(Config{Case: sym})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := e.Classify(e.TestSet()[i].Samples); err != nil {
				t.Fatal(err)
			}
		}
		engines[sym] = e
	}
	nw, err := NewNetwork(engines)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// Fleet SLO: quantiles over the union of node windows, ladder counts
// summed, battery headroom per node against the bottleneck.
func TestNetworkSLOReport(t *testing.T) {
	nw := testFleet(t)
	rep, err := nw.SLOReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalEvents != 6 {
		t.Fatalf("TotalEvents = %d, want 6", rep.TotalEvents)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("Nodes = %v, want 2 entries", rep.Nodes)
	}
	if rep.BottleneckNode == "" || rep.BottleneckHours <= 0 {
		t.Fatalf("bottleneck missing: %+v", rep)
	}
	sawBottleneck := false
	for name, node := range rep.Nodes {
		if node.LifetimeHours <= 0 {
			t.Errorf("%s: lifetime %v", name, node.LifetimeHours)
		}
		if node.HeadroomHours < 0 {
			t.Errorf("%s: negative headroom %v", name, node.HeadroomHours)
		}
		if name == rep.BottleneckNode {
			sawBottleneck = true
			if node.HeadroomHours != 0 {
				t.Errorf("bottleneck %s has headroom %v", name, node.HeadroomHours)
			}
			if node.LifetimeHours != rep.BottleneckHours {
				t.Errorf("bottleneck lifetime %v != %v", node.LifetimeHours, rep.BottleneckHours)
			}
		}
	}
	if !sawBottleneck {
		t.Errorf("bottleneck %q not among nodes", rep.BottleneckNode)
	}
	// The fleet p50 lies between the two nodes' constant delays, and the
	// fleet p99 is their max — the union, not an average.
	var delays []float64
	for _, node := range rep.Nodes {
		delays = append(delays, node.LatencyP50Seconds)
	}
	sort.Float64s(delays)
	if rep.LatencyP99Seconds != delays[len(delays)-1] {
		t.Errorf("fleet p99 %v != max node delay %v", rep.LatencyP99Seconds, delays[len(delays)-1])
	}
	if rep.LatencyP50Seconds < delays[0] || rep.LatencyP50Seconds > delays[len(delays)-1] {
		t.Errorf("fleet p50 %v outside node range %v", rep.LatencyP50Seconds, delays)
	}
	if got := rep.Modes[ModeFull.String()]; got != rep.TotalEvents {
		t.Errorf("Modes[full] = %d, want %d on a clean fleet", got, rep.TotalEvents)
	}
	if h := nw.Health(); h.Status != "ok" {
		t.Errorf("clean fleet health %+v", h)
	}

	// Mutating a returned report must not leak into the memo.
	rep.Modes["full"] = 999
	rep.Nodes["C1"] = NodeSLO{}
	rep2, err := nw.SLOReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Modes["full"] == 999 || rep2.Nodes["C1"].LifetimeHours == 0 {
		t.Error("caller mutation leaked into the memoized fleet report")
	}
}

// /slo, /healthz and /events are served by the introspection server,
// for engines and fleets alike; a degraded engine answers 503.
func TestSLOEndpoints(t *testing.T) {
	eng, err := New(Config{Case: "C1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Classify(eng.TestSet()[i].Samples); err != nil {
			t.Fatal(err)
		}
	}
	obs := eng.Observer()
	addr, err := obs.StartIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer obs.StopIntrospection()

	var rep SLOReport
	getJSON(t, addr, "/slo", http.StatusOK, &rep)
	if rep.TotalEvents != 3 {
		t.Errorf("/slo TotalEvents = %d, want 3", rep.TotalEvents)
	}
	var h Health
	getJSON(t, addr, "/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Errorf("/healthz = %+v, want ok", h)
	}
	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev LogEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("/events line %d: %v", lines, err)
		}
		lines++
	}
	// A plain engine logs no ladder events; the endpoint must still
	// serve well-formed (possibly empty) NDJSON.
	if _, recorded, _ := obs.EventLogStats(); lines != int(recorded) {
		t.Errorf("/events served %d lines, log recorded %d", lines, recorded)
	}

	// A hard outage degrades every answer: /healthz flips to 503.
	down, err := New(Config{Case: "C1", FaultPlan: outagePlan(3)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := down.ClassifyResult(down.TestSet()[i].Samples); err != nil {
			t.Fatal(err)
		}
	}
	dobs := down.Observer()
	daddr, err := dobs.StartIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dobs.StopIntrospection()
	var dh Health
	getJSON(t, daddr, "/healthz", http.StatusServiceUnavailable, &dh)
	if dh.Status != "degraded" {
		t.Errorf("outage /healthz = %+v, want degraded", dh)
	}
	if len(dobs.Events()) == 0 {
		t.Error("outage run logged no events")
	}
}

func TestNetworkSLOEndpoints(t *testing.T) {
	nw := testFleet(t)
	obs := nw.Observer()
	addr, err := obs.StartIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer obs.StopIntrospection()
	var rep NetworkSLOReport
	getJSON(t, addr, "/slo", http.StatusOK, &rep)
	if rep.TotalEvents != 6 || len(rep.Nodes) != 2 {
		t.Errorf("/slo = %+v, want 6 events over 2 nodes", rep)
	}
	var h Health
	getJSON(t, addr, "/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Errorf("/healthz = %+v, want ok", h)
	}
}

func getJSON(t *testing.T, addr, path string, wantCode int, into any) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

func BenchmarkSLOReport(b *testing.B) {
	eng, err := New(Config{Case: "C1"})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Classify(eng.TestSet()[0].Samples); err != nil {
		b.Fatal(err)
	}
	eng.SLOReport()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.SLOReport()
	}
}

func BenchmarkNetworkSLOReport(b *testing.B) {
	engines := map[string]*Engine{}
	for _, sym := range []string{"C1", "E1"} {
		e, err := New(Config{Case: sym})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Classify(e.TestSet()[0].Samples); err != nil {
			b.Fatal(err)
		}
		engines[sym] = e
	}
	nw, err := NewNetwork(engines)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := nw.SLOReport(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.SLOReport(); err != nil {
			b.Fatal(err)
		}
	}
}
