package frame

import "fmt"

// ImputePolicy selects how values lost with their frames (beyond the
// retry budget) are repaired before the pipeline consumes the payload.
type ImputePolicy int

const (
	// HoldLast repeats the most recent delivered value (leading gaps
	// take the first delivered value). The default: biosignal segments
	// are locally smooth, so sample-and-hold is cheap and safe.
	HoldLast ImputePolicy = iota
	// Linear interpolates linearly between the delivered neighbors of a
	// gap; edge gaps hold the nearest delivered value.
	Linear
	// Zero fills lost values with 0.
	Zero
)

func (p ImputePolicy) String() string {
	switch p {
	case HoldLast:
		return "hold-last"
	case Linear:
		return "linear"
	case Zero:
		return "zero"
	default:
		return fmt.Sprintf("ImputePolicy(%d)", int(p))
	}
}

// ParsePolicy maps a policy name ("hold-last", "linear", "zero") to its
// ImputePolicy. The empty string is HoldLast.
func ParsePolicy(s string) (ImputePolicy, error) {
	switch s {
	case "", "hold-last":
		return HoldLast, nil
	case "linear":
		return Linear, nil
	case "zero":
		return Zero, nil
	default:
		return HoldLast, fmt.Errorf("frame: unknown imputation policy %q (have hold-last, linear, zero)", s)
	}
}

// Impute fills values[i] in place wherever missing[i] is true, using
// policy p, and returns the number of values imputed. A fully missing
// payload imputes to zeros under every policy (there is nothing to hold
// or interpolate).
func Impute(values []float64, missing []bool, p ImputePolicy) int {
	n := len(values)
	if len(missing) < n {
		n = len(missing)
	}
	count := 0
	for i := 0; i < n; i++ {
		if missing[i] {
			count++
		}
	}
	if count == 0 {
		return 0
	}
	switch p {
	case Zero:
		for i := 0; i < n; i++ {
			if missing[i] {
				values[i] = 0
			}
		}
	case Linear:
		prev := -1 // index of the last delivered value
		for i := 0; i <= n; i++ {
			if i < n && missing[i] {
				continue
			}
			// values[prev+1 : i] is one contiguous gap.
			for j := prev + 1; j < i && j < n; j++ {
				switch {
				case prev >= 0 && i < n:
					t := float64(j-prev) / float64(i-prev)
					values[j] = values[prev] + t*(values[i]-values[prev])
				case prev >= 0:
					values[j] = values[prev] // trailing gap: hold
				case i < n:
					values[j] = values[i] // leading gap: hold backward
				default:
					values[j] = 0 // nothing delivered at all
				}
			}
			prev = i
		}
	default: // HoldLast
		last := 0.0
		haveLast := false
		// Leading gap: hold the first delivered value backward.
		for i := 0; i < n; i++ {
			if !missing[i] {
				last, haveLast = values[i], true
				break
			}
		}
		for i := 0; i < n; i++ {
			if missing[i] {
				if !haveLast {
					values[i] = 0
					continue
				}
				values[i] = last
			} else {
				last = values[i]
			}
		}
	}
	return count
}

// RxReport describes how one payload arrived on the receive side of the
// link: the frame tally and, for corrupt-but-delivered transports, the
// exact damage so the functional simulation can decode what the
// receiver actually saw. A nil report means a pristine arrival.
type RxReport struct {
	// Frames is the number of frames (transceiver packets) the payload
	// was split into.
	Frames int
	// CorruptDetected counts frames the CRC rejected; each consumed a
	// transmit/receive attempt and its energy, exactly like a loss.
	CorruptDetected int
	// CorruptDelivered counts frames delivered carrying bit errors the
	// transport could not detect (unframed transports only: with the
	// CRC armed this is always zero).
	CorruptDelivered int
	// Duplicates counts duplicated frames the reassembler dropped
	// (framed) or that smeared into a neighboring slot (unframed).
	Duplicates int
	// Reordered counts frames that arrived out of order and were
	// recovered by sequence number (framed) or swapped value blocks in
	// place (unframed).
	Reordered int
	// LostFrames counts frames still missing after the retry budget;
	// their values are imputed downstream.
	LostFrames int
	// Imputed is filled by the consumer after imputation ran.
	Imputed int
	// CorruptValues maps a value index within the payload to the XOR
	// mask applied to its wire code word (unframed bit flips).
	CorruptValues map[int]uint64
	// Moved maps a destination value index to the source index whose
	// wire code the receiver decoded into it (unframed duplication and
	// reordering smears).
	Moved map[int]int
	// Missing lists the value indices that were lost with their frames
	// and must be imputed.
	Missing []int
}

// Dirty reports whether the payload arrived different from what was
// sent: undetected corruption, smeared slots, or missing values. A
// payload with only *detected* (and retried) corruption is not dirty.
func (r *RxReport) Dirty() bool {
	if r == nil {
		return false
	}
	return r.CorruptDelivered > 0 || len(r.CorruptValues) > 0 || len(r.Moved) > 0 || len(r.Missing) > 0
}
