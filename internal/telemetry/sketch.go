package telemetry

import (
	"math"
	"sort"
)

// Sketch is a mergeable streaming quantile sketch: a fixed-depth
// compactor hierarchy (the deterministic cousin of KLL / fixed-depth
// CKMS). Values stream into a level-0 buffer; when a level overflows
// its fixed capacity it is sorted and every other element is promoted
// to the next level with doubled weight, alternating the starting
// parity so successive compactions cancel each other's rank bias.
//
// Properties the SLO layer leans on:
//
//   - Bounded memory: at most K items per level, ~log2(n/K) levels.
//   - Deterministic: the same value stream produces the same sketch,
//     so seeded soaks replay bit-identically.
//   - Mergeable: Merge folds another sketch in level-by-level, and
//     sketch(a)+sketch(b) agrees with sketch(a‖b) within the rank
//     error bound — fleet-wide quantiles are per-engine sketches
//     merged at query time.
//   - Accurate: empirical rank error at K=512 stays well under 1% of n
//     for 1e5 observations (pinned by TestSketchRankError).
//
// A Sketch is not safe for concurrent use; Quantile wraps it with a
// mutex. The zero value is not usable; construct with NewSketch.
type Sketch struct {
	k      int
	levels [][]float64 // levels[h] items carry weight 1<<h
	parity []bool      // next compaction's promotion offset per level
	count  uint64      // observations (not weight: exact Add count)
	sum    float64
	min    float64
	max    float64
}

// DefaultSketchK is the per-level item capacity used when a caller
// does not choose one: rank error ≲ 0.3% of n at 1e5 observations,
// ~40 KiB of float64s fully loaded.
const DefaultSketchK = 512

// NewSketch creates an empty sketch with per-level capacity k
// (non-positive k takes DefaultSketchK).
func NewSketch(k int) *Sketch {
	if k <= 0 {
		k = DefaultSketchK
	}
	if k < 8 {
		k = 8
	}
	return &Sketch{
		k:      k,
		levels: [][]float64{make([]float64, 0, k+1)},
		parity: []bool{false},
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Add records one observation. NaN is ignored.
func (s *Sketch) Add(v float64) {
	if s == nil || math.IsNaN(v) {
		return
	}
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.levels[0] = append(s.levels[0], v)
	if len(s.levels[0]) > s.k {
		s.compact()
	}
}

// compact walks the levels bottom-up, halving any that overflow.
func (s *Sketch) compact() {
	for h := 0; h < len(s.levels); h++ {
		if len(s.levels[h]) <= s.k {
			continue
		}
		lv := s.levels[h]
		sort.Float64s(lv)
		off := 0
		if s.parity[h] {
			off = 1
		}
		s.parity[h] = !s.parity[h]
		if h+1 == len(s.levels) {
			s.levels = append(s.levels, make([]float64, 0, s.k+1))
			s.parity = append(s.parity, false)
		}
		for i := off; i < len(lv); i += 2 {
			s.levels[h+1] = append(s.levels[h+1], lv[i])
		}
		s.levels[h] = lv[:0]
	}
}

// Merge folds other into s level-by-level. Both sketches keep their
// own items' weights, so merging preserves each side's rank evidence;
// the result agrees with a sketch of the concatenated stream within
// the rank error bound. other is not modified. Merging a nil or empty
// sketch is a no-op.
func (s *Sketch) Merge(other *Sketch) {
	if s == nil || other == nil || other.count == 0 {
		return
	}
	for h := range other.levels {
		if len(other.levels[h]) == 0 {
			continue
		}
		for h >= len(s.levels) {
			s.levels = append(s.levels, make([]float64, 0, s.k+1))
			s.parity = append(s.parity, false)
		}
		s.levels[h] = append(s.levels[h], other.levels[h]...)
	}
	s.count += other.count
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.compact()
}

// Clone returns a deep copy, so callers can merge into a scratch
// sketch without mutating the live one.
func (s *Sketch) Clone() *Sketch {
	if s == nil {
		return nil
	}
	c := &Sketch{k: s.k, count: s.count, sum: s.sum, min: s.min, max: s.max}
	c.levels = make([][]float64, len(s.levels))
	c.parity = append([]bool(nil), s.parity...)
	for h := range s.levels {
		buf := make([]float64, len(s.levels[h]), s.k+1)
		copy(buf, s.levels[h])
		c.levels[h] = buf
	}
	return c
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Sum returns the exact sum of all observations.
func (s *Sketch) Sum() float64 {
	if s == nil {
		return 0
	}
	return s.sum
}

// Min and Max return the exact observed extremes (0 when empty).
func (s *Sketch) Min() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.min
}

func (s *Sketch) Max() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.max
}

// Reset empties the sketch for reuse, keeping its capacity.
func (s *Sketch) Reset() {
	if s == nil {
		return
	}
	for h := range s.levels {
		s.levels[h] = s.levels[h][:0]
		s.parity[h] = false
	}
	s.count, s.sum = 0, 0
	s.min, s.max = math.Inf(1), math.Inf(-1)
}

// weighted is one retained item with its level weight.
type weighted struct {
	v float64
	w uint64
}

// items collects the retained items into dst (reused when capacious),
// sorted by value, and returns them with the total weight.
func (s *Sketch) items(dst []weighted) ([]weighted, uint64) {
	dst = dst[:0]
	var total uint64
	for h := range s.levels {
		w := uint64(1) << uint(h)
		for _, v := range s.levels[h] {
			dst = append(dst, weighted{v: v, w: w})
			total += w
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].v < dst[j].v })
	return dst, total
}

// Quantile returns the estimated q-quantile (q clamped to [0,1]).
// An empty sketch returns 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.quantileInto(nil, q)
}

// quantileInto is Quantile with a caller-owned scratch buffer, so
// repeated polling does not re-allocate.
func (s *Sketch) quantileInto(scratch []weighted, q float64) float64 {
	if s.count == 0 {
		return 0
	}
	switch {
	case math.IsNaN(q) || q <= 0:
		return s.min
	case q >= 1:
		return s.max
	}
	it, total := s.items(scratch)
	target := q * float64(total)
	var cum float64
	for _, x := range it {
		cum += float64(x.w)
		if cum >= target {
			return x.v
		}
	}
	return s.max
}

// Quantiles evaluates several quantiles in one pass over the retained
// items, appending to out.
func (s *Sketch) Quantiles(qs []float64, out []float64) []float64 {
	if s == nil || s.count == 0 {
		for range qs {
			out = append(out, 0)
		}
		return out
	}
	var scratch []weighted
	for _, q := range qs {
		out = append(out, s.quantileInto(scratch, q))
	}
	return out
}

// retained returns the number of items currently held (for tests and
// occupancy reporting).
func (s *Sketch) retained() int {
	n := 0
	for h := range s.levels {
		n += len(s.levels[h])
	}
	return n
}
