package faults

import (
	"errors"
	"fmt"
	"math/rand"

	"xpro/internal/wireless"
)

// ErrLinkDown reports a send attempted inside a LinkOutage window.
type ErrLinkDown struct {
	// At is the modeled time of the attempt.
	At float64
	// Until is when the covering outage window ends.
	Until float64
}

func (e *ErrLinkDown) Error() string {
	return fmt.Sprintf("faults: link down at %.3fs (outage until %.3fs)", e.At, e.Until)
}

// IsLinkDown reports whether err is (or wraps) an outage failure.
func IsLinkDown(err error) bool {
	var ld *ErrLinkDown
	return errors.As(err, &ld)
}

// Link is a fault-injected wireless transport: the clean transceiver
// model of internal/wireless, subjected to a Plan read against a Clock.
// Inside LinkOutage windows every send fails with *ErrLinkDown; inside
// LossBurst windows packets are lost with the burst probability (plus
// the link's BaseLoss elsewhere) and retransmitted up to MaxRetries
// times each, failing with *wireless.ErrDropped when the budget is
// exhausted — the exact error shape of wireless.Channel, so callers
// unwrap both transports identically.
//
// All randomness comes from the construction seed; with a fixed seed
// and clock trajectory, a Link replays the identical fault sequence.
type Link struct {
	Model wireless.Model
	Plan  *Plan
	Clock *Clock
	// BaseLoss is the ambient packet-loss probability outside bursts.
	BaseLoss float64
	// MaxRetries caps retransmissions per packet.
	MaxRetries int
	// Observer, when set, sees every send's transfer record,
	// retransmission count and outcome — the wireless.SendStats shape.
	// The adaptive channel estimator taps the link here.
	Observer func(tr wireless.Transfer, retransmissions int, err error)

	rng  *rand.Rand
	src  *countingSource
	seed int64
}

// countingSource wraps the link's seeded source and counts every state
// advance, giving the link a durable RNG cursor: re-seeding and
// discarding Draws() values reconstructs the stream position exactly.
// It deliberately implements only rand.Source (not Source64), so every
// consumption rand.Rand makes — Float64, Intn, whatever the rejection
// loops do — routes through the counted Int63. The value sequence is
// identical to the unwrapped source: Float64 and Intn derive from
// Int63 either way.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (s *countingSource) Int63() int64    { s.n++; return s.src.Int63() }
func (s *countingSource) Seed(seed int64) { s.src.Seed(seed); s.n = 0 }

// MaxRNGDraws caps the cursor RestoreDraws will fast-forward through.
// Restoring is O(draws); the cap keeps a corrupt (yet CRC-valid)
// record from pinning a core for minutes. At a few dozen draws per
// lossy event it is still >10M events of headroom.
const MaxRNGDraws = 1 << 30

// NewLink builds a fault-injected transport. plan may be nil (ambient
// loss only); clock must not be nil.
func NewLink(m wireless.Model, plan *Plan, clock *Clock, baseLoss float64, maxRetries int, seed int64) (*Link, error) {
	if clock == nil {
		return nil, errors.New("faults: NewLink needs a clock")
	}
	if !(baseLoss >= 0 && baseLoss < 1) { // NaN fails both comparisons
		return nil, fmt.Errorf("faults: base loss %v outside [0,1)", baseLoss)
	}
	if maxRetries < 0 {
		return nil, fmt.Errorf("faults: negative retry limit %d", maxRetries)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	src := &countingSource{src: rand.NewSource(seed)}
	return &Link{
		Model: m, Plan: plan, Clock: clock,
		BaseLoss: baseLoss, MaxRetries: maxRetries,
		rng: rand.New(src), src: src, seed: seed,
	}, nil
}

// Draws returns the RNG cursor: how many values the link has consumed
// from its seeded stream since construction (or the last RestoreDraws).
// Together with the construction seed it pins the stream position, so
// a recovered link replays the identical fault sequence.
func (l *Link) Draws() uint64 { return l.src.n }

// RestoreDraws rewinds the link's RNG to the state it had after
// exactly n draws from the construction seed: the source is re-seeded
// and n values discarded. Cursors beyond MaxRNGDraws are rejected —
// they cannot come from a legitimate checkpoint and restoring is
// O(draws).
func (l *Link) RestoreDraws(n uint64) error {
	if n > MaxRNGDraws {
		return fmt.Errorf("faults: RNG cursor %d exceeds the restorable maximum %d", n, uint64(MaxRNGDraws))
	}
	src := &countingSource{src: rand.NewSource(l.seed)}
	for i := uint64(0); i < n; i++ {
		src.Int63()
	}
	l.src = src
	l.rng = rand.New(src)
	return nil
}

// Send moves dataBits across the link at the clock's current time. The
// returned Transfer accounts every (re)transmission actually made; on
// failure the partial cost is still returned with the error. Send does
// not advance the clock — the caller owns time (it also pays backoff
// waits and event periods into the same clock).
func (l *Link) Send(dataBits int64) (wireless.Transfer, error) {
	tr, retransmissions, err := l.send(dataBits)
	if l.Observer != nil {
		l.Observer(tr, retransmissions, err)
	}
	return tr, err
}

func (l *Link) send(dataBits int64) (wireless.Transfer, int, error) {
	now := l.Clock.Now()
	st := l.Plan.At(now)
	var tr wireless.Transfer
	tr.DataBits = dataBits
	retransmissions := 0
	if st.LinkDown || st.HubDown {
		return tr, 0, &ErrLinkDown{At: now, Until: l.Plan.LinkDownUntil(now)}
	}
	loss := l.BaseLoss
	if st.Loss > loss {
		loss = st.Loss
	}
	packets := wireless.Packets(dataBits)
	for p := int64(0); p < packets; p++ {
		bits := int64(wireless.MaxPayloadBits)
		if rem := dataBits - p*wireless.MaxPayloadBits; rem < bits {
			bits = rem
		}
		bits += wireless.HeaderBits
		delivered := false
		for attempt := 0; attempt <= l.MaxRetries; attempt++ {
			if attempt > 0 {
				retransmissions++
			}
			tr.WireBits += bits
			tr.TxEnergy += float64(bits) * l.Model.TxJPerBit
			tr.RxEnergy += float64(bits) * l.Model.RxJPerBit
			tr.Delay += float64(bits) / l.Model.RateBps
			if loss == 0 || l.rng.Float64() >= loss {
				delivered = true
				break
			}
		}
		if !delivered {
			return tr, retransmissions, &wireless.ErrDropped{Packet: int(p)}
		}
	}
	return tr, retransmissions, nil
}
