package oracle

import (
	"math"
	"testing"
)

// TestEnumerateUnconstrainedCount checks k^n assignments with no edges
// or groups.
func TestEnumerateUnconstrainedCount(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{1, 2}, {3, 2}, {4, 3}, {5, 4}} {
		p := &Problem{Cells: tc.n, Tiers: tc.k}
		got, err := p.Enumerate(func([]int) bool { return true })
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		want := int64(math.Pow(float64(tc.k), float64(tc.n)))
		if got != want {
			t.Fatalf("n=%d k=%d: visited %d, want %d", tc.n, tc.k, got, want)
		}
	}
}

// TestEnumerateChainMonotone checks a chain 0→1→…→n-1 over k tiers
// yields C(n+k-1, k-1) monotone assignments.
func TestEnumerateChainMonotone(t *testing.T) {
	binom := func(n, r int) int64 {
		v := int64(1)
		for i := 0; i < r; i++ {
			v = v * int64(n-i) / int64(i+1)
		}
		return v
	}
	for _, tc := range []struct{ n, k int }{{3, 2}, {4, 3}, {6, 3}, {5, 4}} {
		var edges [][2]int
		for i := 0; i+1 < tc.n; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		p := &Problem{Cells: tc.n, Tiers: tc.k, Edges: edges}
		got, err := p.Enumerate(func(a []int) bool {
			for i := 0; i+1 < len(a); i++ {
				if a[i] > a[i+1] {
					t.Fatalf("non-monotone assignment %v", a)
				}
			}
			return true
		})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if want := binom(tc.n+tc.k-1, tc.k-1); got != want {
			t.Fatalf("n=%d k=%d: visited %d, want %d", tc.n, tc.k, got, want)
		}
	}
}

// TestEnumerateGroups checks grouped cells always share a tier and the
// space shrinks to k^units.
func TestEnumerateGroups(t *testing.T) {
	p := &Problem{Cells: 5, Tiers: 3, Groups: [][]int{{0, 1, 2}, {3, 4}}}
	got, err := p.Enumerate(func(a []int) bool {
		if a[0] != a[1] || a[1] != a[2] || a[3] != a[4] {
			t.Fatalf("group split: %v", a)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 { // 3 tiers ^ 2 units
		t.Fatalf("visited %d, want 9", got)
	}
}

// TestEnumerateDeterministicOrder replays the enumeration and demands
// an identical sequence.
func TestEnumerateDeterministicOrder(t *testing.T) {
	p := &Problem{
		Cells:  6,
		Tiers:  3,
		Edges:  [][2]int{{0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 5}, {4, 5}},
		Groups: [][]int{{0, 1}},
	}
	var first [][]int
	if _, err := p.Enumerate(func(a []int) bool {
		first = append(first, append([]int(nil), a...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	i := 0
	if _, err := p.Enumerate(func(a []int) bool {
		for j, v := range a {
			if first[i][j] != v {
				t.Fatalf("replay diverged at %d: %v vs %v", i, first[i], a)
			}
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(first) {
		t.Fatalf("replay visited %d, first pass %d", i, len(first))
	}
}

// TestOptimalPicksMinimum checks Optimal against a hand-computable cost.
func TestOptimalPicksMinimum(t *testing.T) {
	p := &Problem{Cells: 4, Tiers: 3, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}}
	// Cost: cells 0,1 want tier 0; cells 2,3 want tier 2.
	want := []int{0, 0, 2, 2}
	res, err := p.Optimal(func(a []int) float64 {
		c := 0.0
		for i, t := range a {
			c += math.Abs(float64(t - want[i]))
		}
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("cost %v, want 0", res.Cost)
	}
	for i := range want {
		if res.Assign[i] != want[i] {
			t.Fatalf("assign %v, want %v", res.Assign, want)
		}
	}
}

// TestOptimalTieBreakDeterministic: under an all-equal cost the first
// enumerated assignment (all tier 0 where feasible) must win.
func TestOptimalTieBreakDeterministic(t *testing.T) {
	p := &Problem{Cells: 5, Tiers: 3, Edges: [][2]int{{0, 1}, {1, 2}}}
	res, err := p.Optimal(func([]int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Assign {
		if v != 0 {
			t.Fatalf("cell %d at tier %d; tie must keep the first enumerated (all-zero) assignment %v", i, v, res.Assign)
		}
	}
}

// TestEnumerateEarlyStop checks visit=false halts the walk.
func TestEnumerateEarlyStop(t *testing.T) {
	p := &Problem{Cells: 4, Tiers: 3}
	n := 0
	visited, err := p.Enumerate(func([]int) bool {
		n++
		return n < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 5 || n != 5 {
		t.Fatalf("visited=%d n=%d, want 5", visited, n)
	}
}

// TestEnumerateErrors covers validation, cycles and oversize.
func TestEnumerateErrors(t *testing.T) {
	for _, p := range []*Problem{
		{Cells: 0, Tiers: 2},
		{Cells: 3, Tiers: 1},
		{Cells: 3, Tiers: 2, Edges: [][2]int{{0, 9}}},
		{Cells: 3, Tiers: 2, Groups: [][]int{{0, 7}}},
		{Cells: 3, Tiers: 3, Edges: [][2]int{{0, 1}, {1, 0}}}, // cycle
		{Cells: 40, Tiers: 4},                                 // 4^40 >> MaxAssignments
	} {
		if _, err := p.Enumerate(func([]int) bool { return true }); err == nil {
			t.Fatalf("expected error for %+v", p)
		}
	}
}

// TestIntraGroupEdgeNotCycle: an edge inside a group collapses to a
// unit self-loop and must not be treated as a cycle.
func TestIntraGroupEdgeNotCycle(t *testing.T) {
	p := &Problem{Cells: 3, Tiers: 2, Edges: [][2]int{{0, 1}}, Groups: [][]int{{0, 1}}}
	visited, err := p.Enumerate(func([]int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if visited != 4 { // 2 units × 2 tiers each
		t.Fatalf("visited %d, want 4", visited)
	}
}
