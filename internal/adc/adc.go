// Package adc models the biosignal acquisition front end: the
// successive-approximation converter digitizing the analog body signal
// into the samples XPro's cells consume.
//
// The paper's energy model reduces sensing to a negligible term (§3.2.1,
// Eq. 1), citing the µW-class SAR converters used in biosignal
// acquisition (e.g. the 1-V 8-bit 0.95 mW SAR ADC of Lee et al., which
// §4.3's low-duty-cycle argument also leans on). This package makes that
// reduction explicit: a mid-rise quantizer with configurable resolution,
// a per-conversion energy in the SAR class, and the derivation of the
// sensing power used by internal/sensornode.
package adc

import (
	"fmt"
	"math"
)

// Converter is a SAR ADC model.
type Converter struct {
	// Bits is the resolution (output codes = 2^Bits).
	Bits int
	// VRef spans the input range [0, VRef) in normalized signal units;
	// XPro's segments are [0,1]-normalized, so VRef is 1.
	VRef float64
	// EnergyPerConversion is the switching + comparator energy of one
	// sample (J). SAR energy scales roughly linearly with resolution:
	// the 8-bit reference design spends ~1.9 nJ per conversion.
	EnergyPerConversion float64
}

// refEnergyPerBit calibrates conversion energy against the cited 8-bit
// design (~1.9 nJ/conversion).
const refEnergyPerBit = 1.9e-9 / 8

// New returns a converter with the given resolution, VRef 1 and a
// resolution-scaled conversion energy.
func New(bits int) (*Converter, error) {
	if bits < 1 || bits > 24 {
		return nil, fmt.Errorf("adc: resolution %d bits outside 1..24", bits)
	}
	return &Converter{
		Bits:                bits,
		VRef:                1,
		EnergyPerConversion: refEnergyPerBit * float64(bits),
	}, nil
}

// Levels returns the number of output codes.
func (c *Converter) Levels() int { return 1 << uint(c.Bits) }

// Convert digitizes one analog value to its output code, clipping to the
// input range.
func (c *Converter) Convert(v float64) int {
	if c.VRef > 0 {
		v /= c.VRef
	}
	code := int(math.Floor(v * float64(c.Levels())))
	if code < 0 {
		return 0
	}
	if code >= c.Levels() {
		return c.Levels() - 1
	}
	return code
}

// Dequantize returns the mid-rise reconstruction of a code.
func (c *Converter) Dequantize(code int) float64 {
	return (float64(code) + 0.5) / float64(c.Levels()) * c.VRef
}

// Sample digitizes a whole segment and returns the reconstructed values
// (what the functional cells actually see) plus the conversion energy.
func (c *Converter) Sample(analog []float64) (digital []float64, energy float64) {
	digital = make([]float64, len(analog))
	for i, v := range analog {
		digital[i] = c.Dequantize(c.Convert(v))
	}
	return digital, float64(len(analog)) * c.EnergyPerConversion
}

// SQNR returns the signal-to-quantization-noise ratio (dB) measured over
// a segment: the empirical counterpart of the 6.02·bits + 1.76 dB rule.
func (c *Converter) SQNR(analog []float64) float64 {
	var sig, noise float64
	for _, v := range analog {
		q := c.Dequantize(c.Convert(v))
		d := v - q
		sig += v * v
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

// SensingPower returns the average acquisition power at a sampling rate:
// conversion energy × rate plus the bias/amplifier floor. At 16-bit
// resolution and 2048 Hz this is a few µW — the same order as the
// constant internal/sensornode charges as Es (Eq. 1), and three orders
// below the µJ-scale compute/wireless terms, confirming the paper's
// "extremely small" reduction (§3.2.1).
func (c *Converter) SensingPower(sampleRateHz float64) float64 {
	const amplifierFloor = 0.2e-6 // W, instrumentation amplifier bias
	return c.EnergyPerConversion*sampleRateHz + amplifierFloor
}
