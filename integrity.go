package xpro

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"xpro/internal/faults"
	"xpro/internal/frame"
)

// This file is the data-plane integrity layer: framed wire transport
// (per-frame sequencing + CRC so corruption is detected and retried
// instead of silently classified) and a signal-quality admission gate
// that refuses to label garbage — flatlined leads, rail-saturated
// inputs, non-finite samples and events that needed too much
// imputation come back as typed ErrSuspectData instead of a
// confident-looking label.

// Integrity configures the data-plane integrity layer. Setting it on
// Config arms the resilience machinery (like FaultPlan and Adaptive,
// it implies DefaultResilience when Resilience is nil). Construct with
// DefaultIntegrity and override fields; zero-valued fractions take the
// documented defaults.
type Integrity struct {
	// Framing wraps every crossing payload's packets in a sequence
	// number + CRC-16/CCITT envelope (frame.IntegrityBits = 32 extra
	// on-air bits per packet, charged in the energy model). Corrupt
	// frames are detected and retried; residual frame loss is imputed.
	Framing bool
	// Impute names the loss-repair policy: "hold-last" (default),
	// "linear" or "zero".
	Impute string
	// MaxLossFraction is the largest fraction of one payload's frames
	// that may be lost before the transfer fails outright (default 0.5).
	MaxLossFraction float64
	// Gate arms the signal-quality admission gate on classification
	// entry points.
	Gate bool
	// MaxImputedFraction quarantines an event when more than this
	// fraction of its crossed values had to be imputed (default 0.25).
	MaxImputedFraction float64
	// FlatlineFraction rejects a segment whose longest run of identical
	// consecutive samples covers at least this fraction of the segment
	// (default 0.5) — a detached or failed electrode.
	FlatlineFraction float64
	// SaturationFraction rejects a segment with at least this fraction
	// of samples pinned to a rail (default 0.5). Samples are normalized
	// to [0,1], so the rails are 0 and 1.
	SaturationFraction float64
}

// DefaultIntegrity arms framing and the admission gate with the
// default thresholds: hold-last imputation, up to half a payload's
// frames lost, quarantine above 25% imputed values, reject flatline or
// rail saturation covering half the segment.
func DefaultIntegrity() *Integrity {
	return &Integrity{Framing: true, Gate: true}
}

func (i *Integrity) validate() error {
	if i == nil {
		return nil
	}
	if _, err := frame.ParsePolicy(i.Impute); err != nil {
		return fmt.Errorf("xpro: %w", err)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MaxLossFraction", i.MaxLossFraction},
		{"MaxImputedFraction", i.MaxImputedFraction},
		{"FlatlineFraction", i.FlatlineFraction},
		{"SaturationFraction", i.SaturationFraction},
	} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("xpro: Integrity.%s %v outside [0,1]", f.name, f.v)
		}
	}
	return nil
}

// framing compiles the wire-format half to the transport's terms; nil
// when framing is off (the bare legacy wire).
func (i *Integrity) framing() *faults.Framing {
	if i == nil || !i.Framing {
		return nil
	}
	pol, _ := frame.ParsePolicy(i.Impute) // validated at construction
	return &faults.Framing{Impute: pol, MaxLossFraction: i.MaxLossFraction}
}

func (i *Integrity) gateOn() bool { return i != nil && i.Gate }

func (i *Integrity) maxImputedFraction() float64 {
	if i == nil || i.MaxImputedFraction <= 0 {
		return 0.25
	}
	return i.MaxImputedFraction
}

func (i *Integrity) flatlineFraction() float64 {
	if i == nil || i.FlatlineFraction <= 0 {
		return 0.5
	}
	return i.FlatlineFraction
}

func (i *Integrity) saturationFraction() float64 {
	if i == nil || i.SaturationFraction <= 0 {
		return 0.5
	}
	return i.SaturationFraction
}

// inspect runs the admission checks on one segment and returns the
// reasons it is suspect (empty for an admissible segment).
func (i *Integrity) inspect(samples []float64) []string {
	var reasons []string
	n := len(samples)
	if n == 0 {
		return nil // length errors are the pipeline's business
	}
	finite := true
	for _, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			finite = false
			break
		}
	}
	if !finite {
		reasons = append(reasons, "non-finite")
	}
	if finite {
		run, best := 1, 1
		for k := 1; k < n; k++ {
			if samples[k] == samples[k-1] {
				run++
				if run > best {
					best = run
				}
			} else {
				run = 1
			}
		}
		if float64(best) >= i.flatlineFraction()*float64(n) {
			reasons = append(reasons, "flatline")
		}
		railed := 0
		for _, s := range samples {
			if s <= 0 || s >= 1 {
				railed++
			}
		}
		if float64(railed) >= i.saturationFraction()*float64(n) {
			reasons = append(reasons, "rail-saturation")
		}
	}
	return reasons
}

// ErrSuspectData is the sentinel every admission-gate rejection
// matches: errors.Is(err, ErrSuspectData) is true for any
// *SuspectDataError. The concrete error carries the reasons.
var ErrSuspectData = errors.New("xpro: suspect data")

// SuspectDataError reports an event the signal-quality gate refused to
// label confidently. Reasons is one or more of "non-finite",
// "flatline", "rail-saturation", "excess-imputation".
type SuspectDataError struct {
	Reasons []string
}

func (e *SuspectDataError) Error() string {
	return "xpro: suspect data (" + strings.Join(e.Reasons, ", ") + ")"
}

// Is makes errors.Is(err, ErrSuspectData) match.
func (e *SuspectDataError) Is(target error) bool { return target == ErrSuspectData }

// Reason joins the gate's reasons into the compact comma form the
// structured event log carries as a quarantine record's Detail.
func (e *SuspectDataError) Reason() string {
	if e == nil || len(e.Reasons) == 0 {
		return "suspect-data"
	}
	return strings.Join(e.Reasons, ",")
}
