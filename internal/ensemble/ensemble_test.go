package ensemble

import (
	"math/rand"
	"testing"

	"xpro/internal/biosig"
	"xpro/internal/stats"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Candidates = 10
	cfg.Folds = 3
	cfg.TopFrac = 0.3
	cfg.CandidateTrainCap = 120
	return cfg
}

func trainOn(t *testing.T, sym string, seed int64) (*Ensemble, *biosig.Dataset, *biosig.Dataset) {
	t.Helper()
	spec, err := biosig.CaseBySymbol(sym)
	if err != nil {
		t.Fatal(err)
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(seed))
	train, test := d.Split(0.75, rng)
	ens, err := Train(train, smallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ens, train, test
}

func TestFeatureSpaceEnumeration(t *testing.T) {
	specs := AllFeatureSpecs()
	if len(specs) != NumDomains*stats.NumFeatures {
		t.Fatalf("feature space size = %d, want %d", len(specs), NumDomains*stats.NumFeatures)
	}
	if len(specs) != 56 {
		t.Fatalf("feature space = %d, paper framework has 7 domains × 8 features = 56", len(specs))
	}
	for i, fs := range specs {
		if SpecIndex(fs) != i {
			t.Fatalf("SpecIndex(%v) = %d, want %d", fs, SpecIndex(fs), i)
		}
	}
}

func TestDomainNames(t *testing.T) {
	if DomainName(TimeDomain) != "time" {
		t.Error("time domain name wrong")
	}
	if DomainName(1) != "dwt1" || DomainName(5) != "dwt5" {
		t.Error("detail band names wrong")
	}
	if DomainName(6) != "dwtA" {
		t.Error("approximation band name wrong")
	}
	if DomainName(9) != "domain9" {
		t.Error("fallback name wrong")
	}
	fs := FeatureSpec{Domain: 3, Feat: stats.Kurt}
	if fs.String() != "dwt3/Kurt" {
		t.Errorf("FeatureSpec string = %q", fs.String())
	}
}

func TestExtractVectorShape(t *testing.T) {
	spec, _ := biosig.CaseBySymbol("C1") // 82-sample segments exercise padding
	d := biosig.Generate(spec)
	v, err := ExtractVector(d.Segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 56 {
		t.Fatalf("vector length = %d, want 56", len(v))
	}
	// Time-domain Max of a [0,1]-normalized segment is 1.
	if v[SpecIndex(FeatureSpec{TimeDomain, stats.Max})] != 1 {
		t.Error("time-domain Max of normalized segment should be 1")
	}
	if v[SpecIndex(FeatureSpec{TimeDomain, stats.Min})] != 0 {
		t.Error("time-domain Min of normalized segment should be 0")
	}
}

func TestTrainAndClassifyE1(t *testing.T) {
	ens, train, test := trainOn(t, "E1", 1)
	accTr, err := ens.Accuracy(train)
	if err != nil {
		t.Fatal(err)
	}
	accTe, err := ens.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	// E1 is the hard case; the paper's classifiers are merely usable,
	// not perfect. Require clearly-better-than-chance generalization.
	if accTr < 0.7 {
		t.Errorf("train accuracy = %v, want ≥ 0.7", accTr)
	}
	if accTe < 0.65 {
		t.Errorf("test accuracy = %v, want ≥ 0.65", accTe)
	}
	t.Logf("E1: train %.3f test %.3f, %d bases", accTr, accTe, len(ens.Bases))
}

func TestTrainAndClassifyC1(t *testing.T) {
	ens, _, test := trainOn(t, "C1", 2)
	acc, err := ens.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("C1 test accuracy = %v, want ≥ 0.85 (easy ECG case)", acc)
	}
}

func TestEnsembleStructure(t *testing.T) {
	ens, _, _ := trainOn(t, "M1", 3)
	if len(ens.Bases) < 2 {
		t.Fatalf("bases = %d, want ≥ 2", len(ens.Bases))
	}
	if len(ens.Weights) != len(ens.Bases)+1 {
		t.Fatalf("weights = %d, want bases+1 = %d", len(ens.Weights), len(ens.Bases)+1)
	}
	for _, b := range ens.Bases {
		if len(b.Subset) != 12 {
			t.Errorf("subset size = %d, want 12 (§4.4)", len(b.Subset))
		}
		if b.Model.NumSV() == 0 {
			t.Error("base model has no support vectors")
		}
	}
	used := ens.UsedFeatures()
	if len(used) == 0 || len(used) > 56 {
		t.Fatalf("used features = %d", len(used))
	}
	// Used features must be exactly the union of subsets.
	want := make(map[FeatureSpec]bool)
	for _, b := range ens.Bases {
		for _, fs := range b.Subset {
			want[fs] = true
		}
	}
	if len(used) != len(want) {
		t.Errorf("UsedFeatures = %d, want %d", len(used), len(want))
	}
	doms := ens.UsedDomains()
	if len(doms) == 0 {
		t.Error("no used domains")
	}
	seen := make(map[int]bool)
	for _, fs := range used {
		seen[fs.Domain] = true
	}
	if len(doms) != len(seen) {
		t.Error("UsedDomains inconsistent with UsedFeatures")
	}
}

func TestTrainDeterministic(t *testing.T) {
	spec, _ := biosig.CaseBySymbol("C2")
	d := biosig.Generate(spec)
	rng1 := rand.New(rand.NewSource(7))
	train1, _ := d.Split(0.75, rng1)
	rng2 := rand.New(rand.NewSource(7))
	train2, _ := d.Split(0.75, rng2)
	e1, err := Train(train1, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Train(train2, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(e1.Bases) != len(e2.Bases) {
		t.Fatalf("base counts differ: %d vs %d", len(e1.Bases), len(e2.Bases))
	}
	for i := range e1.Bases {
		if e1.Bases[i].CVAccuracy != e2.Bases[i].CVAccuracy {
			t.Error("CV accuracies differ between identical runs")
		}
	}
	for i := range e1.Weights {
		if e1.Weights[i] != e2.Weights[i] {
			t.Error("fusion weights differ between identical runs")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	spec, _ := biosig.CaseBySymbol("C1")
	d := biosig.Generate(spec)
	if _, err := Train(d, Config{}); err == nil {
		t.Error("zero config should error")
	}
	tiny := &biosig.Dataset{Name: "t", SegLen: d.SegLen, Segs: d.Segs[:4]}
	if _, err := Train(tiny, smallConfig(1)); err == nil {
		t.Error("tiny dataset should error")
	}
	if _, err := (&Ensemble{}).Accuracy(&biosig.Dataset{}); err == nil {
		t.Error("empty evaluation set should error")
	}
}

func TestConfigs(t *testing.T) {
	p := PaperConfig(1)
	if p.Candidates != 100 || p.SubspaceSize != 12 || p.TopFrac != 0.1 || p.Folds != 10 {
		t.Errorf("PaperConfig does not match §4.4: %+v", p)
	}
	dflt := DefaultConfig(1)
	if dflt.SubspaceSize != 12 {
		t.Error("DefaultConfig must keep the 12-feature subspace")
	}
}

func BenchmarkExtractVector(b *testing.B) {
	spec, _ := biosig.CaseBySymbol("E1")
	d := biosig.Generate(spec)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractVector(d.Segs[i%len(d.Segs)]); err != nil {
			b.Fatal(err)
		}
	}
}
