package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"xpro"
)

// run executes the tool against args; main passes the returned exit code
// to os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xprogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	caseSym := fs.String("case", "E1", "test case symbol (C1, C2, E1, E2, M1, M2)")
	process := fs.Int("process", 90, "process node in nm (130, 90, 45)")
	model := fs.Int("wireless", 2, "wireless model (1, 2, 3)")
	protocol := fs.String("protocol", "fast", "training protocol: fast or paper")
	verilog := fs.String("verilog", "", "write a Verilog skeleton of the in-sensor part to this file ('-' for stdout)")
	dot := fs.String("dot", "", "write a Graphviz rendering of the placement to this file ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := xpro.Config{Case: *caseSym}
	switch *process {
	case 90:
		cfg.Process = xpro.Process90nm
	case 130:
		cfg.Process = xpro.Process130nm
	case 45:
		cfg.Process = xpro.Process45nm
	default:
		fmt.Fprintf(stderr, "xprogen: unknown process %d (want 130, 90 or 45)\n", *process)
		return 2
	}
	switch *model {
	case 1:
		cfg.Wireless = xpro.WirelessModel1
	case 2:
		cfg.Wireless = xpro.WirelessModel2
	case 3:
		cfg.Wireless = xpro.WirelessModel3
	default:
		fmt.Fprintf(stderr, "xprogen: unknown wireless model %d (want 1, 2 or 3)\n", *model)
		return 2
	}
	switch *protocol {
	case "fast":
		cfg.Protocol = xpro.ProtocolFast
	case "paper":
		cfg.Protocol = xpro.ProtocolPaper
	default:
		fmt.Fprintf(stderr, "xprogen: unknown protocol %q\n", *protocol)
		return 2
	}

	fmt.Fprintf(stdout, "generating XPro instance for %s (%s, wireless %s)...\n\n",
		cfg.Case, cfg.Process, cfg.Wireless)
	reps, err := xpro.Compare(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "xprogen: %v\n", err)
		return 1
	}

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tsensor energy/event\tdelay/event\tbattery life\tcells (sensor/agg)")
	for _, r := range reps {
		fmt.Fprintf(tw, "%s\t%.3f µJ\t%.3f ms\t%.0f h\t%d/%d\n",
			r.Kind, r.SensorEnergyPerEvent*1e6, r.DelayPerEventSeconds*1e3,
			r.SensorLifetimeHours, r.SensorCells, r.AggregatorCells)
	}
	tw.Flush()

	cfg.Kind = xpro.CrossEnd
	eng, err := xpro.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "xprogen: %v\n", err)
		return 1
	}
	rep := eng.Report()
	fmt.Fprintf(stdout, "\ncross-end placement (%d cells, fallback=%v, accuracy %.3f):\n",
		rep.Cells, rep.UsedFallback, rep.SoftwareAccuracy)
	tw = tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cell\trole\tend")
	for _, cp := range eng.Placement() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", cp.Name, cp.Role, cp.End)
	}
	tw.Flush()

	if *verilog != "" {
		v, err := eng.Verilog()
		if err != nil {
			fmt.Fprintf(stderr, "xprogen: %v\n", err)
			return 1
		}
		if *verilog == "-" {
			fmt.Fprint(stdout, v)
		} else if err := os.WriteFile(*verilog, []byte(v), 0o644); err != nil {
			fmt.Fprintf(stderr, "xprogen: %v\n", err)
			return 1
		} else {
			fmt.Fprintf(stdout, "\nwrote Verilog skeleton to %s (%d bytes)\n", *verilog, len(v))
		}
	}
	if *dot != "" {
		d := eng.DOT()
		if *dot == "-" {
			fmt.Fprint(stdout, d)
		} else if err := os.WriteFile(*dot, []byte(d), 0o644); err != nil {
			fmt.Fprintf(stderr, "xprogen: %v\n", err)
			return 1
		} else {
			fmt.Fprintf(stdout, "wrote Graphviz placement to %s\n", *dot)
		}
	}
	return 0
}
