package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one recorded unit of work: a functional-cell activation
// during Classify, or a whole-event marker. Wall time is measured;
// energy and delay are the system's modeled per-activation costs, so a
// trace carries both what the host actually spent and what the modeled
// hardware would have.
type Span struct {
	// Seq is the tracer-assigned global sequence number.
	Seq uint64 `json:"seq"`
	// Event groups the spans of one classification event.
	Event uint64 `json:"event"`
	// Name is the cell name (e.g. "dwt1", "svm3") or "classify" for the
	// whole-event span.
	Name string `json:"name"`
	// End is where the work ran: "sensor", "aggregator" or "event".
	End string `json:"end"`
	// Start is the host wall-clock start time.
	Start time.Time `json:"start"`
	// Wall is the measured host execution time.
	Wall time.Duration `json:"wall_ns"`
	// EnergyJoules is the modeled per-activation energy on End.
	EnergyJoules float64 `json:"energy_j,omitempty"`
	// DelaySeconds is the modeled per-activation latency on End.
	DelaySeconds float64 `json:"delay_s,omitempty"`
	// Degraded marks an event span whose classification was served
	// through a degraded path (partial fusion or a fallback cut).
	Degraded bool `json:"degraded,omitempty"`
	// Suspect marks an event span the signal-quality gate rejected or
	// quarantined.
	Suspect bool `json:"suspect,omitempty"`
	// Err carries a failure message, empty on success.
	Err string `json:"err,omitempty"`
}

// Tracer records spans into a bounded ring buffer: the newest Cap spans
// are retained, older ones are dropped. All methods are safe for
// concurrent use, and a nil *Tracer is a no-op.
type Tracer struct {
	mu       sync.Mutex
	buf      []Span
	next     int // ring write position
	full     bool
	seq      uint64
	events   uint64
	recorded uint64
}

// DefaultTraceCapacity is the span ring size used when a caller does
// not choose one.
const DefaultTraceCapacity = 4096

// NewTracer creates a tracer retaining the newest capacity spans.
// Non-positive capacities fall back to DefaultTraceCapacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Span, capacity)}
}

// NextEvent allocates a fresh event ID for grouping spans.
func (t *Tracer) NextEvent() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	return t.events
}

// Add records one span, assigning its sequence number. The oldest span
// is evicted when the ring is full.
func (t *Tracer) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	s.Seq = t.seq
	t.recorded++
	t.buf[t.next] = s
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Recorded returns the total number of spans ever recorded.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recorded
}

// Dropped returns how many spans were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropLocked()
}

func (t *Tracer) dropLocked() uint64 {
	if !t.full {
		return 0
	}
	return t.recorded - uint64(len(t.buf))
}

// Spans returns the retained spans, oldest first. The result is a copy.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.buf[:t.next]...)
	}
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Reset discards all retained spans and counters.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next, t.full, t.seq, t.recorded = 0, false, 0, 0
}

// traceJSON is the wire shape of an exported trace.
type traceJSON struct {
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
	Spans    []Span `json:"spans"`
}

// WriteJSON writes the retained spans as one JSON document:
// {"capacity":…,"recorded":…,"dropped":…,"spans":[…]}. A nil tracer
// writes an empty document, so HTTP handlers need no guards.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := traceJSON{Spans: []Span{}}
	if t != nil {
		doc.Capacity = t.Cap()
		if spans := t.Spans(); len(spans) > 0 {
			doc.Spans = spans
		}
		t.mu.Lock()
		doc.Recorded = t.recorded
		doc.Dropped = t.dropLocked()
		t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
