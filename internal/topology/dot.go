package topology

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the functional-cell graph in Graphviz format. onSensor may
// be nil (no placement: all cells drawn neutral); with a placement,
// sensor cells are drawn in the left cluster and aggregator cells in the
// right one, with crossing edges highlighted — Fig. 2's picture for a
// concrete generated instance.
func (g *Graph) DOT(onSensor func(CellID) bool) string {
	var b strings.Builder
	b.WriteString("digraph xpro {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	b.WriteString("  source [label=\"raw segment\", shape=oval];\n")

	name := func(id CellID) string {
		return fmt.Sprintf("c%d", id)
	}
	label := func(c Cell) string {
		return strings.ReplaceAll(c.Name, "\"", "'")
	}

	if onSensor == nil {
		for _, c := range g.Cells {
			fmt.Fprintf(&b, "  %s [label=\"%s\"];\n", name(c.ID), label(c))
		}
	} else {
		var sensor, agg []Cell
		for _, c := range g.Cells {
			if onSensor(c.ID) {
				sensor = append(sensor, c)
			} else {
				agg = append(agg, c)
			}
		}
		writeCluster := func(title string, cells []Cell, color string) {
			if len(cells) == 0 {
				return
			}
			fmt.Fprintf(&b, "  subgraph cluster_%s {\n    label=\"%s\";\n    style=filled;\n    color=%s;\n", title, title, color)
			sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })
			for _, c := range cells {
				fmt.Fprintf(&b, "    %s [label=\"%s\"];\n", name(c.ID), label(c))
			}
			b.WriteString("  }\n")
		}
		writeCluster("sensor", sensor, "lightcyan")
		writeCluster("aggregator", agg, "mistyrose")
	}

	for _, e := range g.Edges {
		from := "source"
		if e.From != SourceID {
			from = name(e.From)
		}
		attr := ""
		if onSensor != nil && e.From != SourceID && onSensor(e.From) != onSensor(e.To) {
			attr = " [color=red, penwidth=2]"
		} else if onSensor != nil && e.From == SourceID && !onSensor(e.To) {
			attr = " [color=red, penwidth=2]"
		}
		fmt.Fprintf(&b, "  %s -> %s%s;\n", from, name(e.To), attr)
	}
	b.WriteString("}\n")
	return b.String()
}
