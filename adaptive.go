package xpro

import (
	"xpro/internal/adaptive"
	"xpro/internal/admit"
)

// This file is the public face of closed-loop adaptive repartitioning
// (internal/adaptive). The paper's Automatic XPro Generator prices the
// cross-end cut once, against the datasheet channel; a deployed
// wearable's channel drifts — interference raises the packet-loss
// rate, the wearer walks out of range — and the once-optimal cut can
// quietly become the most expensive one as every crossing payload pays
// retransmissions. An engine built with Config.Adaptive closes the
// loop: an online channel estimator folds the evidence the resilience
// layer already produces (per-send statistics, fault-window state,
// breaker transitions), a controller re-runs the same min-cut
// generator against the estimated channel, and a sufficiently better
// cut is hot-swapped in between events — with hysteresis and a
// probation window that rolls a misbehaving fresh cut back.

// Adaptive configures the adaptive repartitioning controller.
// Construct it with DefaultAdaptive and override fields; every field
// must be set (the controller rejects zero and non-finite knobs).
type Adaptive struct {
	// Alpha is the EWMA weight of the channel estimator, in (0, 1]:
	// larger tracks drift faster, smaller smooths noise harder.
	Alpha float64
	// MinDwellSeconds is the minimum modeled time between cut changes —
	// the hysteresis that stops a flapping channel from thrashing the
	// placement.
	MinDwellSeconds float64
	// ImprovementThreshold is the minimum relative sensor-energy
	// improvement (under the estimated channel) a candidate cut needs
	// before it replaces the active one, in (0, 1).
	ImprovementThreshold float64
	// ProbationEvents is how many events a freshly installed cut is
	// watched: violating the deadline more often than the previous cut
	// already did rolls the swap back.
	ProbationEvents int
	// MaxInflation caps the estimated retransmission factor the
	// re-pricing applies (≥ 1); a hard outage pins the effective channel
	// to this cap.
	MaxInflation float64
}

// DefaultAdaptive returns the default controller tuning.
func DefaultAdaptive() *Adaptive {
	c := adaptive.DefaultConfig()
	return &Adaptive{
		Alpha:                c.Alpha,
		MinDwellSeconds:      c.MinDwellSeconds,
		ImprovementThreshold: c.ImprovementThreshold,
		ProbationEvents:      c.ProbationEvents,
		MaxInflation:         c.MaxInflation,
	}
}

func (a *Adaptive) internal() adaptive.Config {
	return adaptive.Config{
		Alpha:                a.Alpha,
		MinDwellSeconds:      a.MinDwellSeconds,
		ImprovementThreshold: a.ImprovementThreshold,
		ProbationEvents:      a.ProbationEvents,
		MaxInflation:         a.MaxInflation,
	}
}

// RecutDecision is one entry of the adaptive controller's decision
// log: a hot swap to a better cut, or a probation rollback to the
// previous one. The log is fully determined by the engine's fault-plan
// seed, so a seeded run replays an identical sequence.
type RecutDecision struct {
	// AtSeconds is the modeled time of the decision.
	AtSeconds float64
	// Kind is "swap" or "rollback".
	Kind string
	// EstimatedLoss / EstimatedOutage are the channel estimate that
	// motivated the decision.
	EstimatedLoss, EstimatedOutage float64
	// SensorCellsBefore / SensorCellsAfter count the sensor-side cells
	// of the outgoing and incoming cuts.
	SensorCellsBefore, SensorCellsAfter int
	// FromEnergyJ / ToEnergyJ are the per-event sensor energies of the
	// two cuts priced under the estimated channel (zero on rollbacks).
	FromEnergyJ, ToEnergyJ float64
}

// RecutLog returns the adaptive controller's decision log, oldest
// first. Engines without Config.Adaptive return nil.
func (e *Engine) RecutLog() []RecutDecision {
	if e.res == nil || e.res.ctrl == nil {
		return nil
	}
	e.res.mu.Lock()
	ds := e.res.ctrl.Decisions()
	e.res.mu.Unlock()
	out := make([]RecutDecision, len(ds))
	for i, d := range ds {
		fs, _ := d.From.Counts()
		ts, _ := d.To.Counts()
		out[i] = RecutDecision{
			AtSeconds:         d.At,
			Kind:              d.Kind,
			EstimatedLoss:     d.Loss,
			EstimatedOutage:   d.Outage,
			SensorCellsBefore: fs,
			SensorCellsAfter:  ts,
			FromEnergyJ:       d.FromEnergy,
			ToEnergyJ:         d.ToEnergy,
		}
	}
	return out
}

// AdaptiveStatus is a point-in-time snapshot of the adaptive
// repartitioning loop.
type AdaptiveStatus struct {
	// Enabled is true when the engine was built with Config.Adaptive.
	Enabled bool
	// EstimatedLoss / EstimatedOutage are the channel estimator's
	// current EWMA view; Samples counts the observations folded in.
	EstimatedLoss, EstimatedOutage float64
	Samples                        int
	// SensorCells / AggregatorCells describe the currently active cut.
	SensorCells, AggregatorCells int
	// OnProbation is true while a freshly swapped cut is still being
	// watched for rollback.
	OnProbation bool
	// Swaps / Rollbacks count the decisions taken so far.
	Swaps, Rollbacks int
}

// Overload configures the fleet's overload-protection loop
// (ServeOptions.Overload): the deadline-aware admission controller in
// front of the worker pool, and the brownout controller that couples
// sustained queue delay to the degradation ladder. Construct it with
// DefaultOverload and override fields; the controllers reject
// non-finite or inconsistent knobs when the fleet starts.
//
// The brownout half mirrors the adaptive re-cut controller's shape:
// hysteresis (the Enter/Exit gap plus a minimum dwell) stops a noisy
// queue from flapping the fleet, and a probation window after entry
// verifies the cheap rung actually reduced the delay — if it did not,
// the brownout rolls back (the queue was not service-time bound and
// the quality cost bought nothing).
type Overload struct {
	// TargetDelaySeconds is the acceptable standing queue delay; a
	// sojourn above it for IntervalSeconds trips CoDel-style dropping
	// of the lowest class.
	TargetDelaySeconds float64
	IntervalSeconds    float64
	// Alpha is the EWMA weight of the service-time and queue-delay
	// estimators, in (0, 1].
	Alpha float64
	// BatchShare / InteractiveShare are the queue-occupancy fractions
	// those classes may use (0 < BatchShare ≤ InteractiveShare ≤ 1);
	// alert traffic always has the full queue. Monotone shares are
	// what makes shedding strict-priority.
	BatchShare, InteractiveShare float64
	// Per-class default deadline budgets, applied when a submission's
	// context carries no deadline. Zero disables the class default.
	BatchBudgetSeconds       float64
	InteractiveBudgetSeconds float64
	AlertBudgetSeconds       float64

	// BrownoutEnterSeconds / BrownoutExitSeconds bound the
	// queue-delay EWMA hysteresis band; BrownoutMinDwellSeconds the
	// minimum time between brownout transitions.
	BrownoutEnterSeconds    float64
	BrownoutExitSeconds     float64
	BrownoutMinDwellSeconds float64
	// BrownoutProbationSeconds / BrownoutImprovementFactor shape the
	// rollback check: ProbationSeconds after entering, the delay must
	// be under entry × ImprovementFactor or the brownout rolls back.
	BrownoutProbationSeconds  float64
	BrownoutImprovementFactor float64
}

// DefaultOverload returns the default overload-protection tuning:
// 5 ms CoDel target over a 100 ms interval, batch capped at half the
// queue and interactive at 80%, brownout entering at 50 ms sustained
// queue delay and exiting under 10 ms.
func DefaultOverload() *Overload {
	ac := admit.DefaultConfig()
	bc := admit.DefaultBrownoutConfig()
	return &Overload{
		TargetDelaySeconds:        ac.TargetDelaySeconds,
		IntervalSeconds:           ac.IntervalSeconds,
		Alpha:                     ac.Alpha,
		BatchShare:                ac.BatchShare,
		InteractiveShare:          ac.InteractiveShare,
		BrownoutEnterSeconds:      bc.EnterDelaySeconds,
		BrownoutExitSeconds:       bc.ExitDelaySeconds,
		BrownoutMinDwellSeconds:   bc.MinDwellSeconds,
		BrownoutProbationSeconds:  bc.ProbationSeconds,
		BrownoutImprovementFactor: bc.ImprovementFactor,
	}
}

func (o *Overload) internal() (admit.Config, admit.BrownoutConfig) {
	return admit.Config{
			TargetDelaySeconds:       o.TargetDelaySeconds,
			IntervalSeconds:          o.IntervalSeconds,
			Alpha:                    o.Alpha,
			BatchShare:               o.BatchShare,
			InteractiveShare:         o.InteractiveShare,
			BatchBudgetSeconds:       o.BatchBudgetSeconds,
			InteractiveBudgetSeconds: o.InteractiveBudgetSeconds,
			AlertBudgetSeconds:       o.AlertBudgetSeconds,
		}, admit.BrownoutConfig{
			EnterDelaySeconds: o.BrownoutEnterSeconds,
			ExitDelaySeconds:  o.BrownoutExitSeconds,
			MinDwellSeconds:   o.BrownoutMinDwellSeconds,
			ProbationSeconds:  o.BrownoutProbationSeconds,
			ImprovementFactor: o.BrownoutImprovementFactor,
		}
}

// BrownoutEvent is one transition of the fleet brownout controller.
type BrownoutEvent struct {
	// AtSeconds is the transition time on host uptime.
	AtSeconds float64
	// Kind is "enter", "exit" or "rollback".
	Kind string
	// QueueDelaySeconds is the queue-delay EWMA at transition time.
	QueueDelaySeconds float64
}

// OverloadStatus is a point-in-time snapshot of the fleet's
// overload-protection loop.
type OverloadStatus struct {
	// Enabled is true when the fleet was served with
	// ServeOptions.Overload.
	Enabled bool
	// BrownedOut is true while every engine is forced onto its cheap
	// rung; Dropping while the admission controller's CoDel state is
	// draining a standing queue.
	BrownedOut bool
	Dropping   bool
	// QueueDelaySeconds is the queue-delay EWMA; ServiceSeconds the
	// per-event service-time EWMA.
	QueueDelaySeconds float64
	ServiceSeconds    float64
	// Sheds / Admitted count admission decisions per class, keyed by
	// the class label ("batch", "interactive", "alert").
	Sheds    map[string]uint64
	Admitted map[string]uint64
	// BrownoutEnters / BrownoutExits / BrownoutRollbacks count the
	// controller's transitions.
	BrownoutEnters    uint64
	BrownoutExits     uint64
	BrownoutRollbacks uint64
}

// OverloadStatus reports the overload-protection loop's state. On a
// fleet served without ServeOptions.Overload only Enabled=false is
// populated.
func (f *Fleet) OverloadStatus() OverloadStatus {
	if f.admit == nil {
		return OverloadStatus{}
	}
	st := OverloadStatus{
		Enabled:           true,
		BrownedOut:        f.brown.Active(),
		Dropping:          f.admit.Dropping(),
		QueueDelaySeconds: f.admit.QueueDelay(),
		ServiceSeconds:    f.admit.ServiceEstimate(),
		Sheds:             make(map[string]uint64, admit.NumClasses),
		Admitted:          make(map[string]uint64, admit.NumClasses),
	}
	sheds, admitted := f.admit.Sheds(), f.admit.Admitted()
	for c := admit.Class(0); c < admit.Class(admit.NumClasses); c++ {
		st.Sheds[c.String()] = sheds[c]
		st.Admitted[c.String()] = admitted[c]
	}
	st.BrownoutEnters, st.BrownoutExits, st.BrownoutRollbacks = f.brown.Counts()
	return st
}

// BrownoutLog returns the fleet brownout controller's bounded
// transition log, oldest first. Fleets without overload protection
// return nil.
func (f *Fleet) BrownoutLog() []BrownoutEvent {
	if f.brown == nil {
		return nil
	}
	events, _ := f.brown.Events()
	out := make([]BrownoutEvent, len(events))
	for i, ev := range events {
		out[i] = BrownoutEvent{AtSeconds: ev.TimeSeconds, Kind: ev.Kind, QueueDelaySeconds: ev.DelaySeconds}
	}
	return out
}

// AdaptiveStatus reports the adaptive loop's current state. On an
// engine without Config.Adaptive only the active-cut cell counts are
// populated.
func (e *Engine) AdaptiveStatus() AdaptiveStatus {
	var st AdaptiveStatus
	st.SensorCells, st.AggregatorCells = e.sys().Placement.Counts()
	if e.res == nil || e.res.ctrl == nil {
		return st
	}
	e.res.mu.Lock()
	defer e.res.mu.Unlock()
	est := e.res.ctrl.Estimator().Estimate()
	st.Enabled = true
	st.EstimatedLoss = est.Loss
	st.EstimatedOutage = est.Outage
	st.Samples = est.Samples
	st.OnProbation = e.res.ctrl.OnProbation()
	for _, d := range e.res.ctrl.Decisions() {
		switch d.Kind {
		case "swap":
			st.Swaps++
		case "rollback":
			st.Rollbacks++
		}
	}
	return st
}

// RecutHopFromEstimate is the k-way arm of the adaptive loop: it reads
// the engine's live channel estimate (the same EWMA that drives the
// 2-end re-cut controller) and re-optimizes one hop of the plan under
// it. Engines without Config.Adaptive re-cut under a clean channel —
// still exact, just not drift-aware. The decision lands on the plan's
// log like a manual RecutHop.
func (p *TierPlan) RecutHopFromEstimate(e *Engine, hop int) (bool, error) {
	var loss, outage float64
	if e != nil && e.res != nil && e.res.ctrl != nil {
		e.res.mu.Lock()
		est := e.res.ctrl.Estimator().Estimate()
		e.res.mu.Unlock()
		loss, outage = est.Loss, est.Outage
	}
	return p.RecutHop(hop, loss, outage)
}
