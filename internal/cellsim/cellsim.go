// Package cellsim is a cycle-stepped simulation of the in-sensor cell
// array: the asynchronous micro-unit of Fig. 3 executed at clock-cycle
// granularity.
//
// Each in-sensor functional cell steps through the states of the paper's
// circuit: power-gated Idle (input channel passively waits, everything
// else off), a short Wake transition when every data-ready input is
// asserted, Working for its characterized cycle count, then Done with
// the output-ready flag raised toward its consumers.
//
// The simulator serves two purposes:
//
//   - It validates internal/xsystem's analytical front-end model: the
//     cycle at which the last cell finishes must equal the critical
//     path computed by DelayOf, and per-cell energy must equal the
//     celllib characterization exactly.
//
//   - It quantifies power gating (design rule 1): UngatedEnergy is what
//     the same schedule would cost if idle cells leaked their static
//     power for the whole event — the overhead the asynchronous
//     power-gated design eliminates.
package cellsim

import (
	"fmt"
	"sort"

	"xpro/internal/celllib"
	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
)

// State is a cell's simulation state.
type State int

const (
	// Idle: power-gated, waiting for inputs (Fig. 3 "idle").
	Idle State = iota
	// Working: private clock running, S-ALU executing.
	Working
	// Done: output buffer valid, back to gated.
	Done
)

func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Working:
		return "working"
	default:
		return "done"
	}
}

// CellStats is the simulated timeline of one cell.
type CellStats struct {
	ID topology.CellID
	// StartCycle is when every input was ready and the cell woke.
	StartCycle int64
	// DoneCycle is when the output-ready flag rose.
	DoneCycle int64
	// Energy is the cell's event energy (dynamic + active static).
	Energy float64
}

// Result is the outcome of simulating one event through the in-sensor
// array.
type Result struct {
	// CompletionCycle is when the last in-sensor cell finished.
	CompletionCycle int64
	// Cells holds per-cell timelines, indexed by position in the
	// simulated (in-sensor) order.
	Cells []CellStats
	// GatedEnergy is the total with power gating: cells draw only while
	// Working (this equals the sum of the celllib characterizations).
	GatedEnergy float64
	// UngatedEnergy adds the static power idle cells would leak from
	// cycle 0 until the array completes if they were never gated off.
	UngatedEnergy float64
}

// GatingSavings is the fraction of ungated energy that power gating
// eliminates.
func (r *Result) GatingSavings() float64 {
	if r.UngatedEnergy == 0 {
		return 0
	}
	return 1 - r.GatedEnergy/r.UngatedEnergy
}

// Simulate steps the in-sensor subarray of (g, p) cycle by cycle for one
// event. Inputs from the source or from aggregator-placed producers are
// treated as available at cycle 0 (matching the front-end component of
// the Fig. 10 decomposition).
func Simulate(g *topology.Graph, p partition.Placement, hw *sensornode.Hardware) (*Result, error) {
	if len(p) != len(g.Cells) {
		return nil, fmt.Errorf("cellsim: placement covers %d cells, graph has %d", len(p), len(g.Cells))
	}
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}

	type cell struct {
		id     topology.CellID
		state  State
		start  int64
		done   int64
		cycles int64
		inputs []topology.CellID // in-sensor producers to wait for
	}
	var cells []*cell
	index := make(map[topology.CellID]*cell)
	for i := range g.Cells {
		id := topology.CellID(i)
		if !p.OnSensor(id) {
			continue
		}
		c := &cell{id: id, state: Idle, cycles: hw.Profiles[id].Cycles}
		for _, e := range g.InEdges(id) {
			if e.From != topology.SourceID && p.OnSensor(e.From) {
				c.inputs = append(c.inputs, e.From)
			}
		}
		cells = append(cells, c)
		index[id] = c
	}
	if len(cells) == 0 {
		return &Result{}, nil
	}

	ready := func(c *cell, now int64) bool {
		for _, dep := range c.inputs {
			d := index[dep]
			if d.state != Done || d.done > now {
				return false
			}
		}
		return true
	}

	var now int64
	remaining := len(cells)
	for remaining > 0 {
		progressed := false
		for _, c := range cells {
			switch c.state {
			case Idle:
				if ready(c, now) {
					c.state = Working
					c.start = now
					progressed = true
				}
			case Working:
				if now-c.start >= c.cycles {
					c.state = Done
					c.done = now
					remaining--
					progressed = true
				}
			}
		}
		if remaining == 0 {
			break
		}
		if !progressed {
			// Advance time to the next completion instead of stepping
			// every cycle (the schedule only changes at completions).
			next := int64(-1)
			for _, c := range cells {
				if c.state == Working {
					if end := c.start + c.cycles; next < 0 || end < next {
						next = end
					}
				}
			}
			if next < 0 {
				return nil, fmt.Errorf("cellsim: deadlock at cycle %d with %d cells pending", now, remaining)
			}
			now = next
		}
	}

	res := &Result{}
	for _, c := range cells {
		if c.done > res.CompletionCycle {
			res.CompletionCycle = c.done
		}
	}
	for _, c := range cells {
		prof := hw.Profiles[c.id]
		res.Cells = append(res.Cells, CellStats{ID: c.id, StartCycle: c.start, DoneCycle: c.done, Energy: prof.Energy()})
		res.GatedEnergy += prof.Energy()
		// Ungated: the cell's static share would burn for the whole
		// event, not just its working window.
		if prof.Cycles > 0 {
			staticPerCycle := prof.StaticEnergy / float64(prof.Cycles)
			idleCycles := res.CompletionCycle - prof.Cycles
			if idleCycles > 0 {
				res.UngatedEnergy += staticPerCycle * float64(idleCycles)
			}
		}
	}
	res.UngatedEnergy += res.GatedEnergy
	return res, nil
}

// CompletionSeconds converts the completion cycle to seconds at the cell
// clock.
func (r *Result) CompletionSeconds() float64 {
	return float64(r.CompletionCycle) / celllib.ClockHz
}

// PeakPower returns the maximum instantaneous power of the array during
// the event: at any cycle, the sum of the average active power of every
// cell whose working window covers it. Battery and regulator sizing care
// about this peak, not just the per-event energy.
func PeakPower(r *Result, hw *sensornode.Hardware) float64 {
	type edge struct {
		at    int64
		delta float64
	}
	var edges []edge
	for _, cs := range r.Cells {
		p := hw.Profiles[cs.ID].Power()
		edges = append(edges, edge{at: cs.StartCycle, delta: p}, edge{at: cs.DoneCycle, delta: -p})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		// Close windows before opening new ones at the same cycle.
		return edges[i].delta < edges[j].delta
	})
	var cur, peak float64
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
