package biosig

import (
	"fmt"
	"math"
	"math/rand"
)

// This file injects the measurement artifacts real wearables suffer —
// the robustness dimension a lab-corpus evaluation (the paper's, and our
// clean synthetic one) does not cover. Corrupt produces degraded copies
// of segments so the classification stack can be stress-tested.

// Artifact is a class of on-body measurement corruption.
type Artifact int

const (
	// MotionArtifact is a large low-frequency excursion from body
	// movement tugging the electrode.
	MotionArtifact Artifact = iota
	// ElectrodePop is a step discontinuity from momentary contact loss.
	ElectrodePop
	// BaselineDrift is a slow ramp from electrode polarization.
	BaselineDrift
	// MuscleNoise is broadband interference from nearby muscle activity.
	MuscleNoise
)

func (a Artifact) String() string {
	switch a {
	case MotionArtifact:
		return "motion"
	case ElectrodePop:
		return "pop"
	case BaselineDrift:
		return "drift"
	case MuscleNoise:
		return "emg-noise"
	default:
		return fmt.Sprintf("Artifact(%d)", int(a))
	}
}

// Artifacts lists all artifact classes.
var Artifacts = []Artifact{MotionArtifact, ElectrodePop, BaselineDrift, MuscleNoise}

// Corrupt returns a copy of seg with the artifact applied at the given
// severity ∈ [0, 1]. Severity 0 returns an unchanged copy. The result is
// re-normalized to [0, 1] exactly like a fresh acquisition (the front
// end normalizes whatever it measures).
func Corrupt(seg Segment, kind Artifact, severity float64, rng *rand.Rand) (Segment, error) {
	if severity < 0 || severity > 1 {
		return Segment{}, fmt.Errorf("biosig: severity %v outside [0,1]", severity)
	}
	n := len(seg.Samples)
	out := Segment{Samples: append([]float64(nil), seg.Samples...), Label: seg.Label}
	if severity == 0 || n == 0 {
		return out, nil
	}
	switch kind {
	case MotionArtifact:
		c := rng.Float64() * float64(n)
		w := float64(n) * (0.1 + 0.2*rng.Float64())
		amp := 2 * severity
		for i := range out.Samples {
			d := (float64(i) - c) / w
			out.Samples[i] += amp * math.Exp(-0.5*d*d)
		}
	case ElectrodePop:
		at := 1 + rng.Intn(n-1)
		step := severity * (1 + rng.Float64())
		if rng.Intn(2) == 0 {
			step = -step
		}
		for i := at; i < n; i++ {
			out.Samples[i] += step
		}
	case BaselineDrift:
		slope := severity * 1.5
		for i := range out.Samples {
			out.Samples[i] += slope * float64(i) / float64(n)
		}
	case MuscleNoise:
		sd := severity * 0.5
		for i := range out.Samples {
			out.Samples[i] += sd * rng.NormFloat64()
		}
	default:
		return Segment{}, fmt.Errorf("biosig: unknown artifact %d", kind)
	}
	normalize01(out.Samples)
	return out, nil
}

// CorruptDataset corrupts the given fraction of segments (picked
// deterministically by rng), cycling through the artifact classes.
func CorruptDataset(d *Dataset, fraction, severity float64, rng *rand.Rand) (*Dataset, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("biosig: fraction %v outside [0,1]", fraction)
	}
	out := &Dataset{Name: d.Name, Symbol: d.Symbol, SegLen: d.SegLen}
	out.Segs = make([]Segment, len(d.Segs))
	k := 0
	for i, seg := range d.Segs {
		if rng.Float64() < fraction {
			c, err := Corrupt(seg, Artifacts[k%len(Artifacts)], severity, rng)
			if err != nil {
				return nil, err
			}
			out.Segs[i] = c
			k++
			continue
		}
		out.Segs[i] = Segment{Samples: append([]float64(nil), seg.Samples...), Label: seg.Label}
	}
	return out, nil
}
