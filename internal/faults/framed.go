package faults

import (
	"math"

	"xpro/internal/frame"
	"xpro/internal/wireless"
)

// Framing configures the integrity layer of a value-aware send: every
// transceiver packet is wrapped in an internal/frame envelope (sequence
// number + CRC-16/CCITT) so the receiver detects corruption,
// duplication and reordering instead of silently consuming garbage.
type Framing struct {
	// Impute selects how values lost with their frames are repaired.
	Impute frame.ImputePolicy
	// MaxLossFraction is the largest fraction of a payload's frames
	// that may be lost (after per-frame retries) before the transfer
	// fails outright with *wireless.ErrDropped. Zero or negative means
	// the default 0.5: lose up to half the frames and impute.
	MaxLossFraction float64
}

func (f *Framing) maxLossFraction() float64 {
	if f == nil || f.MaxLossFraction <= 0 {
		return 0.5
	}
	return f.MaxLossFraction
}

// SendValues moves dataBits carrying `values` equal-width code words
// across the link, modeling the receive side faithfully enough for the
// functional simulation to decode what actually arrived.
//
// With fr == nil the wire format is the legacy bare one: corruption in
// a BitFlip window is DELIVERED (the receiver has no checksum), and the
// returned report pins which value saw which XOR mask; duplication and
// reordering smear adjacent value blocks in place. With no corruption
// windows active this path consumes the link RNG identically to Send,
// so seeded replays of corruption-free plans are bit-identical to the
// legacy transport.
//
// With fr != nil every packet carries frame.IntegrityBits of envelope
// on the air. Frames whose CRC would fail are rejected and retried,
// consuming transmit/receive energy and retry budget exactly like
// losses; duplicates and reordering are recovered by sequence number.
// Frames still missing after the retry budget do not fail the transfer
// (up to fr.MaxLossFraction of the payload): their value indices come
// back in the report's Missing list for imputation downstream.
//
// The returned report is nil when the payload could not be framed
// (values <= 0, or fewer bits than values); the call then degrades to
// the legacy Send path.
func (l *Link) SendValues(dataBits int64, values int, fr *Framing) (wireless.Transfer, *frame.RxReport, error) {
	perValue := int64(0)
	if values > 0 {
		perValue = dataBits / int64(values)
	}
	if perValue <= 0 || wireless.Packets(dataBits) >= 256 {
		tr, retransmissions, err := l.send(dataBits)
		if l.Observer != nil {
			l.Observer(tr, retransmissions, err)
		}
		return tr, nil, err
	}
	tr, rx, retransmissions, err := l.sendValues(dataBits, values, perValue, fr)
	if l.Observer != nil {
		l.Observer(tr, retransmissions, err)
	}
	return tr, rx, err
}

func (l *Link) sendValues(dataBits int64, values int, perValue int64, fr *Framing) (wireless.Transfer, *frame.RxReport, int, error) {
	now := l.Clock.Now()
	st := l.Plan.At(now)
	var tr wireless.Transfer
	tr.DataBits = dataBits
	if st.LinkDown || st.HubDown {
		return tr, nil, 0, &ErrLinkDown{At: now, Until: l.Plan.LinkDownUntil(now)}
	}
	loss := l.BaseLoss
	if st.Loss > loss {
		loss = st.Loss
	}
	packets := wireless.Packets(dataBits)
	rx := &frame.RxReport{Frames: int(packets)}
	charge := func(bits int64) {
		tr.WireBits += bits
		tr.TxEnergy += float64(bits) * l.Model.TxJPerBit
		tr.RxEnergy += float64(bits) * l.Model.RxJPerBit
		tr.Delay += float64(bits) / l.Model.RateBps
	}
	retransmissions := 0

	if fr == nil {
		err := l.sendUnframed(dataBits, values, perValue, packets, loss, st, rx, charge, &retransmissions)
		return tr, rx, retransmissions, err
	}

	// Framed path: each packet wears frame.IntegrityBits of envelope.
	// Track arrival order so the reassembler — the same type the
	// receiver runs — recovers duplicates and reordering by sequence
	// number and pins what is genuinely missing.
	var arrivals []uint8
	pendingSwap := false
	for p := int64(0); p < packets; p++ {
		payloadBits := int64(wireless.MaxPayloadBits)
		if rem := dataBits - p*wireless.MaxPayloadBits; rem < payloadBits {
			payloadBits = rem
		}
		frameBits := payloadBits + wireless.HeaderBits + frame.IntegrityBits
		delivered := false
		for attempt := 0; attempt <= l.MaxRetries; attempt++ {
			if attempt > 0 {
				retransmissions++
			}
			charge(frameBits)
			if loss > 0 && l.rng.Float64() < loss {
				continue // radio loss: retry
			}
			if st.BitErrorRate > 0 {
				pFlip := 1 - math.Pow(1-st.BitErrorRate, float64(frameBits))
				if l.rng.Float64() < pFlip {
					// CRC rejects the frame on arrival: the energy is
					// spent and the retry budget consumed, exactly as
					// if the radio had dropped it.
					rx.CorruptDetected++
					continue
				}
			}
			delivered = true
			break
		}
		if !delivered {
			continue // lost beyond the retry budget; impute downstream
		}
		arrivals = append(arrivals, uint8(p))
		if pendingSwap && len(arrivals) >= 2 {
			arrivals[len(arrivals)-1], arrivals[len(arrivals)-2] = arrivals[len(arrivals)-2], arrivals[len(arrivals)-1]
		}
		pendingSwap = false
		if st.DupRate > 0 && l.rng.Float64() < st.DupRate {
			charge(frameBits) // the duplicate burns air time too
			arrivals = append(arrivals, uint8(p))
		}
		if st.ReorderRate > 0 && p+1 < packets && l.rng.Float64() < st.ReorderRate {
			pendingSwap = true // this frame arrives after its successor
		}
	}

	var ra frame.Reassembler
	ra.Start(0) // the receiver knows streams start at sequence 0
	for _, s := range arrivals {
		ra.Observe(s)
	}
	_, dups, late := ra.Stats()
	rx.Duplicates, rx.Reordered = dups, late
	// A virtual end-of-burst marker: the receiver knows the expected
	// frame count, so frames lost off the tail are gaps too.
	ra.Observe(uint8(packets))
	missing := ra.Missing()
	rx.LostFrames = len(missing)
	if rx.LostFrames > 0 {
		if float64(rx.LostFrames) > fr.maxLossFraction()*float64(packets) {
			return tr, rx, retransmissions, &wireless.ErrDropped{Packet: int(missing[0])}
		}
		last := -1
		for _, m := range missing {
			lo, hi := valueSpan(int64(m), dataBits, perValue, values)
			for v := lo; v <= hi; v++ {
				if v > last {
					rx.Missing = append(rx.Missing, v)
					last = v
				}
			}
		}
	}
	return tr, rx, retransmissions, nil
}

// sendUnframed replays the legacy bare-wire format under corruption:
// no checksum, no sequence numbers, so every fault lands in the data.
func (l *Link) sendUnframed(dataBits int64, values int, perValue, packets int64, loss float64, st State, rx *frame.RxReport, charge func(int64), retransmissions *int) error {
	for p := int64(0); p < packets; p++ {
		payloadBits := int64(wireless.MaxPayloadBits)
		if rem := dataBits - p*wireless.MaxPayloadBits; rem < payloadBits {
			payloadBits = rem
		}
		bits := payloadBits + wireless.HeaderBits
		delivered := false
		flipPos := -1
		for attempt := 0; attempt <= l.MaxRetries; attempt++ {
			if attempt > 0 {
				*retransmissions++
			}
			charge(bits)
			if loss == 0 || l.rng.Float64() >= loss {
				delivered = true
				if st.BitErrorRate > 0 {
					pFlip := 1 - math.Pow(1-st.BitErrorRate, float64(bits))
					if l.rng.Float64() < pFlip {
						flipPos = l.rng.Intn(int(payloadBits))
					}
				}
				break
			}
		}
		if !delivered {
			return &wireless.ErrDropped{Packet: int(p)}
		}
		if flipPos >= 0 {
			// The flip lands in one value's code word and is consumed
			// as-is: the receiver has nothing to check it against.
			globalBit := p*wireless.MaxPayloadBits + int64(flipPos)
			vIdx := int(globalBit / perValue)
			if vIdx < values {
				if rx.CorruptValues == nil {
					rx.CorruptValues = make(map[int]uint64)
				}
				rx.CorruptValues[vIdx] ^= 1 << uint(globalBit%perValue)
				rx.CorruptDelivered++
			}
		}
		if st.DupRate > 0 && l.rng.Float64() < st.DupRate {
			charge(bits)
			rx.Duplicates++
			// Without sequence numbers the late copy overwrites the
			// successor's slots (a one-packet smear — the documented
			// simplification of an unsynchronized stream).
			if p+1 < packets {
				aLo, aHi := valueSpan(p, dataBits, perValue, values)
				bLo, bHi := valueSpan(p+1, dataBits, perValue, values)
				if rx.Moved == nil {
					rx.Moved = make(map[int]int)
				}
				for k := 0; bLo+k <= bHi && aLo+k <= aHi; k++ {
					rx.Moved[bLo+k] = aLo + k
				}
			}
		}
		if st.ReorderRate > 0 && p+1 < packets && l.rng.Float64() < st.ReorderRate {
			rx.Reordered++
			// Adjacent packets swap in flight; their value blocks swap
			// pairwise on the receive side.
			aLo, aHi := valueSpan(p, dataBits, perValue, values)
			bLo, bHi := valueSpan(p+1, dataBits, perValue, values)
			if rx.Moved == nil {
				rx.Moved = make(map[int]int)
			}
			for k := 0; aLo+k <= aHi && bLo+k <= bHi; k++ {
				rx.Moved[aLo+k], rx.Moved[bLo+k] = bLo+k, aLo+k
			}
		}
	}
	return nil
}

// valueSpan returns the inclusive range of value indices whose code
// words overlap packet p's payload bits.
func valueSpan(p, dataBits, perValue int64, values int) (int, int) {
	lo := p * wireless.MaxPayloadBits
	hi := lo + wireless.MaxPayloadBits - 1
	if end := dataBits - 1; hi > end {
		hi = end
	}
	vLo, vHi := int(lo/perValue), int(hi/perValue)
	if vHi >= values {
		vHi = values - 1
	}
	return vLo, vHi
}
