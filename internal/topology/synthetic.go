package topology

import (
	"fmt"
	"math/rand"

	"xpro/internal/ensemble"
	"xpro/internal/stats"
	"xpro/internal/svm"
)

// Synthetic builds a random but structurally valid XPro topology without
// training a classifier: a DWT chain of random depth, random feature
// cells over the available domains (with Var→StdStage reuse where it
// applies), random SVM fan-in and a fusion cell. It exists for
// property-based testing of everything downstream of the topology —
// the generator, the simulators, the HDL emitter — far beyond the
// handful of shapes real training produces.
//
// The returned graph always passes Validate.
func Synthetic(rng *rand.Rand, segLen int) (*Graph, error) {
	if segLen < 8 {
		return nil, fmt.Errorf("topology: synthetic segment length %d too short", segLen)
	}
	levels := rng.Intn(ensemble.DWTLevels + 1) // 0..5
	// Candidate domains: time always; bands up to the chain depth.
	domains := []int{ensemble.TimeDomain}
	for d := 1; d <= levels; d++ {
		domains = append(domains, d)
	}
	if levels == ensemble.DWTLevels {
		domains = append(domains, ensemble.DWTLevels+1)
	}

	// Random feature subset: at least one feature so SVMs have inputs.
	var used []ensemble.FeatureSpec
	for _, d := range domains {
		for _, f := range stats.AllFeatures {
			if rng.Float64() < 0.35 {
				used = append(used, ensemble.FeatureSpec{Domain: d, Feat: f})
			}
		}
	}
	if len(used) == 0 {
		used = append(used, ensemble.FeatureSpec{Domain: ensemble.TimeDomain, Feat: stats.Mean})
	}
	// Ensure the deepest requested level is actually demanded by some
	// feature, so the chain isn't dangling (Validate requires every DWT
	// cell to feed something; the chain itself consumes intermediate
	// levels, but the last one must have a feature consumer).
	if levels > 0 {
		deepest := levels
		found := false
		for _, fs := range used {
			if domainLevel(fs.Domain) == deepest {
				found = true
				break
			}
		}
		if !found {
			dom := deepest
			if deepest == ensemble.DWTLevels && rng.Intn(2) == 0 {
				dom = ensemble.DWTLevels + 1
			}
			used = append(used, ensemble.FeatureSpec{Domain: dom, Feat: stats.AllFeatures[rng.Intn(stats.NumFeatures)]})
		}
	}
	used = dedupeSpecs(used)

	// Random SVM cells drawing from the used features.
	nSVM := 1 + rng.Intn(8)
	bases := make([]baseInfo, nSVM)
	for i := range bases {
		dim := 1 + rng.Intn(minInt(len(used), 12))
		subset := make([]ensemble.FeatureSpec, dim)
		perm := rng.Perm(len(used))
		for j := 0; j < dim; j++ {
			subset[j] = used[perm[j]]
		}
		bases[i] = baseInfo{
			model:  syntheticModel(rng, dim),
			subset: subset,
		}
	}
	return buildFrom(used, domains, bases, segLen, DefaultOptions())
}

// syntheticModel fabricates an svm.Model with a random support-vector
// count — enough for the celllib sizing buildFrom needs; it is never
// asked to classify.
func syntheticModel(rng *rand.Rand, dim int) *svm.Model {
	m := &svm.Model{Kernel: svm.RBF, Gamma: 1}
	if rng.Intn(4) == 0 {
		m.Kernel = svm.Linear
		m.W = make([]float64, dim)
		return m
	}
	n := 1 + rng.Intn(200)
	m.Vectors = make([][]float64, n)
	m.Coeffs = make([]float64, n)
	for i := range m.Vectors {
		m.Vectors[i] = make([]float64, dim)
	}
	return m
}

func dedupeSpecs(in []ensemble.FeatureSpec) []ensemble.FeatureSpec {
	seen := make(map[ensemble.FeatureSpec]bool, len(in))
	var out []ensemble.FeatureSpec
	for _, fs := range in {
		if !seen[fs] {
			seen[fs] = true
			out = append(out, fs)
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
