package wireless

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPaperModelConstants(t *testing.T) {
	// §4.2: the exact nJ/bit figures of the three implantable radios.
	m := Models()
	if len(m) != 3 {
		t.Fatalf("models = %d, want 3", len(m))
	}
	want := []struct{ tx, rx float64 }{
		{2.9e-9, 3.3e-9},
		{1.53e-9, 1.71e-9},
		{0.42e-9, 0.295e-9},
	}
	for i, w := range want {
		if m[i].TxJPerBit != w.tx || m[i].RxJPerBit != w.rx {
			t.Errorf("model %d: (%v,%v), want (%v,%v)", i+1, m[i].TxJPerBit, m[i].RxJPerBit, w.tx, w.rx)
		}
		if m[i].Index != i+1 {
			t.Errorf("model index = %d, want %d", m[i].Index, i+1)
		}
		if m[i].RateBps != 2e6 {
			t.Errorf("model %d rate = %v, want 2 Mb/s", i+1, m[i].RateBps)
		}
	}
	if m[0].TxEnergyPerBit() != 2.9e-9 || m[0].RxEnergyPerBit() != 3.3e-9 {
		t.Error("per-bit accessors wrong")
	}
}

func TestPackets(t *testing.T) {
	cases := []struct {
		data, packets, wire int64
	}{
		{0, 0, 0},
		{1, 1, 9},
		{256, 1, 264},
		{257, 2, 273},
		{2048, 8, 2112}, // a 128-sample × 16-bit raw segment
	}
	for _, c := range cases {
		if got := Packets(c.data); got != c.packets {
			t.Errorf("Packets(%d) = %d, want %d", c.data, got, c.packets)
		}
		if got := WireBits(c.data); got != c.wire {
			t.Errorf("WireBits(%d) = %d, want %d", c.data, got, c.wire)
		}
		// A 32-bit integrity envelope rides on every packet.
		if got, want := FramedWireBits(c.data, 32), c.wire+32*c.packets; got != want {
			t.Errorf("FramedWireBits(%d, 32) = %d, want %d", c.data, got, want)
		}
	}
}

func TestCost(t *testing.T) {
	m := Model2()
	tr := m.Cost(256)
	if tr.WireBits != 264 {
		t.Fatalf("wire bits = %d", tr.WireBits)
	}
	if math.Abs(tr.TxEnergy-264*1.53e-9) > 1e-18 {
		t.Errorf("tx energy = %v", tr.TxEnergy)
	}
	if math.Abs(tr.RxEnergy-264*1.71e-9) > 1e-18 {
		t.Errorf("rx energy = %v", tr.RxEnergy)
	}
	if math.Abs(tr.Delay-264/2e6) > 1e-15 {
		t.Errorf("delay = %v", tr.Delay)
	}
	zero := m.Cost(0)
	if zero.TxEnergy != 0 || zero.Delay != 0 || zero.WireBits != 0 {
		t.Error("zero payload should cost nothing")
	}
}

func TestModelOrdering(t *testing.T) {
	// Model 1 > Model 2 > Model 3 on both tx and rx energy.
	ms := Models()
	for i := 0; i < len(ms)-1; i++ {
		if ms[i].TxJPerBit <= ms[i+1].TxJPerBit || ms[i].RxJPerBit <= ms[i+1].RxJPerBit {
			t.Errorf("model %d should cost more than model %d", i+1, i+2)
		}
	}
}

func TestChannelLossless(t *testing.T) {
	ch, err := NewChannel(Model2(), 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ch.Send(1000)
	if err != nil {
		t.Fatal(err)
	}
	want := Model2().Cost(1000)
	if tr.WireBits != want.WireBits || math.Abs(tr.TxEnergy-want.TxEnergy) > 1e-12*want.TxEnergy {
		t.Errorf("lossless channel cost %+v, want %+v", tr, want)
	}
	if ch.ExpectedInflation() != 1 {
		t.Error("lossless inflation should be 1")
	}
}

func TestChannelLossyInflates(t *testing.T) {
	ch, err := NewChannel(Model2(), 0.3, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	n := 200
	for i := 0; i < n; i++ {
		tr, err := ch.Send(2048)
		if err != nil {
			t.Fatal(err)
		}
		total += float64(tr.WireBits)
	}
	clean := float64(WireBits(2048))
	inflation := total / (float64(n) * clean)
	// Expected ≈ 1/(1−0.3) ≈ 1.43.
	if inflation < 1.25 || inflation > 1.65 {
		t.Errorf("observed inflation %v, want ≈ 1.43", inflation)
	}
	if e := ch.ExpectedInflation(); math.Abs(e-1/(1-0.3)) > 0.01 {
		t.Errorf("expected inflation %v, want ≈ 1.43", e)
	}
}

func TestChannelDrops(t *testing.T) {
	ch, err := NewChannel(Model3(), 0.95, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	dropped := false
	for i := 0; i < 50 && !dropped; i++ {
		_, err := ch.Send(2048)
		var de *ErrDropped
		if errors.As(err, &de) {
			dropped = true
			if de.Error() == "" {
				t.Error("empty drop error message")
			}
		}
	}
	if !dropped {
		t.Error("95% loss with no retries should drop within 50 sends")
	}
}

func TestChannelValidation(t *testing.T) {
	if _, err := NewChannel(Model1(), -0.1, 1, 1); err == nil {
		t.Error("negative loss should error")
	}
	if _, err := NewChannel(Model1(), 1.0, 1, 1); err == nil {
		t.Error("loss=1 should error")
	}
	if _, err := NewChannel(Model1(), 0.1, -1, 1); err == nil {
		t.Error("negative retries should error")
	}
}

func TestStringer(t *testing.T) {
	s := Model2().String()
	if s == "" || s[:6] != "model2" {
		t.Errorf("model string = %q", s)
	}
}

// Property: wire bits are monotone in payload and never less than the
// payload itself; header overhead is bounded by one header per
// MaxPayloadBits.
func TestQuickWireBits(t *testing.T) {
	f := func(raw uint16) bool {
		d := int64(raw)
		w := WireBits(d)
		if w < d {
			return false
		}
		if d > 0 && w > d+((d/MaxPayloadBits)+1)*HeaderBits {
			return false
		}
		return WireBits(d+1) >= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: cost scales linearly with wire bits for every model.
func TestQuickCostLinear(t *testing.T) {
	f := func(raw uint16, mi uint8) bool {
		d := int64(raw) + 1
		m := Models()[int(mi)%3]
		tr := m.Cost(d)
		wantTx := float64(WireBits(d)) * m.TxJPerBit
		return math.Abs(tr.TxEnergy-wantTx) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCost(b *testing.B) {
	m := Model2()
	for i := 0; i < b.N; i++ {
		_ = m.Cost(2048)
	}
}

func TestNewChannelRejectsNaN(t *testing.T) {
	// NaN fails every comparison, so naive range checks let it through;
	// the constructor must reject it explicitly.
	if _, err := NewChannel(Model2(), math.NaN(), 3, 1); err == nil {
		t.Error("NaN loss should be rejected")
	}
	for _, loss := range []float64{-0.1, 1, 1.5, math.Inf(1)} {
		if _, err := NewChannel(Model2(), loss, 3, 1); err == nil {
			t.Errorf("loss %v should be rejected", loss)
		}
	}
	if _, err := NewChannel(Model2(), 0.999, 3, 1); err != nil {
		t.Errorf("loss just under 1 should be accepted: %v", err)
	}
}

// On a drop, SendStats must still return the partial transfer cost and
// the retransmissions actually made alongside the error — callers
// account the energy of the failed attempts too.
func TestSendStatsPartialCostOnDrop(t *testing.T) {
	ch, err := NewChannel(Model2(), 0.9999, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr, retrans, err := ch.SendStats(1000)
	var dropped *ErrDropped
	if !errors.As(err, &dropped) {
		t.Fatalf("err = %v, want *ErrDropped", err)
	}
	if tr.WireBits == 0 || tr.TxEnergy == 0 || tr.RxEnergy == 0 || tr.Delay == 0 {
		t.Errorf("partial transfer not accounted: %+v", tr)
	}
	if retrans == 0 {
		t.Error("near-certain loss should have retransmitted before dropping")
	}
	// Every attempt (first tries + observed retransmissions) is on the
	// wire, each at least one header longer than its payload share.
	attempts := int64(retrans) + 1
	if tr.WireBits < attempts*HeaderBits {
		t.Errorf("wire bits %d inconsistent with %d attempts", tr.WireBits, attempts)
	}
}

func TestSendStatsCleanNoRetransmissions(t *testing.T) {
	ch, err := NewChannel(Model2(), 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, retrans, err := ch.SendStats(512)
	if err != nil || retrans != 0 {
		t.Fatalf("clean channel: err=%v retrans=%d", err, retrans)
	}
	if want := Model2().Cost(512); tr != want {
		t.Errorf("clean transfer %+v, want %+v", tr, want)
	}
}
