package xpro

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"xpro/internal/adaptive"
	"xpro/internal/faults"
	"xpro/internal/telemetry"
	"xpro/internal/xsystem"
)

// This file is the crash-tolerance layer of the engine: the durable
// per-subject state record, its CRC-enveloped checkpoint + append-only
// journal encoding (the persist.go snapshot discipline, applied to the
// tiny mutable half of an engine), and the Checkpoint/Recover API. The
// split matters for the population-scale fleet: everything trained and
// generated (classifier, topology, placement) is immutable and shared,
// while the state a crash wipes — breaker, channel estimator, RNG
// cursor, battery and quarantine ledgers, the modeled clock — fits in
// one fixed 117-byte record per subject. Checkpoint + journal replay
// reconstructs that record exactly, so a recovered engine continues
// the seeded timeline bit-identically to one that never died.

// ErrNodeDown marks a classification rejected because the subject's
// node is inside a node-crash or reboot fault window: the node is off
// the air, and nothing — not even the fallback ladder — can serve the
// event. Match with errors.Is; errors.As gives the *NodeDownError
// carrying the outage interval.
var ErrNodeDown = errors.New("xpro: node down")

// NodeDownError reports an event that arrived while the node was
// crashed or rebooting. The modeled clock still advances for the
// event (time passes whether or not the node is up), so a stream of
// arrivals eventually carries the node past UntilSeconds and it
// rejoins — warm from its durable store when one is attached,
// amnesiac otherwise.
type NodeDownError struct {
	// AtSeconds is the modeled arrival time; UntilSeconds when every
	// covering node-down window ends.
	AtSeconds    float64
	UntilSeconds float64
	// Graceful is true for an ordered reboot (the node flushed a final
	// checkpoint before going dark), false for a hard power loss.
	Graceful bool
}

func (e *NodeDownError) Error() string {
	kind := "crashed"
	if e.Graceful {
		kind = "rebooting"
	}
	return fmt.Sprintf("xpro: node %s at %.3fs (down until %.3fs)", kind, e.AtSeconds, e.UntilSeconds)
}

// Is makes errors.Is(err, ErrNodeDown) match.
func (e *NodeDownError) Is(target error) bool { return target == ErrNodeDown }

// ErrRecoveryCorrupt marks durable state that cannot be trusted: a
// checkpoint or journal that is structurally damaged beyond the
// crash-consistent torn tail Recover tolerates. Match with errors.Is;
// errors.As gives the *RecoveryError pinning the damage.
var ErrRecoveryCorrupt = errors.New("xpro: durable state corrupt")

// RecoveryError reports where durable-state decoding failed.
type RecoveryError struct {
	// Section is "checkpoint" or "journal"; Record the 0-based journal
	// record at fault (checkpoint errors report 0).
	Section string
	Record  int
	// Reason says what was wrong: bad magic, checksum mismatch,
	// sequence gap, duplicate record, out-of-range field.
	Reason string
}

func (e *RecoveryError) Error() string {
	if e.Section == "journal" {
		return fmt.Sprintf("xpro: journal record %d: %s", e.Record, e.Reason)
	}
	return fmt.Sprintf("xpro: checkpoint: %s", e.Reason)
}

// Is makes errors.Is(err, ErrRecoveryCorrupt) match.
func (e *RecoveryError) Is(target error) bool { return target == ErrRecoveryCorrupt }

// SubjectState is the durable per-subject mutable state: everything a
// node crash wipes and a recovery must reconstruct for the seeded
// timeline to continue bit-identically. It is deliberately tiny — the
// trained classifier, topology and placement are immutable and rebuilt
// from Config (or a persist.go snapshot); this record is the part that
// changes per event.
type SubjectState struct {
	// Seq counts the events applied to the modeled timeline (served,
	// degraded or quarantined — everything that advanced the clock
	// except node-down rejections). Journal records carry consecutive
	// Seq values; a gap or duplicate is corruption.
	Seq uint64
	// ClockSeconds is the modeled clock after the last applied event.
	ClockSeconds float64
	// Breaker is the circuit breaker state ("closed", "half-open",
	// "open"), with its consecutive-failure streak and — while open —
	// the modeled time it opened.
	Breaker                string
	BreakerFailures        int
	BreakerOpenedAtSeconds float64
	// RNGDraws is the link RNG cursor: how many values the seeded
	// stream has produced. Re-seeding and discarding this many draws
	// reproduces the stream position exactly.
	RNGDraws uint64
	// EstimatedLoss / EstimatedOutage / EstimatorSamples and the two
	// pending tallies are the adaptive channel estimator's EWMA state
	// (zero without Config.Adaptive) — the warm prior a recovered node
	// resumes from instead of re-learning the channel from scratch.
	EstimatedLoss            float64
	EstimatedOutage          float64
	EstimatorSamples         int
	EstimatorPendingAttempts int64
	EstimatorPendingFailed   int64
	// EnergySpentJoules is the battery ledger: cumulative modeled
	// sensor-node energy this subject's events have drained. Remaining
	// charge is the battery capacity minus this.
	EnergySpentJoules float64
	// QuarantinedEvents / ImputedValues are the integrity ledgers.
	QuarantinedEvents uint64
	ImputedValues     uint64
	// Crashes / Recoveries count in-timeline node-down windows entered
	// and rejoined.
	Crashes    uint64
	Recoveries uint64
	// Tiered is the armed tier runtime's per-hop state (nil on a 2-end
	// engine or before Arm). It rides in the same CRC envelope as an
	// optional extension block, so a tiered engine's checkpoint rewinds
	// the whole ladder — hop breakers, per-hop RNG cursors, probe
	// schedule, steady rung — not just the 2-end core.
	Tiered *TieredSubjectState
}

// The wire encoding is fixed-width big-endian — deterministic bytes
// per subject, no reflection, no varints — wrapped in the same
// magic + payload + CRC-32 (IEEE) envelope persist.go snapshots use.
// subjectStateBytes is the v1 core; an armed tier plan appends the
// recovery_tiered.go extension block after it, inside the envelope.
const subjectStateBytes = 117

var (
	// checkpointMagic opens a checkpoint envelope; journalMagic opens
	// each append-only journal record.
	checkpointMagic = []byte("xprockpt\x01")
	journalMagic    = []byte("XPJ1")
)

// CheckpointBytes is the exact size of one encoded 2-end checkpoint;
// JournalRecordBytes of one journal record. Capacity planning for a
// million-subject fleet is a multiplication; an armed tier plan adds
// TieredStateBytes(hops) to each.
const (
	CheckpointBytes    = 9 + 4 + subjectStateBytes + 4
	JournalRecordBytes = 4 + 4 + subjectStateBytes + 4
)

var breakerNames = map[string]faults.BreakerState{
	"closed":    faults.BreakerClosed,
	"half-open": faults.BreakerHalfOpen,
	"open":      faults.BreakerOpen,
}

func encodeState(st SubjectState) ([]byte, error) {
	code, ok := breakerNames[st.Breaker]
	if !ok {
		return nil, fmt.Errorf("xpro: unknown breaker state %q", st.Breaker)
	}
	buf := make([]byte, 0, subjectStateBytes)
	u64 := func(v uint64) { buf = binary.BigEndian.AppendUint64(buf, v) }
	f64 := func(v float64) { buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v)) }
	u64(st.Seq)
	f64(st.ClockSeconds)
	buf = append(buf, byte(code))
	buf = binary.BigEndian.AppendUint32(buf, uint32(st.BreakerFailures))
	f64(st.BreakerOpenedAtSeconds)
	u64(st.RNGDraws)
	f64(st.EstimatedLoss)
	f64(st.EstimatedOutage)
	u64(uint64(st.EstimatorSamples))
	u64(uint64(st.EstimatorPendingAttempts))
	u64(uint64(st.EstimatorPendingFailed))
	f64(st.EnergySpentJoules)
	u64(st.QuarantinedEvents)
	u64(st.ImputedValues)
	u64(st.Crashes)
	u64(st.Recoveries)
	if st.Tiered != nil {
		return appendTieredExt(buf, st.Tiered)
	}
	return buf, nil
}

// decodeState parses and validates one fixed-width payload. Every
// range check lives here, so a CRC-valid but hostile record cannot
// smuggle NaN clocks, negative streaks or an unrestorable RNG cursor
// into a live engine.
func decodeState(buf []byte) (SubjectState, error) {
	var st SubjectState
	if len(buf) < subjectStateBytes {
		return st, fmt.Errorf("payload is %d bytes, want at least %d", len(buf), subjectStateBytes)
	}
	off := 0
	u64 := func() uint64 { v := binary.BigEndian.Uint64(buf[off:]); off += 8; return v }
	f64 := func() float64 { return math.Float64frombits(u64()) }
	st.Seq = u64()
	st.ClockSeconds = f64()
	code := faults.BreakerState(buf[off])
	off++
	failures := binary.BigEndian.Uint32(buf[off:])
	off += 4
	st.BreakerOpenedAtSeconds = f64()
	st.RNGDraws = u64()
	st.EstimatedLoss = f64()
	st.EstimatedOutage = f64()
	samples := u64()
	pendA := u64()
	pendF := u64()
	st.EnergySpentJoules = f64()
	st.QuarantinedEvents = u64()
	st.ImputedValues = u64()
	st.Crashes = u64()
	st.Recoveries = u64()

	switch code {
	case faults.BreakerClosed, faults.BreakerHalfOpen, faults.BreakerOpen:
		st.Breaker = code.String()
	default:
		return st, fmt.Errorf("invalid breaker state code %d", int(code))
	}
	if failures > math.MaxInt32 {
		return st, fmt.Errorf("breaker failure streak %d out of range", failures)
	}
	st.BreakerFailures = int(failures)
	if !finite(st.ClockSeconds) || st.ClockSeconds < 0 {
		return st, fmt.Errorf("clock %v must be finite and non-negative", st.ClockSeconds)
	}
	if !finite(st.BreakerOpenedAtSeconds) || st.BreakerOpenedAtSeconds < 0 {
		return st, fmt.Errorf("breaker opened-at %v must be finite and non-negative", st.BreakerOpenedAtSeconds)
	}
	if st.RNGDraws > faults.MaxRNGDraws {
		return st, fmt.Errorf("RNG cursor %d exceeds the restorable maximum", st.RNGDraws)
	}
	if !(st.EstimatedLoss >= 0 && st.EstimatedLoss <= 1) || !(st.EstimatedOutage >= 0 && st.EstimatedOutage <= 1) {
		return st, fmt.Errorf("estimator loss %v / outage %v outside [0,1]", st.EstimatedLoss, st.EstimatedOutage)
	}
	if samples > math.MaxInt32 || pendA > math.MaxInt64 || pendF > math.MaxInt64 {
		return st, fmt.Errorf("estimator counters out of range")
	}
	st.EstimatorSamples = int(samples)
	st.EstimatorPendingAttempts = int64(pendA)
	st.EstimatorPendingFailed = int64(pendF)
	if !finite(st.EnergySpentJoules) || st.EnergySpentJoules < 0 {
		return st, fmt.Errorf("energy ledger %v must be finite and non-negative", st.EnergySpentJoules)
	}
	if len(buf) > subjectStateBytes {
		ts, err := decodeTieredExt(buf[subjectStateBytes:])
		if err != nil {
			return st, err
		}
		st.Tiered = ts
	}
	return st, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// envelope wraps a payload as [magic][len u32][payload][crc32 u32],
// the persist.go discipline with an explicit length for streamed
// journal records.
func envelope(magic, payload []byte) []byte {
	buf := make([]byte, 0, len(magic)+4+len(payload)+4)
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf
}

func encodeCheckpoint(st SubjectState) ([]byte, error) {
	payload, err := encodeState(st)
	if err != nil {
		return nil, err
	}
	return envelope(checkpointMagic, payload), nil
}

func encodeJournalRecord(st SubjectState) ([]byte, error) {
	payload, err := encodeState(st)
	if err != nil {
		return nil, err
	}
	return envelope(journalMagic, payload), nil
}

// decodeCheckpoint parses one checkpoint envelope. Unlike journal
// tails, a damaged checkpoint is never tolerated: it is the recovery
// base, and a wrong base corrupts everything replayed on top.
func decodeCheckpoint(buf []byte) (SubjectState, error) {
	fail := func(reason string) (SubjectState, error) {
		return SubjectState{}, &RecoveryError{Section: "checkpoint", Reason: reason}
	}
	if !bytes.HasPrefix(buf, checkpointMagic) {
		return fail("bad magic")
	}
	body := buf[len(checkpointMagic):]
	if len(body) < 4 {
		return fail("truncated before the length field")
	}
	n := int(binary.BigEndian.Uint32(body))
	if n < subjectStateBytes || n > maxDurablePayload {
		return fail(fmt.Sprintf("payload length %d outside [%d,%d]", n, subjectStateBytes, maxDurablePayload))
	}
	body = body[4:]
	if len(body) < n+4 {
		return fail(fmt.Sprintf("truncated payload (%d of %d bytes)", len(body), n+4))
	}
	if len(body) > n+4 {
		return fail(fmt.Sprintf("%d trailing bytes after the envelope", len(body)-n-4))
	}
	payload, sum := body[:n], body[n:]
	want := binary.BigEndian.Uint32(sum)
	if got := crc32.ChecksumIEEE(payload); got != want {
		return fail(fmt.Sprintf("checksum mismatch (stored %#08x, computed %#08x)", want, got))
	}
	st, err := decodeState(payload)
	if err != nil {
		return fail(err.Error())
	}
	return st, nil
}

// RecoveryReport summarizes what Recover reconstructed.
type RecoveryReport struct {
	// CheckpointSeq is the event sequence the checkpoint carried (0
	// when recovery started from a bare journal).
	CheckpointSeq uint64
	// Seq is the sequence after journal replay — the number of events
	// the recovered engine has applied, exactly.
	Seq uint64
	// JournalRecords counts the intact records replayed on top of the
	// checkpoint.
	JournalRecords int
	// TornTail is true when the journal ended mid-record — the
	// crash-consistent case of dying inside an append. The torn bytes
	// are discarded; state is the last intact record.
	TornTail bool
}

// decodeDurable reconstructs the subject state from checkpoint and
// journal bytes. A damaged final record is tolerated as a torn tail;
// damage anywhere else — bad magic mid-stream, checksum mismatch with
// intact records after it, a sequence gap or duplicate — returns a
// typed *RecoveryError and no state. Either input may be empty, but
// not both.
func decodeDurable(ckpt, jrnl []byte) (SubjectState, RecoveryReport, error) {
	var (
		st   SubjectState
		rep  RecoveryReport
		base bool
	)
	if len(ckpt) > 0 {
		var err error
		st, err = decodeCheckpoint(ckpt)
		if err != nil {
			return SubjectState{}, rep, err
		}
		rep.CheckpointSeq = st.Seq
		base = true
	}
	off := 0
	for rec := 0; off < len(jrnl); rec++ {
		next, parsed, perr := parseJournalRecord(jrnl[off:])
		if perr != "" {
			// A later intact record proves the damage is structural
			// corruption, not a torn final append.
			if rest := jrnl[off:]; laterIntactRecord(rest) {
				return SubjectState{}, RecoveryReport{}, &RecoveryError{Section: "journal", Record: rec, Reason: perr}
			}
			rep.TornTail = true
			break
		}
		if base || rec > 0 {
			switch {
			case parsed.Seq == st.Seq:
				return SubjectState{}, RecoveryReport{}, &RecoveryError{Section: "journal", Record: rec,
					Reason: fmt.Sprintf("duplicate record for event %d", parsed.Seq)}
			case parsed.Seq != st.Seq+1:
				return SubjectState{}, RecoveryReport{}, &RecoveryError{Section: "journal", Record: rec,
					Reason: fmt.Sprintf("sequence gap: record carries event %d after %d", parsed.Seq, st.Seq)}
			}
		}
		st = parsed
		rep.JournalRecords++
		base = true
		off += next
	}
	if !base {
		return SubjectState{}, rep, &RecoveryError{Section: "checkpoint", Reason: "no intact durable state (empty checkpoint and journal)"}
	}
	rep.Seq = st.Seq
	return st, rep, nil
}

// parseJournalRecord decodes one record at the head of buf, returning
// the bytes consumed, or a non-empty reason on failure.
func parseJournalRecord(buf []byte) (int, SubjectState, string) {
	if len(buf) < len(journalMagic)+4 {
		return 0, SubjectState{}, "truncated record header"
	}
	if !bytes.HasPrefix(buf, journalMagic) {
		return 0, SubjectState{}, "bad record magic"
	}
	n := int(binary.BigEndian.Uint32(buf[len(journalMagic):]))
	if n < subjectStateBytes || n > maxDurablePayload {
		return 0, SubjectState{}, fmt.Sprintf("payload length %d outside [%d,%d]", n, subjectStateBytes, maxDurablePayload)
	}
	total := len(journalMagic) + 4 + n + 4
	if len(buf) < total {
		return 0, SubjectState{}, fmt.Sprintf("truncated record (%d of %d bytes)", len(buf), total)
	}
	payload := buf[len(journalMagic)+4 : len(journalMagic)+4+n]
	want := binary.BigEndian.Uint32(buf[total-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, SubjectState{}, fmt.Sprintf("checksum mismatch (stored %#08x, computed %#08x)", want, got)
	}
	st, err := decodeState(payload)
	if err != nil {
		return 0, SubjectState{}, err.Error()
	}
	return total, st, ""
}

// laterIntactRecord reports whether any intact record starts after the
// first byte of buf — the damage-vs-torn-tail discriminator.
func laterIntactRecord(buf []byte) bool {
	for off := 1; ; {
		i := bytes.Index(buf[off:], journalMagic)
		if i < 0 {
			return false
		}
		off += i
		if n, _, reason := parseJournalRecord(buf[off:]); reason == "" && n > 0 {
			return true
		}
		off++
	}
}

// DurableStore is an in-memory durable medium for one subject's
// checkpoint and journal — what a real deployment would back with a
// file or a KV cell per subject. The zero value is ready to use; all
// methods are safe for concurrent use. It implements io.Writer for
// journal appends, so Engine journaling and tests can also write
// through any other sink.
type DurableStore struct {
	mu   sync.Mutex
	ckpt []byte
	jrnl []byte
}

// NewDurableStore returns an empty store.
func NewDurableStore() *DurableStore { return &DurableStore{} }

// Write appends journal bytes (the io.Writer contract).
func (s *DurableStore) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jrnl = append(s.jrnl, p...)
	return len(p), nil
}

// SetCheckpoint replaces the checkpoint and truncates the journal —
// compaction: every journaled event up to the checkpoint is folded in.
func (s *DurableStore) SetCheckpoint(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ckpt = append(s.ckpt[:0], b...)
	s.jrnl = s.jrnl[:0]
}

// Checkpoint returns a copy of the stored checkpoint bytes.
func (s *DurableStore) Checkpoint() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.ckpt...)
}

// Journal returns a copy of the journal bytes appended since the last
// checkpoint.
func (s *DurableStore) Journal() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.jrnl...)
}

// SizeBytes is the store's footprint: checkpoint plus journal.
func (s *DurableStore) SizeBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ckpt) + len(s.jrnl)
}

// errNoResilience rejects recovery calls on engines without the
// fault-tolerance layer: there is no mutable subject state to persist.
func errNoResilience() error {
	return errors.New("xpro: crash recovery needs a Resilience policy (or FaultPlan/Adaptive/Integrity) — a plain engine has no durable subject state")
}

// SubjectState returns the engine's current durable state record.
func (e *Engine) SubjectState() (SubjectState, error) {
	if e.res == nil {
		return SubjectState{}, errNoResilience()
	}
	e.res.mu.Lock()
	defer e.res.mu.Unlock()
	return e.res.durableLocked(e), nil
}

// Checkpoint serializes the durable subject state to w as one
// CRC-enveloped record (CheckpointBytes long). Writing to a
// *DurableStore compacts it: the checkpoint replaces the stored one
// and truncates the journal.
func (e *Engine) Checkpoint(w io.Writer) error {
	if e.res == nil {
		return errNoResilience()
	}
	e.res.mu.Lock()
	defer e.res.mu.Unlock()
	return e.res.checkpointLocked(e, w)
}

// EnableRecovery attaches a durable store: the current state is
// checkpointed into it immediately, and from now on every applied
// event appends one journal record, so the store always reconstructs
// the engine as of its last event. If the engine later enters a
// node-down fault window, it rejoins warm from this store (an ordered
// reboot window also flushes a final checkpoint on its way down);
// without a store it rejoins amnesiac.
func (e *Engine) EnableRecovery(s *DurableStore) error {
	if e.res == nil {
		return errNoResilience()
	}
	if s == nil {
		return errors.New("xpro: EnableRecovery needs a store")
	}
	r := e.res
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = s
	return r.checkpointLocked(e, s)
}

// Recover rewinds the engine to the state a checkpoint + journal pair
// reconstructs: the modeled clock, breaker, RNG cursor, estimator and
// every ledger are restored, so the next Classify continues the seeded
// timeline bit-identically to an engine that never died. Either reader
// may be nil (checkpoint-only or journal-only recovery). A journal
// that ends mid-record is accepted as a torn tail (reported, not
// fatal); any other damage returns a typed error matching
// ErrRecoveryCorrupt and leaves the engine untouched.
func (e *Engine) Recover(checkpoint, journal io.Reader) (RecoveryReport, error) {
	if e.res == nil {
		return RecoveryReport{}, errNoResilience()
	}
	readAll := func(r io.Reader) ([]byte, error) {
		if r == nil {
			return nil, nil
		}
		return io.ReadAll(r)
	}
	ckpt, err := readAll(checkpoint)
	if err != nil {
		return RecoveryReport{}, fmt.Errorf("xpro: reading checkpoint: %w", err)
	}
	jrnl, err := readAll(journal)
	if err != nil {
		return RecoveryReport{}, fmt.Errorf("xpro: reading journal: %w", err)
	}
	st, rep, err := decodeDurable(ckpt, jrnl)
	if err != nil {
		return rep, err
	}
	r := e.res
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.applyLocked(e, st, true); err != nil {
		return rep, err
	}
	e.obs.reg.Counter("xpro_recover_total",
		"Engine recoveries from a durable checkpoint + journal.").Inc()
	return rep, nil
}

// RecoverFrom is Recover from a DurableStore, re-armed: after the
// restore the store is re-attached for journaling and compacted with
// a fresh checkpoint, so repeated crash/recover cycles keep the store
// bounded. This is the one-call restart path:
//
//	eng, _ := xpro.New(cfg)          // same Config as the dead engine
//	rep, err := eng.RecoverFrom(st)  // resume the timeline exactly
func (e *Engine) RecoverFrom(s *DurableStore) (RecoveryReport, error) {
	if s == nil {
		return RecoveryReport{}, errors.New("xpro: RecoverFrom needs a store")
	}
	rep, err := e.Recover(bytes.NewReader(s.Checkpoint()), bytes.NewReader(s.Journal()))
	if err != nil {
		return rep, err
	}
	r := e.res
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = s
	return rep, r.checkpointLocked(e, s)
}

// --- resilient-side plumbing (caller holds r.mu) ---

// stateLocked assembles the durable record from the live layer.
func (r *resilient) stateLocked() SubjectState {
	bs := r.breaker.Snapshot()
	st := SubjectState{
		Seq:                    r.seq,
		ClockSeconds:           r.clock.Now(),
		Breaker:                bs.State.String(),
		BreakerFailures:        bs.Failures,
		BreakerOpenedAtSeconds: bs.OpenedAt,
		RNGDraws:               r.link.Draws(),
		EnergySpentJoules:      r.energyJ,
		QuarantinedEvents:      r.quarantined,
		ImputedValues:          r.imputed,
		Crashes:                r.crashes,
		Recoveries:             r.recoveries,
	}
	if r.ctrl != nil {
		es := r.ctrl.Estimator().Snapshot()
		st.EstimatedLoss, st.EstimatedOutage = es.Loss, es.Outage
		st.EstimatorSamples = es.Samples
		st.EstimatorPendingAttempts, st.EstimatorPendingFailed = es.PendAttempts, es.PendFailed
	}
	return st
}

// applyLocked installs a decoded record. restoreClock distinguishes a
// process-level Recover (rewind the clock to the record's instant)
// from an in-timeline warm rejoin (the node kept living through
// modeled time while down; only its volatile state is restored).
func (r *resilient) applyLocked(e *Engine, st SubjectState, restoreClock bool) error {
	code, ok := breakerNames[st.Breaker]
	if !ok {
		return &RecoveryError{Section: "checkpoint", Reason: fmt.Sprintf("unknown breaker state %q", st.Breaker)}
	}
	if restoreClock {
		r.clock.Restore(st.ClockSeconds)
	}
	if err := r.link.RestoreDraws(st.RNGDraws); err != nil {
		return err
	}
	if err := r.breaker.Restore(faults.BreakerSnapshot{
		State: code, Failures: st.BreakerFailures, OpenedAt: st.BreakerOpenedAtSeconds,
	}); err != nil {
		return err
	}
	if r.ctrl != nil {
		if err := r.ctrl.Estimator().Restore(adaptive.EstimatorState{
			Loss: st.EstimatedLoss, Outage: st.EstimatedOutage, Samples: st.EstimatorSamples,
			PendAttempts: st.EstimatorPendingAttempts, PendFailed: st.EstimatorPendingFailed,
		}); err != nil {
			return err
		}
	}
	r.seq = st.Seq
	r.energyJ = st.EnergySpentJoules
	r.quarantined = st.QuarantinedEvents
	r.imputed = st.ImputedValues
	// Crash bookkeeping merges monotonically: a warm rejoin must not
	// let a pre-crash record roll back the crash it just survived.
	if st.Crashes > r.crashes {
		r.crashes = st.Crashes
	}
	if st.Recoveries > r.recoveries {
		r.recoveries = st.Recoveries
	}
	if st.Tiered != nil {
		tp := e.tier.Load()
		if tp == nil || !tp.Armed() {
			return &RecoveryError{Section: "checkpoint",
				Reason: "record carries tiered hop state but no tier plan is armed"}
		}
		if err := tp.RestoreTieredState(*st.Tiered); err != nil {
			return &RecoveryError{Section: "checkpoint", Reason: err.Error()}
		}
	}
	r.lastState = r.plan.At(r.clock.Now())
	r.lastOut = xsystem.Outcome{}
	e.epoch.Add(1)
	return nil
}

// checkpointLocked encodes the current state to w, compacting when w
// is a *DurableStore, and stamps the checkpoint age the health report
// serves.
func (r *resilient) checkpointLocked(e *Engine, w io.Writer) error {
	buf, err := encodeCheckpoint(r.durableLocked(e))
	if err != nil {
		return err
	}
	if s, ok := w.(*DurableStore); ok {
		s.SetCheckpoint(buf)
	} else if _, err := w.Write(buf); err != nil {
		return err
	}
	r.lastCkpt = r.clock.Now()
	e.obs.reg.Counter("xpro_checkpoints_total",
		"Durable subject-state checkpoints written.").Inc()
	return nil
}

// ledgerLocked advances the durable event ledger after one applied
// event — anything that consumed modeled time except a node-down
// rejection — and, with a store attached, journals the post-event
// state. err is the event's outcome error (quarantines count).
func (r *resilient) ledgerLocked(e *Engine, res Result, err error) {
	r.seq++
	r.energyJ += res.SensorEnergyJoules
	r.imputed += uint64(res.ImputedValues)
	if err != nil && errors.Is(err, ErrSuspectData) {
		r.quarantined++
	}
	if r.store != nil {
		r.journalLocked(e)
	}
}

// journalLocked appends one record for the event just applied. A sink
// failure is counted, not fatal: the engine keeps serving and the
// operator sees the durability gap on /metrics.
func (r *resilient) journalLocked(e *Engine) {
	rec, err := encodeJournalRecord(r.durableLocked(e))
	if err == nil {
		_, err = r.store.Write(rec)
	}
	if err != nil {
		e.obs.reg.Counter("xpro_journal_errors_total",
			"Journal records that failed to encode or append.").Inc()
		return
	}
	e.obs.reg.Counter("xpro_journal_records_total",
		"Durable journal records appended.").Inc()
}

// crashLocked runs once at the first event inside a node-down window:
// the serving epoch moves, the crash is counted, and an ordered reboot
// flushes a final checkpoint before the lights go out.
func (r *resilient) crashLocked(e *Engine, graceful bool, now float64) {
	r.down = true
	r.crashes++
	e.epoch.Add(1)
	detail := "power-loss"
	if graceful {
		detail = "graceful-reboot"
		if r.store != nil {
			// Best-effort: a failed flush degrades the rejoin to the
			// previous checkpoint + journal, it does not block the crash.
			_ = r.checkpointLocked(e, r.store)
		}
	}
	e.obs.reg.Counter("xpro_node_crashes_total",
		"Node-down fault windows entered (volatile state wiped).").Inc()
	e.obs.events.Append(telemetry.Event{
		TimeSeconds: now, Kind: "node-crash", Detail: detail,
	})
}

// rejoinLocked runs at the first event after a node-down window: the
// node comes back warm from its durable store when it has one and the
// store decodes, amnesiac otherwise (volatile state reset to birth).
func (r *resilient) rejoinLocked(e *Engine, now float64) {
	r.down = false
	r.recoveries++
	e.epoch.Add(1)
	detail := "amnesiac"
	if r.store != nil {
		st, _, err := decodeDurable(r.store.Checkpoint(), r.store.Journal())
		if err == nil && r.applyLocked(e, st, false) == nil {
			detail = "warm"
		} else {
			e.obs.reg.Counter("xpro_journal_errors_total",
				"Journal records that failed to encode or append.").Inc()
			r.amnesiaLocked(e)
		}
	} else {
		r.amnesiaLocked(e)
	}
	e.obs.reg.Counter("xpro_node_recoveries_total",
		"Node rejoins after a node-down fault window.").Inc()
	e.obs.events.Append(telemetry.Event{
		TimeSeconds: now, Kind: "node-recover", Detail: detail,
	})
}

// amnesiaLocked models a reboot without durable state: the subject
// ledgers, breaker, estimator and RNG cursor reset to their
// construction values — the node resumes as if newborn, which is
// exactly the failure mode EnableRecovery exists to prevent. The
// modeled clock is left alone: time passed whether or not the node
// remembers it. Crash/recovery bookkeeping also survives — it models
// the fleet's view of the node, not the node's own memory.
func (r *resilient) amnesiaLocked(e *Engine) {
	r.seq = 0
	r.energyJ = 0
	r.quarantined = 0
	r.imputed = 0
	_ = r.link.RestoreDraws(0)
	_ = r.breaker.Restore(faults.BreakerSnapshot{State: faults.BreakerClosed})
	if r.ctrl != nil {
		_ = r.ctrl.Estimator().Restore(adaptive.EstimatorState{})
	}
	r.lastOut = xsystem.Outcome{}
	e.epoch.Add(1)
}

// recoveryStatus is the health view of the crash layer: liveness, the
// crash/recovery counters, and the age of the last checkpoint in
// modeled seconds (-1 when never checkpointed).
func (r *resilient) recoveryStatus() (live bool, crashes, recoveries uint64, ckptAge float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ckptAge = -1
	if r.lastCkpt >= 0 {
		ckptAge = r.clock.Now() - r.lastCkpt
	}
	return !r.down, r.crashes, r.recoveries, ckptAge
}
