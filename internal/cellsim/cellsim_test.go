package cellsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xpro/internal/aggregator"
	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/ensemble"
	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

type fixture struct {
	graph *topology.Graph
	hw    *sensornode.Hardware
	sys   *xsystem.System
}

var cached *fixture

func getFixture(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	spec, err := biosig.CaseBySymbol("E2")
	if err != nil {
		t.Fatal(err)
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(17))
	train, _ := d.Split(0.75, rng)
	cfg := ensemble.DefaultConfig(17)
	cfg.Candidates = 8
	cfg.Folds = 2
	cfg.TopFrac = 0.4
	ens, err := ensemble.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Build(ens, d.SegLen)
	if err != nil {
		t.Fatal(err)
	}
	hw := sensornode.Characterize(g, celllib.P90)
	sys, err := xsystem.New(g, ens, celllib.P90, wireless.Model2(), aggregator.CortexA8(), partition.InSensor(g), sensornode.DefaultSampleRateHz)
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{graph: g, hw: hw, sys: sys}
	return cached
}

// The cycle-stepped completion must equal the analytical critical path
// of xsystem's front-end model exactly (both are longest paths in
// cycles; one is computed by stepping, one by recursion).
func TestCompletionMatchesCriticalPath(t *testing.T) {
	f := getFixture(t)
	for _, p := range []partition.Placement{
		partition.InSensor(f.graph),
		partition.Trivial(f.graph),
	} {
		res, err := Simulate(f.graph, p, f.hw)
		if err != nil {
			t.Fatal(err)
		}
		want := f.sys.DelayOf(p).FrontEnd
		if math.Abs(res.CompletionSeconds()-want) > 1e-12+1e-9*want {
			t.Errorf("completion %v s != analytical critical path %v s", res.CompletionSeconds(), want)
		}
	}
}

// Per-cell and total energies must equal the celllib characterization —
// the simulation reproduces the characterized machine, not a new one.
func TestEnergyMatchesCharacterization(t *testing.T) {
	f := getFixture(t)
	p := partition.InSensor(f.graph)
	res, err := Simulate(f.graph, p, f.hw)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := range f.graph.Cells {
		want += f.hw.Energy(topology.CellID(i))
	}
	if math.Abs(res.GatedEnergy-want) > 1e-15+1e-12*want {
		t.Errorf("gated energy %v != characterization sum %v", res.GatedEnergy, want)
	}
	if len(res.Cells) != len(f.graph.Cells) {
		t.Errorf("simulated %d cells, want %d", len(res.Cells), len(f.graph.Cells))
	}
}

// Power gating must save energy whenever the array runs longer than any
// single cell — idle leakage is the whole point of design rule 1.
func TestGatingSavings(t *testing.T) {
	f := getFixture(t)
	res, err := Simulate(f.graph, partition.InSensor(f.graph), f.hw)
	if err != nil {
		t.Fatal(err)
	}
	if res.UngatedEnergy <= res.GatedEnergy {
		t.Fatalf("ungated %v must exceed gated %v", res.UngatedEnergy, res.GatedEnergy)
	}
	s := res.GatingSavings()
	if s <= 0 || s >= 1 {
		t.Errorf("gating savings = %v, want in (0,1)", s)
	}
	t.Logf("power gating eliminates %.1f%% of the un-gated array energy", s*100)
}

// Schedule sanity: every cell starts only after its in-sensor producers
// are done, and timings are non-negative.
func TestScheduleRespectsDependencies(t *testing.T) {
	f := getFixture(t)
	p := partition.InSensor(f.graph)
	res, err := Simulate(f.graph, p, f.hw)
	if err != nil {
		t.Fatal(err)
	}
	done := make(map[topology.CellID]int64)
	start := make(map[topology.CellID]int64)
	for _, cs := range res.Cells {
		done[cs.ID] = cs.DoneCycle
		start[cs.ID] = cs.StartCycle
		if cs.StartCycle < 0 || cs.DoneCycle < cs.StartCycle {
			t.Fatalf("cell %d: bad window [%d,%d]", cs.ID, cs.StartCycle, cs.DoneCycle)
		}
	}
	for _, e := range f.graph.Edges {
		if e.From == topology.SourceID {
			continue
		}
		if start[e.To] < done[e.From] {
			t.Errorf("cell %d starts at %d before producer %d finishes at %d", e.To, start[e.To], e.From, done[e.From])
		}
	}
}

func TestEmptySensorPart(t *testing.T) {
	f := getFixture(t)
	res, err := Simulate(f.graph, partition.InAggregator(f.graph), f.hw)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionCycle != 0 || res.GatedEnergy != 0 || len(res.Cells) != 0 {
		t.Error("empty in-sensor part should produce an empty result")
	}
}

func TestSimulateErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := Simulate(f.graph, partition.Placement{partition.Sensor}, f.hw); err == nil {
		t.Error("short placement should error")
	}
}

func TestStateString(t *testing.T) {
	if Idle.String() != "idle" || Working.String() != "working" || Done.String() != "done" {
		t.Error("state names wrong")
	}
}

// Property: on synthetic topologies, the cycle-stepped completion always
// equals the analytical critical path, for random grouped placements.
func TestQuickSyntheticCompletion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Synthetic(rng, 8+rng.Intn(200))
		if err != nil {
			return false
		}
		hw := sensornode.Characterize(g, celllib.P90)
		p := make(partition.Placement, len(g.Cells))
		readers := make(map[topology.CellID]bool)
		for _, id := range g.SourceReaders() {
			readers[id] = true
		}
		groupEnd := partition.End(rng.Intn(2))
		for i := range p {
			if readers[topology.CellID(i)] {
				p[i] = groupEnd
			} else {
				p[i] = partition.End(rng.Intn(2))
			}
		}
		res, err := Simulate(g, p, hw)
		if err != nil {
			return false
		}
		// Recompute the analytical critical path directly.
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		finish := make([]int64, len(g.Cells))
		var want int64
		for _, id := range order {
			if !p.OnSensor(id) {
				continue
			}
			var start int64
			for _, e := range g.InEdges(id) {
				if e.From == topology.SourceID || !p.OnSensor(e.From) {
					continue
				}
				if finish[e.From] > start {
					start = finish[e.From]
				}
			}
			finish[id] = start + hw.Profiles[id].Cycles
			if finish[id] > want {
				want = finish[id]
			}
		}
		return res.CompletionCycle == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimulate(b *testing.B) {
	f := getFixture(b)
	p := partition.InSensor(f.graph)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(f.graph, p, f.hw); err != nil {
			b.Fatal(err)
		}
	}
}

// Peak power is bracketed by the hungriest single cell and the sum of
// all cells' powers.
func TestPeakPowerBounds(t *testing.T) {
	f := getFixture(t)
	res, err := Simulate(f.graph, partition.InSensor(f.graph), f.hw)
	if err != nil {
		t.Fatal(err)
	}
	peak := PeakPower(res, f.hw)
	var maxCell, sum float64
	for i := range f.graph.Cells {
		p := f.hw.Profiles[topology.CellID(i)].Power()
		sum += p
		if p > maxCell {
			maxCell = p
		}
	}
	if peak < maxCell-1e-12 {
		t.Errorf("peak %v below hungriest cell %v", peak, maxCell)
	}
	if peak > sum+1e-12 {
		t.Errorf("peak %v above all-cells sum %v", peak, sum)
	}
	t.Logf("peak power %.2f mW (hungriest cell %.2f mW, sum %.2f mW)", peak*1e3, maxCell*1e3, sum*1e3)
}
