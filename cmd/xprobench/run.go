package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"xpro/internal/ensemble"
	"xpro/internal/experiments"
)

// run executes the tool against args, writing results to stdout and
// diagnostics to stderr. It returns the process exit code, which main
// passes to os.Exit — keeping the whole tool testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xprobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id (all, table1, fig4, fig8..fig13, headline, ext-lossy, ext-frontier)")
	cases := fs.String("cases", "", "comma-separated case symbols (default: all six)")
	protocol := fs.String("protocol", "fast", "training protocol: fast or paper")
	rate := fs.Float64("rate", 2048, "biosignal sampling rate in Hz")
	format := fs.String("format", "text", "output format: text, md or csv")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	of, err := experiments.ParseFormat(*format)
	if err != nil {
		fmt.Fprintf(stderr, "xprobench: %v\n", err)
		return 2
	}

	lab := experiments.NewLab()
	lab.SampleRateHz = *rate
	switch *protocol {
	case "fast":
		lab.Config = ensemble.DefaultConfig
	case "paper":
		lab.Config = ensemble.PaperConfig
	default:
		fmt.Fprintf(stderr, "xprobench: unknown protocol %q\n", *protocol)
		return 2
	}
	if *cases != "" {
		lab.Cases = strings.Split(*cases, ",")
	}

	if *exp == "all" {
		err = experiments.AllFormat(lab, stdout, of)
	} else {
		err = experiments.RunFormat(lab, *exp, stdout, of)
	}
	if err != nil {
		fmt.Fprintf(stderr, "xprobench: %v\n", err)
		return 1
	}
	return 0
}
