// Package stats implements the eight hardware-friendly statistical
// features of the XPro generic classification framework (§2.1): maximal
// value, minimal value, mean, variance, standard deviation, zero-crossing
// count, skewness and kurtosis.
//
// Each feature exists in two implementations:
//
//   - float64, used by the in-aggregator analytic part (software on a
//     general-purpose CPU), and
//   - Q16.16 fixed point, used by the in-sensor analytic part
//     (specialized hardware, §4.4).
//
// The fixed-point standard deviation deliberately reuses the variance
// computation and adds only a square-root stage, mirroring the paper's
// functional-cell-level reuse rule (design rule 3, Fig. 5).
package stats

import (
	"fmt"
	"math"
)

// Feature identifies one of the eight statistical features.
type Feature int

const (
	Max Feature = iota
	Min
	Mean
	Var
	Std
	CZero
	Skew
	Kurt
	// NumFeatures is the size of the feature set.
	NumFeatures int = iota
)

// AllFeatures lists the features in their canonical order.
var AllFeatures = []Feature{Max, Min, Mean, Var, Std, CZero, Skew, Kurt}

func (f Feature) String() string {
	switch f {
	case Max:
		return "Max"
	case Min:
		return "Min"
	case Mean:
		return "Mean"
	case Var:
		return "Var"
	case Std:
		return "Std"
	case CZero:
		return "CZero"
	case Skew:
		return "Skew"
	case Kurt:
		return "Kurt"
	default:
		return fmt.Sprintf("Feature(%d)", int(f))
	}
}

// ParseFeature converts a feature name back to its Feature value.
func ParseFeature(s string) (Feature, error) {
	for _, f := range AllFeatures {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("stats: unknown feature %q", s)
}

// Compute evaluates feature f over segment x in float64.
// Empty segments yield 0 for every feature.
func Compute(f Feature, x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	switch f {
	case Max:
		return MaxValue(x)
	case Min:
		return MinValue(x)
	case Mean:
		return MeanValue(x)
	case Var:
		return Variance(x)
	case Std:
		return StdDev(x)
	case CZero:
		return float64(ZeroCrossings(x))
	case Skew:
		return Skewness(x)
	case Kurt:
		return Kurtosis(x)
	default:
		return 0
	}
}

// ComputeAll evaluates every feature over x, indexed by Feature.
func ComputeAll(x []float64) []float64 {
	out := make([]float64, NumFeatures)
	for _, f := range AllFeatures {
		out[f] = Compute(f, x)
	}
	return out
}

// MaxValue returns the maximum sample.
func MaxValue(x []float64) float64 {
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinValue returns the minimum sample.
func MinValue(x []float64) float64 {
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// MeanValue returns the arithmetic mean.
func MeanValue(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance (divides by N, matching the
// hardware cell which avoids the N−1 correction divider).
func Variance(x []float64) float64 {
	mu := MeanValue(x)
	var s float64
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// ZeroCrossings counts sign changes around the segment mean. Biosignal
// segments in XPro are normalized to [0, 1] (§4.4), so raw sign changes
// would always be zero; the hardware cell counts crossings of the mean.
func ZeroCrossings(x []float64) int {
	mu := MeanValue(x)
	count := 0
	prev := 0 // sign of the previous non-zero deviation
	for _, v := range x {
		s := 0
		switch {
		case v > mu:
			s = 1
		case v < mu:
			s = -1
		}
		if s != 0 {
			if prev != 0 && s != prev {
				count++
			}
			prev = s
		}
	}
	return count
}

// Skewness returns the standardized third central moment. A constant
// segment (zero variance) has skewness 0.
func Skewness(x []float64) float64 {
	mu := MeanValue(x)
	var m2, m3 float64
	for _, v := range x {
		d := v - mu
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(x))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the standardized fourth central moment (not excess:
// a Gaussian segment gives ≈3). A constant segment yields 0.
func Kurtosis(x []float64) float64 {
	mu := MeanValue(x)
	var m2, m4 float64
	for _, v := range x {
		d := v - mu
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(x))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4 / (m2 * m2)
}
