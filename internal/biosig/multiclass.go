package biosig

import (
	"fmt"
	"math"
	"math/rand"
)

// This file generates multi-class datasets for the paper's §5.7
// extension. The natural multi-class biosignal task is EMG gesture
// recognition: the UCI corpus behind the EMGHandLat/EMGHandTip cases
// contains six basic hand movements, of which the paper's binary cases
// pick pairs. GenerateMulticlass synthesizes all K gestures at once;
// ECG and EEG variants interpolate their binary morphology knobs across
// classes.

// MaxClasses is the largest supported class count: the six basic hand
// movements of the UCI EMG corpus set the ceiling.
const MaxClasses = 6

// GenerateMulticlass builds a balanced K-class dataset of the given
// family. Classes are 0..classes-1; segments are [0,1]-normalized.
func GenerateMulticlass(family Family, segLen, count, classes int, seed int64) (*Dataset, error) {
	if classes < 3 || classes > MaxClasses {
		return nil, fmt.Errorf("biosig: multiclass needs 3..%d classes, got %d", MaxClasses, classes)
	}
	if segLen < 8 || count < classes {
		return nil, fmt.Errorf("biosig: invalid shape segLen=%d count=%d", segLen, count)
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Name:   fmt.Sprintf("%s%dClass", family, classes),
		Symbol: fmt.Sprintf("%s-K%d", family, classes),
		SegLen: segLen,
	}
	d.Segs = make([]Segment, count)
	for i := range d.Segs {
		label := i % classes
		var raw []float64
		switch family {
		case ECG:
			raw = genECGClass(rng, segLen, label, classes)
		case EEG:
			raw = genEEGClass(rng, segLen, label, classes)
		default:
			raw = genEMGClass(rng, segLen, label, classes)
		}
		normalize01(raw)
		d.Segs[i] = Segment{Samples: raw, Label: label}
	}
	return d, nil
}

// emgGesture is a categorical movement prototype: burst positions and
// widths (fractions of the window), contraction gain and spectral tilt.
type emgGesture struct {
	bursts []struct{ c, w float64 }
	gain   float64
	alpha  float64 // AR(1) coefficient: higher = lower-frequency content
}

// emgGestures are six distinct prototypes mirroring the UCI corpus's six
// basic hand movements (spherical, tip, palmar, lateral, cylindrical,
// hook): single/double/sustained bursts at distinct phases with distinct
// spectral tilt.
var emgGestures = []emgGesture{
	{bursts: []struct{ c, w float64 }{{0.3, 0.06}}, gain: 1.6, alpha: 0.8},
	{bursts: []struct{ c, w float64 }{{0.25, 0.05}, {0.55, 0.05}}, gain: 1.4, alpha: 0.3},
	{bursts: []struct{ c, w float64 }{{0.7, 0.12}}, gain: 1.0, alpha: 0.55},
	{bursts: []struct{ c, w float64 }{{0.5, 0.3}}, gain: 0.8, alpha: 0.1},
	{bursts: []struct{ c, w float64 }{{0.2, 0.04}, {0.8, 0.04}}, gain: 2.0, alpha: 0.65},
	{bursts: []struct{ c, w float64 }{{0.45, 0.08}, {0.6, 0.16}}, gain: 1.2, alpha: 0.45},
}

// genEMGClass synthesizes gesture k: each class is a categorically
// distinct movement prototype, jittered per segment.
func genEMGClass(rng *rand.Rand, n, k, classes int) []float64 {
	g := emgGestures[k%len(emgGestures)]
	x := make([]float64, n)
	jitter := 0.03 * (rng.Float64()*2 - 1)
	prev := 0.0
	for i := range x {
		env := 0.1
		for _, b := range g.bursts {
			d := (float64(i) - float64(n)*(b.c+jitter)) / (float64(n) * b.w)
			env += g.gain * math.Exp(-0.5*d*d)
		}
		white := rng.NormFloat64()
		v := g.alpha*prev + (1-g.alpha)*white
		prev = v
		x[i] = env * v
	}
	return x
}

// genECGClass sweeps the R amplitude and ST lift across classes: class 0
// is a healthy beat, higher classes progressively flatter and more
// ST-elevated (a coarse severity scale).
func genECGClass(rng *rand.Rand, n, k, classes int) []float64 {
	frac := float64(k) / float64(classes-1)
	x := make([]float64, n)
	c := float64(n) / 2
	jit := func(s float64) float64 { return 1 + s*(rng.Float64()*2-1) }
	qrsW := float64(n) * 0.015 * (1 + 0.7*frac)
	gaussBump(x, 0.12*jit(0.2), c-float64(n)*0.22, float64(n)*0.035)
	gaussBump(x, -0.15*jit(0.2), c-float64(n)*0.035, qrsW)
	gaussBump(x, (1-0.4*frac)*jit(0.08), c, qrsW)
	gaussBump(x, -0.2*jit(0.2), c+float64(n)*0.035, qrsW)
	gaussBump(x, 0.15*frac, c+float64(n)*0.12, float64(n)*0.08)
	gaussBump(x, (0.25+0.2*frac)*jit(0.15), c+float64(n)*0.22, float64(n)*0.06)
	for i := range x {
		x[i] += 0.02 * rng.NormFloat64()
	}
	return x
}

// genEEGClass shifts spectral power from delta toward beta across
// classes (a coarse vigilance/seizure scale).
func genEEGClass(rng *rand.Rand, n, k, classes int) []float64 {
	frac := float64(k) / float64(classes-1)
	x := make([]float64, n)
	bands := []struct{ cyc, amp float64 }{
		{1.5, 0.6 * (1 - 0.7*frac)},
		{3.5, 0.35},
		{7, 0.5 * (1 - 0.4*frac)},
		{14, 0.2 + 0.8*frac},
	}
	for _, b := range bands {
		ph := rng.Float64() * 2 * math.Pi
		amp := b.amp * (0.85 + 0.3*rng.Float64())
		for i := range x {
			x[i] += amp * math.Sin(2*math.Pi*b.cyc*float64(i)/float64(n)+ph)
		}
	}
	for i := range x {
		x[i] += 0.08 * rng.NormFloat64()
	}
	return x
}
