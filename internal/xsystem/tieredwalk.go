package xsystem

import (
	"errors"
	"fmt"

	"xpro/internal/biosig"
	"xpro/internal/faults"
	"xpro/internal/frame"
	"xpro/internal/partition"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

// This file implements the resilient N-tier execution mode: the tiered
// sibling of System.ClassifyOver. A k-way placement crosses k−1 hops
// (sensor→hub, hub→gateway, …) and each is an independent physical
// channel with its own fault plan, retry budget, circuit breaker and
// integrity framing. Every payload walks its hop span one hop at a
// time — a group produced on tier u and consumed on tier t crosses
// hops u..t−1, each crossing attempted at most once per event however
// many consumers need it — and every attempt's air time, backoff wait
// and energy is charged against the one shared deadline/energy budget,
// exactly as the 2-end walk charges its single link.

// HopTransport is one hop's fallible channel in a tiered walk. A nil
// Link is the infallible datasheet hop: payloads never fail, but their
// air cost (including the integrity envelope when framing is armed) is
// still charged from the planning model. Breaker, when set, gates the
// hop: while it is open the walk fails the hop's crossings immediately
// without burning air time or retries.
type HopTransport struct {
	Link    *faults.Link
	Breaker *faults.Breaker
}

// TieredOptions configures one tiered ClassifyOver run.
type TieredOptions struct {
	// Hops[h] carries crossings of hop h (tier h → h+1). Shorter than
	// the chain's hop count means the remaining hops are infallible;
	// longer is an error.
	Hops []HopTransport
	// Plan supplies the node-level state: brownout (tier-0 compute dark)
	// and aggregator stall (upper-tier compute preempted). The per-hop
	// link faults live in each HopTransport's Link. May be nil.
	Plan *faults.Plan
	// Clock is the modeled time source shared with every hop's Link and
	// Breaker. May be nil when neither Plan nor any Breaker is used.
	Clock *faults.Clock
	// Policy sets the per-event deadline, per-payload retry budget,
	// backoff shape and fusion quorum — one budget shared by all hops.
	Policy faults.Policy
	// Integrity, when set, arms per-frame sequencing + CRC on every hop
	// crossing, exactly as in the 2-end walk.
	Integrity *faults.Framing
}

func (o *TieredOptions) imputePolicy() frame.ImputePolicy {
	if o.Integrity == nil {
		return frame.HoldLast
	}
	return o.Integrity.Impute
}

func (o *TieredOptions) now() float64 {
	if o.Clock == nil {
		return 0
	}
	return o.Clock.Now()
}

// TieredOutcome is the 2-end Outcome ledger extended with per-hop
// books: every aggregate counter still sums over all hops, and the
// slices (indexed by hop) say which hop earned what.
type TieredOutcome struct {
	Outcome
	// HopTransfersOK / HopRetries / HopLost / HopSkipped split the
	// aggregate transfer counters per hop.
	HopTransfersOK []int
	HopRetries     []int
	HopLost        []int
	HopSkipped     []int
	// HopOutage[h] is true when hop h was hard-down (link outage, hub
	// storm, or its breaker open) during the event.
	HopOutage []bool
	// HopEnergyJ[h] is the total radio energy (tx + rx, unweighted)
	// attempts on hop h consumed; HopAirSeconds[h] their serialized air
	// time.
	HopEnergyJ    []float64
	HopAirSeconds []float64
}

// HopOutageError reports a payload that could not cross one hop of a
// tiered walk: the hop was hard-down (link outage or hub storm) or its
// circuit breaker was open. It carries the hop index and the retry
// budget consumed so callers can route the ladder decision per hop.
type HopOutageError struct {
	// Hop is the failed hop's index (tier Hop → Hop+1).
	Hop int
	// At is the modeled time of the failure; Until, when the outage
	// window's end is known, is the earliest instant the hop can heal.
	At, Until float64
	// Retries is the retry budget consumed on the failing crossing
	// (0 when the breaker rejected it outright).
	Retries int
	// BreakerOpen is true when the hop's breaker rejected the crossing
	// without an attempt.
	BreakerOpen bool
	// Cause is the transport failure underneath (nil for breaker
	// rejections).
	Cause error
}

func (e *HopOutageError) Error() string {
	if e.BreakerOpen {
		return fmt.Sprintf("xsystem: hop %d breaker open at %.3fs", e.Hop, e.At)
	}
	return fmt.Sprintf("xsystem: hop %d down at %.3fs (until %.3fs, %d retries consumed)", e.Hop, e.At, e.Until, e.Retries)
}

func (e *HopOutageError) Unwrap() error { return e.Cause }

// trun is the per-event budget and bookkeeping of one tiered walk.
type trun struct {
	ts      *TieredSystem
	opt     *TieredOptions
	out     *TieredOutcome
	lastErr error
	exhaust bool
}

func (r *trun) overBudget(extra float64) bool {
	d := r.opt.Policy.Deadline
	return d > 0 && r.out.SpentSeconds+extra > d
}

// hopTransport returns hop h's transport, nil when the hop is
// configured infallible.
func (r *trun) hopTransport(h int) *HopTransport {
	if h < len(r.opt.Hops) {
		return &r.opt.Hops[h]
	}
	return nil
}

// chargeCleanHop accounts the datasheet cost of one payload on an
// infallible hop, including the integrity envelope when framing is on.
func (r *trun) chargeCleanHop(h int, bits int64, up bool) {
	hop := r.ts.Tiered.Hops[h]
	tr := hop.Link.Cost(bits)
	if r.opt.Integrity != nil {
		eb := wireless.Packets(bits) * frame.IntegrityBits
		tr.WireBits += eb
		tr.TxEnergy += float64(eb) * hop.Link.TxJPerBit
		tr.RxEnergy += float64(eb) * hop.Link.RxJPerBit
		tr.Delay += float64(eb) / hop.Link.RateBps
	}
	if hop.BandwidthScale > 0 && hop.BandwidthScale != 1 {
		tr.Delay /= hop.BandwidthScale
	}
	r.charge(h, tr, up)
}

// charge books one attempt's cost: air time against the shared
// deadline, full radio energy against the hop, and the sensor-side
// share (hop 0 only) against SensorEnergy.
func (r *trun) charge(h int, tr wireless.Transfer, up bool) {
	r.out.SpentSeconds += tr.Delay
	r.out.HopAirSeconds[h] += tr.Delay
	r.out.HopEnergyJ[h] += tr.TxEnergy + tr.RxEnergy
	if h == 0 {
		if up {
			r.out.SensorEnergy += tr.TxEnergy
		} else {
			r.out.SensorEnergy += tr.RxEnergy
		}
	}
}

// sendHop moves one payload across hop h (up: tier h → h+1) with retry
// + backoff under the remaining budget, reporting how it arrived. The
// policy-level loop mirrors the 2-end sendPayload exactly; only the
// transport, breaker and ledgers are per-hop.
func (r *trun) sendHop(h int, bits int64, values int, up bool) (*frame.RxReport, bool) {
	hop := r.hopTransport(h)
	if hop == nil || hop.Link == nil {
		r.chargeCleanHop(h, bits, up)
		r.out.TransfersOK++
		r.out.HopTransfersOK[h]++
		r.out.WireValues += values
		return nil, true
	}
	if hop.Breaker != nil && !hop.Breaker.Allow() {
		// Fail fast: the hop is known-bad, spend nothing on it.
		r.out.SkippedTransfers++
		r.out.HopSkipped[h]++
		r.out.HopOutage[h] = true
		r.out.HardOutage = true
		r.lastErr = &HopOutageError{Hop: h, At: r.opt.now(), BreakerOpen: true}
		return nil, false
	}
	if r.exhaust {
		r.out.SkippedTransfers++
		r.out.HopSkipped[h]++
		return nil, false
	}
	for attempt := 0; ; attempt++ {
		tr, rx, err := hop.Link.SendValues(bits, values, r.opt.Integrity)
		r.charge(h, tr, up)
		if rx != nil {
			r.out.FramesSent += rx.Frames
			r.out.CorruptFrames += rx.CorruptDetected
			r.out.CorruptDelivered += rx.CorruptDelivered
			r.out.DuplicateFrames += rx.Duplicates
			r.out.ReorderedFrames += rx.Reordered
			r.out.LostFrames += rx.LostFrames
		}
		if err == nil {
			r.out.TransfersOK++
			r.out.HopTransfersOK[h]++
			r.out.WireValues += values
			if hop.Breaker != nil {
				hop.Breaker.RecordSuccess()
			}
			return rx, true
		}
		if faults.IsLinkDown(err) {
			r.out.HardOutage = true
			r.out.HopOutage[h] = true
			var ld *faults.ErrLinkDown
			errors.As(err, &ld)
			r.lastErr = &HopOutageError{Hop: h, At: ld.At, Until: ld.Until, Retries: attempt, Cause: err}
		} else {
			r.lastErr = err
		}
		if attempt >= r.opt.Policy.MaxRetries {
			break
		}
		wait := r.opt.Policy.Backoff.Delay(attempt)
		if r.overBudget(wait) {
			r.exhaust = true
			r.out.DeadlineExceeded = true
			break
		}
		r.out.SpentSeconds += wait
		r.out.Retries++
		r.out.HopRetries[h]++
	}
	if hop.Breaker != nil {
		hop.Breaker.RecordFailure()
	}
	r.out.LostTransfers++
	r.out.HopLost[h]++
	return nil, false
}

// tierXfer memoizes one payload's hop span: legs[j] is the crossing of
// hop base+j, attempted at most once per event. A consumer on tier t
// needs legs 0..t−base−1 all delivered; a leg that failed blocks every
// leg above it (the payload never reached that hop's sender).
type tierXfer struct {
	bits   int64
	values int
	base   partition.Tier
	legs   []hopLeg
}

type hopLeg struct {
	attempted, ok, counted bool
	rx                     *frame.RxReport
}

func newTierXfer(bits int64, values int, base, top partition.Tier) *tierXfer {
	return &tierXfer{bits: bits, values: values, base: base, legs: make([]hopLeg, int(top-base))}
}

// ensureTo walks the span's legs up to (not including) tier t,
// sending each unattempted one, and reports whether the payload
// reached tier t.
func (r *trun) ensureTo(x *tierXfer, t partition.Tier) bool {
	if x == nil {
		return false
	}
	for j := 0; j < int(t-x.base) && j < len(x.legs); j++ {
		leg := &x.legs[j]
		if !leg.attempted {
			leg.attempted = true
			leg.rx, leg.ok = r.sendHop(int(x.base)+j, x.bits, x.values, true)
		}
		if !leg.ok {
			return false
		}
	}
	return true
}

// dirtyTo reports whether any delivered leg below tier t carries
// receive-side damage.
func (x *tierXfer) dirtyTo(t partition.Tier) bool {
	if x == nil {
		return false
	}
	for j := 0; j < int(t-x.base) && j < len(x.legs); j++ {
		leg := x.legs[j]
		if leg.attempted && leg.ok && leg.rx.Dirty() {
			return true
		}
	}
	return false
}

// applyLegs composes the span's receive damage onto view, hop by hop
// in crossing order — hop u's smears and imputations feed hop u+1's
// transmission, exactly as the payload physically relayed. Each leg's
// imputed count is tallied once per event however many consumers
// decode it.
func (r *trun) applyLegs(view []float64, per int64, x *tierXfer, t partition.Tier) {
	for j := 0; j < int(t-x.base) && j < len(x.legs); j++ {
		leg := &x.legs[j]
		if !leg.attempted || !leg.ok || !leg.rx.Dirty() {
			continue
		}
		imputed := applyDamage(view, per, leg.rx, r.opt.imputePolicy())
		if !leg.counted {
			leg.counted = true
			leg.rx.Imputed = imputed
			r.out.ImputedValues += imputed
		}
	}
}

// cellEnergyAt prices cell id's compute on tier t, honoring the
// problem's CellEnergy override.
func (ts *TieredSystem) cellEnergyAt(t partition.Tier, id topology.CellID) float64 {
	if ts.Tiered.CellEnergy != nil {
		return ts.Tiered.CellEnergy(t, id)
	}
	return ts.HW.Energy(id) * ts.Tiered.Tiers[t].ComputeScale
}

// ClassifyOver executes the k-way partitioned pipeline on one segment
// with every hop crossing subject to its own transport, faults and
// breaker under opt's shared policy budget. It returns the best label
// the surviving data supports; when nothing survives, the error is a
// *NoResultError whose cause chain reaches the failing hop's
// *HopOutageError.
func (ts *TieredSystem) ClassifyOver(seg biosig.Segment, opt *TieredOptions) (TieredOutcome, error) {
	if opt == nil {
		opt = &TieredOptions{}
	}
	nh := len(ts.Tiered.Hops)
	var out TieredOutcome
	if len(opt.Hops) > nh {
		return out, fmt.Errorf("xsystem: %d hop transports for a %d-hop chain", len(opt.Hops), nh)
	}
	if ts.Ens == nil {
		return out, errors.New("xsystem: cost-analysis-only system has no classifier (built with nil ensemble)")
	}
	if len(seg.Samples) != ts.Graph.SegLen {
		return out, fmt.Errorf("xsystem: segment length %d, engine built for %d", len(seg.Samples), ts.Graph.SegLen)
	}
	out.HopTransfersOK = make([]int, nh)
	out.HopRetries = make([]int, nh)
	out.HopLost = make([]int, nh)
	out.HopSkipped = make([]int, nh)
	out.HopOutage = make([]bool, nh)
	out.HopEnergyJ = make([]float64, nh)
	out.HopAirSeconds = make([]float64, nh)

	g := ts.Graph
	tpl := ts.TierPlacement
	state := opt.Plan.At(opt.now())
	r := &trun{ts: ts, opt: opt, out: &out}

	// The compute schedule is the collapsed two-natured runtime's:
	// charge it up front, then add what the faulty hops actually cost.
	d := ts.DelayPerEvent()
	out.SpentSeconds = d.FrontEnd + d.BackEnd
	out.SensorEnergy = ts.problem.SensingEnergy

	// An aggregator stall preempts every upper-tier cell until the
	// window ends; the wait comes out of the shared deadline budget.
	upperCells := 0
	for _, t := range tpl {
		if t > 0 {
			upperCells++
		}
	}
	if state.AggStall && upperCells > 0 {
		wait := opt.Plan.Until(opt.now(), faults.AggStall) - opt.now()
		if r.overBudget(wait) {
			out.DeadlineExceeded = true
			return out, &NoResultError{Outcome: out.Outcome}
		}
		out.SpentSeconds += wait
	}

	// Crossing payloads, memoized per (payload, hop): the raw segment
	// (when the source readers sit above tier 0), one span per crossing
	// transfer group, and the final result march below.
	srcTier := partition.Tier(0)
	if readers := g.SourceReaders(); len(readers) > 0 {
		srcTier = tpl[readers[0]]
	}
	var rawX *tierXfer
	if srcTier > 0 {
		rawX = newTierXfer(g.SourceBits, g.SegLen, 0, srcTier)
	}
	groups := g.TransferGroups()
	groupX := make([]*tierXfer, len(groups))
	byPair := make(map[topology.CellID]map[topology.CellID][]int)
	for gi, tg := range groups {
		from := tpl[tg.From]
		top := from
		for _, c := range tg.Consumers {
			if tpl[c] > top {
				top = tpl[c]
			}
		}
		if top == from {
			continue
		}
		groupX[gi] = newTierXfer(tg.Bits, tg.Values, from, top)
		for _, c := range tg.Consumers {
			if tpl[c] == from {
				continue
			}
			if byPair[c] == nil {
				byPair[c] = make(map[topology.CellID][]int)
			}
			byPair[c][tg.From] = append(byPair[c][tg.From], gi)
		}
	}
	crossed := func(consumer, producer topology.CellID) bool {
		ok := true
		for _, gi := range byPair[consumer][producer] {
			if !r.ensureTo(groupX[gi], tpl[consumer]) {
				ok = false
			}
		}
		return ok
	}

	ev := newEvent(g, seg)
	outputs := make([]value, len(g.Cells))

	// dirtyView reconstructs what a consumer on tier t received of a
	// producer's crossing output when any traversed hop damaged it.
	dirtyView := func(producer topology.CellID, t partition.Tier) []float64 {
		var view []float64
		for gi := range groups {
			tg := &groups[gi]
			x := groupX[gi]
			if tg.From != producer || x == nil || !x.dirtyTo(t) {
				continue
			}
			if view == nil {
				view = append([]float64(nil), outputs[producer].asFloat()...)
			}
			off := 0
			if tg.Class == topology.PayloadApprox {
				off = g.Cells[producer].OutValues
			}
			n := tg.Values
			if off >= len(view) {
				continue
			}
			if off+n > len(view) {
				n = len(view) - off
			}
			per := int64(0)
			if tg.Values > 0 {
				per = tg.Bits / int64(tg.Values)
			}
			r.applyLegs(view[off:off+n], per, x, t)
		}
		return view
	}

	// When the raw segment crossed dirty, its readers see the relayed
	// reconstruction, not the sensor's pristine samples.
	var evRx *event
	rxEvent := func() *event {
		if evRx != nil {
			return evRx
		}
		samples := append([]float64(nil), seg.Samples...)
		per := int64(0)
		if g.SegLen > 0 {
			per = g.SourceBits / int64(g.SegLen)
		}
		r.applyLegs(samples, per, rawX, srcTier)
		evRx = newEvent(g, biosig.Segment{Samples: samples, Label: seg.Label})
		return evRx
	}

	lost := make([]bool, len(g.Cells))
	complete := true
	for _, id := range ts.order {
		c := g.Cells[id]
		if state.Brownout && tpl[id] == 0 {
			lost[id] = true
			complete = false
			continue
		}
		ins := g.InEdges(id)
		avail := make([]bool, len(ins))
		for i, e := range ins {
			switch {
			case e.From == topology.SourceID:
				avail[i] = tpl[id] == 0 || r.ensureTo(rawX, tpl[id])
			case lost[e.From]:
				avail[i] = false
			case tpl[e.From] != tpl[id]:
				avail[i] = crossed(id, e.From)
			default:
				avail[i] = true
			}
		}
		fetch := func(i int) value {
			e := ins[i]
			if e.From != topology.SourceID && tpl[e.From] != tpl[id] {
				if view := dirtyView(e.From, tpl[id]); view != nil {
					return value{fl: view}
				}
			}
			return outputs[e.From]
		}
		if c.Role == topology.RoleFusion {
			if tpl[id] == 0 {
				out.SensorEnergy += ts.cellEnergyAt(0, id)
			}
			v, used := ts.fusePartial(c, ins, avail, fetch)
			out.VotesTotal = len(ins)
			out.VotesUsed = used
			minVotes := opt.Policy.MinVotes
			if minVotes < 1 {
				minVotes = 1
			}
			if used < minVotes {
				lost[id] = true
				complete = false
				continue
			}
			if used < len(ins) {
				out.PartialFusion = true
				complete = false
			}
			outputs[id] = v
			continue
		}
		allIn := true
		for _, a := range avail {
			if !a {
				allIn = false
				break
			}
		}
		if !allIn {
			lost[id] = true
			complete = false
			continue
		}
		if tpl[id] == 0 {
			out.SensorEnergy += ts.cellEnergyAt(0, id)
		}
		cellEv := ev
		if tpl[id] > 0 && rawX != nil && rawX.dirtyTo(tpl[id]) {
			cellEv = rxEvent()
		}
		v, err := ts.evalCell(c, ins, fetch, cellEv)
		if err != nil {
			return out, fmt.Errorf("xsystem: cell %s: %w", c.Name, err)
		}
		outputs[id] = v
	}

	if lost[g.Output] {
		return out, &NoResultError{Cause: r.lastErr, Outcome: out.Outcome}
	}
	final := outputs[g.Output]
	switch {
	case final.fl != nil && len(final.fl) > 0:
		out.Score = final.fl[0]
	case final.fx != nil && len(final.fx) > 0:
		out.Score = final.fx[0].Float()
	default:
		return out, &NoResultError{Cause: r.lastErr, Outcome: out.Outcome}
	}
	if out.Score >= 0 {
		out.Label = 1
	}

	// March the result to its delivery tier, one hop at a time; failure
	// partway leaves a valid label local to the output's tier.
	out.Delivered = true
	ot, resT := tpl[g.Output], ts.Tiered.ResultTier
	if ot != resT {
		lo, hi, up := ot, resT, true
		if ot > resT {
			lo, hi, up = resT, ot, false
		}
		sc := quantizeWire(out.Score, wireless.ValueBits)
		dirty := false
		ok := true
		for h := lo; h < hi && ok; h++ {
			rx, legOK := r.sendHop(int(h), wireless.ValueBits, 1, up)
			ok = legOK
			if legOK && rx.Dirty() {
				dirty = true
				if mask, hit := rx.CorruptValues[0]; hit {
					sc = corruptWire(sc, wireless.ValueBits, mask)
				}
			}
		}
		out.Delivered = ok
		if ok && dirty {
			// Some relay decoded a damaged score word: report what the
			// delivery tier actually concluded.
			out.Score = sc
			out.Label = 0
			if sc >= 0 {
				out.Label = 1
			}
		}
	}
	if out.ImputedValues > 0 || out.CorruptDelivered > 0 {
		complete = false
	}
	out.Complete = complete && out.Delivered
	return out, nil
}
