package xpro

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := New(Config{Case: "M2"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty snapshot")
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Reports must be identical: same classifier, same placement, same
	// models.
	a, b := orig.Report(), restored.Report()
	if a != b {
		t.Errorf("reports differ:\n  orig     %+v\n  restored %+v", a, b)
	}

	// Classifications must match on the (regenerated) test set.
	testSet := orig.TestSet()
	restoredSet := restored.TestSet()
	if len(testSet) != len(restoredSet) {
		t.Fatalf("test sets differ in size: %d vs %d", len(testSet), len(restoredSet))
	}
	for i := 0; i < 50; i++ {
		if testSet[i].Label != restoredSet[i].Label {
			t.Fatal("test set regeneration diverged")
		}
		x, err := orig.Classify(testSet[i].Samples)
		if err != nil {
			t.Fatal(err)
		}
		y, err := restored.Classify(restoredSet[i].Samples)
		if err != nil {
			t.Fatal(err)
		}
		if x != y {
			t.Fatalf("segment %d: original %d != restored %d", i, x, y)
		}
	}

	// Placements identical cell by cell.
	pa, pb := orig.Placement(), restored.Placement()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("cell %d placement differs: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage should fail to decode")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	eng, err := New(Config{Case: "C1", Kind: InSensor})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding with a bumped constant is not
	// possible from here; instead verify the happy path asserts the
	// version field by checking a truncated stream fails cleanly.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot should fail")
	}
}
