// Package chaos is the long-horizon soak harness for the adaptive
// repartitioning controller. It replays seeded channel-drift profiles
// against three engine variants built from the same trained system:
//
//   - static: the generated cross-end cut, retries only — what the
//     paper's engine does when the channel drifts;
//   - ladder: the static cut behind the resilience degradation ladder
//     (breaker and in-sensor fallback) — rides faults out but never
//     re-optimizes;
//   - adaptive: the ladder plus the re-cut controller of
//     internal/adaptive — re-prices the partition against the
//     estimated channel and hot-swaps the active cut.
//
// Everything is driven by the modeled clock and seeded fault plans, so
// a soak replays bit-identically: same seed, same decisions, same
// totals. The harness reports per-variant sensor energy and
// deadline-violation counts; the acceptance property is that the
// adaptive variant spends less sensor energy than the static cut and
// violates fewer deadlines than the ladder on drifting channels.
package chaos

import (
	"fmt"
	"math"

	"xpro/internal/adaptive"
	"xpro/internal/biosig"
	"xpro/internal/faults"
	"xpro/internal/partition"
	"xpro/internal/telemetry"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

// ProfileNames lists the built-in drift profiles.
func ProfileNames() []string {
	return []string{"squall", "cyclone", "monsoon", "staircase", "flapping", "hailstorm", "garble", "reboot-storm", "flash-crowd"}
}

// Profile builds a named channel-drift plan over the given horizon
// (modeled seconds), seeded deterministically:
//
//	squall     one long moderate loss storm (75% loss) over the middle
//	           of the run — drains a static cross-end cut through
//	           retransmissions
//	cyclone    the same shape at 90% loss — past the crossover where
//	           even a transmission-light cross-end cut should abandon
//	           the link for the in-sensor anchor
//	monsoon    a hard outage inside a wider loss storm — the link dies
//	           and comes back
//	staircase  loss ramping up in steps (30% → 50% → 70%), then clear —
//	           gradual drift, no sharp edge
//	flapping   seeded short outages and bursts in quick succession —
//	           the hysteresis stress test
//	hailstorm  a bit-flip storm (BER 10⁻³) over the middle of the run —
//	           frames arrive, but arrive damaged; with framing enabled
//	           (Config.Framing) the CRC turns corruption into retries
//	           and imputation, without it the damage is consumed
//	garble     seeded mixed corruption — flip, duplicate and reorder
//	           windows over a lossy background
//	reboot-storm  seeded node-crash and reboot windows over a lossy
//	           background — the node itself keeps dying and coming
//	           back; events inside a window produce nothing at all
//	flash-crowd  seeded demand-surge windows (10× arrival rate) over a
//	           lossy background — the correlated overload storm: every
//	           subject on a channel bursts at once while the channel
//	           itself degrades. The classify pipeline ignores surge
//	           windows; arrival processes (FlashCrowd, the simulator)
//	           read them through State.Surge
func Profile(name string, seed int64, horizon float64) (*faults.Plan, error) {
	if !(horizon > 0) {
		return nil, fmt.Errorf("chaos: horizon %v must be positive", horizon)
	}
	h := horizon
	switch name {
	case "squall":
		return &faults.Plan{Windows: []faults.Window{
			{Kind: faults.LossBurst, Start: 0.2 * h, End: 0.8 * h, Loss: 0.75},
		}}, nil
	case "cyclone":
		return &faults.Plan{Windows: []faults.Window{
			{Kind: faults.LossBurst, Start: 0.2 * h, End: 0.8 * h, Loss: 0.9},
		}}, nil
	case "monsoon":
		return &faults.Plan{Windows: []faults.Window{
			{Kind: faults.LossBurst, Start: 0.15 * h, End: 0.85 * h, Loss: 0.5},
			{Kind: faults.LinkOutage, Start: 0.35 * h, End: 0.6 * h},
		}}, nil
	case "staircase":
		return &faults.Plan{Windows: []faults.Window{
			{Kind: faults.LossBurst, Start: 0.15 * h, End: 0.35 * h, Loss: 0.3},
			{Kind: faults.LossBurst, Start: 0.35 * h, End: 0.55 * h, Loss: 0.5},
			{Kind: faults.LossBurst, Start: 0.55 * h, End: 0.75 * h, Loss: 0.7},
		}}, nil
	case "flapping":
		return faults.RandomPlan(seed, faults.PlanConfig{
			Horizon: h, Outages: 3, Bursts: 4,
			MeanDuration: h / 30, BurstLoss: 0.7,
		}), nil
	case "hailstorm":
		return &faults.Plan{Windows: []faults.Window{
			{Kind: faults.BitFlip, Start: 0.2 * h, End: 0.8 * h, Rate: 1e-3},
		}}, nil
	case "garble":
		return faults.RandomPlan(seed, faults.PlanConfig{
			Horizon: h, Bursts: 2, Flips: 2, Dups: 2, Reorders: 2,
			MeanDuration: h / 20, BurstLoss: 0.5, FlipRate: 1.5e-3,
		}), nil
	case "reboot-storm":
		return faults.RandomPlan(seed, faults.PlanConfig{
			Horizon: h, Bursts: 2, Crashes: 3, Reboots: 2,
			MeanDuration: h / 25, BurstLoss: 0.5,
		}), nil
	case "flash-crowd":
		return faults.RandomPlan(seed, faults.PlanConfig{
			Horizon: h, Bursts: 2, Surges: 3,
			MeanDuration: h / 8, BurstLoss: 0.6, SurgeFactor: 10,
		}), nil
	default:
		return nil, fmt.Errorf("chaos: unknown profile %q (have %v)", name, ProfileNames())
	}
}

// Config shapes one soak run.
type Config struct {
	// Profile names the drift plan (see ProfileNames).
	Profile string
	// Seed drives the fault plan and every lossy link; the same seed
	// replays the identical soak.
	Seed int64
	// Events is the soak length in classified events (default 400).
	Events int
	// DeadlineFactor scales the engine's delay limit T_XPro into the
	// per-event deadline (default 2): an event slower than
	// DeadlineFactor·T_XPro is a deadline violation.
	DeadlineFactor float64
	// LinkRetries is the link-layer per-packet retransmission budget
	// (default 6, a persistent 802.15.4 / BLE MAC) — it keeps individual
	// packets alive so payload transfers mostly succeed at inflated
	// energy, which is exactly the drift the re-cut controller should
	// price in.
	LinkRetries int
	// Adaptive configures the controller (zero value: defaults).
	Adaptive adaptive.Config
	// Framing, when set, wraps every payload transfer in the
	// internal/frame integrity envelope (CRC + sequence numbers), so
	// corruption profiles are detected and repaired instead of silently
	// consumed. Nil replays the legacy bare wire format.
	Framing *faults.Framing
}

func (c *Config) fill() {
	if c.Events <= 0 {
		c.Events = 400
	}
	if c.DeadlineFactor <= 0 {
		c.DeadlineFactor = 2
	}
	if c.LinkRetries == 0 {
		c.LinkRetries = 6
	}
	if c.LinkRetries < 0 {
		c.LinkRetries = 0
	}
	if c.Adaptive == (adaptive.Config{}) {
		c.Adaptive = adaptive.DefaultConfig()
	}
}

// VariantStats aggregates one variant's soak.
type VariantStats struct {
	Name string
	// Events is the number of events classified.
	Events int
	// Violations counts deadline violations: events that blew the
	// modeled per-event deadline or produced no label at all.
	Violations int
	// NoResult counts events with no label even after any fallback.
	NoResult int
	// Degraded counts events that were not full-fidelity deliveries.
	Degraded int
	// Swaps / Rollbacks count the adaptive controller's decisions
	// (zero for the other variants).
	Swaps, Rollbacks int
	// CrashEvents counts events that arrived while the node was inside
	// a node-crash/reboot window: nothing was served (they also count
	// as Violations and NoResult).
	CrashEvents int
	// CorruptFrames counts frames the integrity layer rejected (CRC)
	// plus corrupted values delivered undetected on the bare wire.
	CorruptFrames int
	// ImputedValues counts receive-side values repaired by imputation.
	ImputedValues int
	// SensorEnergyJ is the total modeled sensor-node energy spent.
	SensorEnergyJ float64
	// LatencyP50S / LatencyP99S are the per-event modeled latency
	// quantiles over the whole soak, estimated by a mergeable
	// quantile sketch (rank error under 1%).
	LatencyP50S, LatencyP99S float64
	// FinalSensorCells is the sensor-side cell count of the cut that
	// was active when the soak ended.
	FinalSensorCells int
}

// Result is one soak over one profile: the three variants side by
// side, plus the adaptive controller's decision log for determinism
// checks.
type Result struct {
	Profile string
	Seed    int64
	// LimitSeconds is the engine's delay constraint T_XPro;
	// DeadlineSeconds the per-event violation threshold.
	LimitSeconds    float64
	DeadlineSeconds float64

	Static   VariantStats
	Ladder   VariantStats
	Adaptive VariantStats

	// Decisions is the adaptive controller's re-cut log.
	Decisions []adaptive.Decision
}

// AdaptiveDominates reports the acceptance property: the adaptive
// variant spent less sensor energy than the static cut AND violated
// fewer deadlines than the pure degradation ladder.
func (r *Result) AdaptiveDominates() bool {
	return r.Adaptive.SensorEnergyJ < r.Static.SensorEnergyJ &&
		r.Adaptive.Violations < r.Ladder.Violations
}

// Soak replays one drift profile against the three variants. sys is
// the generated cross-end system (the static cut); segs supplies the
// event stream, cycled as needed.
func Soak(sys *xsystem.System, segs []biosig.Segment, cfg Config) (*Result, error) {
	if math.IsNaN(cfg.DeadlineFactor) || math.IsInf(cfg.DeadlineFactor, 0) {
		return nil, fmt.Errorf("chaos: deadline factor %v is not finite", cfg.DeadlineFactor)
	}
	cfg.fill()
	if sys == nil {
		return nil, fmt.Errorf("chaos: nil system")
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("chaos: no segments")
	}
	period := float64(sys.Graph.SegLen) / sys.SampleRateHz
	horizon := float64(cfg.Events) * period
	plan, err := Profile(cfg.Profile, cfg.Seed, horizon)
	if err != nil {
		return nil, err
	}

	// T_XPro = min(T_F, T_B): the same constraint the generator used.
	inSensor := partition.InSensor(sys.Graph)
	limit := sys.DelayOf(inSensor).Total()
	if d := sys.DelayOf(partition.InAggregator(sys.Graph)).Total(); d < limit {
		limit = d
	}
	deadline := cfg.DeadlineFactor * limit

	fallback, err := sys.WithPlacement(inSensor)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Profile: cfg.Profile, Seed: cfg.Seed,
		LimitSeconds: limit, DeadlineSeconds: deadline,
	}
	res.Static, err = soakVariant(sys, nil, nil, segs, plan, cfg, deadline, period)
	if err != nil {
		return nil, err
	}
	res.Static.Name = "static"
	res.Ladder, err = soakVariant(sys, fallback, nil, segs, plan, cfg, deadline, period)
	if err != nil {
		return nil, err
	}
	res.Ladder.Name = "ladder"

	ctrl, err := adaptive.NewController(cfg.Adaptive, sys, limit, sys.Metrics)
	if err != nil {
		return nil, err
	}
	res.Adaptive, err = soakVariant(sys, fallback, ctrl, segs, plan, cfg, deadline, period)
	if err != nil {
		return nil, err
	}
	res.Adaptive.Name = "adaptive"
	res.Adaptive.Swaps = countKind(ctrl.Decisions(), "swap")
	res.Adaptive.Rollbacks = countKind(ctrl.Decisions(), "rollback")
	res.Decisions = ctrl.Decisions()
	return res, nil
}

func countKind(ds []adaptive.Decision, kind string) int {
	n := 0
	for _, d := range ds {
		if d.Kind == kind {
			n++
		}
	}
	return n
}

// policy returns the soak's shared resilience policy: the per-event
// deadline budget, light retries, and a breaker that trips after three
// consecutive drops and probes again after two modeled seconds.
func policy(deadline float64) faults.Policy {
	return faults.Policy{
		Deadline:         deadline,
		MaxRetries:       2,
		Backoff:          faults.Backoff{Base: 0.2e-3, Max: 1.6e-3, Factor: 2},
		BreakerThreshold: 3,
		BreakerCooldown:  2,
		MinVotes:         1,
	}
}

// soakVariant replays the event stream through one variant. fallback
// nil is the static variant (no ladder); ctrl nil is the pure ladder;
// both set is the adaptive engine.
func soakVariant(sys *xsystem.System, fallback *xsystem.System, ctrl *adaptive.Controller,
	segs []biosig.Segment, plan *faults.Plan, cfg Config, deadline, period float64) (VariantStats, error) {

	var st VariantStats
	clock := &faults.Clock{}
	link, err := faults.NewLink(sys.Link, plan, clock, 0, cfg.LinkRetries, cfg.Seed)
	if err != nil {
		return st, err
	}
	pol := policy(deadline)
	if ctrl != nil {
		// Per-packet channel evidence, straight off the MAC.
		link.Observer = func(tr wireless.Transfer, retransmissions int, serr error) {
			ctrl.Estimator().ObserveSendStats(tr, retransmissions, serr)
		}
	}
	var breaker *faults.Breaker
	if fallback != nil {
		breaker, err = faults.NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown, clock)
		if err != nil {
			return st, err
		}
		if ctrl != nil {
			breaker.OnTransition = func(_, to faults.BreakerState) {
				ctrl.Estimator().ObserveBreaker(to)
			}
		}
	}
	active := sys
	opts := func() *xsystem.ResilientOptions {
		return &xsystem.ResilientOptions{
			Transport: link, Plan: plan, Clock: clock, Policy: pol, Breaker: breaker,
			Integrity: cfg.Framing,
		}
	}

	lat := telemetry.NewSketch(0)
	for i := 0; i < cfg.Events; i++ {
		seg := segs[i%len(segs)]
		now := clock.Now()
		if st0 := plan.At(now); st0.NodeDown {
			// The node is crashed or rebooting: the event is lost
			// entirely — no classification, no channel observation (the
			// modem is off too) — but modeled time still passes, which is
			// what eventually carries the node out of the window.
			st.CrashEvents++
			st.Violations++
			st.NoResult++
			st.Events++
			clock.Advance(period)
			continue
		}
		if ctrl != nil {
			// Ambient channel observation: what the modem sees of the
			// environment this instant, whether or not the active cut
			// puts payloads on the air.
			ctrl.Estimator().ObserveState(plan.At(now))
		}

		var out xsystem.Outcome
		var spent float64
		noResult := false
		tally := func(o xsystem.Outcome) {
			st.CorruptFrames += o.CorruptFrames + o.CorruptDelivered
			st.ImputedValues += o.ImputedValues
		}
		attempt := breaker == nil || breaker.Allow()
		if attempt {
			var cerr error
			out, cerr = active.ClassifyOver(seg, opts())
			spent = out.SpentSeconds
			st.SensorEnergyJ += out.SensorEnergy
			tally(out)
			if cerr != nil {
				if fallback == nil {
					noResult = true
				} else {
					// Degradation ladder: recompute on the in-sensor
					// fallback cut. Sensing already happened once — do
					// not charge it twice.
					fout, ferr := fallback.ClassifyOver(seg, opts())
					spent += fout.SpentSeconds
					st.SensorEnergyJ += fout.SensorEnergy - sensingEnergy(sys)
					tally(fout)
					if ferr != nil {
						noResult = true
					}
				}
			}
		} else {
			// Breaker open: fail fast straight to the fallback cut.
			fout, ferr := fallback.ClassifyOver(seg, opts())
			out = fout
			spent = fout.SpentSeconds
			st.SensorEnergyJ += fout.SensorEnergy
			tally(fout)
			if ferr != nil {
				noResult = true
			}
		}

		violated := noResult || out.DeadlineExceeded || spent > deadline
		if violated {
			st.Violations++
		}
		if noResult {
			st.NoResult++
		}
		if noResult || !out.Complete {
			st.Degraded++
		}
		if ctrl != nil {
			if ch := ctrl.ObserveEvent(now, out, violated); ch != nil {
				active = ch.System
			}
			ch, err := ctrl.Evaluate(clock.Now())
			if err != nil {
				return st, err
			}
			if ch != nil {
				active = ch.System
			}
		}
		st.Events++
		lat.Add(spent)
		clock.Advance(period)
	}
	ns, _ := active.Placement.Counts()
	st.FinalSensorCells = ns
	st.LatencyP50S = lat.Quantile(0.5)
	st.LatencyP99S = lat.Quantile(0.99)
	return st, nil
}

func sensingEnergy(sys *xsystem.System) float64 {
	return sys.Problem().SensingEnergy
}
