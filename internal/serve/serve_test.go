package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPerShardFIFO is the ordering guarantee: jobs of one shard run in
// submission order even with many workers and interleaved shards.
func TestPerShardFIFO(t *testing.T) {
	p := NewPool(Options{Workers: 4, QueueDepth: 256})
	defer p.Close()

	const shards = 8
	const perShard = 100
	var mu sync.Mutex
	got := make([][]int, shards)
	for s := 0; s < shards; s++ {
		for i := 0; i < perShard; i++ {
			s, i := s, i
			if err := p.Submit(uint64(s), func() {
				mu.Lock()
				got[s] = append(got[s], i)
				mu.Unlock()
			}); err != nil {
				t.Fatalf("submit shard %d job %d: %v", s, i, err)
			}
		}
	}
	p.Close()
	for s := 0; s < shards; s++ {
		if len(got[s]) != perShard {
			t.Fatalf("shard %d ran %d jobs, want %d", s, len(got[s]), perShard)
		}
		for i, v := range got[s] {
			if v != i {
				t.Fatalf("shard %d reordered: position %d got job %d", s, i, v)
			}
		}
	}
}

// TestOverloadRejects is the backpressure property: a full queue
// returns ErrOverloaded immediately instead of blocking.
func TestOverloadRejects(t *testing.T) {
	p := NewPool(Options{Workers: 1, QueueDepth: 2})
	defer p.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(0, func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started // worker is now busy; the queue is empty
	for i := 0; i < 2; i++ {
		if err := p.Submit(0, func() {}); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if err := p.Submit(0, func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity submit: got %v, want ErrOverloaded", err)
	}
	close(release)
}

// TestCloseDrains: jobs accepted before Close all run; Close blocks
// until they finish; submissions after Close return ErrClosed.
func TestCloseDrains(t *testing.T) {
	p := NewPool(Options{Workers: 2, QueueDepth: 128})
	var ran atomic.Int64
	const n = 200
	for i := 0; i < n; i++ {
		if err := p.Submit(uint64(i%5), func() { ran.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("after Close %d jobs ran, want %d", got, n)
	}
	if err := p.Submit(0, func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: got %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

// TestSubmitCloseRace drives concurrent submitters against Close under
// the race detector: every accepted job must run, no send on a closed
// channel.
func TestSubmitCloseRace(t *testing.T) {
	p := NewPool(Options{Workers: 3, QueueDepth: 16})
	var accepted, ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				err := p.Submit(uint64(g), func() { ran.Add(1) })
				if errors.Is(err, ErrClosed) {
					return
				}
				if err == nil {
					accepted.Add(1)
				}
			}
		}(g)
	}
	p.Close()
	wg.Wait()
	if accepted.Load() != ran.Load() {
		t.Fatalf("accepted %d jobs but ran %d", accepted.Load(), ran.Load())
	}
}

func TestShardStable(t *testing.T) {
	if Shard("chest") != Shard("chest") {
		t.Fatal("Shard is not stable")
	}
	if Shard("chest") == Shard("wrist") && Shard("chest") == Shard("ankle") {
		t.Fatal("Shard collides on trivially distinct names")
	}
}

func TestParallelEach(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		out := make([]int, 100)
		err := ParallelEach(len(out), workers, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
}

func TestParallelEachFirstError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("index %d", i) }
	// Sequential semantics when workers=1: exact first error.
	err := ParallelEach(10, 1, func(i int) error {
		if i >= 3 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "index 3" {
		t.Fatalf("sequential first error: got %v", err)
	}
	// Parallel: the reported error is the lowest failing index that was
	// actually observed, and it is never nil when failures occurred.
	err = ParallelEach(100, 8, func(i int) error {
		if i%7 == 5 {
			return boom(i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("parallel run with failures returned nil")
	}
}

func TestOrderedDelivery(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		jobs := make(chan func() int)
		const n = 200
		go func() {
			defer close(jobs)
			for i := 0; i < n; i++ {
				i := i
				jobs <- func() int { return i }
			}
		}()
		got := make([]int, 0, n)
		for v := range Ordered(jobs, workers, 2*workers) {
			got = append(got, v)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: position %d delivered job %d (reordered)", workers, i, v)
			}
		}
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(Options{})
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("default worker count %d", p.Workers())
	}
	if err := p.Submit(42, func() {}); err != nil {
		t.Fatal(err)
	}
}
