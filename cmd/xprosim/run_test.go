package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xpro"
)

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"-kind", "quantum"},
		{"-case", "ZZ"},
	} {
		out.Reset()
		errOut.Reset()
		if code := run(args, &out, &errOut); code == 0 {
			t.Errorf("args %v: exit 0, want failure", args)
		}
	}
}

func TestRunStreamAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an engine")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-case", "C1", "-kind", "sensor", "-n", "60", "-trace"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{
		"streaming C1 through the in-sensor engine",
		"event timeline",
		"done: 60 events",
		"projected battery life",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunMetricsAndTraceOut(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an engine")
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-case", "C1", "-kind", "trivial", "-n", "10",
		"-metrics-addr", "127.0.0.1:0", "-trace-out", tracePath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "introspection: http://127.0.0.1:") {
		t.Errorf("missing introspection line:\n%s", s)
	}
	// The self-scrape proves the server was live and the counters moved.
	if !strings.Contains(s, "metrics: xpro_classify_total 10") {
		t.Errorf("missing non-zero classify_total scrape:\n%s", s)
	}
	if !strings.Contains(s, "spans written to "+tracePath) {
		t.Errorf("missing trace summary line:\n%s", s)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Recorded uint64 `json:"recorded"`
		Spans    []struct {
			Name string `json:"name"`
			End  string `json:"end"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file invalid JSON: %v", err)
	}
	if len(doc.Spans) == 0 || doc.Recorded == 0 {
		t.Fatalf("trace file empty: %+v", doc)
	}
	perCell := 0
	for _, sp := range doc.Spans {
		if sp.End == "sensor" || sp.End == "aggregator" {
			perCell++
		}
	}
	if perCell == 0 {
		t.Error("trace file has no per-cell spans")
	}
}

func TestRunAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an engine")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-case", "C1", "-faults", "flaky", "-adaptive", "-n", "40"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{
		"adaptive: estimated loss",
		"swaps",
		"rollbacks",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// -corruption arms the framed transport and the signal-quality gate,
// defaults the fault scenario to the seeded bit-flip storm, and reports
// the integrity counters instead of aborting on suspect events.
func TestRunCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an engine")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-case", "C1", "-corruption", "-n", "60"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{
		"faults (corrupt, seed 7)",
		"integrity:",
		"corrupt frames",
		"imputed values",
		"quality rejections",
		"done: 60 events",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// -parallel streams the same segments through the ordered worker pool:
// the progress lines and final accuracy must match the sequential run
// byte-for-byte (ordered delivery), plus a throughput line appears.
func TestRunParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an engine")
	}
	var seq, par, errOut bytes.Buffer
	if code := run([]string{"-case", "C1", "-kind", "sensor", "-n", "60"}, &seq, &errOut); code != 0 {
		t.Fatalf("sequential: exit %d, stderr %q", code, errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-case", "C1", "-kind", "sensor", "-n", "60", "-parallel", "4"}, &par, &errOut); code != 0 {
		t.Fatalf("parallel: exit %d, stderr %q", code, errOut.String())
	}
	s := par.String()
	if !strings.Contains(s, "parallel: 4 workers served 60 events") {
		t.Errorf("missing throughput line:\n%s", s)
	}
	for _, line := range strings.Split(seq.String(), "\n") {
		if strings.Contains(line, "events: accuracy") || strings.Contains(line, "done:") {
			if !strings.Contains(s, line) {
				t.Errorf("parallel output missing sequential line %q:\n%s", line, s)
			}
		}
	}
	errOut.Reset()
	if code := run([]string{"-case", "C1", "-parallel", "0"}, &par, &errOut); code == 0 {
		t.Error("-parallel 0 accepted, want usage failure")
	}
}

// -slo prints the final SLO table and -log-json streams the structured
// event log; under a fault scenario the log carries ladder events.
func TestRunSLOAndEventLog(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an engine")
	}
	logPath := filepath.Join(t.TempDir(), "events.jsonl")
	var out, errOut bytes.Buffer
	code := run([]string{"-case", "C1", "-n", "30", "-faults", "outage",
		"-slo", "-log-json", logPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"SLO (", "latency p50/p95/p99", "degraded ratio", "event log:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 30 {
		t.Fatalf("event log has %d lines, want >= 30 (one per event)", len(lines))
	}
	kinds := map[string]int{}
	for i, line := range lines {
		var ev struct {
			Seq   uint64 `json:"seq"`
			Trace uint64 `json:"trace"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Seq == 0 || ev.Kind == "" {
			t.Fatalf("line %d incomplete: %s", i, line)
		}
		kinds[ev.Kind]++
	}
	if kinds["classify"] < 30 {
		t.Errorf("classify records = %d, want >= 30", kinds["classify"])
	}
	if kinds["breaker"] == 0 {
		t.Error("no breaker transition recorded under a hard outage")
	}
}

// -checkpoint persists the durable subject state after the run and
// -recover resumes a later run from it; -faults reboot-storm rides
// through node-down windows instead of aborting.
func TestRunCheckpointRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an engine")
	}
	ckpt := filepath.Join(t.TempDir(), "subject.ckpt")
	var out, errOut bytes.Buffer
	if code := run([]string{"-case", "C1", "-faults", "flaky", "-n", "20", "-checkpoint", ckpt}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "checkpoint: 134 bytes written to") {
		t.Errorf("missing checkpoint line:\n%s", out.String())
	}
	info, err := os.Stat(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != xpro.CheckpointBytes {
		t.Errorf("checkpoint file is %d bytes, want %d", info.Size(), xpro.CheckpointBytes)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-case", "C1", "-n", "10", "-recover", ckpt}, &out, &errOut); code != 0 {
		t.Fatalf("recover exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "recovered from "+ckpt+": resuming after event 20") {
		t.Errorf("missing recovery line:\n%s", out.String())
	}

	// A truncated checkpoint must fail loudly, not silently restart.
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-case", "C1", "-n", "10", "-recover", ckpt}, &out, &errOut); code != 1 {
		t.Fatalf("truncated checkpoint: exit %d, want 1 (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "recovering from") {
		t.Errorf("stderr missing recovery error:\n%s", errOut.String())
	}
}

func TestRunRebootStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an engine")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-case", "C1", "-faults", "reboot-storm", "-n", "120"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "node down:") || !strings.Contains(s, "recoveries") {
		t.Errorf("output missing node-down accounting:\n%s", s)
	}
}
