// Package serve is the concurrent fleet-serving runtime: a sharded
// worker pool that serves many engines (one per BSN subject) and many
// segments per engine at once.
//
// The paper evaluates one wearable against one aggregator; a deployed
// XPro backend serves a fleet. Two properties make the classify path
// embarrassingly parallel and this pool correct:
//
//   - Across subjects, engines share nothing mutable — each engine owns
//     its cut, breaker, modeled clock and RNG streams — so subjects can
//     be served on independent workers.
//
//   - Within one subject, the resilient classify path is a serial
//     modeled timeline (clock, breaker, link RNG), so events of one
//     subject must execute in submission order for a seeded run to
//     replay bit-identically.
//
// The pool encodes exactly that: every shard key maps to one fixed
// worker, whose bounded queue is drained in FIFO order. Events of one
// subject never reorder, regardless of the worker count; events of
// different subjects interleave freely. A full queue rejects with
// ErrOverloaded instead of blocking — backpressure the caller can act
// on — and Close drains every queued job before returning.
//
// The pool is also the fleet's crash bulkhead: a job that panics kills
// only its worker goroutine, which is replaced on the spot (the shard's
// queue keeps draining in order), the panic is counted and reported to
// Options.OnPanic, and the pool keeps serving every other shard.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded rejects a submission whose shard queue is full: the
// bounded-queue backpressure signal. Retry later or shed load. Match
// with errors.Is; errors.As gives the *OverloadedError carrying the
// queue geometry at rejection time.
var ErrOverloaded = errors.New("serve: worker queue full")

// ErrClosed rejects submissions after Close began.
var ErrClosed = errors.New("serve: pool closed")

// OverloadedError is the typed form of ErrOverloaded: which shard was
// rejected and how loaded the pool was, so the caller can size retry
// backoff or shed load proportionally.
type OverloadedError struct {
	// Shard is the rejected submission's shard key; Worker the worker
	// index it maps to.
	Shard  uint64
	Worker int
	// Workers and QueueDepth are the pool geometry; QueueLen the
	// rejected worker's pending-job count at rejection time (== depth).
	Workers    int
	QueueDepth int
	QueueLen   int
	// RetryAfterSeconds, when > 0, hints how long the caller should
	// wait before retrying: the admission controller's estimate of
	// the time for the rejected queue to drain at the current
	// service rate. Zero when no admission controller is attached
	// (the pool itself has no service-time estimator).
	RetryAfterSeconds float64
}

func (e *OverloadedError) Error() string {
	if e.RetryAfterSeconds > 0 {
		return fmt.Sprintf("serve: worker %d/%d queue full (%d/%d jobs pending, retry after %.3fs)",
			e.Worker, e.Workers, e.QueueLen, e.QueueDepth, e.RetryAfterSeconds)
	}
	return fmt.Sprintf("serve: worker %d/%d queue full (%d/%d jobs pending)",
		e.Worker, e.Workers, e.QueueLen, e.QueueDepth)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// DrainTimeoutError reports a CloseWithin that ran out of wall-clock
// time before the queues drained. The pool is still draining in the
// background — submissions are rejected, workers finish what is
// queued — the caller just stopped waiting.
type DrainTimeoutError struct {
	// Timeout is the budget that expired; Pending the jobs still queued
	// when it did.
	Timeout time.Duration
	Pending int
}

func (e *DrainTimeoutError) Error() string {
	return fmt.Sprintf("serve: drain exceeded %v with %d jobs still queued", e.Timeout, e.Pending)
}

// DefaultQueueDepth is the per-worker pending-job capacity when
// Options.QueueDepth is zero.
const DefaultQueueDepth = 64

// Options configures a Pool. Zero values take defaults.
type Options struct {
	// Workers is the number of worker goroutines (default GOMAXPROCS).
	Workers int
	// QueueDepth is each worker's bounded queue capacity (default
	// DefaultQueueDepth). Submissions beyond it return ErrOverloaded.
	QueueDepth int
	// OnPanic, when set, observes every job panic the pool contains:
	// the worker index and the recovered value. The worker is already
	// replaced when the hook runs; the hook must not panic.
	OnPanic func(worker int, recovered any)
}

// Pool is a sharded worker pool with per-shard FIFO ordering: jobs
// submitted under the same shard key run on the same worker in
// submission order. All methods are safe for concurrent use.
type Pool struct {
	queues  []chan func()
	depth   int
	onPanic func(worker int, recovered any)
	wg      sync.WaitGroup

	// mu guards closed against Submit racing Close: Submit holds the
	// read side while sending, so Close cannot close a queue mid-send.
	mu     sync.RWMutex
	closed bool

	// Shutdown is split in two idempotent halves so Close and
	// CloseWithin compose: shutdownOnce stops intake and closes the
	// queues, waitOnce spawns the single wg.Wait that closes done.
	shutdownOnce sync.Once
	waitOnce     sync.Once
	done         chan struct{}

	panics atomic.Uint64
}

// NewPool starts the workers.
func NewPool(opt Options) *Pool {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = DefaultQueueDepth
	}
	p := &Pool{
		queues:  make([]chan func(), opt.Workers),
		depth:   opt.QueueDepth,
		onPanic: opt.OnPanic,
		done:    make(chan struct{}),
	}
	for i := range p.queues {
		q := make(chan func(), opt.QueueDepth)
		p.queues[i] = q
		p.wg.Add(1)
		go p.worker(i, q)
	}
	return p
}

// worker drains q until it closes. A panicking job kills only this
// goroutine: the panic is counted and reported, and a replacement
// worker — inheriting this one's WaitGroup slot — resumes draining the
// same queue in order. The shard loses nothing but the job that blew
// up.
func (p *Pool) worker(i int, q chan func()) {
	defer func() {
		if rec := recover(); rec != nil {
			p.panics.Add(1)
			if p.onPanic != nil {
				p.onPanic(i, rec)
			}
			go p.worker(i, q)
			return
		}
		p.wg.Done()
	}()
	for job := range q {
		job()
	}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.queues) }

// Panics returns how many jobs have panicked (and been contained)
// since the pool started.
func (p *Pool) Panics() uint64 { return p.panics.Load() }

// Shard maps a subject name to a stable shard key (FNV-1a).
func Shard(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Submit enqueues job on the worker owning shard. It never blocks:
// a full queue returns a typed *OverloadedError (matching
// ErrOverloaded), a closed pool ErrClosed.
func (p *Pool) Submit(shard uint64, job func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	w := int(shard % uint64(len(p.queues)))
	select {
	case p.queues[w] <- job:
		return nil
	default:
		return &OverloadedError{
			Shard: shard, Worker: w,
			Workers: len(p.queues), QueueDepth: p.depth,
			QueueLen: len(p.queues[w]),
		}
	}
}

// QueueLen returns the number of jobs pending on shard's worker.
func (p *Pool) QueueLen(shard uint64) int {
	return len(p.queues[shard%uint64(len(p.queues))])
}

// QueueDepth returns each worker's bounded queue capacity.
func (p *Pool) QueueDepth() int { return p.depth }

// Pending returns the total number of jobs queued across all workers.
func (p *Pool) Pending() int {
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// shutdown stops intake and closes the queues, once.
func (p *Pool) shutdown() {
	p.shutdownOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		for _, q := range p.queues {
			close(q)
		}
		p.mu.Unlock()
	})
}

// drained returns a channel closed when every worker has exited; the
// single wg.Wait is spawned on first use.
func (p *Pool) drained() <-chan struct{} {
	p.waitOnce.Do(func() {
		go func() {
			p.wg.Wait()
			close(p.done)
		}()
	})
	return p.done
}

// Close stops accepting new jobs, drains every queued job, and returns
// after the last worker exits. Closing twice — or concurrently from
// any number of goroutines, or mixed with CloseWithin — is safe: every
// call observes the same single shutdown.
func (p *Pool) Close() {
	p.shutdown()
	<-p.drained()
}

// CloseWithin is Close with a wall-clock bound: it stops intake
// immediately and waits up to d for the queued jobs to drain. On
// timeout it returns a *DrainTimeoutError snapshot and leaves the
// drain running in the background — a later Close (or CloseWithin)
// waits for (or re-polls) the same shutdown.
func (p *Pool) CloseWithin(d time.Duration) error {
	p.shutdown()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-p.drained():
		return nil
	case <-timer.C:
		return &DrainTimeoutError{Timeout: d, Pending: p.Pending()}
	}
}
