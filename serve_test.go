package xpro

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"xpro/internal/faults"
	"xpro/internal/partition"
)

// segs returns the first n test segments of e as raw sample slices.
func segsOf(e *Engine, n int) [][]float64 {
	test := e.TestSet()
	if n > len(test) {
		n = len(test)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = test[i].Samples
	}
	return out
}

// TestClassifyBatchParallelMatchesSequential is the core equivalence
// property: for every experiment case, fanning a batch across workers
// yields labels bit-identical to the sequential per-segment path and
// to ClassifyBatch's streaming path. Run it under -race -cpu 1,4,8.
func TestClassifyBatchParallelMatchesSequential(t *testing.T) {
	for _, ci := range Cases() {
		sym := ci.Symbol
		t.Run(sym, func(t *testing.T) {
			e, err := New(Config{Case: sym})
			if err != nil {
				t.Fatal(err)
			}
			segments := segsOf(e, 40)
			want := make([]int, len(segments))
			for i, s := range segments {
				if want[i], err = e.Classify(s); err != nil {
					t.Fatalf("sequential segment %d: %v", i, err)
				}
			}
			batch, err := e.ClassifyBatch(segments)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batch, want) {
				t.Fatalf("ClassifyBatch diverged from sequential:\n got %v\nwant %v", batch, want)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				got, err := e.ClassifyBatchParallel(context.Background(), segments, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d diverged from sequential:\n got %v\nwant %v", workers, got, want)
				}
			}
		})
	}
}

// TestClassifyBatchParallelResilientReplay: on a resilient engine the
// parallel batch degenerates to the serial modeled timeline, so two
// engines built from the same seeded fault plan produce identical
// result sequences regardless of the requested parallelism.
func TestClassifyBatchParallelResilientReplay(t *testing.T) {
	plan, err := FaultScenario("bursty", 13, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Engine {
		e, err := New(Config{Case: "C1", FaultPlan: plan})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	segments := segsOf(a, 60)
	la, err := a.ClassifyBatchParallel(context.Background(), segments, 8)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.ClassifyBatchParallel(context.Background(), segments, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(la, lb) {
		t.Fatalf("seeded resilient replay diverged across parallelism:\n 8 workers: %v\n 1 worker:  %v", la, lb)
	}
}

// TestStreamOrderedUnderParallelism: StreamParallel delivers results
// in input order for any worker count, with labels identical to the
// sequential stream.
func TestStreamOrderedUnderParallelism(t *testing.T) {
	e, err := New(Config{Case: "C1"})
	if err != nil {
		t.Fatal(err)
	}
	segments := segsOf(e, 120)
	want := make([]int, len(segments))
	for i, s := range segments {
		if want[i], err = e.Classify(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		in := make(chan []float64)
		go func() {
			defer close(in)
			for _, s := range segments {
				in <- s
			}
		}()
		next := 0
		for r := range e.StreamParallel(context.Background(), in, workers) {
			if r.Err != nil {
				t.Fatalf("workers=%d index %d: %v", workers, r.Index, r.Err)
			}
			if r.Index != next {
				t.Fatalf("workers=%d: got index %d, want %d (out of order)", workers, r.Index, next)
			}
			if r.Result.Label != want[r.Index] {
				t.Fatalf("workers=%d index %d: label %d, want %d", workers, r.Index, r.Result.Label, want[r.Index])
			}
			next++
		}
		if next != len(segments) {
			t.Fatalf("workers=%d: stream delivered %d results, want %d", workers, next, len(segments))
		}
	}
}

// TestHotSwapDuringParallelBatch is the swap-under-load property: an
// adaptive-style re-cut in the middle of a parallel batch never yields
// a result from a half-swapped cut. Every event reads the active
// system through one atomic load, so each label must equal what one of
// the two complete cuts computes — the race detector additionally
// verifies the swap itself is clean.
func TestHotSwapDuringParallelBatch(t *testing.T) {
	e, err := New(Config{Case: "C1"})
	if err != nil {
		t.Fatal(err)
	}
	alt, err := e.static.WithPlacement(partition.InSensor(e.graph))
	if err != nil {
		t.Fatal(err)
	}
	segments := segsOf(e, 60)

	wantStatic := make([]int, len(segments))
	for i, s := range segments {
		if wantStatic[i], err = e.Classify(s); err != nil {
			t.Fatal(err)
		}
	}
	e.active.Store(alt)
	e.epoch.Add(1)
	wantAlt := make([]int, len(segments))
	for i, s := range segments {
		if wantAlt[i], err = e.Classify(s); err != nil {
			t.Fatal(err)
		}
	}
	e.active.Store(e.static)
	e.epoch.Add(1)

	// Flip the active cut continuously while parallel batches run.
	stop := make(chan struct{})
	flipped := make(chan struct{})
	go func() {
		defer close(flipped)
		cur := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			if cur {
				e.active.Store(e.static)
			} else {
				e.active.Store(alt)
			}
			e.epoch.Add(1)
			cur = !cur
		}
	}()
	for round := 0; round < 4; round++ {
		got, err := e.ClassifyBatchParallel(context.Background(), segments, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i, label := range got {
			if label != wantStatic[i] && label != wantAlt[i] {
				t.Fatalf("round %d segment %d: label %d comes from neither complete cut (static %d, in-sensor %d)",
					round, i, label, wantStatic[i], wantAlt[i])
			}
		}
	}
	close(stop)
	<-flipped
	e.active.Store(e.static)
}

// fleetPair builds a two-subject network and its fleet.
func fleetPair(t *testing.T, opt ServeOptions) (*Network, *Fleet, map[string]*Engine) {
	t.Helper()
	engines := map[string]*Engine{}
	for name, sym := range map[string]string{"chest": "C1", "wrist": "M1"} {
		e, err := New(Config{Case: sym})
		if err != nil {
			t.Fatal(err)
		}
		engines[name] = e
	}
	n, err := NewNetwork(engines)
	if err != nil {
		t.Fatal(err)
	}
	f, err := n.Serve(opt)
	if err != nil {
		t.Fatal(err)
	}
	return n, f, engines
}

// TestFleetServeMatchesDirect: results served through the fleet equal
// direct engine calls, per subject, in submission order.
func TestFleetServeMatchesDirect(t *testing.T) {
	_, f, engines := fleetPair(t, ServeOptions{Workers: 4, QueueDepth: 128})
	defer f.Close()

	var reqs []FleetRequest
	want := map[string][]int{}
	for name, e := range engines {
		for _, s := range segsOf(e, 20) {
			label, err := e.Classify(s)
			if err != nil {
				t.Fatal(err)
			}
			want[name] = append(want[name], label)
			reqs = append(reqs, FleetRequest{Subject: name, Samples: s})
		}
	}
	results := f.ClassifyBatch(context.Background(), reqs)
	got := map[string][]int{}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d (%s): %v", i, r.Subject, r.Err)
		}
		got[r.Subject] = append(got[r.Subject], r.Result.Label)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet labels diverged from direct calls:\n got %v\nwant %v", got, want)
	}
	if _, err := f.Submit(context.Background(), "nobody", nil); err == nil {
		t.Fatal("submit for unknown subject succeeded")
	}
}

// TestFleetOverloadReturnsTyped: a full bounded queue rejects with
// ErrOverloaded immediately — no hang — and nothing is enqueued for
// the rejected submission.
func TestFleetOverloadReturnsTyped(t *testing.T) {
	_, f, engines := fleetPair(t, ServeOptions{Workers: 1, QueueDepth: 1})
	defer f.Close()
	seg := segsOf(engines["chest"], 1)[0]

	// Occupy the single worker with a job we control, then fill the
	// depth-1 queue: the next submission must bounce.
	release := make(chan struct{})
	started := make(chan struct{})
	if err := f.pool.Submit(0, func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	ch, err := f.Submit(context.Background(), "chest", seg)
	if err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if _, err := f.Submit(context.Background(), "chest", seg); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity submit: got %v, want ErrOverloaded", err)
	}
	if got := f.obs.MetricValue("xpro_fleet_rejected_total"); got != 1 {
		t.Fatalf("xpro_fleet_rejected_total = %v, want 1", got)
	}
	close(release)
	if r := <-ch; r.Err != nil {
		t.Fatalf("queued event failed after release: %v", r.Err)
	}
}

// TestFleetCloseDrains: Close blocks until every accepted event is
// served; submissions after Close return ErrFleetClosed.
func TestFleetCloseDrains(t *testing.T) {
	_, f, engines := fleetPair(t, ServeOptions{Workers: 2, QueueDepth: 256})
	segs := map[string][]float64{
		"chest": segsOf(engines["chest"], 1)[0],
		"wrist": segsOf(engines["wrist"], 1)[0],
	}
	var chans []<-chan FleetResult
	for i := 0; i < 50; i++ {
		subject := "chest"
		if i%2 == 1 {
			subject = "wrist"
		}
		ch, err := f.Submit(context.Background(), subject, segs[subject])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	f.Close()
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("drained event %d: %v", i, r.Err)
			}
		default:
			t.Fatalf("event %d not served after Close returned", i)
		}
	}
	if _, err := f.Submit(context.Background(), "chest", segs["chest"]); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("submit after Close: got %v, want ErrFleetClosed", err)
	}
	f.Close() // idempotent
}

// TestCancelPropagatesWithoutTrippingBreaker: context cancellation
// surfaces as a typed ErrCanceled through the resilient classify path
// and leaves the modeled timeline untouched — no clock advance, no
// breaker transition, no error counter.
func TestCancelPropagatesWithoutTrippingBreaker(t *testing.T) {
	e, err := New(Config{Case: "C1", Resilience: DefaultResilience()})
	if err != nil {
		t.Fatal(err)
	}
	seg := segsOf(e, 1)[0]
	if _, err := e.ClassifyResultContext(context.Background(), seg); err != nil {
		t.Fatal(err)
	}
	clockBefore := e.res.clock.Now()
	breakerBefore := e.res.breaker.State()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.ClassifyResultContext(ctx, seg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled classify: got %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled classify: %v does not wrap context.Canceled", err)
	}
	if got := e.res.clock.Now(); got != clockBefore {
		t.Fatalf("canceled event advanced the modeled clock: %v -> %v", clockBefore, got)
	}
	if got := e.res.breaker.State(); got != breakerBefore {
		t.Fatalf("canceled event changed breaker state: %v -> %v", breakerBefore, got)
	}
	if got := e.Observer().MetricValue("xpro_breaker_transitions_total"); got != 0 {
		t.Fatalf("canceled event tripped the breaker: %v transitions", got)
	}
	if got := e.Observer().MetricValue("xpro_classify_errors_total"); got != 0 {
		t.Fatalf("cancellation counted as a classify error: %v", got)
	}
	if got := e.Observer().MetricValue("xpro_classify_canceled_total"); got != 1 {
		t.Fatalf("xpro_classify_canceled_total = %v, want 1", got)
	}
	// The engine still serves after the cancellation.
	if _, err := e.ClassifyResultContext(context.Background(), seg); err != nil {
		t.Fatalf("classify after cancellation: %v", err)
	}
}

// TestNetworkReportMemoized is the generation-counter satellite: the
// cached report equals a freshly built one, repeated queries hit the
// cache, and a forced re-cut invalidates it.
func TestNetworkReportMemoized(t *testing.T) {
	e, err := New(Config{Case: "C1"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(map[string]*Engine{"chest": e})
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() NetworkReport {
		t.Helper()
		n2, err := NewNetwork(map[string]*Engine{"chest": e})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n2.Report()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	r1, err := n.Report()
	if err != nil {
		t.Fatal(err)
	}
	if want := fresh(); !reflect.DeepEqual(r1, want) {
		t.Fatalf("cached report diverged from fresh before re-cut:\n got %+v\nwant %+v", r1, want)
	}
	rebuilds := n.obs.MetricValue("xpro_network_view_rebuilds_total")
	for i := 0; i < 5; i++ {
		if _, err := n.Report(); err != nil {
			t.Fatal(err)
		}
		n.RealTimeOK(4e-3)
	}
	if got := n.obs.MetricValue("xpro_network_view_rebuilds_total"); got != rebuilds {
		t.Fatalf("unchanged engines rebuilt the view: %v -> %v rebuilds", rebuilds, got)
	}
	if got := n.obs.MetricValue("xpro_network_view_hits_total"); got < 10 {
		t.Fatalf("memoized view served only %v hits, want >= 10", got)
	}

	// Forced re-cut: install a different whole placement as the active
	// system and bump the serving epoch, exactly as the adaptive
	// controller does. Whichever trivial placement differs from the
	// optimal cut serves — the point is that the report must change.
	alt, err := e.static.WithPlacement(partition.InAggregator(e.graph))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(alt.Placement, e.static.Placement) {
		if alt, err = e.static.WithPlacement(partition.InSensor(e.graph)); err != nil {
			t.Fatal(err)
		}
	}
	e.active.Store(alt)
	e.epoch.Add(1)
	defer func() { e.active.Store(e.static); e.epoch.Add(1) }()

	r2, err := n.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.obs.MetricValue("xpro_network_view_rebuilds_total"); got != rebuilds+1 {
		t.Fatalf("re-cut did not rebuild the view: %v -> %v rebuilds", rebuilds, got)
	}
	if want := fresh(); !reflect.DeepEqual(r2, want) {
		t.Fatalf("cached report diverged from fresh after re-cut:\n got %+v\nwant %+v", r2, want)
	}
	if reflect.DeepEqual(r1, r2) {
		t.Fatal("re-cut to the in-sensor placement left the network report unchanged; invalidation check is vacuous")
	}
}

// TestGenerationBumpsOnBreakerAndFaultEdges: the serving epoch moves
// when a fault window opens and when the breaker transitions, so the
// memoized network view follows degradation.
func TestGenerationBumpsOnBreakerAndFaultEdges(t *testing.T) {
	res := DefaultResilience()
	res.BreakerThreshold = 1
	plan := &FaultPlan{Seed: 5, Windows: []FaultWindow{
		{Kind: "link-outage", StartSeconds: 0.01, EndSeconds: 10},
	}}
	e, err := New(Config{Case: "C1", Resilience: res, FaultPlan: plan})
	if err != nil {
		t.Fatal(err)
	}
	seg := segsOf(e, 1)[0]
	before := e.generation()
	for i := 0; i < 400 && e.res.breaker.State() != faults.BreakerOpen; i++ {
		if _, err := e.ClassifyResult(seg); err != nil {
			t.Fatal(err)
		}
	}
	if e.res.breaker.State() != faults.BreakerOpen {
		t.Fatal("outage never opened the breaker; epoch check is vacuous")
	}
	if got := e.generation(); got <= before {
		t.Fatalf("breaker transition and fault-window edge left generation at %d", got)
	}
}

// TestFleetFIFOPerSubject: one subject's events are served strictly in
// submission order even when many goroutines are pushing other
// subjects — the ordering half of the determinism contract.
func TestFleetFIFOPerSubject(t *testing.T) {
	_, f, _ := fleetPair(t, ServeOptions{Workers: 3, QueueDepth: 512})
	defer f.Close()

	var order []int32
	const n = 200
	// In-package: submit instrumented jobs under the chest shard to
	// observe execution order directly.
	shard := f.shards["chest"]
	for i := 0; i < n; i++ {
		i := i
		if err := f.pool.Submit(shard, func() {
			order = append(order, int32(i)) // single worker per shard: no race
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	f.Close()
	if len(order) != n {
		t.Fatalf("%d of %d events ran", len(order), n)
	}
	for i, v := range order {
		if int(v) != i {
			t.Fatalf("subject events reordered: position %d ran job %d", i, v)
		}
	}
}
