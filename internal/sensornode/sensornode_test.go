package sensornode

import (
	"math"
	"math/rand"
	"testing"

	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/ensemble"
	"xpro/internal/topology"
)

func TestEventsPerSecond(t *testing.T) {
	ev, err := EventsPerSecond(128, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if ev != 16 {
		t.Errorf("events/s = %v, want 16", ev)
	}
	if _, err := EventsPerSecond(0, 2048); err == nil {
		t.Error("zero segment length should error")
	}
	if _, err := EventsPerSecond(128, 0); err == nil {
		t.Error("zero sample rate should error")
	}
}

func TestSensingEnergyPerEvent(t *testing.T) {
	e, err := SensingEnergyPerEvent(128, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// 2 µW front end at 16 events/s → 125 nJ/event.
	if math.Abs(e-SensingPower/16) > 1e-18 {
		t.Errorf("sensing energy = %v", e)
	}
	if _, err := SensingEnergyPerEvent(0, 1); err == nil {
		t.Error("invalid args should error")
	}
}

func TestCharacterize(t *testing.T) {
	spec, err := biosig.CaseBySymbol("E1")
	if err != nil {
		t.Fatal(err)
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(2))
	train, _ := d.Split(0.75, rng)
	cfg := ensemble.DefaultConfig(2)
	cfg.Candidates = 6
	cfg.Folds = 2
	cfg.TopFrac = 0.5
	ens, err := ensemble.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Build(ens, d.SegLen)
	if err != nil {
		t.Fatal(err)
	}
	hw := Characterize(g, celllib.P90)
	if len(hw.Profiles) != len(g.Cells) || len(hw.Modes) != len(g.Cells) {
		t.Fatal("profiles must cover every cell")
	}
	var all []topology.CellID
	for i, c := range g.Cells {
		id := topology.CellID(i)
		all = append(all, id)
		if hw.Energy(id) <= 0 || hw.Delay(id) <= 0 {
			t.Errorf("cell %s: non-positive profile", c.Name)
		}
		// Each cell carries the energy-minimal mode (design rule 2).
		wantMode, wantProf := celllib.BestMode(c.Spec, celllib.P90)
		if hw.Modes[i] != wantMode || hw.Profiles[i] != wantProf {
			t.Errorf("cell %s: mode %v, want %v", c.Name, hw.Modes[i], wantMode)
		}
		// DWT cells must be pipelined, SVM cells serial (Fig. 4).
		switch c.Role {
		case topology.RoleDWT:
			if hw.Modes[i] != celllib.Pipeline {
				t.Errorf("DWT cell in %v mode, want pipeline", hw.Modes[i])
			}
		case topology.RoleSVM:
			if !c.Spec.Linear && hw.Modes[i] != celllib.Serial {
				t.Errorf("RBF SVM cell in %v mode, want serial", hw.Modes[i])
			}
		}
	}
	sum := hw.TotalComputeEnergy(all)
	var want float64
	for _, id := range all {
		want += hw.Energy(id)
	}
	if math.Abs(sum-want) > 1e-18 {
		t.Error("TotalComputeEnergy mismatch")
	}
	// 90 nm hardware must be cheaper than 130 nm for every cell.
	hw130 := Characterize(g, celllib.P130)
	for _, id := range all {
		if hw.Energy(id) >= hw130.Energy(id) {
			t.Errorf("cell %d: 90 nm (%v) not cheaper than 130 nm (%v)", id, hw.Energy(id), hw130.Energy(id))
		}
	}
}
