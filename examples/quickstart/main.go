// Quickstart: build an XPro cross-end engine for the ECGTwoLead case,
// classify a few held-out segments through the partitioned pipeline, and
// print the modeled battery life.
package main

import (
	"fmt"
	"log"

	"xpro"
)

func main() {
	eng, err := xpro.New(xpro.Config{Case: "C1"})
	if err != nil {
		log.Fatal(err)
	}

	rep := eng.Report()
	fmt.Printf("XPro %s engine for %s\n", rep.Kind, rep.Case)
	fmt.Printf("  functional cells: %d (%d on sensor, %d on aggregator)\n",
		rep.Cells, rep.SensorCells, rep.AggregatorCells)
	fmt.Printf("  classifier accuracy: %.3f\n", rep.SoftwareAccuracy)

	test := eng.TestSet()
	correct := 0
	for _, seg := range test[:20] {
		label, err := eng.Classify(seg.Samples)
		if err != nil {
			log.Fatal(err)
		}
		if label == seg.Label {
			correct++
		}
	}
	fmt.Printf("  classified 20 segments through the cross-end pipeline, %d correct\n", correct)

	fmt.Printf("  sensor energy: %.3f µJ/event → battery life %.0f hours\n",
		rep.SensorEnergyPerEvent*1e6, rep.SensorLifetimeHours)
	fmt.Printf("  end-to-end delay: %.3f ms/event (front-end %.3f + wireless %.3f + back-end %.3f)\n",
		rep.DelayPerEventSeconds*1e3, rep.FrontEndDelay*1e3, rep.WirelessDelay*1e3, rep.BackEndDelay*1e3)
}
