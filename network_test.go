package xpro

import "testing"

func TestNetwork(t *testing.T) {
	engines := map[string]*Engine{}
	for _, sym := range []string{"C1", "E1"} {
		e, err := New(Config{Case: sym})
		if err != nil {
			t.Fatal(err)
		}
		engines[sym] = e
	}
	nw, err := NewNetwork(engines)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := nw.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NodeLifetimeHours) != 2 || len(rep.WorstCaseDelaySeconds) != 2 {
		t.Fatalf("report incomplete: %+v", rep)
	}
	// Per-node lifetimes match the standalone engines.
	for sym, e := range engines {
		if got, want := rep.NodeLifetimeHours[sym], e.Report().SensorLifetimeHours; got != want {
			t.Errorf("%s: network lifetime %v != standalone %v", sym, got, want)
		}
		// Shared CPU can only make the worst case slower.
		if rep.WorstCaseDelaySeconds[sym] < e.Report().DelayPerEventSeconds-1e-12 {
			t.Errorf("%s: worst case %v below solo delay", sym, rep.WorstCaseDelaySeconds[sym])
		}
	}
	if rep.BottleneckHours > rep.NodeLifetimeHours["C1"] || rep.BottleneckHours > rep.NodeLifetimeHours["E1"] {
		t.Error("bottleneck not minimal")
	}
	if rep.AggregatorUtilization <= 0 || rep.AggregatorUtilization >= 1 {
		t.Errorf("utilization %v not sustainable", rep.AggregatorUtilization)
	}
	if rep.AggregatorLifetimeHours < 52 {
		t.Errorf("aggregator lifetime %v h below the §5.6 bar", rep.AggregatorLifetimeHours)
	}
	if !nw.RealTimeOK(10e-3) {
		t.Error("network should meet 10 ms")
	}
	if nw.RealTimeOK(1e-9) {
		t.Error("network cannot meet 1 ns")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty network should error")
	}
	if _, err := NewNetwork(map[string]*Engine{"x": nil}); err == nil {
		t.Error("nil engine should error")
	}
}

// A degraded engine must be accounted as it actually runs: once its
// breaker holds a dead link open, the node serves events from the
// in-sensor fallback cut, and network reports follow — not the cut the
// engine was built with.
func TestNetworkDegradedEngine(t *testing.T) {
	pol := DefaultResilience()
	pol.BreakerThreshold = 1
	degraded, err := New(Config{Case: "C1", Kind: InAggregator,
		Resilience: pol, FaultPlan: outagePlan(3)})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := New(Config{Case: "E1"})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(map[string]*Engine{"chest": degraded, "wrist": healthy})
	if err != nil {
		t.Fatal(err)
	}
	before, err := nw.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := before.NodeLifetimeHours["chest"], degraded.Report().SensorLifetimeHours; got != want {
		t.Fatalf("pre-degradation lifetime %v != built cut's %v", got, want)
	}

	// One event across the permanent outage drops, which trips the
	// 1-threshold breaker: the node now serves from the in-sensor
	// fallback.
	if _, err := degraded.ClassifyResult(degraded.TestSet()[0].Samples); err != nil {
		t.Fatal(err)
	}
	after, err := nw.Report()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(Config{Case: "C1", Kind: InSensor})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after.NodeLifetimeHours["chest"], ref.Report().SensorLifetimeHours; got != want {
		t.Errorf("degraded lifetime %v != in-sensor fallback's %v", got, want)
	}
	if after.NodeLifetimeHours["chest"] == before.NodeLifetimeHours["chest"] {
		t.Error("report did not move when the engine degraded")
	}
	if got, want := after.NodeLifetimeHours["wrist"], before.NodeLifetimeHours["wrist"]; got != want {
		t.Errorf("healthy node's lifetime moved: %v -> %v", want, got)
	}

	// RealTimeOK judges the degraded node on the fallback's delay: a
	// limit between the fallback's worst case and the built cut's delay
	// holds now, though the built (in-aggregator) cut would blow it.
	solo, err := NewNetwork(map[string]*Engine{"chest": degraded})
	if err != nil {
		t.Fatal(err)
	}
	srep, err := solo.Report()
	if err != nil {
		t.Fatal(err)
	}
	din, dagg := srep.WorstCaseDelaySeconds["chest"], degraded.Report().DelayPerEventSeconds
	if din < dagg {
		limit := (din + dagg) / 2
		if !solo.RealTimeOK(limit) {
			t.Errorf("network not real-time at %v with the faster fallback active", limit)
		}
	}
}
