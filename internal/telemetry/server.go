package telemetry

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Server is the opt-in introspection HTTP server. It exposes:
//
//	/metrics      Prometheus text exposition of the registry
//	/trace        the span ring as JSON
//	/enginez      registered status sections (config, placement, report)
//	/debug/vars   expvar
//	/debug/pprof  the standard Go profiler endpoints
//
// A Server is created idle by NewServer; Start binds and serves in the
// background until Close.
type Server struct {
	reg    *Registry
	tracer *Tracer

	mu     sync.Mutex
	status map[string]func() any
	ln     net.Listener
	hs     *http.Server
}

// NewServer creates an idle introspection server over reg and tr.
// Either may be nil: /metrics then serves an empty exposition and
// /trace an empty span list.
func NewServer(reg *Registry, tr *Tracer) *Server {
	return &Server{reg: reg, tracer: tr, status: make(map[string]func() any)}
}

// RegisterStatus adds (or replaces) one /enginez section. fn is invoked
// per request; it must be safe for concurrent use and return a
// JSON-marshalable value.
func (s *Server) RegisterStatus(section string, fn func() any) {
	if s == nil || section == "" || fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.status[section] = fn
}

// Handler returns the server's route mux, usable standalone (e.g. in
// tests or when embedding into an existing server).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveIndex)
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/trace", s.serveTrace)
	mux.HandleFunc("/enginez", s.serveEnginez)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (":0" picks a free port) and serves in a background
// goroutine. It returns the bound address, e.g. "127.0.0.1:43211".
func (s *Server) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return "", errors.New("telemetry: server already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: %w", err)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go s.hs.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Closing an unstarted server is a no-op.
func (s *Server) Close() error {
	s.mu.Lock()
	hs := s.hs
	s.ln, s.hs = nil, nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Close()
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "xpro introspection server")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "  /metrics      Prometheus text exposition")
	fmt.Fprintln(w, "  /trace        per-cell span ring (JSON)")
	fmt.Fprintln(w, "  /enginez      engine config, placement and report (JSON)")
	fmt.Fprintln(w, "  /debug/vars   expvar")
	fmt.Fprintln(w, "  /debug/pprof  Go profiler")
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) serveTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := s.tracer.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) serveEnginez(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fns := make(map[string]func() any, len(s.status))
	for k, v := range s.status {
		fns[k] = v
	}
	s.mu.Unlock()
	doc := make(map[string]any, len(fns))
	names := make([]string, 0, len(fns))
	for k := range fns {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		doc[k] = fns[k]()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
