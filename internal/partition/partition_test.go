package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/ensemble"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

var (
	cachedProblem *Problem
	cachedGraph   *topology.Graph
)

func testProblem(t testing.TB) *Problem {
	t.Helper()
	if cachedProblem != nil {
		return cachedProblem
	}
	spec, err := biosig.CaseBySymbol("E1")
	if err != nil {
		t.Fatal(err)
	}
	d := biosig.Generate(spec)
	rng := rand.New(rand.NewSource(3))
	train, _ := d.Split(0.75, rng)
	cfg := ensemble.DefaultConfig(3)
	cfg.Candidates = 10
	cfg.Folds = 3
	cfg.TopFrac = 0.3
	ens, err := ensemble.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.Build(ens, d.SegLen)
	if err != nil {
		t.Fatal(err)
	}
	hw := sensornode.Characterize(g, celllib.P90)
	sensing, err := sensornode.SensingEnergyPerEvent(d.SegLen, sensornode.DefaultSampleRateHz)
	if err != nil {
		t.Fatal(err)
	}
	cachedGraph = g
	cachedProblem = &Problem{Graph: g, HW: hw, Link: wireless.Model2(), SensingEnergy: sensing}
	return cachedProblem
}

func TestEndString(t *testing.T) {
	if Sensor.String() != "sensor" || Aggregator.String() != "aggregator" {
		t.Error("end names wrong")
	}
}

func TestBaselinePlacements(t *testing.T) {
	pr := testProblem(t)
	g := pr.Graph
	s := InSensor(g)
	a := InAggregator(g)
	ns, _ := s.Counts()
	_, na := a.Counts()
	if ns != len(g.Cells) || na != len(g.Cells) {
		t.Error("baseline placements must cover all cells on one end")
	}
	tr := Trivial(g)
	for _, c := range g.Cells {
		onSensor := tr.OnSensor(c.ID)
		wantSensor := c.Role != topology.RoleSVM && c.Role != topology.RoleFusion
		if onSensor != wantSensor {
			t.Errorf("trivial cut: %s on sensor=%v, want %v", c.Name, onSensor, wantSensor)
		}
	}
	if !s.Equal(s) || s.Equal(a) {
		t.Error("Equal broken")
	}
	if s.Equal(Placement{Sensor}) {
		t.Error("Equal must compare lengths")
	}
}

// The structural guarantee of §3.2.2: the min cut never exceeds the two
// single-end extreme cuts, nor any other cut we can construct.
func TestMinCutDominatesBaselines(t *testing.T) {
	pr := testProblem(t)
	p, e := pr.MinCut()
	if got := pr.SensorEnergy(p); math.Abs(got-e) > 1e-15 {
		t.Fatalf("MinCut energy %v != SensorEnergy %v", e, got)
	}
	for _, base := range []Placement{InSensor(pr.Graph), InAggregator(pr.Graph), Trivial(pr.Graph)} {
		if be := pr.SensorEnergy(base); e > be+1e-12 {
			t.Errorf("min cut (%v J) worse than a baseline cut (%v J)", e, be)
		}
	}
	if !pr.GroupedOK(p) {
		t.Error("min cut violates the grouped constraint")
	}
}

// Property: the min cut is no worse than random grouped placements.
func TestQuickMinCutIsOptimalAmongRandom(t *testing.T) {
	pr := testProblem(t)
	_, minE := pr.MinCut()
	readers := pr.Graph.SourceReaders()
	readerSet := make(map[topology.CellID]bool)
	for _, id := range readers {
		readerSet[id] = true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make(Placement, len(pr.Graph.Cells))
		groupEnd := End(rng.Intn(2))
		for i := range p {
			if readerSet[topology.CellID(i)] {
				p[i] = groupEnd
			} else {
				p[i] = End(rng.Intn(2))
			}
		}
		return pr.SensorEnergy(p) >= minE-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The s-t graph's cut capacity must agree with the direct energy model:
// price the three named grouped placements through both paths.
func TestGraphAgreesWithDirectModel(t *testing.T) {
	pr := testProblem(t)
	g := pr.Graph
	fg := pr.stGraph(0)
	for _, named := range []struct {
		name string
		p    Placement
	}{
		{"sensor", InSensor(g)},
		{"aggregator", InAggregator(g)},
		{"trivial", Trivial(g)},
	} {
		side := make([]bool, fg.N())
		side[0] = true // F
		// D sits with the group: on the sensor side iff raw not sent.
		rawSent := false
		for _, id := range g.SourceReaders() {
			if !named.p.OnSensor(id) {
				rawSent = true
			}
		}
		side[2] = !rawSent
		for i := range g.Cells {
			side[3+i] = named.p.OnSensor(topology.CellID(i))
		}
		// Aux transfer nodes settle greedily: tx aux joins the sink side
		// unless producer and all consumers are on the sensor side; rx
		// aux joins the source side iff any consumer is on it... resolve
		// by scanning groups in order, mirroring stGraph's layout.
		aux := 3 + len(g.Cells)
		for _, tg := range g.TransferGroups() {
			if len(tg.Consumers) == 1 {
				continue
			}
			allSensor := named.p.OnSensor(tg.From)
			anySensorConsumer := false
			for _, c := range tg.Consumers {
				if !named.p.OnSensor(c) {
					allSensor = false
				} else {
					anySensorConsumer = true
				}
			}
			side[aux] = allSensor && named.p.OnSensor(tg.From) // tx aux
			side[aux+1] = anySensorConsumer                    // rx aux
			aux += 2
		}
		got := fg.CutValue(side)
		want := pr.SensorEnergy(named.p) - pr.SensingEnergy
		if math.Abs(got-want) > 1e-12+1e-9*want {
			t.Errorf("%s cut: graph capacity %v, direct model %v", named.name, got, want)
		}
	}
}

func TestGenerateRespectsDelayLimit(t *testing.T) {
	pr := testProblem(t)
	// Synthetic delay model: penalize aggregator cells so the constraint
	// binds; the limit only admits placements with ≤ 10 aggregator cells.
	delayOf := func(p Placement) float64 {
		_, na := p.Counts()
		return float64(na)
	}
	res, err := pr.Generate(delayOf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > 10 {
		t.Errorf("generated placement delay %v exceeds limit", res.Delay)
	}
	if res.Energy != pr.SensorEnergy(res.Placement) {
		t.Error("reported energy mismatch")
	}
}

func TestGenerateFallsBack(t *testing.T) {
	pr := testProblem(t)
	// Only the all-sensor engine has zero aggregator cells; a limit of 0
	// forces the fallback path.
	delayOf := func(p Placement) float64 {
		_, na := p.Counts()
		return float64(na)
	}
	res, err := pr.Generate(delayOf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Equal(InSensor(pr.Graph)) {
		t.Error("fallback should return the in-sensor engine")
	}
}

func TestGenerateUnconstrainedMatchesMinCut(t *testing.T) {
	pr := testProblem(t)
	res, err := pr.Generate(func(Placement) float64 { return 0 }, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, minE := pr.MinCut()
	if math.Abs(res.Energy-minE) > 1e-15 {
		t.Errorf("unconstrained generate %v != min cut %v", res.Energy, minE)
	}
	if res.Fallback {
		t.Error("unconstrained generate must not fall back")
	}
}

func TestGenerateErrors(t *testing.T) {
	pr := testProblem(t)
	if _, err := pr.Generate(nil, 1); err == nil {
		t.Error("nil delay model should error")
	}
	if _, err := pr.Generate(func(Placement) float64 { return 1 }, 0); err == nil {
		t.Error("zero limit should error")
	}
	if _, err := pr.Generate(func(Placement) float64 { return 99 }, 1); err == nil {
		t.Error("universally infeasible limit should error")
	}
}

func TestGreedyRepair(t *testing.T) {
	pr := testProblem(t)
	g := pr.Graph
	delayOf := func(p Placement) float64 {
		_, na := p.Counts()
		return float64(na)
	}
	start := InAggregator(g)
	traj := pr.greedyRepair(start, delayOf, 3)
	if len(traj) == 0 {
		t.Fatal("repair produced no steps")
	}
	prev := delayOf(start)
	for i, p := range traj {
		d := delayOf(p)
		if d >= prev {
			t.Fatalf("step %d: delay %v did not decrease from %v", i, d, prev)
		}
		prev = d
		if !pr.GroupedOK(p) {
			t.Fatalf("step %d violates the grouped constraint", i)
		}
	}
	if final := traj[len(traj)-1]; delayOf(final) > 3 {
		t.Errorf("repair stopped at delay %v, limit 3 was reachable", delayOf(final))
	}
}

// Generate must use repair candidates: with a per-aggregator-cell delay
// model and a limit between the sweep's breakpoints, the result should
// be an interior placement, not a single-end fallback.
func TestGenerateUsesRepair(t *testing.T) {
	pr := testProblem(t)
	delayOf := func(p Placement) float64 {
		_, na := p.Counts()
		return float64(na)
	}
	_, naMin := InAggregator(pr.Graph).Counts()
	limit := float64(naMin) / 2 // halfway: neither single-end nor min cut
	res, err := pr.Generate(delayOf, limit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Error("repair should have produced a feasible interior candidate")
	}
	if res.Delay > limit {
		t.Errorf("result delay %v exceeds limit %v", res.Delay, limit)
	}
	// The result must beat the trivially feasible in-sensor engine
	// whenever any cheaper feasible placement exists; at minimum it must
	// not be worse.
	if inS := pr.SensorEnergy(InSensor(pr.Graph)); res.Energy > inS+1e-12 {
		t.Errorf("result energy %v worse than in-sensor %v", res.Energy, inS)
	}
}

func TestNamedCuts(t *testing.T) {
	pr := testProblem(t)
	cuts := pr.NamedCuts()
	if len(cuts) != 4 {
		t.Fatalf("named cuts = %d, want 4", len(cuts))
	}
	names := make(map[string]bool)
	for i, c := range cuts {
		names[c.Name] = true
		if i > 0 && cuts[i-1].Energy > c.Energy {
			t.Error("named cuts must be sorted by energy")
		}
	}
	for _, want := range []string{"aggregator", "trivial", "sensor", "cross"} {
		if !names[want] {
			t.Errorf("missing cut %q", want)
		}
	}
	if cuts[0].Name != "cross" && cuts[0].Energy != pr.SensorEnergy(cuts[0].Placement) {
		t.Error("cheapest cut inconsistent")
	}
}

func TestGroupedOK(t *testing.T) {
	pr := testProblem(t)
	g := pr.Graph
	if !pr.GroupedOK(InSensor(g)) || !pr.GroupedOK(InAggregator(g)) {
		t.Error("single-end placements are trivially grouped")
	}
	readers := g.SourceReaders()
	if len(readers) >= 2 {
		p := InSensor(g)
		p[readers[0]] = Aggregator
		if pr.GroupedOK(p) {
			t.Error("split source readers must violate GroupedOK")
		}
	}
}

func BenchmarkMinCut(b *testing.B) {
	pr := testProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.MinCut()
	}
}

func BenchmarkGenerate(b *testing.B) {
	pr := testProblem(b)
	delayOf := func(p Placement) float64 {
		_, na := p.Counts()
		return float64(na)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Generate(delayOf, float64(len(pr.Graph.Cells))); err != nil {
			b.Fatal(err)
		}
	}
}

// For a minimum cut, flipping any single cell (or the grouped readers as
// a unit) can never reduce sensor energy.
func TestExplainMinCutNonNegative(t *testing.T) {
	pr := testProblem(t)
	p, base := pr.MinCut()
	sens := pr.Explain(p)
	if len(sens) != len(pr.Graph.Cells) {
		t.Fatalf("sensitivities = %d, want %d", len(sens), len(pr.Graph.Cells))
	}
	for _, s := range sens {
		if s.DeltaEnergy < -1e-12 {
			t.Errorf("cell %d: flipping reduces energy by %v — cut not minimal", s.Cell, -s.DeltaEnergy)
		}
	}
	_ = base
}

// Grouped readers report one shared delta.
func TestExplainGroupedShared(t *testing.T) {
	pr := testProblem(t)
	p := InSensor(pr.Graph)
	sens := pr.Explain(p)
	readers := pr.Graph.SourceReaders()
	if len(readers) < 2 {
		t.Skip("needs ≥ 2 source readers")
	}
	first := sens[readers[0]].DeltaEnergy
	for _, id := range readers[1:] {
		if sens[id].DeltaEnergy != first {
			t.Error("grouped readers must share one sensitivity")
		}
	}
}
