// Package wireless models the inter-end communication link of the XPro
// system: ultra-low-power medical-implant transceivers between the
// wearable sensor node and the data aggregator.
//
// The paper builds a transceiver simulator from the energy statistics of
// three published implantable radios (§4.2); this package uses those
// exact numbers:
//
//	Model 1 ("high-energy"):   2.9  nJ/bit tx, 3.3   nJ/bit rx  [Bohorquez et al.]
//	Model 2 ("medium-energy"): 1.53 nJ/bit tx, 1.71  nJ/bit rx  [Liu et al., ESSCIRC'11]
//	Model 3 ("low-energy"):    0.42 nJ/bit tx, 0.295 nJ/bit rx  [Liu et al., BioCAS'11]
//
// The simulator "employs a common communication protocol and considers
// an 8-bit header in each payload" (§4.2); packets here carry up to
// MaxPayloadBits of data plus that header. Bluetooth Low Energy is
// deliberately absent, as in the paper (orders of magnitude above the
// µW-level sensor budget).
package wireless

import (
	"fmt"
	"math/rand"
)

// HeaderBits is the protocol header per payload (§4.2).
const HeaderBits = 8

// MaxPayloadBits is the largest data payload carried per packet.
const MaxPayloadBits = 256

// SampleBits is the wire width of one raw ADC sample (the biosignal
// front end digitizes at 16 bits; cf. the 8-bit 1-V SAR ADC class the
// paper cites for biosignal acquisition, widened to the 16-bit samples
// XPro's 32-bit fixed-point cells consume).
const SampleBits = 16

// ValueBits is the wire width of one computed value (DWT coefficient,
// SVM score, fused result). Cells compute in 32-bit Q16.16 (§4.4) but
// quantize payloads to Q8.8 on the wire: DWT coefficients of a [0, 1]
// segment stay within ±2^7, so 16 bits preserve classification
// behaviour at half the transmission energy.
const ValueBits = 16

// FeatureBits is the wire width of one statistical feature value. §4.4:
// "All the statistical features are normalized to range [0, 1]", so a
// feature payload quantizes to Q0.8 — a single byte.
const FeatureBits = 8

// Model is a wireless transceiver energy/rate model.
type Model struct {
	Name      string
	Index     int     // 1-based paper index
	TxJPerBit float64 // transmit energy per bit (J)
	RxJPerBit float64 // receive energy per bit (J)
	RateBps   float64 // air data rate
}

// Model1 is the 350µW MSK / 400µW OOK design: 2.9/3.3 nJ/bit at 2 Mb/s.
func Model1() Model {
	return Model{Name: "high-energy", Index: 1, TxJPerBit: 2.9e-9, RxJPerBit: 3.3e-9, RateBps: 2e6}
}

// Model2 is the current-reuse inductor-sharing design: 1.53/1.71 nJ/bit.
func Model2() Model {
	return Model{Name: "medium-energy", Index: 2, TxJPerBit: 1.53e-9, RxJPerBit: 1.71e-9, RateBps: 2e6}
}

// Model3 is the optimized implantable OOK transceiver: 0.42/0.295 nJ/bit.
func Model3() Model {
	return Model{Name: "low-energy", Index: 3, TxJPerBit: 0.42e-9, RxJPerBit: 0.295e-9, RateBps: 2e6}
}

// Models returns the three paper models in order.
func Models() []Model { return []Model{Model1(), Model2(), Model3()} }

func (m Model) String() string {
	return fmt.Sprintf("model%d(%s, %.3g/%.3g nJ/bit)", m.Index, m.Name, m.TxJPerBit*1e9, m.RxJPerBit*1e9)
}

// Packets returns the number of packets needed for dataBits of payload.
func Packets(dataBits int64) int64 {
	if dataBits <= 0 {
		return 0
	}
	return (dataBits + MaxPayloadBits - 1) / MaxPayloadBits
}

// WireBits returns the total on-air bits for dataBits of payload,
// including one header per packet.
func WireBits(dataBits int64) int64 {
	return dataBits + Packets(dataBits)*HeaderBits
}

// FramedWireBits is WireBits plus extraPerPacketBits of envelope on
// every packet — the cost of an integrity layer (sequence numbers and
// checksums) expressed in the same per-packet header currency.
func FramedWireBits(dataBits, extraPerPacketBits int64) int64 {
	return WireBits(dataBits) + Packets(dataBits)*extraPerPacketBits
}

// Transfer is the cost of moving one payload across the link.
type Transfer struct {
	DataBits int64
	WireBits int64
	// TxEnergy is paid by the transmitting end, RxEnergy by the
	// receiving end (Eq. 3: Ew = Nt·B·Ct + Nr·B·Cr).
	TxEnergy float64
	RxEnergy float64
	// Delay is the air time.
	Delay float64
}

// Cost returns the energy/delay of sending dataBits over the link.
// Zero-size payloads cost nothing (no packet is sent).
func (m Model) Cost(dataBits int64) Transfer {
	wire := WireBits(dataBits)
	return Transfer{
		DataBits: dataBits,
		WireBits: wire,
		TxEnergy: float64(wire) * m.TxJPerBit,
		RxEnergy: float64(wire) * m.RxJPerBit,
		Delay:    float64(wire) / m.RateBps,
	}
}

// TxEnergyPerBit and RxEnergyPerBit expose the per-bit constants for the
// s-t graph edge weights.
func (m Model) TxEnergyPerBit() float64 { return m.TxJPerBit }
func (m Model) RxEnergyPerBit() float64 { return m.RxJPerBit }

// Channel is a lossy link extension: packets are lost independently with
// probability Loss and retransmitted up to MaxRetries times each. The
// paper's evaluation assumes a clean channel; Channel quantifies how the
// cross-end trade-off degrades on a noisy body-area link.
type Channel struct {
	Model
	Loss       float64
	MaxRetries int
	rng        *rand.Rand
}

// NewChannel creates a lossy channel. loss must be in [0, 1).
func NewChannel(m Model, loss float64, maxRetries int, seed int64) (*Channel, error) {
	// The negated form also rejects NaN, which fails every comparison.
	if !(loss >= 0 && loss < 1) {
		return nil, fmt.Errorf("wireless: loss probability %v outside [0,1)", loss)
	}
	if maxRetries < 0 {
		return nil, fmt.Errorf("wireless: negative retry limit %d", maxRetries)
	}
	return &Channel{Model: m, Loss: loss, MaxRetries: maxRetries, rng: rand.New(rand.NewSource(seed))}, nil
}

// ErrDropped reports a payload that exhausted its retries.
type ErrDropped struct {
	Packet int
}

func (e *ErrDropped) Error() string {
	return fmt.Sprintf("wireless: packet %d dropped after retries", e.Packet)
}

// Send simulates transferring dataBits over the lossy channel. The
// returned Transfer accounts for every (re)transmission actually made;
// on drop, the partial cost is still returned with the error.
func (c *Channel) Send(dataBits int64) (Transfer, error) {
	tr, _, err := c.SendStats(dataBits)
	return tr, err
}

// SendStats is Send plus the number of retransmissions actually made:
// packet attempts beyond each packet's first. On drop, the partial cost
// and retransmission count are still returned with the error.
func (c *Channel) SendStats(dataBits int64) (tr Transfer, retransmissions int, err error) {
	packets := Packets(dataBits)
	tr.DataBits = dataBits
	for p := int64(0); p < packets; p++ {
		bits := int64(MaxPayloadBits)
		if rem := dataBits - p*MaxPayloadBits; rem < bits {
			bits = rem
		}
		bits += HeaderBits
		delivered := false
		for attempt := 0; attempt <= c.MaxRetries; attempt++ {
			if attempt > 0 {
				retransmissions++
			}
			tr.WireBits += bits
			tr.TxEnergy += float64(bits) * c.TxJPerBit
			tr.RxEnergy += float64(bits) * c.RxJPerBit
			tr.Delay += float64(bits) / c.RateBps
			if c.rng.Float64() >= c.Loss {
				delivered = true
				break
			}
		}
		if !delivered {
			return tr, retransmissions, &ErrDropped{Packet: int(p)}
		}
	}
	return tr, retransmissions, nil
}

// ExpectedInflation returns the mean retransmission factor of the lossy
// channel: 1/(1−loss), capped by the retry limit.
func (c *Channel) ExpectedInflation() float64 {
	if c.Loss == 0 {
		return 1
	}
	// Geometric series truncated at MaxRetries+1 attempts.
	exp := 0.0
	p := 1.0
	for i := 0; i <= c.MaxRetries; i++ {
		exp += p
		p *= c.Loss
	}
	return exp
}
