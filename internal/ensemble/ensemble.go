// Package ensemble implements XPro's random-subspace classifier (§2.1,
// §4.4): an ensemble of base SVMs, each trained on a random subset of the
// statistical feature space, fused by a weighted voting scheme whose
// weights are trained with least squares.
//
// The feature space is the cross product of signal domains and the eight
// statistical features: the time domain plus the bands of a 5-level DWT
// (details of levels 1–5 and the final approximation — lengths
// 64/32/16/8/4/4 for the padded 128-sample DWT input). That yields
// 7 × 8 = 56 candidate features; each base classifier samples 12 of them
// (§4.4). Only the features some selected base classifier actually uses
// become functional cells ("the number of functional cells is decided by
// the feature set and random subspace training", §2.2).
package ensemble

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"xpro/internal/biosig"
	"xpro/internal/dwt"
	"xpro/internal/linalg"
	"xpro/internal/stats"
	"xpro/internal/svm"
)

// DWTInputLen is the padded segment length feeding the DWT chain (§4.4:
// 5 levels with band lengths 64/32/16/8/4).
const DWTInputLen = 128

// DWTLevels is the decomposition depth.
const DWTLevels = 5

// NumDomains is time domain + 5 detail bands + 1 approximation band.
const NumDomains = 2 + DWTLevels

// TimeDomain is the domain index of the raw time-domain segment; DWT
// bands use domains 1..NumDomains−1 (details 1–5 then approximation).
const TimeDomain = 0

// FeatureSpec identifies one feature in the cross-product space.
type FeatureSpec struct {
	Domain int // TimeDomain or 1..NumDomains-1
	Feat   stats.Feature
}

// String returns e.g. "time/Max" or "dwt3/Kurt".
func (fs FeatureSpec) String() string {
	return fmt.Sprintf("%s/%s", DomainName(fs.Domain), fs.Feat)
}

// DomainName names a domain index: "time", "dwt1".."dwt5", "dwtA".
func DomainName(d int) string {
	switch {
	case d == TimeDomain:
		return "time"
	case d >= 1 && d <= DWTLevels:
		return fmt.Sprintf("dwt%d", d)
	case d == DWTLevels+1:
		return "dwtA"
	default:
		return fmt.Sprintf("domain%d", d)
	}
}

// AllFeatureSpecs enumerates the full 56-feature space in canonical
// order (domain-major).
func AllFeatureSpecs() []FeatureSpec {
	specs := make([]FeatureSpec, 0, NumDomains*stats.NumFeatures)
	for d := 0; d < NumDomains; d++ {
		for _, f := range stats.AllFeatures {
			specs = append(specs, FeatureSpec{Domain: d, Feat: f})
		}
	}
	return specs
}

// SpecIndex returns the canonical index of fs in AllFeatureSpecs.
func SpecIndex(fs FeatureSpec) int { return fs.Domain*stats.NumFeatures + int(fs.Feat) }

// ExtractVector computes the full 56-dimensional feature vector of a
// segment: all 8 features on the raw samples, then on each DWT band of
// the 128-padded segment.
func ExtractVector(seg biosig.Segment) ([]float64, error) {
	out := make([]float64, NumDomains*stats.NumFeatures)
	copy(out, stats.ComputeAll(seg.Samples))
	padded := seg.PadTo(DWTInputLen)
	dec, err := dwt.Decompose(dwt.Haar, padded, DWTLevels)
	if err != nil {
		return nil, fmt.Errorf("ensemble: extracting DWT features: %w", err)
	}
	for b := 0; b < dec.NumBands(); b++ {
		fv := stats.ComputeAll(dec.Band(b))
		copy(out[(b+1)*stats.NumFeatures:], fv)
	}
	return out, nil
}

// ExtractDataset computes feature vectors and ±1 labels for every
// segment of d.
func ExtractDataset(d *biosig.Dataset) (x [][]float64, y []int, err error) {
	x = make([][]float64, len(d.Segs))
	y = make([]int, len(d.Segs))
	for i, seg := range d.Segs {
		x[i], err = ExtractVector(seg)
		if err != nil {
			return nil, nil, err
		}
		if seg.Label == 1 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return x, y, nil
}

// Config controls ensemble training. The zero value is unusable; use
// DefaultConfig (the paper's protocol scaled to run in seconds) or
// PaperConfig (the full §4.4 protocol).
type Config struct {
	// Candidates is the number of random-subspace base classifiers
	// trained before selection (paper: 100).
	Candidates int
	// SubspaceSize is the number of features per base classifier
	// (paper: 12).
	SubspaceSize int
	// TopFrac selects the best-accuracy fraction of candidates as the
	// final base classifiers (paper: 0.1).
	TopFrac float64
	// Folds is the cross-validation fold count used to score candidates
	// (paper: 10).
	Folds int
	// CandidateTrainCap subsamples SVM training sets (candidate folds
	// and the final retrain) to at most this many rows, bounding both
	// SMO cost and support-vector counts — wearable base classifiers
	// must stay small ("some basic SVM classifiers have fewer
	// supporting vectors", §5.5). 0 means no cap.
	CandidateTrainCap int
	// SVM configures the base classifiers (paper: RBF kernel).
	SVM svm.Params
	// Ridge is the least-squares regularization for fusion weights.
	Ridge float64
	// Seed drives subset sampling and fold shuffling.
	Seed int64
}

// DefaultConfig returns a configuration that follows the paper's
// protocol with the candidate pool scaled down (24 candidates instead of
// 100, 4-fold instead of 10-fold scoring) so a full six-case evaluation
// runs in seconds. The selected ensemble still has ~paper-sized
// membership because TopFrac is raised to keep 10 base classifiers... see
// PaperConfig for the exact protocol.
func DefaultConfig(seed int64) Config {
	return Config{
		Candidates:        24,
		SubspaceSize:      12,
		TopFrac:           0.25, // 24 × 0.25 = 6 base classifiers
		Folds:             4,
		CandidateTrainCap: 240,
		// Gamma ≈ 1 suits the normalized [0,1] feature cube, where
		// squared subspace distances are O(1).
		SVM:   svm.Params{Kernel: svm.RBF, C: 4, Gamma: 1, Seed: seed},
		Ridge: 1e-3,
		Seed:  seed,
	}
}

// PaperConfig returns the full §4.4 protocol: 100 candidates on random
// 12-feature subsets, top 10% selected, 10-fold cross-validation.
func PaperConfig(seed int64) Config {
	return Config{
		Candidates:   100,
		SubspaceSize: 12,
		TopFrac:      0.1,
		Folds:        10,
		SVM:          svm.Params{Kernel: svm.RBF, C: 4, Gamma: 1, Seed: seed},
		Ridge:        1e-3,
		Seed:         seed,
	}
}

// Range is the training-set normalization of one feature (§4.4: "All
// the statistical features are normalized to range [0, 1]"): the
// normalized value is (raw − Min) · Scale, clamped to [0, 1]. A
// degenerate (constant) feature has Scale 0 and normalizes to 0.
type Range struct {
	Min   float64
	Scale float64
}

// Apply normalizes one raw feature value.
func (r Range) Apply(v float64) float64 {
	n := (v - r.Min) * r.Scale
	if n < 0 {
		return 0
	}
	if n > 1 {
		return 1
	}
	return n
}

// Invert recovers the raw value from a normalized one (degenerate
// ranges return Min).
func (r Range) Invert(n float64) float64 {
	if r.Scale == 0 {
		return r.Min
	}
	return n/r.Scale + r.Min
}

// fitRanges computes per-feature normalization from training vectors.
func fitRanges(x [][]float64) []Range {
	if len(x) == 0 {
		return nil
	}
	dim := len(x[0])
	ranges := make([]Range, dim)
	for j := 0; j < dim; j++ {
		lo, hi := x[0][j], x[0][j]
		for _, row := range x {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
		ranges[j].Min = lo
		if hi > lo {
			ranges[j].Scale = 1 / (hi - lo)
		}
	}
	return ranges
}

// Base is one selected base classifier.
type Base struct {
	Model  *svm.Model
	Subset []FeatureSpec // the features this base consumes
	// CVAccuracy is the candidate's cross-validation score.
	CVAccuracy float64
}

// project extracts the subset columns from a full feature vector.
func project(full []float64, subset []FeatureSpec) []float64 {
	out := make([]float64, len(subset))
	for i, fs := range subset {
		out[i] = full[SpecIndex(fs)]
	}
	return out
}

// Ensemble is a trained random-subspace classifier.
type Ensemble struct {
	Bases   []Base
	Weights []float64 // fusion weights, len = len(Bases)+1 (last = bias)
	// Norm is the per-feature [0,1] normalization fitted on the
	// training set (§4.4), indexed like AllFeatureSpecs.
	Norm []Range
}

// Normalize maps a raw full feature vector into [0,1]^dim using the
// training-set ranges.
func (e *Ensemble) Normalize(full []float64) []float64 {
	out := make([]float64, len(full))
	for i, v := range full {
		out[i] = e.Norm[i].Apply(v)
	}
	return out
}

// FeatureRange returns the normalization of one feature.
func (e *Ensemble) FeatureRange(fs FeatureSpec) Range { return e.Norm[SpecIndex(fs)] }

// ErrTooFewSegments reports a dataset too small to train on.
var ErrTooFewSegments = errors.New("ensemble: dataset too small to train")

// Train fits a random-subspace ensemble on train data per cfg.
func Train(train *biosig.Dataset, cfg Config) (*Ensemble, error) {
	if cfg.Candidates < 1 || cfg.SubspaceSize < 1 {
		return nil, fmt.Errorf("ensemble: config needs ≥1 candidate and subspace size (got %d, %d)", cfg.Candidates, cfg.SubspaceSize)
	}
	if len(train.Segs) < 4*cfg.Folds {
		return nil, ErrTooFewSegments
	}
	x, y, err := ExtractDataset(train)
	if err != nil {
		return nil, err
	}
	// Fit and apply the §4.4 feature normalization before any training.
	norm := fitRanges(x)
	for i, row := range x {
		nr := make([]float64, len(row))
		for j, v := range row {
			nr[j] = norm[j].Apply(v)
		}
		x[i] = nr
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := AllFeatureSpecs()

	// Fold assignment for candidate scoring.
	folds := cfg.Folds
	if folds < 2 {
		folds = 2
	}
	foldOf := make([]int, len(x))
	for i, p := range rng.Perm(len(x)) {
		foldOf[p] = i % folds
	}

	type cand struct {
		subset []FeatureSpec
		score  float64
		seed   int64
	}
	cands := make([]cand, 0, cfg.Candidates)
	for c := 0; c < cfg.Candidates; c++ {
		// Random 12-feature subset, sampled without replacement.
		perm := rng.Perm(len(specs))
		subset := make([]FeatureSpec, cfg.SubspaceSize)
		for i := range subset {
			subset[i] = specs[perm[i]]
		}
		seed := rng.Int63()
		// Cross-validated accuracy: train on folds ≠ f, score on fold f.
		correct, total := 0, 0
		for f := 0; f < folds; f++ {
			var xt [][]float64
			var yt []int
			for i := range x {
				if foldOf[i] != f {
					xt = append(xt, project(x[i], subset))
					yt = append(yt, y[i])
				}
			}
			if cfg.CandidateTrainCap > 0 && len(xt) > cfg.CandidateTrainCap {
				xt, yt = subsample(xt, yt, cfg.CandidateTrainCap, rng)
			}
			p := cfg.SVM
			p.Seed = seed + int64(f)
			m, err := svm.Train(xt, yt, p)
			if err != nil {
				continue // degenerate fold; candidate scores 0 on it
			}
			for i := range x {
				if foldOf[i] == f {
					if m.Predict(project(x[i], subset)) == y[i] {
						correct++
					}
					total++
				}
			}
		}
		score := 0.0
		if total > 0 {
			score = float64(correct) / float64(total)
		}
		cands = append(cands, cand{subset: subset, score: score, seed: seed})
	}

	// Keep the top fraction by CV accuracy.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	keep := int(math.Round(cfg.TopFrac * float64(len(cands))))
	if keep < 1 {
		keep = 1
	}
	if keep > len(cands) {
		keep = len(cands)
	}

	ens := &Ensemble{Norm: norm}
	for _, c := range cands[:keep] {
		// Retrain the selected base on the (capped) training set.
		xt := make([][]float64, len(x))
		for i := range x {
			xt[i] = project(x[i], c.subset)
		}
		yt := y
		if cfg.CandidateTrainCap > 0 && len(xt) > cfg.CandidateTrainCap {
			capRng := rand.New(rand.NewSource(c.seed))
			xt, yt = subsample(xt, yt, cfg.CandidateTrainCap, capRng)
		}
		p := cfg.SVM
		p.Seed = c.seed
		m, err := svm.Train(xt, yt, p)
		if err != nil {
			continue
		}
		ens.Bases = append(ens.Bases, Base{Model: m, Subset: c.subset, CVAccuracy: c.score})
	}
	if len(ens.Bases) == 0 {
		return nil, errors.New("ensemble: no base classifier could be trained")
	}

	// Fusion: least-squares weighted voting on the base votes (§4.4).
	votes := linalg.NewMatrix(len(x), len(ens.Bases)+1)
	target := make([]float64, len(x))
	for i := range x {
		for b, base := range ens.Bases {
			votes.Set(i, b, float64(base.Model.Predict(project(x[i], base.Subset))))
		}
		votes.Set(i, len(ens.Bases), 1) // bias column
		target[i] = float64(y[i])
	}
	w, err := linalg.LeastSquares(votes, target, cfg.Ridge)
	if err != nil {
		// Fall back to uniform voting.
		w = make([]float64, len(ens.Bases)+1)
		for i := range ens.Bases {
			w[i] = 1 / float64(len(ens.Bases))
		}
	}
	ens.Weights = w
	return ens, nil
}

func subsample(x [][]float64, y []int, n int, rng *rand.Rand) ([][]float64, []int) {
	idx := rng.Perm(len(x))[:n]
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i, j := range idx {
		xs[i], ys[i] = x[j], y[j]
	}
	return xs, ys
}

// Score returns the fused real-valued score for a RAW full feature
// vector (positive → class 1). The vector is normalized with the
// training-set ranges before the base classifiers see it.
func (e *Ensemble) Score(full []float64) float64 {
	n := e.Normalize(full)
	s := e.Weights[len(e.Bases)] // bias
	for b, base := range e.Bases {
		s += e.Weights[b] * float64(base.Model.Predict(project(n, base.Subset)))
	}
	return s
}

// ScoreSoft returns a continuous fused score: base votes are replaced by
// their clamped decision values, preserving margin information. The
// binary classifier thresholds hard votes (Score); one-vs-rest argmax
// across heads needs the soft variant — with ~6 bases, hard-vote scores
// take too few distinct values to break ties meaningfully.
func (e *Ensemble) ScoreSoft(full []float64) float64 {
	n := e.Normalize(full)
	s := e.Weights[len(e.Bases)]
	for b, base := range e.Bases {
		d := base.Model.Decision(project(n, base.Subset))
		if d > 1 {
			d = 1
		} else if d < -1 {
			d = -1
		}
		s += e.Weights[b] * d
	}
	return s
}

// Predict classifies a segment (0 or 1).
func (e *Ensemble) Predict(seg biosig.Segment) (int, error) {
	full, err := ExtractVector(seg)
	if err != nil {
		return 0, err
	}
	if e.Score(full) >= 0 {
		return 1, nil
	}
	return 0, nil
}

// Accuracy evaluates e on a dataset.
func (e *Ensemble) Accuracy(d *biosig.Dataset) (float64, error) {
	if len(d.Segs) == 0 {
		return 0, errors.New("ensemble: empty evaluation set")
	}
	correct := 0
	for _, seg := range d.Segs {
		p, err := e.Predict(seg)
		if err != nil {
			return 0, err
		}
		if p == seg.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(d.Segs)), nil
}

// Pruned returns a copy of the ensemble whose base SVMs keep only the
// given fraction of their largest-coefficient support vectors (see
// svm.Model.Prune). Fusion weights and normalization are unchanged; the
// smaller models shrink the in-sensor SVM cells proportionally.
func (e *Ensemble) Pruned(keepFrac float64) (*Ensemble, error) {
	out := &Ensemble{Weights: e.Weights, Norm: e.Norm}
	for _, b := range e.Bases {
		m, err := b.Model.Prune(keepFrac)
		if err != nil {
			return nil, err
		}
		out.Bases = append(out.Bases, Base{Model: m, Subset: b.Subset, CVAccuracy: b.CVAccuracy})
	}
	return out, nil
}

// UsedFeatures returns the union of all base subsets in canonical order —
// the features that become functional cells.
func (e *Ensemble) UsedFeatures() []FeatureSpec {
	seen := make(map[FeatureSpec]bool)
	for _, b := range e.Bases {
		for _, fs := range b.Subset {
			seen[fs] = true
		}
	}
	var out []FeatureSpec
	for _, fs := range AllFeatureSpecs() {
		if seen[fs] {
			out = append(out, fs)
		}
	}
	return out
}

// UsedDomains returns the set of domains referenced by UsedFeatures.
func (e *Ensemble) UsedDomains() []int {
	seen := make(map[int]bool)
	for _, fs := range e.UsedFeatures() {
		seen[fs.Domain] = true
	}
	var out []int
	for d := 0; d < NumDomains; d++ {
		if seen[d] {
			out = append(out, d)
		}
	}
	return out
}
