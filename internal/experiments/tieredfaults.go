package experiments

import (
	"fmt"

	"xpro/internal/chaos"
	"xpro/internal/partition"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

// ExtTieredFaults rides every case's three-tier chain through the
// seeded hub-storm battery (internal/chaos): the hub keeps going dark
// in correlated windows that down both hops touching it, and three
// variants replay the identical storms — the static k-way walk (a dark
// hop hard-fails the event), the 2-rung ladder (attempt the full
// chain, re-serve failures from the sensor-local rung, no memory
// between events), and the tier-collapse ladder (per-hop evidence caps
// the placement below the dead hub, collapsed rungs serve cleanly,
// capped-backoff probes climb back when the storm clears). The
// placement is pinned to the all-cloud extreme so every event
// genuinely crosses the hub and the storms have traffic to kill.
func ExtTieredFaults(l *Lab) (*Table, error) {
	t := &Table{
		ID: "ext-tiered-faults",
		Title: "EXTENSION: tier-collapse ladder vs 2-rung ladder under seeded hub storms " +
			"(3-tier chain, Model 2 body hop, Model 3 uplink, 300 events)",
		Header: []string{"Case", "Variant", "StormEvents", "Violations", "NoResult", "Degraded", "InDeadline", "Collapse/Recover", "Energy(µJ)"},
	}
	const seed = 17
	const events = 300
	for _, sym := range l.Symbols() {
		es, err := l.Engines(sym, evalProc, evalLink)
		if err != nil {
			return nil, err
		}
		tiers, hops := partition.DefaultChain(3, evalLink, wireless.Model3())
		ts, err := xsystem.NewTiered(es.CrossEnd, tiers, hops)
		if err != nil {
			return nil, err
		}
		up, err := ts.WithTierPlacement(partition.AllAt(ts.Graph, partition.Tier(ts.Tiered.K()-1)))
		if err != nil {
			return nil, err
		}
		res, err := chaos.HubStormSoak(up, es.Inst.Test.Segs, chaos.HubStormConfig{Seed: seed, Events: events})
		if err != nil {
			return nil, err
		}
		for _, v := range []*chaos.HubStormVariant{&res.Static, &res.Ladder, &res.Tiered} {
			t.AddRow(sym, v.Name, fmt.Sprint(v.StormEvents), fmt.Sprint(v.Violations),
				fmt.Sprint(v.NoResult), fmt.Sprint(v.Degraded),
				pct(v.InDeadlineFrac()),
				fmt.Sprintf("%d/%d", v.Collapses, v.Recoveries),
				fmt.Sprintf("%.1f", v.SensorEnergyJ*1e6))
		}
		t.AddNote("%s: tiered serves %s of events in-deadline (static %s with %d hard-failed); dominates: %v",
			sym, pct(res.Tiered.InDeadlineFrac()), pct(res.Static.InDeadlineFrac()),
			res.Static.NoResult, res.TieredDominates())
	}
	t.AddNote("identical seeded storms per variant; the tiered ladder's only violations are the hysteresis window (collapse evidence) and failed revival probes, both re-served from a live rung")
	return t, nil
}
