package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 32, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve the handle inside the goroutine: registration
			// must be race-free too.
			c := r.Counter("hits_total", "test counter")
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "").Value(); got != goroutines*perG {
		t.Fatalf("counter = %v, want %d", got, goroutines*perG)
	}
}

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(2)
	c.Add(-5)
	c.Add(math.NaN())
	if got := c.Value(); got != 2 {
		t.Fatalf("counter = %v, want 2 (negative/NaN ignored)", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("level", "test gauge")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(1)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 16 {
		t.Fatalf("gauge = %v, want 16", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "test histogram", []float64{0.01, 0.1, 1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.05)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	if got := h.Sum(); math.Abs(got-8000*0.05) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, 8000*0.05)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindHistogram {
		t.Fatalf("snapshot = %+v", snap)
	}
	want := []uint64{0, 8000, 8000, 8000} // cumulative: ≤0.01, ≤0.1, ≤1, +Inf
	for i, b := range snap[0].Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d (le %v) = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound → that bucket
	h.Observe(2.5)
	if got := h.buckets[0].Load(); got != 1 {
		t.Errorf("le=1 bucket = %d, want 1", got)
	}
	if got := h.buckets[2].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	h := r.Histogram("dur", "durations", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	// Mutate after snapshotting: the snapshot must not move.
	c.Add(41)
	h.Observe(0.5)
	h.Observe(5)
	for _, m := range snap {
		switch m.Name {
		case "jobs_total":
			if m.Value != 1 {
				t.Errorf("snapshot counter = %v, want 1", m.Value)
			}
		case "dur":
			if m.Count != 1 || m.Buckets[0].Count != 1 {
				t.Errorf("snapshot histogram = %+v, want count 1", m)
			}
		}
	}
}

func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("xpro_classify_total", "Segments classified.").Add(3)
	r.Gauge(WithLabels("xpro_node_lifetime_hours", map[string]string{"node": "chest"}), "Battery life.").Set(42.5)
	h := r.Histogram("xpro_classify_seconds", "Classify wall time.", []float64{0.001, 0.01})
	h.Observe(0.002)
	h.Observe(0.002)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP xpro_classify_seconds Classify wall time.
# TYPE xpro_classify_seconds histogram
xpro_classify_seconds_bucket{le="0.001"} 0
xpro_classify_seconds_bucket{le="0.01"} 2
xpro_classify_seconds_bucket{le="+Inf"} 2
xpro_classify_seconds_sum 0.004
xpro_classify_seconds_count 2
# HELP xpro_classify_total Segments classified.
# TYPE xpro_classify_total counter
xpro_classify_total 3
# HELP xpro_node_lifetime_hours Battery life.
# TYPE xpro_node_lifetime_hours gauge
xpro_node_lifetime_hours{node="chest"} 42.5
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWithLabels(t *testing.T) {
	got := WithLabels("m", map[string]string{"b": `x"y`, "a": "z"})
	want := `m{a="z",b="x\"y"}`
	if got != want {
		t.Errorf("WithLabels = %s, want %s", got, want)
	}
	if got := WithLabels("m", nil); got != "m" {
		t.Errorf("WithLabels no labels = %s, want m", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", DurationBuckets).Observe(1)
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v", got)
	}
	var c *Counter
	c.Inc()
	var g *Gauge
	g.Add(2)
	var h *Histogram
	h.Observe(3)
	var tr *Tracer
	tr.Add(Span{})
	if tr.Len() != 0 || tr.NextEvent() != 0 {
		t.Error("nil tracer must be inert")
	}
}

func TestKindClashReturnsDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "a counter").Inc()
	g := r.Gauge("x", "clashing gauge")
	g.Set(7) // must not panic or corrupt the counter
	if got := r.Counter("x", "").Value(); got != 1 {
		t.Errorf("counter after clash = %v, want 1", got)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindCounter {
		t.Errorf("snapshot after clash = %+v", snap)
	}
}

func TestSanitizeName(t *testing.T) {
	r := NewRegistry()
	r.Counter(`weird name-1{node="a b"}`, "").Inc()
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Name != `weird_name_1{node="a b"}` {
		t.Errorf("sanitized snapshot = %+v", snap)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub_total", "").Inc()
	r.PublishExpvar("telemetry_test_metrics")
	r.PublishExpvar("telemetry_test_metrics") // second publish must not panic
}

// TestWritePromHostileValues is the golden exposition test for label
// and HELP escaping: backslashes, double quotes and newlines must
// survive a strict 0.0.4-format parser round trip.
func TestWritePromHostileValues(t *testing.T) {
	r := NewRegistry()
	r.Counter(WithLabels("xpro_hostile_total", map[string]string{
		"path":  `C:\sensors\"chest"`,
		"multi": "line1\nline2",
	}), "Help with a \\ backslash\nand a newline.").Add(1)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP xpro_hostile_total Help with a \\ backslash\nand a newline.
# TYPE xpro_hostile_total counter
xpro_hostile_total{multi="line1\nline2",path="C:\\sensors\\\"chest\""} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if strings.Count(sb.String(), "\n") != 3 {
		t.Errorf("hostile values leaked raw newlines:\n%q", sb.String())
	}
}
