package xsystem

import (
	"math"
	"testing"

	"xpro/internal/frame"
)

// TestWireCodecRoundTrip: the integer codec must agree exactly with
// quantizeWire — wireDecode(wireEncode(v)) is the value the receiver
// consumes on a clean wire.
func TestWireCodecRoundTrip(t *testing.T) {
	values := []float64{-300, -8.5, -1, -0.5, 0, 1e-4, 0.25, 0.5, 0.999, 1, 7.75, 127.9, 300}
	for _, bits := range []int64{4, 8, 16, 24} {
		for _, v := range values {
			got := wireDecode(wireEncode(v, bits), bits)
			want := quantizeWire(v, bits)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("bits %d, v %v: codec %v, quantizeWire %v", bits, v, got, want)
			}
		}
	}
}

// TestQuantizeWireIdempotent: corrupted code words are themselves valid
// code words, so the gather path's re-quantization is a no-op and
// injected damage survives to the consuming cell.
func TestQuantizeWireIdempotent(t *testing.T) {
	for _, bits := range []int64{8, 16} {
		for code := uint64(0); code < 1<<uint(bits); code += 13 {
			v := wireDecode(code, bits)
			if q := quantizeWire(v, bits); math.Abs(q-v) > 1e-12 {
				t.Fatalf("bits %d code %d: quantizeWire(%v) = %v, not idempotent", bits, code, v, q)
			}
		}
	}
}

func TestCorruptWire(t *testing.T) {
	// A high-bit flip on a Q8.8 word moves the value by 128 (the sign
	// region): decisively wrong, still a valid code word.
	v := 0.5
	c := corruptWire(v, 16, 1<<15)
	if c == quantizeWire(v, 16) {
		t.Fatal("mask 1<<15 left the value unchanged")
	}
	if got := quantizeWire(c, 16); got != c {
		t.Fatalf("corrupted value %v re-quantized to %v", c, got)
	}
	// Zero mask is the identity on the quantized value.
	if corruptWire(v, 16, 0) != quantizeWire(v, 16) {
		t.Fatal("zero mask must decode to the clean quantization")
	}
	// Out-of-range widths pass through untouched.
	if corruptWire(v, 64, 5) != v {
		t.Fatal("width 64 must be the identity")
	}
}

func TestApplyDamage(t *testing.T) {
	view := []float64{0.1, 0.2, 0.3, 0.4}
	rx := &frame.RxReport{
		Moved:         map[int]int{0: 1, 1: 0}, // swap slots 0 and 1
		CorruptValues: map[int]uint64{2: 1 << 15},
		Missing:       []int{3},
	}
	n := applyDamage(view, 16, rx, frame.HoldLast)
	if n != 1 {
		t.Fatalf("imputed %d, want 1", n)
	}
	q := func(v float64) float64 { return quantizeWire(v, 16) }
	if view[0] != q(0.2) || view[1] != q(0.1) {
		t.Fatalf("swap failed: %v", view[:2])
	}
	if view[2] == q(0.3) {
		t.Fatal("corruption mask left slot 2 clean")
	}
	if view[3] != view[2] {
		t.Fatalf("hold-last should repeat slot 2 into slot 3: %v", view)
	}
}
