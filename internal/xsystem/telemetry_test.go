package xsystem

import (
	"testing"

	"xpro/internal/partition"
	"xpro/internal/telemetry"
)

func registryCounter(reg *telemetry.Registry, name string) float64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

func TestClassifyMetricsAndSpans(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.Trivial(f.graph))
	s.Metrics = telemetry.NewRegistry()
	s.Tracer = telemetry.NewTracer(4 * len(f.graph.Cells))

	seg := f.test.Segs[0]
	if _, err := s.Classify(seg); err != nil {
		t.Fatal(err)
	}

	if got := registryCounter(s.Metrics, "xpro_classify_total"); got != 1 {
		t.Errorf("classify_total = %v, want 1", got)
	}
	ns, na := s.Placement.Counts()
	if got := registryCounter(s.Metrics, `xpro_cells_executed_total{end="sensor"}`); got != float64(ns) {
		t.Errorf("sensor cell executions = %v, want %d", got, ns)
	}
	if got := registryCounter(s.Metrics, `xpro_cells_executed_total{end="aggregator"}`); got != float64(na) {
		t.Errorf("aggregator cell executions = %v, want %d", got, na)
	}

	spans := s.Tracer.Spans()
	// One span per cell plus the whole-event span.
	if len(spans) != len(f.graph.Cells)+1 {
		t.Fatalf("spans = %d, want %d cells + 1 event", len(spans), len(f.graph.Cells))
	}
	byName := make(map[string]telemetry.Span)
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	for _, c := range f.graph.Cells {
		sp, ok := byName[c.Name]
		if !ok {
			t.Fatalf("no span for cell %s", c.Name)
		}
		wantEnd := "aggregator"
		if s.Placement.OnSensor(c.ID) {
			wantEnd = "sensor"
		}
		if sp.End != wantEnd {
			t.Errorf("cell %s span end = %s, want %s", c.Name, sp.End, wantEnd)
		}
		energy, delay := s.CellCost(c.ID)
		if sp.EnergyJoules != energy || sp.DelaySeconds != delay {
			t.Errorf("cell %s span cost = (%g J, %g s), want (%g, %g)",
				c.Name, sp.EnergyJoules, sp.DelaySeconds, energy, delay)
		}
		if sp.Wall < 0 {
			t.Errorf("cell %s negative wall time", c.Name)
		}
	}
	evSpan, ok := byName["classify"]
	if !ok {
		t.Fatal("no whole-event classify span")
	}
	if evSpan.End != "event" {
		t.Errorf("event span end = %s", evSpan.End)
	}

	// A second event gets a fresh event ID.
	if _, err := s.Classify(seg); err != nil {
		t.Fatal(err)
	}
	spans = s.Tracer.Spans()
	last := spans[len(spans)-1]
	if last.Event != 2 {
		t.Errorf("second classification event id = %d, want 2", last.Event)
	}
}

func TestClassifyErrorCounted(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.Trivial(f.graph))
	s.Metrics = telemetry.NewRegistry()
	if _, err := s.Classify(f.test.Segs[0]); err != nil {
		t.Fatal(err)
	}
	short := f.test.Segs[0]
	short.Samples = short.Samples[:3]
	if _, err := s.Classify(short); err == nil {
		t.Fatal("short segment must fail")
	}
	if got := registryCounter(s.Metrics, "xpro_classify_errors_total"); got != 1 {
		t.Errorf("classify_errors_total = %v, want 1", got)
	}
	if got := registryCounter(s.Metrics, "xpro_classify_total"); got != 1 {
		t.Errorf("classify_total = %v, want 1 (errors not counted as successes)", got)
	}
}

func TestCellCostMatchesModels(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.Trivial(f.graph))
	for _, c := range f.graph.Cells {
		energy, delay := s.CellCost(c.ID)
		if s.Placement.OnSensor(c.ID) {
			if energy != s.HW.Energy(c.ID) || delay != s.HW.Delay(c.ID) {
				t.Fatalf("cell %s sensor cost mismatch", c.Name)
			}
		} else {
			cc := s.CPU.CellCost(f.graph.Cells[c.ID].Spec)
			if energy != cc.Energy || delay != cc.Delay {
				t.Fatalf("cell %s aggregator cost mismatch", c.Name)
			}
		}
	}
}
