package frame

import "testing"

// The hot path of the integrity layer: one 32-byte frame (the
// transceiver's MaxPayloadBits) encoded, decoded and — on loss —
// imputed, once per crossing packet per event.

func benchPayload() []byte {
	p := make([]byte, 32)
	for i := range p {
		p[i] = byte(i * 37)
	}
	return p
}

func BenchmarkEncode(b *testing.B) {
	p := benchPayload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(uint8(i), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	buf, err := Encode(9, benchPayload())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCRC16(b *testing.B) {
	p := benchPayload()
	b.SetBytes(int64(len(p)))
	for i := 0; i < b.N; i++ {
		CRC16(p)
	}
}

func benchImpute(b *testing.B, p ImputePolicy) {
	vals := make([]float64, 256)
	miss := make([]bool, 256)
	for i := range vals {
		vals[i] = float64(i) / 256
		miss[i] = i%16 == 3 || i%16 == 4
	}
	scratch := make([]float64, len(vals))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(scratch, vals)
		Impute(scratch, miss, p)
	}
}

func BenchmarkImputeHoldLast(b *testing.B) { benchImpute(b, HoldLast) }
func BenchmarkImputeLinear(b *testing.B)   { benchImpute(b, Linear) }

func BenchmarkReassembler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var r Reassembler
		for s := 0; s < 64; s++ {
			r.Observe(uint8(s))
		}
	}
}
