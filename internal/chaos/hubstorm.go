package chaos

import (
	"errors"
	"fmt"
	"math"

	"xpro/internal/adaptive"
	"xpro/internal/biosig"
	"xpro/internal/faults"
	"xpro/internal/partition"
	"xpro/internal/xsystem"
)

// This file is the tiered sibling of the 2-end soak: a seeded
// hub-storm battery over an N-tier chain. The hub (tier 1) keeps going
// dark in correlated windows that down both hops touching it, and
// three variants ride the same storms:
//
//   - static: the k-way placement walked as-is — every crossing of a
//     dark hop hard-fails, so storm events produce nothing;
//   - ladder: the 2-end degradation reflex lifted to k tiers — each
//     event attempts the full chain, and on failure re-serves from the
//     sensor-local rung (two rungs, no memory between events);
//   - tiered: the tier-collapse ladder — per-hop outage evidence caps
//     the placement below the dead hop, collapsed rungs serve cleanly
//     without touching the dark hops, and capped-backoff probes climb
//     back when the storm clears.
//
// Every draw is seeded and every timestamp comes off the modeled
// clock, so a battery replays bit-identically; each variant emits a
// per-event log line (floats at %.17g) as the determinism witness.

// HubStormConfig shapes one tiered hub-storm battery.
type HubStormConfig struct {
	// Seed drives the storm schedule and every per-hop loss stream.
	Seed int64
	// Events is the battery length in classified events (default 400).
	Events int
	// Storms is how many hub-dark windows the schedule draws over the
	// horizon (default 3).
	Storms int
	// DeadlineFactor scales T_XPro into the per-event deadline
	// (default 3 — the tiered walk pays a failed attempt AND a rung
	// re-serve on collapse events, which factor 2 would misprice as a
	// violation even when served promptly).
	DeadlineFactor float64
	// Framing, when set, arms per-frame integrity on every hop.
	Framing *faults.Framing
}

func (c *HubStormConfig) fill() {
	if c.Events <= 0 {
		c.Events = 400
	}
	if c.Storms <= 0 {
		c.Storms = 3
	}
	if c.DeadlineFactor <= 0 {
		c.DeadlineFactor = 3
	}
}

// HubStormVariant aggregates one variant's ride through the storms.
type HubStormVariant struct {
	Name string
	// Events is the number of events driven; StormEvents how many of
	// them arrived while the hub was dark.
	Events      int
	StormEvents int
	// Violations counts events that blew the deadline or produced no
	// label; NoResult the subset with no label at all; Degraded every
	// event below full-fidelity.
	Violations int
	NoResult   int
	Degraded   int
	// Collapses / Recoveries / Rollbacks are the tier-collapse
	// ladder's counters (zero for the other variants).
	Collapses, Recoveries, Rollbacks int
	// SensorEnergyJ is the total modeled sensor-tier energy spent.
	SensorEnergyJ float64
	// Log is the per-event determinism witness.
	Log []string
}

// InDeadlineFrac is the fraction of events served within deadline.
func (v *HubStormVariant) InDeadlineFrac() float64 {
	if v.Events == 0 {
		return 0
	}
	return float64(v.Events-v.Violations) / float64(v.Events)
}

// HubStormResult is one battery: three variants over identical storms.
type HubStormResult struct {
	Seed            int64
	HorizonSeconds  float64
	DeadlineSeconds float64

	Static HubStormVariant
	Ladder HubStormVariant
	Tiered HubStormVariant
}

// TieredDominates reports the battery's acceptance property: the
// tier-collapse ladder completes at least 99% of events within
// deadline while the static k-way walk hard-fails under the same
// storms.
func (r *HubStormResult) TieredDominates() bool {
	return r.Tiered.InDeadlineFrac() >= 0.99 &&
		r.Static.NoResult > 0 &&
		r.Static.InDeadlineFrac() < r.Tiered.InDeadlineFrac()
}

// hubStormPlan draws the battery's shared storm schedule.
func hubStormPlan(cfg HubStormConfig, horizon float64) *faults.Plan {
	return faults.HubStormPlan(cfg.Seed, faults.PlanConfig{
		Horizon: horizon, MeanDuration: horizon / 12, HubStorms: cfg.Storms,
	})
}

// hubStormPolicy scales the per-event budget to the chain's event
// period: light retries, and a breaker whose cooldown is on the probe
// cadence's scale (a cooldown much longer than the probe schedule
// starves every revival probe on an open breaker).
func hubStormPolicy(deadline, period float64) faults.Policy {
	return faults.Policy{
		Deadline:         deadline,
		MaxRetries:       2,
		Backoff:          faults.Backoff{Base: 0.2e-3, Max: 1.6e-3, Factor: 2},
		BreakerThreshold: 3,
		BreakerCooldown:  25 * period,
		MinVotes:         1,
	}
}

// hubStormCollapse scales the ladder's hysteresis to the event period.
func hubStormCollapse(period float64) adaptive.CollapseConfig {
	return adaptive.CollapseConfig{
		FailThreshold:      2,
		ProbeAfterSeconds:  10 * period,
		ProbeBackoffFactor: 2,
		MaxProbeSeconds:    120 * period,
		RecoverySuccesses:  1,
		ProbationEvents:    3,
	}
}

// hubStormHops builds one variant's fresh per-hop transports: every
// hop gets its own seeded lossy link, the storm plan merged onto both
// hops touching the hub (its downlink, hop 0, and its uplink, hop 1),
// and a per-hop breaker on the shared clock.
func hubStormHops(ts *xsystem.TieredSystem, storm *faults.Plan, pol faults.Policy,
	clock *faults.Clock, seed int64) ([]xsystem.HopTransport, error) {

	nh := len(ts.Tiered.Hops)
	hops := make([]xsystem.HopTransport, 0, nh)
	for h := 0; h < nh; h++ {
		var plan *faults.Plan
		if h == 0 || h == 1 {
			plan = storm
		}
		link, err := faults.NewLink(ts.Tiered.Hops[h].Link, plan, clock, 0, 0, faults.HopSeed(seed, h))
		if err != nil {
			return nil, err
		}
		breaker, err := faults.NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown, clock)
		if err != nil {
			return nil, err
		}
		hops = append(hops, xsystem.HopTransport{Link: link, Breaker: breaker})
	}
	return hops, nil
}

// hubStormRungs prebuilds the collapse rungs: rungs[c] serves the home
// placement clamped to tiers ≤ c with result delivery re-homed onto
// the cap, rungs[nh] is the full chain.
func hubStormRungs(ts *xsystem.TieredSystem) ([]*xsystem.TieredSystem, error) {
	nh := len(ts.Tiered.Hops)
	home := ts.TierPlacement.Clone()
	res := ts.Tiered.ResultTier
	rungs := make([]*xsystem.TieredSystem, nh+1)
	for c := 0; c <= nh; c++ {
		capT := partition.Tier(c)
		r := res
		if capT < r {
			r = capT
		}
		rung, err := ts.WithResultDelivery(home.CapAt(capT), r)
		if err != nil {
			return nil, err
		}
		rungs[c] = rung
	}
	return rungs, nil
}

// TieredRunner drives the tier-collapse variant one event at a time.
// Its whole mutable state — clock, per-hop links and breakers, ladder
// — snapshots and restores, so a mid-storm crash–recover cycle can be
// replayed against an uninterrupted golden run.
type TieredRunner struct {
	clock  *faults.Clock
	hops   []xsystem.HopTransport
	ladder *adaptive.CollapseLadder
	rungs  []*xsystem.TieredSystem
	storm  *faults.Plan
	pol    faults.Policy
	framed *faults.Framing

	period   float64
	deadline float64
}

// NewTieredRunner builds the tier-collapse runtime over ts for one
// battery configuration.
func NewTieredRunner(ts *xsystem.TieredSystem, cfg HubStormConfig) (*TieredRunner, error) {
	cfg.fill()
	if ts == nil {
		return nil, fmt.Errorf("chaos: nil tiered system")
	}
	ev := ts.EventsPerSecond()
	if !(ev > 0) {
		return nil, fmt.Errorf("chaos: tiered system has no event rate")
	}
	period := 1 / ev
	horizon := float64(cfg.Events) * period
	limit := tieredLimit(ts)
	deadline := cfg.DeadlineFactor * limit
	if math.IsNaN(deadline) || math.IsInf(deadline, 0) || deadline <= 0 {
		return nil, fmt.Errorf("chaos: deadline %v is not a positive finite budget", deadline)
	}
	pol := hubStormPolicy(deadline, period)
	clock := &faults.Clock{}
	storm := hubStormPlan(cfg, horizon)
	hops, err := hubStormHops(ts, storm, pol, clock, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ladder, err := adaptive.NewCollapseLadder(len(hops), hubStormCollapse(period))
	if err != nil {
		return nil, err
	}
	rungs, err := hubStormRungs(ts)
	if err != nil {
		return nil, err
	}
	return &TieredRunner{
		clock: clock, hops: hops, ladder: ladder, rungs: rungs, storm: storm,
		pol: pol, framed: cfg.Framing, period: period, deadline: deadline,
	}, nil
}

// tieredLimit is the per-event serve budget's basis: T_XPro =
// min(T_F, T_B) of the underlying system — the same constraint the
// 2-end soak prices deadlines from — but never less than the clean
// full-chain serve time (compute delay plus every hop's air time).
// On chains whose uplink is slow relative to the 2-end extremes the
// min alone would put even a faultless full-chain event over budget,
// and the battery would measure the topology, not the storms.
func tieredLimit(ts *xsystem.TieredSystem) float64 {
	limit := ts.DelayOf(partition.InSensor(ts.Graph)).Total()
	if d := ts.DelayOf(partition.InAggregator(ts.Graph)).Total(); d < limit {
		limit = d
	}
	clean := ts.DelayOf(ts.Placement).Total()
	for _, air := range ts.TierReport().HopAirSeconds {
		clean += air
	}
	if clean > limit {
		limit = clean
	}
	return limit
}

// HubStormEvent is one event's row in the battery ledger.
type HubStormEvent struct {
	// Cap is the tier cap the event was served under (hop count = full
	// chain); Probing marks a revival probe through a collapsed hop.
	Cap     int
	Probing bool
	// StormNow is true when the hub was dark at the event's arrival.
	StormNow bool
	// NoResult means no label was produced even after re-homing.
	NoResult bool
	// Degraded is any serve below full-chain full fidelity.
	Degraded bool
	// DeadlineExceeded reflects the shared deadline budget, including
	// a failed attempt's struggle.
	DeadlineExceeded bool
	// SpentSeconds / SensorEnergyJ are the event's modeled cost.
	SpentSeconds  float64
	SensorEnergyJ float64
}

// Serve drives one event through the collapse ladder.
func (r *TieredRunner) Serve(seg biosig.Segment) (HubStormEvent, error) {
	now := r.clock.Now()
	capT, probing := r.ladder.EventCap(now)
	full := partition.Tier(len(r.hops))
	ev := HubStormEvent{Cap: int(capT), Probing: probing, StormNow: r.storm.At(now).HubDown}
	opt := &xsystem.TieredOptions{
		Hops: r.hops, Clock: r.clock, Policy: r.pol, Integrity: r.framed,
	}
	out, werr := r.rungs[capT].ClassifyOver(seg, opt)
	if werr != nil && len(out.HopOutage) == 0 {
		return ev, werr // structural rejection, not a channel outcome
	}
	r.clock.Advance(r.period)
	for h := range r.hops {
		attempted := out.HopTransfersOK[h] > 0 || out.HopLost[h] > 0 ||
			out.HopSkipped[h] > 0 || out.HopOutage[h]
		if attempted {
			r.ladder.Observe(h, out.HopOutage[h], now)
		}
	}
	if werr == nil {
		ev.SpentSeconds = out.SpentSeconds
		ev.SensorEnergyJ = out.SensorEnergy
		ev.Degraded = capT != full || !out.Complete
		ev.DeadlineExceeded = out.DeadlineExceeded || out.SpentSeconds > r.deadline
		return ev, nil
	}
	// The attempt died on a dead hop: re-home on the rung below it,
	// marching further down if that rung fails too (rung 0 crosses no
	// hop and cannot fail). The failed attempt's struggle stays on the
	// event's bill; its sensing is not charged twice.
	attempt := out.Outcome
	fbCap := partition.Tier(0)
	var ih *xsystem.HopOutageError
	if asHopOutage(werr, &ih) {
		fbCap = partition.Tier(ih.Hop)
	}
	var fout xsystem.TieredOutcome
	for {
		var ferr error
		fout, ferr = r.rungs[fbCap].ClassifyOver(seg, opt)
		if ferr == nil {
			break
		}
		if fbCap == 0 {
			ev.NoResult = true
			ev.Degraded = true
			ev.SpentSeconds = attempt.SpentSeconds
			ev.SensorEnergyJ = attempt.SensorEnergy
			ev.DeadlineExceeded = true
			return ev, nil
		}
		if asHopOutage(ferr, &ih) && partition.Tier(ih.Hop) < fbCap {
			fbCap = partition.Tier(ih.Hop)
		} else {
			fbCap = 0
		}
	}
	ev.Cap = int(fbCap)
	ev.Degraded = true
	ev.SpentSeconds = attempt.SpentSeconds + fout.SpentSeconds
	ev.SensorEnergyJ = fout.SensorEnergy
	if extra := attempt.SensorEnergy - r.rungs[0].Tiered.SensingEnergy; extra > 0 && fout.SensorEnergy > 0 {
		ev.SensorEnergyJ += extra
	} else if fout.SensorEnergy == 0 {
		ev.SensorEnergyJ += attempt.SensorEnergy
	}
	ev.DeadlineExceeded = attempt.DeadlineExceeded || fout.DeadlineExceeded ||
		ev.SpentSeconds > r.deadline
	return ev, nil
}

func asHopOutage(err error, out **xsystem.HopOutageError) bool {
	return errors.As(err, out)
}

// Counters returns the ladder's (collapses, recoveries, rollbacks).
func (r *TieredRunner) Counters() (int, int, int) { return r.ladder.Counters() }

// TieredRunnerState is the runner's full durable state.
type TieredRunnerState struct {
	ClockSeconds float64
	Ladder       adaptive.LadderState
	Breakers     []faults.BreakerSnapshot
	Draws        []uint64
}

// Snapshot captures everything a crash would wipe.
func (r *TieredRunner) Snapshot() TieredRunnerState {
	st := TieredRunnerState{
		ClockSeconds: r.clock.Now(),
		Ladder:       r.ladder.Snapshot(),
	}
	for h := range r.hops {
		st.Breakers = append(st.Breakers, r.hops[h].Breaker.Snapshot())
		st.Draws = append(st.Draws, r.hops[h].Link.Draws())
	}
	return st
}

// Restore rewinds the runner onto a snapshot; the next Serve continues
// the seeded timeline bit-identically to a runner that never died.
func (r *TieredRunner) Restore(st TieredRunnerState) error {
	if len(st.Breakers) != len(r.hops) || len(st.Draws) != len(r.hops) {
		return fmt.Errorf("chaos: snapshot covers %d/%d hops, runner has %d",
			len(st.Breakers), len(st.Draws), len(r.hops))
	}
	if err := r.ladder.Restore(st.Ladder); err != nil {
		return err
	}
	for h := range r.hops {
		if err := r.hops[h].Breaker.Restore(st.Breakers[h]); err != nil {
			return err
		}
		if err := r.hops[h].Link.RestoreDraws(st.Draws[h]); err != nil {
			return err
		}
	}
	r.clock.Restore(st.ClockSeconds)
	return nil
}

// HubStormSoak rides the three variants through one identical seeded
// storm schedule. ts supplies the chain and its home placement; segs
// the event stream, cycled as needed.
func HubStormSoak(ts *xsystem.TieredSystem, segs []biosig.Segment, cfg HubStormConfig) (*HubStormResult, error) {
	cfg.fill()
	if ts == nil {
		return nil, fmt.Errorf("chaos: nil tiered system")
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("chaos: no segments")
	}
	ev := ts.EventsPerSecond()
	if !(ev > 0) {
		return nil, fmt.Errorf("chaos: tiered system has no event rate")
	}
	period := 1 / ev
	horizon := float64(cfg.Events) * period
	deadline := cfg.DeadlineFactor * tieredLimit(ts)
	res := &HubStormResult{Seed: cfg.Seed, HorizonSeconds: horizon, DeadlineSeconds: deadline}

	var err error
	res.Static, err = hubStormFixed(ts, segs, cfg, false)
	if err != nil {
		return nil, err
	}
	res.Ladder, err = hubStormFixed(ts, segs, cfg, true)
	if err != nil {
		return nil, err
	}
	res.Tiered, err = hubStormTiered(ts, segs, cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// hubStormFixed drives the static variant (fallback false: a failed
// event produces nothing) or the 2-rung ladder variant (fallback true:
// a failed event re-serves from the sensor-local rung).
func hubStormFixed(ts *xsystem.TieredSystem, segs []biosig.Segment, cfg HubStormConfig, fallback bool) (HubStormVariant, error) {
	name := "static"
	if fallback {
		name = "ladder"
	}
	v := HubStormVariant{Name: name}
	ev := ts.EventsPerSecond()
	period := 1 / ev
	horizon := float64(cfg.Events) * period
	deadline := cfg.DeadlineFactor * tieredLimit(ts)
	pol := hubStormPolicy(deadline, period)
	clock := &faults.Clock{}
	storm := hubStormPlan(cfg, horizon)
	hops, err := hubStormHops(ts, storm, pol, clock, cfg.Seed)
	if err != nil {
		return v, err
	}
	rungs, err := hubStormRungs(ts)
	if err != nil {
		return v, err
	}
	full := rungs[len(rungs)-1]
	sensing := ts.Tiered.SensingEnergy
	for i := 0; i < cfg.Events; i++ {
		seg := segs[i%len(segs)]
		now := clock.Now()
		stormNow := storm.At(now).HubDown
		opt := &xsystem.TieredOptions{Hops: hops, Clock: clock, Policy: pol, Integrity: cfg.Framing}
		out, werr := full.ClassifyOver(seg, opt)
		if werr != nil && len(out.HopOutage) == 0 {
			return v, werr
		}
		clock.Advance(period)
		spent := out.SpentSeconds
		energy := out.SensorEnergy
		noResult := false
		degraded := !out.Complete
		deadlined := out.DeadlineExceeded
		if werr != nil {
			degraded = true
			if !fallback {
				noResult = true
				deadlined = true
			} else {
				fout, ferr := rungs[0].ClassifyOver(seg, opt)
				spent += fout.SpentSeconds
				if fout.SensorEnergy > 0 && energy > 0 {
					energy += fout.SensorEnergy - sensing
				} else {
					energy += fout.SensorEnergy
				}
				deadlined = deadlined || fout.DeadlineExceeded
				if ferr != nil {
					noResult = true
					deadlined = true
				}
			}
		}
		deadlined = deadlined || spent > deadline
		v.Events++
		if stormNow {
			v.StormEvents++
		}
		if noResult || deadlined {
			v.Violations++
		}
		if noResult {
			v.NoResult++
		}
		if degraded || noResult {
			v.Degraded++
		}
		v.SensorEnergyJ += energy
		v.Log = append(v.Log, fmt.Sprintf(
			"%s %03d storm=%t err=%t noresult=%t degraded=%t deadlined=%t spent=%.17g energy=%.17g",
			name, i, stormNow, werr != nil, noResult, degraded, deadlined, spent, energy))
	}
	return v, nil
}

// hubStormTiered drives the tier-collapse variant through a
// TieredRunner.
func hubStormTiered(ts *xsystem.TieredSystem, segs []biosig.Segment, cfg HubStormConfig) (HubStormVariant, error) {
	v := HubStormVariant{Name: "tiered"}
	r, err := NewTieredRunner(ts, cfg)
	if err != nil {
		return v, err
	}
	for i := 0; i < cfg.Events; i++ {
		ev, err := r.Serve(segs[i%len(segs)])
		if err != nil {
			return v, err
		}
		v.Events++
		if ev.StormNow {
			v.StormEvents++
		}
		if ev.NoResult || ev.DeadlineExceeded {
			v.Violations++
		}
		if ev.NoResult {
			v.NoResult++
		}
		if ev.Degraded {
			v.Degraded++
		}
		v.SensorEnergyJ += ev.SensorEnergyJ
		v.Log = append(v.Log, fmt.Sprintf(
			"tiered %03d storm=%t cap=%d probe=%t noresult=%t degraded=%t deadlined=%t spent=%.17g energy=%.17g",
			i, ev.StormNow, ev.Cap, ev.Probing, ev.NoResult, ev.Degraded, ev.DeadlineExceeded,
			ev.SpentSeconds, ev.SensorEnergyJ))
	}
	v.Collapses, v.Recoveries, v.Rollbacks = r.Counters()
	return v, nil
}
