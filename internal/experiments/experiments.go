package experiments

import (
	"fmt"
	"io"

	"xpro/internal/biosig"
	"xpro/internal/celllib"
	"xpro/internal/stats"
	"xpro/internal/wireless"
)

// evalProc and evalLink are the defaults of §5: "unless otherwise
// stated, we use the medium-energy wireless Model 2 and the TSMC 90nm
// process technology".
var (
	evalProc = celllib.P90
	evalLink = wireless.Model2()
)

// Table1 reproduces Table 1: the attributes of the six test cases, plus
// the trained classifier accuracy of each generated substitute dataset.
func Table1(l *Lab) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Attributes of 6 test cases from 5 biosignal datasets",
		Header: []string{"Dataset", "Symbol", "SegmentLength", "SegmentNumber", "EnsembleAccuracy"},
	}
	for _, sym := range l.Symbols() {
		inst, err := l.Instance(sym)
		if err != nil {
			return nil, err
		}
		t.AddRow(inst.Spec.Name, inst.Spec.Symbol,
			fmt.Sprint(inst.Spec.SegLen), fmt.Sprint(inst.Spec.Count), f3(inst.Accuracy))
	}
	t.AddNote("segment lengths and counts match Table 1 exactly; datasets are synthetic substitutes (DESIGN.md §2)")
	return t, nil
}

// Fig4 reproduces Figure 4: energy characterization (pJ/event) of the
// three ALU modes for each module, with the energy-optimal mode starred.
func Fig4() *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Energy of ALU modes per module (pJ/event, 90nm, 128-sample input)",
		Header: []string{"Module", "Serial", "Parallel", "Pipeline", "Optimal"},
	}
	specs := []celllib.Spec{}
	for _, f := range stats.AllFeatures {
		specs = append(specs, celllib.Spec{Kind: celllib.KindFeature, Feat: f, N: 128})
	}
	specs = append(specs,
		celllib.Spec{Kind: celllib.KindDWT, N: 128},
		celllib.Spec{Kind: celllib.KindSVM, SVs: 120, Dim: 12},
		celllib.Spec{Kind: celllib.KindFusion, Bases: 10},
	)
	for _, s := range specs {
		best, _ := celllib.BestMode(s, evalProc)
		t.AddRow(s.Name(),
			pj(celllib.Characterize(s, celllib.Serial, evalProc).Energy()),
			pj(celllib.Characterize(s, celllib.Parallel, evalProc).Energy()),
			pj(celllib.Characterize(s, celllib.Pipeline, evalProc).Energy()),
			best.String())
	}
	dwt := celllib.Spec{Kind: celllib.KindDWT, N: 128}
	ratio := celllib.Characterize(dwt, celllib.Parallel, evalProc).Energy() /
		celllib.Characterize(dwt, celllib.Serial, evalProc).Energy()
	t.AddNote("paper: serial optimal for most modules; Std and DWT pipeline-optimal; measured parallel/serial DWT ratio %.0fx (paper: ~two orders of magnitude)", ratio)
	return t
}

// Fig8 reproduces Figure 8: sensor battery life under 130/90/45 nm with
// wireless Model 2, normalized to the aggregator engine of each case.
func Fig8(l *Lab) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Normalized sensor battery life vs process technology (wireless Model 2)",
		Header: []string{"Case", "Process", "Aggregator", "SensorNode", "CrossEnd"},
	}
	var sumCA, sumCS float64
	var n int
	for _, proc := range celllib.Processes {
		for _, sym := range l.Symbols() {
			es, err := l.Engines(sym, proc, evalLink)
			if err != nil {
				return nil, err
			}
			la, ls, lc := lifetime(es.InAggregator), lifetime(es.InSensor), lifetime(es.CrossEnd)
			t.AddRow(sym, proc.String(), f2(1), f2(ls/la), f2(lc/la))
			sumCA += lc / la
			sumCS += lc / ls
			n++
		}
	}
	t.AddNote("average cross-end lifetime: %.2fx aggregator engine (paper: 2.4x), %.2fx sensor node engine (paper: 1.6x)",
		sumCA/float64(n), sumCS/float64(n))
	return t, nil
}

// Fig9 reproduces Figure 9: sensor battery life under the three wireless
// models at 90 nm, normalized to the aggregator engine under Model 1.
func Fig9(l *Lab) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "Normalized sensor battery life vs wireless model (90nm)",
		Header: []string{"Case", "Model", "Aggregator", "SensorNode", "CrossEnd"},
	}
	type agg struct{ cs, ca, as float64 }
	perModel := make(map[int]*agg)
	for _, link := range wireless.Models() {
		perModel[link.Index] = &agg{}
		for _, sym := range l.Symbols() {
			es, err := l.Engines(sym, evalProc, link)
			if err != nil {
				return nil, err
			}
			ref, err := l.Engines(sym, evalProc, wireless.Model1())
			if err != nil {
				return nil, err
			}
			base := lifetime(ref.InAggregator)
			la, ls, lc := lifetime(es.InAggregator), lifetime(es.InSensor), lifetime(es.CrossEnd)
			t.AddRow(sym, fmt.Sprintf("model%d", link.Index), f2(la/base), f2(ls/base), f2(lc/base))
			a := perModel[link.Index]
			a.cs += lc / ls
			a.ca += lc / la
			a.as += la / ls
		}
	}
	n := float64(len(l.Symbols()))
	t.AddNote("model 1: cross-end vs sensor engine +%s (paper: +26.6%%)", pct(perModel[1].cs/n-1))
	t.AddNote("model 3: aggregator vs sensor engine %+.1f%% (paper: +74.6%%); cross-end vs aggregator +%s (paper: +73.7%%); cross-end vs sensor +%s (paper: +302%%)",
		(perModel[3].as/n-1)*100, pct(perModel[3].ca/n-1), pct(perModel[3].cs/n-1))
	return t, nil
}

// Fig10 reproduces Figure 10: per-event delay breakdown (front-end
// compute / wireless / back-end compute) of the three engines.
func Fig10(l *Lab) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "Delay breakdown per event (ms, 90nm, wireless Model 2)",
		Header: []string{"Case", "Engine", "FrontEnd", "Wireless", "BackEnd", "Total"},
	}
	var sumCA, sumCS float64
	var worst float64
	n := 0
	for _, sym := range l.Symbols() {
		es, err := l.Engines(sym, evalProc, evalLink)
		if err != nil {
			return nil, err
		}
		da := es.InAggregator.DelayPerEvent()
		ds := es.InSensor.DelayPerEvent()
		dc := es.CrossEnd.DelayPerEvent()
		for _, row := range []struct {
			tag string
			d   struct{ fe, w, be float64 }
		}{
			{"A", struct{ fe, w, be float64 }{da.FrontEnd, da.Wireless, da.BackEnd}},
			{"S", struct{ fe, w, be float64 }{ds.FrontEnd, ds.Wireless, ds.BackEnd}},
			{"C", struct{ fe, w, be float64 }{dc.FrontEnd, dc.Wireless, dc.BackEnd}},
		} {
			total := row.d.fe + row.d.w + row.d.be
			t.AddRow(sym, row.tag, ms(row.d.fe), ms(row.d.w), ms(row.d.be), ms(total))
			if total > worst {
				worst = total
			}
		}
		sumCA += 1 - dc.Total()/da.Total()
		sumCS += 1 - dc.Total()/ds.Total()
		n++
	}
	t.AddNote("all delays %.2f ms ≤ 4 ms real-time bound (paper: 'less than 4 ms')", worst*1e3)
	t.AddNote("cross-end delay reduction: %s vs aggregator engine (paper: 60.8%%), %s vs sensor engine (paper: 15.6%%)",
		pct(sumCA/float64(n)), pct(sumCS/float64(n)))
	return t, nil
}

// Fig11 reproduces Figure 11: sensor-node energy breakdown (computation
// vs wireless) per engine.
func Fig11(l *Lab) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Sensor-node energy breakdown per event (µJ, 90nm, wireless Model 2)",
		Header: []string{"Case", "Engine", "Compute", "Wireless", "Total"},
	}
	var sumSA, sumCS, sumCA float64
	n := 0
	for _, sym := range l.Symbols() {
		es, err := l.Engines(sym, evalProc, evalLink)
		if err != nil {
			return nil, err
		}
		ea := es.InAggregator.EnergyPerEvent()
		esn := es.InSensor.EnergyPerEvent()
		ec := es.CrossEnd.EnergyPerEvent()
		for _, row := range []struct {
			tag string
			e   struct{ c, w, tot float64 }
		}{
			{"A", struct{ c, w, tot float64 }{ea.SensorCompute, ea.SensorWireless(), ea.SensorTotal()}},
			{"S", struct{ c, w, tot float64 }{esn.SensorCompute, esn.SensorWireless(), esn.SensorTotal()}},
			{"C", struct{ c, w, tot float64 }{ec.SensorCompute, ec.SensorWireless(), ec.SensorTotal()}},
		} {
			t.AddRow(sym, row.tag, uj(row.e.c), uj(row.e.w), uj(row.e.tot))
		}
		sumSA += 1 - esn.SensorTotal()/ea.SensorTotal()
		sumCS += 1 - ec.SensorTotal()/esn.SensorTotal()
		sumCA += 1 - ec.SensorTotal()/ea.SensorTotal()
		n++
	}
	t.AddNote("sensor engine saves %s vs aggregator engine (paper: 36.6%%)", pct(sumSA/float64(n)))
	t.AddNote("cross-end saves %s vs sensor engine (paper: 31.7%%) and %s vs aggregator engine (paper: 56.9%%)",
		pct(sumCS/float64(n)), pct(sumCA/float64(n)))
	return t, nil
}

// Fig12 reproduces Figure 12: sensor battery life of the four cuts —
// aggregator engine, trivial cut, sensor node engine, and the cut found
// by the Automatic XPro Generator.
func Fig12(l *Lab) (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "Normalized lifetime of four cuts (90nm, wireless Model 2)",
		Header: []string{"Case", "Aggregator", "Trivial", "SensorNode", "Cross", "CrossCells(sensor/agg)"},
	}
	crossBest := true
	for _, sym := range l.Symbols() {
		es, err := l.Engines(sym, evalProc, evalLink)
		if err != nil {
			return nil, err
		}
		la := lifetime(es.InAggregator)
		lt := lifetime(es.Trivial)
		ls := lifetime(es.InSensor)
		lc := lifetime(es.CrossEnd)
		ns, na := es.Gen.Placement.Counts()
		t.AddRow(sym, f2(1), f2(lt/la), f2(ls/la), f2(lc/la), fmt.Sprintf("%d/%d", ns, na))
		if lc < ls-1e-9 || lc < la-1e-9 || lc < lt-1e-9 {
			crossBest = false
		}
	}
	if crossBest {
		t.AddNote("the generated cut is never worse than any other cut (paper: 'significant and consistent improvement')")
	} else {
		t.AddNote("WARNING: a named cut beat the generated cut — optimality violated")
	}
	t.AddNote("the trivial cut is inconsistent across cases (paper: wins some cases, loses others)")
	return t, nil
}

// Fig13 reproduces Figure 13: energy overhead on the aggregator for the
// aggregator engine vs the cross-end engine.
func Fig13(l *Lab) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Aggregator energy per event (µJ, 90nm, wireless Model 2)",
		Header: []string{"Case", "AggregatorEngine", "CrossEnd", "Ratio", "CrossLifetime(h)"},
	}
	var sumRatio float64
	minLife := 1e18
	n := 0
	for _, sym := range l.Symbols() {
		es, err := l.Engines(sym, evalProc, evalLink)
		if err != nil {
			return nil, err
		}
		ea := es.InAggregator.EnergyPerEvent().AggregatorTotal()
		ec := es.CrossEnd.EnergyPerEvent().AggregatorTotal()
		life, err := es.CrossEnd.AggregatorLifetimeHours()
		if err != nil {
			return nil, err
		}
		t.AddRow(sym, uj(ea), uj(ec), f2(ec/ea), fmt.Sprintf("%.0f", life))
		sumRatio += ec / ea
		if life < minLife {
			minLife = life
		}
		n++
	}
	t.AddNote("cross-end aggregator energy is %.2fx the aggregator engine's (paper: 'less than half')", sumRatio/float64(n))
	t.AddNote("minimum aggregator lifetime %.0f h on a 2900 mAh battery (paper: 'more than 52 hours')", minLife)
	return t, nil
}

// Headline reproduces the abstract's summary: battery life 1.6–2.4X and
// delay reduction 15.6–60.8% versus the single-end engines.
func Headline(l *Lab) (*Table, error) {
	t := &Table{
		ID:     "headline",
		Title:  "Headline result: cross-end vs single-end engines (90nm, wireless Model 2)",
		Header: []string{"Case", "Life C/A", "Life C/S", "Delay -vs A", "Delay -vs S"},
	}
	var sCA, sCS, sDA, sDS float64
	n := 0
	for _, sym := range l.Symbols() {
		es, err := l.Engines(sym, evalProc, evalLink)
		if err != nil {
			return nil, err
		}
		la, ls, lc := lifetime(es.InAggregator), lifetime(es.InSensor), lifetime(es.CrossEnd)
		da := es.InAggregator.DelayPerEvent().Total()
		ds := es.InSensor.DelayPerEvent().Total()
		dc := es.CrossEnd.DelayPerEvent().Total()
		t.AddRow(sym, f2(lc/la), f2(lc/ls), pct(1-dc/da), pct(1-dc/ds))
		sCA += lc / la
		sCS += lc / ls
		sDA += 1 - dc/da
		sDS += 1 - dc/ds
		n++
	}
	fn := float64(n)
	t.AddNote("averages: battery life %.2fx / %.2fx (paper: 2.4X / 1.6X); delay -%s / -%s (paper: -60.8%% / -15.6%%)",
		sCA/fn, sCS/fn, pct(sDA/fn), pct(sDS/fn))
	return t, nil
}

// runner is one named experiment.
type runner struct {
	ID  string
	Run func(*Lab) (*Table, error)
}

// Runners lists every experiment in paper order.
func Runners() []runner {
	return []runner{
		{"table1", Table1},
		{"fig4", func(*Lab) (*Table, error) { return Fig4(), nil }},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"headline", Headline},
		{"ext-lossy", ExtLossy},
		{"ext-frontier", ExtFrontier},
		{"ext-multiclass", ExtMulticlass},
		{"ext-bsn", ExtBSN},
		{"ext-robustness", ExtRobustness},
		{"ext-wirebits", ExtWireBits},
		{"ext-importance", ExtImportance},
		{"ext-faults", ExtFaults},
		{"ext-adaptive", ExtAdaptive},
		{"ext-parallel", ExtParallel},
		{"ext-corruption", ExtCorruption},
		{"ext-overload", ExtOverload},
		{"ext-multiway", ExtMultiway},
		{"ext-tiered-faults", ExtTieredFaults},
		{"scorecard", Scorecard},
	}
}

// Run executes the experiment with the given id and writes its table as
// aligned text.
func Run(l *Lab, id string, w io.Writer) error {
	return RunFormat(l, id, w, FormatText)
}

// RunFormat executes one experiment and renders it in the given format.
func RunFormat(l *Lab, id string, w io.Writer, f Format) error {
	for _, r := range Runners() {
		if r.ID == id {
			t, err := r.Run(l)
			if err != nil {
				return err
			}
			return t.Write(w, f)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q", id)
}

// All executes every experiment in order as aligned text.
func All(l *Lab, w io.Writer) error {
	return AllFormat(l, w, FormatText)
}

// AllFormat executes every experiment in the given format.
func AllFormat(l *Lab, w io.Writer, f Format) error {
	for _, r := range Runners() {
		if err := RunFormat(l, r.ID, w, f); err != nil {
			return err
		}
	}
	return nil
}

// Dataset accessor used by example programs.
func DatasetFor(sym string) (*biosig.Dataset, error) {
	spec, err := biosig.CaseBySymbol(sym)
	if err != nil {
		return nil, err
	}
	return biosig.Generate(spec), nil
}
