package xpro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xpro/internal/adaptive"
	"xpro/internal/biosig"
	"xpro/internal/ensemble"
	"xpro/internal/eventsim"
	"xpro/internal/faults"
	"xpro/internal/partition"
	"xpro/internal/telemetry"
	"xpro/internal/topology"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

// This file is the fault-tolerance layer of the engine. The paper
// evaluates XPro over an infallible link; a deployed wearable sees
// loss bursts, hard outages, battery brownouts and aggregator stalls.
// An engine built with a Resilience policy (and optionally a FaultPlan
// injecting those faults) answers every Classify within a bounded
// modeled deadline: cross-end transfers retry with capped exponential
// backoff, a circuit breaker stops hammering a dead link, and when the
// cross-end cut cannot complete, the event degrades — fusing the base
// scores that arrived, or routing through the in-sensor fallback cut
// precomputed at New() time — instead of failing.

// DegradeMode says how a classification was produced.
type DegradeMode int

const (
	// ModeFull is the normal cross-end path: every payload arrived.
	ModeFull DegradeMode = iota
	// ModePartial fused only the base-classifier scores that arrived.
	ModePartial
	// ModeSuspectData is the signal-quality gate's rung: the event was
	// rejected on entry (flatline, rail saturation, non-finite samples)
	// or quarantined after classification because too many of its
	// crossed values had to be imputed. A quarantined Result still
	// carries the label the damaged data produced; the paired error is
	// ErrSuspectData.
	ModeSuspectData
	// ModeSensorLocal computed the full result on the sensor but could
	// not deliver it across the link.
	ModeSensorLocal
	// ModeFallbackSensor routed the event through the precomputed
	// in-sensor fallback cut (the all-sensor extreme of the same s-t
	// graph).
	ModeFallbackSensor
	// ModeFallbackSoftware ran the pure-software ensemble on the
	// aggregator from raw samples (used when the sensor's cell array is
	// browned out but sensing and the link survive).
	ModeFallbackSoftware
)

func (m DegradeMode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModePartial:
		return "partial"
	case ModeSuspectData:
		return "suspect-data"
	case ModeSensorLocal:
		return "sensor-local"
	case ModeFallbackSensor:
		return "fallback-sensor"
	case ModeFallbackSoftware:
		return "fallback-software"
	default:
		return fmt.Sprintf("DegradeMode(%d)", int(m))
	}
}

// Result is one classification with its degradation provenance.
type Result struct {
	// Label is the predicted class (0 or 1).
	Label int
	// Degraded is true when the event did not complete the full
	// cross-end path (Mode != ModeFull).
	Degraded bool
	// Mode says which path produced the label.
	Mode DegradeMode
	// VotesUsed / VotesTotal count the base-classifier scores fused
	// (equal unless Mode is ModePartial).
	VotesUsed, VotesTotal int
	// Retries and LostTransfers report the link-layer struggle.
	Retries, LostTransfers int
	// DeadlineExceeded is true when the per-event budget ran out.
	DeadlineExceeded bool
	// SpentSeconds is the modeled time the event consumed.
	SpentSeconds float64
	// CorruptFrames counts frames the CRC rejected (and the link
	// retried); CorruptDelivered counts frames that arrived carrying
	// undetected bit errors (bare wire only — zero with framing on).
	CorruptFrames, CorruptDelivered int
	// ImputedValues counts crossed values reconstructed by the
	// imputation policy because their frames were lost.
	ImputedValues int
	// SensorEnergyJoules is the modeled sensor-node energy the event
	// actually consumed — retries, fallback compute and all — the value
	// the xpro_event_energy_joules quantile series observes.
	SensorEnergyJoules float64
	// Breaker is the circuit breaker state after the event
	// ("closed", "half-open", "open"); empty without a policy.
	Breaker string
}

// Resilience is the engine's fault-tolerance policy. Construct it with
// DefaultResilience and override fields; a zero field is taken
// literally (e.g. MaxRetries 0 really means no re-sends).
type Resilience struct {
	// DeadlineSeconds is the per-event modeled time budget; events
	// that exhaust it degrade instead of retrying further.
	DeadlineSeconds float64
	// MaxRetries caps re-sends per cross-end transfer.
	MaxRetries int
	// BackoffBaseSeconds / BackoffMaxSeconds shape the capped
	// exponential retry schedule (modeled seconds, factor 2).
	BackoffBaseSeconds float64
	BackoffMaxSeconds  float64
	// BreakerThreshold trips the circuit breaker after that many
	// consecutive dropped transfers (0 disables the breaker);
	// BreakerCooldownSeconds is the open → half-open probe delay.
	BreakerThreshold       int
	BreakerCooldownSeconds float64
	// MinVotes is the minimum base-classifier quorum for a partial
	// fusion (values below 1 mean 1).
	MinVotes int
	// BaseLoss is the ambient packet-loss probability of the link,
	// applied outside any fault-plan burst window.
	BaseLoss float64
	// FailFast returns transfer errors to the caller instead of
	// degrading — the pre-resilience behaviour, kept for callers that
	// prefer an error to a degraded answer.
	FailFast bool
}

// DefaultResilience returns the default policy: 50 ms modeled
// deadline, two retries backing off 1 ms → 8 ms, breaker tripping
// after 3 consecutive drops with a 5 s cooldown.
func DefaultResilience() *Resilience {
	p := faults.DefaultPolicy()
	return &Resilience{
		DeadlineSeconds:        p.Deadline,
		MaxRetries:             p.MaxRetries,
		BackoffBaseSeconds:     p.Backoff.Base,
		BackoffMaxSeconds:      p.Backoff.Max,
		BreakerThreshold:       p.BreakerThreshold,
		BreakerCooldownSeconds: p.BreakerCooldown,
		MinVotes:               p.MinVotes,
	}
}

func (r *Resilience) policy() faults.Policy {
	return faults.Policy{
		Deadline:         r.DeadlineSeconds,
		MaxRetries:       r.MaxRetries,
		Backoff:          faults.Backoff{Base: r.BackoffBaseSeconds, Max: r.BackoffMaxSeconds, Factor: 2},
		BreakerThreshold: r.BreakerThreshold,
		BreakerCooldown:  r.BreakerCooldownSeconds,
		MinVotes:         r.MinVotes,
	}
}

// FaultWindow is one fault interval on the engine's modeled timeline,
// half-open [StartSeconds, EndSeconds). Kind is "loss-burst",
// "link-outage", "brownout", "agg-stall", "bit-flip", "duplicate",
// "reorder", "node-crash", "reboot", "demand-surge" or "hub-storm";
// Loss applies to loss-burst windows only, Rate to the three corruption kinds
// (per-bit error probability for bit-flip, per-packet probability for
// duplicate and reorder) and to demand-surge windows (the arrival-
// rate multiplier ≥ 1; ignored by the classify pipeline, read by
// arrival processes such as the chaos soak harnesses). Overlapping same-kind windows merge: the max Loss/Rate
// over the covering windows applies. The two node-down kinds take the
// node off the air entirely — every Classify inside the window fails
// fast with ErrNodeDown and the node's volatile state is wiped; a
// "reboot" is ordered (a final checkpoint is flushed on the way down)
// while a "node-crash" is a hard power loss, and a crash overlapping a
// reboot is still a crash. A "hub-storm" is the hub-side flavor of
// "link-outage": the shared infrastructure node behind a hop goes dark,
// so every subject whose traffic transits that hub sees the identical
// dark period (see TierResilience.HubStorms for the correlated per-hop
// derivation on armed tier plans).
type FaultWindow struct {
	Kind         string
	StartSeconds float64
	EndSeconds   float64
	Loss         float64
	Rate         float64
}

// FaultPlan is a deterministic schedule of fault windows injected into
// an engine (Config.FaultPlan) or into the discrete-event simulator
// (SimulatedFaultyDelays). Seed drives every random draw the faults
// make, so one seed replays one identical run.
type FaultPlan struct {
	Windows []FaultWindow
	Seed    int64
}

// FaultScenarios lists the named scenarios FaultScenario accepts.
func FaultScenarios() []string { return faults.ScenarioNames() }

// FaultScenario builds a named fault plan ("outage", "bursty",
// "brownout", "stall", "flaky", "corrupt", "garbled") over a horizon
// of modeled seconds.
func FaultScenario(name string, seed int64, horizonSeconds float64) (*FaultPlan, error) {
	p, err := faults.Scenario(name, seed, horizonSeconds)
	if err != nil {
		return nil, err
	}
	out := &FaultPlan{Seed: seed}
	for _, w := range p.Windows {
		out.Windows = append(out.Windows, FaultWindow{
			Kind: w.Kind.String(), StartSeconds: w.Start, EndSeconds: w.End, Loss: w.Loss, Rate: w.Rate,
		})
	}
	return out, nil
}

var faultKinds = map[string]faults.Kind{
	"loss-burst":   faults.LossBurst,
	"link-outage":  faults.LinkOutage,
	"brownout":     faults.Brownout,
	"agg-stall":    faults.AggStall,
	"bit-flip":     faults.BitFlip,
	"duplicate":    faults.Duplicate,
	"reorder":      faults.Reorder,
	"node-crash":   faults.NodeCrash,
	"reboot":       faults.Reboot,
	"demand-surge": faults.DemandSurge,
	"hub-storm":    faults.HubStorm,
}

func (p *FaultPlan) internal() (*faults.Plan, error) {
	if p == nil {
		return nil, nil
	}
	out := &faults.Plan{}
	for i, w := range p.Windows {
		k, ok := faultKinds[w.Kind]
		if !ok {
			return nil, fmt.Errorf("xpro: fault window %d has unknown kind %q", i, w.Kind)
		}
		out.Windows = append(out.Windows, faults.Window{Kind: k, Start: w.StartSeconds, End: w.EndSeconds, Loss: w.Loss, Rate: w.Rate})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// resilient is the engine's fault-tolerance state: the policy compiled
// to internal types, the virtual clock, the fault-injected transport,
// the circuit breaker and the precomputed in-sensor fallback cut.
// Events are serialized through mu — the modeled clock, the breaker
// and the link's random stream are single-threaded by design, so that
// a seeded run replays bit-identically.
type resilient struct {
	mu       sync.Mutex
	policy   faults.Policy
	plan     *faults.Plan
	clock    *faults.Clock
	breaker  *faults.Breaker
	link     *faults.Link
	fallback *xsystem.System
	period   float64
	failFast bool
	// integ is the data-plane integrity config (nil without
	// Config.Integrity); framing is its compiled wire half.
	integ   *Integrity
	framing *faults.Framing
	// ctrl is the adaptive repartitioning controller (nil without
	// Config.Adaptive); lastOut is the most recent cross-end attempt's
	// transfer record, the channel evidence ObserveEvent folds.
	ctrl    *adaptive.Controller
	lastOut xsystem.Outcome
	// lastState is the fault-plan state seen by the previous event;
	// crossing a window edge bumps the engine's serving epoch so
	// memoized network views rebuild.
	lastState faults.State

	// The crash-tolerance layer (recovery.go). seq numbers every event
	// applied to the timeline; the energy/quarantine/imputation ledgers
	// and the crash bookkeeping make up the durable SubjectState. store
	// (when attached via EnableRecovery) receives one journal record per
	// applied event; lastCkpt is the modeled time of the last checkpoint
	// (-1: never). down marks the node inside a node-crash/reboot
	// window; seed re-arms the link RNG on restore.
	seq         uint64
	energyJ     float64
	quarantined uint64
	imputed     uint64
	crashes     uint64
	recoveries  uint64
	down        bool
	store       *DurableStore
	lastCkpt    float64
	seed        int64

	// browned is set by the fleet brownout controller: while true,
	// every event routes straight to the degradation ladder's cheap
	// rung (the in-sensor fallback cut, or the software fallback
	// during a battery brownout) without attempting the cross-end
	// path — trading answer quality for service time so serving
	// capacity rises under sustained overload. Atomic because the
	// fleet flips it from worker goroutines while other events hold
	// mu.
	browned atomic.Bool
}

// buildResilient assembles the fault-tolerance layer during engine
// construction. Returns nil when the config requests none.
func buildResilient(cfg Config, sys *xsystem.System, g *topology.Graph,
	ens *ensemble.Ensemble, obs *Observer) (*resilient, error) {
	if cfg.Resilience == nil && cfg.FaultPlan == nil && cfg.Adaptive == nil && cfg.Integrity == nil {
		return nil, nil
	}
	rc := cfg.Resilience
	if rc == nil {
		rc = DefaultResilience()
	}
	pol := rc.policy()
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Integrity.validate(); err != nil {
		return nil, err
	}
	plan, err := cfg.FaultPlan.internal()
	if err != nil {
		return nil, err
	}
	clock := &faults.Clock{}
	var seed int64
	if cfg.FaultPlan != nil {
		seed = cfg.FaultPlan.Seed
	}
	link, err := faults.NewLink(sys.Link, plan, clock, rc.BaseLoss, 0, seed)
	if err != nil {
		return nil, err
	}
	breaker, err := faults.NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown, clock)
	if err != nil {
		return nil, err
	}
	// The adaptive re-cut controller: same reference system, same delay
	// constraint T_XPro = min(T_F, T_B) the static generator used. Its
	// estimator taps every channel signal the layer already produces —
	// the link's per-send statistics here, breaker transitions below,
	// fault-window state and outcomes per event in classify.
	var ctrl *adaptive.Controller
	if cfg.Adaptive != nil {
		limit := sys.DelayOf(partition.InSensor(g)).Total()
		if d := sys.DelayOf(partition.InAggregator(g)).Total(); d < limit {
			limit = d
		}
		ctrl, err = adaptive.NewController(cfg.Adaptive.internal(), sys, limit, obs.reg)
		if err != nil {
			return nil, err
		}
		link.Observer = func(tr wireless.Transfer, retransmissions int, serr error) {
			ctrl.Estimator().ObserveSendStats(tr, retransmissions, serr)
		}
	}
	stateGauge := obs.reg.Gauge("xpro_breaker_state",
		"Circuit breaker state: 0 closed, 1 half-open, 2 open.")
	transitions := obs.reg.Counter("xpro_breaker_transitions_total",
		"Circuit breaker state changes.")
	stateGauge.Set(float64(faults.BreakerClosed))
	breaker.OnTransition = func(from, to faults.BreakerState) {
		stateGauge.Set(float64(to))
		transitions.Inc()
		if ctrl != nil {
			ctrl.Estimator().ObserveBreaker(to)
		}
	}
	// The all-sensor extreme of the same s-t graph: the fallback cut
	// events route through when the cross-end path cannot complete.
	fb, err := xsystem.New(g, ens, cfg.Process.internal(), sys.Link, sys.CPU,
		partition.InSensor(g), cfg.SampleRateHz)
	if err != nil {
		return nil, fmt.Errorf("xpro: building fallback cut: %w", err)
	}
	fb.Metrics = obs.reg
	period := 0.0
	if ev := sys.EventsPerSecond(); ev > 0 {
		period = 1 / ev
	}
	return &resilient{
		policy: pol, plan: plan, clock: clock, breaker: breaker, link: link,
		fallback: fb, period: period, failFast: rc.FailFast, ctrl: ctrl,
		integ: cfg.Integrity, framing: cfg.Integrity.framing(),
		seed: seed, lastCkpt: -1,
	}, nil
}

// classify runs one event through the resilience ladder:
//
//  1. breaker open → skip the link entirely, fallback cut;
//  2. cross-end attempt with retry/backoff under the deadline budget;
//  3. partial fusion when only some base scores arrived;
//  4. fallback: in-sensor cut (link faults) or software ensemble
//     (sensor brownout);
//  5. FailFast policies surface the error instead of steps 3–4.
func (r *resilient) classify(e *Engine, seg biosig.Segment) (Result, error) {
	return r.classifyCtx(context.Background(), e, seg)
}

// classifyCtx is classify honoring a context: a canceled or expired
// ctx abandons the event with a typed ErrCanceled error BEFORE it
// touches the modeled timeline — the clock does not advance, the
// breaker records nothing, the link RNG stays untouched — so canceled
// events are invisible to seeded replay and never trip the breaker.
func (r *resilient) classifyCtx(ctx context.Context, e *Engine, seg biosig.Segment) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, e.canceledError(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// The wait for the serial timeline may have outlived the caller:
	// re-check after acquiring the lock.
	if err := ctx.Err(); err != nil {
		return Result{}, e.canceledError(err)
	}

	start := time.Now()
	res, err := r.classifyLocked(e, seg)
	r.clock.Advance(r.period)

	m := e.obs.reg
	now := r.clock.Now()
	if err != nil && errors.Is(err, ErrNodeDown) {
		// The node was dark: nothing was served, sensed or journaled.
		// The arrival still consumed modeled time (the Advance above),
		// but it is not an applied event — no sequence number, no SLO
		// sample — so recovered and uninterrupted timelines agree on
		// what the node actually did.
		m.Counter("xpro_node_down_total",
			"Events rejected because the node was inside a node-crash/reboot window.").Inc()
		e.slo.errorsTotal.Inc()
		return res, err
	}
	// Integrity counters fire for quarantined events too: the damage
	// happened whether or not the gate let the label out.
	if res.CorruptFrames > 0 || res.CorruptDelivered > 0 {
		m.Counter("xpro_frames_corrupt_total",
			"Frames that arrived corrupted: CRC-rejected (framed) or consumed dirty (bare wire).").
			Add(float64(res.CorruptFrames + res.CorruptDelivered))
	}
	if res.ImputedValues > 0 {
		m.Counter("xpro_samples_imputed_total",
			"Crossed values reconstructed by the imputation policy after frame loss.").
			Add(float64(res.ImputedValues))
	}
	if err != nil {
		if errors.Is(err, ErrSuspectData) {
			// Quarantined events land on the SLO series too: the latency
			// and energy were spent whether or not the label was released.
			e.slo.observe(now, res.SpentSeconds, res.SensorEnergyJoules, res.ImputedValues)
			e.slo.qualityRejected.Inc()
			var ev uint64
			if tr := e.obs.tracer; tr != nil {
				ev = tr.NextEvent()
				tr.Add(telemetry.Span{
					Event: ev, Name: "classify", End: "event",
					Start: start, Wall: time.Since(start),
					DelaySeconds: res.SpentSeconds, Degraded: true, Suspect: true,
					Err: err.Error(),
				})
			}
			detail := "suspect-data"
			var sde *SuspectDataError
			if errors.As(err, &sde) {
				detail = sde.Reason()
			}
			e.obs.events.Append(telemetry.Event{
				Trace: ev, TimeSeconds: now, Kind: "quarantine",
				Mode: ModeSuspectData.String(), Detail: detail,
				LatencySeconds: res.SpentSeconds, EnergyJoules: res.SensorEnergyJoules,
				Degraded: true, Suspect: true,
			})
		}
		e.slo.errorsTotal.Inc()
		r.ledgerLocked(e, res, err)
		return res, err
	}
	if r.ctrl != nil {
		// Close the adaptive loop: fold the event's channel evidence,
		// let probation roll a misbehaving fresh cut back, then ask the
		// controller whether the estimated channel prices a better cut.
		violated := res.DeadlineExceeded || res.SpentSeconds > r.policy.Deadline
		if ch := r.ctrl.ObserveEvent(now, r.lastOut, violated); ch != nil {
			r.install(e, ch)
		}
		if ch, cerr := r.ctrl.Evaluate(now); cerr == nil && ch != nil {
			r.install(e, ch)
		}
	}
	res.Breaker = r.breaker.State().String()
	// The ledger entry comes after the breaker read and the adaptive
	// folds above: the journal record must capture the post-event state
	// exactly, or a recovered engine would diverge from this one.
	r.ledgerLocked(e, res, nil)
	e.slo.classifyTotal.Inc()
	e.slo.observe(now, res.SpentSeconds, res.SensorEnergyJoules, res.ImputedValues)
	m.Histogram("xpro_classify_seconds",
		"Wall time of one Classify call.", telemetry.DurationBuckets).
		Observe(time.Since(start).Seconds())
	if res.Retries > 0 {
		m.Counter("xpro_transfer_retries_total",
			"Cross-end transfer re-sends made by the resilience policy.").
			Add(float64(res.Retries))
	}
	if res.LostTransfers > 0 {
		m.Counter("xpro_transfer_drops_total",
			"Cross-end transfers that exhausted their retry budget.").
			Add(float64(res.LostTransfers))
	}
	if res.DeadlineExceeded {
		m.Counter("xpro_deadline_exceeded_total",
			"Events whose modeled deadline budget ran out.").Inc()
	}
	if res.Degraded {
		e.slo.degraded[res.Mode].Inc()
	}
	var ev uint64
	if tr := e.obs.tracer; tr != nil {
		ev = tr.NextEvent()
		tr.Add(telemetry.Span{
			Event: ev, Name: "classify", End: "event",
			Start: start, Wall: time.Since(start),
			DelaySeconds: res.SpentSeconds, Degraded: res.Degraded,
			Suspect: res.Mode == ModeSuspectData,
		})
	}
	e.obs.events.Append(telemetry.Event{
		Trace: ev, TimeSeconds: now, Kind: "classify", Mode: res.Mode.String(),
		LatencySeconds: res.SpentSeconds, EnergyJoules: res.SensorEnergyJoules,
		Degraded: res.Degraded,
	})
	return res, nil
}

func (r *resilient) classifyLocked(e *Engine, seg biosig.Segment) (Result, error) {
	now := r.clock.Now()
	state := r.plan.At(now)
	// A node inside a node-crash/reboot window is off the air: the
	// event fails fast before the admission gate, the breaker or the
	// link can see it. classifyCtx still advances the clock for the
	// arrival — time passes whether or not the node is up — so a stream
	// of arrivals carries the node past the window's end.
	if state.NodeDown {
		if !r.down {
			r.crashLocked(e, state.Graceful, now)
		}
		return Result{}, &NodeDownError{
			AtSeconds: now, UntilSeconds: r.plan.DownUntil(now), Graceful: state.Graceful,
		}
	}
	if r.down {
		r.rejoinLocked(e, now)
	}
	// The admission gate runs before anything touches the modeled
	// timeline: a rejected segment advances no clock, trips no breaker
	// and draws nothing from the link RNG, so gated and ungated runs of
	// admissible streams replay identically.
	if r.integ.gateOn() {
		if reasons := r.integ.inspect(seg.Samples); len(reasons) > 0 {
			return Result{Degraded: true, Mode: ModeSuspectData},
				&SuspectDataError{Reasons: reasons}
		}
	}
	if state != r.lastState {
		// A fault window opened or closed since the previous event; the
		// degraded-path pricing a network report would compute may have
		// changed with it.
		r.lastState = state
		e.epoch.Add(1)
	}
	if r.ctrl != nil {
		// Ambient channel observation: what the modem can see of the
		// environment this instant, whether or not the active cut puts
		// payloads on the air — a controller parked on the in-sensor cut
		// still notices the channel recovering.
		r.ctrl.Estimator().ObserveState(state)
		r.lastOut = xsystem.Outcome{}
	}
	if r.browned.Load() {
		// Fleet brownout: sustained overload forced every engine onto
		// its cheap rung. Skip the cross-end attempt entirely — no link
		// retries, no backoff stalls — and serve from the precomputed
		// in-sensor fallback (or the software fallback if the sensor's
		// cell array is also browned out). Service time drops to the
		// fallback's stable cost, which is the whole point: capacity
		// rises instead of the queue.
		return r.fallbackClassify(e, seg, state, xsystem.Outcome{})
	}
	opt := &xsystem.ResilientOptions{
		Transport: r.link,
		Plan:      r.plan,
		Clock:     r.clock,
		Policy:    r.policy,
		Breaker:   r.breaker,
		Integrity: r.framing,
	}

	if r.breaker.Allow() {
		out, err := e.sys().ClassifyOver(seg, opt)
		r.lastOut = out
		if err == nil {
			res := Result{
				Label: out.Label, VotesUsed: out.VotesUsed, VotesTotal: out.VotesTotal,
				Retries: out.Retries, LostTransfers: out.LostTransfers,
				DeadlineExceeded: out.DeadlineExceeded, SpentSeconds: out.SpentSeconds,
				CorruptFrames: out.CorruptFrames, CorruptDelivered: out.CorruptDelivered,
				ImputedValues: out.ImputedValues, SensorEnergyJoules: out.SensorEnergy,
			}
			switch {
			case out.Complete:
				res.Mode = ModeFull
			case !out.Delivered:
				res.Mode, res.Degraded = ModeSensorLocal, true
			default:
				res.Mode, res.Degraded = ModePartial, true
			}
			// The gate's exit check: an event that leaned too hard on
			// imputation is quarantined — the label it produced rides
			// along for inspection, but the caller gets ErrSuspectData.
			if r.integ.gateOn() && out.WireValues > 0 {
				if f := float64(out.ImputedValues) / float64(out.WireValues); f > r.integ.maxImputedFraction() {
					res.Mode, res.Degraded = ModeSuspectData, true
					return res, &SuspectDataError{Reasons: []string{"excess-imputation"}}
				}
			}
			return res, nil
		}
		var nores *xsystem.NoResultError
		if !errors.As(err, &nores) {
			return Result{}, err // a genuine pipeline failure, not a fault
		}
		if r.failFast {
			return Result{}, fmt.Errorf("xpro: classify failed without fallback (FailFast): %w", err)
		}
		return r.fallbackClassify(e, seg, state, nores.Outcome)
	}
	if r.failFast {
		return Result{}, fmt.Errorf("xpro: circuit breaker open and FailFast set: %w",
			&faults.ErrLinkDown{At: r.clock.Now(), Until: r.plan.Until(r.clock.Now(), faults.LinkOutage)})
	}
	return r.fallbackClassify(e, seg, state, xsystem.Outcome{})
}

// install makes a controller Change live: the new system is stored
// atomically (the swap takes effect for the next event), the headline
// gauges refresh to describe the installed cut, and the decision lands
// on the span trace as a "recut-swap" / "recut-rollback" event span at
// the modeled decision time.
func (r *resilient) install(e *Engine, ch *adaptive.Change) {
	e.active.Store(ch.System)
	e.epoch.Add(1)
	e.publishReportGauges()
	var ev uint64
	if tr := e.obs.tracer; tr != nil {
		ev = tr.NextEvent()
		tr.Add(telemetry.Span{
			Event: ev, Name: "recut-" + ch.Kind, End: "event",
			Start: time.Now(), DelaySeconds: r.clock.Now(),
		})
	}
	sensor, _ := ch.Placement.Counts()
	e.obs.events.Append(telemetry.Event{
		Trace: ev, TimeSeconds: r.clock.Now(), Kind: "recut-" + ch.Kind,
		Detail: fmt.Sprintf("sensor-cells=%d", sensor),
	})
}

// usingFallback reports whether events are currently being routed
// around the cross-end cut: an open breaker fails fast straight to the
// in-sensor fallback, and a fleet brownout forces the same route.
func (r *resilient) usingFallback() bool {
	if r.browned.Load() {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.breaker.State() == faults.BreakerOpen
}

// setBrownedOut applies (or releases) the fleet brownout on this
// engine. The serving epoch is bumped on every edge so memoized
// network views and SLO reports rebuild against the rung the engine
// actually serves from.
func (e *Engine) setBrownedOut(on bool) {
	if e.res == nil {
		return
	}
	if e.res.browned.Swap(on) == on {
		return
	}
	e.epoch.Add(1)
}

// brownedOut reports whether the fleet brownout currently forces this
// engine's cheap rung.
func (e *Engine) brownedOut() bool {
	return e.res != nil && e.res.browned.Load()
}

// effectiveSystem is the system this engine is serving events from
// right now: the adaptive controller's active cut, or — while the
// circuit breaker holds the link open — the in-sensor fallback cut the
// degradation ladder routes through. Network reports aggregate over
// effective systems, so a degraded node is accounted as it actually
// runs, not as it was built.
func (e *Engine) effectiveSystem() *xsystem.System {
	if e.res != nil && e.res.usingFallback() {
		return e.res.fallback
	}
	return e.sys()
}

// fallbackClassify serves the event from a degraded path after the
// cross-end cut failed (or was skipped by an open breaker).
func (r *resilient) fallbackClassify(e *Engine, seg biosig.Segment, state faults.State, attempt xsystem.Outcome) (Result, error) {
	base := Result{
		Degraded: true,
		Retries:  attempt.Retries, LostTransfers: attempt.LostTransfers,
		DeadlineExceeded: attempt.DeadlineExceeded, SpentSeconds: attempt.SpentSeconds,
		SensorEnergyJoules: attempt.SensorEnergy,
	}
	if state.Brownout {
		// The sensor's cell array is below threshold: the in-sensor
		// fallback cannot compute, but sensing survives — stream raw
		// samples and classify in software on the aggregator.
		txEnergy, ok := r.sendRaw(e)
		base.SensorEnergyJoules += txEnergy
		if !ok {
			return Result{}, fmt.Errorf("xpro: sensor browned out and link unavailable: no path to a classification")
		}
		label, err := e.ens.Predict(seg)
		if err != nil {
			return Result{}, err
		}
		base.Label, base.Mode = label, ModeFallbackSoftware
		return base, nil
	}
	// The in-sensor fallback cut: every cell on the wearable, the label
	// available locally even with the link hard down.
	out, err := r.fallback.ClassifyOver(seg, &xsystem.ResilientOptions{Policy: r.policy})
	if err != nil {
		return Result{}, fmt.Errorf("xpro: fallback cut failed: %w", err)
	}
	base.Label, base.Mode = out.Label, ModeFallbackSensor
	base.VotesUsed, base.VotesTotal = out.VotesUsed, out.VotesTotal
	if base.SpentSeconds == 0 {
		base.SpentSeconds = out.SpentSeconds
	}
	// The fallback run's sensor-side energy rides on top of whatever the
	// failed attempt already spent; when the attempt sensed the segment
	// once, the fallback does not sense it again.
	fe := out.SensorEnergy
	if attempt.SensorEnergy > 0 {
		fe -= r.fallback.Problem().SensingEnergy
	}
	if fe > 0 {
		base.SensorEnergyJoules += fe
	}
	return base, nil
}

// sendRaw attempts to move the raw segment across the link under the
// retry policy (used by the software fallback during brownouts). It
// returns the sensor-side TX energy spent across all attempts,
// successful or not — retransmissions drain the battery either way.
func (r *resilient) sendRaw(e *Engine) (float64, bool) {
	var txEnergy float64
	for attempt := 0; attempt <= r.policy.MaxRetries; attempt++ {
		tr, err := r.link.Send(e.graph.SourceBits)
		txEnergy += tr.TxEnergy
		if err == nil {
			return txEnergy, true
		}
	}
	return txEnergy, false
}

// ClassifyResult is Classify with degradation provenance: the label
// plus how it was produced. On an engine without a Resilience policy it
// always reports ModeFull.
func (e *Engine) ClassifyResult(samples []float64) (Result, error) {
	seg := biosig.Segment{Samples: samples}
	if e.res == nil {
		label, err := e.sys().Classify(seg)
		if err != nil {
			return Result{}, err
		}
		return Result{Label: label, Mode: ModeFull}, nil
	}
	return e.res.classify(e, seg)
}

// StreamResult is one streamed classification with its degradation
// provenance.
type StreamResult struct {
	// Index is the 0-based position of the segment in the input stream.
	Index  int
	Result Result
	Err    error
}

// Stream classifies segments arriving on in until it is closed; results
// arrive in input order and the returned channel closes after the last.
// Without a Resilience policy events pipeline through the concurrent
// cell network; with one, events run sequentially through the
// resilience ladder (the modeled clock and breaker are a serial
// timeline) and faults degrade results instead of erroring.
func (e *Engine) Stream(in <-chan []float64) <-chan StreamResult {
	out := make(chan StreamResult)
	if e.res != nil {
		go func() {
			defer close(out)
			i := 0
			for s := range in {
				res, err := e.res.classify(e, biosig.Segment{Samples: s})
				out <- StreamResult{Index: i, Result: res, Err: err}
				i++
			}
		}()
		return out
	}
	sysIn := make(chan biosig.Segment)
	results := e.sys().Stream(sysIn)
	go func() {
		defer close(sysIn)
		for s := range in {
			sysIn <- biosig.Segment{Samples: s}
		}
	}()
	go func() {
		defer close(out)
		for r := range results {
			out <- StreamResult{Index: r.Index, Result: Result{Label: r.Label, Mode: ModeFull}, Err: r.Err}
		}
	}()
	return out
}

// SimulatedFaultyDelays runs n consecutive events through the
// discrete-event scheduler (internal/eventsim) under a fault plan:
// event i starts at i × event-period on the plan's timeline, so outage,
// brownout and stall windows stall the schedule and show up as
// delay-constraint violations. It returns each event's finish time
// (its latency); compare against Report().DelayPerEventSeconds to count
// violations. A nil plan reproduces the clean SimulatedDelay per event.
func (e *Engine) SimulatedFaultyDelays(plan *FaultPlan, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("xpro: event count %d must be positive", n)
	}
	p, err := plan.internal()
	if err != nil {
		return nil, err
	}
	in := e.simInput()
	in.Faults = p
	if plan != nil {
		in.FaultSeed = plan.Seed
	}
	period := 0.0
	if ev := e.sys().EventsPerSecond(); ev > 0 {
		period = 1 / ev
	}
	out := make([]float64, n)
	for i := range out {
		in.Start = float64(i) * period
		tr, err := eventsim.Simulate(in)
		if err != nil {
			return nil, err
		}
		out[i] = tr.Finish
	}
	return out, nil
}

// DegradeTiers is the k-way rung of the degradation ladder: when every
// hop above maxTier is unusable (dead uplink, crashed hub), the plan
// clamps its assignment to tiers <= maxTier — the N-tier analogue of
// ModeFallbackSensor, which is exactly DegradeTiers(0). The clamp is
// logged like any other decision; Resolve climbs back when the air
// clears.
func (p *TierPlan) DegradeTiers(maxTier int) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := p.ts.Tiered.K()
	if maxTier < 0 || maxTier >= k {
		return false, fmt.Errorf("xpro: degrade tier %d outside [0,%d)", maxTier, k)
	}
	next := p.ts.TierPlacement.CapAt(partition.Tier(maxTier))
	moved := !next.Equal(p.ts.TierPlacement)
	if moved {
		if err := p.install(next); err != nil {
			return false, err
		}
	}
	p.logDecision(TierDecision{Op: "degrade", Hop: maxTier, Moved: moved})
	return moved, nil
}
