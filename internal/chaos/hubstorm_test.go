package chaos

import (
	"reflect"
	"testing"

	"xpro/internal/partition"
	"xpro/internal/xsystem"
)

// stormTieredSystem lifts the fixture onto the three-tier chain and
// moves the home placement to the all-cloud extreme, so every event
// genuinely crosses both hops and a dark hub has traffic to kill.
func stormTieredSystem(t testing.TB, f *fixture) *xsystem.TieredSystem {
	t.Helper()
	ts := tieredSystem(t, f)
	home := partition.AllAt(ts.Graph, partition.Tier(ts.Tiered.K()-1))
	up, err := ts.WithTierPlacement(home)
	if err != nil {
		t.Fatal(err)
	}
	return up
}

func TestHubStormValidation(t *testing.T) {
	f := getFixture(t)
	ts := stormTieredSystem(t, f)
	if _, err := HubStormSoak(nil, f.test.Segs, HubStormConfig{}); err == nil {
		t.Error("nil system should error")
	}
	if _, err := HubStormSoak(ts, nil, HubStormConfig{}); err == nil {
		t.Error("empty segments should error")
	}
	if _, err := NewTieredRunner(nil, HubStormConfig{}); err == nil {
		t.Error("nil runner system should error")
	}
}

// TestHubStormDominance is the battery's acceptance property: under
// identical seeded hub storms the tier-collapse ladder completes at
// least 99% of events within deadline while the static k-way walk
// hard-fails every storm event.
func TestHubStormDominance(t *testing.T) {
	f := getFixture(t)
	ts := stormTieredSystem(t, f)
	res, err := HubStormSoak(ts, f.test.Segs, HubStormConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Static.StormEvents == 0 {
		t.Fatal("storm schedule never darkened the hub — the battery tested nothing")
	}
	if res.Static.NoResult == 0 {
		t.Errorf("static variant never hard-failed across %d storm events", res.Static.StormEvents)
	}
	if got := res.Tiered.InDeadlineFrac(); got < 0.99 {
		t.Errorf("tiered in-deadline fraction %.4f < 0.99 (violations=%d of %d)",
			got, res.Tiered.Violations, res.Tiered.Events)
	}
	if !res.TieredDominates() {
		t.Errorf("tiered does not dominate: static in-deadline %.4f (noresult %d), tiered %.4f",
			res.Static.InDeadlineFrac(), res.Static.NoResult, res.Tiered.InDeadlineFrac())
	}
	if res.Tiered.Collapses == 0 || res.Tiered.Recoveries == 0 {
		t.Errorf("ladder never cycled: collapses=%d recoveries=%d",
			res.Tiered.Collapses, res.Tiered.Recoveries)
	}
	if res.Tiered.NoResult > 0 {
		t.Errorf("tiered variant produced %d no-result events; the ladder must always answer", res.Tiered.NoResult)
	}
}

// The battery replays bit-identically: same seed, same per-event log,
// across repeated runs (and across -cpu values, which the CI job
// exercises with -cpu 1,4).
func TestHubStormReplayDeterminism(t *testing.T) {
	f := getFixture(t)
	ts := stormTieredSystem(t, f)
	cfg := HubStormConfig{Seed: 29, Events: 200}
	a, err := HubStormSoak(ts, f.test.Segs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HubStormSoak(ts, f.test.Segs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*HubStormVariant{
		{&a.Static, &b.Static}, {&a.Ladder, &b.Ladder}, {&a.Tiered, &b.Tiered},
	} {
		if !reflect.DeepEqual(pair[0].Log, pair[1].Log) {
			for i := range pair[0].Log {
				if pair[0].Log[i] != pair[1].Log[i] {
					t.Fatalf("%s replay diverged at event %d:\n a: %s\n b: %s",
						pair[0].Name, i, pair[0].Log[i], pair[1].Log[i])
				}
			}
			t.Fatalf("%s replay diverged in length", pair[0].Name)
		}
	}
}

// A mid-storm crash–recover cycle reproduces the golden run exactly:
// the runner is snapshotted inside the first storm, a fresh runner
// restores the snapshot, and every subsequent event — and the final
// snapshot — is bit-identical to the uninterrupted run.
func TestHubStormCrashRecover(t *testing.T) {
	f := getFixture(t)
	ts := stormTieredSystem(t, f)
	cfg := HubStormConfig{Seed: 31, Events: 240}
	const total = 240

	golden, err := NewTieredRunner(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs := f.test.Segs
	rows := make([]HubStormEvent, total)
	split := -1
	for i := 0; i < total; i++ {
		rows[i], err = golden.Serve(segs[i%len(segs)])
		if err != nil {
			t.Fatal(err)
		}
		if split < 0 && rows[i].StormNow && i > 0 {
			split = i + 1 // crash just after the storm's first hit
		}
	}
	if split < 0 || split >= total {
		t.Fatalf("no storm inside the battery (split=%d)", split)
	}

	a, err := NewTieredRunner(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < split; i++ {
		row, err := a.Serve(segs[i%len(segs)])
		if err != nil {
			t.Fatal(err)
		}
		if row != rows[i] {
			t.Fatalf("pre-crash event %d diverged:\n got %+v\nwant %+v", i, row, rows[i])
		}
	}
	ckpt := a.Snapshot()

	b, err := NewTieredRunner(ts, cfg) // the rebooted node
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	for i := split; i < total; i++ {
		row, err := b.Serve(segs[i%len(segs)])
		if err != nil {
			t.Fatal(err)
		}
		if row != rows[i] {
			t.Fatalf("post-recover event %d diverged:\n got %+v\nwant %+v", i, row, rows[i])
		}
	}
	if !reflect.DeepEqual(b.Snapshot(), golden.Snapshot()) {
		t.Fatalf("final snapshots diverged:\n got %+v\nwant %+v", b.Snapshot(), golden.Snapshot())
	}

	// A mismatched snapshot is rejected, not half-applied.
	if err := b.Restore(TieredRunnerState{}); err == nil {
		t.Fatal("hop-less snapshot should be rejected")
	}
}

// BenchmarkTieredWalk prices one event through the armed tier-collapse
// runtime — per-hop transports, ladder bookkeeping and all. Its
// trajectory lands in BENCH_tiered.json via the CI recorder.
func BenchmarkTieredWalk(b *testing.B) {
	f := getFixture(b)
	ts := stormTieredSystem(b, f)
	r, err := NewTieredRunner(ts, HubStormConfig{Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	segs := f.test.Segs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Serve(segs[i%len(segs)]); err != nil {
			b.Fatal(err)
		}
	}
}
