package xpro

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"xpro/internal/aggregator"
	"xpro/internal/bsn"
	"xpro/internal/telemetry"
)

// Network is a body sensor network: multiple wearable engines sharing
// one data aggregator (§5.7). Each node runs its own partitioned engine;
// links are conflict-free (the paper's MIMO assumption), while the
// aggregator CPU and battery are shared. All methods are safe for
// concurrent use.
type Network struct {
	engines map[string]*Engine
	names   []string
	obs     *Observer

	// mu guards the memoized shared-resource view. Rebuilding it per
	// query was fine for one caller; a fleet asking RealTimeOK at scrape
	// rate would reconstruct every engine's system on every call, so the
	// view is cached and keyed by each engine's serving epoch
	// (Engine.generation): adaptive re-cuts, breaker transitions and
	// fault-window edges all bump the epoch and invalidate the cache.
	mu         sync.Mutex
	cached     *bsn.Network
	cachedGens []uint64
	// rep memoizes the computed NetworkReport against the view it was
	// derived from; slo memoizes the fleet SLO report behind every
	// engine's quantile generations (see slo.go).
	rep    *NetworkReport
	repFor *bsn.Network
	slo    sloCache

	// fleet is the most recent Fleet served over this network (nil
	// until Serve). SLOReport and Health read its overload state —
	// shed counts and brownout — through this pointer; the fields are
	// patched outside the memo like the checkpoint ages, since sheds
	// move without bumping any engine's epoch.
	fleet atomic.Pointer[Fleet]
}

// NewNetwork assembles a network from named engines. The engines should
// be built with the same Process/Wireless configuration; names must be
// unique. Nodes are ordered by name, so network results — including
// bottleneck tie-breaks — are deterministic regardless of map iteration
// order.
func NewNetwork(engines map[string]*Engine) (*Network, error) {
	if len(engines) == 0 {
		return nil, errors.New("xpro: network needs at least one engine")
	}
	names := make([]string, 0, len(engines))
	for name := range engines {
		names = append(names, name)
	}
	sort.Strings(names)
	obs := newObserver(telemetry.DefaultTraceCapacity)
	n := &Network{engines: engines, names: names, obs: obs}
	if _, err := n.net(); err != nil { // validate the node set eagerly
		return nil, err
	}
	obs.setStatus("nodes", func() any { return names })
	obs.setStatus("report", func() any {
		rep, err := n.Report()
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return rep
	})
	obs.setEndpoint("/slo", func() (int, any) {
		rep, err := n.SLOReport()
		if err != nil {
			return 500, map[string]string{"error": err.Error()}
		}
		return 200, rep
	})
	obs.setEndpoint("/healthz", func() (int, any) {
		h := n.Health()
		if h.Status != "ok" {
			return 503, h
		}
		return 200, h
	})
	return n, nil
}

// net returns the shared-resource view of the network over each
// engine's currently effective system: the adaptive controller's
// active cut, or the in-sensor fallback while an engine's breaker
// holds its link open. The view is memoized behind the engines'
// serving epochs, so fleet-wide queries (Report, RealTimeOK, the
// /enginez status section) stop rebuilding every engine's system per
// call: a cache hit is len(engines) atomic loads. Any epoch change —
// re-cut, breaker transition, fault-window edge — rebuilds, keeping
// the view describing the network as it is now, degraded engines
// included.
func (n *Network) net() (*bsn.Network, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.netLocked()
}

// netLocked is net for callers already holding n.mu (Report and
// SLOReport memoize derived results under the same critical section).
func (n *Network) netLocked() (*bsn.Network, error) {
	gens := make([]uint64, len(n.names))
	fresh := n.cached != nil
	for i, name := range n.names {
		e := n.engines[name]
		if e == nil {
			return nil, fmt.Errorf("xpro: nil engine %q", name)
		}
		gens[i] = e.generation()
		if fresh && gens[i] != n.cachedGens[i] {
			fresh = false
		}
	}
	if fresh {
		n.obs.reg.Counter("xpro_network_view_hits_total",
			"Network report queries served from the memoized view.").Inc()
		return n.cached, nil
	}
	nodes := make([]bsn.Node, 0, len(n.names))
	for _, name := range n.names {
		nodes = append(nodes, bsn.Node{Name: name, Sys: n.engines[name].effectiveSystem()})
	}
	nw, err := bsn.New(aggregator.CortexA8(), nodes...)
	if err != nil {
		return nil, err
	}
	nw.Metrics = n.obs.reg
	n.obs.reg.Counter("xpro_network_view_rebuilds_total",
		"Network report queries that rebuilt the per-engine view.").Inc()
	n.cached, n.cachedGens = nw, gens
	return nw, nil
}

// NetworkReport summarizes the shared-resource behaviour of the network.
type NetworkReport struct {
	// NodeLifetimeHours is each node's battery life (unaffected by the
	// other nodes).
	NodeLifetimeHours map[string]float64
	// BottleneckNode has the shortest battery life.
	BottleneckNode  string
	BottleneckHours float64
	// AggregatorLifetimeHours is the shared smartphone battery under
	// the combined event load.
	AggregatorLifetimeHours float64
	// AggregatorUtilization is the fraction of CPU time the combined
	// back-end work consumes (≥ 1 means it cannot keep up).
	AggregatorUtilization float64
	// WorstCaseDelaySeconds is each node's end-to-end delay when every
	// node fires simultaneously (back-end work serializes).
	WorstCaseDelaySeconds map[string]float64
	// DownNodes lists (sorted) the subjects whose nodes are currently
	// inside a node-crash/reboot fault window: their engines fail fast
	// with ErrNodeDown instead of serving. The shared-resource numbers
	// above still price them as built — a crashed node's battery is not
	// draining, but it also is not serving, and the fleet re-cut
	// controller reads this list to react.
	DownNodes []string
}

// Report computes the network summary over each engine's currently
// effective system, so degraded-mode engines (open breaker, adaptive
// re-cut) are accounted as they run. The computed report is memoized
// against the shared-resource view it derives from: while no engine's
// serving epoch moves, repeated calls copy two pre-sized maps instead
// of re-pricing every node.
func (n *Network) Report() (NetworkReport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nw, err := n.netLocked()
	if err != nil {
		return NetworkReport{}, err
	}
	if n.rep != nil && n.repFor == nw {
		return n.rep.copyForCaller(), nil
	}
	lifetimes, err := nw.NodeLifetimes()
	if err != nil {
		return NetworkReport{}, err
	}
	name, hours, err := nw.BottleneckNode()
	if err != nil {
		return NetworkReport{}, err
	}
	aggLife, err := nw.AggregatorLifetimeHours()
	if err != nil {
		return NetworkReport{}, err
	}
	rep := NetworkReport{
		NodeLifetimeHours:       lifetimes,
		BottleneckNode:          name,
		BottleneckHours:         hours,
		AggregatorLifetimeHours: aggLife,
		AggregatorUtilization:   nw.AggregatorUtilization(),
		WorstCaseDelaySeconds:   nw.WorstCaseDelay(),
		DownNodes:               n.downNodesLocked(),
	}
	n.rep, n.repFor = &rep, nw
	return rep.copyForCaller(), nil
}

// copyForCaller hands out the memoized report with its own pre-sized
// maps, so one caller's mutation cannot corrupt another's view.
func (r NetworkReport) copyForCaller() NetworkReport {
	life := make(map[string]float64, len(r.NodeLifetimeHours))
	for k, v := range r.NodeLifetimeHours {
		life[k] = v
	}
	r.NodeLifetimeHours = life
	delay := make(map[string]float64, len(r.WorstCaseDelaySeconds))
	for k, v := range r.WorstCaseDelaySeconds {
		delay[k] = v
	}
	r.WorstCaseDelaySeconds = delay
	r.DownNodes = append([]string(nil), r.DownNodes...)
	return r
}

// downNodesLocked lists the subjects currently inside a node-down
// fault window, in the network's sorted name order. Caller holds n.mu.
func (n *Network) downNodesLocked() []string {
	var down []string
	for _, name := range n.names {
		if e := n.engines[name]; e.res != nil {
			if live, _, _, _ := e.res.recoveryStatus(); !live {
				down = append(down, name)
			}
		}
	}
	return down
}

// RealTimeOK reports whether every node meets the delay limit even under
// simultaneous firing and the aggregator sustains the combined rate —
// evaluated against each engine's currently effective system (a node
// degraded onto its in-sensor fallback is judged on the fallback's
// delay, not the cut it was built with).
func (n *Network) RealTimeOK(limitSeconds float64) bool {
	nw, err := n.net()
	if err != nil {
		return false
	}
	return nw.RealTimeOK(limitSeconds)
}
