// Package frame implements the framed wire codec of the data-integrity
// layer: every Q-quantized payload crossing the body-area link is split
// into transceiver packets (internal/wireless), and each packet is
// wrapped in a frame carrying a sequence number, an explicit payload
// length and a CRC-16/CCITT checksum over header and payload.
//
// The paper's transceiver simulator (§4.2) charges an 8-bit header per
// packet but assumes every delivered packet is bit-perfect. Real
// implant-class radios at the 0.3–3 nJ/bit operating points the paper
// cites suffer residual bit errors, duplication and reordering; the
// frame layer is what turns those into detectable, repairable events:
//
//   - the CRC rejects corrupted frames, which are retried exactly like
//     losses (and charged the same energy);
//   - the sequence number lets the receiver-side Reassembler detect
//     gaps, duplicates and reordering without ground truth;
//   - samples lost beyond the retry budget are repaired by a pluggable
//     imputation policy (hold-last, linear, zero).
//
// The layer costs IntegrityBits extra on-air bits per frame, priced
// through the same per-bit transceiver energy model as the payload.
package frame

import (
	"errors"
	"fmt"
)

const (
	// HeaderBytes is the frame header: sequence number + payload length.
	HeaderBytes = 2
	// TrailerBytes is the CRC-16 trailer.
	TrailerBytes = 2
	// IntegrityBits is the per-frame on-air overhead of the integrity
	// layer beyond the transceiver's own 8-bit packet header: 8-bit
	// sequence number, 8-bit length and 16-bit CRC.
	IntegrityBits = 8 * (HeaderBytes + TrailerBytes)
	// MaxPayloadBytes is the largest payload one frame can carry (the
	// length field is one byte).
	MaxPayloadBytes = 255
)

// Frame is one decoded wire frame.
type Frame struct {
	// Seq is the 8-bit wrapping sequence number.
	Seq uint8
	// Payload aliases the decoded buffer (no copy).
	Payload []byte
}

// Typed decode failures. Decode wraps them with detail; match with
// errors.Is.
var (
	// ErrTruncated reports a buffer shorter than a minimal frame.
	ErrTruncated = errors.New("frame: buffer shorter than a minimal frame")
	// ErrLength reports a length field that disagrees with the buffer.
	ErrLength = errors.New("frame: length field disagrees with buffer size")
	// ErrCRC reports a checksum mismatch: the frame was corrupted in
	// flight.
	ErrCRC = errors.New("frame: CRC mismatch")
	// ErrTooLarge reports an Encode payload over MaxPayloadBytes.
	ErrTooLarge = errors.New("frame: payload exceeds 255 bytes")
)

// crc16Table is the CRC-16/CCITT-FALSE table (polynomial 0x1021).
var crc16Table = func() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}()

// CRC16 computes the CRC-16/CCITT-FALSE checksum (poly 0x1021, init
// 0xFFFF) of data. It detects every single- and double-bit error over
// frames far longer than the 32-byte payloads used here.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return crc
}

// Encode wraps payload in a frame:
//
//	[seq 1B][len 1B][payload ≤255B][crc16 2B big-endian]
//
// The CRC covers seq, len and payload.
func Encode(seq uint8, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayloadBytes {
		return nil, fmt.Errorf("%w (%d)", ErrTooLarge, len(payload))
	}
	buf := make([]byte, 0, HeaderBytes+len(payload)+TrailerBytes)
	buf = append(buf, seq, byte(len(payload)))
	buf = append(buf, payload...)
	crc := CRC16(buf)
	return append(buf, byte(crc>>8), byte(crc)), nil
}

// Decode parses one frame. The returned payload aliases buf. Every
// corruption is surfaced as a typed error: a frame is never silently
// mis-sliced — when Decode returns nil, len(Frame.Payload) equals the
// frame's length field and the CRC verified over header and payload.
func Decode(buf []byte) (Frame, error) {
	if len(buf) < HeaderBytes+TrailerBytes {
		return Frame{}, fmt.Errorf("%w (%d bytes)", ErrTruncated, len(buf))
	}
	n := int(buf[1])
	if len(buf) != HeaderBytes+n+TrailerBytes {
		return Frame{}, fmt.Errorf("%w (field %d, buffer %d)", ErrLength, n, len(buf))
	}
	body := buf[:len(buf)-TrailerBytes]
	want := uint16(buf[len(buf)-2])<<8 | uint16(buf[len(buf)-1])
	if got := CRC16(body); got != want {
		return Frame{}, fmt.Errorf("%w (want %#04x, got %#04x)", ErrCRC, want, got)
	}
	return Frame{Seq: buf[0], Payload: buf[HeaderBytes : HeaderBytes+n]}, nil
}
