// Package admit implements deadline-aware admission control for the
// fleet serving layer. It sits in front of the sharded worker pool
// and decides, per event, whether the event should be accepted or
// shed before it is ever enqueued.
//
// Three signals feed the decision:
//
//   - Queue occupancy vs a per-class share. Each priority class may
//     only use a fraction of the queue; the shares are monotone
//     (batch < interactive < alert ≤ 1.0) which yields strict-priority
//     shedding: as the queue fills, batch traffic is refused first,
//     then interactive, and alert traffic is only ever refused by the
//     pool itself when the queue is completely full.
//   - Estimated queue wait vs the event's deadline budget. The
//     controller keeps an EWMA of observed per-event service time;
//     queueLen × EWMA estimates how long a new arrival would wait.
//     If that estimate already busts the budget the event is shed at
//     the door instead of timing out after consuming a queue slot.
//   - CoDel-style sojourn tracking. The controller watches the
//     queue delay actually experienced by dequeued events. If the
//     delay stays above target for a full interval the controller
//     enters a dropping state during which the lowest class is shed
//     outright, draining the standing queue.
//
// All methods take explicit timestamps (seconds on an arbitrary
// monotone clock) so the same controller runs on the modeled fault
// clock in deterministic batteries and on host uptime in the live
// fleet. The controller itself never reads wall time.
package admit

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Class is a request priority class. Higher values are more
// important and are shed later. The zero value is Batch, the least
// important class, so an unset class never starves real traffic of
// its share by accident.
type Class uint8

const (
	// Batch is background/bulk traffic: re-analysis, backfill,
	// export. Shed first.
	Batch Class = iota
	// Interactive is user-facing traffic with a human waiting.
	Interactive
	// Alert is safety-critical traffic (arrhythmia alarms). Never
	// shed by the admission controller; only a completely full
	// queue refuses it.
	Alert

	numClasses = 3
)

// NumClasses is the number of priority classes.
const NumClasses = int(numClasses)

// String returns the canonical lowercase class name, used as the
// metric label value in xpro_admit_shed_total{class=...}.
func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case Interactive:
		return "interactive"
	case Alert:
		return "alert"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass maps a canonical class name back to its Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "batch":
		return Batch, nil
	case "interactive":
		return Interactive, nil
	case "alert":
		return Alert, nil
	}
	return Batch, fmt.Errorf("admit: unknown class %q", s)
}

// ErrShed is the sentinel matched by errors.Is for admission
// rejections. The concrete error is always a *ShedError.
var ErrShed = errors.New("admission shed")

// ShedError reports that an event was refused by the admission
// controller before reaching the worker pool. It carries enough
// context for the caller to implement informed backoff.
type ShedError struct {
	// Class is the priority class of the shed event.
	Class Class
	// Reason is "occupancy", "deadline" or "codel".
	Reason string
	// EstimatedWaitSeconds is the queue-wait estimate at decision
	// time (queue length × service-time EWMA).
	EstimatedWaitSeconds float64
	// BudgetSeconds is the deadline budget the event carried (0 if
	// none and the class default was also unset).
	BudgetSeconds float64
	// RetryAfterSeconds hints how long the caller should wait
	// before retrying: the time for the standing queue to drain at
	// the current service rate, floored at the CoDel target.
	RetryAfterSeconds float64
	// QueueLen and QueueDepth describe the shard queue at decision
	// time.
	QueueLen, QueueDepth int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission shed %s event (%s): estimated wait %.3fs, budget %.3fs, queue %d/%d, retry after %.3fs",
		e.Class, e.Reason, e.EstimatedWaitSeconds, e.BudgetSeconds, e.QueueLen, e.QueueDepth, e.RetryAfterSeconds)
}

// Is reports sentinel identity so errors.Is(err, ErrShed) matches.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// Config parameterises a Controller. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// TargetDelaySeconds is the CoDel target: the acceptable
	// standing queue delay. Sojourns above it for a full interval
	// trip the dropping state.
	TargetDelaySeconds float64
	// IntervalSeconds is the CoDel interval: how long the delay
	// must stay above target before dropping starts.
	IntervalSeconds float64
	// Alpha is the EWMA smoothing factor for the service-time and
	// queue-delay estimators, in (0, 1]. Larger reacts faster.
	Alpha float64
	// BatchShare and InteractiveShare are the queue-occupancy
	// fractions those classes may use; Alert always has share 1.0.
	// Must satisfy 0 < BatchShare ≤ InteractiveShare ≤ 1.
	BatchShare, InteractiveShare float64
	// BatchBudgetSeconds, InteractiveBudgetSeconds and
	// AlertBudgetSeconds are default deadline budgets applied when
	// an event carries none. Zero means that class has no default
	// budget (only occupancy and CoDel apply).
	BatchBudgetSeconds       float64
	InteractiveBudgetSeconds float64
	AlertBudgetSeconds       float64
}

// DefaultConfig returns the admission parameters used by the fleet
// when overload protection is enabled without further tuning.
func DefaultConfig() Config {
	return Config{
		TargetDelaySeconds: 0.005,
		IntervalSeconds:    0.100,
		Alpha:              0.2,
		BatchShare:         0.5,
		InteractiveShare:   0.8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case !(c.TargetDelaySeconds > 0) || !finite(c.TargetDelaySeconds):
		return fmt.Errorf("admit: TargetDelaySeconds must be finite and > 0, got %v", c.TargetDelaySeconds)
	case !(c.IntervalSeconds > 0) || !finite(c.IntervalSeconds):
		return fmt.Errorf("admit: IntervalSeconds must be finite and > 0, got %v", c.IntervalSeconds)
	case !(c.Alpha > 0 && c.Alpha <= 1):
		return fmt.Errorf("admit: Alpha must be in (0, 1], got %v", c.Alpha)
	case !(c.BatchShare > 0) || !(c.BatchShare <= c.InteractiveShare) || !(c.InteractiveShare <= 1):
		return fmt.Errorf("admit: shares must satisfy 0 < BatchShare <= InteractiveShare <= 1, got %v, %v",
			c.BatchShare, c.InteractiveShare)
	case c.BatchBudgetSeconds < 0 || c.InteractiveBudgetSeconds < 0 || c.AlertBudgetSeconds < 0:
		return fmt.Errorf("admit: class budgets must be >= 0")
	case !finite(c.BatchBudgetSeconds) || !finite(c.InteractiveBudgetSeconds) || !finite(c.AlertBudgetSeconds):
		return fmt.Errorf("admit: class budgets must be finite")
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// share returns the queue-occupancy fraction a class may use.
func (c Config) share(cl Class) float64 {
	switch cl {
	case Batch:
		return c.BatchShare
	case Interactive:
		return c.InteractiveShare
	default:
		return 1.0
	}
}

// budget returns the default deadline budget for a class.
func (c Config) budget(cl Class) float64 {
	switch cl {
	case Batch:
		return c.BatchBudgetSeconds
	case Interactive:
		return c.InteractiveBudgetSeconds
	default:
		return c.AlertBudgetSeconds
	}
}

// Controller is a deadline-aware admission controller. It is safe
// for concurrent use; every decision is made under one mutex so the
// estimator state a decision reads is consistent.
type Controller struct {
	mu  sync.Mutex
	cfg Config

	// service-time EWMA (seconds per event).
	svcEWMA float64
	haveSvc bool

	// queue-delay EWMA over observed sojourns.
	delayEWMA float64
	haveDelay bool

	// CoDel state on the caller-provided clock.
	firstAbove    float64 // when sojourn first stayed above target; valid if aboveArmed
	aboveArmed    bool
	dropping      bool
	droppingSince float64

	sheds    [numClasses]uint64
	admitted [numClasses]uint64
}

// NewController builds a Controller from cfg. cfg must Validate.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Config returns the controller's configuration.
func (a *Controller) Config() Config { return a.cfg }

// ObserveService records a completed event's service time (seconds
// of work, excluding queue wait) into the EWMA estimator.
func (a *Controller) ObserveService(d float64) {
	if !(d >= 0) || !finite(d) {
		return
	}
	a.mu.Lock()
	if !a.haveSvc {
		a.svcEWMA, a.haveSvc = d, true
	} else {
		a.svcEWMA += a.cfg.Alpha * (d - a.svcEWMA)
	}
	a.mu.Unlock()
}

// ObserveSojourn records the queue delay an event experienced
// between acceptance and the start of service, advancing the CoDel
// state machine at time now.
func (a *Controller) ObserveSojourn(now, d float64) {
	if !(d >= 0) || !finite(d) || !finite(now) {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.haveDelay {
		a.delayEWMA, a.haveDelay = d, true
	} else {
		a.delayEWMA += a.cfg.Alpha * (d - a.delayEWMA)
	}
	if d < a.cfg.TargetDelaySeconds {
		// Sojourn back under target: leave dropping, disarm.
		a.aboveArmed = false
		a.dropping = false
		return
	}
	if !a.aboveArmed {
		a.aboveArmed = true
		a.firstAbove = now + a.cfg.IntervalSeconds
		return
	}
	if !a.dropping && now >= a.firstAbove {
		a.dropping = true
		a.droppingSince = now
	}
}

// Dropping reports whether the CoDel state machine is in its
// dropping state (standing queue above target for a full interval).
func (a *Controller) Dropping() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropping
}

// QueueDelay returns the EWMA of observed queue sojourns. This is
// the signal the brownout controller watches.
func (a *Controller) QueueDelay() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.delayEWMA
}

// ServiceEstimate returns the service-time EWMA (seconds/event).
func (a *Controller) ServiceEstimate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.svcEWMA
}

// EstimatedWait returns the queue-wait estimate for an arrival that
// finds queueLen events ahead of it.
func (a *Controller) EstimatedWait(queueLen int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.estWaitLocked(queueLen)
}

func (a *Controller) estWaitLocked(queueLen int) float64 {
	if queueLen <= 0 || !a.haveSvc {
		return 0
	}
	return float64(queueLen) * a.svcEWMA
}

func (a *Controller) retryAfterLocked(queueLen int) float64 {
	r := a.estWaitLocked(queueLen)
	if r < a.delayEWMA {
		r = a.delayEWMA
	}
	if r < a.cfg.TargetDelaySeconds {
		r = a.cfg.TargetDelaySeconds
	}
	return r
}

// Decide makes the admission decision for one event at time now.
// queueLen/queueDepth describe the destination shard queue before
// enqueue; budgetSeconds is the event's deadline budget (≤ 0 means
// use the class default). It returns nil to admit, or a *ShedError.
func (a *Controller) Decide(now float64, class Class, queueLen, queueDepth int, budgetSeconds float64) *ShedError {
	a.mu.Lock()
	defer a.mu.Unlock()
	if class >= numClasses {
		class = Alert // unknown classes are treated as most important, never silently shed
	}
	if budgetSeconds <= 0 {
		budgetSeconds = a.cfg.budget(class)
	}
	shed := func(reason string) *ShedError {
		a.sheds[class]++
		return &ShedError{
			Class:                class,
			Reason:               reason,
			EstimatedWaitSeconds: a.estWaitLocked(queueLen),
			BudgetSeconds:        budgetSeconds,
			RetryAfterSeconds:    a.retryAfterLocked(queueLen),
			QueueLen:             queueLen,
			QueueDepth:           queueDepth,
		}
	}
	// Strict-priority occupancy gate: a class may only occupy its
	// share of the queue. Shares are monotone in class so lower
	// classes always hit their ceiling first.
	if queueDepth > 0 {
		limit := int(a.cfg.share(class) * float64(queueDepth))
		if limit < 1 {
			limit = 1
		}
		if queueLen >= limit && class != Alert {
			return shed("occupancy")
		}
	}
	// Deadline gate: don't enqueue work that will already be late.
	if budgetSeconds > 0 {
		if w := a.estWaitLocked(queueLen); w > budgetSeconds {
			return shed("deadline")
		}
	}
	// CoDel dropping state: drain the standing queue by refusing
	// the lowest class outright.
	if a.dropping && class == Batch {
		return shed("codel")
	}
	a.admitted[class]++
	return nil
}

// RetryAfter returns the retry-after hint for the current queue
// state, used to decorate pool-level OverloadedError rejections.
func (a *Controller) RetryAfter(queueLen int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retryAfterLocked(queueLen)
}

// Sheds returns the cumulative shed count per class.
func (a *Controller) Sheds() [NumClasses]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sheds
}

// Admitted returns the cumulative admitted count per class.
func (a *Controller) Admitted() [NumClasses]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted
}
