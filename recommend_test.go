package xpro

import (
	"errors"
	"testing"
)

func TestRecommend(t *testing.T) {
	best, all, err := Recommend(Requirements{
		Case:             "E1",
		MinLifetimeHours: 1000,
		MinAccuracy:      0.8,
		// Restrict the sweep to keep the test fast (training is shared,
		// but every point runs the generator).
		Processes:      []Process{Process90nm, Process45nm},
		WirelessModels: []Wireless{WirelessModel2, WirelessModel3},
		PruneOptions:   []float64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("evaluated %d points, want 4", len(all))
	}
	if !best.Meets {
		t.Fatal("winner does not meet requirements")
	}
	// Points are sorted by lifetime, and the winner is the first
	// feasible one.
	for i := 1; i < len(all); i++ {
		if all[i].Report.SensorLifetimeHours > all[i-1].Report.SensorLifetimeHours {
			t.Error("recommendations not sorted by lifetime")
		}
	}
	for _, r := range all {
		if r.Meets {
			if r.Report.SensorLifetimeHours > best.Report.SensorLifetimeHours {
				t.Error("a feasible point outlives the winner")
			}
			break
		}
	}
	// The winner's report must actually satisfy the constraints.
	if best.Report.DelayPerEventSeconds > 4e-3 || best.Report.SensorLifetimeHours < 1000 || best.Report.SoftwareAccuracy < 0.8 {
		t.Errorf("winner violates requirements: %+v", best.Report)
	}
}

func TestRecommendInfeasible(t *testing.T) {
	_, all, err := Recommend(Requirements{
		Case:             "C1",
		MinLifetimeHours: 1e9, // impossible
		Processes:        []Process{Process90nm},
		WirelessModels:   []Wireless{WirelessModel2},
		PruneOptions:     []float64{0},
	})
	if !errors.Is(err, ErrNoFeasibleDesign) {
		t.Fatalf("err = %v, want ErrNoFeasibleDesign", err)
	}
	if len(all) == 0 {
		t.Error("infeasible search should still report the evaluated points")
	}
}

func TestRecommendValidation(t *testing.T) {
	if _, _, err := Recommend(Requirements{}); err == nil {
		t.Error("missing case should error")
	}
	if _, _, err := Recommend(Requirements{Case: "ZZ", Processes: []Process{Process90nm}, WirelessModels: []Wireless{WirelessModel2}, PruneOptions: []float64{0}}); err == nil {
		t.Error("unknown case should error")
	}
}
