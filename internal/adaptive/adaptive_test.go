package adaptive

import (
	"math"
	"testing"

	"xpro/internal/faults"
	"xpro/internal/wireless"
	"xpro/internal/xsystem"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := map[string]Config{
		"zero alpha":          mut(func(c *Config) { c.Alpha = 0 }),
		"alpha above one":     mut(func(c *Config) { c.Alpha = 1.5 }),
		"NaN alpha":           mut(func(c *Config) { c.Alpha = math.NaN() }),
		"zero dwell":          mut(func(c *Config) { c.MinDwellSeconds = 0 }),
		"negative dwell":      mut(func(c *Config) { c.MinDwellSeconds = -1 }),
		"NaN dwell":           mut(func(c *Config) { c.MinDwellSeconds = math.NaN() }),
		"infinite dwell":      mut(func(c *Config) { c.MinDwellSeconds = math.Inf(1) }),
		"zero threshold":      mut(func(c *Config) { c.ImprovementThreshold = 0 }),
		"threshold of one":    mut(func(c *Config) { c.ImprovementThreshold = 1 }),
		"NaN threshold":       mut(func(c *Config) { c.ImprovementThreshold = math.NaN() }),
		"zero probation":      mut(func(c *Config) { c.ProbationEvents = 0 }),
		"negative probation":  mut(func(c *Config) { c.ProbationEvents = -3 }),
		"sub-unity inflation": mut(func(c *Config) { c.MaxInflation = 0.5 }),
		"NaN inflation":       mut(func(c *Config) { c.MaxInflation = math.NaN() }),
		"infinite inflation":  mut(func(c *Config) { c.MaxInflation = math.Inf(1) }),
	}
	for name, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
}

func TestNewEstimatorValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1.1, math.NaN(), math.Inf(1)} {
		if _, err := NewEstimator(alpha); err == nil {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
	if _, err := NewEstimator(0.3); err != nil {
		t.Fatal(err)
	}
}

func TestObserveStateFolds(t *testing.T) {
	e, _ := NewEstimator(0.5)
	e.ObserveState(faults.State{Loss: 0.8})
	if got := e.Estimate().Loss; math.Abs(got-0.4) > 1e-12 {
		t.Errorf("loss after one 0.8 sample at alpha 0.5: %v, want 0.4", got)
	}
	e.ObserveState(faults.State{Loss: 0.8, LinkDown: true})
	if got := e.Estimate().Outage; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("outage after one down sample: %v, want 0.5", got)
	}
	// NaN and out-of-range garbage must not poison the estimate.
	before := e.Estimate()
	e.ObserveState(faults.State{Loss: math.NaN()})
	if got := e.Estimate().Loss; got != before.Loss {
		t.Errorf("NaN loss sample moved the estimate: %v -> %v", before.Loss, got)
	}
	e.ObserveState(faults.State{Loss: 7})
	if got := e.Estimate().Loss; !(got <= 1) {
		t.Errorf("over-range sample pushed the estimate out of [0,1]: %v", got)
	}
}

func TestSendStatsBatching(t *testing.T) {
	e, _ := NewEstimator(1) // alpha 1: estimate = last folded sample
	one := wireless.Transfer{DataBits: 16}

	// Single-packet sends stay pending until minFlushAttempts packet
	// attempts have accumulated, however many times Flush runs.
	e.ObserveSendStats(one, 1, nil) // 2 attempts, 1 failed
	e.Flush()
	if got := e.Estimate().Loss; got != 0 {
		t.Fatalf("loss folded from %d pending attempts: %v", 2, got)
	}
	for i := 0; i < 3; i++ {
		e.ObserveSendStats(one, 1, nil) // +2 attempts, +1 failed each
	}
	e.Flush() // 8 attempts, 4 failed
	if got := e.Estimate().Loss; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("aggregated loss sample: %v, want 0.5", got)
	}

	// A hard outage folds outage immediately and leaves loss pending.
	e.ObserveSendStats(wireless.Transfer{}, 0, &faults.ErrLinkDown{})
	if got := e.Estimate().Outage; got != 1 {
		t.Errorf("outage after link-down send: %v, want 1", got)
	}
}

func TestObserveOutcomeFoldsOutageOnly(t *testing.T) {
	e, _ := NewEstimator(1)
	e.ObserveOutcome(xsystem.Outcome{TransfersOK: 3, HardOutage: true})
	if got := e.Estimate().Outage; got != 1 {
		t.Errorf("outage after hard-outage outcome: %v, want 1", got)
	}
	e.ObserveOutcome(xsystem.Outcome{TransfersOK: 3})
	if got := e.Estimate().Outage; got != 0 {
		t.Errorf("outage after clean outcome: %v, want 0", got)
	}
	// An event that put nothing on the air observes nothing.
	before := e.Estimate()
	e.ObserveOutcome(xsystem.Outcome{})
	if got := e.Estimate(); got != before {
		t.Errorf("airless outcome moved the estimate: %+v -> %+v", before, got)
	}
}

func TestObserveBreaker(t *testing.T) {
	e, _ := NewEstimator(1)
	e.ObserveBreaker(faults.BreakerOpen)
	if got := e.Estimate().Outage; got != 1 {
		t.Errorf("outage after breaker open: %v, want 1", got)
	}
	e.ObserveBreaker(faults.BreakerHalfOpen)
	if got := e.Estimate().Outage; got != 1 {
		t.Errorf("half-open probe moved the outage estimate: %v", got)
	}
	e.ObserveBreaker(faults.BreakerClosed)
	if got := e.Estimate().Outage; got != 0 {
		t.Errorf("outage after breaker close: %v, want 0", got)
	}
}

func TestInflation(t *testing.T) {
	cases := []struct {
		est  Estimate
		cap  float64
		want float64
	}{
		{Estimate{}, 64, 1},
		{Estimate{Loss: 0.5}, 64, 2},
		{Estimate{Loss: 0.75}, 64, 4},
		{Estimate{Loss: 0.5, Outage: 0.2}, 64, 2.5},
		{Estimate{Loss: 0.99}, 10, 10},       // capped
		{Estimate{Outage: 0.6}, 64, 64},      // hard outage pins to cap
		{Estimate{Loss: 1}, 64, 64},          // total loss pins to cap
		{Estimate{Loss: math.NaN()}, 64, 64}, // garbage pins to cap
		{Estimate{Loss: 0.5}, 0.5, 1},        // sub-unity cap clamps to 1
	}
	for _, c := range cases {
		if got := c.est.Inflation(c.cap); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Inflation(%+v, cap %v) = %v, want %v", c.est, c.cap, got, c.want)
		}
	}
}

func TestEffectiveModel(t *testing.T) {
	base := wireless.Model2()
	eff := Estimate{Loss: 0.5}.EffectiveModel(base, 64)
	if math.Abs(eff.TxJPerBit-2*base.TxJPerBit) > 1e-18 ||
		math.Abs(eff.RxJPerBit-2*base.RxJPerBit) > 1e-18 {
		t.Errorf("per-bit energies not doubled at 2x inflation: %+v", eff)
	}
	if math.Abs(eff.RateBps-base.RateBps/2) > 1e-9 {
		t.Errorf("rate not halved at 2x inflation: %v", eff.RateBps)
	}
	clean := Estimate{}.EffectiveModel(base, 64)
	if clean != base {
		t.Errorf("clean estimate changed the model: %+v", clean)
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(Config{}, nil, 1, nil); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewController(DefaultConfig(), nil, 1, nil); err == nil {
		t.Error("nil system accepted")
	}
}
