package adc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("0 bits should error")
	}
	if _, err := New(32); err == nil {
		t.Error("32 bits should error")
	}
	c, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Levels() != 256 {
		t.Errorf("levels = %d, want 256", c.Levels())
	}
	// Conversion energy is calibrated to the cited 8-bit SAR (~1.9 nJ).
	if math.Abs(c.EnergyPerConversion-1.9e-9) > 1e-12 {
		t.Errorf("8-bit conversion energy = %v, want 1.9 nJ", c.EnergyPerConversion)
	}
}

func TestConvertClipping(t *testing.T) {
	c, _ := New(8)
	if c.Convert(-0.5) != 0 {
		t.Error("below range should clip to code 0")
	}
	if c.Convert(2.0) != 255 {
		t.Error("above range should clip to the top code")
	}
	if c.Convert(0) != 0 || c.Convert(0.999999) != 255 {
		t.Error("range endpoints wrong")
	}
}

func TestDequantizeMidRise(t *testing.T) {
	c, _ := New(4) // 16 levels of width 1/16
	if got := c.Dequantize(0); math.Abs(got-1.0/32) > 1e-15 {
		t.Errorf("code 0 reconstructs to %v, want mid-rise 1/32", got)
	}
	// Round trip error bounded by half an LSB.
	for v := 0.0; v < 1; v += 0.013 {
		q := c.Dequantize(c.Convert(v))
		if math.Abs(q-v) > 0.5/16+1e-12 {
			t.Errorf("v=%v reconstructs to %v (error > LSB/2)", v, q)
		}
	}
}

func TestSampleEnergy(t *testing.T) {
	c, _ := New(16)
	seg := make([]float64, 128)
	for i := range seg {
		seg[i] = float64(i) / 128
	}
	digital, energy := c.Sample(seg)
	if len(digital) != len(seg) {
		t.Fatal("length changed")
	}
	want := 128 * c.EnergyPerConversion
	if math.Abs(energy-want) > 1e-18 {
		t.Errorf("segment energy = %v, want %v", energy, want)
	}
}

// The empirical SQNR of a full-scale random signal must track the
// 6.02·bits + 1.76 dB rule.
func TestSQNRRule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = rng.Float64()
	}
	for _, bits := range []int{6, 8, 10, 12} {
		c, _ := New(bits)
		got := c.SQNR(x)
		// Uniform full-scale input: signal power E[v²] = 1/3 against
		// noise LSB²/12 gives SNR = 6.02·bits + 6.02 dB (the classic
		// 6.02·bits + 1.76 assumes a sinusoid).
		want := 6.02*float64(bits) + 6.02
		if math.Abs(got-want) > 1.5 {
			t.Errorf("%d bits: SQNR %.1f dB, want ≈ %.1f", bits, got, want)
		}
	}
	perfect, _ := New(8)
	if !math.IsInf(perfect.SQNR([]float64{perfect.Dequantize(3)}), 1) {
		t.Error("zero-noise segment should report infinite SQNR")
	}
}

func TestSensingPowerOrder(t *testing.T) {
	c, _ := New(16)
	p := c.SensingPower(2048)
	// Must stay in the µW class — the §3.2.1 "extremely small" term.
	if p < 0.5e-6 || p > 20e-6 {
		t.Errorf("sensing power %v W outside the µW class", p)
	}
}

// Property: quantization is monotone and idempotent.
func TestQuickQuantizationProperties(t *testing.T) {
	c, _ := New(10)
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a <= b && c.Convert(a) > c.Convert(b) {
			return false
		}
		// Idempotence: re-quantizing a reconstruction is a fixed point.
		q := c.Dequantize(c.Convert(a))
		return c.Dequantize(c.Convert(q)) == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
