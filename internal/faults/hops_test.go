package faults

import (
	"errors"
	"testing"

	"xpro/internal/wireless"
)

func TestHubStormStateAndUntil(t *testing.T) {
	p := &Plan{Windows: []Window{
		{Kind: HubStorm, Start: 1, End: 3},
		{Kind: LinkOutage, Start: 2, End: 5},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := p.At(1.5)
	if !st.HubDown || st.LinkDown {
		t.Fatalf("at 1.5 want HubDown only, got %+v", st)
	}
	st = p.At(2.5)
	if !st.HubDown || !st.LinkDown {
		t.Fatalf("at 2.5 want both down, got %+v", st)
	}
	// LinkDownUntil covers the later of the two window ends.
	if got := p.LinkDownUntil(2.5); got != 5 {
		t.Fatalf("LinkDownUntil(2.5) = %v, want 5", got)
	}
	if got := p.LinkDownUntil(1.5); got != 3 {
		t.Fatalf("LinkDownUntil(1.5) = %v, want 3", got)
	}
	if got := p.LinkDownUntil(6); got != 6 {
		t.Fatalf("LinkDownUntil(6) = %v, want 6 (up)", got)
	}
	if HubStorm.String() != "hub-storm" {
		t.Fatalf("String() = %q", HubStorm.String())
	}
}

func TestHubStormFailsSends(t *testing.T) {
	p := &Plan{Windows: []Window{{Kind: HubStorm, Start: 0, End: 10}}}
	clock := &Clock{}
	l, err := NewLink(wireless.Model2(), p, clock, 0, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Send(1024); !IsLinkDown(err) {
		t.Fatalf("Send under hub storm: got %v, want ErrLinkDown", err)
	}
	var ld *ErrLinkDown
	_, _, err = l.SendValues(1024, 4, &Framing{})
	if !errors.As(err, &ld) {
		t.Fatalf("SendValues under hub storm: got %v, want ErrLinkDown", err)
	}
	if ld.Until != 10 {
		t.Fatalf("Until = %v, want 10", ld.Until)
	}
	clock.Advance(11)
	if _, err := l.Send(1024); err != nil {
		t.Fatalf("Send after storm: %v", err)
	}
}

func TestHopSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for hop := 0; hop < 8; hop++ {
		a := HopSeed(12345, hop)
		if b := HopSeed(12345, hop); a != b {
			t.Fatalf("HopSeed not deterministic for hop %d: %d vs %d", hop, a, b)
		}
		seen[a]++
	}
	if len(seen) != 8 {
		t.Fatalf("HopSeed collisions across 8 hops: %v", seen)
	}
	if HopSeed(1, 0) == HopSeed(2, 0) {
		t.Fatal("HopSeed ignores the base seed")
	}
}

func TestHubStormPlanSharedAndPure(t *testing.T) {
	cfg := PlanConfig{Horizon: 100, MeanDuration: 5, HubStorms: 4,
		Outages: 3, Bursts: 3, Crashes: 2} // non-storm counts must be ignored
	a := HubStormPlan(77, cfg)
	b := HubStormPlan(77, cfg)
	if len(a.Windows) != 4 {
		t.Fatalf("want 4 hub-storm windows, got %d", len(a.Windows))
	}
	for i, w := range a.Windows {
		if w.Kind != HubStorm {
			t.Fatalf("window %d has kind %v, want HubStorm", i, w.Kind)
		}
		if b.Windows[i] != w {
			t.Fatalf("plan not deterministic at window %d: %+v vs %+v", i, w, b.Windows[i])
		}
	}
	if c := HubStormPlan(78, cfg); c.Windows[0] == a.Windows[0] {
		t.Fatal("distinct hub seeds produced identical schedules")
	}
}

func TestMergePlans(t *testing.T) {
	a := &Plan{Windows: []Window{{Kind: LossBurst, Start: 5, End: 6, Loss: 0.5}}}
	b := &Plan{Windows: []Window{{Kind: HubStorm, Start: 1, End: 2}}}
	m := MergePlans(a, nil, b)
	if len(m.Windows) != 2 {
		t.Fatalf("want 2 windows, got %d", len(m.Windows))
	}
	if m.Windows[0].Kind != HubStorm || m.Windows[1].Kind != LossBurst {
		t.Fatalf("windows not sorted by start: %+v", m.Windows)
	}
	if len(a.Windows) != 1 || len(b.Windows) != 1 {
		t.Fatal("MergePlans mutated an input")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged plan invalid: %v", err)
	}
}

func TestHubStormScenario(t *testing.T) {
	p, err := Scenario("hub-storm", 7, 60)
	if err != nil {
		t.Fatal(err)
	}
	storms := 0
	for _, w := range p.Windows {
		if w.Kind == HubStorm {
			storms++
		}
	}
	if storms != 3 {
		t.Fatalf("hub-storm scenario has %d storm windows, want 3", storms)
	}
	found := false
	for _, n := range ScenarioNames() {
		if n == "hub-storm" {
			found = true
		}
	}
	if !found {
		t.Fatal("hub-storm missing from ScenarioNames")
	}
}
