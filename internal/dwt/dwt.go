// Package dwt implements the discrete wavelet transform used by the XPro
// generic classification framework (§2.1).
//
// The paper extracts statistical features on multiple levels of the DWT
// domain: for the 128-sample biosignal segments of the evaluation, a
// 5-level decomposition yields detail lengths 64, 32, 16, 8 and 4 (§4.4;
// the 5th level additionally has a 4-sample approximation, which the
// paper counts as a second 4-sample segment).
//
// Two wavelet families are provided: Haar (the hardware-cheapest filter,
// used for the in-sensor functional cells) and Daubechies-4 (a software
// extension on the aggregator side). Both support forward and inverse
// transforms; the inverse exists to support perfect-reconstruction
// property tests, not the classification data path.
package dwt

import (
	"fmt"
	"math"

	"xpro/internal/fixed"
)

// Wavelet identifies a filter family.
type Wavelet int

const (
	// Haar is the 2-tap Haar wavelet.
	Haar Wavelet = iota
	// DB4 is the 4-tap Daubechies wavelet.
	DB4
)

func (w Wavelet) String() string {
	switch w {
	case Haar:
		return "haar"
	case DB4:
		return "db4"
	default:
		return fmt.Sprintf("Wavelet(%d)", int(w))
	}
}

// db4Lo is the standard Daubechies-4 analysis low-pass filter.
var db4Lo = func() []float64 {
	s3 := math.Sqrt(3)
	d := 4 * math.Sqrt2
	return []float64{(1 + s3) / d, (3 + s3) / d, (3 - s3) / d, (1 - s3) / d}
}()

// filters returns the analysis low-pass and high-pass filters for w.
func (w Wavelet) filters() (lo, hi []float64) {
	switch w {
	case DB4:
		lo = db4Lo
	default:
		r := 1 / math.Sqrt2
		lo = []float64{r, r}
	}
	// Quadrature mirror: hi[k] = (−1)^k · lo[L−1−k].
	hi = make([]float64, len(lo))
	for k := range lo {
		hi[k] = lo[len(lo)-1-k]
		if k%2 == 1 {
			hi[k] = -hi[k]
		}
	}
	return lo, hi
}

// Step performs one analysis step on signal x, returning the
// approximation (low-pass) and detail (high-pass) half-length outputs.
// len(x) must be even and at least the filter length; the signal is
// extended periodically, keeping the transform orthonormal.
func Step(w Wavelet, x []float64) (approx, detail []float64, err error) {
	lo, hi := w.filters()
	n := len(x)
	if n < len(lo) {
		return nil, nil, fmt.Errorf("dwt: signal length %d shorter than %s filter length %d", n, w, len(lo))
	}
	if n%2 != 0 {
		return nil, nil, fmt.Errorf("dwt: signal length %d is odd", n)
	}
	half := n / 2
	approx = make([]float64, half)
	detail = make([]float64, half)
	for i := 0; i < half; i++ {
		var a, d float64
		for k := 0; k < len(lo); k++ {
			v := x[(2*i+k)%n]
			a += lo[k] * v
			d += hi[k] * v
		}
		approx[i] = a
		detail[i] = d
	}
	return approx, detail, nil
}

// InverseStep reconstructs the even-length signal from one analysis step.
func InverseStep(w Wavelet, approx, detail []float64) ([]float64, error) {
	if len(approx) != len(detail) {
		return nil, fmt.Errorf("dwt: approx length %d != detail length %d", len(approx), len(detail))
	}
	lo, hi := w.filters()
	half := len(approx)
	n := 2 * half
	if n < len(lo) {
		return nil, fmt.Errorf("dwt: output length %d shorter than %s filter length %d", n, w, len(lo))
	}
	x := make([]float64, n)
	// Transpose of the periodic analysis operator (orthonormal ⇒ inverse).
	for i := 0; i < half; i++ {
		for k := 0; k < len(lo); k++ {
			x[(2*i+k)%n] += lo[k]*approx[i] + hi[k]*detail[i]
		}
	}
	return x, nil
}

// Decomposition is a multi-level DWT of a signal segment.
type Decomposition struct {
	Wavelet Wavelet
	// Details[l] is the detail (high-pass) coefficient vector of level
	// l+1; for a 128-sample input with 5 levels the lengths are
	// 64, 32, 16, 8, 4.
	Details [][]float64
	// Approx is the final approximation vector (length 4 for the
	// evaluation configuration) — the paper's "second 4-sample segment"
	// of level 5.
	Approx []float64
}

// Levels returns the number of decomposition levels.
func (d *Decomposition) Levels() int { return len(d.Details) }

// Band returns the i-th band in XPro's cell ordering: bands 0..L−1 are
// details of levels 1..L and band L is the final approximation.
func (d *Decomposition) Band(i int) []float64 {
	if i < len(d.Details) {
		return d.Details[i]
	}
	return d.Approx
}

// NumBands returns the number of bands (levels + 1).
func (d *Decomposition) NumBands() int { return len(d.Details) + 1 }

// Decompose computes a levels-deep DWT of x. The signal length must be
// divisible by 2^levels and each intermediate length must be at least the
// filter length.
func Decompose(w Wavelet, x []float64, levels int) (*Decomposition, error) {
	if levels < 1 {
		return nil, fmt.Errorf("dwt: levels must be ≥ 1, got %d", levels)
	}
	if len(x)%(1<<uint(levels)) != 0 {
		return nil, fmt.Errorf("dwt: length %d not divisible by 2^%d", len(x), levels)
	}
	cur := append([]float64(nil), x...)
	dec := &Decomposition{Wavelet: w, Details: make([][]float64, 0, levels)}
	for l := 0; l < levels; l++ {
		a, d, err := Step(w, cur)
		if err != nil {
			return nil, fmt.Errorf("dwt: level %d: %w", l+1, err)
		}
		dec.Details = append(dec.Details, d)
		cur = a
	}
	dec.Approx = cur
	return dec, nil
}

// Reconstruct inverts a Decomposition back to the original signal.
func Reconstruct(dec *Decomposition) ([]float64, error) {
	cur := append([]float64(nil), dec.Approx...)
	for l := len(dec.Details) - 1; l >= 0; l-- {
		x, err := InverseStep(dec.Wavelet, cur, dec.Details[l])
		if err != nil {
			return nil, fmt.Errorf("dwt: inverse level %d: %w", l+1, err)
		}
		cur = x
	}
	return cur, nil
}

// MaxLevels returns the deepest decomposition supported for a signal of
// length n with wavelet w (each level halves the length; it must stay at
// least the filter length and even).
func MaxLevels(w Wavelet, n int) int {
	lo, _ := w.filters()
	levels := 0
	for n%2 == 0 && n >= 2*len(lo) {
		n /= 2
		levels++
	}
	return levels
}

// StepFixed performs one Haar analysis step in Q16.16 fixed point — the
// arithmetic the in-sensor DWT functional cell implements. Only Haar is
// supported in hardware (2-tap filter: one add, one subtract, one scale).
func StepFixed(x []fixed.Num) (approx, detail []fixed.Num, err error) {
	n := len(x)
	if n < 2 || n%2 != 0 {
		return nil, nil, fmt.Errorf("dwt: fixed-point step needs even length ≥ 2, got %d", n)
	}
	// 1/√2 in Q16.16.
	r := fixed.FromFloat(1 / math.Sqrt2)
	half := n / 2
	approx = make([]fixed.Num, half)
	detail = make([]fixed.Num, half)
	for i := 0; i < half; i++ {
		a := fixed.Add(x[2*i], x[2*i+1])
		d := fixed.Sub(x[2*i], x[2*i+1])
		approx[i] = fixed.Mul(a, r)
		detail[i] = fixed.Mul(d, r)
	}
	return approx, detail, nil
}

// DecomposeFixed computes a levels-deep Haar DWT in fixed point.
func DecomposeFixed(x []fixed.Num, levels int) (details [][]fixed.Num, approx []fixed.Num, err error) {
	if levels < 1 {
		return nil, nil, fmt.Errorf("dwt: levels must be ≥ 1, got %d", levels)
	}
	if len(x)%(1<<uint(levels)) != 0 {
		return nil, nil, fmt.Errorf("dwt: length %d not divisible by 2^%d", len(x), levels)
	}
	cur := append([]fixed.Num(nil), x...)
	for l := 0; l < levels; l++ {
		a, d, err := StepFixed(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("dwt: fixed level %d: %w", l+1, err)
		}
		details = append(details, d)
		cur = a
	}
	return details, cur, nil
}
