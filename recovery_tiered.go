package xpro

import (
	"encoding/binary"
	"fmt"
	"math"

	"xpro/internal/faults"
)

// This file extends the durable subject-state record with the armed
// tier runtime's per-hop state. The 117-byte v1 core stays exactly as
// it was — a 2-end engine encodes and decodes records that are
// bit-identical to every checkpoint written before tiers existed —
// and an armed TierPlan appends one optional extension block inside
// the same CRC envelope: a sub-magic, the ladder header, then one
// fixed-width record per hop. Old readers reject extended records
// loudly (length check), never silently drop the hop state; new
// readers accept both shapes.

// tieredExtMagic opens the tiered extension block inside a durable
// payload, immediately after the v1 core.
var tieredExtMagic = []byte("XPTS")

const (
	// tieredExtHeaderBytes: modeled clock (f64), steady cap (u32),
	// collapse/recovery/rollback counters (3×u64), hop count (u32).
	tieredExtHeaderBytes = 8 + 4 + 3*8 + 4
	// tieredHopBytes: breaker code (1), breaker failures (u32),
	// opened-at (f64), RNG draws (u64), ladder failures/successes
	// (2×u32), dead flag (1), next-probe-at and probe-interval (2×f64),
	// probation (u32), outage events (u64).
	tieredHopBytes = 1 + 4 + 8 + 8 + 4 + 4 + 1 + 8 + 8 + 4 + 8
	// maxTieredHops bounds a CRC-valid but hostile hop count; real
	// wearable chains are single digits.
	maxTieredHops = 64
	// maxDurablePayload is the largest payload either decoder accepts:
	// the v1 core plus a full-width tiered extension.
	maxDurablePayload = subjectStateBytes + len("XPTS") + tieredExtHeaderBytes + maxTieredHops*tieredHopBytes
)

// TieredStateBytes is the size the tiered extension adds to each
// checkpoint and journal record for a chain with the given hop count —
// the fleet capacity planner's other multiplication.
func TieredStateBytes(hops int) int {
	return len(tieredExtMagic) + tieredExtHeaderBytes + hops*tieredHopBytes
}

// appendTieredExt encodes the extension block onto buf.
func appendTieredExt(buf []byte, ts *TieredSubjectState) ([]byte, error) {
	if len(ts.Hops) == 0 || len(ts.Hops) > maxTieredHops {
		return nil, fmt.Errorf("xpro: tiered state covers %d hops, want 1..%d", len(ts.Hops), maxTieredHops)
	}
	if ts.SteadyCap < 0 || ts.SteadyCap > len(ts.Hops) {
		return nil, fmt.Errorf("xpro: tiered steady cap %d outside [0,%d]", ts.SteadyCap, len(ts.Hops))
	}
	u64 := func(v uint64) { buf = binary.BigEndian.AppendUint64(buf, v) }
	u32 := func(v uint32) { buf = binary.BigEndian.AppendUint32(buf, v) }
	f64 := func(v float64) { buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v)) }
	buf = append(buf, tieredExtMagic...)
	f64(ts.ClockSeconds)
	u32(uint32(ts.SteadyCap))
	u64(uint64(ts.Collapses))
	u64(uint64(ts.Recoveries))
	u64(uint64(ts.Rollbacks))
	u32(uint32(len(ts.Hops)))
	for h := range ts.Hops {
		hs := &ts.Hops[h]
		code, ok := breakerNames[hs.Breaker]
		if !ok {
			return nil, fmt.Errorf("xpro: hop %d has unknown breaker state %q", h, hs.Breaker)
		}
		buf = append(buf, byte(code))
		u32(uint32(hs.BreakerFailures))
		f64(hs.BreakerOpenedAtSeconds)
		u64(hs.RNGDraws)
		u32(uint32(hs.Failures))
		u32(uint32(hs.Successes))
		if hs.Dead {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		f64(hs.NextProbeAtSeconds)
		f64(hs.ProbeIntervalSeconds)
		u32(uint32(hs.ProbationEvents))
		u64(hs.OutageEvents)
	}
	return buf, nil
}

// decodeTieredExt parses and validates one extension block. The same
// discipline as decodeState: every range check lives here, and only
// canonical encodings decode (a dead flag of 2, a breaker code of 7 or
// a short hop table are corruption, not leniency), so decode→encode
// round-trips bit-identically — the property FuzzTieredRecover pins.
func decodeTieredExt(buf []byte) (*TieredSubjectState, error) {
	if len(buf) < len(tieredExtMagic)+tieredExtHeaderBytes {
		return nil, fmt.Errorf("tiered extension truncated (%d bytes)", len(buf))
	}
	if string(buf[:len(tieredExtMagic)]) != string(tieredExtMagic) {
		return nil, fmt.Errorf("bad tiered extension magic")
	}
	off := len(tieredExtMagic)
	u64 := func() uint64 { v := binary.BigEndian.Uint64(buf[off:]); off += 8; return v }
	u32 := func() uint32 { v := binary.BigEndian.Uint32(buf[off:]); off += 4; return v }
	f64 := func() float64 { return math.Float64frombits(u64()) }
	ts := &TieredSubjectState{}
	ts.ClockSeconds = f64()
	cap32 := u32()
	collapses, recoveries, rollbacks := u64(), u64(), u64()
	nhops := u32()
	if !finite(ts.ClockSeconds) || ts.ClockSeconds < 0 {
		return nil, fmt.Errorf("tiered clock %v must be finite and non-negative", ts.ClockSeconds)
	}
	if nhops == 0 || nhops > maxTieredHops {
		return nil, fmt.Errorf("tiered hop count %d outside 1..%d", nhops, maxTieredHops)
	}
	if uint64(cap32) > uint64(nhops) {
		return nil, fmt.Errorf("tiered steady cap %d outside [0,%d]", cap32, nhops)
	}
	if collapses > math.MaxInt32 || recoveries > math.MaxInt32 || rollbacks > math.MaxInt32 {
		return nil, fmt.Errorf("tiered ladder counters out of range")
	}
	ts.SteadyCap = int(cap32)
	ts.Collapses, ts.Recoveries, ts.Rollbacks = int(collapses), int(recoveries), int(rollbacks)
	if len(buf)-off != int(nhops)*tieredHopBytes {
		return nil, fmt.Errorf("tiered hop table is %d bytes, want %d for %d hops",
			len(buf)-off, int(nhops)*tieredHopBytes, nhops)
	}
	ts.Hops = make([]TierHopState, nhops)
	for h := range ts.Hops {
		hs := &ts.Hops[h]
		code := faults.BreakerState(buf[off])
		off++
		switch code {
		case faults.BreakerClosed, faults.BreakerHalfOpen, faults.BreakerOpen:
			hs.Breaker = code.String()
		default:
			return nil, fmt.Errorf("hop %d: invalid breaker state code %d", h, int(code))
		}
		bf := u32()
		hs.BreakerOpenedAtSeconds = f64()
		hs.RNGDraws = u64()
		lf, lsucc := u32(), u32()
		dead := buf[off]
		off++
		hs.NextProbeAtSeconds = f64()
		hs.ProbeIntervalSeconds = f64()
		probation := u32()
		hs.OutageEvents = u64()
		if bf > math.MaxInt32 || lf > math.MaxInt32 || lsucc > math.MaxInt32 || probation > math.MaxInt32 {
			return nil, fmt.Errorf("hop %d: counters out of range", h)
		}
		hs.BreakerFailures, hs.Failures, hs.Successes, hs.ProbationEvents = int(bf), int(lf), int(lsucc), int(probation)
		switch dead {
		case 0:
			hs.Dead = false
		case 1:
			hs.Dead = true
		default:
			return nil, fmt.Errorf("hop %d: invalid dead flag %d", h, dead)
		}
		if !finite(hs.BreakerOpenedAtSeconds) || hs.BreakerOpenedAtSeconds < 0 {
			return nil, fmt.Errorf("hop %d: breaker opened-at %v must be finite and non-negative", h, hs.BreakerOpenedAtSeconds)
		}
		if hs.RNGDraws > faults.MaxRNGDraws {
			return nil, fmt.Errorf("hop %d: RNG cursor %d exceeds the restorable maximum", h, hs.RNGDraws)
		}
		if !finite(hs.NextProbeAtSeconds) || hs.NextProbeAtSeconds < 0 ||
			!finite(hs.ProbeIntervalSeconds) || hs.ProbeIntervalSeconds < 0 {
			return nil, fmt.Errorf("hop %d: probe schedule %v/%v must be finite and non-negative",
				h, hs.NextProbeAtSeconds, hs.ProbeIntervalSeconds)
		}
	}
	return ts, nil
}

// durableLocked assembles the full durable record: the 2-end core plus
// the tiered extension when a tier plan is armed. Caller holds r.mu;
// the plan lock nests strictly under it (r.mu → p.mu), and the tiered
// classify path never takes r.mu, so the order cannot invert.
func (r *resilient) durableLocked(e *Engine) SubjectState {
	st := r.stateLocked()
	if tp := e.tier.Load(); tp != nil {
		if ts, err := tp.TieredState(); err == nil {
			st.Tiered = &ts
		}
	}
	return st
}
