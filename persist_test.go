package xpro

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := New(Config{Case: "M2"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty snapshot")
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Reports must be identical: same classifier, same placement, same
	// models.
	a, b := orig.Report(), restored.Report()
	if a != b {
		t.Errorf("reports differ:\n  orig     %+v\n  restored %+v", a, b)
	}

	// Classifications must match on the (regenerated) test set.
	testSet := orig.TestSet()
	restoredSet := restored.TestSet()
	if len(testSet) != len(restoredSet) {
		t.Fatalf("test sets differ in size: %d vs %d", len(testSet), len(restoredSet))
	}
	for i := 0; i < 50; i++ {
		if testSet[i].Label != restoredSet[i].Label {
			t.Fatal("test set regeneration diverged")
		}
		x, err := orig.Classify(testSet[i].Samples)
		if err != nil {
			t.Fatal(err)
		}
		y, err := restored.Classify(restoredSet[i].Samples)
		if err != nil {
			t.Fatal(err)
		}
		if x != y {
			t.Fatalf("segment %d: original %d != restored %d", i, x, y)
		}
	}

	// Placements identical cell by cell.
	pa, pb := orig.Placement(), restored.Placement()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("cell %d placement differs: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage should fail to decode")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	eng, err := New(Config{Case: "C1", Kind: InSensor})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding with a bumped constant is not
	// possible from here; instead verify the happy path asserts the
	// version field by checking a truncated stream fails cleanly.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot should fail")
	}
}

func TestLoadRejectsNewerVersion(t *testing.T) {
	// A snapshot written by a future xpro must be refused with an error
	// that names both versions, not misread as the current format.
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(enginePersist{
		Version: persistVersion + 1,
		Config:  Config{Case: "C1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(&buf)
	if err == nil {
		t.Fatal("newer snapshot version must be rejected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "newer than this build supports") {
		t.Errorf("error should say the snapshot is too new: %q", msg)
	}
	if !strings.Contains(msg, fmt.Sprint(persistVersion+1)) || !strings.Contains(msg, fmt.Sprintf("max %d", persistVersion)) {
		t.Errorf("error should name both versions: %q", msg)
	}
}
