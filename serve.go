package xpro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"xpro/internal/admit"
	"xpro/internal/biosig"
	"xpro/internal/serve"
	"xpro/internal/telemetry"
)

// This file is the public face of the concurrent fleet-serving runtime
// (internal/serve). The paper evaluates one wearable against one
// aggregator; a production backend serves millions of subjects, and
// XPro's cut-based engines are embarrassingly parallel across subjects
// and across segments. Network.Serve shards a body sensor network's
// engines over a bounded worker pool with per-subject FIFO ordering;
// Engine.ClassifyBatchParallel and Engine.StreamParallel fan one
// engine's segments across workers with results provably identical to
// the sequential path.
//
// Ordering and determinism contract: one subject's events always
// execute in submission order on one worker, because the resilient
// classify path is a serial modeled timeline (clock, breaker, link
// RNG) — so a seeded run replays bit-identically regardless of the
// worker count. Engines without a Resilience policy are pure functions
// of the segment and the installed cut, so their segments parallelize
// freely and the hot-swapped cut is always read through one atomic
// load per event: no event ever observes a half-swapped cut.

// ErrOverloaded rejects a fleet submission whose worker queue is full
// — the bounded-queue backpressure signal. The caller should shed or
// retry; nothing was enqueued. errors.As gives the
// *serve.OverloadedError carrying the queue geometry and — on a fleet
// with overload protection — a RetryAfterSeconds hint from the
// admission controller's queue-delay estimate.
var ErrOverloaded = serve.ErrOverloaded

// ErrFleetClosed rejects submissions made after Fleet.Close began.
var ErrFleetClosed = serve.ErrClosed

// ErrShed rejects a fleet submission refused by the admission
// controller before it reached the worker pool (see
// ServeOptions.Overload): its queue-wait estimate already busted the
// deadline budget, its priority class exhausted its queue share, or
// the CoDel dropping state was draining a standing queue. Match with
// errors.Is; errors.As gives the *ShedError.
var ErrShed = admit.ErrShed

// Priority is a fleet request's priority class. Under overload the
// admission controller sheds strictly by class: PriorityBatch first,
// then PriorityInteractive; PriorityAlert is never shed by admission
// (only a completely full queue refuses it). The zero value is
// PriorityInteractive, so a FleetRequest that never sets a class is
// treated as ordinary user-facing traffic.
type Priority uint8

const (
	// PriorityInteractive is user-facing traffic with a human waiting
	// (the zero value).
	PriorityInteractive Priority = iota
	// PriorityBatch is background/bulk traffic: re-analysis, backfill,
	// export. Shed first.
	PriorityBatch
	// PriorityAlert is safety-critical traffic (arrhythmia alarms).
	// Shed last.
	PriorityAlert
)

// String returns "interactive", "batch" or "alert" — the label value
// of xpro_admit_shed_total{class=...}.
func (p Priority) String() string { return p.class().String() }

// class maps the public priority onto the admission controller's
// ordered class space (batch < interactive < alert).
func (p Priority) class() admit.Class {
	switch p {
	case PriorityBatch:
		return admit.Batch
	case PriorityAlert:
		return admit.Alert
	default:
		return admit.Interactive
	}
}

func priorityOf(c admit.Class) Priority {
	switch c {
	case admit.Batch:
		return PriorityBatch
	case admit.Alert:
		return PriorityAlert
	default:
		return PriorityInteractive
	}
}

// ShedError is the typed form of ErrShed: which event the admission
// controller refused and why, with enough context for informed
// backoff. Nothing was enqueued.
type ShedError struct {
	// Subject names the refused request's engine.
	Subject string
	// Priority is the refused request's class.
	Priority Priority
	// Reason is "occupancy" (class queue share exhausted), "deadline"
	// (queue-wait estimate busts the budget) or "codel" (standing
	// queue draining).
	Reason string
	// EstimatedWaitSeconds is the admission controller's queue-wait
	// estimate at decision time; BudgetSeconds the deadline budget the
	// event carried (from its context deadline, or the class default).
	EstimatedWaitSeconds float64
	BudgetSeconds        float64
	// RetryAfterSeconds hints how long to wait before retrying.
	RetryAfterSeconds float64
	// QueueLen / QueueDepth describe the subject's worker queue at
	// decision time.
	QueueLen, QueueDepth int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("xpro: admission shed %s event for subject %q (%s): estimated wait %.3fs, budget %.3fs, queue %d/%d, retry after %.3fs",
		e.Priority, e.Subject, e.Reason, e.EstimatedWaitSeconds, e.BudgetSeconds, e.QueueLen, e.QueueDepth, e.RetryAfterSeconds)
}

// Is makes errors.Is(err, ErrShed) match.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// ErrWorkerPanic marks a fleet event whose classification panicked.
// The panic is contained: the worker is replaced, the subject's queue
// keeps draining in order, and the caller gets this typed error
// instead of a crashed process. Match with errors.Is; errors.As gives
// the *WorkerPanicError carrying the recovered value.
var ErrWorkerPanic = errors.New("xpro: fleet worker panicked")

// WorkerPanicError reports a contained per-event panic.
type WorkerPanicError struct {
	// Subject is the engine whose event blew up; Value the recovered
	// panic value.
	Subject string
	Value   any
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("xpro: classification for subject %q panicked: %v", e.Subject, e.Value)
}

// Is makes errors.Is(err, ErrWorkerPanic) match.
func (e *WorkerPanicError) Is(target error) bool { return target == ErrWorkerPanic }

// ErrCanceled marks a classification abandoned because its context was
// canceled or its deadline expired before the event entered the
// pipeline. The wrapped chain also matches the context error
// (context.Canceled or context.DeadlineExceeded). A canceled event
// never touches the modeled timeline: the clock does not advance and
// the circuit breaker records nothing.
var ErrCanceled = errors.New("xpro: classification canceled")

// canceledError wraps a context error as ErrCanceled and counts it.
// Cancellations are not classification errors: they do not increment
// xpro_classify_errors_total and never trip the breaker.
func (e *Engine) canceledError(cause error) error {
	e.obs.reg.Counter("xpro_classify_canceled_total",
		"Classifications abandoned by context cancellation before execution.").Inc()
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// ClassifyResultContext is ClassifyResult honoring a context: a
// canceled or expired ctx returns an error matching both ErrCanceled
// and the context error, without running the event or touching the
// resilience state. An event already executing is never interrupted
// mid-pipeline (the modeled hardware has no preemption); cancellation
// is checked immediately before the event starts.
func (e *Engine) ClassifyResultContext(ctx context.Context, samples []float64) (Result, error) {
	if e.res != nil {
		return e.res.classifyCtx(ctx, e, biosig.Segment{Samples: samples})
	}
	if err := ctx.Err(); err != nil {
		return Result{}, e.canceledError(err)
	}
	label, err := e.sys().Classify(biosig.Segment{Samples: samples})
	if err != nil {
		return Result{}, err
	}
	return Result{Label: label, Mode: ModeFull}, nil
}

// ClassifyBatchParallel classifies segments across up to workers
// goroutines (workers <= 0 means GOMAXPROCS) and returns labels in
// input order. Results are bit-identical to ClassifyBatch: each event
// reads the installed cut through one atomic load and computes a pure
// function of (segment, cut), so fan-out cannot change any label. On
// an engine with a Resilience policy the modeled timeline is serial by
// design, and the call degenerates to ordered sequential execution —
// still honoring ctx between events — so seeded fault runs replay
// identically no matter the requested parallelism.
func (e *Engine) ClassifyBatchParallel(ctx context.Context, segments [][]float64, workers int) ([]int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	labels, err := e.classifyBatchParallel(ctx, segments, workers)
	m := e.obs.reg
	if err != nil {
		m.Counter("xpro_classify_batch_errors_total",
			"ClassifyBatch calls that returned an error.").Inc()
		return nil, err
	}
	m.Counter("xpro_classify_batch_parallel_total",
		"Completed ClassifyBatchParallel calls.").Inc()
	m.Counter("xpro_classify_batch_segments_total",
		"Segments classified by ClassifyBatch calls.").Add(float64(len(segments)))
	m.Histogram("xpro_classify_batch_seconds",
		"Wall time of one ClassifyBatch call.", telemetry.DurationBuckets).
		Observe(time.Since(start).Seconds())
	m.Quantile("xpro_classify_batch_wall_seconds",
		"Wall time of one batch classify call (windowed quantile sketch on host uptime).",
		0).ObserveWall(time.Since(start).Seconds())
	return labels, nil
}

func (e *Engine) classifyBatchParallel(ctx context.Context, segments [][]float64, workers int) ([]int, error) {
	labels := make([]int, len(segments))
	if e.res != nil {
		for i, s := range segments {
			res, err := e.res.classifyCtx(ctx, e, biosig.Segment{Samples: s})
			if err != nil {
				return nil, fmt.Errorf("xpro: segment %d: %w", i, err)
			}
			labels[i] = res.Label
		}
		return labels, nil
	}
	err := serve.ParallelEach(len(segments), workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return e.canceledError(err)
		}
		label, err := e.sys().Classify(biosig.Segment{Samples: segments[i]})
		if err != nil {
			return fmt.Errorf("xpro: segment %d: %w", i, err)
		}
		labels[i] = label
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.observePlainEvents(len(labels))
	return labels, nil
}

// StreamParallel classifies segments arriving on in across up to
// workers goroutines with ordered delivery: results appear on the
// returned channel in input order regardless of which worker finishes
// first, with a bounded in-flight window exerting backpressure on the
// producer. The channel closes after the last result. On ctx
// cancellation the stream stops consuming in and closes after
// in-flight events drain; events claimed but not yet run are reported
// with an ErrCanceled error. On an engine with a Resilience policy
// events run sequentially through the ladder (the modeled timeline is
// serial), preserving the Stream ordering and degradation semantics.
// The caller must drain the returned channel.
func (e *Engine) StreamParallel(ctx context.Context, in <-chan []float64, workers int) <-chan StreamResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if e.res != nil || workers == 1 {
		out := make(chan StreamResult)
		go func() {
			defer close(out)
			i := 0
			for {
				select {
				case s, ok := <-in:
					if !ok {
						return
					}
					res, err := e.ClassifyResultContext(ctx, s)
					out <- StreamResult{Index: i, Result: res, Err: err}
					i++
					if err != nil && errors.Is(err, ErrCanceled) {
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}()
		return out
	}

	jobs := make(chan func() StreamResult)
	go func() {
		defer close(jobs)
		i := 0
		for {
			select {
			case s, ok := <-in:
				if !ok {
					return
				}
				idx, seg := i, s
				i++
				jobs <- func() StreamResult {
					if err := ctx.Err(); err != nil {
						return StreamResult{Index: idx, Err: e.canceledError(err)}
					}
					label, err := e.sys().Classify(biosig.Segment{Samples: seg})
					if err != nil {
						return StreamResult{Index: idx, Err: err}
					}
					return StreamResult{Index: idx, Result: Result{Label: label, Mode: ModeFull}}
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return serve.Ordered(jobs, workers, 4*workers)
}

// ServeOptions configures a Fleet. Zero values take defaults.
type ServeOptions struct {
	// Workers is the worker-goroutine count (default GOMAXPROCS).
	// Subjects are sharded across workers; one subject always runs on
	// one worker, so per-subject FIFO ordering holds for any count.
	Workers int
	// QueueDepth bounds each worker's pending-event queue (default
	// serve.DefaultQueueDepth). Submissions beyond it are rejected with
	// ErrOverloaded instead of blocking.
	QueueDepth int
	// Overload, when set, enables overload protection: deadline-aware
	// admission with strict-priority shedding in front of the pool,
	// and the brownout controller coupling sustained queue delay to
	// the degradation ladder. Nil leaves the fleet with bare
	// bounded-queue backpressure (the pre-overload behaviour).
	Overload *Overload
}

// Fleet serves a network's engines concurrently: a sharded worker pool
// with per-subject FIFO ordering, bounded queues with typed
// backpressure, and context-based cancellation threaded through the
// resilient classify path. All methods are safe for concurrent use.
type Fleet struct {
	pool    *serve.Pool
	engines map[string]*Engine
	shards  map[string]uint64
	names   []string
	obs     *Observer

	// Overload protection (nil without ServeOptions.Overload): the
	// admission controller decides per submission on host uptime; the
	// brownout controller watches the queue-delay EWMA after each
	// served event and forces every engine's cheap rung while active.
	admit *admit.Controller
	brown *admit.Brownout
	// Pre-resolved handles so the hot submit/serve path never walks
	// the registry maps.
	shedTotal  [admit.NumClasses]*telemetry.Counter
	brownGauge *telemetry.Gauge
	queueDelay *telemetry.Quantile
}

// Serve starts a fleet over the network's engines. Subjects are
// assigned to workers round-robin in sorted-name order, so the
// engine→worker mapping is deterministic for a given (subject set,
// worker count). Close the fleet to drain and stop it; the network
// itself remains usable afterwards.
func (n *Network) Serve(opt ServeOptions) (*Fleet, error) {
	if opt.Workers < 0 || opt.QueueDepth < 0 {
		return nil, fmt.Errorf("xpro: negative ServeOptions (workers %d, queue depth %d)", opt.Workers, opt.QueueDepth)
	}
	pool := serve.NewPool(serve.Options{
		Workers: opt.Workers, QueueDepth: opt.QueueDepth,
		// Belt and braces under the fleet's own per-job recover (see
		// Fleet.run): any panic that still reaches a worker — a job
		// from a future code path, a panic inside the guard itself —
		// is counted and the worker replaced instead of crashing the
		// fleet.
		OnPanic: func(worker int, recovered any) {
			n.obs.reg.Counter("xpro_panics_total",
				"Panics contained by the serving runtime (worker replaced).").Inc()
		},
	})
	shards := make(map[string]uint64, len(n.names))
	for i, name := range n.names {
		shards[name] = uint64(i)
	}
	f := &Fleet{
		pool:    pool,
		engines: n.engines,
		shards:  shards,
		names:   n.names,
		obs:     n.obs,
	}
	if opt.Overload != nil {
		ac, bc := opt.Overload.internal()
		ctrl, err := admit.NewController(ac)
		if err != nil {
			pool.Close()
			return nil, err
		}
		brown, err := admit.NewBrownout(bc)
		if err != nil {
			pool.Close()
			return nil, err
		}
		f.admit, f.brown = ctrl, brown
		for c := admit.Class(0); c < admit.Class(admit.NumClasses); c++ {
			f.shedTotal[c] = n.obs.reg.Counter(telemetry.WithLabels("xpro_admit_shed_total",
				map[string]string{"class": c.String()}),
				"Fleet submissions refused by the admission controller, by priority class.")
		}
		f.brownGauge = n.obs.reg.Gauge("xpro_brownout_state",
			"1 while the fleet is browned out (every engine forced onto its cheap rung), else 0.")
		f.queueDelay = n.obs.reg.Quantile("xpro_fleet_queue_delay_seconds",
			"Queue sojourn of served fleet events (windowed quantile sketch on host uptime).", 0)
	}
	n.fleet.Store(f)
	n.obs.reg.Gauge("xpro_fleet_workers",
		"Worker goroutines of the serving fleet.").Set(float64(pool.Workers()))
	return f, nil
}

// Subjects lists the fleet's subject names, sorted.
func (f *Fleet) Subjects() []string { return f.names }

// Workers returns the fleet's worker count.
func (f *Fleet) Workers() int { return f.pool.Workers() }

// FleetResult is one served classification.
type FleetResult struct {
	// Subject names the engine that served the event.
	Subject string
	Result  Result
	Err     error
}

// Submit enqueues one segment for a subject at PriorityInteractive
// and returns a channel that delivers the single result when the
// subject's worker reaches it. Submission never blocks: a full worker
// queue returns ErrOverloaded (nothing enqueued), an admission
// refusal ErrShed, a closed fleet ErrFleetClosed. Events of one
// subject are served in submission order.
//
// The returned channel has a buffered slot the worker's single send
// always lands in, so a caller that abandons the channel (its context
// canceled, its select moved on) never blocks the worker: the result
// sits in the buffer and is garbage-collected with the channel.
func (f *Fleet) Submit(ctx context.Context, subject string, samples []float64) (<-chan FleetResult, error) {
	return f.SubmitRequest(ctx, FleetRequest{Subject: subject, Samples: samples})
}

// SubmitRequest is Submit with an explicit priority class. On a fleet
// with overload protection (ServeOptions.Overload) the admission
// controller may refuse the event with a typed *ShedError before it
// reaches the pool: lower classes are shed strictly first, and an
// event whose queue-wait estimate already busts its deadline budget
// (the context deadline, or the class default) is refused at the door
// instead of timing out in the queue.
func (f *Fleet) SubmitRequest(ctx context.Context, rq FleetRequest) (<-chan FleetResult, error) {
	e, ok := f.engines[rq.Subject]
	if !ok {
		return nil, fmt.Errorf("xpro: fleet has no subject %q", rq.Subject)
	}
	shard := f.shards[rq.Subject]
	if f.admit != nil {
		budget := 0.0
		if dl, ok := ctx.Deadline(); ok {
			budget = time.Until(dl).Seconds()
		}
		qlen, depth := f.pool.QueueLen(shard), f.pool.QueueDepth()
		if shed := f.admit.Decide(telemetry.Uptime(), rq.Priority.class(), qlen, depth, budget); shed != nil {
			f.shedTotal[shed.Class].Inc()
			f.obs.reg.Counter("xpro_fleet_rejected_total",
				"Fleet submissions rejected by backpressure or shutdown.").Inc()
			return nil, &ShedError{
				Subject:              rq.Subject,
				Priority:             priorityOf(shed.Class),
				Reason:               shed.Reason,
				EstimatedWaitSeconds: shed.EstimatedWaitSeconds,
				BudgetSeconds:        shed.BudgetSeconds,
				RetryAfterSeconds:    shed.RetryAfterSeconds,
				QueueLen:             shed.QueueLen,
				QueueDepth:           shed.QueueDepth,
			}
		}
	}
	// The buffered slot is the abandoned-channel contract: the worker's
	// one send never blocks even if no receiver ever comes back.
	ch := make(chan FleetResult, 1)
	subject, samples := rq.Subject, rq.Samples
	enq := telemetry.Uptime()
	job := func() {
		if f.admit != nil {
			start := telemetry.Uptime()
			sojourn := start - enq
			f.admit.ObserveSojourn(start, sojourn)
			f.queueDelay.Observe(start, sojourn)
			r := f.run(ctx, e, subject, samples)
			end := telemetry.Uptime()
			f.admit.ObserveService(end - start)
			f.observeBrownout(end)
			ch <- r
			return
		}
		ch <- f.run(ctx, e, subject, samples)
	}
	if err := f.pool.Submit(shard, job); err != nil {
		if f.admit != nil {
			// Decorate pool-level backpressure with the admission
			// controller's drain estimate so even bare ErrOverloaded
			// rejections carry an informed retry hint.
			var oe *serve.OverloadedError
			if errors.As(err, &oe) {
				oe.RetryAfterSeconds = f.admit.RetryAfter(oe.QueueLen)
			}
		}
		f.obs.reg.Counter("xpro_fleet_rejected_total",
			"Fleet submissions rejected by backpressure or shutdown.").Inc()
		return nil, err
	}
	f.obs.reg.Counter("xpro_fleet_submitted_total",
		"Fleet events accepted for serving.").Inc()
	return ch, nil
}

// observeBrownout feeds the post-event queue-delay EWMA to the
// brownout controller and applies any state transition fleet-wide:
// entering forces every engine's precomputed cheap rung (capacity
// rises instead of the queue), exiting or rolling back releases it.
func (f *Fleet) observeBrownout(now float64) {
	changed, active := f.brown.Observe(now, f.admit.QueueDelay())
	if !changed {
		return
	}
	kind := "exit"
	if ev, ok := f.brown.Last(); ok {
		kind = ev.Kind
	}
	v := 0.0
	if active {
		v = 1
	}
	f.brownGauge.Set(v)
	for _, name := range f.names {
		f.engines[name].setBrownedOut(active)
	}
	f.obs.events.Append(telemetry.Event{
		TimeSeconds: now, Kind: "brownout", Detail: kind,
		LatencySeconds: f.admit.QueueDelay(), Degraded: active,
	})
}

// run executes one subject's classification inside the fleet's panic
// bulkhead: a panicking engine yields a typed *WorkerPanicError result
// (matching ErrWorkerPanic) instead of propagating — the worker
// survives, the subject's queue keeps draining in order, and the
// outcome counters stay truthful either way.
func (f *Fleet) run(ctx context.Context, e *Engine, subject string, samples []float64) (out FleetResult) {
	defer func() {
		if rec := recover(); rec != nil {
			f.obs.reg.Counter("xpro_panics_total",
				"Panics contained by the serving runtime (worker replaced).").Inc()
			f.obs.reg.Counter("xpro_fleet_errors_total",
				"Fleet events that completed with an error (including cancellations).").Inc()
			out = FleetResult{Subject: subject, Err: &WorkerPanicError{Subject: subject, Value: rec}}
		}
	}()
	res, err := e.ClassifyResultContext(ctx, samples)
	switch {
	case err == nil:
		f.obs.reg.Counter("xpro_fleet_served_total",
			"Fleet events served to completion.").Inc()
	case errors.Is(err, ErrSuspectData):
		// Quarantined, not failed: the subject's signal-quality gate
		// rejected the segment or flagged an imputation-heavy result
		// (see Config.Integrity). The worker served the event; the
		// caller decides whether a quarantined label is usable.
		f.obs.reg.Counter("xpro_fleet_suspect_total",
			"Fleet events quarantined by a subject's signal-quality gate.").Inc()
	case errors.Is(err, ErrNodeDown):
		// The subject's node is inside a crash/reboot window: the event
		// failed fast without touching the engine's pipeline. It still
		// counts as an errored event below the dedicated series.
		f.obs.reg.Counter("xpro_fleet_node_down_total",
			"Fleet events rejected because the subject's node was crashed or rebooting.").Inc()
		f.obs.reg.Counter("xpro_fleet_errors_total",
			"Fleet events that completed with an error (including cancellations).").Inc()
	default:
		f.obs.reg.Counter("xpro_fleet_errors_total",
			"Fleet events that completed with an error (including cancellations).").Inc()
	}
	return FleetResult{Subject: subject, Result: res, Err: err}
}

// Classify submits one segment and waits for its result. If ctx ends
// while the event is still queued, Classify returns an ErrCanceled
// error immediately; the queued event then resolves as canceled when
// its worker reaches it, without touching the engine's modeled state.
func (f *Fleet) Classify(ctx context.Context, subject string, samples []float64) (Result, error) {
	ch, err := f.Submit(ctx, subject, samples)
	if err != nil {
		return Result{}, err
	}
	select {
	case r := <-ch:
		return r.Result, r.Err
	case <-ctx.Done():
		return Result{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
}

// FleetRequest is one entry of a batched submission.
type FleetRequest struct {
	Subject string
	Samples []float64
	// Priority is the request's class under overload protection
	// (zero value PriorityInteractive). Ignored without
	// ServeOptions.Overload.
	Priority Priority
}

// ClassifyBatch submits every request and waits for all accepted ones,
// returning one FleetResult per request in input order. Rejections
// (unknown subject, ErrOverloaded backpressure, ErrShed admission
// refusal, closed fleet) are reported per-result, not by failing the
// batch: under overload the accepted prefix of each subject's events
// still serves in order. A mid-batch context cancellation leaks
// nothing: every accepted event's result lands in its channel's
// buffered slot whether or not this loop is still there to read it.
func (f *Fleet) ClassifyBatch(ctx context.Context, reqs []FleetRequest) []FleetResult {
	out := make([]FleetResult, len(reqs))
	chans := make([]<-chan FleetResult, len(reqs))
	for i, rq := range reqs {
		ch, err := f.SubmitRequest(ctx, rq)
		if err != nil {
			out[i] = FleetResult{Subject: rq.Subject, Err: err}
			continue
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		if ch == nil {
			continue
		}
		select {
		case r := <-ch:
			out[i] = r
		case <-ctx.Done():
			out[i] = FleetResult{Subject: reqs[i].Subject,
				Err: fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())}
		}
	}
	return out
}

// Close stops accepting new submissions and blocks until every queued
// event has been served — in-flight work drains, it is never dropped.
// Closing any number of times, from any number of goroutines, or mixed
// with CloseWithin, is safe: every call observes the one shutdown the
// pool runs under its own sync.Once pair.
func (f *Fleet) Close() { f.pool.Close() }

// CloseWithin is Close bounded by a wall-clock drain budget: intake
// stops immediately, and if the queued events do not finish within d
// the call returns the pool's *serve.DrainTimeoutError (reporting the
// jobs still pending) while the drain continues in the background. A
// later Close waits for that same drain to finish.
func (f *Fleet) CloseWithin(d time.Duration) error { return f.pool.CloseWithin(d) }
