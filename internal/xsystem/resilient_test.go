package xsystem

import (
	"errors"
	"testing"

	"xpro/internal/faults"
	"xpro/internal/partition"
	"xpro/internal/wireless"
)

// failNTransport fails the first n sends, then succeeds, charging the
// clean cost for every attempt.
type failNTransport struct {
	m     wireless.Model
	n     int
	sends int
}

func (f *failNTransport) Send(bits int64) (wireless.Transfer, error) {
	f.sends++
	tr := f.m.Cost(bits)
	if f.sends <= f.n {
		return tr, &wireless.ErrDropped{Packet: 0}
	}
	return tr, nil
}

func resilientOpts(plan *faults.Plan) (*ResilientOptions, *faults.Clock) {
	clock := &faults.Clock{}
	return &ResilientOptions{
		Plan:   plan,
		Clock:  clock,
		Policy: faults.DefaultPolicy(),
	}, clock
}

// With a nil transport, ClassifyOver must agree with Classify on every
// placement: the resilient walk is the same computation.
func TestClassifyOverMatchesClassify(t *testing.T) {
	f := getFixture(t)
	for name, p := range map[string]partition.Placement{
		"sensor":     partition.InSensor(f.graph),
		"aggregator": partition.InAggregator(f.graph),
		"trivial":    partition.Trivial(f.graph),
	} {
		s := newSystem(t, f, p)
		for i := 0; i < 40; i++ {
			want, err := s.Classify(f.test.Segs[i])
			if err != nil {
				t.Fatal(err)
			}
			out, err := s.ClassifyOver(f.test.Segs[i], nil)
			if err != nil {
				t.Fatalf("%s seg %d: %v", name, i, err)
			}
			if out.Label != want {
				t.Errorf("%s seg %d: label %d, want %d", name, i, out.Label, want)
			}
			if !out.Complete || !out.Delivered || out.PartialFusion {
				t.Errorf("%s seg %d: clean run not complete: %+v", name, i, out)
			}
			if out.VotesUsed != out.VotesTotal {
				t.Errorf("%s seg %d: votes %d/%d on a clean run", name, i, out.VotesUsed, out.VotesTotal)
			}
		}
	}
}

func TestClassifyOverValidation(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.Trivial(f.graph))
	if _, err := s.ClassifyOver(f.test.Segs[0], nil); err != nil {
		t.Fatalf("nil options must mean the infallible link: %v", err)
	}
	short := f.test.Segs[0]
	short.Samples = short.Samples[:3]
	if _, err := s.ClassifyOver(short, nil); err == nil {
		t.Error("wrong segment length should error")
	}
}

// A transport that recovers within the retry budget must still deliver a
// complete classification, with the struggle accounted.
func TestClassifyOverRetriesThrough(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.Trivial(f.graph))
	opt, _ := resilientOpts(nil)
	tr := &failNTransport{m: wireless.Model2(), n: 1}
	opt.Transport = tr
	out, err := s.ClassifyOver(f.test.Segs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Errorf("should recover to a complete result: %+v", out)
	}
	if out.Retries != 1 || out.LostTransfers != 0 {
		t.Errorf("retries %d lost %d, want 1 retry 0 lost", out.Retries, out.LostTransfers)
	}
	want, _ := s.Classify(f.test.Segs[0])
	if out.Label != want {
		t.Errorf("label %d, want %d", out.Label, want)
	}
}

// A hard outage on the trivial cut loses every crossing feature payload;
// fusion has nothing to fuse and the event reports NoResultError whose
// chain reaches the transport's error.
func TestClassifyOverHardOutage(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.Trivial(f.graph))
	plan := &faults.Plan{Windows: []faults.Window{{Kind: faults.LinkOutage, Start: 0, End: 1e9}}}
	opt, clock := resilientOpts(plan)
	link, err := faults.NewLink(wireless.Model2(), plan, clock, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt.Transport = link
	out, err := s.ClassifyOver(f.test.Segs[0], opt)
	var nores *NoResultError
	if !errors.As(err, &nores) {
		t.Fatalf("err = %v, want *NoResultError", err)
	}
	if !faults.IsLinkDown(err) {
		t.Error("error chain should reach *faults.ErrLinkDown")
	}
	if out.LostTransfers == 0 {
		t.Errorf("outage should lose transfers: %+v", out)
	}
	if d := opt.Policy.Deadline; d > 0 && out.SpentSeconds > d+1e-9 {
		// Budget may stop retrying mid-event but never runs away.
		t.Errorf("spent %v exceeds deadline %v", out.SpentSeconds, d)
	}
}

// On an all-sensor placement only the result payload crosses: an outage
// yields a valid sensor-local label, not an error.
func TestClassifyOverSensorLocal(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.InSensor(f.graph))
	plan := &faults.Plan{Windows: []faults.Window{{Kind: faults.LinkOutage, Start: 0, End: 1e9}}}
	opt, clock := resilientOpts(plan)
	link, err := faults.NewLink(wireless.Model2(), plan, clock, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt.Transport = link
	out, err := s.ClassifyOver(f.test.Segs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Delivered || out.Complete {
		t.Errorf("outage result should be sensor-local: %+v", out)
	}
	want, _ := s.Classify(f.test.Segs[0])
	if out.Label != want {
		t.Errorf("sensor-local label %d, want %d", out.Label, want)
	}
}

// A brownout on the all-sensor placement kills the whole pipeline.
func TestClassifyOverBrownout(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.InSensor(f.graph))
	plan := &faults.Plan{Windows: []faults.Window{{Kind: faults.Brownout, Start: 0, End: 1e9}}}
	opt, _ := resilientOpts(plan)
	_, err := s.ClassifyOver(f.test.Segs[0], opt)
	var nores *NoResultError
	if !errors.As(err, &nores) {
		t.Fatalf("brownout on all-sensor cut: err = %v, want *NoResultError", err)
	}
}

// An aggregator stall charges the wait against the budget; a stall
// longer than the deadline fails the event without hanging.
func TestClassifyOverAggStall(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.Trivial(f.graph))
	plan := &faults.Plan{Windows: []faults.Window{{Kind: faults.AggStall, Start: 0, End: 1e9}}}
	opt, _ := resilientOpts(plan)
	out, err := s.ClassifyOver(f.test.Segs[0], opt)
	var nores *NoResultError
	if !errors.As(err, &nores) {
		t.Fatalf("unbounded stall: err = %v, want *NoResultError", err)
	}
	if !out.DeadlineExceeded {
		t.Errorf("stall past deadline should mark DeadlineExceeded: %+v", out)
	}

	// A short stall inside the budget just costs its wait.
	shortPlan := &faults.Plan{Windows: []faults.Window{{Kind: faults.AggStall, Start: 0, End: 10e-3}}}
	opt2, _ := resilientOpts(shortPlan)
	out2, err := s.ClassifyOver(f.test.Segs[0], opt2)
	if err != nil {
		t.Fatal(err)
	}
	if out2.SpentSeconds < 10e-3 {
		t.Errorf("stall wait not charged: spent %v", out2.SpentSeconds)
	}
}

// Under a certain-loss burst, fusion uses whatever arrived; with
// MinVotes 1 and a sensor-side majority of base SVMs the trivial cut
// still yields a partial result... or NoResult when nothing crosses.
// Either way the breaker records every final failure.
func TestClassifyOverBreakerRecords(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.Trivial(f.graph))
	plan := &faults.Plan{Windows: []faults.Window{{Kind: faults.LinkOutage, Start: 0, End: 1e9}}}
	opt, clock := resilientOpts(plan)
	link, err := faults.NewLink(wireless.Model2(), plan, clock, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt.Transport = link
	breaker, err := faults.NewBreaker(3, 5, clock)
	if err != nil {
		t.Fatal(err)
	}
	opt.Breaker = breaker
	for i := 0; i < 3 && breaker.Allow(); i++ {
		s.ClassifyOver(f.test.Segs[i], opt)
	}
	if breaker.Allow() {
		t.Errorf("breaker should have tripped after %d failing events (failures %d)", 3, breaker.Failures())
	}
}

// One crossing payload feeding many consumers is sent exactly once per
// event: the transfer-group memoization.
type countingTransport struct {
	m     wireless.Model
	sends int
}

func (c *countingTransport) Send(bits int64) (wireless.Transfer, error) {
	c.sends++
	return c.m.Cost(bits), nil
}

func TestClassifyOverSendsEachGroupOnce(t *testing.T) {
	f := getFixture(t)
	s := newSystem(t, f, partition.Trivial(f.graph))
	ct := &countingTransport{m: wireless.Model2()}
	opt, _ := resilientOpts(nil)
	opt.Transport = ct
	if _, err := s.ClassifyOver(f.test.Segs[0], opt); err != nil {
		t.Fatal(err)
	}
	// Count the distinct crossing transfer groups of this placement (plus
	// the raw segment and the result payload when they cross).
	p := s.Placement
	groups := 0
	for _, tg := range f.graph.TransferGroups() {
		fromS := p.OnSensor(tg.From)
		for _, c := range tg.Consumers {
			if p.OnSensor(c) != fromS {
				groups++
				break
			}
		}
	}
	want := groups
	for _, id := range f.graph.SourceReaders() {
		if !p.OnSensor(id) {
			want++ // raw segment crosses once
			break
		}
	}
	if p.OnSensor(f.graph.Output) {
		want++ // result payload crosses
	}
	if ct.sends != want {
		t.Errorf("sends = %d, want %d (one per crossing payload)", ct.sends, want)
	}
}
