// Package maxflow implements a max-flow/min-cut solver (Dinic's
// algorithm) on directed graphs with float64 capacities and support for
// effectively-infinite edges.
//
// The Automatic XPro Generator (§3.2) reduces functional-cell placement
// to a minimum s-t cut: after the cut, nodes reachable from the source
// in the residual graph form the in-sensor analytic part, the rest the
// in-aggregator part. The infinite edges implement the "grouped"
// constraint via the dummy source-data node D (Fig. 7).
package maxflow

import (
	"fmt"
	"math"
)

// Inf is the capacity used for constraint edges that must never be cut.
const Inf = math.MaxFloat64 / 4

// eps guards float comparisons in the solver.
const eps = 1e-12

// Edge is one directed edge of the flow network.
type Edge struct {
	From, To int
	Cap      float64
	Flow     float64
	// rev is the index of the reverse edge in the adjacency list of To.
	rev int
}

// Graph is a flow network over nodes 0..N-1.
type Graph struct {
	n     int
	adj   [][]int // node → indices into edges
	edges []Edge
}

// New creates a flow network with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("maxflow: negative node count")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge with the given capacity and returns its
// index. Adding an edge with negative capacity panics — the s-t graph
// construction must map energies (always ≥ 0) to capacities.
func (g *Graph) AddEdge(from, to int, capacity float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) outside graph of %d nodes", from, to, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %v on edge (%d,%d)", capacity, from, to))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Cap: capacity, rev: len(g.adj[to])})
	g.adj[from] = append(g.adj[from], idx)
	// Residual reverse edge with zero capacity.
	g.edges = append(g.edges, Edge{From: to, To: from, Cap: 0, rev: len(g.adj[from]) - 1})
	g.adj[to] = append(g.adj[to], idx+1)
	return idx
}

// Edge returns a copy of the edge with the given index (as returned by
// AddEdge).
func (g *Graph) Edge(idx int) Edge { return g.edges[idx] }

// Reset clears all flow, allowing the network to be solved again
// (e.g. after capacity updates via SetCap).
func (g *Graph) Reset() {
	for i := range g.edges {
		g.edges[i].Flow = 0
	}
}

// SetCap updates the capacity of edge idx (its reverse residual is
// reset too). Reset must be called before re-solving.
func (g *Graph) SetCap(idx int, capacity float64) {
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %v", capacity))
	}
	g.edges[idx].Cap = capacity
}

// MaxFlow computes the maximum s→t flow with Dinic's algorithm and
// returns its value. Flows are left on the edges for cut extraction.
func (g *Graph) MaxFlow(s, t int) float64 {
	if s == t {
		return 0
	}
	total := 0.0
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, ei := range g.adj[u] {
				e := &g.edges[ei]
				if level[e.To] < 0 && e.Cap-e.Flow > eps {
					level[e.To] = level[u] + 1
					queue = append(queue, e.To)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, f float64) float64
	dfs = func(u int, f float64) float64 {
		if u == t {
			return f
		}
		for ; iter[u] < len(g.adj[u]); iter[u]++ {
			ei := g.adj[u][iter[u]]
			e := &g.edges[ei]
			if level[e.To] != level[u]+1 || e.Cap-e.Flow <= eps {
				continue
			}
			d := dfs(e.To, math.Min(f, e.Cap-e.Flow))
			if d > eps {
				e.Flow += d
				g.edges[g.adj[e.To][e.rev]].Flow -= d
				return d
			}
		}
		return 0
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, math.Inf(1))
			if f <= eps {
				break
			}
			total += f
		}
	}
	return total
}

// MinCut computes the minimum s-t cut. It returns the cut value, the
// set of nodes on the source side (sourceSide[v] == true ⇔ v reachable
// from s in the residual graph), and the indices of the cut edges.
func (g *Graph) MinCut(s, t int) (value float64, sourceSide []bool, cutEdges []int) {
	value = g.MaxFlow(s, t)
	sourceSide = make([]bool, g.n)
	stack := []int{s}
	sourceSide[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range g.adj[u] {
			e := g.edges[ei]
			if !sourceSide[e.To] && e.Cap-e.Flow > eps {
				sourceSide[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for i := 0; i < len(g.edges); i += 2 { // forward edges only
		e := g.edges[i]
		if sourceSide[e.From] && !sourceSide[e.To] && e.Cap > eps {
			cutEdges = append(cutEdges, i)
		}
	}
	return value, sourceSide, cutEdges
}

// AddNodeSideCosts wires node v between the terminals of a binary
// labeling problem: paying sinkCost when v lands on the source side and
// sourceCost when it lands on the sink side. It is the standard
// node-potential encoding used by the k-way partitioner's per-hop
// re-cut — "stay low" and "promote" costs become s→v and v→t
// capacities — and returns the two edge indices (s→v, v→t). Zero-cost
// edges are skipped (index -1).
func (g *Graph) AddNodeSideCosts(s, t, v int, sourceCost, sinkCost float64) (sv, vt int) {
	sv, vt = -1, -1
	if sourceCost > 0 {
		sv = g.AddEdge(s, v, sourceCost)
	}
	if sinkCost > 0 {
		vt = g.AddEdge(v, t, sinkCost)
	}
	return sv, vt
}

// CutValue returns the total capacity crossing the given partition
// (source side → sink side, forward edges only). It lets callers price
// arbitrary placements — e.g. the in-sensor / in-aggregator / trivial
// cuts — on the same graph used by the optimizer.
func (g *Graph) CutValue(sourceSide []bool) float64 {
	var total float64
	for i := 0; i < len(g.edges); i += 2 {
		e := g.edges[i]
		if sourceSide[e.From] && !sourceSide[e.To] {
			total += e.Cap
		}
	}
	return total
}
