package dwt

import (
	"math"
	"testing"
)

// FuzzRoundTrip feeds arbitrary byte patterns through decomposition and
// reconstruction: no panics, perfect reconstruction, energy preserved.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1), false)
	f.Add(make([]byte, 128), uint8(5), true)
	f.Add([]byte{255, 0, 255, 0}, uint8(9), false)
	f.Fuzz(func(t *testing.T, raw []byte, levelsRaw uint8, useDB4 bool) {
		// Build a signal; lengths are whatever the fuzzer hands us.
		x := make([]float64, len(raw))
		for i, b := range raw {
			x[i] = float64(b)/128 - 1
		}
		w := Haar
		if useDB4 {
			w = DB4
		}
		levels := int(levelsRaw%6) + 1
		dec, err := Decompose(w, x, levels)
		if err != nil {
			return // invalid shape: rejected, not crashed
		}
		back, err := Reconstruct(dec)
		if err != nil {
			t.Fatalf("reconstruct failed after successful decompose: %v", err)
		}
		if len(back) != len(x) {
			t.Fatalf("length changed: %d → %d", len(x), len(back))
		}
		var ein, eback float64
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-8 {
				t.Fatalf("sample %d: %v != %v", i, back[i], x[i])
			}
			ein += x[i] * x[i]
		}
		for _, d := range dec.Details {
			for _, v := range d {
				eback += v * v
			}
		}
		for _, v := range dec.Approx {
			eback += v * v
		}
		if math.Abs(ein-eback) > 1e-6*(1+ein) {
			t.Fatalf("energy not preserved: %v vs %v", ein, eback)
		}
	})
}
