package biosig

import (
	"math"
	"math/rand"
	"testing"

	"xpro/internal/stats"
)

func TestTable1Attributes(t *testing.T) {
	// Table 1 of the paper: symbol → (segment length, segment count).
	want := map[string]struct{ segLen, count int }{
		"C1": {82, 1162},
		"C2": {136, 884},
		"E1": {128, 1000},
		"E2": {128, 1000},
		"M1": {132, 1200},
		"M2": {132, 1200},
	}
	cases := TestCases()
	if len(cases) != 6 {
		t.Fatalf("TestCases count = %d, want 6", len(cases))
	}
	for _, c := range cases {
		w, ok := want[c.Symbol]
		if !ok {
			t.Errorf("unexpected case %q", c.Symbol)
			continue
		}
		if c.SegLen != w.segLen || c.Count != w.count {
			t.Errorf("%s: (len,count) = (%d,%d), want (%d,%d)", c.Symbol, c.SegLen, c.Count, w.segLen, w.count)
		}
		d := Generate(c)
		if len(d.Segs) != w.count {
			t.Errorf("%s: generated %d segments, want %d", c.Symbol, len(d.Segs), w.count)
		}
		for i, s := range d.Segs {
			if len(s.Samples) != w.segLen {
				t.Fatalf("%s seg %d: length %d, want %d", c.Symbol, i, len(s.Samples), w.segLen)
			}
		}
	}
}

func TestCaseBySymbol(t *testing.T) {
	c, err := CaseBySymbol("E1")
	if err != nil || c.Name != "EEGDifficult01" {
		t.Errorf("CaseBySymbol(E1) = %+v, %v", c, err)
	}
	if _, err := CaseBySymbol("Z9"); err == nil {
		t.Error("unknown symbol should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := TestCases()[0]
	a, b := Generate(spec), Generate(spec)
	for i := range a.Segs {
		for j := range a.Segs[i].Samples {
			if a.Segs[i].Samples[j] != b.Segs[i].Samples[j] {
				t.Fatalf("segment %d sample %d differs between runs", i, j)
			}
		}
	}
}

func TestNormalizedRange(t *testing.T) {
	for _, spec := range TestCases() {
		d := Generate(spec)
		for i, s := range d.Segs {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range s.Samples {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if lo < 0 || hi > 1 {
				t.Fatalf("%s seg %d: range [%v,%v] outside [0,1]", spec.Symbol, i, lo, hi)
			}
			if hi-lo < 0.5 {
				t.Fatalf("%s seg %d: span %v, normalization should reach both ends", spec.Symbol, i, hi-lo)
			}
		}
	}
}

func TestClassBalance(t *testing.T) {
	for _, spec := range TestCases() {
		d := Generate(spec)
		cc := d.ClassCounts()
		if diff := cc[0] - cc[1]; diff < -1 || diff > 1 {
			t.Errorf("%s: class counts %v not balanced", spec.Symbol, cc)
		}
	}
}

// The generators must produce linearly detectable class structure in the
// statistical feature space — otherwise the downstream ensemble has
// nothing to learn. Check a coarse single-feature separation: the means
// of at least one feature differ by a noticeable margin between classes.
func TestClassSeparationInFeatureSpace(t *testing.T) {
	for _, spec := range TestCases() {
		d := Generate(spec)
		var sum [2][]float64
		var n [2]int
		for _, s := range d.Segs {
			fv := stats.ComputeAll(s.Samples)
			if sum[s.Label] == nil {
				sum[s.Label] = make([]float64, len(fv))
			}
			for i, v := range fv {
				sum[s.Label][i] += v
			}
			n[s.Label]++
		}
		best := 0.0
		for i := range sum[0] {
			m0 := sum[0][i] / float64(n[0])
			m1 := sum[1][i] / float64(n[1])
			rel := math.Abs(m0-m1) / (math.Abs(m0) + math.Abs(m1) + 1e-9)
			if rel > best {
				best = rel
			}
		}
		if best < 0.02 {
			t.Errorf("%s: best relative feature-mean separation %.4f, classes look identical", spec.Symbol, best)
		}
	}
}

func TestSplit(t *testing.T) {
	d := Generate(TestCases()[2])
	rng := rand.New(rand.NewSource(1))
	train, test := d.Split(0.75, rng)
	if len(train.Segs)+len(test.Segs) != len(d.Segs) {
		t.Fatal("split loses segments")
	}
	wantTrain := int(math.Round(0.75 * float64(len(d.Segs))))
	if len(train.Segs) != wantTrain {
		t.Errorf("train size = %d, want %d", len(train.Segs), wantTrain)
	}
}

func TestFolds(t *testing.T) {
	d := Generate(TestCases()[2])
	rng := rand.New(rand.NewSource(1))
	folds := d.Folds(10, rng)
	if len(folds) != 10 {
		t.Fatalf("folds = %d, want 10", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += len(f.Segs)
		if d := len(folds[0].Segs) - len(f.Segs); d < -1 || d > 1 {
			t.Error("fold sizes differ by more than 1")
		}
	}
	if total != len(d.Segs) {
		t.Error("folds lose segments")
	}
	// k<2 clamps to 2.
	if got := d.Folds(1, rng); len(got) != 2 {
		t.Errorf("Folds(1) = %d folds, want clamp to 2", len(got))
	}
}

func TestMerge(t *testing.T) {
	d := Generate(TestCases()[0])
	rng := rand.New(rand.NewSource(2))
	a, b := d.Split(0.5, rng)
	m := Merge(a, b)
	if len(m.Segs) != len(d.Segs) {
		t.Error("merge loses segments")
	}
	if Merge().Segs != nil {
		t.Error("empty merge should have no segments")
	}
}

func TestPadTo(t *testing.T) {
	s := Segment{Samples: []float64{0.1, 0.2, 0.3}}
	p := s.PadTo(6)
	want := []float64{0.1, 0.2, 0.3, 0.3, 0.3, 0.3}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PadTo = %v, want %v", p, want)
		}
	}
	tr := s.PadTo(2)
	if len(tr) != 2 || tr[0] != 0.1 || tr[1] != 0.2 {
		t.Errorf("truncation = %v", tr)
	}
	empty := Segment{}
	if got := empty.PadTo(3); len(got) != 3 || got[0] != 0 {
		t.Errorf("empty PadTo = %v", got)
	}
}

func TestFamilyString(t *testing.T) {
	if ECG.String() != "ECG" || EEG.String() != "EEG" || EMG.String() != "EMG" {
		t.Error("family names wrong")
	}
	if Family(7).String() != "Family(7)" {
		t.Error("unknown family formatting wrong")
	}
}

func BenchmarkGenerateE1(b *testing.B) {
	spec, _ := CaseBySymbol("E1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Generate(spec)
	}
}
