package xpro

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"xpro/internal/serve"
)

// resilientFleetPair builds a two-subject network whose engines carry
// a Resilience policy (so the fleet brownout has a cheap rung to force)
// and serves it with the given options.
func resilientFleetPair(t *testing.T, opt ServeOptions) (*Network, *Fleet, map[string]*Engine) {
	t.Helper()
	engines := map[string]*Engine{}
	for name, sym := range map[string]string{"chest": "C1", "wrist": "M1"} {
		e, err := New(Config{Case: sym, Resilience: DefaultResilience()})
		if err != nil {
			t.Fatal(err)
		}
		engines[name] = e
	}
	n, err := NewNetwork(engines)
	if err != nil {
		t.Fatal(err)
	}
	f, err := n.Serve(opt)
	if err != nil {
		t.Fatal(err)
	}
	return n, f, engines
}

// blockWorker parks the pool worker serving shard behind a channel the
// test controls, so queue state is exact while assertions run.
func blockWorker(t *testing.T, f *Fleet, shard uint64) chan struct{} {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{})
	if err := f.pool.Submit(shard, func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	return release
}

// TestFleetShedStrictPriority drives the admission controller's
// occupancy gate through the public fleet API: with the worker parked,
// batch hits its queue share first, interactive second, and alert is
// still admitted after both — with every refusal a typed *ShedError
// whose fields describe the decision.
func TestFleetShedStrictPriority(t *testing.T) {
	ov := DefaultOverload()
	ov.BatchShare, ov.InteractiveShare = 0.25, 0.5 // limits 2 and 4 of depth 8
	_, f, engines := fleetPair(t, ServeOptions{Workers: 1, QueueDepth: 8, Overload: ov})
	defer f.Close()
	seg := segsOf(engines["chest"], 1)[0]
	release := blockWorker(t, f, 0)

	var chans []<-chan FleetResult
	submit := func(p Priority) error {
		ch, err := f.SubmitRequest(context.Background(),
			FleetRequest{Subject: "chest", Samples: seg, Priority: p})
		if err == nil {
			chans = append(chans, ch)
		}
		return err
	}
	for i := 0; i < 2; i++ { // fill to the batch limit
		if err := submit(PriorityInteractive); err != nil {
			t.Fatalf("interactive submit %d: %v", i, err)
		}
	}
	err := submit(PriorityBatch)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("batch at queue len 2: got %v, want ErrShed", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("shed error is not a *ShedError: %v", err)
	}
	if shed.Subject != "chest" || shed.Priority != PriorityBatch || shed.Reason != "occupancy" {
		t.Fatalf("shed fields = %q/%v/%q, want chest/batch/occupancy", shed.Subject, shed.Priority, shed.Reason)
	}
	if shed.QueueLen != 2 || shed.QueueDepth != 8 {
		t.Fatalf("shed queue geometry = %d/%d, want 2/8", shed.QueueLen, shed.QueueDepth)
	}
	if shed.RetryAfterSeconds <= 0 {
		t.Fatalf("shed retry-after hint = %v, want > 0", shed.RetryAfterSeconds)
	}
	for i := 2; i < 4; i++ { // fill to the interactive limit
		if err := submit(PriorityInteractive); err != nil {
			t.Fatalf("interactive submit %d: %v", i, err)
		}
	}
	err = submit(PriorityInteractive)
	if !errors.As(err, &shed) || shed.Priority != PriorityInteractive || shed.Reason != "occupancy" {
		t.Fatalf("interactive at queue len 4: got %v, want interactive occupancy shed", err)
	}
	if err := submit(PriorityAlert); err != nil { // alert rides above both shares
		t.Fatalf("alert at queue len 4: %v, want admitted", err)
	}

	st := f.OverloadStatus()
	if !st.Enabled {
		t.Fatal("OverloadStatus.Enabled = false on an overload-protected fleet")
	}
	if st.Sheds["batch"] != 1 || st.Sheds["interactive"] != 1 || st.Sheds["alert"] != 0 {
		t.Fatalf("sheds by class = %v, want batch:1 interactive:1 alert:0", st.Sheds)
	}
	if st.Admitted["interactive"] != 4 || st.Admitted["alert"] != 1 {
		t.Fatalf("admitted by class = %v, want interactive:4 alert:1", st.Admitted)
	}
	if got := f.obs.MetricValue(`xpro_admit_shed_total{class="batch"}`); got != 1 {
		t.Fatalf(`xpro_admit_shed_total{class="batch"} = %v, want 1`, got)
	}
	close(release)
	for i, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatalf("admitted event %d failed after release: %v", i, r.Err)
		}
	}
}

// TestFleetShedDeadlineGate: once the service-time EWMA is primed, an
// event whose class deadline budget is smaller than the queue-wait
// estimate is refused at the door with reason "deadline".
func TestFleetShedDeadlineGate(t *testing.T) {
	ov := DefaultOverload()
	ov.InteractiveBudgetSeconds = 1e-12
	_, f, engines := fleetPair(t, ServeOptions{Workers: 1, QueueDepth: 8, Overload: ov})
	defer f.Close()
	seg := segsOf(engines["chest"], 1)[0]
	for i := 0; i < 3; i++ { // prime the service-time estimator
		if _, err := f.Classify(context.Background(), "chest", seg); err != nil {
			t.Fatal(err)
		}
	}
	release := blockWorker(t, f, 0)
	ch, err := f.Submit(context.Background(), "chest", seg) // queue len 0: estimate is 0, admitted
	if err != nil {
		t.Fatalf("first interactive submit: %v", err)
	}
	_, err = f.Submit(context.Background(), "chest", seg)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "deadline" {
		t.Fatalf("queued interactive with 1ps budget: got %v, want deadline shed", err)
	}
	if shed.BudgetSeconds != ov.InteractiveBudgetSeconds {
		t.Fatalf("shed budget = %v, want the class default %v", shed.BudgetSeconds, ov.InteractiveBudgetSeconds)
	}
	if shed.EstimatedWaitSeconds <= shed.BudgetSeconds {
		t.Fatalf("shed estimate %v does not exceed budget %v", shed.EstimatedWaitSeconds, shed.BudgetSeconds)
	}
	close(release)
	<-ch
}

// TestFleetOverloadedRetryAfterHint: on an overload-protected fleet
// even a bare pool-full ErrOverloaded rejection carries the admission
// controller's retry-after estimate, via errors.As on the typed
// *serve.OverloadedError.
func TestFleetOverloadedRetryAfterHint(t *testing.T) {
	_, f, engines := fleetPair(t, ServeOptions{Workers: 1, QueueDepth: 1, Overload: DefaultOverload()})
	defer f.Close()
	seg := segsOf(engines["chest"], 1)[0]
	for i := 0; i < 2; i++ {
		if _, err := f.Classify(context.Background(), "chest", seg); err != nil {
			t.Fatal(err)
		}
	}
	release := blockWorker(t, f, 0)
	defer close(release)
	alert := FleetRequest{Subject: "chest", Samples: seg, Priority: PriorityAlert}
	if _, err := f.SubmitRequest(context.Background(), alert); err != nil {
		t.Fatalf("alert filling the queue: %v", err)
	}
	_, err := f.SubmitRequest(context.Background(), alert)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("alert on a full queue: got %v, want ErrOverloaded", err)
	}
	var oe *serve.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overload error is not a *serve.OverloadedError: %v", err)
	}
	if oe.QueueLen != 1 || oe.QueueDepth != 1 {
		t.Fatalf("overload queue geometry = %d/%d, want 1/1", oe.QueueLen, oe.QueueDepth)
	}
	if oe.RetryAfterSeconds <= 0 {
		t.Fatalf("overload retry-after hint = %v, want > 0", oe.RetryAfterSeconds)
	}
}

// TestFleetBrownoutForcesFallback drives the full brownout loop
// through real queue delay: a parked worker builds a standing queue,
// the delay EWMA crosses the enter threshold as it drains, every
// engine is forced onto its in-sensor fallback rung (visible in
// served results, OverloadStatus, the SLO report and health), and a
// stretch of idle serving decays the EWMA back under the exit
// threshold, releasing the fleet.
func TestFleetBrownoutForcesFallback(t *testing.T) {
	ov := DefaultOverload()
	ov.BrownoutEnterSeconds = 0.005
	ov.BrownoutExitSeconds = 0.0005
	ov.BrownoutMinDwellSeconds = 0.001
	ov.BrownoutProbationSeconds = 0 // no rollback check: this test owns the exit path
	n, f, engines := resilientFleetPair(t, ServeOptions{Workers: 1, QueueDepth: 64, Overload: ov})
	defer f.Close()
	seg := segsOf(engines["chest"], 1)[0]

	// Build real queue delay: park the worker, queue a burst, let it
	// age past the enter threshold, then drain.
	release := blockWorker(t, f, 0)
	var chans []<-chan FleetResult
	for i := 0; i < 8; i++ {
		ch, err := f.Submit(context.Background(), "chest", seg)
		if err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	time.Sleep(30 * time.Millisecond)
	close(release)
	for i, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatalf("burst event %d: %v", i, r.Err)
		}
	}

	st := f.OverloadStatus()
	if !st.BrownedOut || st.BrownoutEnters == 0 {
		t.Fatalf("after a 30ms standing queue drained: BrownedOut=%v enters=%d, want browned out",
			st.BrownedOut, st.BrownoutEnters)
	}
	log := f.BrownoutLog()
	if len(log) == 0 || log[0].Kind != "enter" {
		t.Fatalf("brownout log = %+v, want a leading enter event", log)
	}
	res, err := f.Classify(context.Background(), "chest", seg)
	if err != nil {
		t.Fatalf("classify while browned out: %v", err)
	}
	if res.Mode != ModeFallbackSensor {
		t.Fatalf("browned-out event served in mode %v, want ModeFallbackSensor", res.Mode)
	}
	rep, err := n.SLOReport()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BrownedOut || rep.BrownedOutNodes != len(f.Subjects()) {
		t.Fatalf("SLO report BrownedOut=%v nodes=%d, want true/%d",
			rep.BrownedOut, rep.BrownedOutNodes, len(f.Subjects()))
	}
	if !n.Health().BrownedOut {
		t.Fatal("network health does not flag the brownout")
	}

	// Recovery: idle-queue events decay the delay EWMA below the exit
	// threshold (0.8^n from ~25ms needs a few dozen observations).
	deadline := time.Now().Add(5 * time.Second)
	for f.OverloadStatus().BrownedOut {
		if time.Now().After(deadline) {
			t.Fatalf("fleet still browned out after 5s of idle serving: %+v", f.OverloadStatus())
		}
		if _, err := f.Classify(context.Background(), "chest", seg); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st = f.OverloadStatus()
	if st.BrownoutExits == 0 {
		t.Fatalf("brownout cleared without an exit transition: %+v", st)
	}
	res, err = f.Classify(context.Background(), "chest", seg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeFull {
		t.Fatalf("post-recovery event served in mode %v, want ModeFull", res.Mode)
	}
	rep, err = n.SLOReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BrownedOut || rep.BrownedOutNodes != 0 {
		t.Fatalf("SLO report still browned out after recovery: %+v", rep)
	}
}

// TestClassifyBatchCancelMidBatchNoLeak is the abandoned-channel
// regression (run under -race in CI): a context canceled between
// submission and collection abandons every accepted result channel,
// and the workers' sends must land in the buffered slots instead of
// pinning goroutines. After release + drain the goroutine count
// returns to its pre-batch baseline.
func TestClassifyBatchCancelMidBatchNoLeak(t *testing.T) {
	_, f, engines := fleetPair(t, ServeOptions{Workers: 2, QueueDepth: 64})
	seg := map[string][]float64{
		"chest": segsOf(engines["chest"], 1)[0],
		"wrist": segsOf(engines["wrist"], 1)[0],
	}
	base := runtime.NumGoroutine()

	relA := blockWorker(t, f, 0)
	relB := blockWorker(t, f, 1)
	reqs := make([]FleetRequest, 32)
	for i := range reqs {
		subject := "chest"
		if i%2 == 1 {
			subject = "wrist"
		}
		reqs[i] = FleetRequest{Subject: subject, Samples: seg[subject]}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	results := f.ClassifyBatch(ctx, reqs)
	var canceled int
	for i, r := range results {
		if r.Err == nil {
			continue
		}
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("result %d: %v, want nil or ErrCanceled", i, r.Err)
		}
		canceled++
	}
	if canceled == 0 {
		t.Fatal("cancellation raced too late: no result was abandoned; nothing regressed but nothing was tested")
	}
	close(relA)
	close(relB)
	f.Close() // drains the abandoned events into their buffered slots

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before the batch", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseWithinSubmissionStorm covers both CloseWithin outcomes
// under concurrent submission pressure: an expired budget reports the
// exact pending count and the drain still completes, and a generous
// budget returns nil with every accepted event served exactly once.
func TestCloseWithinSubmissionStorm(t *testing.T) {
	// Timeout path: a parked worker cannot drain, so the budget
	// expires with every queued job still pending.
	_, f, engines := fleetPair(t, ServeOptions{Workers: 1, QueueDepth: 32})
	seg := segsOf(engines["chest"], 1)[0]
	release := blockWorker(t, f, 0)
	var chans []<-chan FleetResult
	for i := 0; i < 10; i++ {
		ch, err := f.Submit(context.Background(), "chest", seg)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	err := f.CloseWithin(5 * time.Millisecond)
	var dte *serve.DrainTimeoutError
	if !errors.As(err, &dte) {
		t.Fatalf("CloseWithin with a parked worker: got %v, want *serve.DrainTimeoutError", err)
	}
	if dte.Pending != 10 {
		t.Fatalf("drain timeout reports %d pending, want 10", dte.Pending)
	}
	if _, err := f.Submit(context.Background(), "chest", seg); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("submit after CloseWithin: got %v, want ErrFleetClosed", err)
	}
	close(release)
	f.Close() // waits for the same background drain
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("drained event %d: %v", i, r.Err)
			}
		default:
			t.Fatalf("event %d lost across the timed-out drain", i)
		}
	}

	// Storm path: submitters race CloseWithin; every accepted channel
	// must deliver exactly one result once the drain reports success.
	_, f2, engines2 := fleetPair(t, ServeOptions{Workers: 4, QueueDepth: 64})
	segs := map[string][]float64{
		"chest": segsOf(engines2["chest"], 1)[0],
		"wrist": segsOf(engines2["wrist"], 1)[0],
	}
	var mu sync.Mutex
	var accepted []<-chan FleetResult
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		subject := "chest"
		if g%2 == 1 {
			subject = "wrist"
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, err := f2.Submit(context.Background(), subject, segs[subject])
				switch {
				case err == nil:
					mu.Lock()
					accepted = append(accepted, ch)
					mu.Unlock()
				case errors.Is(err, ErrFleetClosed):
					return
				case errors.Is(err, ErrOverloaded):
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("storm submit: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := f2.CloseWithin(10 * time.Second); err != nil {
		t.Fatalf("storm CloseWithin: %v", err)
	}
	close(stop)
	wg.Wait()
	if len(accepted) == 0 {
		t.Fatal("storm accepted nothing; the test is vacuous")
	}
	for i, ch := range accepted {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("storm event %d: %v", i, r.Err)
			}
		default:
			t.Fatalf("storm event %d lost: accepted but never served", i)
		}
		select {
		case <-ch:
			t.Fatalf("storm event %d duplicated: second result in a single-shot channel", i)
		default:
		}
	}
}
