// Package battery estimates battery lifetime for the wearable sensor
// node and the data aggregator.
//
// The paper follows the polymer Li-ion electrical battery model of Chen
// and Rincon-Mora to estimate sensor-node lifetime (§5.1) with the 40 mAh
// cell typical of ECG wristbands (§1) and a 2900 mAh iPhone-7-class
// battery for the aggregator (§5.6). This package implements the
// first-order form of that model: usable energy = capacity × voltage ×
// usable fraction, lifetime = usable energy / average power. All the
// paper's lifetime figures are reported normalized, which this form
// preserves exactly.
package battery

import (
	"fmt"
	"math"
	"time"
)

// Battery is a battery pack model.
type Battery struct {
	// CapacitymAh is the rated capacity.
	CapacitymAh float64
	// Voltage is the nominal cell voltage.
	Voltage float64
	// UsableFrac derates the rated capacity for cutoff voltage and
	// rate effects (the Chen/Rincon-Mora model's usable-charge term).
	UsableFrac float64
}

// SensorBattery returns the 40 mAh wearable-node battery (§1).
func SensorBattery() Battery {
	return Battery{CapacitymAh: 40, Voltage: 3.7, UsableFrac: 0.9}
}

// AggregatorBattery returns the 2900 mAh smartphone battery (§5.6).
func AggregatorBattery() Battery {
	return Battery{CapacitymAh: 2900, Voltage: 3.5, UsableFrac: 0.9}
}

// EnergyJ returns the usable energy in joules.
func (b Battery) EnergyJ() float64 {
	return b.CapacitymAh / 1000 * 3600 * b.Voltage * b.UsableFrac
}

// Lifetime returns how long the battery sustains the given average
// power draw. Non-positive power returns an error (a zero-power system
// would report infinite lifetime, which is always a modeling bug here).
func (b Battery) Lifetime(avgPowerW float64) (time.Duration, error) {
	if avgPowerW <= 0 {
		return 0, fmt.Errorf("battery: non-positive average power %v W", avgPowerW)
	}
	seconds := b.EnergyJ() / avgPowerW
	return time.Duration(seconds * float64(time.Second)), nil
}

// LifetimeHours is Lifetime in hours, for report tables.
func (b Battery) LifetimeHours(avgPowerW float64) (float64, error) {
	d, err := b.Lifetime(avgPowerW)
	if err != nil {
		return 0, err
	}
	return d.Hours(), nil
}

// Phase is one segment of a repeating load profile.
type Phase struct {
	Duration time.Duration
	PowerW   float64
}

// LifetimeUnderProfile returns how long the battery sustains a load that
// cycles through the given profile — e.g. a monitor that analyzes at
// full rate 16 h/day and idles overnight. The battery dies partway
// through whichever phase exhausts it.
func (b Battery) LifetimeUnderProfile(profile []Phase) (time.Duration, error) {
	if len(profile) == 0 {
		return 0, fmt.Errorf("battery: empty load profile")
	}
	var cycleEnergy float64
	var cycleTime time.Duration
	for i, p := range profile {
		if p.Duration <= 0 || p.PowerW < 0 {
			return 0, fmt.Errorf("battery: invalid phase %d (%v, %v W)", i, p.Duration, p.PowerW)
		}
		cycleEnergy += p.PowerW * p.Duration.Seconds()
		cycleTime += p.Duration
	}
	if cycleEnergy <= 0 {
		return 0, fmt.Errorf("battery: profile draws no energy")
	}
	remaining := b.EnergyJ()
	full := math.Floor(remaining / cycleEnergy)
	if full > 0 && remaining == full*cycleEnergy {
		// Exact multiple: walk the last cycle explicitly so the battery
		// dies at the end of its final powered phase, not after a free
		// idle tail.
		full--
	}
	total := time.Duration(float64(cycleTime) * full)
	remaining -= full * cycleEnergy
	for _, p := range profile {
		phaseEnergy := p.PowerW * p.Duration.Seconds()
		if phaseEnergy < remaining {
			remaining -= phaseEnergy
			total += p.Duration
			continue
		}
		if p.PowerW > 0 {
			total += time.Duration(remaining / p.PowerW * float64(time.Second))
			break
		}
		// Zero-power phase with charge left: free time.
		total += p.Duration
	}
	return total, nil
}
