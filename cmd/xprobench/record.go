package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchSchemaVersion is the trajectory-file schema the recorder writes.
// Version 1: {suite?, note?, schema_version, points: [{date,
// commit_parent?, goos?, goarch?, cpu?, note?, benchmarks: {name:
// {unit: value}}, derived?: {key: value}}]}.
const benchSchemaVersion = 1

// benchPoint is one recorded trajectory point. Points are stored as
// loose maps so re-writing a file never drops fields written by other
// (older or newer) recorders.
type benchPoint = map[string]any

// parsedBench is the digest of one `go test -bench` text stream.
type parsedBench struct {
	Goos, Goarch, CPU string
	// Benchmarks maps the benchmark name (Benchmark prefix stripped,
	// -N GOMAXPROCS suffix kept) to its unit→value measurements.
	Benchmarks map[string]map[string]float64
	order      []string
}

var benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+\d+\s+(.*)$`)

// unitKey normalizes a go-bench unit into a JSON identifier:
// ns/op→ns_per_op, B/op→bytes_per_op, allocs/op→allocs_per_op,
// MB/s→mb_per_s; custom units keep their name with / and - folded.
func unitKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "MB/s":
		return "mb_per_s"
	}
	unit = strings.ReplaceAll(unit, "/", "_per_")
	unit = strings.ReplaceAll(unit, "-", "_")
	return unit
}

// parseBench reads `go test -bench` output: the goos/goarch/cpu
// headers plus every benchmark result line. Unparseable lines are
// skipped (PASS, ok, log noise), so the stream can be a whole test
// run's combined output.
func parseBench(r io.Reader) (*parsedBench, error) {
	p := &parsedBench{Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			p.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			p.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			p.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[2])
		if len(fields)%2 != 0 {
			continue
		}
		vals := map[string]float64{}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			vals[unitKey(fields[i+1])] = v
		}
		if len(vals) == 0 {
			continue
		}
		if _, dup := p.Benchmarks[name]; !dup {
			p.order = append(p.order, name)
		}
		p.Benchmarks[name] = vals
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(p.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return p, nil
}

var cpuSuffix = regexp.MustCompile(`^(.*)-(\d+)$`)

// deriveSpeedups computes multi-core speedups from a -cpu 1,4,8 style
// run: for every benchmark base name measured at GOMAXPROCS=1 and at
// N>1, it records ns(1)/ns(N) as "<base>_speedup_<N>x".
func deriveSpeedups(p *parsedBench) map[string]float64 {
	type run struct {
		procs int
		ns    float64
	}
	groups := map[string][]run{}
	for name, vals := range p.Benchmarks {
		m := cpuSuffix.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		procs, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		ns, ok := vals["ns_per_op"]
		if !ok || ns <= 0 {
			continue
		}
		groups[m[1]] = append(groups[m[1]], run{procs, ns})
	}
	derived := map[string]float64{}
	for base, runs := range groups {
		var ns1 float64
		for _, r := range runs {
			if r.procs == 1 {
				ns1 = r.ns
			}
		}
		if ns1 <= 0 {
			continue
		}
		for _, r := range runs {
			if r.procs == 1 {
				continue
			}
			key := fmt.Sprintf("%s_speedup_%dx", base, r.procs)
			derived[key] = math3(ns1 / r.ns)
		}
	}
	return derived
}

// math3 rounds to 3 decimals so trajectory diffs stay readable.
func math3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

// gitHead returns the short commit hash of HEAD, best-effort.
func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// recordBench parses bench output from in and appends one trajectory
// point to the JSON file at path, creating it when missing. Fields of
// an existing file (suite, note, prior points) are preserved verbatim;
// schema_version is stamped on every write.
func recordBench(path string, in io.Reader, note string, stdout io.Writer) error {
	p, err := parseBench(in)
	if err != nil {
		return fmt.Errorf("parse bench input: %w", err)
	}

	doc := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	point := benchPoint{
		"date":       time.Now().UTC().Format("2006-01-02"),
		"benchmarks": p.Benchmarks,
	}
	if c := gitHead(); c != "" {
		point["commit_parent"] = c
	}
	if p.Goos != "" {
		point["goos"] = p.Goos
	}
	if p.Goarch != "" {
		point["goarch"] = p.Goarch
	}
	if p.CPU != "" {
		point["cpu"] = p.CPU
	}
	if note != "" {
		point["note"] = note
	}
	if derived := deriveSpeedups(p); len(derived) > 0 {
		point["derived"] = derived
	}

	points, _ := doc["points"].([]any)
	doc["points"] = append(points, point)
	doc["schema_version"] = benchSchemaVersion

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	names := append([]string(nil), p.order...)
	sort.Strings(names)
	fmt.Fprintf(stdout, "recorded %d benchmarks to %s (point %d, schema v%d): %s\n",
		len(p.Benchmarks), path, len(points)+1, benchSchemaVersion, strings.Join(names, " "))
	return nil
}
