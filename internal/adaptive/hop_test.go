package adaptive

import (
	"math/rand"
	"testing"

	"xpro/internal/celllib"
	"xpro/internal/partition"
	"xpro/internal/sensornode"
	"xpro/internal/topology"
	"xpro/internal/wireless"
)

// threeTierFixture builds a solved synthetic three-tier problem.
func threeTierFixture(t testing.TB, seed int64) (*partition.TieredProblem, partition.TierPlacement) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.Synthetic(rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	hw := sensornode.Characterize(g, celllib.P90)
	tiers, hops := partition.DefaultThreeTier(wireless.Model2(), wireless.Model3())
	tp, err := partition.NewTieredProblem(g, hw, tiers, hops, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return tp, res.Placement
}

// TestHopRecutCleanChannelKeepsOptimum: with a clean estimate the
// derated problem IS the original, so re-cutting the optimum must not
// change its cost.
func TestHopRecutCleanChannelKeepsOptimum(t *testing.T) {
	tp, p := threeTierFixture(t, 11)
	base := tp.Cost(p)
	for hop := range tp.Hops {
		q, _, err := HopRecut(tp, p, hop, Estimate{}, 64)
		if err != nil {
			t.Fatal(err)
		}
		if c := tp.Cost(q); c > base+1e-12+1e-9*base {
			t.Fatalf("hop %d: clean re-cut regressed %v -> %v", hop, base, c)
		}
	}
}

// TestHopRecutUnderDriftNeverRegressesDerated: under a lossy estimate
// the re-cut placement must price no worse than the incumbent under
// the DERATED model — the exact guarantee RecutHop gives.
func TestHopRecutUnderDriftNeverRegressesDerated(t *testing.T) {
	tp, p := threeTierFixture(t, 23)
	for hop := range tp.Hops {
		for _, est := range []Estimate{
			{Loss: 0.3, Samples: 50},
			{Loss: 0.9, Samples: 50},
			{Loss: 0.5, Outage: 0.5, Samples: 50},
		} {
			q, cost, err := HopRecut(tp, p, hop, est, 64)
			if err != nil {
				t.Fatal(err)
			}
			if err := tp.CheckPlacement(q); err != nil {
				t.Fatalf("hop %d est %+v: infeasible re-cut: %v", hop, est, err)
			}
			derated := deratedProblem(tp, hop, est, 64)
			if inc := derated.Cost(p); cost > inc+1e-12+1e-9*inc {
				t.Fatalf("hop %d est %+v: re-cut %v worse than incumbent %v under drift",
					hop, est, cost, inc)
			}
			// Only cells adjacent to the re-cut hop may have moved.
			for i := range q {
				if q[i] != p[i] && p[i] != partition.Tier(hop) && p[i] != partition.Tier(hop+1) {
					t.Fatalf("hop %d: cell %d moved from distant tier %d", hop, i, p[i])
				}
			}
		}
	}
}

// TestHopRecutFullOutageShedsTraffic: Outage ≥ 1 marks the hop dead,
// and the re-cut must pull every sheddable bit off it.
func TestHopRecutFullOutageShedsTraffic(t *testing.T) {
	tp, p := threeTierFixture(t, 31)
	q, _, err := HopRecut(tp, p, 1, Estimate{Outage: 1, Samples: 10}, 64)
	if err != nil {
		t.Fatal(err)
	}
	bd := tp.Breakdown(q)
	if bd.HopDataBits[1] > wireless.ValueBits {
		t.Fatalf("dead uplink still carries %d bits", bd.HopDataBits[1])
	}
}

// TestHopControllerDeterministic: the multi-hop walk replays
// bit-identically and reports which hops moved.
func TestHopControllerDeterministic(t *testing.T) {
	tp, p := threeTierFixture(t, 47)
	ests := []Estimate{
		{Loss: 0.6, Samples: 40},
		{Loss: 0.2, Samples: 40},
	}
	q1, moved1, err := HopController(tp, p, ests, 64)
	if err != nil {
		t.Fatal(err)
	}
	q2, moved2, err := HopController(tp, p, ests, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !q1.Equal(q2) {
		t.Fatalf("controller walk not deterministic: %v vs %v", q1, q2)
	}
	if len(moved1) != len(moved2) {
		t.Fatalf("moved lists differ: %v vs %v", moved1, moved2)
	}
	for i := range moved1 {
		if moved1[i] != moved2[i] {
			t.Fatalf("moved lists differ: %v vs %v", moved1, moved2)
		}
	}
	if err := tp.CheckPlacement(q1); err != nil {
		t.Fatal(err)
	}
}

// TestHopRecutValidation covers the error paths.
func TestHopRecutValidation(t *testing.T) {
	tp, p := threeTierFixture(t, 3)
	if _, _, err := HopRecut(nil, p, 0, Estimate{}, 64); err == nil {
		t.Error("nil problem accepted")
	}
	if _, _, err := HopRecut(tp, p, -1, Estimate{}, 64); err == nil {
		t.Error("negative hop accepted")
	}
	if _, _, err := HopRecut(tp, p, len(tp.Hops), Estimate{}, 64); err == nil {
		t.Error("out-of-range hop accepted")
	}
	if _, _, err := HopRecut(tp, p, 0, Estimate{}, 0.5); err == nil {
		t.Error("sub-unit inflation cap accepted")
	}
	if _, _, err := HopController(tp, p, []Estimate{{}}, 64); err == nil {
		t.Error("estimate count mismatch accepted")
	}
}
