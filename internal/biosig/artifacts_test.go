package biosig

import (
	"math"
	"math/rand"
	"testing"
)

func TestCorruptBasics(t *testing.T) {
	spec, _ := CaseBySymbol("C1")
	d := Generate(spec)
	rng := rand.New(rand.NewSource(1))
	for _, kind := range Artifacts {
		c, err := Corrupt(d.Segs[0], kind, 0.7, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Samples) != len(d.Segs[0].Samples) || c.Label != d.Segs[0].Label {
			t.Fatalf("%v: shape or label changed", kind)
		}
		// Result stays normalized.
		lo, hi := math.Inf(1), math.Inf(-1)
		diff := 0.0
		for i, v := range c.Samples {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			diff += math.Abs(v - d.Segs[0].Samples[i])
		}
		if lo < 0 || hi > 1 {
			t.Errorf("%v: range [%v,%v] outside [0,1]", kind, lo, hi)
		}
		if diff == 0 {
			t.Errorf("%v: severity 0.7 changed nothing", kind)
		}
		// The original is untouched (Corrupt copies).
		if &c.Samples[0] == &d.Segs[0].Samples[0] {
			t.Errorf("%v: corrupt shares storage with the original", kind)
		}
	}
}

func TestCorruptSeverityZero(t *testing.T) {
	spec, _ := CaseBySymbol("E1")
	d := Generate(spec)
	rng := rand.New(rand.NewSource(2))
	c, err := Corrupt(d.Segs[3], MotionArtifact, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Samples {
		if v != d.Segs[3].Samples[i] {
			t.Fatal("severity 0 must be an exact copy")
		}
	}
}

func TestCorruptValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := Corrupt(Segment{}, MotionArtifact, -0.1, rng); err == nil {
		t.Error("negative severity should error")
	}
	if _, err := Corrupt(Segment{}, MotionArtifact, 1.1, rng); err == nil {
		t.Error("severity > 1 should error")
	}
	if _, err := Corrupt(Segment{Samples: []float64{1, 2}}, Artifact(99), 0.5, rng); err == nil {
		t.Error("unknown artifact should error")
	}
}

func TestCorruptDataset(t *testing.T) {
	spec, _ := CaseBySymbol("M1")
	d := Generate(spec)
	rng := rand.New(rand.NewSource(4))
	c, err := CorruptDataset(d, 0.5, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Segs) != len(d.Segs) {
		t.Fatal("segment count changed")
	}
	changed := 0
	for i := range c.Segs {
		if c.Segs[i].Label != d.Segs[i].Label {
			t.Fatal("labels must be preserved")
		}
		for j := range c.Segs[i].Samples {
			if c.Segs[i].Samples[j] != d.Segs[i].Samples[j] {
				changed++
				break
			}
		}
	}
	frac := float64(changed) / float64(len(d.Segs))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("corrupted fraction %v, want ≈ 0.5", frac)
	}
	if _, err := CorruptDataset(d, 1.5, 0.5, rng); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestArtifactString(t *testing.T) {
	want := map[Artifact]string{MotionArtifact: "motion", ElectrodePop: "pop", BaselineDrift: "drift", MuscleNoise: "emg-noise"}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("artifact %d = %q, want %q", a, a.String(), s)
		}
	}
	if Artifact(9).String() != "Artifact(9)" {
		t.Error("unknown artifact formatting wrong")
	}
}
