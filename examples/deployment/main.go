// Deployment planning: a product team specifies requirements — latency
// budget, battery target, accuracy floor — and lets the library sweep
// the design space (process node × wireless model × pruning) to pick the
// silicon and engine distribution. The chosen engines then form a
// three-sensor body network sharing one phone, and the shared-resource
// report says whether the whole deployment holds up.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"xpro"
)

func main() {
	// Per-sensor requirements: the heart monitor is latency-critical,
	// the EEG headband battery-critical.
	specs := map[string]xpro.Requirements{
		"heart": {Case: "C1", MaxDelaySeconds: 2e-3, MinLifetimeHours: 2000, MinAccuracy: 0.95},
		"brain": {Case: "E1", MinLifetimeHours: 4000, MinAccuracy: 0.85},
		"hand":  {Case: "M1", MinLifetimeHours: 3000, MinAccuracy: 0.9},
	}

	engines := map[string]*xpro.Engine{}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "sensor\tchosen process\tradio\tprune\tlife h\tdelay ms\taccuracy")
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		req := specs[name]
		best, all, err := xpro.Recommend(req)
		if err != nil {
			log.Fatalf("%s: %v (evaluated %d designs)", name, err, len(all))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%.0f\t%.3f\t%.3f\n",
			name, best.Config.Process, best.Config.Wireless, best.Config.PruneKeep,
			best.Report.SensorLifetimeHours, best.Report.DelayPerEventSeconds*1e3,
			best.Report.SoftwareAccuracy)
		eng, err := xpro.New(best.Config)
		if err != nil {
			log.Fatal(err)
		}
		engines[name] = eng
	}
	tw.Flush()

	nw, err := xpro.NewNetwork(engines)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := nw.Report()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnetwork: bottleneck %s at %.0f h; phone battery %.0f h at %.1f%% CPU\n",
		rep.BottleneckNode, rep.BottleneckHours, rep.AggregatorLifetimeHours,
		rep.AggregatorUtilization*100)
	fmt.Printf("worst-case simultaneous-event delays:")
	for _, name := range names {
		fmt.Printf(" %s=%.2fms", name, rep.WorstCaseDelaySeconds[name]*1e3)
	}
	fmt.Println()
	if nw.RealTimeOK(4e-3) {
		fmt.Println("deployment meets the 4 ms real-time bound under worst-case load")
	} else {
		fmt.Println("WARNING: deployment misses the real-time bound under worst-case load")
	}
}
