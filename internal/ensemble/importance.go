package ensemble

import (
	"errors"
	"math/rand"
	"sort"

	"xpro/internal/biosig"
)

// This file measures which features a trained ensemble actually leans
// on, via permutation importance: shuffle one feature's values across
// the evaluation set and measure the accuracy drop. The paper motivates
// the generic framework with exactly this heterogeneity — "ECG has
// salient features in the time-domain, EEG is with a good data
// representation under discrete wavelet transform, and EMG is more
// sensitive to the classifier" (§2.1) — and the random-subspace training
// is chosen because it "can identify their preferences". Importance
// makes that identification measurable.

// Importance is one feature's permutation importance.
type Importance struct {
	Feature FeatureSpec
	// Drop is the mean classification-margin loss when this feature is
	// shuffled: E[y·score(clean)] − E[y·score(shuffled)] with the soft
	// fused score. Margin loss stays informative even when accuracy
	// saturates at 1.0 on separable cases (negative values are noise
	// around zero).
	Drop float64
}

// PermutationImportance evaluates every used feature on d, averaging
// over rounds shuffles. Results are sorted by decreasing drop.
func (e *Ensemble) PermutationImportance(d *biosig.Dataset, rounds int, seed int64) ([]Importance, error) {
	if len(d.Segs) == 0 {
		return nil, errors.New("ensemble: empty evaluation set")
	}
	if rounds < 1 {
		rounds = 1
	}
	// Extract all vectors once.
	full := make([][]float64, len(d.Segs))
	labels := make([]int, len(d.Segs))
	for i, seg := range d.Segs {
		v, err := ExtractVector(seg)
		if err != nil {
			return nil, err
		}
		full[i] = v
		if seg.Label == 1 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
	}
	margin := func(x [][]float64) float64 {
		var m float64
		for i, v := range x {
			m += float64(labels[i]) * e.ScoreSoft(v)
		}
		return m / float64(len(x))
	}
	base := margin(full)

	rng := rand.New(rand.NewSource(seed))
	used := e.UsedFeatures()
	out := make([]Importance, 0, len(used))
	shuffled := make([][]float64, len(full))
	for i := range shuffled {
		shuffled[i] = make([]float64, len(full[i]))
	}
	for _, fs := range used {
		col := SpecIndex(fs)
		var dropSum float64
		for r := 0; r < rounds; r++ {
			perm := rng.Perm(len(full))
			for i := range full {
				copy(shuffled[i], full[i])
				shuffled[i][col] = full[perm[i]][col]
			}
			dropSum += base - margin(shuffled)
		}
		out = append(out, Importance{Feature: fs, Drop: dropSum / float64(rounds)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Drop > out[j].Drop })
	return out, nil
}

// DomainImportance aggregates permutation importance by signal domain
// and returns each domain's share of the total positive drop
// (time domain and the DWT bands). Domains the ensemble does not use
// have share 0.
func (e *Ensemble) DomainImportance(d *biosig.Dataset, rounds int, seed int64) (map[int]float64, error) {
	imps, err := e.PermutationImportance(d, rounds, seed)
	if err != nil {
		return nil, err
	}
	shares := make(map[int]float64, NumDomains)
	var total float64
	for _, imp := range imps {
		if imp.Drop > 0 {
			shares[imp.Feature.Domain] += imp.Drop
			total += imp.Drop
		}
	}
	if total > 0 {
		for k := range shares {
			shares[k] /= total
		}
	}
	return shares, nil
}
