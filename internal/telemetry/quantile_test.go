package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestQuantileWindowRotation(t *testing.T) {
	r := NewRegistry()
	q := r.Quantile("xpro_test_latency_seconds", "test latency.", 60)

	// Fill the first minute with slow observations.
	for i := 0; i < 600; i++ {
		q.Observe(float64(i)/10, 1.0)
	}
	if got := q.Query(0.5); got != 1.0 {
		t.Fatalf("windowed p50 = %g, want 1.0", got)
	}
	// A second minute of fast observations should evict the slow ones.
	for i := 0; i < 700; i++ {
		q.Observe(60+float64(i)/10, 0.001)
	}
	if got := q.Query(0.99); got != 0.001 {
		t.Errorf("after rotation, windowed p99 = %g, want 0.001 (slow era evicted)", got)
	}
	// Cumulative still remembers both eras.
	if got := q.CumulativeQuery(0.99); got != 1.0 {
		t.Errorf("cumulative p99 = %g, want 1.0", got)
	}
	if got, want := q.Count(), uint64(1300); got != want {
		t.Errorf("cumulative Count = %d, want %d", got, want)
	}
}

func TestQuantileClockJumpClearsWindow(t *testing.T) {
	q := newQuantile(10)
	for i := 0; i < 100; i++ {
		q.Observe(float64(i)*0.1, 5)
	}
	// Jump far past the window: everything windowed is stale.
	q.Observe(1000, 7)
	if got := q.WindowCount(); got != 1 {
		t.Fatalf("WindowCount after jump = %d, want 1", got)
	}
	if got := q.Query(0.5); got != 7 {
		t.Errorf("windowed p50 after jump = %g, want 7", got)
	}
}

func TestQuantileEmptyWindowFallsBackToCumulative(t *testing.T) {
	q := newQuantile(1)
	q.Observe(0, 3)
	q.Observe(0.1, 3)
	// Advance the clock far past the window without observing into it:
	// rotate happens on Observe, so simulate by a late observation then
	// checking the early values are out of window.
	q.Observe(100, 9)
	if got := q.WindowCount(); got != 1 {
		t.Fatalf("WindowCount = %d, want 1", got)
	}
	// Window has the late observation only.
	if got := q.Query(0.99); got != 9 {
		t.Errorf("windowed p99 = %g, want 9", got)
	}
	// Cumulative sees all three.
	if got := q.CumulativeQuery(0.25); got != 3 {
		t.Errorf("cumulative p25 = %g, want 3", got)
	}
}

func TestQuantileGenAdvances(t *testing.T) {
	q := newQuantile(0)
	g0 := q.Gen()
	q.Observe(1, 1)
	if q.Gen() == g0 {
		t.Error("Gen did not advance after Observe")
	}
	g1 := q.Gen()
	q.Observe(1, math.NaN())
	if q.Gen() != g1 {
		t.Error("Gen advanced on ignored NaN")
	}
}

func TestQuantileNilSafe(t *testing.T) {
	var q *Quantile
	q.Observe(1, 1)
	q.ObserveWall(1)
	if q.Query(0.5) != 0 || q.Count() != 0 || q.Gen() != 0 || q.WindowCount() != 0 {
		t.Error("nil Quantile is not a no-op")
	}
	if q.WindowSketch() == nil || q.CumulativeSketch() == nil {
		t.Error("nil Quantile sketches should be empty, not nil")
	}
}

func TestQuantileRegistryAndExposition(t *testing.T) {
	r := NewRegistry()
	q := r.Quantile("xpro_test_seconds", "Windowed test latency.", 30)
	if r.Quantile("xpro_test_seconds", "", 5) != q {
		t.Fatal("re-registering the same name should return the same series")
	}
	labeled := r.Quantile(WithLabels("xpro_test_seconds", map[string]string{"node": `we"ird\`}), "", 30)
	labeled.Observe(1, 0.25)
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i)/100, float64(i))
	}

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP xpro_test_seconds Windowed test latency.",
		"# TYPE xpro_test_seconds summary",
		`xpro_test_seconds{quantile="0.5"}`,
		`xpro_test_seconds{quantile="0.99"}`,
		"xpro_test_seconds_sum 5050\n",
		"xpro_test_seconds_count 100\n",
		`xpro_test_seconds{node="we\"ird\\",quantile="0.5"} 0.25`,
		`xpro_test_seconds_count{node="we\"ird\\"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}

	// Snapshot carries the quantile marks.
	var snap *MetricSnapshot
	for _, m := range r.Snapshot() {
		if m.Name == "xpro_test_seconds" {
			m := m
			snap = &m
			break
		}
	}
	if snap == nil {
		t.Fatal("snapshot missing quantile series")
	}
	if snap.Kind != KindQuantile || len(snap.Quantiles) != len(ExpoQuantiles) {
		t.Fatalf("snapshot kind/quantiles = %v/%d", snap.Kind, len(snap.Quantiles))
	}
	if snap.Count != 100 || snap.Sum != 5050 {
		t.Errorf("snapshot Count/Sum = %d/%g, want 100/5050", snap.Count, snap.Sum)
	}
}
