package xpro

// This file holds the benchmark harness that regenerates every table and
// figure of the paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	Table 1  → BenchmarkTable1Datasets
//	Figure 4 → BenchmarkFig4ALUModes
//	Figure 8 → BenchmarkFig8ProcessTech
//	Figure 9 → BenchmarkFig9WirelessModels
//	Figure 10 → BenchmarkFig10Delay
//	Figure 11 → BenchmarkFig11EnergyBreakdown
//	Figure 12 → BenchmarkFig12Cuts
//	Figure 13 → BenchmarkFig13AggregatorOverhead
//	Headline  → BenchmarkHeadline
//
// Each iteration re-runs the experiment's compute path (engine pricing
// and the Automatic XPro Generator's min-cut sweeps) against a shared,
// pre-trained lab, so the numbers reflect regeneration cost rather than
// SMO training. Ablation benchmarks for the design rules of §3.1 live
// in ablation_bench_test.go.

import (
	"sync"
	"testing"

	"xpro/internal/biosig"
	"xpro/internal/experiments"
)

var (
	labOnce  sync.Once
	sharedLb *experiments.Lab
)

// benchLab returns a lab with every test case trained once (fast
// protocol), shared across all benchmarks in the binary.
func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		sharedLb = experiments.NewLab()
		if _, err := sharedLb.Instances(); err != nil {
			b.Fatalf("training lab: %v", err)
		}
	})
	return sharedLb
}

func runExperiment(b *testing.B, f func(*experiments.Lab) (*experiments.Table, error)) {
	lab := benchLab(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := f(lab.Clone())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkTable1Datasets regenerates the six Table 1 datasets.
func BenchmarkTable1Datasets(b *testing.B) {
	specs := biosig.TestCases()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			d := biosig.Generate(spec)
			if len(d.Segs) != spec.Count {
				b.Fatal("dataset size mismatch")
			}
		}
	}
}

// BenchmarkFig4ALUModes characterizes every module under the three ALU
// modes (Figure 4).
func BenchmarkFig4ALUModes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := experiments.Fig4()
		if len(tab.Rows) != 11 {
			b.Fatal("fig4 shape changed")
		}
	}
}

// BenchmarkFig8ProcessTech regenerates the lifetime-vs-process study
// (Figure 8): 6 cases × 3 nodes × 4 engines, cross-end via the
// generator.
func BenchmarkFig8ProcessTech(b *testing.B) { runExperiment(b, experiments.Fig8) }

// BenchmarkFig9WirelessModels regenerates the lifetime-vs-wireless study
// (Figure 9).
func BenchmarkFig9WirelessModels(b *testing.B) { runExperiment(b, experiments.Fig9) }

// BenchmarkFig10Delay regenerates the delay-breakdown study (Figure 10).
func BenchmarkFig10Delay(b *testing.B) { runExperiment(b, experiments.Fig10) }

// BenchmarkFig11EnergyBreakdown regenerates the sensor-energy breakdown
// (Figure 11).
func BenchmarkFig11EnergyBreakdown(b *testing.B) { runExperiment(b, experiments.Fig11) }

// BenchmarkFig12Cuts regenerates the four-cut comparison (Figure 12).
func BenchmarkFig12Cuts(b *testing.B) { runExperiment(b, experiments.Fig12) }

// BenchmarkFig13AggregatorOverhead regenerates the aggregator-side
// energy study (Figure 13).
func BenchmarkFig13AggregatorOverhead(b *testing.B) { runExperiment(b, experiments.Fig13) }

// BenchmarkHeadline regenerates the abstract's summary numbers.
func BenchmarkHeadline(b *testing.B) { runExperiment(b, experiments.Headline) }

// BenchmarkClassifyPerEngine measures one event through each engine
// distribution of the E1 case.
func BenchmarkClassifyPerEngine(b *testing.B) {
	for _, kind := range []EngineKind{InSensor, InAggregator, TrivialCut, CrossEnd} {
		b.Run(kind.String(), func(b *testing.B) {
			eng, err := New(Config{Case: "E1", Kind: kind})
			if err != nil {
				b.Fatal(err)
			}
			test := eng.TestSet()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Classify(test[i%len(test)].Samples); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
